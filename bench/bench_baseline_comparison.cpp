// E9 — why a congestion-aware rule is needed: the paper's greedy against
// the naive policies its introduction implicitly argues against, across a
// load sweep in both endpoint models.
//
// Expected shape: at low load everything is fine; as load grows the paper's
// rule (and the load-aware baselines) separate decisively from the
// load-oblivious ones (closest/round-robin/random), and on unrelated
// endpoints the leaf-blind rules collapse.
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_baseline_comparison",
                "Policy comparison across load (identical + unrelated).");
  auto& jobs = cli.add_int("jobs", 400, "jobs per cell");
  auto& reps = cli.add_int("reps", 3, "seeds per cell");
  auto& eps = cli.add_double("eps", 0.5, "epsilon for the paper rule");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  const std::vector<std::string> policies{
      "paper",       "broomstick-mirror", "least-volume", "least-count",
      "two-choice",  "closest",           "round-robin",  "random"};
  util::CsvWriter csv({"model", "load", "policy", "ratio"});

  for (const bool unrelated : {false, true}) {
    std::cout << "E9 — total flow / lower bound, "
              << (unrelated ? "UNRELATED" : "IDENTICAL") << " machines\n\n";
    std::vector<std::string> header{"load"};
    for (const auto& p : policies) header.push_back(p);
    util::Table table(header);

    for (const double load : {0.4, 0.6, 0.8, 0.95}) {
      std::vector<std::string> row{util::Table::num(load, 2)};
      for (const auto& policy : policies) {
        stats::Summary ratios;
        for (int rep = 0; rep < reps; ++rep) {
          util::Rng rng(uidx(rep) * 11 + static_cast<std::uint64_t>(load * 100) +
                        (unrelated ? 7 : 0));
          const Tree tree = builders::fat_tree(2, 2, 2);
          workload::WorkloadSpec spec;
          spec.jobs = static_cast<int>(jobs);
          spec.load = load;
          spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
          if (unrelated) {
            spec.endpoints = EndpointModel::kUnrelated;
            spec.unrelated.model = workload::UnrelatedModel::kAffinity;
          }
          const Instance inst = workload::generate(rng, tree, spec);
          const auto r = experiments::measure_ratio(
              inst, SpeedProfile::uniform(inst.tree(), 1.0 + eps), policy,
              eps, uidx(rep) + 1);
          ratios.add(r.ratio);
          csv.add(unrelated ? "unrelated" : "identical", load, policy,
                  r.ratio);
        }
        row.push_back(util::Table::num(ratios.mean()));
      }
      table.add_row(row);
    }
    std::cout << table.str() << '\n';
  }
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
