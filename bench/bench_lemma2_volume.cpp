// E4 — Lemma 2: on any identical non-root-adjacent node, the available
// higher-priority volume in front of a job never exceeds (2/eps) p_j.
//
// Runs the monitor at every engine event. Includes a premise-violating row
// (interior speed 1.0 < 1+eps) to show the bound is not vacuous: without
// the speed premise the volume can pile past the bound.
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_lemma2_volume",
                "Observed available volume vs the Lemma 2 bound.");
  auto& jobs = cli.add_int("jobs", 400, "jobs per cell");
  auto& load = cli.add_double("load", 0.95, "root-cut utilization");
  auto& seed = cli.add_int("seed", 4, "base seed");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E4 / Lemma 2 — available higher-priority volume <= (2/eps) p_j\n"
      "Expected shape: zero violations when premises hold; the speed-1\n"
      "row intentionally violates the premises as a control.\n\n";

  util::Table table({"tree", "eps", "interior speed", "checks", "max ratio",
                     "violations"});
  util::CsvWriter csv({"tree", "eps", "interior_speed", "max_ratio",
                       "violations"});

  const auto run_cell = [&](const std::string& name, const Tree& tree,
                            double eps, double interior) {
    util::Rng rng(static_cast<std::uint64_t>(seed) + eps * 104729 +
                  interior * 31);
    workload::WorkloadSpec spec;
    spec.jobs = static_cast<int>(jobs);
    spec.load = load;
    spec.sizes.dist = workload::SizeDistribution::kBimodal;
    spec.sizes.spread = 16.0;
    spec.sizes.class_eps = eps;
    const Instance inst = workload::generate(rng, tree, spec);
    const SpeedProfile speeds =
        SpeedProfile::layered(inst.tree(), 1.0, interior);
    algo::PaperGreedyPolicy policy(eps);
    algo::Lemma2Monitor monitor(eps, /*check_every=*/2);
    sim::Engine engine(inst, speeds);
    engine.set_observer(&monitor);
    engine.run(policy);
    table.add(name, eps, interior, monitor.checks(), monitor.max_ratio(),
              monitor.violations());
    csv.add(name, eps, interior, monitor.max_ratio(), monitor.violations());
  };

  for (const double eps : {1.0, 0.5, 0.25}) {
    run_cell("star-2x4", builders::star_of_paths(2, 4), eps, 1.0 + eps);
    run_cell("caterpillar", builders::caterpillar(2, 3, 2), eps, 1.0 + eps);
  }
  // Premise-violating control: interior speed 1 < 1 + eps.
  run_cell("star-2x4 (control)", builders::star_of_paths(2, 4), 0.5, 1.0);

  std::cout << table.str()
            << "\n(the control row may legitimately exceed ratio 1 — the "
               "lemma's speed premise is necessary)\n";
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
