// E3 — Lemma 1: once a job leaves its root child, it clears the remaining
// identical nodes within (6/eps^2) * p_j * d_{v_e} time.
//
// Measures the worst observed wait/bound ratio across topologies, loads and
// eps, under the lemma's premises (class-rounded sizes; speed >= 1+eps off
// the root layer). Expected shape: max ratio <= 1 everywhere, usually far
// below (the proof's constants are loose).
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_lemma1_interior_wait",
                "Observed interior wait vs the Lemma 1 bound.");
  auto& jobs = cli.add_int("jobs", 500, "jobs per cell");
  auto& load = cli.add_double("load", 0.9, "root-cut utilization");
  auto& seed = cli.add_int("seed", 3, "base seed");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E3 / Lemma 1 — interior wait <= (6/eps^2) p_j d_{v_e}\n"
      "Expected shape: observed/bound <= 1 for every job, zero violations.\n\n";

  util::Table table({"tree", "eps", "jobs", "max ratio", "mean ratio",
                     "violations"});
  util::CsvWriter csv({"tree", "eps", "max_ratio", "mean_ratio",
                       "violations"});

  for (const auto& [name, tree] : experiments::standard_trees()) {
    for (const double eps : {1.0, 0.5, 0.25}) {
      util::Rng rng(static_cast<std::uint64_t>(seed) + eps * 7919);
      workload::WorkloadSpec spec;
      spec.jobs = static_cast<int>(jobs);
      spec.load = load;
      spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
      spec.sizes.class_eps = eps;
      const Instance inst = workload::generate(rng, tree, spec);

      const SpeedProfile speeds =
          SpeedProfile::layered(inst.tree(), 1.0, 1.0 + eps);
      algo::PaperGreedyPolicy policy(eps);
      sim::Engine engine(inst, speeds);
      engine.run(policy);
      const auto rep = algo::interior_wait_report(engine, eps);
      table.add(name, eps, rep.jobs_measured, rep.max_ratio, rep.mean_ratio,
                rep.violations);
      csv.add(name, eps, rep.max_ratio, rep.mean_ratio, rep.violations);
    }
  }
  std::cout << table.str();
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
