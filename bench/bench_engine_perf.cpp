// E13 — simulator throughput (google-benchmark): jobs/second of full
// simulation across instance sizes, tree shapes, and engine features, to
// document that the substrate comfortably handles the experiment scales.
#include <benchmark/benchmark.h>

#include "treesched/treesched.hpp"
#include "treesched/util/mem.hpp"

// Allocation telemetry: this binary (and only this binary — the macro is a
// bench/CMakeLists.txt target_compile_definitions, never set for the
// libraries or tests) replaces the global operator new/delete with counting
// shims, so BENCH_engine_perf.json records how many heap allocations one
// simulated job costs. The hot-path rewrite (calendar queue, pooled avail
// heaps, job arenas) is an allocation-count change as much as a time change;
// the counter is what keeps a per-insert allocation from sneaking back in
// without the time gate noticing on a fast machine.
#ifdef TREESCHED_BENCH_COUNT_ALLOCS
#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// The malloc/free pairing is correct by construction here (every new routes
// through the malloc above), but the compiler's heuristic cannot see that
// across the replaced globals and flags the free() calls.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif
#endif  // TREESCHED_BENCH_COUNT_ALLOCS

using namespace treesched;

namespace {

struct Setup {
  Instance inst;
  sim::EngineConfig cfg;
};

Setup make_setup(int jobs, int arity, int depth, double chunk_hint) {
  util::Rng rng(42);
  const Tree tree = builders::fat_tree(arity, depth, 2);
  workload::WorkloadSpec spec;
  spec.jobs = jobs;
  spec.load = 0.8;
  spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
  sim::EngineConfig cfg;
  cfg.router_chunk_size = chunk_hint;
  return {workload::generate(rng, tree, spec), cfg};
}

void BM_RunPaperPolicy(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const Setup setup = make_setup(jobs, 2, 2, 0.0);
  const SpeedProfile speeds = SpeedProfile::uniform(setup.inst.tree(), 1.5);
  for (auto _ : state) {
    algo::PaperGreedyPolicy policy(0.5);
    sim::Engine engine(setup.inst, speeds, setup.cfg);
    engine.run(policy);
    benchmark::DoNotOptimize(engine.metrics().total_flow_time());
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_RunPaperPolicy)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RunOnWideTree(benchmark::State& state) {
  const int arity = static_cast<int>(state.range(0));
  const Setup setup = make_setup(2000, arity, 2, 0.0);
  const SpeedProfile speeds = SpeedProfile::uniform(setup.inst.tree(), 1.5);
  for (auto _ : state) {
    algo::PaperGreedyPolicy policy(0.5);
    sim::Engine engine(setup.inst, speeds, setup.cfg);
    engine.run(policy);
    benchmark::DoNotOptimize(engine.metrics().total_flow_time());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_RunOnWideTree)->Arg(2)->Arg(3)->Arg(4);

void BM_PipelinedRouting(benchmark::State& state) {
  // The chunk hint flows through make_setup into the engine config, so the
  // instance and the engine agree on the pipelining granularity.
  const Setup setup =
      make_setup(2000, 2, 2, 1.0 / static_cast<double>(state.range(0)));
  const SpeedProfile speeds = SpeedProfile::uniform(setup.inst.tree(), 1.5);
  for (auto _ : state) {
    algo::PaperGreedyPolicy policy(0.5);
    sim::Engine engine(setup.inst, speeds, setup.cfg);
    engine.run(policy);
    benchmark::DoNotOptimize(engine.metrics().total_flow_time());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_PipelinedRouting)->Arg(1)->Arg(4)->Arg(16);

void BM_MirrorPolicyOverhead(benchmark::State& state) {
  const Setup setup = make_setup(2000, 2, 2, 0.0);
  const SpeedProfile speeds =
      SpeedProfile::paper_identical(setup.inst.tree(), 0.5);
  for (auto _ : state) {
    algo::BroomstickMirrorPolicy mirror(setup.inst, 0.5);
    sim::Engine engine(setup.inst, speeds, setup.cfg);
    engine.run(mirror);
    benchmark::DoNotOptimize(engine.metrics().total_flow_time());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_MirrorPolicyOverhead);

void BM_SrptLowerBound(benchmark::State& state) {
  const Setup setup =
      make_setup(static_cast<int>(state.range(0)), 2, 2, 0.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(lp::combined_lower_bound(setup.inst));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SrptLowerBound)->Arg(1000)->Arg(10000);

// Dispatch stress on a genuinely wide topology: 100 racks x 100 machines
// (10^4 leaves), overloaded (rho = 4) so queues build up and assignment
// cost — not event processing — dominates. Arg "slow" = 1 forces the
// seed's end-to-end path (EngineConfig::slow_queries): rescanning Q_v
// per query and one F evaluation per leaf; 0 uses the incremental
// per-node dispatch indices plus the per-root-child F cache. The CI perf
// leg gates on the fast/slow items_per_second ratio of this benchmark.
void BM_DispatchWideTree(benchmark::State& state) {
  util::Rng rng(42);
  const Tree tree = builders::fat_tree(100, 1, 100);
  workload::WorkloadSpec spec;
  spec.jobs = 4000;
  spec.load = 4.0;
  spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
  const Instance inst = workload::generate(rng, tree, spec);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.5);
  sim::EngineConfig cfg;
  cfg.slow_queries = state.range(0) != 0;
#ifdef TREESCHED_BENCH_COUNT_ALLOCS
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
#endif
  for (auto _ : state) {
    algo::PaperGreedyPolicy policy(0.5);
    sim::Engine engine(inst, speeds, cfg);
    engine.run(policy);
    benchmark::DoNotOptimize(engine.metrics().total_flow_time());
  }
  state.SetItemsProcessed(state.iterations() * spec.jobs);
#ifdef TREESCHED_BENCH_COUNT_ALLOCS
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_job"] =
      static_cast<double>(allocs) /
      (static_cast<double>(state.iterations()) * spec.jobs);
#endif
  state.counters["peak_rss_bytes"] =
      static_cast<double>(util::peak_rss_bytes());
}
BENCHMARK(BM_DispatchWideTree)->ArgNames({"slow"})->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
