// E13 — simulator throughput (google-benchmark): jobs/second of full
// simulation across instance sizes, tree shapes, and engine features, to
// document that the substrate comfortably handles the experiment scales.
#include <benchmark/benchmark.h>

#include "treesched/treesched.hpp"

using namespace treesched;

namespace {

Instance make_instance(int jobs, int arity, int depth, double chunk_hint) {
  (void)chunk_hint;
  util::Rng rng(42);
  const Tree tree = builders::fat_tree(arity, depth, 2);
  workload::WorkloadSpec spec;
  spec.jobs = jobs;
  spec.load = 0.8;
  spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
  return workload::generate(rng, tree, spec);
}

void BM_RunPaperPolicy(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const Instance inst = make_instance(jobs, 2, 2, 0.0);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.5);
  for (auto _ : state) {
    algo::PaperGreedyPolicy policy(0.5);
    sim::Engine engine(inst, speeds);
    engine.run(policy);
    benchmark::DoNotOptimize(engine.metrics().total_flow_time());
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_RunPaperPolicy)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RunOnWideTree(benchmark::State& state) {
  const int arity = static_cast<int>(state.range(0));
  const Instance inst = make_instance(2000, arity, 2, 0.0);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.5);
  for (auto _ : state) {
    algo::PaperGreedyPolicy policy(0.5);
    sim::Engine engine(inst, speeds);
    engine.run(policy);
    benchmark::DoNotOptimize(engine.metrics().total_flow_time());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_RunOnWideTree)->Arg(2)->Arg(3)->Arg(4);

void BM_PipelinedRouting(benchmark::State& state) {
  const Instance inst = make_instance(2000, 2, 2, 0.5);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.5);
  sim::EngineConfig cfg;
  cfg.router_chunk_size = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    algo::PaperGreedyPolicy policy(0.5);
    sim::Engine engine(inst, speeds, cfg);
    engine.run(policy);
    benchmark::DoNotOptimize(engine.metrics().total_flow_time());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_PipelinedRouting)->Arg(1)->Arg(4)->Arg(16);

void BM_MirrorPolicyOverhead(benchmark::State& state) {
  const Instance inst = make_instance(2000, 2, 2, 0.0);
  const SpeedProfile speeds = SpeedProfile::paper_identical(inst.tree(), 0.5);
  for (auto _ : state) {
    algo::BroomstickMirrorPolicy mirror(inst, 0.5);
    sim::Engine engine(inst, speeds);
    engine.run(mirror);
    benchmark::DoNotOptimize(engine.metrics().total_flow_time());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_MirrorPolicyOverhead);

void BM_SrptLowerBound(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<int>(state.range(0)), 2, 2,
                                      0.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(lp::combined_lower_bound(inst));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SrptLowerBound)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
