// E6 — Lemma 8: running the broomstick algorithm's assignments on the
// original tree never slows any job down.
//
// The BroomstickMirrorPolicy simulates A_{T'} online and copies its leaf
// choices to T; we compare per-job flow times. Expected shape: zero
// violations, mean speedup >= 1 (T is strictly easier than T').
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_lemma8_general_tree",
                "Per-job domination of T over its broomstick simulation.");
  auto& jobs = cli.add_int("jobs", 300, "jobs per cell");
  auto& reps = cli.add_int("reps", 3, "seeds per tree");
  auto& load = cli.add_double("load", 0.85, "root-cut utilization");
  auto& eps = cli.add_double("eps", 0.5, "speed augmentation epsilon");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E6 / Lemma 8 — flow time on T <= flow time on broomstick T', per job\n"
      "Expected shape: zero violations; mean speedup >= 1.\n\n";

  util::Table table({"tree", "seed", "jobs", "violations", "max excess",
                     "mean speedup", "flow(T)", "flow(T')"});
  util::CsvWriter csv({"tree", "seed", "violations", "mean_speedup"});

  for (const auto& [name, tree] : experiments::standard_trees()) {
    for (int rep = 0; rep < reps; ++rep) {
      util::Rng rng(uidx(rep) * 7 + 3);
      workload::WorkloadSpec spec;
      spec.jobs = static_cast<int>(jobs);
      spec.load = load;
      spec.sizes.class_eps = eps;
      const Instance inst = workload::generate(rng, tree, spec);

      algo::BroomstickMirrorPolicy mirror(inst, eps);
      sim::Engine engine(inst,
                         SpeedProfile::paper_identical(inst.tree(), eps));
      engine.run(mirror);
      mirror.finish_simulation();

      const auto rep_result = algo::domination_report(
          engine.metrics(), mirror.broomstick_engine().metrics());
      table.add(name, rep, rep_result.jobs, rep_result.violations,
                rep_result.max_excess, rep_result.mean_speedup,
                engine.metrics().total_flow_time(),
                mirror.broomstick_engine().metrics().total_flow_time());
      csv.add(name, rep, rep_result.violations, rep_result.mean_speedup);
    }
  }
  std::cout << table.str();
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
