// E22 — streaming endurance: throughput, memory ceiling, and sketch
// fidelity of the bounded-memory streaming mode.
//
// Two measurements:
//
//  1. Endurance run: `--jobs` Poisson arrivals through the streaming
//     runner (windowed engines, streaming metrics accumulator, optional
//     segmented run log). Reports wall-clock jobs/s, peak RSS (the number
//     the CI leg gates — it must stay bounded no matter how many arrivals
//     flow through), and the peak window size the extension logic reached.
//
//  2. Sketch fidelity: a smaller `--exact-jobs` prefix of the SAME arrival
//     stream is run twice — once streaming (p99 from the mergeable
//     quantile digest) and once monolithic with full per-job records (p99
//     exact by sorting). The relative delta is reported next to the
//     digest's documented rank-error bound (1/max_centroids, tested at
//     2/max_centroids); windowing is metric-invariant, so any difference
//     is sketch error alone.
//
// All randomness derives from --seed via per-arrival split streams, so
// every number here is byte-identical run to run.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "treesched/exec/stream_runner.hpp"
#include "treesched/treesched.hpp"
#include "treesched/util/fs.hpp"
#include "treesched/util/mem.hpp"
#include "treesched/util/stopwatch.hpp"

using namespace treesched;

namespace {

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_endurance",
                "Streaming endurance: jobs/s, peak RSS, sketch fidelity.");
  auto& jobs = cli.add_int("jobs", 200000, "endurance-run arrivals");
  auto& exact_jobs = cli.add_int(
      "exact-jobs", 20000, "arrivals for the sketch-vs-exact comparison");
  auto& window = cli.add_int("window", 4096, "engine window quantum");
  auto& load = cli.add_double("load", 0.7, "root-cut utilization target");
  auto& eps = cli.add_double("eps", 0.5, "epsilon for the paper rule");
  auto& seed = cli.add_int("seed", 1, "stream seed");
  auto& record = cli.add_string(
      "record-out", "", "also write a segmented run log (manifest path)");
  auto& json_path = cli.add_string("json", "", "machine-readable results file");
  cli.parse(argc, argv);

  try {
    auto tree = std::make_shared<const Tree>(builders::fat_tree(2, 2, 2));
    const SpeedProfile speeds = SpeedProfile::paper_identical(*tree, eps);

    exec::StreamRunnerConfig scfg;
    scfg.stream.seed = static_cast<std::uint64_t>(seed);
    scfg.stream.sizes.dist = workload::SizeDistribution::kBoundedPareto;
    scfg.stream.lambda = workload::arrival_rate_for_load(
        static_cast<int>(tree->root_children().size()),
        scfg.stream.sizes.mean(), load);
    scfg.total_jobs = static_cast<std::uint64_t>(jobs);
    scfg.window = static_cast<std::size_t>(window);
    scfg.eps = eps;
    scfg.record_path = record;

    std::cout << "E22 — streaming endurance (" << jobs << " arrivals, window "
              << window << ", load " << load << ")\n\n";

    util::Stopwatch watch;
    const exec::StreamRunnerResult big = exec::run_stream(tree, speeds, scfg);
    const double wall = watch.elapsed_seconds();
    const double rate = wall > 0.0 ? static_cast<double>(big.arrivals) / wall
                                   : 0.0;
    const std::uint64_t rss = util::peak_rss_bytes();

    std::cout << "arrivals           : " << big.arrivals << '\n'
              << "wall seconds       : " << wall << '\n'
              << "jobs / second      : " << rate << '\n'
              << "peak rss           : " << rss / (1024 * 1024) << " MB\n"
              << "max window         : " << big.max_window << '\n'
              << "segments written   : " << big.segments_written << '\n'
              << "p99 flow (digest)  : " << big.acc.flow_digest.quantile(0.99)
              << '\n'
              << "p99 flow (marker)  : " << big.acc.p99_marker.estimate()
              << "\n\n";

    // Supervision hot-path tax: the SAME endurance stream with watchdog +
    // governor armed at ceilings that never fire, against an unguarded run
    // of the identical config. Both drop the segmented log so the pair
    // isolates the per-arrival guard bookkeeping (watchdog progress,
    // pressure sampling) from recording I/O. The chaos-supervision CI leg
    // gates guard_overhead_frac at <= 3%.
    exec::StreamRunnerConfig plain_cfg = scfg;
    plain_cfg.record_path.clear();
    util::Stopwatch plain_watch;
    const exec::StreamRunnerResult plain =
        exec::run_stream(tree, speeds, plain_cfg);
    const double plain_wall = plain_watch.elapsed_seconds();
    const double rate_plain =
        plain_wall > 0.0 ? static_cast<double>(plain.arrivals) / plain_wall
                         : 0.0;

    exec::StreamRunnerConfig guard_cfg = plain_cfg;
    guard_cfg.guard.watchdog.window_deadline_s = 3600.0;
    guard_cfg.guard.governor.rss_ceiling_bytes = std::uint64_t{1} << 50;
    guard_cfg.guard.governor.queue_ceiling = std::size_t{1} << 40;
    guard_cfg.guard.governor.arena_ceiling = std::size_t{1} << 40;
    util::Stopwatch guard_watch;
    const exec::StreamRunnerResult guarded =
        exec::run_stream(tree, speeds, guard_cfg);
    const double guard_wall = guard_watch.elapsed_seconds();
    const double rate_guarded =
        guard_wall > 0.0 ? static_cast<double>(guarded.arrivals) / guard_wall
                         : 0.0;
    const double overhead_frac =
        rate_plain > 0.0 ? std::max(0.0, 1.0 - rate_guarded / rate_plain)
                         : 0.0;

    std::cout << "guard overhead (" << jobs << " arrivals, armed, idle)\n"
              << "jobs/s unguarded   : " << rate_plain << '\n'
              << "jobs/s guarded     : " << rate_guarded << '\n'
              << "overhead fraction  : " << overhead_frac << "\n\n";

    // Sketch fidelity on a prefix small enough for full per-job records.
    exec::StreamRunnerConfig small_cfg = scfg;
    small_cfg.total_jobs = static_cast<std::uint64_t>(exact_jobs);
    small_cfg.record_path.clear();
    const exec::StreamRunnerResult small =
        exec::run_stream(tree, speeds, small_cfg);
    const double p99_digest = small.acc.flow_digest.quantile(0.99);
    const double p99_marker = small.acc.p99_marker.estimate();

    workload::JobStream stream(scfg.stream);
    workload::StreamCursor cursor;
    std::vector<Job> exact_arrivals;
    exact_arrivals.reserve(static_cast<std::size_t>(exact_jobs));
    for (std::int64_t i = 0; i < exact_jobs; ++i) {
      const workload::StreamJob a = stream.next(cursor);
      exact_arrivals.emplace_back(static_cast<JobId>(i), a.release, a.size);
    }
    const Instance inst(tree, std::move(exact_arrivals),
                        EndpointModel::kIdentical);
    algo::PaperGreedyPolicy policy(eps);
    sim::Engine engine(inst, speeds, sim::EngineConfig{});
    engine.run(policy);
    const double p99_exact = engine.metrics().flow_percentile(0.99);
    const double delta =
        p99_exact > 0.0 ? std::abs(p99_digest - p99_exact) / p99_exact : 0.0;
    const double bound =
        1.0 / static_cast<double>(small.acc.flow_digest.max_centroids());

    std::cout << "sketch fidelity (" << exact_jobs << " arrivals)\n"
              << "p99 exact          : " << p99_exact << '\n'
              << "p99 digest         : " << p99_digest << '\n'
              << "p99 marker         : " << p99_marker << '\n'
              << "relative delta     : " << delta << '\n'
              << "digest rank bound  : " << bound << " (1/max_centroids)\n";

    if (!json_path.empty()) {
      std::ostringstream os;
      os << "{\n"
         << "  \"format\": \"treesched-bench-endurance-v1\",\n"
         << "  \"jobs\": " << big.arrivals << ",\n"
         << "  \"wall_s\": " << json_num(wall) << ",\n"
         << "  \"jobs_per_s\": " << json_num(rate) << ",\n"
         << "  \"peak_rss_bytes\": " << rss << ",\n"
         << "  \"max_window\": " << big.max_window << ",\n"
         << "  \"segments\": " << big.segments_written << ",\n"
         << "  \"jobs_per_s_unguarded\": " << json_num(rate_plain) << ",\n"
         << "  \"jobs_per_s_guarded\": " << json_num(rate_guarded) << ",\n"
         << "  \"guard_overhead_frac\": " << json_num(overhead_frac) << ",\n"
         << "  \"p99_digest\": " << json_num(big.acc.flow_digest.quantile(0.99))
         << ",\n"
         << "  \"p99_marker\": " << json_num(big.acc.p99_marker.estimate())
         << ",\n"
         << "  \"exact_jobs\": " << exact_jobs << ",\n"
         << "  \"p99_exact_small\": " << json_num(p99_exact) << ",\n"
         << "  \"p99_digest_small\": " << json_num(p99_digest) << ",\n"
         << "  \"p99_rel_delta\": " << json_num(delta) << ",\n"
         << "  \"digest_rank_bound\": " << json_num(bound) << "\n"
         << "}\n";
      util::write_file_atomic(json_path, os.str());
      std::cout << "json               : " << json_path << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
