// E17 — how tight are the competitive-ratio denominators?
//
// Every ratio in E1/E2/E9-E11 divides by a certified lower bound. Here we
// bracket the true optimum: lower bound <= OPT <= best offline schedule
// found by local search. The bracket width (search / LB) is the maximum
// factor by which the reported ratios could overstate the truth.
#include <iostream>

#include "treesched/lp/opt_search.hpp"
#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_lb_tightness",
                "Bracket OPT between the certified LB and offline search.");
  auto& jobs = cli.add_int("jobs", 120, "jobs per cell");
  auto& reps = cli.add_int("reps", 3, "seeds per cell");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E17 — OPT bracketing: LB <= OPT <= offline local search\n"
      "gap = search / LB bounds how much the E1/E2/E9-E11 ratios could\n"
      "overstate the true competitive ratio.\n\n";

  util::Table table({"tree", "load", "LB", "search UB", "gap",
                     "online ALG", "ALG in bracket"});
  util::CsvWriter csv({"tree", "load", "rep", "lb", "ub", "gap"});

  const std::vector<std::pair<std::string, Tree>> trees = {
      {"star-2x2", builders::star_of_paths(2, 2)},
      {"fat-2x1x2", builders::fat_tree(2, 1, 2)},
      {"figure1", builders::figure1_tree()},
  };

  for (const auto& [name, tree] : trees) {
    for (const double load : {0.6, 0.9}) {
      stats::Summary lbs, ubs, gaps, algs;
      for (int rep = 0; rep < reps; ++rep) {
        util::Rng rng(uidx(rep) * 19 + 3);
        workload::WorkloadSpec spec;
        spec.jobs = static_cast<int>(jobs);
        spec.load = load;
        spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
        const Instance inst = workload::generate(rng, tree, spec);
        const SpeedProfile speed1 = SpeedProfile::uniform(inst.tree(), 1.0);

        const double lb = lp::combined_lower_bound(inst);
        lp::OptSearchOptions opt;
        opt.restarts = 3;
        opt.max_passes = 4;
        opt.seed = uidx(rep) + 1;
        const auto search = lp::search_opt_upper_bound(inst, speed1, opt);
        const auto online =
            algo::run_named_policy(inst, speed1, "paper", 0.5);

        lbs.add(lb);
        ubs.add(search.best_flow);
        gaps.add(search.best_flow / lb);
        algs.add(online.total_flow);
        csv.add(name, load, rep, lb, search.best_flow,
                search.best_flow / lb);
      }
      table.add(name, load, lbs.mean(), ubs.mean(), gaps.mean(), algs.mean(),
                ubs.mean() <= algs.mean() + 1e-9 ? "yes" : "ALG above UB");
    }
  }
  std::cout << table.str()
            << "\n(gap ~2x means the reported competitive ratios are at most "
               "~2x pessimistic)\n";
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
