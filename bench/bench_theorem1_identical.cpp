// E1 — Theorem 1: identical routers + identical machines.
//
// The paper proves a (1+eps)-speed O(1/eps^7)-competitive algorithm. This
// experiment sweeps eps, runs the paper's algorithm with its speed profile
// ((1+eps) on root children, (1+eps)^2 elsewhere), and reports the ratio of
// its total flow time to the certified lower bound on the speed-1
// adversary's optimum. Expected shape: the ratio stays bounded for every
// eps and grows as eps shrinks — never exploding with instance size.
//
// Repetitions fan out over the exec thread pool (TREESCHED_THREADS workers,
// default hardware concurrency); every rep's seed is a pure function of its
// grid position, so the tables are identical at any thread count.
#include <iostream>

#include "treesched/exec/parallel.hpp"
#include "treesched/treesched.hpp"

using namespace treesched;

namespace {

experiments::RatioResult run_cell(std::uint64_t rep_seed, int jobs,
                                  double load, double eps) {
  util::Rng rng(rep_seed);
  const Tree tree = builders::fat_tree(2, 2, 2);
  workload::WorkloadSpec spec;
  spec.jobs = jobs;
  spec.load = load;
  spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
  spec.sizes.class_eps = eps;
  const Instance inst = workload::generate(rng, tree, spec);
  return experiments::measure_ratio(
      inst, SpeedProfile::paper_identical(inst.tree(), eps), "paper", eps);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_theorem1_identical",
                "Competitive-ratio sweep over eps (identical endpoints).");
  auto& jobs = cli.add_int("jobs", 400, "jobs per repetition");
  auto& reps = cli.add_int("reps", 5, "repetitions per eps");
  auto& load = cli.add_double("load", 0.85, "root-cut utilization");
  auto& seed = cli.add_int("seed", 1, "base seed");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E1 / Theorem 1 — (1+eps)-speed competitiveness, identical endpoints\n"
      "ratio = ALG total flow / certified lower bound (speed-1 adversary).\n"
      "Expected shape: bounded for all eps; grows as eps decreases.\n\n";

  const std::size_t threads = exec::default_thread_count();
  util::Table table({"eps", "speed profile", "ratio mean", "ratio min",
                     "ratio max", "mean flow"});
  util::CsvWriter csv({"eps", "rep", "ratio", "alg_flow", "lower_bound"});

  // Flatten the eps × rep grid into one task list; gather by index.
  const std::vector<double> eps_grid = experiments::epsilon_sweep();
  const auto ureps = static_cast<std::size_t>(reps);
  const auto results = exec::parallel_map(
      threads, eps_grid.size() * ureps, [&](std::size_t t) {
        const double eps = eps_grid[t / ureps];
        const std::size_t rep = t % ureps;
        const std::uint64_t rep_seed = static_cast<std::uint64_t>(seed) * 1000 +
                                       rep * 17 +
                                       static_cast<std::uint64_t>(eps * 1000);
        return run_cell(rep_seed, static_cast<int>(jobs), load, eps);
      });
  for (std::size_t e = 0; e < eps_grid.size(); ++e) {
    const double eps = eps_grid[e];
    stats::Summary ratios;
    stats::Summary flows;
    for (std::size_t rep = 0; rep < ureps; ++rep) {
      const auto& r = results[e * ureps + rep];
      ratios.add(r.ratio);
      flows.add(r.mean_flow);
      csv.add(eps, rep, r.ratio, r.alg_flow, r.lower_bound);
    }
    std::ostringstream profile;
    profile << (1.0 + eps) << " / " << (1.0 + eps) * (1.0 + eps);
    table.add(eps, profile.str(), ratios.mean(), ratios.min(), ratios.max(),
              flows.mean());
  }
  std::cout << table.str();

  // Scale sweep: a competitive guarantee is instance-size independent, so
  // the ratio must stay flat as n grows (only its variance shrinks).
  std::cout << "\ninstance-size independence (eps = 0.5):\n\n";
  util::Table scale_table({"jobs", "ratio mean", "ratio max"});
  const std::vector<int> sizes = {125, 500, 2000, 8000};
  const auto scale_results = exec::parallel_map(
      threads, sizes.size() * ureps, [&](std::size_t t) {
        const int n = sizes[t / ureps];
        const std::size_t rep = t % ureps;
        const std::uint64_t rep_seed =
            static_cast<std::uint64_t>(seed) * 31 + rep + uidx(n);
        return run_cell(rep_seed, n, load, 0.5);
      });
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    stats::Summary ratios;
    for (std::size_t rep = 0; rep < ureps; ++rep)
      ratios.add(scale_results[i * ureps + rep].ratio);
    scale_table.add(sizes[i], ratios.mean(), ratios.max());
  }
  std::cout << scale_table.str();
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
