// E1 — Theorem 1: identical routers + identical machines.
//
// The paper proves a (1+eps)-speed O(1/eps^7)-competitive algorithm. This
// experiment sweeps eps, runs the paper's algorithm with its speed profile
// ((1+eps) on root children, (1+eps)^2 elsewhere), and reports the ratio of
// its total flow time to the certified lower bound on the speed-1
// adversary's optimum. Expected shape: the ratio stays bounded for every
// eps and grows as eps shrinks — never exploding with instance size.
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_theorem1_identical",
                "Competitive-ratio sweep over eps (identical endpoints).");
  auto& jobs = cli.add_int("jobs", 400, "jobs per repetition");
  auto& reps = cli.add_int("reps", 5, "repetitions per eps");
  auto& load = cli.add_double("load", 0.85, "root-cut utilization");
  auto& seed = cli.add_int("seed", 1, "base seed");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E1 / Theorem 1 — (1+eps)-speed competitiveness, identical endpoints\n"
      "ratio = ALG total flow / certified lower bound (speed-1 adversary).\n"
      "Expected shape: bounded for all eps; grows as eps decreases.\n\n";

  util::Table table({"eps", "speed profile", "ratio mean", "ratio min",
                     "ratio max", "mean flow"});
  util::CsvWriter csv({"eps", "rep", "ratio", "alg_flow", "lower_bound"});

  for (const double eps : experiments::epsilon_sweep()) {
    stats::Summary ratios;
    stats::Summary flows;
    for (int rep = 0; rep < reps; ++rep) {
      util::Rng rng(static_cast<std::uint64_t>(seed) * 1000 + uidx(rep) * 17 +
                    static_cast<std::uint64_t>(eps * 1000));
      const Tree tree = builders::fat_tree(2, 2, 2);
      workload::WorkloadSpec spec;
      spec.jobs = static_cast<int>(jobs);
      spec.load = load;
      spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
      spec.sizes.class_eps = eps;
      const Instance inst = workload::generate(rng, tree, spec);
      const auto r = experiments::measure_ratio(
          inst, SpeedProfile::paper_identical(inst.tree(), eps), "paper",
          eps);
      ratios.add(r.ratio);
      flows.add(r.mean_flow);
      csv.add(eps, rep, r.ratio, r.alg_flow, r.lower_bound);
    }
    std::ostringstream profile;
    profile << (1.0 + eps) << " / " << (1.0 + eps) * (1.0 + eps);
    table.add(eps, profile.str(), ratios.mean(), ratios.min(), ratios.max(),
              flows.mean());
  }
  std::cout << table.str();

  // Scale sweep: a competitive guarantee is instance-size independent, so
  // the ratio must stay flat as n grows (only its variance shrinks).
  std::cout << "\ninstance-size independence (eps = 0.5):\n\n";
  util::Table scale_table({"jobs", "ratio mean", "ratio max"});
  for (const int n : {125, 500, 2000, 8000}) {
    stats::Summary ratios;
    for (int rep = 0; rep < reps; ++rep) {
      util::Rng rng(static_cast<std::uint64_t>(seed) * 31 + uidx(rep) + uidx(n));
      const Tree tree = builders::fat_tree(2, 2, 2);
      workload::WorkloadSpec spec;
      spec.jobs = n;
      spec.load = load;
      spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
      spec.sizes.class_eps = 0.5;
      const Instance inst = workload::generate(rng, tree, spec);
      const auto r = experiments::measure_ratio(
          inst, SpeedProfile::paper_identical(inst.tree(), 0.5), "paper",
          0.5);
      ratios.add(r.ratio);
    }
    scale_table.add(n, ratios.mean(), ratios.max());
  }
  std::cout << scale_table.str();
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
