// E20 — robustness: flow-time degradation vs node failure rate.
//
// The paper's guarantees assume a failure-free tree. This experiment
// measures what faults cost: a grid of node crash rates (MTBF/MTTR model,
// seed-derived fault plans) is swept with the fault-greedy policy — the
// paper's greedy Lemma-4 rule for initial dispatch plus the same rule,
// restricted to surviving machines, for failure-aware re-dispatch. Reported
// per rate: mean flow time, degradation vs the fault-free control cell
// (rate 0), and the competitive ratio against the fault-free lower bound.
// Expected shape: degradation grows smoothly with the rate — recovery never
// loses jobs, so the curve bends, it does not cliff.
//
// Repetitions fan out over the exec thread pool; every task's seed is a
// pure function of its grid index, so the table is identical at any thread
// count (TREESCHED_THREADS=1 reproduces it sequentially).
#include <iostream>

#include "treesched/exec/sweep.hpp"
#include "treesched/treesched.hpp"

using namespace treesched;

namespace {

std::vector<double> parse_rates(const std::string& csv) {
  std::vector<double> out;
  for (const std::string& part : util::split(csv, ','))
    if (!part.empty()) out.push_back(std::stod(part));
  if (out.empty() || out.front() != 0.0)
    out.insert(out.begin(), 0.0);  // the control cell anchors degradation
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_fault_sweep",
                "Flow-time degradation vs node failure rate (E20).");
  auto& rates = cli.add_string(
      "rates", "0,0.005,0.01,0.02,0.05", "comma-separated node crash rates");
  auto& mttr = cli.add_double("mttr", 5.0, "mean time to repair");
  auto& tree = cli.add_string("tree", "caterpillar-2x3x2",
                              "standard_trees topology name");
  auto& eps = cli.add_double("eps", 0.5, "speed augmentation epsilon");
  auto& jobs = cli.add_int("jobs", 300, "jobs per repetition");
  auto& reps = cli.add_int("reps", 5, "repetitions per rate");
  auto& load = cli.add_double("load", 0.85, "root-cut utilization");
  auto& seed = cli.add_int("seed", 1, "base seed");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E20 — fault sweep: flow-time degradation vs node failure rate\n"
      "fault-greedy = paper greedy dispatch + failure-aware re-dispatch\n"
      "over surviving machines. degradation = mean flow / rate-0 mean flow.\n"
      "Expected shape: smooth growth in the rate, no cliff.\n\n";

  exec::SweepSpec spec;
  spec.policies = {"fault-greedy"};
  spec.trees = {tree};
  spec.eps_grid = {eps};
  spec.fault_rates = parse_rates(rates);
  spec.fault_mttr = mttr;
  spec.seeds = static_cast<int>(reps);
  spec.base_seed = static_cast<std::uint64_t>(seed);
  spec.jobs = static_cast<int>(jobs);
  spec.load = load;
  const exec::SweepResult result = exec::run_sweep(spec);

  const double control = result.cells.front().mean_flow;
  util::Table table({"failure rate", "mean flow", "degradation",
                     "ratio mean", "ratio ci95 hi", "reps"});
  util::CsvWriter csv({"rate", "mean_flow", "degradation", "ratio_mean",
                       "ratio_ci_lo", "ratio_ci_hi"});
  for (const exec::SweepCellStats& cell : result.cells) {
    const double rate = spec.fault_rates[cell.fault_i];
    const double deg = control > 0.0 ? cell.mean_flow / control : 0.0;
    table.add(rate, cell.mean_flow, deg, cell.ratio_mean, cell.ratio_ci_hi,
              cell.count);
    csv.add(rate, cell.mean_flow, deg, cell.ratio_mean, cell.ratio_ci_lo,
            cell.ratio_ci_hi);
  }
  std::cout << table.str() << '\n';
  std::cout << "threads            : " << result.threads_used << '\n';
  if (!csv_path.empty()) {
    csv.write_file(csv_path);
    std::cout << "csv                : " << csv_path << '\n';
  }
  return 0;
}
