// E16 — jobs created at arbitrary nodes (the paper's future-work model).
//
// A fraction of jobs is born directly on machines instead of the root; its
// data routes up-and-over through the tree (the root acts as a transit
// router). We sweep that fraction and compare anycast target-selection
// strategies. Expected shape: locality pays — flow falls as more jobs are
// born near machines — and congestion-aware target selection beats
// closest-machine when hotspots form.
#include <iostream>

#include "treesched/algo/anycast.hpp"
#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_anycast",
                "Arbitrary-source jobs: locality sweep and strategies.");
  auto& jobs = cli.add_int("jobs", 300, "jobs per cell");
  auto& reps = cli.add_int("reps", 3, "seeds per cell");
  auto& load = cli.add_double("load", 0.7, "root-cut utilization");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E16 — future-work model: jobs born at machines route up-and-over\n"
      "(the root transits at speed 1.5 like every other node here).\n"
      "Expected shape: more locally-born jobs => less flow; the greedy\n"
      "strategy dominates closest-machine as load concentrates.\n\n";

  util::Table table({"leaf-born fraction", "strategy", "total flow",
                     "mean flow", "max flow"});
  util::CsvWriter csv({"fraction", "strategy", "rep", "total_flow"});

  for (const double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    for (const auto strategy :
         {algo::AnycastStrategy::kClosest, algo::AnycastStrategy::kLeastVolume,
          algo::AnycastStrategy::kGreedy}) {
      stats::Summary total, mean, mx;
      for (int rep = 0; rep < reps; ++rep) {
        util::Rng rng(uidx(rep) * 31 + 17);
        const Tree tree = builders::fat_tree(2, 2, 2);
        workload::WorkloadSpec spec;
        spec.jobs = static_cast<int>(jobs);
        spec.load = load;
        spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
        spec.leaf_source_fraction = frac;
        const Instance inst = workload::generate(rng, tree, spec);

        const auto m = algo::run_anycast(
            inst, SpeedProfile::uniform(inst.tree(), 1.5), strategy);
        total.add(m.total_flow_time());
        mean.add(m.mean_flow_time());
        mx.add(m.max_flow_time());
        csv.add(frac, algo::anycast_strategy_name(strategy), rep,
                m.total_flow_time());
      }
      table.add(frac, algo::anycast_strategy_name(strategy), total.mean(),
                mean.mean(), mx.mean());
    }
  }
  std::cout << table.str();
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
