// E14 — ablation of the assignment rule's depth-penalty constant.
//
// The rule charges 6/eps^2 * d_v * p_j per candidate leaf — the constant
// Lemma 4's proof needs. E11 showed it over-concentrates load on shallow
// branches (Figure-1 tree, ratio 4.5). Here we sweep the coefficient from
// 0 (depth-blind) upward, on a depth-skewed tree, to locate the practical
// sweet spot and quantify how loose the proof's constant is.
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_penalty_ablation",
                "Depth-penalty coefficient sweep for the greedy rule.");
  auto& jobs = cli.add_int("jobs", 400, "jobs per cell");
  auto& reps = cli.add_int("reps", 4, "seeds per cell");
  auto& load = cli.add_double("load", 0.85, "root-cut utilization");
  auto& eps = cli.add_double("eps", 0.5, "epsilon (fixes speeds)");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E14 — ablation: cost = F + coeff * d_v * p_j; paper coeff = 6/eps^2\n"
      "Trees with skewed depths; ratio vs certified lower bound.\n"
      "Expected shape: a broad sweet spot at small coefficients; the\n"
      "paper's constant (24 at eps=0.5) overpays on depth-skewed trees.\n\n";

  const std::vector<std::pair<std::string, Tree>> trees = {
      {"figure1", builders::figure1_tree()},
      {"skewed-brooms", builders::broomstick({2, 6}, {{2}, {6}})},
      {"fat-2x2x2", builders::fat_tree(2, 2, 2)},
  };
  const double paper_coeff = 6.0 / (eps * eps);

  util::Table table({"tree", "coeff", "ratio mean", "ratio max"});
  util::CsvWriter csv({"tree", "coeff", "rep", "ratio"});

  for (const auto& [name, tree] : trees) {
    for (double coeff : {0.0, 0.5, 1.0, 2.0, 6.0, paper_coeff,
                         4.0 * paper_coeff}) {
      stats::Summary ratios;
      for (int rep = 0; rep < reps; ++rep) {
        util::Rng rng(uidx(rep) * 23 + 11);
        workload::WorkloadSpec spec;
        spec.jobs = static_cast<int>(jobs);
        spec.load = load;
        spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
        const Instance inst = workload::generate(rng, tree, spec);

        algo::PaperGreedyPolicy policy(eps, coeff);
        const auto run = algo::run_policy(
            inst, SpeedProfile::paper_identical(inst.tree(), eps), policy);
        const double lb = lp::combined_lower_bound(inst);
        ratios.add(run.total_flow / lb);
        csv.add(name, coeff, rep, run.total_flow / lb);
      }
      std::ostringstream label;
      label << coeff << (coeff == paper_coeff ? " (paper)" : "");
      table.add(name, label.str(), ratios.mean(), ratios.max());
    }
  }
  std::cout << table.str();

  // Second ablation: tie-breaking among equal-cost leaves. In the identical
  // model the rule cannot distinguish equal-depth leaves under one root
  // child; kFirst funnels them to a single machine, kRotate spreads them.
  std::cout << "\ntie-breaking ablation (paper coefficient, leaf-replicated "
               "caterpillar):\n\n";
  util::Table tie_table({"tie-break", "ratio mean", "ratio max"});
  for (const auto tie : {algo::PaperGreedyPolicy::TieBreak::kFirst,
                         algo::PaperGreedyPolicy::TieBreak::kRotate}) {
    stats::Summary ratios;
    for (int rep = 0; rep < reps; ++rep) {
      util::Rng rng(uidx(rep) * 41 + 2);
      const Tree tree = builders::caterpillar(2, 2, 4);
      workload::WorkloadSpec spec;
      spec.jobs = static_cast<int>(jobs);
      spec.load = load;
      spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
      const Instance inst = workload::generate(rng, tree, spec);
      algo::PaperGreedyPolicy policy(eps, paper_coeff, tie);
      const auto run = algo::run_policy(
          inst, SpeedProfile::paper_identical(inst.tree(), eps), policy);
      ratios.add(run.total_flow / lp::combined_lower_bound(inst));
    }
    tie_table.add(tie == algo::PaperGreedyPolicy::TieBreak::kFirst
                      ? "first (paper-literal)"
                      : "rotate",
                  ratios.mean(), ratios.max());
  }
  std::cout << tie_table.str();
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
