// E7 — the dual-fitting analysis of Sections 3.5/3.6, run numerically.
//
// Constructs the paper's dual variables from live runs on broomsticks,
// checks constraints (4)(5)(6) at every alpha breakpoint, and reports the
// weak-duality competitiveness certificate ALG_frac / dual_objective.
// Expected shape: all residuals <= 0 (feasible); the certificate grows as
// eps shrinks, consistent with the O(1/eps^3) of Theorems 5/6.
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_dual_fitting",
                "Numeric dual fitting on broomsticks (identical + unrelated).");
  auto& jobs = cli.add_int("jobs", 120, "jobs per instance");
  auto& reps = cli.add_int("reps", 3, "instances per cell");
  auto& seed = cli.add_int("seed", 6, "base seed");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E7 / Lemmas 5-7 + Theorems 5-6 — dual feasibility and certificates\n"
      "residuals must be <= 0 after the eps^2/10 (or /20) scaling;\n"
      "cert = ALG_frac / dual objective upper-bounds the fractional\n"
      "competitive ratio on the instance by weak duality.\n\n";

  util::Table table({"model", "eps", "rep", "feasible", "resid c4",
                     "resid c5", "cert ratio"});
  util::CsvWriter csv({"model", "eps", "rep", "feasible", "cert"});

  for (const double eps : {1.0, 0.5, 0.25}) {
    for (int rep = 0; rep < reps; ++rep) {
      Tree tree = builders::broomstick({4, 5}, {{2, 4}, {3, 5}});
      util::Rng rng(static_cast<std::uint64_t>(seed) * 13 + uidx(rep) +
                    static_cast<std::uint64_t>(eps * 100));
      workload::WorkloadSpec spec;
      spec.jobs = static_cast<int>(jobs);
      spec.load = 0.85;
      spec.sizes.class_eps = eps;

      {
        const Instance inst = workload::generate(rng, tree, spec);
        const auto rep_id = lp::dual_fit_identical(inst, eps);
        table.add("identical", eps, rep, rep_id.feasible() ? "yes" : "NO",
                  rep_id.max_residual_c4, rep_id.max_residual_c5,
                  rep_id.certificate_ratio);
        csv.add("identical", eps, rep, rep_id.feasible(),
                rep_id.certificate_ratio);
      }
      {
        workload::WorkloadSpec uspec = spec;
        uspec.endpoints = EndpointModel::kUnrelated;
        uspec.unrelated.class_eps = eps;
        const Instance inst = workload::generate(rng, tree, uspec);
        const auto rep_un = lp::dual_fit_unrelated(inst, eps);
        table.add("unrelated", eps, rep, rep_un.feasible() ? "yes" : "NO",
                  rep_un.max_residual_c4, rep_un.max_residual_c5,
                  rep_un.certificate_ratio);
        csv.add("unrelated", eps, rep, rep_un.feasible(),
                rep_un.certificate_ratio);
      }
    }
  }
  std::cout << table.str()
            << "\nNote: the gamma duals use the Q-based S-set (self-term "
               "only in the assigned subtree); the extended abstract's "
               "uniform F is infeasible by exactly eps^2/10 at t = r_j — "
               "see DESIGN.md / EXPERIMENTS.md.\n";
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
