// E19 — hunting the open question: does the unrelated model really need
// (2+eps) speed?
//
// The conclusion leaves open whether (1+eps) suffices for unrelated
// machines. This harness runs local-search over small instances to
// maximize ALG / OPT-estimate at three speed profiles. Rising best-found
// ratios under the (1+eps) profile but not the 2(1+eps) one would be
// evidence the factor 2 is real; flat curves everywhere are evidence it is
// an analysis artifact. Ratios here divide by an offline-search *upper*
// bound on OPT, so they understate the truth — conservative by design.
#include <iostream>

#include "treesched/exec/parallel.hpp"
#include "treesched/lp/adversary_search.hpp"
#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_adversary_hunt",
                "Adversarial instance search for the (2+eps) question.");
  auto& iterations = cli.add_int("iterations", 250, "mutation steps");
  auto& jobs = cli.add_int("jobs", 8, "jobs per instance");
  auto& reps = cli.add_int("reps", 2, "independent hunts per cell");
  auto& eps = cli.add_double("eps", 0.5, "epsilon");
  cli.parse(argc, argv);

  std::cout <<
      "E19 — adversarial hunt (conclusion's open question)\n"
      "best-found ALG/OPT-UB per speed profile; conservative ratios.\n\n";

  const Tree tree = builders::star_of_paths(2, 2);
  util::Table table({"profile", "model", "hunt", "best ratio", "evals"});

  struct Cell {
    const char* name;
    SpeedProfile speeds;
    bool unrelated;
  };
  const std::vector<Cell> cells = {
      {"(1+eps) unrelated", SpeedProfile::paper_identical(tree, eps), true},
      {"2(1+eps) unrelated", SpeedProfile::paper_unrelated(tree, eps), true},
      {"(1+eps) identical", SpeedProfile::paper_identical(tree, eps), false},
  };

  // Independent hunts fan out over the exec pool (TREESCHED_THREADS
  // workers); each task's search seed depends only on its grid position, so
  // the table is identical at any thread count.
  const auto ureps = static_cast<std::size_t>(reps);
  const auto found = exec::parallel_map(
      exec::default_thread_count(), cells.size() * ureps, [&](std::size_t t) {
        const Cell& cell = cells[t / ureps];
        lp::AdversaryOptions opt;
        opt.jobs = static_cast<int>(jobs);
        opt.iterations = static_cast<int>(iterations);
        opt.unrelated = cell.unrelated;
        opt.seed = (t % ureps) * 101 + 13;
        return lp::search_adversarial_instance(tree, cell.speeds, eps, opt);
      });
  for (std::size_t c = 0; c < cells.size(); ++c)
    for (std::size_t rep = 0; rep < ureps; ++rep)
      table.add(cells[c].name, cells[c].unrelated ? "unrelated" : "identical",
                rep, found[c * ureps + rep].best_ratio,
                found[c * ureps + rep].evaluations);
  std::cout << table.str()
            << "\n(ratios can sit below 1: the algorithm has extra speed "
               "while OPT runs at speed 1. Watch the *relative* height of "
               "the (1+eps)-unrelated row: if a true (2-delta) lower bound "
               "exists, sustained search should push that row up while the "
               "others stay put.)\n";
  return 0;
}
