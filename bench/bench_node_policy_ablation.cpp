// E15 — ablation of the per-node discipline, plus the conclusion's
// alternative objectives.
//
// The paper commits to SJF on every node ("somewhat surprising that such a
// simple greedy policy can be used"). This experiment swaps the node
// discipline under the same assignment rule and reports three objectives:
// total flow (the paper's), max flow, and weighted flow (with non-unit
// weights, where HDF generalizes SJF) — the conclusion's open directions.
//
// Expected shape: SJF/SRPT win total flow; FIFO wins max flow (no
// starvation); HDF wins weighted flow under skewed weights.
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_node_policy_ablation",
                "Node-discipline ablation across objectives.");
  auto& jobs = cli.add_int("jobs", 500, "jobs per cell");
  auto& reps = cli.add_int("reps", 3, "seeds per cell");
  auto& load = cli.add_double("load", 0.9, "root-cut utilization");
  auto& eps = cli.add_double("eps", 0.5, "epsilon");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E15 — node-discipline ablation (assignment rule fixed to the "
      "paper's)\nObjectives: total flow (paper), max flow, weighted flow "
      "(weights ~ U{1..8}).\n\n";

  util::Table table({"discipline", "total flow", "max flow",
                     "weighted flow", "p99 flow"});
  util::CsvWriter csv({"discipline", "rep", "total", "max", "weighted"});

  for (const sim::NodePolicy np :
       {sim::NodePolicy::kSjf, sim::NodePolicy::kSrpt, sim::NodePolicy::kFifo,
        sim::NodePolicy::kLcfs, sim::NodePolicy::kHdf}) {
    stats::Summary total, mx, weighted, p99s;
    for (int rep = 0; rep < reps; ++rep) {
      util::Rng rng(uidx(rep) * 7 + 29);
      const Tree tree = builders::fat_tree(2, 2, 2);
      workload::WorkloadSpec spec;
      spec.jobs = static_cast<int>(jobs);
      spec.load = load;
      spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
      spec.weights = workload::WeightModel::kUniformInt;
      const Instance inst = workload::generate(rng, tree, spec);

      sim::EngineConfig cfg;
      cfg.node_policy = np;
      const auto run = algo::run_named_policy(
          inst, SpeedProfile::paper_identical(inst.tree(), eps), "paper",
          eps, uidx(rep) + 1, cfg);
      total.add(run.total_flow);
      mx.add(run.max_flow);
      weighted.add(run.metrics.total_weighted_flow_time());
      std::vector<double> flows;
      for (const auto& r : run.metrics.jobs()) flows.push_back(r.flow());
      p99s.add(stats::percentile(flows, 0.99));
      csv.add(sim::node_policy_name(np), rep, run.total_flow, run.max_flow,
              run.metrics.total_weighted_flow_time());
    }
    table.add(sim::node_policy_name(np), total.mean(), mx.mean(),
              weighted.mean(), p99s.mean());
  }
  std::cout << table.str()
            << "\n(the conclusion asks about max flow time on trees — FIFO "
               "routers trade mean for tail, visible above)\n";
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
