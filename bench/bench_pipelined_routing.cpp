// E12 — the Section 2 extension: jobs split into small pieces while
// routing. The paper states its results extend to this model and that
// interior congestion is "effectively negated". We sweep the chunk size
// from whole-job store-and-forward down to fine-grained pipelining.
//
// Expected shape: total flow decreases monotonically with chunk size, with
// the gain growing with tree depth; the competitive ratio never worsens.
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_pipelined_routing",
                "Chunk-size sweep for the pipelined-routing extension.");
  auto& jobs = cli.add_int("jobs", 400, "jobs per cell");
  auto& reps = cli.add_int("reps", 3, "seeds per cell");
  auto& load = cli.add_double("load", 0.8, "root-cut utilization");
  auto& eps = cli.add_double("eps", 0.5, "epsilon");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E12 — pipelined routing (jobs split into pieces on routers)\n"
      "chunk = 0 is the paper's store-and-forward base model.\n"
      "Expected shape: flow falls as chunks shrink; deeper trees gain "
      "more.\n\n";

  util::Table table({"tree", "chunk", "total flow (mean)", "flow/LB",
                     "max flow"});
  util::CsvWriter csv({"tree", "chunk", "rep", "total_flow", "ratio"});

  const std::vector<std::pair<std::string, Tree>> trees = {
      {"shallow-4x2", builders::star_of_paths(4, 2)},
      {"deep-2x8", builders::star_of_paths(2, 8)},
  };

  for (const auto& [name, tree] : trees) {
    for (const double chunk : {0.0, 4.0, 2.0, 1.0, 0.5, 0.25}) {
      stats::Summary flow, ratio, maxflow;
      for (int rep = 0; rep < reps; ++rep) {
        util::Rng rng(uidx(rep) * 17 + 9);
        workload::WorkloadSpec spec;
        spec.jobs = static_cast<int>(jobs);
        spec.load = load;
        spec.sizes.dist = workload::SizeDistribution::kBimodal;
        spec.sizes.spread = 8.0;
        const Instance inst = workload::generate(rng, tree, spec);
        sim::EngineConfig cfg;
        cfg.router_chunk_size = chunk;
        const auto r = experiments::measure_ratio(
            inst, SpeedProfile::uniform(inst.tree(), 1.0 + eps), "paper",
            eps, uidx(rep) + 1, cfg);
        flow.add(r.alg_flow);
        ratio.add(r.ratio);
        maxflow.add(r.alg_flow > 0 ? r.alg_flow : 0);
        csv.add(name, chunk, rep, r.alg_flow, r.ratio);
      }
      table.add(name, chunk == 0.0 ? std::string("whole job")
                                   : util::Table::num(chunk, 2),
                flow.mean(), ratio.mean(), maxflow.max());
    }
  }
  std::cout << table.str();
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
