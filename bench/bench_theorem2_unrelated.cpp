// E2 — Theorem 2: identical routers + *unrelated* machines.
//
// The paper proves a (2+eps)-speed O(1/eps^7)-competitive algorithm and
// asks (conclusion) whether 2+eps can be reduced to 1+eps. This experiment
// sweeps eps at the paper's 2(1+eps)/2(1+eps)^2 profile and, for contrast,
// at the *identical-case* profile (1+eps)/(1+eps)^2 — the regime the proof
// does not cover. Expected shape: bounded ratios at the paper's profile;
// the 1+eps profile is where degradation (if any) would appear.
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_theorem2_unrelated",
                "Competitive-ratio sweep over eps (unrelated endpoints).");
  auto& jobs = cli.add_int("jobs", 350, "jobs per repetition");
  auto& reps = cli.add_int("reps", 5, "repetitions per eps");
  auto& load = cli.add_double("load", 0.8, "root-cut utilization");
  auto& seed = cli.add_int("seed", 2, "base seed");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E2 / Theorem 2 — (2+eps)-speed competitiveness, unrelated machines\n"
      "ratio = ALG total flow / certified lower bound (speed-1 adversary).\n"
      "Columns compare the proved 2(1+eps) profile with the unproved "
      "(1+eps) profile (open question in the conclusion).\n\n";

  util::Table table({"eps", "ratio @2(1+eps)", "max @2(1+eps)",
                     "ratio @(1+eps)", "max @(1+eps)"});
  util::CsvWriter csv({"eps", "rep", "profile", "ratio"});

  for (const double eps : experiments::epsilon_sweep()) {
    stats::Summary proved, open;
    for (int rep = 0; rep < reps; ++rep) {
      util::Rng rng(static_cast<std::uint64_t>(seed) * 999 + uidx(rep) * 31 +
                    static_cast<std::uint64_t>(eps * 1000));
      const Tree tree = builders::fat_tree(2, 2, 2);
      workload::WorkloadSpec spec;
      spec.jobs = static_cast<int>(jobs);
      spec.load = load;
      spec.endpoints = EndpointModel::kUnrelated;
      spec.unrelated.model = workload::UnrelatedModel::kUniformFactor;
      spec.unrelated.spread = 4.0;
      spec.sizes.class_eps = eps;
      spec.unrelated.class_eps = eps;
      const Instance inst = workload::generate(rng, tree, spec);

      const auto r2 = experiments::measure_ratio(
          inst, SpeedProfile::paper_unrelated(inst.tree(), eps), "paper",
          eps);
      proved.add(r2.ratio);
      csv.add(eps, rep, "2(1+eps)", r2.ratio);

      const auto r1 = experiments::measure_ratio(
          inst, SpeedProfile::paper_identical(inst.tree(), eps), "paper",
          eps);
      open.add(r1.ratio);
      csv.add(eps, rep, "(1+eps)", r1.ratio);
    }
    table.add(eps, proved.mean(), proved.max(), open.mean(), open.max());
  }
  std::cout << table.str();
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
