// E11 — robustness across topologies: the same guarantees are claimed for
// any tree, so the observed ratio should not blow up on any standard shape
// (stars, fat-trees, caterpillars, deep spines, random trees, Figure 1).
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_tree_shapes",
                "Paper algorithm's ratio across standard topologies.");
  auto& jobs = cli.add_int("jobs", 400, "jobs per cell");
  auto& reps = cli.add_int("reps", 3, "seeds per tree");
  auto& load = cli.add_double("load", 0.85, "root-cut utilization");
  auto& eps = cli.add_double("eps", 0.5, "epsilon");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E11 — ratio across topologies (paper rule, paper speed profile)\n"
      "Expected shape: bounded everywhere; depth raises the additive path\n"
      "cost but not the competitive gap.\n\n";

  util::Table table({"tree", "machines", "max depth", "ratio mean",
                     "ratio max", "mean flow"});
  util::CsvWriter csv({"tree", "rep", "ratio"});

  for (const auto& [name, tree] : experiments::standard_trees()) {
    stats::Summary ratios, flows;
    for (int rep = 0; rep < reps; ++rep) {
      util::Rng rng(uidx(rep) * 13 + 5);
      workload::WorkloadSpec spec;
      spec.jobs = static_cast<int>(jobs);
      spec.load = load;
      spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
      spec.sizes.class_eps = eps;
      const Instance inst = workload::generate(rng, tree, spec);
      const auto r = experiments::measure_ratio(
          inst, SpeedProfile::paper_identical(inst.tree(), eps), "paper",
          eps);
      ratios.add(r.ratio);
      flows.add(r.mean_flow);
      csv.add(name, rep, r.ratio);
    }
    table.add(name, tree.leaves().size(), tree.max_leaf_depth(),
              ratios.mean(), ratios.max(), flows.mean());
  }
  std::cout << table.str();
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
