// E21 — overload protection: goodput and tail flow time vs offered load,
// per admission-control policy.
//
// The paper's guarantees assume rho < 1 at the root cut; this experiment
// measures what sustained rho >= 1 costs and what admission control buys
// back. For every offered load in the grid and every shedding policy
// (none, bounded-queue, largest-first, deadline), repetitions of a
// bounded-Pareto workload are run at unit speeds and the cell reports
// goodput (completed jobs / makespan), the p99 flow time among completed
// jobs, and the shed/reject count. Expected shape: without shedding,
// goodput collapses past rho = 1 (the backlog grows linearly, so the
// makespan — and every tail percentile — diverges); largest-first degrades
// gracefully, holding goodput roughly flat by spending the overload on the
// biggest jobs (the Lemma-2 choice: shedding the largest p_j frees the most
// backlog per unit of SJF priority mass disturbed).
//
// Every repetition's seed is split_seed(seed, fixed grid index), so the
// table is byte-identical run to run.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <optional>
#include <sstream>

#include "treesched/treesched.hpp"

using namespace treesched;

namespace {

std::vector<double> parse_loads(const std::string& csv) {
  std::vector<double> out;
  for (const std::string& part : util::split(csv, ','))
    if (!part.empty()) out.push_back(std::stod(part));
  if (out.empty()) throw std::invalid_argument("--loads is empty");
  return out;
}

Tree find_tree(const std::string& name) {
  for (const auto& nt : experiments::standard_trees())
    if (nt.name == name) return nt.tree;
  throw std::invalid_argument("unknown tree '" + name + "'");
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

struct Cell {
  double rho = 0.0;
  std::string policy;
  double goodput = 0.0;   ///< NaN-excluding mean over repetitions
  double p99 = 0.0;       ///< NaN-excluding mean over repetitions
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::size_t reps = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_overload_degradation",
                "Goodput and p99 flow vs offered load per shed policy (E21).");
  auto& loads = cli.add_string("loads", "0.5,0.9,1.0,1.5,4.0",
                               "comma-separated offered-load grid");
  auto& policies = cli.add_string(
      "policies", "none,bounded-queue,largest-first,deadline",
      "comma-separated admission policies");
  auto& tree_name = cli.add_string("tree", "star-4x2",
                                   "standard_trees topology name");
  auto& eps = cli.add_double("eps", 0.5, "size-class rounding epsilon");
  auto& jobs = cli.add_int("jobs", 300, "jobs per repetition");
  auto& reps = cli.add_int("reps", 5, "repetitions per cell");
  auto& queue_cap = cli.add_double(
      "queue-cap", 100.0, "root-cut volume cap (bounded-queue/largest-first)");
  auto& slack = cli.add_double("deadline-slack", 6.0,
                               "deadline cells admit iff F <= slack * p_j");
  auto& seed = cli.add_int("seed", 1, "base seed");
  auto& json_path = cli.add_string("json", "", "machine-readable results file");
  cli.parse(argc, argv);

  std::cout <<
      "E21 — overload degradation: goodput / p99 flow vs offered load\n"
      "goodput = completed jobs / makespan, over completed jobs only.\n"
      "Expected shape: 'none' collapses past rho=1 (diverging backlog);\n"
      "largest-first sheds the biggest jobs (Lemma 2) and degrades\n"
      "gracefully; bounded-queue and deadline sit in between.\n\n";

  const Tree tree = find_tree(tree_name);
  const auto tree_ptr = std::make_shared<const Tree>(tree);
  const std::vector<double> load_grid = parse_loads(loads);
  std::vector<std::string> policy_grid;
  for (const std::string& p : util::split(policies, ','))
    if (!p.empty()) policy_grid.push_back(p);

  std::vector<Cell> cells;
  std::uint64_t index = 0;
  for (const double rho : load_grid) {
    for (const std::string& pname : policy_grid) {
      Cell cell;
      cell.rho = rho;
      cell.policy = pname;
      double goodput_sum = 0.0, p99_sum = 0.0;
      std::size_t goodput_n = 0, p99_n = 0;
      for (int rep = 0; rep < static_cast<int>(reps); ++rep, ++index) {
        util::Rng rng(util::split_seed(static_cast<std::uint64_t>(seed),
                                       index));
        workload::WorkloadSpec wspec;
        wspec.jobs = static_cast<int>(jobs);
        wspec.load = rho;
        wspec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
        wspec.sizes.class_eps = eps;
        const Instance inst = workload::generate(rng, tree_ptr, wspec);

        sim::EngineConfig cfg;
        cfg.shed.policy = overload::parse_shed_policy(pname);
        cfg.shed.queue_cap = queue_cap;
        cfg.shed.deadline_slack = slack;
        overload::validate_shed_config(cfg.shed);

        sim::Engine engine(inst, SpeedProfile::uniform(inst.tree(), 1.0),
                           cfg);
        std::optional<overload::AdmissionController> admission;
        if (cfg.shed.enabled()) {
          admission.emplace(cfg.shed, eps);
          engine.set_admission(&*admission);
        }
        algo::PaperGreedyPolicy policy(eps);
        engine.run(policy);

        const sim::Metrics& m = engine.metrics();
        if (std::isfinite(m.goodput())) {
          goodput_sum += m.goodput();
          ++goodput_n;
        }
        const double p99 = m.flow_percentile(0.99);
        if (std::isfinite(p99)) {
          p99_sum += p99;
          ++p99_n;
        }
        cell.completed += m.completed_count();
        cell.shed += m.shed_count() + m.rejected_count();
        ++cell.reps;
      }
      cell.goodput = goodput_n > 0
                         ? goodput_sum / static_cast<double>(goodput_n)
                         : std::nan("");
      cell.p99 = p99_n > 0 ? p99_sum / static_cast<double>(p99_n)
                           : std::nan("");
      cells.push_back(cell);
    }
  }

  util::Table table({"rho", "policy", "goodput", "p99 flow", "completed",
                     "shed", "reps"});
  for (const Cell& c : cells)
    table.add_row({util::Table::num(c.rho), c.policy,
                   std::isfinite(c.goodput) ? util::Table::num(c.goodput)
                                            : "-",
                   std::isfinite(c.p99) ? util::Table::num(c.p99) : "-",
                   std::to_string(c.completed), std::to_string(c.shed),
                   std::to_string(c.reps)});
  std::cout << table.str() << '\n';

  if (!json_path.empty()) {
    std::ostringstream os;
    os << "{\n  \"experiment\": \"overload_degradation\",\n"
       << "  \"tree\": \"" << tree_name << "\",\n"
       << "  \"jobs\": " << static_cast<int>(jobs) << ",\n"
       << "  \"queue_cap\": " << json_num(queue_cap) << ",\n"
       << "  \"deadline_slack\": " << json_num(slack) << ",\n"
       << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      os << "    {\"rho\": " << json_num(c.rho) << ", \"policy\": \""
         << c.policy << "\", \"goodput\": " << json_num(c.goodput)
         << ", \"p99\": " << json_num(c.p99)
         << ", \"completed\": " << c.completed << ", \"shed\": " << c.shed
         << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    util::write_file_atomic(json_path, os.str());
    std::cout << "json               : " << json_path << '\n';
  }
  return 0;
}
