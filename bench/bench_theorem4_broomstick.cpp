// E5 / F2 — Theorem 4: the broomstick reduction loses at most O(1/eps^3)
// in the optimum, given (1+eps)/(1+eps)^2 augmentation on T'.
//
// For small integer instances we compare the exact optimum of the paper's
// LP relaxation on the original tree T at speed 1 against the LP optimum on
// the broomstick T' at the theorem's augmented speeds, and print the
// reduction itself (the paper's Figure 2 as ASCII). Expected shape:
// LP(T', augmented) / LP(T, 1) bounded by a modest constant, often <= 1
// (the augmentation can outweigh the +2 depth).
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_theorem4_broomstick",
                "LP optimum on T vs its broomstick image (Theorem 4).");
  auto& jobs = cli.add_int("jobs", 4, "jobs per instance (LP is exact)");
  auto& reps = cli.add_int("reps", 4, "instances per eps");
  auto& seed = cli.add_int("seed", 5, "base seed");
  cli.parse(argc, argv);

  const Tree tree = builders::figure1_tree();
  const auto red = algo::BroomstickReduction::reduce(tree);

  std::cout << "F2 — the reduction of the paper's Figure 2:\noriginal:\n"
            << tree.to_ascii() << "\nbroomstick image:\n"
            << red.broomstick().to_ascii() << '\n';
  std::cout <<
      "E5 / Theorem 4 — OPT_{T'} (augmented) <= O(1/eps^3) OPT_T (speed 1)\n"
      "Both sides measured by the exact optimum of the paper's LP\n"
      "relaxation (solved by the built-in simplex).\n\n";

  util::Table table({"eps", "instance", "LP(T,1)", "LP(T',aug)", "ratio"});

  for (const double eps : {1.0, 0.5, 0.25}) {
    for (int rep = 0; rep < reps; ++rep) {
      util::Rng rng(static_cast<std::uint64_t>(seed) * 101 + uidx(rep) +
                    static_cast<std::uint64_t>(eps * 1000));
      // Small integer instance: integer releases, small class sizes.
      std::vector<Job> js;
      for (int j = 0; j < jobs; ++j) {
        const double size = util::round_up_to_class(
            rng.uniform_real(0.8, 3.0), eps);
        js.emplace_back(j, static_cast<double>(rng.uniform_int(0, 4)), size);
      }
      const Instance inst(tree, std::move(js), EndpointModel::kIdentical);
      const Instance image = red.transform(inst);

      const auto base = lp::solve_flowtime_lp(
          inst, SpeedProfile::uniform(inst.tree(), 1.0));
      const auto aug = lp::solve_flowtime_lp(
          image, red.theorem4_speeds(eps));
      if (base.status != lp::LpStatus::kOptimal ||
          aug.status != lp::LpStatus::kOptimal) {
        std::cout << "LP not optimal for eps=" << eps << " rep=" << rep
                  << " — skipped\n";
        continue;
      }
      table.add(eps, rep, base.objective, aug.objective,
                aug.objective / base.objective);
    }
  }
  std::cout << table.str()
            << "\n(ratios stay O(1) across eps — the reproduction of the "
               "Theorem 4 loss bound)\n";
  return 0;
}
