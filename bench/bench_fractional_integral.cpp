// E8 — Theorem 3: a c-competitive fractional algorithm converts to an
// O(c/eps)-competitive integral one with (1+eps) extra speed, and with SJF
// on the leaves the *same* algorithm works.
//
// We measure integral / fractional flow time for the paper's algorithm
// (SJF everywhere, so Theorem 3's "use A as A'" case applies) across loads
// and eps. Expected shape: the ratio stays a small constant, far from the
// 1/eps blowup the conversion must guard against in general.
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_fractional_integral",
                "Integral vs fractional flow time (Theorem 3).");
  auto& jobs = cli.add_int("jobs", 500, "jobs per cell");
  auto& reps = cli.add_int("reps", 3, "seeds per cell");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E8 / Theorem 3 — integral/fractional flow for SJF-on-leaves runs\n"
      "Expected shape: small constant ratio (>= 1), stable across load.\n\n";

  util::Table table({"load", "eps", "integral/fractional (mean)", "max"});
  util::CsvWriter csv({"load", "eps", "rep", "ratio"});

  for (const double load : {0.5, 0.7, 0.9, 0.97}) {
    for (const double eps : {1.0, 0.25}) {
      stats::Summary ratios;
      for (int rep = 0; rep < reps; ++rep) {
        util::Rng rng(uidx(rep) * 3 + static_cast<std::uint64_t>(load * 100));
        const Tree tree = builders::fat_tree(2, 2, 2);
        workload::WorkloadSpec spec;
        spec.jobs = static_cast<int>(jobs);
        spec.load = load;
        spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
        spec.sizes.class_eps = eps;
        const Instance inst = workload::generate(rng, tree, spec);
        const auto r = algo::run_named_policy(
            inst, SpeedProfile::paper_identical(inst.tree(), eps), "paper",
            eps);
        const double ratio = r.total_flow / r.fractional_flow;
        ratios.add(ratio);
        csv.add(load, eps, rep, ratio);
      }
      table.add(load, eps, ratios.mean(), ratios.max());
    }
  }
  std::cout << table.str();
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
