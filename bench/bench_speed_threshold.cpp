// E10 — the speed thresholds of Theorems 1 vs 2: identical endpoints need
// only (1+eps) speed, unrelated endpoints are proved at (2+eps); the
// conclusion asks whether that 2 is real.
//
// Uniform speed sweep; ratio against the speed-1 lower bound. Expected
// shape: identical curves flatten just above s=1; unrelated curves keep
// improving noticeably up to s~2, reflecting the "processing times change
// at the machine" hurdle the conclusion describes.
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_speed_threshold",
                "Ratio vs uniform speed in both endpoint models.");
  auto& jobs = cli.add_int("jobs", 400, "jobs per cell");
  auto& reps = cli.add_int("reps", 3, "seeds per cell");
  auto& load = cli.add_double("load", 0.9, "root-cut utilization");
  auto& eps = cli.add_double("eps", 0.5, "epsilon for the paper rule");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E10 — total flow / lower bound vs uniform speed s\n"
      "Expected shape: identical flattens right above s = 1; unrelated\n"
      "keeps gaining up to s ~ 2 (Theorem 2's threshold).\n\n";

  util::Table table({"speed s", "identical (mean ratio)",
                     "unrelated (mean ratio)"});
  util::CsvWriter csv({"speed", "model", "rep", "ratio"});

  for (const double s : {1.0, 1.1, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0}) {
    stats::Summary ident, unrel;
    for (int rep = 0; rep < reps; ++rep) {
      const Tree tree = builders::fat_tree(2, 2, 2);
      {
        util::Rng rng(uidx(rep) * 5 + 1);
        workload::WorkloadSpec spec;
        spec.jobs = static_cast<int>(jobs);
        spec.load = load;
        spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
        const Instance inst = workload::generate(rng, tree, spec);
        const auto r = experiments::measure_ratio(
            inst, SpeedProfile::uniform(inst.tree(), s), "paper", eps,
            uidx(rep) + 1);
        ident.add(r.ratio);
        csv.add(s, "identical", rep, r.ratio);
      }
      {
        util::Rng rng(uidx(rep) * 5 + 2);
        workload::WorkloadSpec spec;
        spec.jobs = static_cast<int>(jobs);
        spec.load = load;
        spec.endpoints = EndpointModel::kUnrelated;
        spec.unrelated.model = workload::UnrelatedModel::kRestricted;
        spec.unrelated.penalty = 16.0;
        const Instance inst = workload::generate(rng, tree, spec);
        const auto r = experiments::measure_ratio(
            inst, SpeedProfile::uniform(inst.tree(), s), "paper", eps,
            uidx(rep) + 1);
        unrel.add(r.ratio);
        csv.add(s, "unrelated", rep, r.ratio);
      }
    }
    table.add(s, ident.mean(), unrel.mean());
  }
  std::cout << table.str();
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
