// E18 — the price of congestion: this paper's contended-links model versus
// the Phillips–Stein–Wein model (related work [32]) where the network only
// delays jobs but never queues them.
//
// Same instances, same speeds: tree-model flow / PSW flow isolates how much
// of the flow time is *contention* rather than distance. Expected shape:
// ~1 at low load, growing with load and with tree depth — the regime where
// the paper's congestion-aware machinery earns its complexity.
#include <iostream>

#include "treesched/algo/psw_model.hpp"
#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("bench_congestion_cost",
                "Contended-links model vs the PSW delay-only model.");
  auto& jobs = cli.add_int("jobs", 400, "jobs per cell");
  auto& reps = cli.add_int("reps", 3, "seeds per cell");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output");
  cli.parse(argc, argv);

  std::cout <<
      "E18 — congestion cost: tree-model flow / PSW (no-contention) flow\n"
      "Expected shape: ~1 at low load; grows with load and depth.\n\n";

  util::Table table({"tree", "load", "tree-model flow", "PSW flow",
                     "congestion factor"});
  util::CsvWriter csv({"tree", "load", "rep", "tree_flow", "psw_flow"});

  const std::vector<std::pair<std::string, Tree>> trees = {
      {"shallow-4x1", builders::star_of_paths(4, 1)},
      {"mid-2x4", builders::star_of_paths(2, 4)},
      {"deep-2x8", builders::star_of_paths(2, 8)},
  };

  for (const auto& [name, tree] : trees) {
    for (const double load : {0.3, 0.6, 0.9}) {
      stats::Summary tree_flow, psw_flow, factor;
      for (int rep = 0; rep < reps; ++rep) {
        util::Rng rng(uidx(rep) * 13 + 7);
        workload::WorkloadSpec spec;
        spec.jobs = static_cast<int>(jobs);
        spec.load = load;
        spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
        const Instance inst = workload::generate(rng, tree, spec);
        const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);

        const auto t = algo::run_named_policy(inst, speeds, "paper", 0.5);
        const auto p = algo::run_psw_model(inst, speeds);
        tree_flow.add(t.total_flow);
        psw_flow.add(p.total_flow);
        factor.add(t.total_flow / p.total_flow);
        csv.add(name, load, rep, t.total_flow, p.total_flow);
      }
      table.add(name, load, tree_flow.mean(), psw_flow.mean(),
                factor.mean());
    }
  }
  std::cout << table.str()
            << "\n(the gap is the phenomenon the paper's model introduces "
               "over [32]: links as a contended resource)\n";
  if (!csv_path.empty()) csv.write_file(csv_path);
  return 0;
}
