// treesched_lint — determinism & model-invariant static analyzer.
//
//   treesched_lint --root . [--dirs src,tools,bench] [--json findings.json]
//
// Scans the project's C++ sources with the from-scratch rule set in
// src/treesched/lint (no compiler dependency), prints a findings table, and
// optionally writes the stable treesched-lint-v1 JSON document that CI
// uploads as an artifact. Rules and the suppression policy are documented in
// docs/LINTING.md.
//
// Exit codes: 0 = clean (suppressed findings allowed), 1 = usage/input
// error, 2 = unsuppressed findings. The CI gate is `exit != 0`.
#include <iostream>

#include "treesched/lint/lint.hpp"
#include "treesched/util/cli.hpp"
#include "treesched/util/fs.hpp"
#include "treesched/util/string_util.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("treesched_lint",
                "Static analysis for determinism and model invariants.");
  auto& root = cli.add_string("root", ".", "project root to scan");
  auto& dirs = cli.add_string(
      "dirs", "src,tools,bench", "comma-separated directories under --root");
  auto& json_path =
      cli.add_string("json", "", "write treesched-lint-v1 JSON here");
  auto& show_suppressed =
      cli.add_flag("show-suppressed", "include suppressed findings in the table");
  auto& list_rules = cli.add_flag("list-rules", "print the rule catalogue");
  auto& quiet = cli.add_flag("quiet", "print only the summary line");

  try {
    cli.parse(argc, argv);

    if (list_rules) {
      for (const lint::RuleInfo& r : lint::rule_catalogue())
        std::cout << r.id << " (" << lint::severity_name(r.severity) << "): "
                  << r.summary << '\n';
      return 0;
    }

    const lint::Report report = lint::lint_tree(root, util::split(dirs, ','));
    if (report.files_scanned == 0)
      throw std::runtime_error("no lintable files under " + root +
                               " (check --root/--dirs)");

    if (!json_path.empty())
      util::write_file_atomic(json_path, lint::report_json(report));

    if (quiet) {
      std::cout << "treesched_lint: " << report.files_scanned << " files, "
                << report.unsuppressed_count() << " unsuppressed findings\n";
    } else {
      std::cout << lint::report_table(report, show_suppressed);
    }
    return report.unsuppressed_count() == 0 ? 0 : 2;
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << '\n' << cli.usage();
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
