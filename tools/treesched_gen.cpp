// treesched_gen — generate a scheduling instance and write it as a trace.
//
//   treesched_gen --tree fat --jobs 1000 --load 0.8 --out trace.txt
//
// Topologies: star:<branches>x<routers>, fat:<arity>x<depth>x<rack>,
// cater:<branches>x<spine>x<leaves>, figure1, random:<routers>x<leaves>.
#include <iostream>

#include "spec_parse.hpp"
#include "treesched/treesched.hpp"

using namespace treesched;
using tools::parse_sizes;
using tools::parse_tree;

int main(int argc, char** argv) {
  util::Cli cli("treesched_gen", "Generate a tree-scheduling trace file.");
  auto& tree_spec = cli.add_string("tree", "fat:2x2x2", "topology spec");
  auto& jobs = cli.add_int("jobs", 1000, "number of jobs");
  auto& load = cli.add_double("load", 0.7, "root-cut utilization target");
  auto& sizes = cli.add_string("sizes", "pareto",
                               "fixed|uniform|exp|pareto|bimodal");
  auto& scale = cli.add_double("scale", 8.0, "size scale");
  auto& class_eps = cli.add_double("class-eps", 0.0,
                                   "round sizes to powers of 1+eps (0=off)");
  auto& unrelated = cli.add_flag("unrelated", "unrelated leaf model");
  auto& bursty = cli.add_flag("bursty", "MMPP arrivals instead of Poisson");
  auto& leaf_sources = cli.add_double(
      "leaf-sources", 0.0, "fraction of jobs born at random machines");
  auto& seed = cli.add_int("seed", 1, "generator seed");
  auto& out = cli.add_string("out", "", "output path (default stdout)");
  cli.parse(argc, argv);

  try {
    util::Rng rng(static_cast<std::uint64_t>(seed));
    const Tree tree = parse_tree(tree_spec, rng);
    workload::WorkloadSpec spec;
    spec.jobs = static_cast<int>(jobs);
    spec.load = load;
    spec.sizes.dist = parse_sizes(sizes);
    spec.sizes.scale = scale;
    spec.sizes.class_eps = class_eps;
    spec.leaf_source_fraction = leaf_sources;
    if (bursty) spec.arrivals = workload::ArrivalProcess::kMmpp;
    if (unrelated) {
      spec.endpoints = EndpointModel::kUnrelated;
      spec.unrelated.class_eps = class_eps;
    }
    const Instance inst = workload::generate(rng, tree, spec);
    if (out.empty()) {
      workload::write_trace(std::cout, inst);
    } else {
      workload::write_trace_file(out, inst);
      std::cerr << "wrote " << inst.job_count() << " jobs on "
                << tree.node_count() << " nodes to " << out << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
