// treesched_gen — generate a scheduling instance and write it as a trace.
//
//   treesched_gen --tree fat --jobs 1000 --load 0.8 --out trace.txt
//
// Topologies: star:<branches>x<routers>, fat:<arity>x<depth>x<rack>,
// cater:<branches>x<spine>x<leaves>, figure1, random:<routers>x<leaves>.
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

namespace {

Tree parse_tree(const std::string& spec, util::Rng& rng) {
  const auto parts = util::split(spec, ':');
  const std::string kind = parts[0];
  std::vector<int> dims;
  if (parts.size() > 1)
    for (const auto& d : util::split(parts[1], 'x'))
      dims.push_back(std::stoi(d));
  auto dim = [&dims](std::size_t i, int def) {
    return i < dims.size() ? dims[i] : def;
  };
  if (kind == "star") return builders::star_of_paths(dim(0, 2), dim(1, 3));
  if (kind == "fat") return builders::fat_tree(dim(0, 2), dim(1, 2), dim(2, 2));
  if (kind == "cater")
    return builders::caterpillar(dim(0, 2), dim(1, 3), dim(2, 2));
  if (kind == "figure1") return builders::figure1_tree();
  if (kind == "random")
    return builders::random_tree(rng, dim(0, 8), dim(1, 10));
  throw std::invalid_argument("unknown tree spec: " + spec);
}

workload::SizeDistribution parse_sizes(const std::string& s) {
  if (s == "fixed") return workload::SizeDistribution::kFixed;
  if (s == "uniform") return workload::SizeDistribution::kUniform;
  if (s == "exp") return workload::SizeDistribution::kExponential;
  if (s == "pareto") return workload::SizeDistribution::kBoundedPareto;
  if (s == "bimodal") return workload::SizeDistribution::kBimodal;
  throw std::invalid_argument("unknown size distribution: " + s);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("treesched_gen", "Generate a tree-scheduling trace file.");
  auto& tree_spec = cli.add_string("tree", "fat:2x2x2", "topology spec");
  auto& jobs = cli.add_int("jobs", 1000, "number of jobs");
  auto& load = cli.add_double("load", 0.7, "root-cut utilization target");
  auto& sizes = cli.add_string("sizes", "pareto",
                               "fixed|uniform|exp|pareto|bimodal");
  auto& scale = cli.add_double("scale", 8.0, "size scale");
  auto& class_eps = cli.add_double("class-eps", 0.0,
                                   "round sizes to powers of 1+eps (0=off)");
  auto& unrelated = cli.add_flag("unrelated", "unrelated leaf model");
  auto& bursty = cli.add_flag("bursty", "MMPP arrivals instead of Poisson");
  auto& leaf_sources = cli.add_double(
      "leaf-sources", 0.0, "fraction of jobs born at random machines");
  auto& seed = cli.add_int("seed", 1, "generator seed");
  auto& out = cli.add_string("out", "", "output path (default stdout)");
  cli.parse(argc, argv);

  try {
    util::Rng rng(static_cast<std::uint64_t>(seed));
    const Tree tree = parse_tree(tree_spec, rng);
    workload::WorkloadSpec spec;
    spec.jobs = static_cast<int>(jobs);
    spec.load = load;
    spec.sizes.dist = parse_sizes(sizes);
    spec.sizes.scale = scale;
    spec.sizes.class_eps = class_eps;
    spec.leaf_source_fraction = leaf_sources;
    if (bursty) spec.arrivals = workload::ArrivalProcess::kMmpp;
    if (unrelated) {
      spec.endpoints = EndpointModel::kUnrelated;
      spec.unrelated.class_eps = class_eps;
    }
    const Instance inst = workload::generate(rng, tree, spec);
    if (out.empty()) {
      workload::write_trace(std::cout, inst);
    } else {
      workload::write_trace_file(out, inst);
      std::cerr << "wrote " << inst.job_count() << " jobs on "
                << tree.node_count() << " nodes to " << out << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
