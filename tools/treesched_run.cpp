// treesched_run — schedule a trace file and report every objective.
//
//   treesched_gen --out t.txt && treesched_run --trace t.txt --policy paper
//
// Policies: paper, broomstick-mirror, closest, random, round-robin,
// least-volume, least-count, fault-greedy — or
// anycast-{closest,least-volume,greedy} for traces with arbitrary-source
// jobs. Speeds: "uniform:<s>", "paper-identical:<eps>",
// "paper-unrelated:<eps>", "layered:<rc>:<rest>".
//
// Fault injection: --fault-plan replays a JSON fault plan
// (treesched-fault-plan-v1); --fault-rate generates a seed-derived plan
// from an MTBF/MTTR model instead. Either way the run uses fault-greedy
// re-dispatch for crashed machines, and --record-out logs the fault events
// so treesched_audit can verify the recovery invariants offline.
//
// Overload protection: --shed-policy arms admission control at the root
// (bounded-queue and largest-first need --queue-cap, deadline uses
// --deadline-slack). Every shed/reject decision lands in the run log, and
// treesched_audit re-verifies caps and deadline bounds offline.
//
// Exit codes: 0 = clean, 64 = usage/config error (bad flag, unknown
// policy/speed/node-policy name, malformed fault plan), 2 = the schedule
// failed replay validation, 1 = runtime error (unreadable trace, I/O).
#include <algorithm>
#include <iostream>
#include <optional>

#include "treesched/algo/anycast.hpp"
#include "treesched/treesched.hpp"

using namespace treesched;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 64;
constexpr int kExitValidation = 2;
constexpr int kExitRuntime = 1;

SpeedProfile parse_speeds(const std::string& spec, const Tree& tree) {
  const auto parts = util::split(spec, ':');
  const std::string kind = parts[0];
  auto arg = [&parts, &spec](std::size_t i, double def) {
    if (i >= parts.size()) return def;
    try {
      return std::stod(parts[i]);
    } catch (const std::exception&) {
      throw std::invalid_argument("--speeds '" + spec + "': '" + parts[i] +
                                  "' is not a number");
    }
  };
  if (kind == "uniform") return SpeedProfile::uniform(tree, arg(1, 1.0));
  if (kind == "paper-identical")
    return SpeedProfile::paper_identical(tree, arg(1, 0.5));
  if (kind == "paper-unrelated")
    return SpeedProfile::paper_unrelated(tree, arg(1, 0.5));
  if (kind == "layered")
    return SpeedProfile::layered(tree, arg(1, 1.0), arg(2, 1.5));
  throw std::invalid_argument(
      "unknown speed spec '" + spec +
      "' (want uniform:<s>, paper-identical:<eps>, paper-unrelated:<eps>, "
      "or layered:<rc>:<rest>)");
}

bool has_custom_sources(const Instance& inst) {
  for (const Job& j : inst.jobs())
    if (j.source != kInvalidNode) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("treesched_run", "Run a policy on a trace and report metrics.");
  auto& trace = cli.add_string("trace", "", "input trace path (required)");
  auto& policy_name = cli.add_string("policy", "paper", "assignment policy");
  auto& speeds_spec = cli.add_string("speeds", "paper-identical:0.5",
                                     "speed profile spec");
  auto& eps = cli.add_double("eps", 0.5, "epsilon for the paper rule");
  auto& node_policy = cli.add_string("node-policy", "sjf",
                                     "sjf|fifo|srpt|lcfs|hdf");
  auto& chunk = cli.add_double("chunk", 0.0,
                               "pipelined router chunk size (0=off)");
  auto& fault_plan_path = cli.add_string(
      "fault-plan", "", "JSON fault plan to inject (treesched-fault-plan-v1)");
  auto& fault_rate = cli.add_double(
      "fault-rate", 0.0, "generate a fault plan: node crashes per time unit");
  auto& fault_mttr = cli.add_double("fault-mttr", 5.0,
                                    "mean time to repair for generated plans");
  auto& fault_horizon = cli.add_double(
      "fault-horizon", 0.0, "generated-plan horizon (0 = auto from releases)");
  auto& shed_policy = cli.add_string(
      "shed-policy", "none",
      "admission control: none|bounded-queue|largest-first|deadline");
  auto& queue_cap = cli.add_double(
      "queue-cap", 0.0,
      "root-cut volume cap for bounded-queue/largest-first shedding");
  auto& deadline_slack = cli.add_double(
      "deadline-slack", 8.0, "deadline shedding admits iff F <= slack * p_j");
  auto& validate = cli.add_flag("validate", "replay-check the schedule");
  auto& record_out = cli.add_string(
      "record-out", "", "write the burst log here for treesched_audit");
  auto& with_lb = cli.add_flag("lb", "also compute the certified lower bound");
  auto& seed = cli.add_int("seed", 1, "seed for randomized policies");

  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\nrun with --help for usage\n";
    return kExitUsage;
  }

  try {
    if (trace.empty())
      throw std::invalid_argument("--trace is required (make one with "
                                  "treesched_gen --out trace.txt)");
    if (eps <= 0.0)
      throw std::invalid_argument("--eps must be positive");
    if (!fault_plan_path.empty() && fault_rate > 0.0)
      throw std::invalid_argument(
          "--fault-plan and --fault-rate are mutually exclusive");
    if (fault_rate < 0.0)
      throw std::invalid_argument("--fault-rate must be non-negative");
    const bool faulty = !fault_plan_path.empty() || fault_rate > 0.0;

    overload::ShedConfig shed_cfg;
    shed_cfg.policy = overload::parse_shed_policy(shed_policy);
    shed_cfg.queue_cap = queue_cap;
    shed_cfg.deadline_slack = deadline_slack;
    overload::validate_shed_config(shed_cfg);
    if (shed_cfg.enabled()) {
      if (chunk != 0.0)
        throw std::invalid_argument(
            "load shedding needs --chunk 0 (whole-job forwarding)");
      if (validate)
        throw std::invalid_argument(
            "--validate cannot replay shedding runs; use --record-out and "
            "treesched_audit instead");
    }

    const Instance inst = workload::read_trace_file(trace);
    const SpeedProfile speeds = parse_speeds(speeds_spec, inst.tree());
    const double rho = workload::offered_load(inst, speeds);
    if (rho >= 1.0 && !shed_cfg.enabled())
      std::cerr << "warning: offered load rho=" << rho
                << " >= 1: the trace saturates the root cut at these speeds "
                   "and flow times diverge with it (consider --shed-policy)\n";

    sim::EngineConfig cfg;
    cfg.shed = shed_cfg;
    cfg.router_chunk_size = chunk;
    cfg.record_schedule = validate || !record_out.empty();
    if (node_policy == "fifo") cfg.node_policy = sim::NodePolicy::kFifo;
    else if (node_policy == "srpt") cfg.node_policy = sim::NodePolicy::kSrpt;
    else if (node_policy == "lcfs") cfg.node_policy = sim::NodePolicy::kLcfs;
    else if (node_policy == "hdf") cfg.node_policy = sim::NodePolicy::kHdf;
    else if (node_policy != "sjf")
      throw std::invalid_argument("unknown node policy '" + node_policy +
                                  "' (want sjf|fifo|srpt|lcfs|hdf)");

    if (faulty) {
      if (chunk != 0.0)
        throw std::invalid_argument(
            "fault injection needs --chunk 0 (store-and-forward routing)");
      if (validate)
        throw std::invalid_argument(
            "--validate cannot replay fault runs; use --record-out and "
            "treesched_audit instead");
      if (util::starts_with(policy_name, "anycast-") ||
          has_custom_sources(inst))
        throw std::invalid_argument(
            "fault injection is not supported for anycast/arbitrary-source "
            "traces");
    }

    sim::Metrics metrics;
    if (util::starts_with(policy_name, "anycast-") ||
        has_custom_sources(inst)) {
      if (shed_cfg.enabled())
        throw std::invalid_argument(
            "load shedding is not supported for anycast/arbitrary-source "
            "traces");
      algo::AnycastStrategy strategy = algo::AnycastStrategy::kGreedy;
      if (policy_name == "anycast-closest")
        strategy = algo::AnycastStrategy::kClosest;
      else if (policy_name == "anycast-least-volume")
        strategy = algo::AnycastStrategy::kLeastVolume;
      else if (policy_name != "anycast-greedy" && policy_name != "paper")
        throw std::invalid_argument(
            "trace has arbitrary-source jobs; use an anycast-* policy");
      std::vector<std::vector<NodeId>> paths;
      sim::ScheduleRecorder recorder;
      metrics = algo::run_anycast(inst, speeds, strategy, cfg, &paths,
                                  &recorder);
      if (!record_out.empty())
        sim::write_run_log_file(
            record_out,
            sim::make_run_log(inst, speeds, cfg, recorder, metrics, paths));
      if (validate) {
        const auto res = sim::validate_schedule(inst, speeds, cfg, recorder,
                                                metrics, paths);
        std::cout << "validation         : " << res.summary() << '\n';
        if (!res.ok) return kExitValidation;
      }
      std::cout << "policy             : "
                << algo::anycast_strategy_name(strategy) << '\n';
    } else {
      auto policy = algo::make_policy(policy_name, inst, eps,
                                      static_cast<std::uint64_t>(seed));
      sim::Engine engine(inst, speeds, cfg);

      std::optional<overload::AdmissionController> admission;
      if (shed_cfg.enabled()) {
        admission.emplace(shed_cfg, eps);
        engine.set_admission(&*admission);
      }

      fault::FaultPlan plan;
      algo::FaultAwareGreedy redispatch(eps);
      if (faulty) {
        if (!fault_plan_path.empty()) {
          plan = fault::read_plan_file(fault_plan_path);
        } else {
          fault::FaultModel model;
          model.node_failure_rate = fault_rate;
          model.node_mttr = fault_mttr;
          const Time last_release =
              inst.job_count() > 0 ? inst.jobs().back().release : 0.0;
          model.horizon = fault_horizon > 0.0
                              ? fault_horizon
                              : std::max(10.0, 2.0 * last_release);
          plan = fault::generate_plan(
              inst.tree(), model,
              util::split_seed(~static_cast<std::uint64_t>(seed), 1));
        }
        plan.validate(inst.tree());
        engine.set_fault_plan(&plan, &redispatch);
      }

      engine.run(*policy);
      if (!record_out.empty())
        sim::write_run_log_file(record_out, sim::make_run_log(inst, engine));
      if (validate) {
        const auto res = sim::validate_schedule(
            inst, speeds, cfg, engine.recorder(), engine.metrics());
        std::cout << "validation         : " << res.summary() << '\n';
        if (!res.ok) return kExitValidation;
      }
      metrics = engine.metrics();
      std::cout << "policy             : " << policy->name() << '\n';
      if (faulty) {
        std::size_t redispatches = 0;
        for (const auto& fr : engine.fault_log())
          if (fr.kind == sim::FaultRecord::Kind::kRedispatch) ++redispatches;
        std::cout << "fault events       : "
                  << engine.fault_log().size() - redispatches << '\n'
                  << "re-dispatches      : " << redispatches << '\n';
      }
    }

    std::cout << "jobs               : " << metrics.jobs().size() << '\n'
              << "total flow time    : " << metrics.total_flow_time() << '\n'
              << "mean flow time     : " << metrics.mean_flow_time() << '\n'
              << "max flow time      : " << metrics.max_flow_time() << '\n'
              << "l2 norm            : " << metrics.lk_norm_flow_time(2.0)
              << '\n'
              << "fractional flow    : "
              << metrics.total_fractional_flow_time() << '\n'
              << "weighted flow      : "
              << metrics.total_weighted_flow_time() << '\n'
              << "makespan           : " << metrics.makespan() << '\n';
    if (shed_cfg.enabled())
      std::cout << "offered load rho   : " << rho << '\n'
                << "admitted           : " << metrics.admitted_count() << '\n'
                << "rejected           : " << metrics.rejected_count() << '\n'
                << "shed               : " << metrics.shed_count() << '\n'
                << "shed volume        : " << metrics.shed_volume() << '\n'
                << "goodput            : " << metrics.goodput() << '\n'
                << "p99 flow time      : " << metrics.flow_percentile(0.99)
                << '\n';
    if (with_lb) {
      const double lb = lp::combined_lower_bound(inst);
      std::cout << "OPT lower bound    : " << lb << '\n'
                << "flow / lower bound : " << metrics.total_flow_time() / lb
                << '\n';
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\nrun with --help for usage\n";
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return kExitRuntime;
  }
  return kExitOk;
}
