// treesched_run — schedule a trace file and report every objective.
//
//   treesched_gen --out t.txt && treesched_run --trace t.txt --policy paper
//
// Policies: paper, broomstick-mirror, closest, random, round-robin,
// least-volume, least-count, fault-greedy — or
// anycast-{closest,least-volume,greedy} for traces with arbitrary-source
// jobs. Speeds: "uniform:<s>", "paper-identical:<eps>",
// "paper-unrelated:<eps>", "layered:<rc>:<rest>".
//
// Fault injection: --fault-plan replays a JSON fault plan
// (treesched-fault-plan-v1); --fault-rate generates a seed-derived plan
// from an MTBF/MTTR model instead. Either way the run uses fault-greedy
// re-dispatch for crashed machines, and --record-out logs the fault events
// so treesched_audit can verify the recovery invariants offline.
//
// Overload protection: --shed-policy arms admission control at the root
// (bounded-queue and largest-first need --queue-cap, deadline uses
// --deadline-slack). Every shed/reject decision lands in the run log, and
// treesched_audit re-verifies caps and deadline bounds offline.
//
// Durability: streaming snapshots rotate checksummed generations under a
// manifest (--snapshot-path is the manifest; --snapshot-keep the retention
// budget) and --resume-snapshot walks the self-healing ladder, falling back
// to the newest valid generation and quarantining corrupt ones.
// --failpoints (or $TREESCHED_FAILPOINTS) arms deterministic I/O fault
// injection for the chaos tests — see util/failpoint.hpp for the spec.
//
// Supervision (--supervise): fork/execs the streaming run as a child,
// restarts it from the newest verified snapshot generation on crash
// (capped exponential backoff), trips a crash-loop breaker after
// --restart-max crashes inside --restart-window-s, and refreshes
// --health-file atomically. In-process guards for the child:
// --watchdog-window-s arms the progress watchdog (log at 1x, force
// snapshot at 2x, abort 70 at 3x the deadline) and
// --rss-ceiling-mb/--queue-ceiling/--arena-ceiling arm the resource
// governor's staged degradation ladder (streaming metrics -> shrink window
// -> tighten shed -> abort 71), every transition recorded in --guard-log
// for treesched_audit --guard. SIGINT/SIGTERM during --stream flush the
// open segment, write a final snapshot generation, and exit 130 —
// resumable.
//
// Exit codes: 0 = clean, 64 = usage/config error (bad flag, unknown
// policy/speed/node-policy name, malformed fault plan), 2 = the schedule
// failed replay validation, 1 = runtime error (unreadable trace, I/O),
// 130 = stopped by --die-at-snapshot or a graceful SIGINT/SIGTERM.
// Resume-ladder outcomes: 65 = every snapshot generation
// corrupt/unrecoverable (quarantine report written), 66 = no snapshot
// manifest at the resume path, 67 = snapshot is clean but from a different
// run spec. Supervision outcomes: 69 = crash-loop breaker gave up, 70 =
// watchdog abort (wedged window, snapshot intact), 71 = governor abort
// (ladder exhausted, snapshot intact).
#include <algorithm>
#include <atomic>
#include <csignal>
#include <iomanip>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>

#include <unistd.h>

#include "spec_parse.hpp"
#include "treesched/algo/anycast.hpp"
#include "treesched/exec/snapshot_store.hpp"
#include "treesched/exec/stream_runner.hpp"
#include "treesched/guard/config.hpp"
#include "treesched/guard/supervisor.hpp"
#include "treesched/treesched.hpp"
#include "treesched/util/failpoint.hpp"
#include "treesched/util/fs.hpp"
#include "treesched/util/hash.hpp"
#include "treesched/util/mem.hpp"
#include "treesched/util/stopwatch.hpp"

using namespace treesched;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 64;
constexpr int kExitValidation = 2;
constexpr int kExitRuntime = 1;
/// Streaming run stopped deliberately by --die-at-snapshot (mirrors the
/// exit status of a SIGINT kill, which it stands in for).
constexpr int kExitInterrupted = 130;
/// Resume ladder exhausted: every snapshot generation failed verification
/// (EX_DATAERR). The corrupt files are quarantined, never deleted.
constexpr int kExitSnapshotCorrupt = 65;
/// --resume-snapshot points at a path with no snapshot manifest (EX_NOINPUT).
constexpr int kExitSnapshotMissing = 66;
/// Snapshot verified clean but was taken under a different run spec.
constexpr int kExitSpecMismatch = 67;
/// Watchdog abort: the stream window made no progress for 3x the deadline.
/// The snapshot generation forced at 2x is intact.
constexpr int kExitWatchdogAbort = 70;
/// Governor abort: resource ceilings still breached after the full
/// degradation ladder. A snapshot generation is intact.
constexpr int kExitGovernorAbort = 71;

/// Graceful-stop flag for --stream: SIGINT/SIGTERM set it, the runner polls
/// it at arrival boundaries and shuts down resumably.
std::atomic<bool> g_cancel{false};
void on_cancel_signal(int /*sig*/) { g_cancel.store(true); }

/// Rebuilds this process's argv for the supervised child: drops the
/// supervisor-only options (the child must not supervise recursively, and
/// the supervisor decides resume itself) in both `--flag value` and
/// `--flag=value` spellings, then appends the child-side guard plumbing.
std::vector<std::string> build_child_argv(
    int argc, char** argv, const std::string& status_file,
    const std::string& guard_log) {
  static const std::set<std::string> kDropValued = {
      "--health-file",    "--heartbeat-deadline-s", "--restart-max",
      "--restart-window-s", "--backoff-base-s",     "--backoff-cap-s",
      "--resume-snapshot", "--guard-status",        "--guard-log"};
  static const std::set<std::string> kDropFlags = {"--supervise"};

  std::vector<std::string> out;
  char exe[4096];
  const ::ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n > 0) {
    exe[n] = '\0';
    out.emplace_back(exe);
  } else {
    out.emplace_back(argv[0]);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string head = arg.substr(0, arg.find('='));
    if (kDropFlags.count(head) != 0) continue;
    if (kDropValued.count(head) != 0) {
      if (arg.find('=') == std::string::npos && i + 1 < argc) ++i;
      continue;
    }
    out.push_back(arg);
  }
  if (!status_file.empty()) {
    out.push_back("--guard-status");
    out.push_back(status_file);
  }
  if (!guard_log.empty()) {
    out.push_back("--guard-log");
    out.push_back(guard_log);
  }
  return out;
}

SpeedProfile parse_speeds(const std::string& spec, const Tree& tree) {
  const auto parts = util::split(spec, ':');
  const std::string kind = parts[0];
  auto arg = [&parts, &spec](std::size_t i, double def) {
    if (i >= parts.size()) return def;
    try {
      return std::stod(parts[i]);
    } catch (const std::exception&) {
      throw std::invalid_argument("--speeds '" + spec + "': '" + parts[i] +
                                  "' is not a number");
    }
  };
  if (kind == "uniform") return SpeedProfile::uniform(tree, arg(1, 1.0));
  if (kind == "paper-identical")
    return SpeedProfile::paper_identical(tree, arg(1, 0.5));
  if (kind == "paper-unrelated")
    return SpeedProfile::paper_unrelated(tree, arg(1, 0.5));
  if (kind == "layered")
    return SpeedProfile::layered(tree, arg(1, 1.0), arg(2, 1.5));
  throw std::invalid_argument(
      "unknown speed spec '" + spec +
      "' (want uniform:<s>, paper-identical:<eps>, paper-unrelated:<eps>, "
      "or layered:<rc>:<rest>)");
}

bool has_custom_sources(const Instance& inst) {
  for (const Job& j : inst.jobs())
    if (j.source != kInvalidNode) return true;
  return false;
}

sim::NodePolicy parse_node_policy(const std::string& name) {
  if (name == "sjf") return sim::NodePolicy::kSjf;
  if (name == "fifo") return sim::NodePolicy::kFifo;
  if (name == "srpt") return sim::NodePolicy::kSrpt;
  if (name == "lcfs") return sim::NodePolicy::kLcfs;
  if (name == "hdf") return sim::NodePolicy::kHdf;
  throw std::invalid_argument("unknown node policy '" + name +
                              "' (want sjf|fifo|srpt|lcfs|hdf)");
}

/// --progress-every heartbeat for monolithic (whole-trace) runs. Wall time
/// comes from util::Stopwatch — the sanctioned clock shim — so the simulation
/// stays deterministic and the det-wallclock lint rule stays quiet.
class ProgressBeat final : public sim::EngineObserver {
 public:
  ProgressBeat(double every, std::size_t total) : every_(every), total_(total) {}

  void on_event(const sim::Engine& engine, Time t) override {
    if (watch_.elapsed_seconds() - last_ < every_) return;
    last_ = watch_.elapsed_seconds();
    std::cerr << "[run] jobs " << engine.metrics().completed_count() << '/'
              << total_ << " simtime " << t << " rss "
              << util::current_rss_bytes() / (1024 * 1024) << "MB\n";
  }

 private:
  util::Stopwatch watch_;
  double every_;
  double last_ = 0.0;
  std::size_t total_;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("treesched_run", "Run a policy on a trace and report metrics.");
  auto& trace = cli.add_string("trace", "", "input trace path (required)");
  auto& policy_name = cli.add_string("policy", "paper", "assignment policy");
  auto& speeds_spec = cli.add_string("speeds", "paper-identical:0.5",
                                     "speed profile spec");
  auto& eps = cli.add_double("eps", 0.5, "epsilon for the paper rule");
  auto& node_policy = cli.add_string("node-policy", "sjf",
                                     "sjf|fifo|srpt|lcfs|hdf");
  auto& chunk = cli.add_double("chunk", 0.0,
                               "pipelined router chunk size (0=off)");
  auto& fault_plan_path = cli.add_string(
      "fault-plan", "", "JSON fault plan to inject (treesched-fault-plan-v1)");
  auto& fault_rate = cli.add_double(
      "fault-rate", 0.0, "generate a fault plan: node crashes per time unit");
  auto& fault_mttr = cli.add_double("fault-mttr", 5.0,
                                    "mean time to repair for generated plans");
  auto& fault_horizon = cli.add_double(
      "fault-horizon", 0.0, "generated-plan horizon (0 = auto from releases)");
  auto& shed_policy = cli.add_string(
      "shed-policy", "none",
      "admission control: none|bounded-queue|largest-first|deadline");
  auto& queue_cap = cli.add_double(
      "queue-cap", 0.0,
      "root-cut volume cap for bounded-queue/largest-first shedding");
  auto& deadline_slack = cli.add_double(
      "deadline-slack", 8.0, "deadline shedding admits iff F <= slack * p_j");
  auto& validate = cli.add_flag("validate", "replay-check the schedule");
  auto& record_out = cli.add_string(
      "record-out", "", "write the burst log here for treesched_audit");
  auto& with_lb = cli.add_flag("lb", "also compute the certified lower bound");
  auto& seed = cli.add_int("seed", 1, "seed for randomized policies");
  auto& progress_every = cli.add_double(
      "progress-every", 0.0, "stderr heartbeat period in seconds (0=off)");
  auto& stream_mode = cli.add_flag(
      "stream", "streaming endurance mode: generate arrivals on the fly "
                "instead of reading --trace (bounded memory)");
  auto& tree_spec = cli.add_string("tree", "fat:2x2x2",
                                   "streaming: topology spec (as treesched_gen)");
  auto& stream_jobs = cli.add_int("stream-jobs", 100000,
                                  "streaming: total arrivals to run");
  auto& load = cli.add_double("load", 0.7,
                              "streaming: root-cut utilization target");
  auto& sizes_name = cli.add_string(
      "sizes", "pareto", "streaming: fixed|uniform|exp|pareto|bimodal");
  auto& scale = cli.add_double("scale", 8.0, "streaming: size scale");
  auto& class_eps = cli.add_double(
      "class-eps", 0.0, "streaming: round sizes to powers of 1+eps (0=off)");
  auto& window = cli.add_int(
      "window", 4096,
      "streaming: jobs per engine window (results are window-invariant)");
  auto& segment_cap = cli.add_int(
      "segment-cap", 4096, "streaming: run-log payload lines per segment");
  auto& snapshot_every = cli.add_int(
      "snapshot-every", 0, "streaming: arrivals between snapshots (0=off)");
  auto& snapshot_path = cli.add_string(
      "snapshot-path", "",
      "streaming: snapshot manifest path (generations land as .genNNN)");
  auto& snapshot_keep = cli.add_int(
      "snapshot-keep", 3,
      "streaming: healthy snapshot generations to retain (>= 1)");
  auto& resume_snapshot = cli.add_string(
      "resume-snapshot", "",
      "streaming: resume from the snapshot manifest at this path (falls "
      "back across corrupt generations)");
  auto& die_at_snapshot = cli.add_int(
      "die-at-snapshot", 0,
      "streaming: exit 130 right after this process writes its N-th "
      "snapshot (deterministic kill for endurance tests)");
  auto& metrics_json = cli.add_string(
      "metrics-json", "",
      "streaming: write final metrics as JSON here (full precision, "
      "byte-stable across kill-and-resume)");
  auto& failpoints = cli.add_string(
      "failpoints", "",
      "arm deterministic I/O fault injection: site:kind:nth,... "
      "(chaos testing; also read from $TREESCHED_FAILPOINTS)");
  auto& supervise = cli.add_flag(
      "supervise", "streaming: run as a supervised child with auto-restart "
                   "from the newest verified snapshot generation");
  auto& health_file = cli.add_string(
      "health-file", "",
      "supervise: status JSON (pid, state, restarts, window, rho_hat, "
      "stage), refreshed atomically");
  auto& heartbeat_deadline = cli.add_double(
      "heartbeat-deadline-s", 0.0,
      "supervise: SIGKILL + restart a child whose status-file arrivals "
      "freeze this long (0=off)");
  auto& restart_max = cli.add_int(
      "restart-max", 5,
      "supervise: crash-loop breaker — give up (exit 69) after this many "
      "crashes inside --restart-window-s");
  auto& restart_window = cli.add_double(
      "restart-window-s", 60.0, "supervise: crash-loop breaker window");
  auto& backoff_base = cli.add_double(
      "backoff-base-s", 0.5, "supervise: first restart backoff (doubles per "
                             "consecutive crash)");
  auto& backoff_cap = cli.add_double("backoff-cap-s", 30.0,
                                     "supervise: restart backoff ceiling");
  auto& watchdog_window = cli.add_double(
      "watchdog-window-s", 0.0,
      "streaming: wall-clock progress deadline per stream window — log at "
      "1x, force snapshot at 2x, abort 70 at 3x (0=off)");
  auto& rss_ceiling_mb = cli.add_int(
      "rss-ceiling-mb", 0,
      "streaming: governor RSS ceiling in MB (0=unchecked)");
  auto& queue_ceiling = cli.add_int(
      "queue-ceiling", 0,
      "streaming: governor ceiling on engine event-queue entries (0=off)");
  auto& arena_ceiling = cli.add_int(
      "arena-ceiling", 0,
      "streaming: governor ceiling on engine job-arena slots (0=off)");
  auto& guard_log = cli.add_string(
      "guard-log", "",
      "streaming: guard sidecar log (watchdog/governor/supervisor events; "
      "audited by treesched_audit --guard)");
  auto& guard_status = cli.add_string(
      "guard-status", "",
      "streaming: child status JSON for the supervisor's wedge watch "
      "(defaults to <health-file>.child under --supervise)");
  auto& guard_stall_at = cli.add_int(
      "guard-stall-at", 0,
      "TEST ONLY: freeze at this global arrival for --guard-stall-s "
      "seconds (wedged-window stand-in)");
  auto& guard_stall_s = cli.add_double(
      "guard-stall-s", 0.0, "TEST ONLY: stall duration in wall seconds");

  try {
    cli.parse(argc, argv);
    // The supervisor must NOT arm failpoints in its own process: health and
    // guard-log writes go through the same fs seams the chaos battery
    // targets, and the spec is meant for the CHILD — it reaches it via the
    // pass-through argv / inherited environment.
    if (!supervise) {
      util::arm_failpoints_from_env();
      if (!failpoints.empty()) util::arm_failpoints(failpoints);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\nrun with --help for usage\n";
    return kExitUsage;
  }

  if (supervise) {
    try {
      if (!stream_mode)
        throw std::invalid_argument("--supervise requires --stream");
      if (restart_max <= 0)
        throw std::invalid_argument("--restart-max must be positive");
      guard::SupervisorConfig sup;
      sup.snapshot_base = snapshot_path;
      sup.health_file = health_file;
      sup.child_status_file = guard_status;
      if (sup.child_status_file.empty() && !health_file.empty())
        sup.child_status_file = health_file + ".child";
      sup.guard_log = guard_log;
      sup.heartbeat_deadline_s = heartbeat_deadline;
      sup.restart.breaker_max = static_cast<std::size_t>(restart_max);
      sup.restart.breaker_window_s = restart_window;
      sup.restart.backoff_base_s = backoff_base;
      sup.restart.backoff_cap_s = backoff_cap;
      sup.child_argv =
          build_child_argv(argc, argv, sup.child_status_file, guard_log);
      return guard::run_supervisor(sup);
    } catch (const std::invalid_argument& e) {
      std::cerr << "error: " << e.what() << "\nrun with --help for usage\n";
      return kExitUsage;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      return kExitRuntime;
    }
  }

  try {
    if (eps <= 0.0)
      throw std::invalid_argument("--eps must be positive");

    if (stream_mode) {
      if (!trace.empty())
        throw std::invalid_argument(
            "--stream generates its own arrivals; drop --trace");
      if (!fault_plan_path.empty() || fault_rate > 0.0)
        throw std::invalid_argument(
            "--stream does not support fault injection");
      if (chunk != 0.0)
        throw std::invalid_argument(
            "--stream needs --chunk 0 (whole-job forwarding)");
      if (validate)
        throw std::invalid_argument(
            "--validate has no streaming mode; record with --record-out and "
            "run treesched_audit --segments instead");
      if (with_lb)
        throw std::invalid_argument(
            "--lb needs the whole instance up front; not available with "
            "--stream");
      if (stream_jobs <= 0)
        throw std::invalid_argument("--stream-jobs must be positive");
      if (load <= 0.0)
        throw std::invalid_argument("--load must be positive");

      overload::ShedConfig shed_cfg;
      shed_cfg.policy = overload::parse_shed_policy(shed_policy);
      shed_cfg.queue_cap = queue_cap;
      shed_cfg.deadline_slack = deadline_slack;

      util::Rng tree_rng(static_cast<std::uint64_t>(seed));
      auto tree =
          std::make_shared<const Tree>(tools::parse_tree(tree_spec, tree_rng));
      const SpeedProfile speeds = parse_speeds(speeds_spec, *tree);

      exec::StreamRunnerConfig scfg;
      scfg.stream.seed = static_cast<std::uint64_t>(seed);
      scfg.stream.sizes.dist = tools::parse_sizes(sizes_name);
      scfg.stream.sizes.scale = scale;
      scfg.stream.sizes.class_eps = class_eps;
      scfg.stream.lambda = workload::arrival_rate_for_load(
          static_cast<int>(tree->root_children().size()),
          scfg.stream.sizes.mean(), load);
      scfg.total_jobs = static_cast<std::uint64_t>(stream_jobs);
      scfg.window = static_cast<std::size_t>(window);
      scfg.policy = policy_name;
      scfg.eps = eps;
      scfg.policy_seed = static_cast<std::uint64_t>(seed);
      scfg.node_policy = parse_node_policy(node_policy);
      scfg.shed = shed_cfg;
      scfg.record_path = record_out;
      scfg.segment_cap = static_cast<std::size_t>(segment_cap);
      scfg.snapshot_every = static_cast<std::uint64_t>(snapshot_every);
      scfg.snapshot_path = snapshot_path;
      scfg.snapshot_keep = static_cast<int>(snapshot_keep);
      scfg.resume_snapshot = resume_snapshot;
      scfg.die_after_snapshot = static_cast<std::uint64_t>(die_at_snapshot);
      scfg.progress_every = progress_every;
      scfg.guard.watchdog.window_deadline_s = watchdog_window;
      scfg.guard.governor.rss_ceiling_bytes =
          static_cast<std::uint64_t>(rss_ceiling_mb) * 1024 * 1024;
      scfg.guard.governor.queue_ceiling =
          static_cast<std::size_t>(queue_ceiling);
      scfg.guard.governor.arena_ceiling =
          static_cast<std::size_t>(arena_ceiling);
      scfg.guard.guard_log = guard_log;
      scfg.status_file = guard_status;
      scfg.guard_stall_at = static_cast<std::uint64_t>(guard_stall_at);
      scfg.guard_stall_s = guard_stall_s;
      scfg.cancel = &g_cancel;

      // Graceful SIGINT/SIGTERM: flush the open segment, write a final
      // snapshot generation, exit 130 — resumable.
      struct ::sigaction sa{};
      sa.sa_handler = &on_cancel_signal;
      ::sigemptyset(&sa.sa_mask);
      ::sigaction(SIGINT, &sa, nullptr);
      ::sigaction(SIGTERM, &sa, nullptr);

      const exec::StreamRunnerResult res =
          exec::run_stream(tree, speeds, scfg);
      if (res.cancelled) {
        std::cerr << "[stream] interrupted at arrival " << res.arrivals
                  << "; segments flushed"
                  << (snapshot_path.empty()
                          ? std::string()
                          : ", resume with --resume-snapshot " +
                                snapshot_path)
                  << '\n';
        return kExitInterrupted;
      }
      if (res.interrupted) {
        std::cerr << "[stream] stopping after snapshot " << res.snapshots_written
                  << " (--die-at-snapshot); resume with --resume-snapshot "
                  << snapshot_path << '\n';
        return kExitInterrupted;
      }

      const sim::StreamAccumulator& a = res.acc;
      const double mean_flow =
          a.completed > 0 ? a.flow.value() / static_cast<double>(a.completed)
                          : 0.0;
      std::cout << "policy             : " << policy_name << " (streaming)\n"
                << "arrivals           : " << res.arrivals << '\n'
                << "completed          : " << a.completed << '\n'
                << "shed               : " << a.shed << '\n'
                << "rejected           : " << a.rejected << '\n'
                << "total flow time    : " << a.flow.value() << '\n'
                << "mean flow time     : " << mean_flow << '\n'
                << "max flow time      : " << a.max_flow << '\n'
                << "fractional flow    : " << a.frac.value() << '\n'
                << "weighted flow      : " << a.weighted_flow.value() << '\n'
                << "makespan           : " << a.makespan << '\n'
                << "p50 flow (digest)  : " << a.flow_digest.quantile(0.5)
                << '\n'
                << "p99 flow (digest)  : " << a.flow_digest.quantile(0.99)
                << '\n'
                << "p99 flow (marker)  : " << a.p99_marker.estimate() << '\n'
                << "max window         : " << res.max_window << '\n'
                << "segments written   : " << res.segments_written << '\n'
                << "peak rss           : "
                << util::peak_rss_bytes() / (1024 * 1024) << " MB\n";
      if (!metrics_json.empty()) {
        // Only run-invariant quantities (identical whether or not the run
        // was killed and resumed) — this file is the byte-cmp artifact of
        // the endurance differential, so process-local stats like
        // max_window or segments-written-by-this-process must stay out.
        std::ostringstream js;
        js << std::setprecision(17);
        js << "{\n"
           << "  \"format\": \"treesched-stream-metrics-v2\",\n"
           << "  \"arrivals\": " << res.arrivals << ",\n"
           << "  \"completed\": " << a.completed << ",\n"
           << "  \"shed\": " << a.shed << ",\n"
           << "  \"rejected\": " << a.rejected << ",\n"
           << "  \"total_flow\": " << a.flow.value() << ",\n"
           << "  \"weighted_flow\": " << a.weighted_flow.value() << ",\n"
           << "  \"fractional_flow\": " << a.frac.value() << ",\n"
           << "  \"shed_volume\": " << a.shed_volume.value() << ",\n"
           << "  \"max_flow\": " << a.max_flow << ",\n"
           << "  \"makespan\": " << a.makespan << ",\n"
           << "  \"p50_digest\": " << a.flow_digest.quantile(0.5) << ",\n"
           << "  \"p90_digest\": " << a.flow_digest.quantile(0.9) << ",\n"
           << "  \"p99_digest\": " << a.flow_digest.quantile(0.99) << ",\n"
           << "  \"p99_marker\": " << a.p99_marker.estimate();
        if (shed_cfg.enabled())
          // Saturation telemetry rides in the byte-cmp artifact: the
          // fingerprint makes the estimator's kill/resume round-trip
          // load-bearing in the endurance differential.
          js << ",\n  \"rho_hat_root\": " << res.rho_hat_root
             << ",\n  \"overload_state_fp\": "
             << util::fnv1a_64(res.overload_state);
        js << "\n}\n";
        util::write_file_atomic(metrics_json, js.str());
      }
      return kExitOk;
    }

    if (trace.empty())
      throw std::invalid_argument("--trace is required (make one with "
                                  "treesched_gen --out trace.txt)");
    if (!fault_plan_path.empty() && fault_rate > 0.0)
      throw std::invalid_argument(
          "--fault-plan and --fault-rate are mutually exclusive");
    if (fault_rate < 0.0)
      throw std::invalid_argument("--fault-rate must be non-negative");
    const bool faulty = !fault_plan_path.empty() || fault_rate > 0.0;

    overload::ShedConfig shed_cfg;
    shed_cfg.policy = overload::parse_shed_policy(shed_policy);
    shed_cfg.queue_cap = queue_cap;
    shed_cfg.deadline_slack = deadline_slack;
    overload::validate_shed_config(shed_cfg);
    if (shed_cfg.enabled()) {
      if (chunk != 0.0)
        throw std::invalid_argument(
            "load shedding needs --chunk 0 (whole-job forwarding)");
      if (validate)
        throw std::invalid_argument(
            "--validate cannot replay shedding runs; use --record-out and "
            "treesched_audit instead");
    }

    const Instance inst = workload::read_trace_file(trace);
    const SpeedProfile speeds = parse_speeds(speeds_spec, inst.tree());
    const double rho = workload::offered_load(inst, speeds);
    if (rho >= 1.0 && !shed_cfg.enabled())
      std::cerr << "warning: offered load rho=" << rho
                << " >= 1: the trace saturates the root cut at these speeds "
                   "and flow times diverge with it (consider --shed-policy)\n";

    sim::EngineConfig cfg;
    cfg.shed = shed_cfg;
    cfg.router_chunk_size = chunk;
    cfg.record_schedule = validate || !record_out.empty();
    cfg.node_policy = parse_node_policy(node_policy);

    if (faulty) {
      if (chunk != 0.0)
        throw std::invalid_argument(
            "fault injection needs --chunk 0 (store-and-forward routing)");
      if (validate)
        throw std::invalid_argument(
            "--validate cannot replay fault runs; use --record-out and "
            "treesched_audit instead");
      if (util::starts_with(policy_name, "anycast-") ||
          has_custom_sources(inst))
        throw std::invalid_argument(
            "fault injection is not supported for anycast/arbitrary-source "
            "traces");
    }

    sim::Metrics metrics;
    if (util::starts_with(policy_name, "anycast-") ||
        has_custom_sources(inst)) {
      if (shed_cfg.enabled())
        throw std::invalid_argument(
            "load shedding is not supported for anycast/arbitrary-source "
            "traces");
      algo::AnycastStrategy strategy = algo::AnycastStrategy::kGreedy;
      if (policy_name == "anycast-closest")
        strategy = algo::AnycastStrategy::kClosest;
      else if (policy_name == "anycast-least-volume")
        strategy = algo::AnycastStrategy::kLeastVolume;
      else if (policy_name != "anycast-greedy" && policy_name != "paper")
        throw std::invalid_argument(
            "trace has arbitrary-source jobs; use an anycast-* policy");
      std::vector<std::vector<NodeId>> paths;
      sim::ScheduleRecorder recorder;
      metrics = algo::run_anycast(inst, speeds, strategy, cfg, &paths,
                                  &recorder);
      if (!record_out.empty())
        sim::write_run_log_file(
            record_out,
            sim::make_run_log(inst, speeds, cfg, recorder, metrics, paths));
      if (validate) {
        const auto res = sim::validate_schedule(inst, speeds, cfg, recorder,
                                                metrics, paths);
        std::cout << "validation         : " << res.summary() << '\n';
        if (!res.ok) return kExitValidation;
      }
      std::cout << "policy             : "
                << algo::anycast_strategy_name(strategy) << '\n';
    } else {
      auto policy = algo::make_policy(policy_name, inst, eps,
                                      static_cast<std::uint64_t>(seed));
      sim::Engine engine(inst, speeds, cfg);

      std::optional<ProgressBeat> beat;
      if (progress_every > 0.0) {
        beat.emplace(progress_every, inst.jobs().size());
        engine.set_observer(&*beat);
      }

      std::optional<overload::AdmissionController> admission;
      if (shed_cfg.enabled()) {
        admission.emplace(shed_cfg, eps);
        engine.set_admission(&*admission);
      }

      fault::FaultPlan plan;
      algo::FaultAwareGreedy redispatch(eps);
      if (faulty) {
        if (!fault_plan_path.empty()) {
          plan = fault::read_plan_file(fault_plan_path);
        } else {
          fault::FaultModel model;
          model.node_failure_rate = fault_rate;
          model.node_mttr = fault_mttr;
          const Time last_release =
              inst.job_count() > 0 ? inst.jobs().back().release : 0.0;
          model.horizon = fault_horizon > 0.0
                              ? fault_horizon
                              : std::max(10.0, 2.0 * last_release);
          plan = fault::generate_plan(
              inst.tree(), model,
              util::split_seed(~static_cast<std::uint64_t>(seed), 1));
        }
        plan.validate(inst.tree());
        engine.set_fault_plan(&plan, &redispatch);
      }

      engine.run(*policy);
      if (!record_out.empty())
        sim::write_run_log_file(record_out, sim::make_run_log(inst, engine));
      if (validate) {
        const auto res = sim::validate_schedule(
            inst, speeds, cfg, engine.recorder(), engine.metrics());
        std::cout << "validation         : " << res.summary() << '\n';
        if (!res.ok) return kExitValidation;
      }
      metrics = engine.metrics();
      std::cout << "policy             : " << policy->name() << '\n';
      if (faulty) {
        std::size_t redispatches = 0;
        for (const auto& fr : engine.fault_log())
          if (fr.kind == sim::FaultRecord::Kind::kRedispatch) ++redispatches;
        std::cout << "fault events       : "
                  << engine.fault_log().size() - redispatches << '\n'
                  << "re-dispatches      : " << redispatches << '\n';
      }
    }

    std::cout << "jobs               : " << metrics.jobs().size() << '\n'
              << "total flow time    : " << metrics.total_flow_time() << '\n'
              << "mean flow time     : " << metrics.mean_flow_time() << '\n'
              << "max flow time      : " << metrics.max_flow_time() << '\n'
              << "l2 norm            : " << metrics.lk_norm_flow_time(2.0)
              << '\n'
              << "fractional flow    : "
              << metrics.total_fractional_flow_time() << '\n'
              << "weighted flow      : "
              << metrics.total_weighted_flow_time() << '\n'
              << "makespan           : " << metrics.makespan() << '\n';
    if (shed_cfg.enabled())
      std::cout << "offered load rho   : " << rho << '\n'
                << "admitted           : " << metrics.admitted_count() << '\n'
                << "rejected           : " << metrics.rejected_count() << '\n'
                << "shed               : " << metrics.shed_count() << '\n'
                << "shed volume        : " << metrics.shed_volume() << '\n'
                << "goodput            : " << metrics.goodput() << '\n'
                << "p99 flow time      : " << metrics.flow_percentile(0.99)
                << '\n';
    if (with_lb) {
      const double lb = lp::combined_lower_bound(inst);
      std::cout << "OPT lower bound    : " << lb << '\n'
                << "flow / lower bound : " << metrics.total_flow_time() / lb
                << '\n';
    }
  } catch (const exec::SnapshotSpecMismatchError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return kExitSpecMismatch;
  } catch (const guard::WatchdogAbortError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return kExitWatchdogAbort;
  } catch (const guard::GovernorAbortError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return kExitGovernorAbort;
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\nrun with --help for usage\n";
    return kExitUsage;
  } catch (const exec::SnapshotMissingError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return kExitSnapshotMissing;
  } catch (const exec::SnapshotUnrecoverableError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return kExitSnapshotCorrupt;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return kExitRuntime;
  }
  return kExitOk;
}
