// treesched_run — schedule a trace file and report every objective.
//
//   treesched_gen --out t.txt && treesched_run --trace t.txt --policy paper
//
// Policies: paper, broomstick-mirror, closest, random, round-robin,
// least-volume, least-count — or anycast-{closest,least-volume,greedy} for
// traces with arbitrary-source jobs. Speeds: "uniform:<s>",
// "paper-identical:<eps>", "paper-unrelated:<eps>", "layered:<rc>:<rest>".
#include <iostream>

#include "treesched/algo/anycast.hpp"
#include "treesched/treesched.hpp"

using namespace treesched;

namespace {

SpeedProfile parse_speeds(const std::string& spec, const Tree& tree) {
  const auto parts = util::split(spec, ':');
  const std::string kind = parts[0];
  auto arg = [&parts](std::size_t i, double def) {
    return i < parts.size() ? std::stod(parts[i]) : def;
  };
  if (kind == "uniform") return SpeedProfile::uniform(tree, arg(1, 1.0));
  if (kind == "paper-identical")
    return SpeedProfile::paper_identical(tree, arg(1, 0.5));
  if (kind == "paper-unrelated")
    return SpeedProfile::paper_unrelated(tree, arg(1, 0.5));
  if (kind == "layered")
    return SpeedProfile::layered(tree, arg(1, 1.0), arg(2, 1.5));
  throw std::invalid_argument("unknown speed spec: " + spec);
}

bool has_custom_sources(const Instance& inst) {
  for (const Job& j : inst.jobs())
    if (j.source != kInvalidNode) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("treesched_run", "Run a policy on a trace and report metrics.");
  auto& trace = cli.add_string("trace", "", "input trace path (required)");
  auto& policy_name = cli.add_string("policy", "paper", "assignment policy");
  auto& speeds_spec = cli.add_string("speeds", "paper-identical:0.5",
                                     "speed profile spec");
  auto& eps = cli.add_double("eps", 0.5, "epsilon for the paper rule");
  auto& node_policy = cli.add_string("node-policy", "sjf",
                                     "sjf|fifo|srpt|lcfs|hdf");
  auto& chunk = cli.add_double("chunk", 0.0,
                               "pipelined router chunk size (0=off)");
  auto& validate = cli.add_flag("validate", "replay-check the schedule");
  auto& record_out = cli.add_string(
      "record-out", "", "write the burst log here for treesched_audit");
  auto& with_lb = cli.add_flag("lb", "also compute the certified lower bound");
  auto& seed = cli.add_int("seed", 1, "seed for randomized policies");
  cli.parse(argc, argv);

  try {
    if (trace.empty()) throw std::invalid_argument("--trace is required");
    const Instance inst = workload::read_trace_file(trace);
    const SpeedProfile speeds = parse_speeds(speeds_spec, inst.tree());

    sim::EngineConfig cfg;
    cfg.router_chunk_size = chunk;
    cfg.record_schedule = validate || !record_out.empty();
    if (node_policy == "fifo") cfg.node_policy = sim::NodePolicy::kFifo;
    else if (node_policy == "srpt") cfg.node_policy = sim::NodePolicy::kSrpt;
    else if (node_policy == "lcfs") cfg.node_policy = sim::NodePolicy::kLcfs;
    else if (node_policy == "hdf") cfg.node_policy = sim::NodePolicy::kHdf;
    else if (node_policy != "sjf")
      throw std::invalid_argument("unknown node policy: " + node_policy);

    sim::Metrics metrics;
    if (util::starts_with(policy_name, "anycast-") ||
        has_custom_sources(inst)) {
      algo::AnycastStrategy strategy = algo::AnycastStrategy::kGreedy;
      if (policy_name == "anycast-closest")
        strategy = algo::AnycastStrategy::kClosest;
      else if (policy_name == "anycast-least-volume")
        strategy = algo::AnycastStrategy::kLeastVolume;
      else if (policy_name != "anycast-greedy" && policy_name != "paper")
        throw std::invalid_argument(
            "trace has arbitrary-source jobs; use an anycast-* policy");
      std::vector<std::vector<NodeId>> paths;
      sim::ScheduleRecorder recorder;
      metrics = algo::run_anycast(inst, speeds, strategy, cfg, &paths,
                                  &recorder);
      if (!record_out.empty())
        sim::write_run_log_file(
            record_out,
            sim::make_run_log(inst, speeds, cfg, recorder, metrics, paths));
      if (validate) {
        const auto res = sim::validate_schedule(inst, speeds, cfg, recorder,
                                                metrics, paths);
        std::cout << "validation         : " << res.summary() << '\n';
        if (!res.ok) return 2;
      }
      std::cout << "policy             : "
                << algo::anycast_strategy_name(strategy) << '\n';
    } else {
      auto policy = algo::make_policy(policy_name, inst, eps,
                                      static_cast<std::uint64_t>(seed));
      sim::Engine engine(inst, speeds, cfg);
      engine.run(*policy);
      if (!record_out.empty())
        sim::write_run_log_file(
            record_out, sim::make_run_log(inst, speeds, cfg, engine.recorder(),
                                          engine.metrics()));
      if (validate) {
        const auto res = sim::validate_schedule(
            inst, speeds, cfg, engine.recorder(), engine.metrics());
        std::cout << "validation         : " << res.summary() << '\n';
        if (!res.ok) return 2;
      }
      metrics = engine.metrics();
      std::cout << "policy             : " << policy->name() << '\n';
    }

    std::cout << "jobs               : " << metrics.jobs().size() << '\n'
              << "total flow time    : " << metrics.total_flow_time() << '\n'
              << "mean flow time     : " << metrics.mean_flow_time() << '\n'
              << "max flow time      : " << metrics.max_flow_time() << '\n'
              << "l2 norm            : " << metrics.lk_norm_flow_time(2.0)
              << '\n'
              << "fractional flow    : "
              << metrics.total_fractional_flow_time() << '\n'
              << "weighted flow      : "
              << metrics.total_weighted_flow_time() << '\n'
              << "makespan           : " << metrics.makespan() << '\n';
    if (with_lb) {
      const double lb = lp::combined_lower_bound(inst);
      std::cout << "OPT lower bound    : " << lb << '\n'
                << "flow / lower bound : " << metrics.total_flow_time() / lb
                << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
