// treesched_sweep — parallel policy × topology × eps × fault × shed-policy
// × seed sweeps.
//
// Overload dimension: --shed-policies none,largest-first,... compares
// admission-control policies per cell (with --queue-cap / --deadline-slack),
// reporting goodput and shed counts alongside the flow-time ratios.
//
//   treesched_sweep --policies paper,closest --trees star-2x3,figure1
//       --eps 1.0,0.5 --seeds 5 --threads 8 --json results.json
//   treesched_sweep --policies fault-greedy --fault-rates 0,0.01,0.05
//       --checkpoint sweep.ckpt --json faults.json
//
// The flags form a declarative sweep spec (exec::SweepSpec). Tasks fan out
// over the exec thread pool; every task's seed derives from --seed and the
// task's fixed grid index, so results — and the default JSON document — are
// byte-identical for any --threads value. Wall-clock and speedup metadata
// are printed to stdout and embedded in the JSON only with --timing, which
// keeps the default output deterministic.
//
// Robustness: --retries N re-runs transiently failing tasks with capped
// exponential backoff; --checkpoint journals every finished task (flushed
// per line); --resume skips everything the journal already covers and still
// produces JSON byte-identical to an uninterrupted run. SIGINT/SIGTERM
// cancel the sweep cleanly: pending tasks are dropped, in-flight tasks
// finish and land in the journal, and no final JSON is written.
//
// Exit codes: 0 = clean, 2 = usage/config error (bad flag value, unknown
// policy/tree, eps <= 0, unwritable --record-dir, foreign checkpoint),
// 3 = tasks were skipped (per-task --timeout-ms exceeded or a task kept
// failing), 130 = interrupted by SIGINT/SIGTERM, 1 = unexpected error.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <filesystem>
#include <iostream>

#include "treesched/exec/parallel.hpp"
#include "treesched/exec/sweep.hpp"
#include "treesched/treesched.hpp"

using namespace treesched;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitSkipped = 3;
constexpr int kExitInterrupted = 130;
constexpr int kExitUnexpected = 1;

std::atomic<bool> g_cancel{false};

extern "C" void on_signal(int) { g_cancel.store(true); }

std::vector<std::string> parse_list(const std::string& flag,
                                    const std::string& csv) {
  std::vector<std::string> out;
  for (const std::string& part : util::split(csv, ','))
    if (!part.empty()) out.push_back(part);
  if (out.empty())
    throw std::invalid_argument("--" + flag +
                                " needs a non-empty comma-separated list, got '" +
                                csv + "'");
  return out;
}

std::vector<double> parse_doubles(const std::string& flag,
                                  const std::string& csv) {
  std::vector<double> out;
  for (const std::string& part : parse_list(flag, csv)) {
    try {
      std::size_t used = 0;
      const double v = std::stod(part, &used);
      if (used != part.size()) throw std::invalid_argument(part);
      out.push_back(v);
    } catch (const std::exception&) {
      throw std::invalid_argument("--" + flag + ": '" + part +
                                  "' is not a number");
    }
  }
  return out;
}

std::vector<double> parse_eps(const std::string& csv) {
  if (csv == "paper") return experiments::epsilon_sweep();
  return parse_doubles("eps", csv);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("treesched_sweep",
                "Deterministic parallel sweep over policies/trees/eps/"
                "fault-rates/seeds.");
  auto& policies = cli.add_string("policies", "paper",
                                  "comma-separated run_named_policy names");
  auto& trees = cli.add_string(
      "trees", "all", "comma-separated standard_trees names, or 'all'");
  auto& eps = cli.add_string(
      "eps", "paper", "comma-separated eps grid, or 'paper' for the sweep");
  auto& seeds = cli.add_int("seeds", 3, "repetitions per cell");
  auto& seed = cli.add_int("seed", 1, "base seed (task i gets split_seed(seed, i))");
  auto& jobs = cli.add_int("jobs", 200, "jobs per generated instance");
  auto& load = cli.add_double("load", 0.85, "root-cut utilization");
  auto& fault_rates = cli.add_string(
      "fault-rates", "",
      "comma-separated node crash rates; adds the fault grid dimension");
  auto& fault_mttr = cli.add_double("fault-mttr", 5.0,
                                    "mean time to repair for crashed nodes");
  auto& fault_horizon = cli.add_double(
      "fault-horizon", 0.0, "fault window horizon (0 = auto from releases)");
  auto& shed_policies = cli.add_string(
      "shed-policies", "",
      "comma-separated admission policies (none|bounded-queue|largest-first|"
      "deadline); adds the overload grid dimension");
  auto& queue_cap = cli.add_double(
      "queue-cap", 0.0,
      "root-cut volume cap for bounded-queue/largest-first cells");
  auto& deadline_slack = cli.add_double(
      "deadline-slack", 8.0, "deadline cells admit iff F <= slack * p_j");
  auto& threads = cli.add_int(
      "threads", 0, "worker threads (0 = TREESCHED_THREADS or hardware)");
  auto& timeout_ms = cli.add_double(
      "timeout-ms", 0.0, "per-task patience; late tasks are skipped, not awaited");
  auto& retries = cli.add_int(
      "retries", 0, "per-task retries with capped exponential backoff");
  auto& backoff_ms = cli.add_double("retry-backoff-ms", 5.0,
                                    "base backoff before a retry");
  auto& checkpoint = cli.add_string(
      "checkpoint", "", "append-only journal of finished tasks");
  auto& resume = cli.add_flag(
      "resume", "skip tasks already in --checkpoint (same grid required)");
  auto& json_path = cli.add_string("json", "", "machine-readable results file");
  auto& timing = cli.add_flag(
      "timing", "embed wall-clock/speedup metadata in the JSON (non-deterministic)");
  auto& record_dir = cli.add_string(
      "record-dir", "", "write per-task traces + run logs here for treesched_audit");
  auto& quiet = cli.add_flag("quiet", "suppress the human table");

  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\nrun with --help for usage\n";
    return kExitUsage;
  }

  try {
    exec::SweepSpec spec;
    spec.policies = parse_list("policies", policies);
    spec.trees = trees == "all" ? std::vector<std::string>{}
                                : parse_list("trees", trees);
    spec.eps_grid = parse_eps(eps);
    spec.seeds = static_cast<int>(seeds);
    spec.base_seed = static_cast<std::uint64_t>(seed);
    spec.jobs = static_cast<int>(jobs);
    spec.load = load;
    if (!fault_rates.empty())
      spec.fault_rates = parse_doubles("fault-rates", fault_rates);
    spec.fault_mttr = fault_mttr;
    spec.fault_horizon = fault_horizon;
    if (!shed_policies.empty())
      spec.shed_policies = parse_list("shed-policies", shed_policies);
    spec.queue_cap = queue_cap;
    spec.deadline_slack = deadline_slack;
    spec.threads = static_cast<std::size_t>(threads);
    spec.timeout_ms = timeout_ms;
    spec.retries = static_cast<int>(retries);
    spec.retry_backoff_ms = backoff_ms;
    spec.checkpoint = checkpoint;
    spec.resume = resume;
    spec.record_dir = record_dir;
    spec.cancel = &g_cancel;

    if (!record_dir.empty()) {
      // Fail before the sweep, not after: an unwritable record dir would
      // otherwise surface as one cryptic task failure per grid point.
      std::error_code ec;
      std::filesystem::create_directories(record_dir, ec);
      if (ec)
        throw std::invalid_argument("--record-dir '" + record_dir +
                                    "' is not writable: " + ec.message());
      const std::string probe = record_dir + "/.treesched_probe";
      try {
        util::write_file_atomic(probe, "probe\n");
        std::filesystem::remove(probe, ec);
      } catch (const std::exception& e) {
        throw std::invalid_argument("--record-dir '" + record_dir +
                                    "' is not writable: " + e.what());
      }
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    // The silent-overload footgun: class-rounded sizes inflate the ACHIEVED
    // load past the --load target, so a nominally stable spec can saturate
    // the root cut. Probe the real rho and warn unless a shedding cell will
    // keep the backlog bounded.
    const bool any_shedding =
        std::any_of(spec.shed_policies.begin(), spec.shed_policies.end(),
                    [](const std::string& p) { return p != "none"; });
    const double rho = exec::probe_offered_load(spec);
    if (rho >= 1.0 && !any_shedding)
      std::cerr << "warning: offered load rho=" << rho
                << " >= 1: generated instances saturate the root cut and "
                   "flow times diverge (consider --shed-policies)\n";

    const exec::SweepResult result = exec::run_sweep(spec);

    if (result.interrupted) {
      std::cerr << "interrupted: pending tasks dropped";
      if (!checkpoint.empty())
        std::cerr << "; finished work is journaled — rerun with --resume "
                     "--checkpoint "
                  << checkpoint << " to continue";
      std::cerr << '\n';
      return kExitInterrupted;
    }

    if (!json_path.empty())
      exec::write_sweep_json_file(json_path, result, timing);

    std::size_t skipped = 0;
    for (const auto& task : result.tasks)
      if (task.status != exec::TaskStatus::kOk) ++skipped;

    if (!quiet) {
      std::cout << sweep_table(result) << '\n'
                << "tasks              : " << result.tasks.size()
                << " (" << skipped << " skipped, " << result.resumed
                << " resumed)\n"
                << "threads            : " << result.threads_used << '\n'
                << "wall clock         : " << result.wall_ms / 1000.0 << " s\n"
                << "task time (sum)    : " << result.task_ms_sum / 1000.0
                << " s\n"
                << "speedup estimate   : "
                << (result.wall_ms > 0.0
                        ? result.task_ms_sum / result.wall_ms
                        : 0.0)
                << "x\n";
      for (const auto& task : result.tasks) {
        if (task.status == exec::TaskStatus::kTimedOut)
          std::cout << "skipped (timeout)  : task " << task.index << " "
                    << result.spec.policies[task.policy_i] << "/"
                    << result.spec.trees[task.tree_i] << "/eps="
                    << result.spec.eps_grid[task.eps_i] << " seed#"
                    << task.seed_index << '\n';
        else if (task.status == exec::TaskStatus::kFailed)
          std::cout << "skipped (error)    : task " << task.index << ": "
                    << task.error << '\n';
      }
    }
    return skipped > 0 ? kExitSkipped : kExitOk;
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\nrun with --help for usage\n";
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return kExitUnexpected;
  }
}
