// treesched_sweep — parallel policy × topology × eps × seed sweeps.
//
//   treesched_sweep --policies paper,closest --trees star-2x3,figure1
//       --eps 1.0,0.5 --seeds 5 --threads 8 --json results.json
//
// The flags form a declarative sweep spec (exec::SweepSpec). Tasks fan out
// over the exec thread pool; every task's seed derives from --seed and the
// task's fixed grid index, so results — and the default JSON document — are
// byte-identical for any --threads value. Wall-clock and speedup metadata
// are printed to stdout and embedded in the JSON only with --timing, which
// keeps the default output deterministic.
//
// Exit codes: 0 = clean, 1 = usage/input error, 3 = tasks were skipped
// (per-task --timeout-ms exceeded or a task threw; see the report).
#include <iostream>

#include "treesched/exec/parallel.hpp"
#include "treesched/exec/sweep.hpp"
#include "treesched/treesched.hpp"

using namespace treesched;

namespace {

std::vector<std::string> parse_list(const std::string& csv) {
  std::vector<std::string> out;
  for (const std::string& part : util::split(csv, ','))
    if (!part.empty()) out.push_back(part);
  return out;
}

std::vector<double> parse_eps(const std::string& csv) {
  if (csv == "paper") return experiments::epsilon_sweep();
  std::vector<double> out;
  for (const std::string& part : parse_list(csv)) out.push_back(std::stod(part));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("treesched_sweep",
                "Deterministic parallel sweep over policies/trees/eps/seeds.");
  auto& policies = cli.add_string("policies", "paper",
                                  "comma-separated run_named_policy names");
  auto& trees = cli.add_string(
      "trees", "all", "comma-separated standard_trees names, or 'all'");
  auto& eps = cli.add_string(
      "eps", "paper", "comma-separated eps grid, or 'paper' for the sweep");
  auto& seeds = cli.add_int("seeds", 3, "repetitions per cell");
  auto& seed = cli.add_int("seed", 1, "base seed (task i gets split_seed(seed, i))");
  auto& jobs = cli.add_int("jobs", 200, "jobs per generated instance");
  auto& load = cli.add_double("load", 0.85, "root-cut utilization");
  auto& threads = cli.add_int(
      "threads", 0, "worker threads (0 = TREESCHED_THREADS or hardware)");
  auto& timeout_ms = cli.add_double(
      "timeout-ms", 0.0, "per-task patience; late tasks are skipped, not awaited");
  auto& json_path = cli.add_string("json", "", "machine-readable results file");
  auto& timing = cli.add_flag(
      "timing", "embed wall-clock/speedup metadata in the JSON (non-deterministic)");
  auto& record_dir = cli.add_string(
      "record-dir", "", "write per-task traces + run logs here for treesched_audit");
  auto& quiet = cli.add_flag("quiet", "suppress the human table");
  cli.parse(argc, argv);

  try {
    exec::SweepSpec spec;
    spec.policies = parse_list(policies);
    spec.trees = trees == "all" ? std::vector<std::string>{} : parse_list(trees);
    spec.eps_grid = parse_eps(eps);
    spec.seeds = static_cast<int>(seeds);
    spec.base_seed = static_cast<std::uint64_t>(seed);
    spec.jobs = static_cast<int>(jobs);
    spec.load = load;
    spec.threads = static_cast<std::size_t>(threads);
    spec.timeout_ms = timeout_ms;
    spec.record_dir = record_dir;

    const exec::SweepResult result = exec::run_sweep(spec);
    if (!json_path.empty())
      exec::write_sweep_json_file(json_path, result, timing);

    std::size_t skipped = 0;
    for (const auto& task : result.tasks)
      if (task.status != exec::TaskStatus::kOk) ++skipped;

    if (!quiet) {
      std::cout << sweep_table(result) << '\n'
                << "tasks              : " << result.tasks.size()
                << " (" << skipped << " skipped)\n"
                << "threads            : " << result.threads_used << '\n'
                << "wall clock         : " << result.wall_ms / 1000.0 << " s\n"
                << "task time (sum)    : " << result.task_ms_sum / 1000.0
                << " s\n"
                << "speedup estimate   : "
                << (result.wall_ms > 0.0
                        ? result.task_ms_sum / result.wall_ms
                        : 0.0)
                << "x\n";
      for (const auto& task : result.tasks) {
        if (task.status == exec::TaskStatus::kTimedOut)
          std::cout << "skipped (timeout)  : task " << task.index << " "
                    << result.spec.policies[task.policy_i] << "/"
                    << result.spec.trees[task.tree_i] << "/eps="
                    << result.spec.eps_grid[task.eps_i] << " seed#"
                    << task.seed_index << '\n';
        else if (task.status == exec::TaskStatus::kFailed)
          std::cout << "skipped (error)    : task " << task.index << ": "
                    << task.error << '\n';
      }
    }
    return skipped > 0 ? 3 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
