// treesched_audit — offline invariant analyzer for recorded runs.
//
//   treesched_run --trace t.txt --record-out run.log
//   treesched_audit --trace t.txt --log run.log --eps 0.5
//
// Re-checks the paper's model invariants against the burst log without
// trusting any engine state: store-and-forward precedence, unit capacity per
// node per instant, per-policy priority consistency at every preemption
// point, immediate-dispatch assignment stability, and (with --eps) the
// Lemma 1/2/3 bounds with per-job worst-case margins.
//
// Segmented streaming logs (treesched-runlog-seg-v1, written by
// treesched_run --stream --record-out) are audited incrementally in
// O(segment) memory instead:
//
//   treesched_audit --segments seg/manifest.log
//
// This mode needs no --trace: job identities are reconstructed from the
// jobrec admission lines inside the segments, and the fingerprint chain in
// the manifest proves the segment files are the ones the writer sealed.
//
// Guard sidecar logs (treesched-guardlog-v1, written by treesched_run
// --guard-log / --supervise) are verified with:
//
//   treesched_audit --guard run.guard.log
//
// This re-checks the supervision invariants offline: the degradation
// ladder escalated in order (one stage at a time, per child incarnation),
// every escalation recorded pressure at or over an armed ceiling, watchdog
// actions followed log -> snapshot -> abort with stalls over the armed
// deadline multiples, and timestamps are monotone.
//
// Exit codes: 0 = clean, 1 = usage/input error, 2 = invariant violation.
#include <iostream>

#include "treesched/guard/guard_log.hpp"
#include "treesched/sim/audit.hpp"
#include "treesched/sim/run_log.hpp"
#include "treesched/sim/runlog_segments.hpp"
#include "treesched/util/cli.hpp"
#include "treesched/workload/trace_io.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("treesched_audit",
                "Audit a recorded run against the paper's invariants.");
  auto& trace = cli.add_string("trace", "", "instance trace path (required)");
  auto& log_path = cli.add_string("log", "", "run log path (required)");
  auto& segments = cli.add_string(
      "segments", "",
      "segmented-log manifest path: audit a streaming run incrementally "
      "(no --trace/--log needed)");
  auto& eps = cli.add_double(
      "eps", 0.0, "speed-augmentation epsilon; > 0 prints lemma margins");
  auto& strict = cli.add_flag(
      "strict-lemmas", "treat a lemma margin ratio > 1 as a violation");
  auto& tol = cli.add_double("tol", 1e-6, "numeric comparison tolerance");
  auto& guard_log = cli.add_string(
      "guard", "",
      "guard sidecar log path: verify the supervision invariants (ladder "
      "order, recorded pressure, watchdog escalation, monotone timestamps)");
  auto& quiet = cli.add_flag("quiet", "print only the verdict line");
  cli.parse(argc, argv);

  try {
    if (!guard_log.empty()) {
      if (!trace.empty() || !log_path.empty() || !segments.empty())
        throw std::invalid_argument(
            "--guard is self-contained; drop --trace/--log/--segments");
      const guard::GuardAuditResult res = guard::audit_guard_log(guard_log);
      std::cout << (res.ok ? "guard audit: OK" : "guard audit: FAILED")
                << " (" << res.incarnations << " incarnation(s), "
                << res.governor_escalations << " escalation(s), "
                << res.watchdog_events << " watchdog event(s), "
                << res.supervisor_events << " supervisor event(s), "
                << "max stage " << guard::stage_name(res.max_stage) << ")\n";
      if (!quiet)
        for (const auto& v : res.violations)
          std::cout << "  line " << v.line << ": " << v.message << '\n';
      return res.ok ? 0 : 2;
    }
    if (!segments.empty()) {
      if (!trace.empty() || !log_path.empty())
        throw std::invalid_argument(
            "--segments is self-contained; drop --trace/--log");
      if (eps > 0.0 || strict)
        throw std::invalid_argument(
            "lemma margins need per-job release/size context the segment "
            "audit streams past; use the monolithic --trace/--log mode");
      sim::SegmentAuditOptions opts;
      opts.tol = tol;
      const sim::SegmentAuditResult res = sim::audit_segments(segments, opts);
      std::cout << (res.ok ? "segment audit: OK" : "segment audit: FAILED")
                << " (" << res.segments << " segments, " << res.payload_lines
                << " payload lines, " << res.arrivals << " arrivals, "
                << res.completed << " completed)\n";
      if (!quiet)
        for (const auto& v : res.violations)
          std::cout << "  segment " << v.segment << ": " << v.message << '\n';
      if (res.has_first_bad)
        std::cout << "first broken segment: " << res.first_bad_segment
                  << " (" << res.first_bad_path << ")\n"
                  << "hint: quarantine it (mv " << res.first_bad_path << ' '
                  << res.first_bad_path << ".quarantined) and re-audit; the "
                  << "chain pins every later segment, so only a writer can "
                  << "legitimately regenerate the file\n";
      return res.ok ? 0 : 2;
    }
    if (trace.empty()) throw std::invalid_argument("--trace is required");
    if (log_path.empty()) throw std::invalid_argument("--log is required");
    const Instance inst = workload::read_trace_file(trace);
    const sim::RunLog log = sim::read_run_log_file(log_path);

    sim::AuditOptions opts;
    opts.eps = eps;
    opts.strict_lemmas = strict;
    opts.tol = tol;
    const sim::AuditReport rep = sim::audit_run(inst, log, opts);

    std::cout << rep.summary() << '\n';
    if (!quiet && eps > 0.0) {
      const std::string table = rep.lemma_table();
      if (!table.empty()) std::cout << '\n' << table;
    }
    if (!rep.ok) return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
