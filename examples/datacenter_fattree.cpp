// Data-center scenario: a fat-tree of racks (the topology class the paper
// cites as its motivation [1, 15]) serving a MapReduce-like mix of many
// small tasks and a few huge shuffles, with machines of different speeds
// (unrelated endpoints). Compares the paper's congestion-aware rule against
// the usual heuristics a cluster scheduler might use.
//
//   ./datacenter_fattree [--jobs N] [--load RHO] [--eps E] [--seed S]
//                        [--arity K] [--depth D] [--racksize M] [--csv PATH]
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("datacenter_fattree",
                "MapReduce-style workload on a fat-tree with unrelated "
                "machines; compares assignment policies.");
  auto& jobs = cli.add_int("jobs", 600, "number of jobs");
  auto& load = cli.add_double("load", 0.75, "root-cut utilization target");
  auto& eps = cli.add_double("eps", 0.5, "speed augmentation epsilon");
  auto& seed = cli.add_int("seed", 7, "workload seed");
  auto& arity = cli.add_int("arity", 2, "fat-tree arity");
  auto& depth = cli.add_int("depth", 2, "router levels");
  auto& racksize = cli.add_int("racksize", 2, "machines per rack");
  auto& csv_path = cli.add_string("csv", "", "optional CSV output path");
  cli.parse(argc, argv);

  const Tree tree = builders::fat_tree(static_cast<int>(arity),
                                       static_cast<int>(depth),
                                       static_cast<int>(racksize));
  std::cout << "fat-tree: " << tree.node_count() << " nodes, "
            << tree.leaves().size() << " machines, "
            << tree.root_children().size() << " pods\n\n";

  util::Rng rng(static_cast<std::uint64_t>(seed));
  workload::WorkloadSpec spec;
  spec.jobs = static_cast<int>(jobs);
  spec.load = load;
  // MapReduce mix: mostly small map tasks, occasional big shuffles.
  spec.sizes.dist = workload::SizeDistribution::kBimodal;
  spec.sizes.scale = 1.0;
  spec.sizes.spread = 32.0;
  spec.sizes.mix = 0.08;
  // Machines differ: data locality makes one pod fast per job.
  spec.endpoints = EndpointModel::kUnrelated;
  spec.unrelated.model = workload::UnrelatedModel::kAffinity;
  spec.unrelated.spread = 4.0;
  const Instance inst = workload::generate(rng, tree, spec);

  const SpeedProfile speeds = SpeedProfile::paper_unrelated(tree, eps);
  const double lb = lp::combined_lower_bound(inst);

  util::Table table({"policy", "total flow", "mean flow", "p99 flow",
                     "max flow", "flow/LB"});
  util::CsvWriter csv({"policy", "total_flow", "mean_flow", "p99_flow",
                       "max_flow", "ratio"});
  for (const char* name : {"paper", "broomstick-mirror", "closest",
                           "least-volume", "least-count", "round-robin",
                           "random"}) {
    const auto r = algo::run_named_policy(inst, speeds, name, eps,
                                          static_cast<std::uint64_t>(seed));
    std::vector<double> flows;
    for (const auto& rec : r.metrics.jobs()) flows.push_back(rec.flow());
    const double p99 = stats::percentile(flows, 0.99);
    table.add(name, r.total_flow, r.mean_flow, p99, r.max_flow,
              r.total_flow / lb);
    csv.add(name, r.total_flow, r.mean_flow, p99, r.max_flow,
            r.total_flow / lb);
  }
  std::cout << table.str();
  if (!csv_path.empty()) {
    csv.write_file(csv_path);
    std::cout << "\nwrote " << csv_path << '\n';
  }
  return 0;
}
