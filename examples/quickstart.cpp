// Quickstart: build the paper's Figure-1 tree, generate a small workload,
// run the paper's algorithm, and print the results — the smallest complete
// tour of the public API.
//
//   ./quickstart [--jobs N] [--load RHO] [--eps E] [--seed S]
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  util::Cli cli("quickstart",
                "Run the paper's scheduler on the Figure-1 topology.");
  auto& jobs = cli.add_int("jobs", 200, "number of jobs");
  auto& load = cli.add_double("load", 0.7, "root-cut utilization target");
  auto& eps = cli.add_double("eps", 0.5, "speed augmentation epsilon");
  auto& seed = cli.add_int("seed", 42, "workload seed");
  cli.parse(argc, argv);

  // 1. The topology of the paper's Figure 1: a root (job distribution
  //    center), three router subtrees, machines at the leaves.
  const Tree tree = builders::figure1_tree();
  std::cout << "Tree network (paper, Figure 1):\n" << tree.to_ascii() << '\n';

  // 2. A Poisson workload with heavy-tailed job sizes.
  util::Rng rng(static_cast<std::uint64_t>(seed));
  workload::WorkloadSpec spec;
  spec.jobs = static_cast<int>(jobs);
  spec.load = load;
  spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
  const Instance inst = workload::generate(rng, tree, spec);

  // 3. The paper's algorithm: SJF on every node + the greedy leaf
  //    assignment rule, with (1+eps)-style speed augmentation. Recording
  //    the schedule lets us validate and draw it afterwards.
  algo::PaperGreedyPolicy policy(eps);
  sim::EngineConfig cfg;
  cfg.record_schedule = true;
  sim::Engine engine(inst, SpeedProfile::paper_identical(tree, eps), cfg);
  engine.run(policy);

  // 4. Results.
  const sim::Metrics& m = engine.metrics();
  std::cout << "jobs completed     : " << m.completed_count() << '\n'
            << "total flow time    : " << m.total_flow_time() << '\n'
            << "mean flow time     : " << m.mean_flow_time() << '\n'
            << "max flow time      : " << m.max_flow_time() << '\n'
            << "fractional flow    : " << m.total_fractional_flow_time()
            << '\n'
            << "makespan           : " << m.makespan() << '\n';

  const double lb = lp::combined_lower_bound(inst);
  std::cout << "certified OPT lower bound (speed-1 adversary): " << lb << '\n'
            << "flow / lower bound : " << m.total_flow_time() / lb << "\n\n";

  // 5. Flow-time distribution.
  stats::LogHistogram hist(1.0, 2.0);
  for (const auto& rec : m.jobs()) hist.add(rec.flow());
  std::cout << "flow-time histogram (log buckets):\n" << hist.to_ascii();

  // 6. A Gantt snapshot of the opening of the schedule: watch jobs hop
  //    router -> router -> machine and small jobs preempt big ones.
  sim::GanttOptions gopt;
  gopt.t_end = std::min(m.makespan(), 60.0);
  std::cout << "\nschedule (first " << gopt.t_end << " time units):\n"
            << sim::render_gantt(inst, engine.recorder(), gopt);
  return 0;
}
