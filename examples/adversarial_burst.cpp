// Adversarial scenarios: bursty (MMPP) arrivals plus the hand-crafted
// gadget instances, each designed to defeat one naive heuristic. Also runs
// the Lemma 1/2 monitors live so the structural guarantees can be watched
// holding (or failing, if you drop the speed below the premises with
// --starve).
//
//   ./adversarial_burst [--waves W] [--eps E] [--starve]
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

namespace {

void compare_on(const std::string& title, const Instance& inst, double eps) {
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0 + eps);
  const double lb = lp::combined_lower_bound(inst);
  util::Table table({"policy", "total flow", "flow/LB"});
  for (const char* name :
       {"paper", "closest", "round-robin", "least-volume", "least-count"}) {
    const auto r = algo::run_named_policy(inst, speeds, name, eps, 3);
    table.add(name, r.total_flow, r.total_flow / lb);
  }
  std::cout << "--- " << title << " ---\n" << table.str() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("adversarial_burst",
                "Gadget instances that defeat naive assignment policies, "
                "plus live lemma monitors under bursty load.");
  auto& waves = cli.add_int("waves", 40, "gadget length (waves of jobs)");
  auto& eps = cli.add_double("eps", 1.0, "speed augmentation epsilon");
  auto& starve = cli.add_flag(
      "starve", "drop the interior speed below the lemma premises");
  cli.parse(argc, argv);

  compare_on("congestion trap (defeats closest-leaf)",
             workload::congestion_trap(static_cast<int>(waves)), eps);
  compare_on("size mixer (defeats round-robin)",
             workload::size_mixer(static_cast<int>(waves) / 2), eps);
  compare_on("unrelated trap (defeats leaf-blind rules)",
             workload::unrelated_trap(static_cast<int>(waves)), eps);

  // Bursty MMPP load with live Lemma 1/2 monitoring.
  const Tree tree = builders::caterpillar(2, 3, 2);
  util::Rng rng(13);
  workload::WorkloadSpec spec;
  spec.jobs = 400;
  spec.load = 0.8;
  spec.arrivals = workload::ArrivalProcess::kMmpp;
  spec.sizes.class_eps = eps;  // the lemmas assume class-rounded sizes
  const Instance inst = workload::generate(rng, tree, spec);

  const double interior = starve ? 1.0 : 1.0 + eps;
  const SpeedProfile speeds = SpeedProfile::layered(tree, 1.0, interior);
  algo::PaperGreedyPolicy policy(eps);
  algo::Lemma2Monitor monitor(eps, /*check_every=*/4);
  sim::QueueSampler sampler(/*min_gap=*/2.0);
  struct Fanout : sim::EngineObserver {
    std::vector<sim::EngineObserver*> sinks;
    void on_event(const sim::Engine& e, Time t) override {
      for (auto* s : sinks) s->on_event(e, t);
    }
  } fanout;
  fanout.sinks = {&monitor, &sampler};
  sim::Engine engine(inst, speeds);
  engine.set_observer(&fanout);
  engine.run(policy);
  const auto wait = algo::interior_wait_report(engine, eps);

  std::cout << "queued jobs over time (bursts visible as spikes):\n"
            << sim::ascii_sparkline(sampler.queued_series()) << "\n\n";

  std::cout << "--- burst run with lemma monitors (interior speed "
            << interior << ") ---\n"
            << "Lemma 2 volume bound: max observed/bound = "
            << monitor.max_ratio() << " over " << monitor.checks()
            << " checks, violations = " << monitor.violations() << '\n'
            << "Lemma 1 interior wait: max observed/bound = "
            << wait.max_ratio << " across " << wait.jobs_measured
            << " jobs, violations = " << wait.violations << '\n';
  if (starve)
    std::cout << "(speeds below the lemma premises: violations above are "
                 "expected and demonstrate the premises are necessary)\n";
  return 0;
}
