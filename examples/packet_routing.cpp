// Packet-routing scenario (Section 2's second interpretation): packets of
// data originate at a collection site (the root) and must be forwarded hop
// by hop to processing machines. Store-and-forward of whole packets is the
// paper's model; the pipelined mode chunks packets on the wire (the
// extension the paper defers to its full version). Also contrasts SJF with
// FIFO routers — real routers rarely reorder, and the flow-time price of
// that is visible here.
//
//   ./packet_routing [--jobs N] [--hops H] [--branches B] [--load RHO]
//                    [--chunk C] [--seed S]
#include <iostream>

#include "treesched/treesched.hpp"

using namespace treesched;

namespace {

struct RunRow {
  std::string label;
  algo::RunResult result;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("packet_routing",
                "Packet forwarding on a deep tree: node disciplines and "
                "pipelined chunking.");
  auto& jobs = cli.add_int("jobs", 400, "number of packets");
  auto& hops = cli.add_int("hops", 6, "router hops per branch");
  auto& branches = cli.add_int("branches", 3, "branches from the source");
  auto& load = cli.add_double("load", 0.65, "source-link utilization");
  auto& chunk = cli.add_double("chunk", 0.5, "pipelined chunk size");
  auto& seed = cli.add_int("seed", 21, "workload seed");
  cli.parse(argc, argv);

  const Tree tree = builders::star_of_paths(static_cast<int>(branches),
                                            static_cast<int>(hops));
  util::Rng rng(static_cast<std::uint64_t>(seed));
  workload::WorkloadSpec spec;
  spec.jobs = static_cast<int>(jobs);
  spec.load = load;
  // Packet sizes: a few MTU classes.
  spec.sizes.dist = workload::SizeDistribution::kBimodal;
  spec.sizes.scale = 1.0;
  spec.sizes.spread = 4.0;
  spec.sizes.mix = 0.3;
  const Instance inst = workload::generate(rng, tree, spec);

  const SpeedProfile speeds = SpeedProfile::uniform(tree, 1.25);
  const double eps = 0.5;

  std::vector<RunRow> rows;
  auto run_cfg = [&](const std::string& label, sim::NodePolicy np,
                     double chunk_size) {
    sim::EngineConfig cfg;
    cfg.node_policy = np;
    cfg.router_chunk_size = chunk_size;
    rows.push_back(
        {label, algo::run_named_policy(inst, speeds, "paper", eps, 1, cfg)});
  };

  run_cfg("SJF store-and-forward", sim::NodePolicy::kSjf, 0.0);
  run_cfg("SJF pipelined", sim::NodePolicy::kSjf, chunk);
  run_cfg("FIFO store-and-forward", sim::NodePolicy::kFifo, 0.0);
  run_cfg("FIFO pipelined", sim::NodePolicy::kFifo, chunk);
  run_cfg("SRPT store-and-forward", sim::NodePolicy::kSrpt, 0.0);

  util::Table table(
      {"router discipline", "total flow", "mean flow", "max flow",
       "makespan"});
  for (const auto& row : rows)
    table.add(row.label, row.result.total_flow, row.result.mean_flow,
              row.result.max_flow, row.result.makespan);
  std::cout << "packets over " << hops << " hops x " << branches
            << " branches (load " << load << ")\n\n"
            << table.str() << '\n';

  const double sf = rows[0].result.total_flow;
  const double piped = rows[1].result.total_flow;
  std::cout << "pipelining gain (SJF): " << (sf - piped) / sf * 100.0
            << "% less total flow — deep paths amortize per-hop latency, "
               "matching the paper's remark that congestion at interior "
               "routers is 'effectively negated' once jobs split into "
               "packets.\n";
  return 0;
}
