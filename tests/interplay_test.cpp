// Cross-feature interplay: the engine's orthogonal features (pipelined
// chunking, unrelated machines, custom paths, HDF weights) must compose.
#include <gtest/gtest.h>

#include "treesched/algo/anycast.hpp"
#include "treesched/algo/general_tree.hpp"
#include "treesched/algo/policies.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/validator.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched {
namespace {

TEST(Interplay, ChunkedUnrelatedHandCase) {
  // Router size 2 in unit chunks, leaf size 3 (unrelated): r1 streams
  // chunks at [0,1), [1,2); r2 at [1,2), [2,3); the machine waits for all
  // data (t=3) and runs 3 units: completion 6.
  Tree tree = builders::star_of_paths(1, 2);
  Instance inst(std::move(tree), {Job(0, 0.0, 2.0, {3.0})},
                EndpointModel::kUnrelated);
  sim::EngineConfig cfg;
  cfg.router_chunk_size = 1.0;
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  eng.run_with_assignment({inst.tree().leaves()[0]});
  EXPECT_DOUBLE_EQ(eng.metrics().job(0).completion, 6.0);
}

TEST(Interplay, ChunkedUnrelatedRandomValidates) {
  util::Rng rng(71);
  workload::WorkloadSpec spec;
  spec.jobs = 80;
  spec.load = 0.8;
  spec.endpoints = EndpointModel::kUnrelated;
  const Instance inst =
      workload::generate(rng, builders::fat_tree(2, 2, 2), spec);
  sim::EngineConfig cfg;
  cfg.record_schedule = true;
  cfg.router_chunk_size = 0.5;
  const SpeedProfile speeds = SpeedProfile::paper_unrelated(inst.tree(), 0.5);
  algo::PaperGreedyPolicy policy(0.5);
  sim::Engine eng(inst, speeds, cfg);
  eng.run(policy);
  const auto res = sim::validate_schedule(inst, speeds, cfg, eng.recorder(),
                                          eng.metrics());
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST(Interplay, ChunkedAnycastCompletesAndValidates) {
  util::Rng rng(73);
  workload::WorkloadSpec spec;
  spec.jobs = 50;
  spec.load = 0.6;
  spec.leaf_source_fraction = 0.5;
  const Instance inst =
      workload::generate(rng, builders::fat_tree(2, 1, 2), spec);
  sim::EngineConfig cfg;
  cfg.record_schedule = true;
  cfg.router_chunk_size = 1.0;
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.5);
  std::vector<std::vector<NodeId>> paths;
  sim::ScheduleRecorder recorder;
  const auto metrics =
      algo::run_anycast(inst, speeds, algo::AnycastStrategy::kLeastVolume,
                        cfg, &paths, &recorder);
  EXPECT_TRUE(metrics.all_completed());
  const auto res =
      sim::validate_schedule(inst, speeds, cfg, recorder, metrics, paths);
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST(Interplay, HdfWithChunksKeepsJobLevelPriority) {
  // A heavy job (weight 8, size 4 => density 0.5) must preempt a light
  // size-1 job (density 1) on routers even while chunked.
  Tree tree = builders::star_of_paths(1, 1);
  std::vector<Job> jobs{Job(0, 0.0, 1.0), Job(1, 0.25, 4.0)};
  jobs[1].weight = 8.0;
  Instance inst(std::move(tree), std::move(jobs), EndpointModel::kIdentical);
  sim::EngineConfig cfg;
  cfg.node_policy = sim::NodePolicy::kHdf;
  cfg.router_chunk_size = 0.5;
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  const NodeId leaf = inst.tree().leaves()[0];
  eng.run_with_assignment({leaf, leaf});
  // Job 1 preempts at t=0.25 and finishes router+leaf first.
  EXPECT_LT(eng.metrics().job(1).completion, eng.metrics().job(0).completion);
}

TEST(Interplay, WeightedAnycastWorkload) {
  util::Rng rng(79);
  workload::WorkloadSpec spec;
  spec.jobs = 60;
  spec.weights = workload::WeightModel::kInverseSize;
  spec.leaf_source_fraction = 0.3;
  const Instance inst =
      workload::generate(rng, builders::caterpillar(2, 2, 2), spec);
  sim::EngineConfig cfg;
  cfg.node_policy = sim::NodePolicy::kHdf;
  const auto metrics = algo::run_anycast(
      inst, SpeedProfile::uniform(inst.tree(), 1.5),
      algo::AnycastStrategy::kGreedy, cfg);
  EXPECT_TRUE(metrics.all_completed());
  EXPECT_GT(metrics.total_weighted_flow_time(), 0.0);
}

TEST(Interplay, MirrorPolicyWithChunkedOuterEngine) {
  // The mirror policy's internal broomstick runs unchunked (the analysis
  // is store-and-forward), but the outer engine may pipeline: assignments
  // still come from the broomstick and everything completes.
  util::Rng rng(83);
  workload::WorkloadSpec spec;
  spec.jobs = 60;
  const Instance inst =
      workload::generate(rng, builders::figure1_tree(), spec);
  algo::BroomstickMirrorPolicy mirror(inst, 0.5);
  sim::EngineConfig cfg;
  cfg.router_chunk_size = 0.5;
  sim::Engine eng(inst, SpeedProfile::paper_identical(inst.tree(), 0.5), cfg);
  eng.run(mirror);
  mirror.finish_simulation();
  EXPECT_TRUE(eng.metrics().all_completed());
}

}  // namespace
}  // namespace treesched
