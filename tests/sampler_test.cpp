// Queue sampling and sparkline rendering.
#include <gtest/gtest.h>

#include "treesched/core/tree_builders.hpp"
#include "treesched/sim/sampler.hpp"
#include "treesched/workload/generator.hpp"
#include "treesched/algo/policies.hpp"

namespace treesched {
namespace {

TEST(Sampler, CollectsMonotoneTimesAndSaneCounts) {
  util::Rng rng(9);
  workload::WorkloadSpec spec;
  spec.jobs = 80;
  spec.load = 0.9;
  const Instance inst =
      workload::generate(rng, builders::star_of_paths(2, 2), spec);
  sim::QueueSampler sampler(0.5);
  algo::PaperGreedyPolicy policy(0.5);
  sim::Engine engine(inst, SpeedProfile::uniform(inst.tree(), 1.2));
  engine.set_observer(&sampler);
  engine.run(policy);
  ASSERT_FALSE(sampler.samples().empty());
  for (std::size_t i = 1; i < sampler.samples().size(); ++i) {
    EXPECT_GE(sampler.samples()[i].t, sampler.samples()[i - 1].t + 0.5 - 1e-9);
    EXPECT_LE(sampler.samples()[i].alive_jobs,
              sampler.samples()[i].queued_jobs);
  }
  EXPECT_EQ(sampler.queued_series().size(), sampler.samples().size());
}

TEST(Sparkline, ScalesToPeakAndWidth) {
  const std::vector<double> series{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::string line = sim::ascii_sparkline(series, 10);
  EXPECT_EQ(line.size(), 10u);
  EXPECT_EQ(line.front(), ' ');  // zero level
  EXPECT_EQ(line.back(), '@');   // peak level
}

TEST(Sparkline, DownsamplesByColumnMax) {
  std::vector<double> series(100, 0.0);
  series[55] = 10.0;  // a single spike must survive downsampling
  const std::string line = sim::ascii_sparkline(series, 10);
  EXPECT_EQ(line.size(), 10u);
  EXPECT_NE(line.find('@'), std::string::npos);
}

TEST(Sparkline, DegenerateInputs) {
  EXPECT_TRUE(sim::ascii_sparkline({}, 10).empty());
  EXPECT_TRUE(sim::ascii_sparkline({1.0}, 0).empty());
  // All-zero series renders as blanks, not a crash.
  const std::string flat = sim::ascii_sparkline({0.0, 0.0, 0.0}, 3);
  EXPECT_EQ(flat, "   ");
}

}  // namespace
}  // namespace treesched
