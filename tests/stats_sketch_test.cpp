// Online quantile sketches (stats/quantile_sketch.hpp): exactness below
// the marker count, the digest's documented rank-error bound, merge
// determinism, query purity, and snapshot round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "treesched/stats/quantile_sketch.hpp"
#include "treesched/util/rng.hpp"

using treesched::stats::merge_deterministic;
using treesched::stats::P2Quantile;
using treesched::stats::QuantileDigest;

namespace {

/// Number of sample values strictly below x (the rank the sketches are
/// judged against; ties count as "not below" so the bound is conservative
/// on both sides via the [below, below+ties] window).
std::pair<double, double> rank_window(std::vector<double> sorted, double x) {
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), x);
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), x);
  return {static_cast<double>(lo - sorted.begin()),
          static_cast<double>(hi - sorted.begin())};
}

/// |true_rank(estimate) - q*n| <= slack*n, with ties resolved in the
/// estimate's favor.
void expect_rank_within(const std::vector<double>& data, double x, double q,
                        double slack) {
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const auto [lo, hi] = rank_window(sorted, x);
  const double target = q * static_cast<double>(data.size());
  const double err = target < lo ? lo - target : (target > hi ? target - hi
                                                              : 0.0);
  EXPECT_LE(err, slack * static_cast<double>(data.size()))
      << "q=" << q << " estimate=" << x;
}

std::vector<double> pareto_sample(std::size_t n, std::uint64_t seed) {
  treesched::util::Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Heavy-tailed, the regime the digest's rank (not value) bound targets.
    const double u = rng.uniform01();
    out.push_back(1.0 / std::pow(1.0 - 0.999 * u, 0.75));
  }
  return out;
}

std::string digest_bytes(const QuantileDigest& d) {
  std::ostringstream os;
  d.save(os);
  return os.str();
}

}  // namespace

TEST(P2QuantileTest, ExactBelowFiveObservations) {
  P2Quantile p(0.5);
  EXPECT_TRUE(std::isnan(p.estimate()));
  p.add(9.0);
  EXPECT_DOUBLE_EQ(p.estimate(), 9.0);
  p.add(1.0);
  p.add(5.0);
  // n=3, rank ceil(0.5*3)=2 → the 2nd order statistic.
  EXPECT_DOUBLE_EQ(p.estimate(), 5.0);
}

TEST(P2QuantileTest, TracksUniformQuantiles) {
  treesched::util::Rng rng(7);
  std::vector<double> data;
  P2Quantile p50(0.5), p99(0.99);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform01();
    data.push_back(x);
    p50.add(x);
    p99.add(x);
  }
  // P² has no distribution-free bound; on a smooth distribution it should
  // sit well within a few percent of the true rank.
  expect_rank_within(data, p50.estimate(), 0.5, 0.03);
  expect_rank_within(data, p99.estimate(), 0.99, 0.03);
}

TEST(P2QuantileTest, SaveLoadRoundTripsExactly) {
  P2Quantile p(0.99);
  treesched::util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) p.add(rng.uniform01() * 100.0);
  std::ostringstream os;
  p.save(os);
  P2Quantile q(0.99);  // load() restores state into a same-q sketch
  std::istringstream is(os.str());
  q.load(is);
  EXPECT_DOUBLE_EQ(q.estimate(), p.estimate());
  EXPECT_EQ(q.count(), p.count());
  // Identical continuation after the round trip.
  p.add(42.0);
  q.add(42.0);
  EXPECT_DOUBLE_EQ(q.estimate(), p.estimate());
}

TEST(QuantileDigestTest, DocumentedRankBoundOnHeavyTail) {
  const auto data = pareto_sample(50000, 11);
  QuantileDigest d;
  for (const double x : data) d.add(x);
  const double slack = 2.0 / static_cast<double>(d.max_centroids());
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999})
    expect_rank_within(data, d.quantile(q), q, slack);
}

TEST(QuantileDigestTest, EndpointsAreExact) {
  const auto data = pareto_sample(5000, 23);
  QuantileDigest d;
  for (const double x : data) d.add(x);
  EXPECT_DOUBLE_EQ(d.quantile(0.0),
                   *std::min_element(data.begin(), data.end()));
  EXPECT_DOUBLE_EQ(d.quantile(1.0),
                   *std::max_element(data.begin(), data.end()));
}

TEST(QuantileDigestTest, QueriesArePure) {
  QuantileDigest d;
  for (const double x : pareto_sample(3000, 5)) d.add(x);
  const std::string before = digest_bytes(d);
  (void)d.quantile(0.5);
  (void)d.quantile(0.99);
  (void)d.min();
  (void)d.max();
  EXPECT_EQ(digest_bytes(d), before);
}

TEST(QuantileDigestTest, InsertionSequenceDeterminesBytes) {
  const auto data = pareto_sample(10000, 31);
  QuantileDigest a, b;
  for (const double x : data) a.add(x);
  for (const double x : data) b.add(x);
  EXPECT_EQ(digest_bytes(a), digest_bytes(b));
}

TEST(QuantileDigestTest, DeterministicMergeHoldsRankBound) {
  const auto data = pareto_sample(40000, 17);
  // Shards of different lengths, merged in index order.
  std::vector<QuantileDigest> parts(7);
  for (std::size_t i = 0; i < data.size(); ++i)
    parts[(i * i) % parts.size()].add(data[i]);
  const QuantileDigest merged = merge_deterministic(parts);
  EXPECT_EQ(merged.count(), data.size());
  const double slack = 2.0 / static_cast<double>(merged.max_centroids());
  for (const double q : {0.1, 0.5, 0.9, 0.99})
    expect_rank_within(data, merged.quantile(q), q, slack);
  // Same parts, same order → same bytes, independent of when shards landed.
  EXPECT_EQ(digest_bytes(merge_deterministic(parts)), digest_bytes(merged));
}

TEST(P2QuantileTest, RejectsTruncatedAndBitFlippedState) {
  P2Quantile p(0.99);
  treesched::util::Rng rng(3);
  for (int i = 0; i < 500; ++i) p.add(rng.uniform01() * 100.0);
  std::ostringstream os;
  p.save(os);
  const std::string bytes = os.str();
  // Durability contract: a mutated serialization is either rejected with
  // std::invalid_argument or decodes to the EXACT original state (an
  // equivalent encoding, e.g. a newline flipped to another whitespace
  // byte) — it never silently mis-loads.
  const auto check = [&](const std::string& mut) {
    P2Quantile q(0.99);
    std::istringstream is(mut);
    try {
      q.load(is);
    } catch (const std::invalid_argument&) {
      return;
    }
    std::ostringstream rs;
    q.save(rs);
    EXPECT_EQ(rs.str(), bytes);
  };
  for (std::size_t len = 0; len < bytes.size(); ++len)
    check(bytes.substr(0, len));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mut = bytes;
    mut[i] = static_cast<char>(mut[i] ^ 0x01);
    check(mut);
  }
}

TEST(QuantileDigestTest, RejectsTruncatedAndBitFlippedState) {
  QuantileDigest d(64);
  for (const double x : pareto_sample(3000, 41)) d.add(x);
  const std::string bytes = digest_bytes(d);
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 512);
  const auto check = [&](const std::string& mut) {
    QuantileDigest e(64);
    std::istringstream is(mut);
    try {
      e.load(is);
    } catch (const std::invalid_argument&) {
      return;
    }
    EXPECT_EQ(digest_bytes(e), bytes);
  };
  for (std::size_t len = 0; len < bytes.size(); len += stride)
    check(bytes.substr(0, len));
  for (std::size_t i = 0; i < bytes.size(); i += stride) {
    std::string mut = bytes;
    mut[i] = static_cast<char>(mut[i] ^ 0x01);
    check(mut);
  }
}

TEST(QuantileDigestTest, SaveLoadRoundTripsExactly) {
  QuantileDigest d(128);
  for (const double x : pareto_sample(9000, 41)) d.add(x);
  std::ostringstream os;
  d.save(os);
  QuantileDigest e(128);  // load() restores state into a same-shape sketch
  std::istringstream is(os.str());
  e.load(is);
  EXPECT_EQ(digest_bytes(e), digest_bytes(d));
  EXPECT_EQ(e.max_centroids(), d.max_centroids());
  // Identical continuation: resume-from-snapshot must not fork the stream.
  for (const double x : pareto_sample(1000, 43)) {
    d.add(x);
    e.add(x);
  }
  EXPECT_EQ(digest_bytes(e), digest_bytes(d));
}
