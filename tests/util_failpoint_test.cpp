// Failpoint framework unit tests: spec parsing, deterministic nth-evaluation
// firing, the fired log, and each fault kind's documented effect on the
// fs.atomic seam (write_file_atomic).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "treesched/util/failpoint.hpp"
#include "treesched/util/fs.hpp"

namespace treesched {
namespace {

std::string tmp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { util::disarm_failpoints(); }
};

TEST_F(FailpointTest, DisarmedIsNoop) {
  EXPECT_FALSE(util::failpoints_armed());
  EXPECT_FALSE(util::failpoint_hit("fs.atomic").has_value());
  EXPECT_TRUE(util::failpoints_fired().empty());
}

TEST_F(FailpointTest, ParsesEveryKind) {
  EXPECT_EQ(util::parse_fail_kind("enospc"), util::FailKind::kEnospc);
  EXPECT_EQ(util::parse_fail_kind("fsync-fail"), util::FailKind::kFsyncFail);
  EXPECT_EQ(util::parse_fail_kind("torn-write"), util::FailKind::kTornWrite);
  EXPECT_EQ(util::parse_fail_kind("short-read"), util::FailKind::kShortRead);
  EXPECT_EQ(util::parse_fail_kind("bit-flip"), util::FailKind::kBitFlip);
  EXPECT_THROW(util::parse_fail_kind("eio"), std::invalid_argument);
}

TEST_F(FailpointTest, RejectsMalformedSpecs) {
  EXPECT_THROW(util::arm_failpoints("fs.atomic"), std::invalid_argument);
  EXPECT_THROW(util::arm_failpoints("fs.atomic:enospc"),
               std::invalid_argument);
  EXPECT_THROW(util::arm_failpoints("fs.atomic:enospc:0"),
               std::invalid_argument);
  EXPECT_THROW(util::arm_failpoints("fs.atomic:enospc:x"),
               std::invalid_argument);
  EXPECT_THROW(util::arm_failpoints(":enospc:1"), std::invalid_argument);
  EXPECT_THROW(util::arm_failpoints("a:nope:1"), std::invalid_argument);
  EXPECT_FALSE(util::failpoints_armed());
}

TEST_F(FailpointTest, FiresOnNthEvaluationExactlyOnce) {
  util::arm_failpoints("site.x:bit-flip:3");
  EXPECT_FALSE(util::failpoint_hit("site.y").has_value());  // other site
  EXPECT_FALSE(util::failpoint_hit("site.x").has_value());  // eval 1
  EXPECT_FALSE(util::failpoint_hit("site.x").has_value());  // eval 2
  const auto hit = util::failpoint_hit("site.x");            // eval 3
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, util::FailKind::kBitFlip);
  EXPECT_FALSE(util::failpoint_hit("site.x").has_value());  // fired already
  const auto fired = util::failpoints_fired();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "site.x:bit-flip");
}

TEST_F(FailpointTest, MultipleEntriesAndScopedGuard) {
  {
    util::ScopedFailpoints guard("a:enospc:1,b:short-read:2");
    EXPECT_TRUE(util::failpoints_armed());
    ASSERT_TRUE(util::failpoint_hit("a").has_value());
    EXPECT_FALSE(util::failpoint_hit("b").has_value());
    ASSERT_TRUE(util::failpoint_hit("b").has_value());
    EXPECT_EQ(util::failpoints_fired().size(), 2u);
  }
  EXPECT_FALSE(util::failpoints_armed());
  EXPECT_TRUE(util::failpoints_fired().empty());
}

TEST_F(FailpointTest, CorruptionHelpersAreDeterministic) {
  EXPECT_EQ(util::apply_torn("abcdef"), "abc");
  const std::string flipped = util::apply_bit_flip("abcdef");
  ASSERT_EQ(flipped.size(), 6u);
  int diffs = 0;
  for (std::size_t i = 0; i < 6; ++i) diffs += flipped[i] != "abcdef"[i];
  EXPECT_EQ(diffs, 1);  // exactly one byte, one bit
}

TEST_F(FailpointTest, AtomicWriteEnospcFailsLoudAndLeavesOldContent) {
  const std::string path = tmp_path("fp_enospc.txt");
  util::write_file_atomic(path, "old\n");
  util::ScopedFailpoints guard("fs.atomic:enospc:1");
  EXPECT_THROW(util::write_file_atomic(path, "new\n"), std::runtime_error);
  EXPECT_EQ(slurp(path), "old\n");  // the old file survives intact
  EXPECT_EQ(util::failpoints_fired().size(), 1u);
}

TEST_F(FailpointTest, AtomicWriteFsyncFailureFailsLoud) {
  const std::string path = tmp_path("fp_fsync.txt");
  util::ScopedFailpoints guard("fs.atomic:fsync-fail:1");
  EXPECT_THROW(util::write_file_atomic(path, "data\n"), std::runtime_error);
}

TEST_F(FailpointTest, AtomicWriteTornWriteSucceedsSilentlyWithPrefix) {
  const std::string path = tmp_path("fp_torn.txt");
  util::ScopedFailpoints guard("fs.atomic:torn-write:1");
  // The writer does NOT notice — storage lied. Checksummed readers must.
  util::write_file_atomic(path, "0123456789");
  EXPECT_EQ(slurp(path), "01234");
}

TEST_F(FailpointTest, AtomicWriteBitFlipSucceedsSilentlyOneByteOff) {
  const std::string path = tmp_path("fp_flip.txt");
  util::ScopedFailpoints guard("fs.atomic:bit-flip:1");
  util::write_file_atomic(path, "0123456789");
  const std::string got = slurp(path);
  ASSERT_EQ(got.size(), 10u);
  int diffs = 0;
  for (std::size_t i = 0; i < got.size(); ++i) diffs += got[i] != "0123456789"[i];
  EXPECT_EQ(diffs, 1);
}

TEST_F(FailpointTest, SecondEvaluationTargetsSecondWrite) {
  const std::string path = tmp_path("fp_nth.txt");
  util::ScopedFailpoints guard("fs.atomic:enospc:2");
  util::write_file_atomic(path, "first\n");  // unaffected
  EXPECT_EQ(slurp(path), "first\n");
  EXPECT_THROW(util::write_file_atomic(path, "second\n"), std::runtime_error);
  EXPECT_EQ(slurp(path), "first\n");
}

TEST_F(FailpointTest, EmptySpecDisarms) {
  util::arm_failpoints("a:enospc:1");
  EXPECT_TRUE(util::failpoints_armed());
  util::arm_failpoints("");
  EXPECT_FALSE(util::failpoints_armed());
}

}  // namespace
}  // namespace treesched
