// Engine snapshot/restore (save_state / load_state): a run resumed from a
// mid-run snapshot must finish byte-identically to one that never stopped —
// including across query-mode changes (fast incremental indices vs the slow
// mirror) and window extension (restoring into an instance with more jobs).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "treesched/algo/policies.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/util/rng.hpp"
#include "treesched/workload/stream.hpp"

using namespace treesched;

namespace {

std::shared_ptr<const Tree> test_tree() {
  return std::make_shared<const Tree>(builders::fat_tree(2, 2, 2));
}

std::vector<Job> stream_jobs(std::size_t n, std::uint64_t seed) {
  workload::StreamSpec spec;
  spec.seed = seed;
  spec.lambda = 0.4;
  workload::JobStream stream(spec);
  workload::StreamCursor cur;
  std::vector<Job> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const workload::StreamJob a = stream.next(cur);
    jobs.emplace_back(static_cast<JobId>(i), a.release, a.size);
  }
  return jobs;
}

/// Admits jobs [from, to) through the policy, exactly as Engine::run does.
void admit_range(sim::Engine& engine, sim::AssignmentPolicy& policy,
                 const Instance& inst, std::size_t from, std::size_t to) {
  for (std::size_t i = from; i < to; ++i) {
    const Job& job = inst.jobs()[i];
    engine.advance_to(job.release);
    engine.admit(job.id, policy.assign(engine, job));
  }
}

std::string metrics_bytes(const sim::Engine& engine) {
  std::ostringstream os;
  engine.metrics().save(os);
  return os.str();
}

}  // namespace

TEST(SimSnapshotTest, MidRunRestoreFinishesByteIdentically) {
  auto tree = test_tree();
  const auto jobs = stream_jobs(160, 0xabc);
  const SpeedProfile speeds = SpeedProfile::paper_identical(*tree, 0.5);
  const Instance inst(tree, jobs, EndpointModel::kIdentical);
  algo::PaperGreedyPolicy pa(0.5), pb(0.5);
  sim::Engine cont(inst, speeds, sim::EngineConfig{});

  // Run to a mid-stream point (half the arrivals admitted, clock advanced
  // into the backlog) and snapshot.
  admit_range(cont, pa, inst, 0, 80);
  cont.advance_to(inst.jobs()[80].release * 0.999);
  std::ostringstream snap;
  cont.save_state(snap);

  // The uninterrupted engine finishes...
  admit_range(cont, pa, inst, 80, jobs.size());
  cont.run_to_completion();

  // ...and the restored one must match it byte for byte.
  sim::Engine resumed(inst, speeds, sim::EngineConfig{});
  std::istringstream in(snap.str());
  resumed.load_state(in);
  EXPECT_DOUBLE_EQ(resumed.now(), inst.jobs()[80].release * 0.999);
  admit_range(resumed, pb, inst, 80, jobs.size());
  resumed.run_to_completion();

  EXPECT_EQ(metrics_bytes(resumed), metrics_bytes(cont));
  EXPECT_EQ(resumed.metrics().total_flow_time(), cont.metrics().total_flow_time());
  EXPECT_EQ(resumed.metrics().makespan(), cont.metrics().makespan());
}

TEST(SimSnapshotTest, RestoreAcrossQueryModes) {
  auto tree = test_tree();
  const auto jobs = stream_jobs(120, 0x77);
  const SpeedProfile speeds = SpeedProfile::paper_identical(*tree, 0.5);
  const Instance inst(tree, jobs, EndpointModel::kIdentical);
  algo::PaperGreedyPolicy pa(0.5), pb(0.5);

  sim::Engine fast(inst, speeds, sim::EngineConfig{});
  admit_range(fast, pa, inst, 0, 60);
  std::ostringstream snap;
  fast.save_state(snap);
  admit_range(fast, pa, inst, 60, jobs.size());
  fast.run_to_completion();

  // Snapshot taken by the fast path, restored under the slow ground-truth
  // mirror: the determinism contract says the bits cannot move.
  sim::EngineConfig slow_cfg;
  slow_cfg.slow_queries = true;
  sim::Engine slow(inst, speeds, slow_cfg);
  std::istringstream in(snap.str());
  slow.load_state(in);
  admit_range(slow, pb, inst, 60, jobs.size());
  slow.run_to_completion();

  EXPECT_EQ(metrics_bytes(slow), metrics_bytes(fast));
}

TEST(SimSnapshotTest, RestoreIntoExtendedInstance) {
  auto tree = test_tree();
  const auto jobs = stream_jobs(150, 0x99);  // one stream, two prefixes
  const std::vector<Job> small(jobs.begin(), jobs.begin() + 100);
  const SpeedProfile speeds = SpeedProfile::paper_identical(*tree, 0.5);
  const Instance small_inst(tree, small, EndpointModel::kIdentical);
  const Instance big_inst(tree, jobs, EndpointModel::kIdentical);
  algo::PaperGreedyPolicy pa(0.5), pb(0.5);

  // Window engine over the first 100 arrivals, snapshotted mid-flight.
  sim::Engine window(small_inst, speeds, sim::EngineConfig{});
  admit_range(window, pa, small_inst, 0, 100);
  std::ostringstream snap;
  window.save_state(snap);

  // Reference: the big instance run end to end, no snapshot.
  sim::Engine ref(big_inst, speeds, sim::EngineConfig{});
  admit_range(ref, pa, big_inst, 0, jobs.size());
  ref.run_to_completion();

  // Extension: restore the 100-job state into the 150-job instance (the
  // extra jobs are untouched in the snapshot), then admit the remainder.
  sim::Engine extended(big_inst, speeds, sim::EngineConfig{});
  std::istringstream in(snap.str());
  extended.load_state(in);
  admit_range(extended, pb, big_inst, 100, jobs.size());
  extended.run_to_completion();

  EXPECT_EQ(metrics_bytes(extended), metrics_bytes(ref));
}

TEST(SimSnapshotTest, LoadRequiresPristineEngine) {
  auto tree = test_tree();
  const auto jobs = stream_jobs(10, 0x5);
  const SpeedProfile speeds = SpeedProfile::paper_identical(*tree, 0.5);
  const Instance inst(tree, jobs, EndpointModel::kIdentical);
  algo::PaperGreedyPolicy policy(0.5);

  sim::Engine a(inst, speeds, sim::EngineConfig{});
  admit_range(a, policy, inst, 0, 5);
  std::ostringstream snap;
  a.save_state(snap);

  sim::Engine dirty(inst, speeds, sim::EngineConfig{});
  admit_range(dirty, policy, inst, 0, 1);
  std::istringstream in(snap.str());
  EXPECT_THROW(dirty.load_state(in), std::invalid_argument);
}

TEST(SimSnapshotTest, StreamAccumulatorRoundTripContinuesIdentically) {
  sim::StreamAccumulator acc;
  treesched::util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    sim::JobRecord r;
    r.id = i;
    r.release = i * 0.25;
    r.size = 1.0 + rng.uniform01() * 9.0;
    r.leaf = 5;
    r.completion = r.release + r.size * (1.0 + rng.uniform01());
    r.fractional_area = r.size * 0.5;
    acc.fold(r);
  }
  std::ostringstream os;
  acc.save(os);
  sim::StreamAccumulator back;
  std::istringstream is(os.str());
  back.load(is);

  std::ostringstream a2, b2;
  acc.save(a2);
  back.save(b2);
  EXPECT_EQ(b2.str(), a2.str());

  sim::JobRecord more;
  more.id = 500;
  more.release = 1.0;
  more.size = 2.0;
  more.leaf = 5;
  more.completion = 10.0;
  acc.fold(more);
  back.fold(more);
  EXPECT_EQ(acc.flow.sum(), back.flow.sum());
  EXPECT_EQ(acc.flow.compensation(), back.flow.compensation());
  EXPECT_EQ(acc.flow_digest.count(), back.flow_digest.count());
}
