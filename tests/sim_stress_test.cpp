// Stress and robustness: large instances, extreme size ranges, adversarial
// incremental-API interleavings, and numeric edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "treesched/algo/policies.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched {
namespace {

TEST(Stress, TwentyThousandJobsCompleteAndConserve) {
  const Tree tree = builders::fat_tree(2, 2, 2);
  util::Rng rng(2024);
  workload::WorkloadSpec spec;
  spec.jobs = 20000;
  spec.load = 0.85;
  spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
  const Instance inst = workload::generate(rng, tree, spec);
  algo::PaperGreedyPolicy policy(0.5);
  sim::Engine engine(inst, SpeedProfile::uniform(inst.tree(), 1.5));
  engine.run(policy);
  EXPECT_TRUE(engine.metrics().all_completed());
  EXPECT_NEAR(engine.total_remaining_work(), 0.0, 1e-6);
  EXPECT_GT(engine.metrics().total_flow_time(), 0.0);
}

TEST(Stress, ExtremeSizeRangesStayNumericallySane) {
  // Six orders of magnitude between the smallest and largest job.
  Tree tree = builders::star_of_paths(2, 2);
  std::vector<Job> jobs;
  JobId id = 0;
  for (int k = 0; k < 30; ++k) {
    jobs.emplace_back(id, 0.5 * id, std::pow(10.0, (k % 7) - 3));
    ++id;
  }
  Instance inst(std::move(tree), std::move(jobs), EndpointModel::kIdentical);
  sim::EngineConfig cfg;
  cfg.record_schedule = true;
  algo::PaperGreedyPolicy policy(0.5);
  sim::Engine engine(inst, SpeedProfile::uniform(inst.tree(), 1.25), cfg);
  engine.run(policy);
  EXPECT_TRUE(engine.metrics().all_completed());
  for (const auto& rec : engine.metrics().jobs()) {
    EXPECT_TRUE(std::isfinite(rec.completion));
    EXPECT_GE(rec.flow(), 0.0);
    EXPECT_GE(rec.fractional_area, 0.0);
  }
}

TEST(Stress, ManySimultaneousReleases) {
  // 200 jobs at the exact same instant — deterministic tie handling must
  // keep the engine consistent.
  Tree tree = builders::star_of_paths(3, 2);
  std::vector<Job> jobs;
  for (int i = 0; i < 200; ++i) jobs.emplace_back(i, 1.0, 1.0 + (i % 4));
  Instance inst(std::move(tree), std::move(jobs), EndpointModel::kIdentical);
  algo::PaperGreedyPolicy policy(0.5);
  sim::Engine engine(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  engine.run(policy);
  EXPECT_TRUE(engine.metrics().all_completed());
}

TEST(Stress, RandomIncrementalInterleavings) {
  // Fuzz the incremental API: random advance_to calls interleaved with
  // admissions must end in exactly the same schedule as the offline run.
  const Tree tree = builders::fat_tree(2, 1, 2);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed);
    workload::WorkloadSpec spec;
    spec.jobs = 40;
    spec.load = 0.9;
    const Instance inst = workload::generate(rng, tree, spec);
    const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.2);

    std::vector<NodeId> assignment(uidx(inst.job_count()));
    for (JobId j = 0; j < inst.job_count(); ++j)
      assignment[uidx(j)] = inst.tree().leaves()[uidx(j) % inst.tree().leaves().size()];

    sim::Engine offline(inst, speeds);
    offline.run_with_assignment(assignment);

    sim::Engine online(inst, speeds);
    util::Rng fuzz(seed * 77);
    Time cursor = 0.0;
    for (const Job& job : inst.jobs()) {
      // Random number of partial advances before the admission.
      while (fuzz.bernoulli(0.6) && cursor < job.release) {
        cursor += (job.release - cursor) * fuzz.uniform01();
        online.advance_to(cursor);
      }
      online.admit(job.id, assignment[uidx(job.id)]);
      cursor = std::max(cursor, job.release);
    }
    online.run_to_completion();

    for (JobId j = 0; j < inst.job_count(); ++j)
      EXPECT_NEAR(online.metrics().job(j).completion,
                  offline.metrics().job(j).completion, 1e-7)
          << "seed " << seed << " job " << j;
  }
}

TEST(Stress, ZeroLengthBurstsFromInstantPreemptions) {
  // A cascade of ever-smaller jobs arriving at the same node back-to-back
  // produces bursts of length ~0; the engine must not record garbage.
  Tree tree = builders::star_of_paths(1, 1);
  std::vector<Job> jobs;
  for (int i = 0; i < 12; ++i)
    jobs.emplace_back(i, 1e-9 * i, std::pow(2.0, 12 - i));
  Instance inst(std::move(tree), std::move(jobs), EndpointModel::kIdentical);
  sim::EngineConfig cfg;
  cfg.record_schedule = true;
  sim::Engine engine(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  std::vector<NodeId> assignment(uidx(inst.job_count()), inst.tree().leaves()[0]);
  engine.run_with_assignment(assignment);
  EXPECT_TRUE(engine.metrics().all_completed());
  for (const auto& s : engine.recorder().segments())
    EXPECT_GE(s.t1, s.t0);
}

TEST(Stress, PipelinedHighChunkCounts) {
  // 1000 chunks per job through 4 hops.
  Instance inst(builders::star_of_paths(1, 3), {Job(0, 0.0, 10.0)},
                EndpointModel::kIdentical);
  sim::EngineConfig cfg;
  cfg.router_chunk_size = 0.01;
  sim::Engine engine(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  engine.run_with_assignment({inst.tree().leaves()[0]});
  // Pipeline limit: the first router streams for 10, each later router lags
  // by one chunk (0.01), then the leaf runs its full 10.
  EXPECT_NEAR(engine.metrics().job(0).completion, 10.0 + 2 * 0.01 + 10.0,
              1e-6);
}

}  // namespace
}  // namespace treesched
