// util::CompensatedSum edge cases: the Neumaier alternating-sign sequence
// (where classic Kahan fails), magnitude cliffs, merge order discipline,
// and the raw-state round trip engine snapshots rely on.
#include <gtest/gtest.h>

#include <vector>

#include "treesched/util/csum.hpp"
#include "treesched/util/rng.hpp"

using treesched::util::CompensatedSum;

TEST(CompensatedSumTest, NeumaierAlternatingSign) {
  // 1 + 1e100 + 1 - 1e100 = 2. Naive and classic Kahan both return 0
  // because the large addend wipes the small ones; Neumaier's compensation
  // keeps them because it also covers |addend| > |sum|.
  CompensatedSum s;
  s.add(1.0);
  s.add(1e100);
  s.add(1.0);
  s.add(-1e100);
  EXPECT_DOUBLE_EQ(s.value(), 2.0);
}

TEST(CompensatedSumTest, MagnitudeCliff) {
  // 1e16 is past the point where += 1.0 rounds to a no-op in naive
  // summation (ulp(1e16) = 2). Ten thousand unit addends must all survive.
  CompensatedSum s;
  s.add(1e16);
  double naive = 1e16;
  for (int i = 0; i < 10000; ++i) {
    s.add(1.0);
    naive += 1.0;
  }
  s.add(-1e16);
  EXPECT_DOUBLE_EQ(s.value(), 10000.0);
  EXPECT_NE(naive - 1e16, 10000.0);  // the failure mode being defended against
}

TEST(CompensatedSumTest, ManySmallOntoLarge) {
  // 0.1 is inexact in binary; 10^6 of them drift visibly under naive
  // accumulation but stay at one ulp compensated.
  CompensatedSum s;
  for (int i = 0; i < 1000000; ++i) s.add(0.1);
  EXPECT_NEAR(s.value(), 100000.0, 1e-9);
}

TEST(CompensatedSumTest, MergePreservesBothErrorTerms) {
  treesched::util::Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i)
    xs.push_back((rng.uniform01() - 0.5) * std::pow(10.0, 16.0 * rng.uniform01()));

  CompensatedSum whole;
  for (const double x : xs) whole.add(x);

  // Shard by index, merge in index order: the compensated result must agree
  // with the single-pass sum to high relative precision even though the
  // magnitudes span 16 decades.
  std::vector<CompensatedSum> shards(4);
  for (std::size_t i = 0; i < xs.size(); ++i) shards[i % 4].add(xs[i]);
  CompensatedSum merged;
  for (const CompensatedSum& sh : shards) merged.merge(sh);
  const double scale = std::abs(whole.value()) + 1.0;
  EXPECT_NEAR(merged.value(), whole.value(), 1e-9 * scale);
}

TEST(CompensatedSumTest, MergeIsDeterministicForAFixedOrder) {
  treesched::util::Rng rng(29);
  std::vector<CompensatedSum> shards(6);
  for (int i = 0; i < 6000; ++i)
    shards[static_cast<std::size_t>(i) % 6].add((rng.uniform01() - 0.5) * 1e8);
  CompensatedSum a, b;
  for (const CompensatedSum& sh : shards) a.merge(sh);
  for (const CompensatedSum& sh : shards) b.merge(sh);
  // Bitwise: same fold order, same bits — the property the sweep and the
  // streaming accumulator lean on for byte-identical artifacts.
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.compensation(), b.compensation());
}

TEST(CompensatedSumTest, RawStateRoundTrip) {
  CompensatedSum s;
  s.add(1e16);
  for (int i = 0; i < 100; ++i) s.add(0.1);
  CompensatedSum t;
  t.set_state(s.sum(), s.compensation());
  // Continuations must be bit-identical — snapshots serialize (sum, comp),
  // not the folded value(), precisely so resumed runs do not fork.
  s.add(0.7);
  t.add(0.7);
  EXPECT_EQ(t.sum(), s.sum());
  EXPECT_EQ(t.compensation(), s.compensation());
  EXPECT_EQ(t.value(), s.value());
}
