// Statistics helpers.
#include <gtest/gtest.h>

#include "treesched/stats/bootstrap.hpp"
#include "treesched/stats/histogram.hpp"
#include "treesched/stats/summary.hpp"

namespace treesched::stats {
namespace {

TEST(Summary, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Summary, MergeEqualsBulk) {
  Summary all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i - 3.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(Histogram, BucketsGrowGeometrically) {
  LogHistogram h(1.0, 2.0, 8);
  EXPECT_DOUBLE_EQ(h.lower_edge(0), 0.0);
  EXPECT_DOUBLE_EQ(h.lower_edge(1), 1.0);
  EXPECT_DOUBLE_EQ(h.lower_edge(3), 4.0);
  h.add(0.5);   // bucket 0
  h.add(1.0);   // bucket 1
  h.add(3.9);   // bucket 2 (edges 2..4)
  h.add(1e9);   // clamps to the last bucket
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(7), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_FALSE(h.to_ascii().empty());
}

TEST(Histogram, RejectsBadConfig) {
  EXPECT_THROW(LogHistogram(0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 1.0), std::invalid_argument);
  LogHistogram h(1.0, 2.0);
  EXPECT_THROW(h.add(-1.0), std::invalid_argument);
}

TEST(Bootstrap, CiCoversTrueMeanOfTightSample) {
  util::Rng rng(77);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(5.0 + rng.normal(0.0, 0.5));
  const auto [lo, hi] = bootstrap_mean_ci(rng, samples, 0.95, 500);
  EXPECT_LT(lo, hi);
  EXPECT_LT(lo, 5.1);
  EXPECT_GT(hi, 4.9);
  EXPECT_LT(hi - lo, 0.5);
}

TEST(Bootstrap, ValidatesArguments) {
  util::Rng rng(1);
  EXPECT_THROW(bootstrap_mean_ci(rng, {}, 0.95, 100), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(rng, {1.0}, 1.5, 100),
               std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(rng, {1.0}, 0.95, 1), std::invalid_argument);
}

}  // namespace
}  // namespace treesched::stats
