// Extended validator coverage: chunked-mode corruption, path-aware
// (anycast) validation failures, and windowed edge cases.
#include <gtest/gtest.h>

#include "treesched/core/tree_builders.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/validator.hpp"

namespace treesched {
namespace {

using sim::EngineConfig;
using sim::ScheduleRecorder;
using sim::Segment;

TEST(ValidatorChunked, DetectsMissingChunk) {
  Instance inst(builders::star_of_paths(1, 2), {Job(0, 0.0, 2.0)},
                EndpointModel::kIdentical);
  EngineConfig cfg;
  cfg.record_schedule = true;
  cfg.router_chunk_size = 1.0;
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  sim::Engine eng(inst, speeds, cfg);
  eng.run_with_assignment({inst.tree().leaves()[0]});

  // Drop every burst of chunk 1 on the first router.
  const NodeId r1 = inst.tree().root_children()[0];
  ScheduleRecorder bad;
  for (const Segment& s : eng.recorder().segments())
    if (!(s.node == r1 && s.chunk == 1)) bad.add(s);
  const auto res =
      sim::validate_schedule(inst, speeds, cfg, bad, eng.metrics());
  EXPECT_FALSE(res.ok);
}

TEST(ValidatorChunked, DetectsChunkPrecedenceViolation) {
  Instance inst(builders::star_of_paths(1, 2), {Job(0, 0.0, 2.0)},
                EndpointModel::kIdentical);
  EngineConfig cfg;
  cfg.record_schedule = true;
  cfg.router_chunk_size = 1.0;
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  sim::Engine eng(inst, speeds, cfg);
  eng.run_with_assignment({inst.tree().leaves()[0]});

  // Shift chunk 0's bursts on the second router to before the first router
  // produced it.
  const auto& path = inst.tree().path_to(inst.tree().leaves()[0]);
  ScheduleRecorder bad;
  for (Segment s : eng.recorder().segments()) {
    if (s.node == path[1] && s.chunk == 0) {
      const double len = s.t1 - s.t0;
      s.t0 = 0.0;
      s.t1 = len;
    }
    bad.add(s);
  }
  const auto res =
      sim::validate_schedule(inst, speeds, cfg, bad, eng.metrics());
  EXPECT_FALSE(res.ok);
}

TEST(ValidatorPaths, WrongPathEndpointIsRejected) {
  Instance inst(builders::star_of_paths(2, 1), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  EngineConfig cfg;
  cfg.record_schedule = true;
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  sim::Engine eng(inst, speeds, cfg);
  eng.run_with_assignment({inst.tree().leaves()[0]});
  // Claim the job ran on the other machine's path.
  const auto& wrong = inst.tree().path_to(inst.tree().leaves()[1]);
  const std::vector<std::vector<NodeId>> paths{
      {wrong.begin(), wrong.end()}};
  const auto res = sim::validate_schedule(inst, speeds, cfg, eng.recorder(),
                                          eng.metrics(), paths);
  EXPECT_FALSE(res.ok);
}

TEST(ValidatorPaths, MachineBornSingleNodePathValidates) {
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.0, 2.0)},
                EndpointModel::kIdentical);
  EngineConfig cfg;
  cfg.record_schedule = true;
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  sim::Engine eng(inst, speeds, cfg);
  const NodeId leaf = inst.tree().leaves()[0];
  eng.admit_via_path(0, {leaf});
  eng.run_to_completion();
  const std::vector<std::vector<NodeId>> paths{{leaf}};
  const auto res = sim::validate_schedule(inst, speeds, cfg, eng.recorder(),
                                          eng.metrics(), paths);
  EXPECT_TRUE(res.ok) << res.summary();
  EXPECT_DOUBLE_EQ(eng.metrics().job(0).completion, 2.0);
}

TEST(ValidatorPaths, UpAndOverPathValidates) {
  Instance inst(builders::star_of_paths(2, 2), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  EngineConfig cfg;
  cfg.record_schedule = true;
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  sim::Engine eng(inst, speeds, cfg);
  const auto path = inst.tree().path_between(inst.tree().leaves()[0],
                                             inst.tree().leaves()[1]);
  eng.admit_via_path(0, path);
  eng.run_to_completion();
  const std::vector<std::vector<NodeId>> paths{path};
  const auto res = sim::validate_schedule(inst, speeds, cfg, eng.recorder(),
                                          eng.metrics(), paths);
  EXPECT_TRUE(res.ok) << res.summary();
}

}  // namespace
}  // namespace treesched
