// Empirical verification of the structural lemmas (1, 2, 3/phi, 4).
#include <gtest/gtest.h>

#include "treesched/algo/lemma_monitors.hpp"
#include "treesched/algo/policies.hpp"
#include "treesched/algo/potential.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/workload/adversarial.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched {
namespace {

struct LemmaCase {
  int tree_id;
  double eps;
  double load;
  std::uint64_t seed;
};

Tree lemma_tree(int id) {
  switch (id) {
    case 0: return builders::star_of_paths(2, 4);
    case 1: return builders::fat_tree(2, 2, 2);
    default: return builders::caterpillar(2, 3, 2);
  }
}

class LemmaSweep : public testing::TestWithParam<LemmaCase> {};

/// Lemma 2: available higher-priority volume in front of a job on any
/// identical non-root-adjacent node stays below (2/eps) p_j — premises:
/// class-rounded sizes, speed >= (1+eps) above the root-adjacent layer.
TEST_P(LemmaSweep, Lemma2VolumeBoundHolds) {
  const LemmaCase& c = GetParam();
  util::Rng rng(c.seed);
  workload::WorkloadSpec spec;
  spec.jobs = 150;
  spec.load = c.load;
  spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
  spec.sizes.class_eps = c.eps;  // the lemma's class-rounding assumption
  const Instance inst = workload::generate(rng, lemma_tree(c.tree_id), spec);

  const SpeedProfile speeds =
      SpeedProfile::layered(inst.tree(), 1.0, 1.0 + c.eps);
  algo::PaperGreedyPolicy policy(c.eps);
  algo::Lemma2Monitor monitor(c.eps);
  sim::Engine engine(inst, speeds);
  engine.set_observer(&monitor);
  engine.run(policy);

  EXPECT_GT(monitor.checks(), 0);
  EXPECT_EQ(monitor.violations(), 0)
      << "max ratio " << monitor.max_ratio();
  EXPECT_LE(monitor.max_ratio(), 1.0 + 1e-9);
}

/// Lemma 1: total interior wait after leaving R(v) is below
/// (6/eps^2) p_j d_{v_e}.
TEST_P(LemmaSweep, Lemma1InteriorWaitBoundHolds) {
  const LemmaCase& c = GetParam();
  util::Rng rng(c.seed + 1000);
  workload::WorkloadSpec spec;
  spec.jobs = 150;
  spec.load = c.load;
  spec.sizes.class_eps = c.eps;
  const Instance inst = workload::generate(rng, lemma_tree(c.tree_id), spec);

  const SpeedProfile speeds =
      SpeedProfile::layered(inst.tree(), 1.0, 1.0 + c.eps);
  algo::PaperGreedyPolicy policy(c.eps);
  sim::Engine engine(inst, speeds);
  engine.run(policy);

  const auto rep = algo::interior_wait_report(engine, c.eps);
  EXPECT_GT(rep.jobs_measured, 0);
  EXPECT_EQ(rep.violations, 0) << "max ratio " << rep.max_ratio;
  EXPECT_LE(rep.max_ratio, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LemmaSweep,
    testing::Values(LemmaCase{0, 0.5, 0.8, 1}, LemmaCase{0, 1.0, 0.9, 2},
                    LemmaCase{1, 0.5, 0.7, 3}, LemmaCase{1, 0.25, 0.8, 4},
                    LemmaCase{2, 0.5, 0.9, 5}, LemmaCase{2, 1.0, 0.6, 6}),
    [](const testing::TestParamInfo<LemmaCase>& pi) {
      return "tree" + std::to_string(pi.param.tree_id) + "_eps" +
             std::to_string(static_cast<int>(pi.param.eps * 100)) + "_s" +
             std::to_string(pi.param.seed);
    });

TEST(Lemma2, MonitorDetectsViolationsWhenPremisesInvert) {
  // Control of the control: with a FAST root-adjacent layer feeding a SLOW
  // interior (the premise inverted), volume piles up past the bound and the
  // monitor must say so — proving the zero-violation results above are a
  // property of the algorithm, not of a toothless monitor.
  const double eps = 0.5;
  const Instance inst = workload::class_cascade(10, 6, eps);
  const Tree& tree = inst.tree();
  std::vector<double> speeds(uidx(tree.node_count()), 0.25);  // slow interior
  speeds[uidx(tree.root())] = 0.0;
  for (const NodeId rc : tree.root_children()) speeds[uidx(rc)] = 4.0;  // fast feed
  const SpeedProfile profile(tree, std::move(speeds));

  algo::PaperGreedyPolicy policy(eps);
  algo::Lemma2Monitor monitor(eps);
  sim::Engine engine(inst, profile);
  engine.set_observer(&monitor);
  engine.run(policy);
  EXPECT_GT(monitor.violations(), 0)
      << "inverted speeds should overfill interior queues (max ratio "
      << monitor.max_ratio() << ")";
}

TEST(Lemma2, ClassCascadeStressStaysBounded) {
  const double eps = 0.5;
  const Instance inst = workload::class_cascade(8, 4, eps);
  const SpeedProfile speeds =
      SpeedProfile::layered(inst.tree(), 1.0, 1.0 + eps);
  algo::PaperGreedyPolicy policy(eps);
  algo::Lemma2Monitor monitor(eps);
  sim::Engine engine(inst, speeds);
  engine.set_observer(&monitor);
  engine.run(policy);
  EXPECT_EQ(monitor.violations(), 0) << "max ratio " << monitor.max_ratio();
}

/// Lemma 3: after the last arrival, Phi_j upper-bounds the actual remaining
/// time to clear the identical nodes.
TEST(Phi, UpperBoundsRemainingInteriorTime) {
  const double eps = 0.5;
  const double s = 1.0 + eps;
  util::Rng rng(17);
  workload::WorkloadSpec spec;
  spec.jobs = 60;
  spec.load = 0.9;
  spec.sizes.class_eps = eps;
  const Instance inst =
      workload::generate(rng, builders::star_of_paths(2, 4), spec);

  const SpeedProfile speeds = SpeedProfile::layered(inst.tree(), 1.0, s);
  algo::PaperGreedyPolicy policy(eps);
  sim::Engine engine(inst, speeds);

  // Admit everything, then freeze (no further arrivals) and measure phi.
  for (const Job& job : inst.jobs()) {
    engine.advance_to(job.release);
    engine.admit(job.id, policy.assign(engine, job));
  }
  const Time t0 = engine.now();
  std::vector<double> bound(uidx(inst.job_count()), -1.0);
  for (const Job& job : inst.jobs()) {
    // Lemma 3's premise: the job is available on a node *not* adjacent to
    // the root (root children run at speed 1, below the lemma's s).
    if (!engine.completed(job.id) && engine.current_path_index(job.id) >= 1)
      bound[uidx(job.id)] = algo::phi(engine, job.id, eps, s);
  }
  engine.run_to_completion();

  int measured = 0;
  for (const Job& job : inst.jobs()) {
    if (bound[uidx(job.id)] < 0.0) continue;
    // Identical model: the last identical node is the leaf itself, so the
    // remaining interior time is completion - t0.
    const double actual = engine.metrics().job(job.id).completion - t0;
    EXPECT_LE(actual, bound[uidx(job.id)] + 1e-6)
        << "job " << job.id << " actual " << actual << " phi " << bound[uidx(job.id)];
    ++measured;
  }
  EXPECT_GT(measured, 0);
}

/// Lemma 4 / the assignment rule: the greedy cost computed at arrival upper
/// bounds the job's actual flow time when no later jobs arrive (checked by
/// replaying each prefix of the instance).
TEST(Lemma4, PredictionBoundsFlowOnPrefixes) {
  const double eps = 0.5;
  util::Rng rng(23);
  workload::WorkloadSpec spec;
  spec.jobs = 25;
  spec.load = 0.9;
  spec.sizes.class_eps = eps;
  const Tree tree = builders::star_of_paths(2, 3);
  const Instance full = workload::generate(rng, tree, spec);

  // The Lemma 4 premises: root children speed s, deeper nodes (1+eps)s.
  const double s = 1.0 + eps;
  const SpeedProfile speeds =
      SpeedProfile::layered(tree, s, (1.0 + eps) * s);

  for (JobId k = 0; k < full.job_count(); ++k) {
    std::vector<Job> prefix(full.jobs().begin(),
                            full.jobs().begin() + k + 1);
    Instance inst(full.tree_ptr(), std::move(prefix), full.model());
    algo::PaperGreedyPolicy policy(eps);
    sim::Engine engine(inst, speeds);
    double predicted = -1.0;
    for (const Job& job : inst.jobs()) {
      engine.advance_to(job.release);
      const NodeId leaf = policy.assign(engine, job);
      if (job.id == k) {
        // Lemma 4's wait components sum to at most the assignment cost
        // (the per-component speed divisors are all >= 1 here).
        predicted = policy.assignment_cost(engine, job, leaf);
      }
      engine.admit(job.id, leaf);
    }
    engine.run_to_completion();
    const double actual = engine.metrics().job(k).flow();
    EXPECT_LE(actual, predicted + 1e-6)
        << "prefix " << k << ": flow " << actual << " bound " << predicted;
  }
}

}  // namespace
}  // namespace treesched
