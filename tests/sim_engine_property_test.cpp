// Property-based engine tests: invariants that must hold on every schedule
// the engine produces, across topologies x node policies x workloads x seeds.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "treesched/algo/policies.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/validator.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched {
namespace {

using sim::EngineConfig;
using sim::NodePolicy;

struct Case {
  const char* tree_name;
  NodePolicy policy;
  double load;
  std::uint64_t seed;
  double chunk;  // 0 = store-and-forward
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name = std::string(c.tree_name) + "_" +
                     sim::node_policy_name(c.policy) + "_load" +
                     std::to_string(static_cast<int>(c.load * 100)) + "_s" +
                     std::to_string(c.seed);
  if (c.chunk > 0) name += "_chunked";
  return name;
}

Tree make_tree(const std::string& name) {
  if (name == std::string("star")) return builders::star_of_paths(2, 3);
  if (name == std::string("fat")) return builders::fat_tree(2, 2, 2);
  if (name == std::string("cater")) return builders::caterpillar(2, 2, 2);
  if (name == std::string("spine")) return builders::star_of_paths(1, 6);
  return builders::figure1_tree();
}

class EngineProperty : public testing::TestWithParam<Case> {};

TEST_P(EngineProperty, ScheduleIsFeasibleAndConservative) {
  const Case& c = GetParam();
  const Tree tree = make_tree(c.tree_name);
  util::Rng rng(c.seed);

  workload::WorkloadSpec spec;
  spec.jobs = 120;
  spec.load = c.load;
  spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
  spec.sizes.scale = 1.0;
  spec.sizes.spread = 32.0;
  const Instance inst = workload::generate(rng, tree, spec);

  EngineConfig cfg;
  cfg.node_policy = c.policy;
  cfg.record_schedule = true;
  cfg.router_chunk_size = c.chunk;
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.3);

  algo::PaperGreedyPolicy policy(0.5);
  sim::Engine engine(inst, speeds, cfg);
  engine.run(policy);

  // Everything completes and the schedule replays cleanly.
  EXPECT_TRUE(engine.metrics().all_completed());
  const auto res = sim::validate_schedule(inst, speeds, cfg,
                                          engine.recorder(), engine.metrics());
  EXPECT_TRUE(res.ok) << res.summary();

  // Work conservation: recorded bursts sum to exactly the required work.
  double recorded = 0.0;
  for (const auto& s : engine.recorder().segments()) recorded += s.work();
  double required = 0.0;
  for (const Job& job : inst.jobs()) {
    const NodeId leaf = engine.assigned_leaf(job.id);
    for (const NodeId v : inst.tree().path_to(leaf))
      required += inst.processing_time(job.id, v);
  }
  EXPECT_NEAR(recorded, required, 1e-5 * std::max(1.0, required));

  for (const Job& job : inst.jobs()) {
    const auto& rec = engine.metrics().job(job.id);
    // Flow lower bounds: store-and-forward pays the whole path volume; the
    // pipelined extension overlaps hops, so only the slowest single hop is
    // a valid bound there.
    double max_speed = 0.0;
    double slowest_hop = 0.0;
    for (const NodeId v : inst.tree().path_to(rec.leaf)) {
      max_speed = std::max(max_speed, speeds.speed(v));
      slowest_hop = std::max(
          slowest_hop, inst.processing_time(job.id, v) / speeds.speed(v));
    }
    if (c.chunk <= 0.0) {
      EXPECT_GE(rec.flow() + 1e-9,
                inst.path_processing_time(job.id, rec.leaf) / max_speed);
    } else {
      EXPECT_GE(rec.flow() + 1e-9, slowest_hop);
    }
    // Fractional contribution never exceeds the flow time.
    EXPECT_LE(rec.fractional_area, rec.flow() + 1e-9);
    EXPECT_GT(rec.fractional_area, 0.0);
    // Node completions strictly increase along the path.
    for (std::size_t i = 1; i < rec.node_completion.size(); ++i)
      EXPECT_GE(rec.node_completion[i], rec.node_completion[i - 1] - 1e-9);
    // The job never finishes before release + its own work.
    EXPECT_GE(rec.completion, job.release);
  }

  // No leftover internal work.
  EXPECT_NEAR(engine.total_remaining_work(), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineProperty,
    testing::Values(
        Case{"star", NodePolicy::kSjf, 0.5, 1, 0.0},
        Case{"star", NodePolicy::kSjf, 0.9, 2, 0.0},
        Case{"star", NodePolicy::kFifo, 0.7, 3, 0.0},
        Case{"star", NodePolicy::kSrpt, 0.7, 4, 0.0},
        Case{"star", NodePolicy::kLcfs, 0.7, 5, 0.0},
        Case{"fat", NodePolicy::kSjf, 0.6, 6, 0.0},
        Case{"fat", NodePolicy::kSrpt, 0.9, 7, 0.0},
        Case{"cater", NodePolicy::kSjf, 0.8, 8, 0.0},
        Case{"cater", NodePolicy::kFifo, 0.5, 9, 0.0},
        Case{"spine", NodePolicy::kSjf, 0.7, 10, 0.0},
        Case{"figure1", NodePolicy::kSjf, 0.7, 11, 0.0},
        Case{"figure1", NodePolicy::kSrpt, 0.5, 12, 0.0},
        Case{"star", NodePolicy::kSjf, 0.7, 13, 1.0},
        Case{"spine", NodePolicy::kSjf, 0.7, 14, 0.5},
        Case{"fat", NodePolicy::kFifo, 0.6, 15, 2.0}),
    case_name);

struct UnrelatedCase {
  workload::UnrelatedModel model;
  std::uint64_t seed;
};

class EngineUnrelatedProperty
    : public testing::TestWithParam<UnrelatedCase> {};

TEST_P(EngineUnrelatedProperty, UnrelatedRunsValidate) {
  const auto& c = GetParam();
  const Tree tree = builders::fat_tree(2, 2, 2);
  util::Rng rng(c.seed);
  workload::WorkloadSpec spec;
  spec.jobs = 80;
  spec.load = 0.6;
  spec.endpoints = EndpointModel::kUnrelated;
  spec.unrelated.model = c.model;
  const Instance inst = workload::generate(rng, tree, spec);

  EngineConfig cfg;
  cfg.record_schedule = true;
  const SpeedProfile speeds = SpeedProfile::paper_unrelated(inst.tree(), 0.5);
  algo::PaperGreedyPolicy policy(0.5);
  sim::Engine engine(inst, speeds, cfg);
  engine.run(policy);
  EXPECT_TRUE(engine.metrics().all_completed());
  const auto res = sim::validate_schedule(inst, speeds, cfg,
                                          engine.recorder(), engine.metrics());
  EXPECT_TRUE(res.ok) << res.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Models, EngineUnrelatedProperty,
    testing::Values(
        UnrelatedCase{workload::UnrelatedModel::kUniformFactor, 21},
        UnrelatedCase{workload::UnrelatedModel::kRelated, 22},
        UnrelatedCase{workload::UnrelatedModel::kAffinity, 23},
        UnrelatedCase{workload::UnrelatedModel::kRestricted, 24}),
    [](const testing::TestParamInfo<UnrelatedCase>& param_info) {
      workload::UnrelatedSpec s;
      s.model = param_info.param.model;
      std::string name = std::string(s.name()) + "_s" +
                         std::to_string(param_info.param.seed);
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

TEST(EngineDeterminism, SameSeedSameSchedule) {
  const Tree tree = builders::fat_tree(2, 2, 2);
  const auto run_once = [&tree]() {
    util::Rng rng(99);
    workload::WorkloadSpec spec;
    spec.jobs = 60;
    const Instance inst = workload::generate(rng, tree, spec);
    algo::PaperGreedyPolicy policy(0.5);
    sim::Engine engine(inst, SpeedProfile::uniform(inst.tree(), 1.2));
    engine.run(policy);
    return engine.metrics().total_flow_time();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace treesched
