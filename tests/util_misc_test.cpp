// Class rounding, float comparison, CSV, table, CLI, strings.
#include <gtest/gtest.h>

#include <cmath>

#include "treesched/util/class_rounding.hpp"
#include "treesched/util/cli.hpp"
#include "treesched/util/csv.hpp"
#include "treesched/util/float_compare.hpp"
#include "treesched/util/string_util.hpp"
#include "treesched/util/table.hpp"

namespace treesched::util {
namespace {

TEST(ClassRounding, ExactPowersKeepTheirClass) {
  const double eps = 0.5;
  for (std::int64_t k = -4; k <= 12; ++k) {
    const double p = class_size(k, eps);
    EXPECT_EQ(size_class(p, eps), k) << "k=" << k;
    EXPECT_NEAR(round_up_to_class(p, eps), p, 1e-12 * std::fabs(p));
  }
}

TEST(ClassRounding, RoundsUpWithinOneFactor) {
  const double eps = 0.25;
  for (double p : {0.3, 0.9, 1.0, 1.1, 2.7, 17.0, 123.456}) {
    const double r = round_up_to_class(p, eps);
    EXPECT_GE(r, p * (1.0 - 1e-9));
    EXPECT_LE(r, p * (1.0 + eps) * (1.0 + 1e-9));
  }
}

TEST(ClassRounding, EqualClassesGiveBitIdenticalSizes) {
  const double eps = 0.5;
  // SJF tie handling relies on exact equality of rounded sizes.
  EXPECT_EQ(round_up_to_class(2.9, eps), round_up_to_class(3.3, eps));
}

TEST(ClassRounding, RejectsBadArguments) {
  EXPECT_THROW(size_class(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(size_class(1.0, 0.0), std::invalid_argument);
}

TEST(FloatCompare, BasicOrdering) {
  EXPECT_TRUE(approx_eq(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(approx_lt(1.0, 1.1));
  EXPECT_FALSE(approx_lt(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(approx_le(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(approx_ge(1.0 + 1e-12, 1.0));
  EXPECT_TRUE(approx_gt(2.0, 1.0));
}

TEST(FloatCompare, ClampNonneg) {
  EXPECT_EQ(clamp_nonneg(-1e-9), 0.0);
  EXPECT_EQ(clamp_nonneg(0.5), 0.5);
  EXPECT_LT(clamp_nonneg(-1.0), 0.0);  // real negatives surface
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter w({"a", "b"});
  w.add_row({"x,y", "quote\"inside"});
  const std::string out = w.str();
  EXPECT_NE(out.find("\"x,y\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Csv, RowWidthIsChecked) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"only one"}), std::invalid_argument);
}

TEST(Csv, AddFormatsValues) {
  CsvWriter w({"name", "n", "x"});
  w.add("run", 42, 1.5);
  EXPECT_EQ(w.row_count(), 1u);
  EXPECT_NE(w.str().find("run,42,1.5"), std::string::npos);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"policy", "ratio"});
  t.add("paper-greedy", 1.234);
  t.add("random", 11.5);
  const std::string out = t.str();
  EXPECT_NE(out.find("paper-greedy"), std::string::npos);
  EXPECT_NE(out.find("1.234"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Cli, ParsesAllForms) {
  Cli cli("prog", "test");
  auto& n = cli.add_int("jobs", 10, "count");
  auto& x = cli.add_double("eps", 0.5, "epsilon");
  auto& s = cli.add_string("csv", "", "path");
  auto& f = cli.add_flag("fast", "quick mode");
  const char* argv[] = {"prog", "--jobs=25", "--eps", "0.125",
                        "--csv=out.csv", "--fast"};
  cli.parse(6, argv);
  EXPECT_EQ(n, 25);
  EXPECT_DOUBLE_EQ(x, 0.125);
  EXPECT_EQ(s, "out.csv");
  EXPECT_TRUE(f);
}

TEST(Cli, RejectsUnknownAndMalformed) {
  Cli cli("prog", "test");
  cli.add_int("jobs", 10, "count");
  {
    const char* argv[] = {"prog", "--nope=1"};
    EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
  }
  {
    const char* argv[] = {"prog", "--jobs", "abc"};
    EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
  }
  {
    const char* argv[] = {"prog", "--jobs"};
    EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
  }
}

TEST(Cli, UsageMentionsEveryOption) {
  Cli cli("prog", "demo");
  cli.add_int("alpha", 1, "first");
  cli.add_flag("beta", "second");
  const std::string u = cli.usage();
  EXPECT_NE(u.find("--alpha"), std::string::npos);
  EXPECT_NE(u.find("--beta"), std::string::npos);
}

TEST(Strings, SplitTrimJoin) {
  EXPECT_EQ(split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
  EXPECT_TRUE(starts_with("treesched", "tree"));
  EXPECT_FALSE(starts_with("tree", "treesched"));
}

}  // namespace
}  // namespace treesched::util
