// Golden regression tests: fixed seeds and configurations whose exact
// objective values were captured from a verified build. Any engine,
// policy, RNG, or workload-generation change that alters schedules will
// trip these — deliberately. If a change is *intended* to alter schedules
// (e.g. a new tie rule), regenerate the constants and say so in the
// commit.
//
// The RNG is specified in-repo (xoshiro256++) and the engine is fully
// deterministic, so these values are portable across platforms.
#include <gtest/gtest.h>

#include "treesched/treesched.hpp"

namespace treesched {
namespace {

constexpr double kTol = 1e-6;

TEST(Golden, PaperPolicyOnFatTreePareto) {
  util::Rng rng(1001);
  workload::WorkloadSpec spec;
  spec.jobs = 100;
  spec.load = 0.8;
  spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
  const Instance inst =
      workload::generate(rng, builders::fat_tree(2, 2, 2), spec);
  const auto r = algo::run_named_policy(
      inst, SpeedProfile::paper_identical(inst.tree(), 0.5), "paper", 0.5);
  EXPECT_NEAR(r.total_flow, 5147.271726, kTol);
  EXPECT_NEAR(r.fractional_flow, 4412.859606, kTol);
}

TEST(Golden, UnrelatedAffinityOnFigureOne) {
  util::Rng rng(1002);
  workload::WorkloadSpec spec;
  spec.jobs = 80;
  spec.endpoints = EndpointModel::kUnrelated;
  spec.unrelated.model = workload::UnrelatedModel::kAffinity;
  const Instance inst =
      workload::generate(rng, builders::figure1_tree(), spec);
  const auto r = algo::run_named_policy(
      inst, SpeedProfile::paper_unrelated(inst.tree(), 0.5), "paper", 0.5);
  EXPECT_NEAR(r.total_flow, 1330.474181, kTol);
  EXPECT_NEAR(r.max_flow, 156.9995101, kTol);
}

TEST(Golden, PipelinedDeepSpine) {
  util::Rng rng(1003);
  workload::WorkloadSpec spec;
  spec.jobs = 60;
  const Instance inst =
      workload::generate(rng, builders::star_of_paths(2, 4), spec);
  sim::EngineConfig cfg;
  cfg.router_chunk_size = 0.5;
  const auto r = algo::run_named_policy(
      inst, SpeedProfile::uniform(inst.tree(), 1.5), "paper", 0.5, 1, cfg);
  EXPECT_NEAR(r.total_flow, 1085.872611, kTol);
  EXPECT_NEAR(r.makespan, 362.3760993, kTol);
}

TEST(Golden, AdversarialGadgetUnderClosestLeaf) {
  const Instance inst = workload::congestion_trap(25);
  const auto r = algo::run_named_policy(
      inst, SpeedProfile::uniform(inst.tree(), 1.0), "closest", 0.5);
  EXPECT_NEAR(r.total_flow, 712.5, kTol);
}

TEST(Golden, WeightedHdfLeastVolume) {
  util::Rng rng(1005);
  workload::WorkloadSpec spec;
  spec.jobs = 50;
  spec.weights = workload::WeightModel::kUniformInt;
  const Instance inst =
      workload::generate(rng, builders::caterpillar(2, 2, 2), spec);
  sim::EngineConfig cfg;
  cfg.node_policy = sim::NodePolicy::kHdf;
  const auto r = algo::run_named_policy(
      inst, SpeedProfile::uniform(inst.tree(), 1.25), "least-volume", 0.5, 1,
      cfg);
  EXPECT_NEAR(r.metrics.total_weighted_flow_time(), 2680.870571, kTol);
  EXPECT_NEAR(r.total_flow, 739.9747948, kTol);
}

}  // namespace
}  // namespace treesched
