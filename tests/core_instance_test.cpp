// Instance validation and derived quantities.
#include <gtest/gtest.h>

#include "treesched/core/instance.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/util/class_rounding.hpp"

namespace treesched {
namespace {

TEST(Instance, SortsJobsByRelease) {
  Instance inst(builders::star_of_paths(1, 1),
                {Job(0, 5.0, 1.0), Job(1, 2.0, 1.0)},
                EndpointModel::kIdentical);
  EXPECT_EQ(inst.jobs().front().id, 1);
  EXPECT_EQ(inst.jobs().back().id, 0);
  // job(j) still addresses by id, not by position.
  EXPECT_DOUBLE_EQ(inst.job(0).release, 5.0);
}

TEST(Instance, ProcessingTimesIdenticalModel) {
  Instance inst(builders::star_of_paths(1, 2), {Job(0, 0.0, 3.0)},
                EndpointModel::kIdentical);
  const NodeId leaf = inst.tree().leaves()[0];
  for (const NodeId v : inst.tree().path_to(leaf))
    EXPECT_DOUBLE_EQ(inst.processing_time(0, v), 3.0);
  EXPECT_DOUBLE_EQ(inst.path_processing_time(0, leaf), 9.0);
}

TEST(Instance, ProcessingTimesUnrelatedModel) {
  Tree tree = builders::star_of_paths(2, 1);
  Instance inst(std::move(tree), {Job(0, 0.0, 2.0, {7.0, 3.0})},
                EndpointModel::kUnrelated);
  const NodeId l0 = inst.tree().leaves()[0];
  const NodeId l1 = inst.tree().leaves()[1];
  EXPECT_DOUBLE_EQ(inst.processing_time(0, l0), 7.0);
  EXPECT_DOUBLE_EQ(inst.processing_time(0, l1), 3.0);
  // Routers keep the router size.
  EXPECT_DOUBLE_EQ(inst.processing_time(0, inst.tree().root_child_of(l0)),
                   2.0);
  EXPECT_DOUBLE_EQ(inst.path_processing_time(0, l0), 2.0 + 7.0);
}

TEST(Instance, RootActsAsIdenticalRouterForTransit) {
  // The base model never processes at the root; the arbitrary-source
  // extension routes through it, where it behaves as an identical router.
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.0, 1.5)},
                EndpointModel::kIdentical);
  EXPECT_DOUBLE_EQ(inst.processing_time(0, inst.tree().root()), 1.5);
}

TEST(Instance, ValidationCatchesBadJobs) {
  auto tree = std::make_shared<const Tree>(builders::star_of_paths(1, 1));
  // Non-dense ids.
  EXPECT_THROW(Instance(tree, {Job(1, 0.0, 1.0)}, EndpointModel::kIdentical),
               std::invalid_argument);
  // Duplicate ids.
  EXPECT_THROW(Instance(tree, {Job(0, 0.0, 1.0), Job(0, 1.0, 1.0)},
                        EndpointModel::kIdentical),
               std::invalid_argument);
  // Negative release.
  EXPECT_THROW(Instance(tree, {Job(0, -1.0, 1.0)}, EndpointModel::kIdentical),
               std::invalid_argument);
  // Zero size.
  EXPECT_THROW(Instance(tree, {Job(0, 0.0, 0.0)}, EndpointModel::kIdentical),
               std::invalid_argument);
  // Unrelated model needs leaf sizes for every leaf.
  EXPECT_THROW(Instance(tree, {Job(0, 0.0, 1.0, {1.0, 2.0})},
                        EndpointModel::kUnrelated),
               std::invalid_argument);
  // Identical model must not carry leaf sizes.
  EXPECT_THROW(Instance(tree, {Job(0, 0.0, 1.0, {1.0})},
                        EndpointModel::kIdentical),
               std::invalid_argument);
}

TEST(Instance, RoundedToClassesRoundsEverything) {
  Tree tree = builders::star_of_paths(2, 1);
  Instance inst(std::move(tree), {Job(0, 0.0, 2.9, {1.7, 4.2})},
                EndpointModel::kUnrelated);
  const double eps = 0.5;
  const Instance rounded = inst.rounded_to_classes(eps);
  EXPECT_DOUBLE_EQ(rounded.job(0).size, util::round_up_to_class(2.9, eps));
  EXPECT_DOUBLE_EQ(rounded.job(0).leaf_sizes[0],
                   util::round_up_to_class(1.7, eps));
  EXPECT_DOUBLE_EQ(rounded.job(0).leaf_sizes[1],
                   util::round_up_to_class(4.2, eps));
}

TEST(Instance, TotalSize) {
  Instance inst(builders::star_of_paths(1, 1),
                {Job(0, 0.0, 1.5), Job(1, 0.0, 2.5)},
                EndpointModel::kIdentical);
  EXPECT_DOUBLE_EQ(inst.total_size(), 4.0);
}

TEST(Instance, SharedTreeAcrossInstances) {
  auto tree = std::make_shared<const Tree>(builders::star_of_paths(1, 1));
  Instance a(tree, {Job(0, 0.0, 1.0)}, EndpointModel::kIdentical);
  Instance b(tree, {Job(0, 0.0, 2.0)}, EndpointModel::kIdentical);
  EXPECT_EQ(&a.tree(), &b.tree());
}

}  // namespace
}  // namespace treesched
