// Differential testing: the event Engine against the naive reference
// simulator (independent implementation of the same semantics). Any
// divergence in completion times flags a bug in one of them.
#include <gtest/gtest.h>

#include "treesched/algo/policies.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/reference.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched {
namespace {

using sim::NodePolicy;

struct DiffCase {
  int tree_id;
  NodePolicy policy;
  double load;
  std::uint64_t seed;
  double chunk = 0.0;  ///< >0: pipelined-routing differential
};

Tree diff_tree(int id) {
  util::Rng rng(1234 + static_cast<std::uint64_t>(id));
  switch (id) {
    case 0: return builders::star_of_paths(2, 3);
    case 1: return builders::fat_tree(2, 2, 2);
    case 2: return builders::caterpillar(2, 2, 2);
    case 3: return builders::figure1_tree();
    default: return builders::random_tree(rng, 6, 8);
  }
}

class Differential : public testing::TestWithParam<DiffCase> {};

TEST_P(Differential, EngineMatchesReference) {
  const DiffCase& c = GetParam();
  const Tree tree = diff_tree(c.tree_id);
  util::Rng rng(c.seed);
  workload::WorkloadSpec spec;
  spec.jobs = 60;
  spec.load = c.load;
  spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
  const Instance inst = workload::generate(rng, tree, spec);

  // Fix assignments with a deterministic policy first (round-robin over
  // leaves) so both simulators schedule the identical problem.
  std::vector<NodeId> assignment;
  for (const Job& job : inst.jobs()) {
    const auto& leaves = inst.tree().leaves();
    assignment.resize(uidx(inst.job_count()));
    assignment[uidx(job.id)] = leaves[uidx(job.id) % leaves.size()];
  }

  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.25);

  sim::EngineConfig cfg;
  cfg.node_policy = c.policy;
  cfg.router_chunk_size = c.chunk;
  sim::Engine engine(inst, speeds, cfg);
  engine.run_with_assignment(assignment);

  const auto ref =
      sim::simulate_reference(inst, speeds, assignment, c.policy, c.chunk);

  for (JobId j = 0; j < inst.job_count(); ++j) {
    const auto& rec = engine.metrics().job(j);
    ASSERT_TRUE(rec.completed());
    EXPECT_NEAR(rec.completion, ref.completion[uidx(j)], 1e-6)
        << "job " << j << " diverges";
    ASSERT_EQ(rec.node_completion.size(), ref.node_completion[uidx(j)].size());
    for (std::size_t i = 0; i < rec.node_completion.size(); ++i)
      EXPECT_NEAR(rec.node_completion[i], ref.node_completion[uidx(j)][i], 1e-6)
          << "job " << j << " node " << i;
  }
  EXPECT_NEAR(engine.metrics().total_flow_time(), ref.total_flow, 1e-4);
}

std::vector<DiffCase> diff_cases() {
  std::vector<DiffCase> cases;
  std::uint64_t seed = 100;
  for (int tree = 0; tree < 5; ++tree)
    for (const NodePolicy p : {NodePolicy::kSjf, NodePolicy::kFifo})
      for (const double load : {0.6, 0.95})
        cases.push_back({tree, p, load, ++seed, 0.0});
  // Pipelined-routing differentials.
  for (int tree = 0; tree < 5; ++tree)
    for (const NodePolicy p : {NodePolicy::kSjf, NodePolicy::kFifo})
      for (const double chunk : {2.0, 0.5})
        cases.push_back({tree, p, 0.8, ++seed, chunk});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Differential, testing::ValuesIn(diff_cases()),
    [](const testing::TestParamInfo<DiffCase>& pi) {
      std::string name =
          "tree" + std::to_string(pi.param.tree_id) + "_" +
          sim::node_policy_name(pi.param.policy) + "_load" +
          std::to_string(static_cast<int>(pi.param.load * 100)) + "_s" +
          std::to_string(pi.param.seed);
      if (pi.param.chunk > 0.0)
        name += "_chunk" + std::to_string(
                               static_cast<int>(pi.param.chunk * 100));
      return name;
    });

TEST(DifferentialPaperPolicy, GreedyAssignmentsAlsoMatch) {
  // Same cross-check but with the paper's greedy assignments (recorded from
  // an engine run, then replayed on both simulators).
  const Tree tree = builders::fat_tree(2, 2, 2);
  util::Rng rng(777);
  workload::WorkloadSpec spec;
  spec.jobs = 80;
  spec.load = 0.9;
  const Instance inst = workload::generate(rng, tree, spec);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.5);

  algo::PaperGreedyPolicy policy(0.5);
  sim::Engine engine(inst, speeds);
  engine.run(policy);
  std::vector<NodeId> assignment(uidx(inst.job_count()));
  for (JobId j = 0; j < inst.job_count(); ++j)
    assignment[uidx(j)] = engine.assigned_leaf(j);

  const auto ref = sim::simulate_reference(inst, speeds, assignment);
  for (JobId j = 0; j < inst.job_count(); ++j)
    EXPECT_NEAR(engine.metrics().job(j).completion, ref.completion[uidx(j)], 1e-6);
}

TEST(Reference, RejectsUnsupportedPolicy) {
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  EXPECT_THROW(sim::simulate_reference(
                   inst, SpeedProfile::uniform(inst.tree(), 1.0),
                   {inst.tree().leaves()[0]}, sim::NodePolicy::kSrpt),
               std::invalid_argument);
}

}  // namespace
}  // namespace treesched
