// Resilient sweep orchestration: retry/backoff, checkpoint journals,
// resume byte-identity, cooperative cancellation, and the fault-rate grid.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "treesched/exec/sweep.hpp"

namespace treesched::exec {
namespace {

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.policies = {"fault-greedy"};
  spec.trees = {"star-2x3"};
  spec.eps_grid = {0.5};
  spec.fault_rates = {0.0, 0.02};
  spec.seeds = 2;
  spec.base_seed = 5;
  spec.jobs = 30;
  spec.threads = 2;
  return spec;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(FaultSweep, FaultGridIsDeterministicAcrossThreadCounts) {
  SweepSpec spec = tiny_spec();
  spec.threads = 1;
  const SweepResult seq = run_sweep(spec);
  spec.threads = 8;
  const SweepResult par = run_sweep(spec);
  EXPECT_EQ(sweep_json(seq, false), sweep_json(par, false));
  // policies x trees x eps x fault_rates x seeds.
  EXPECT_EQ(seq.tasks.size(), 1u * 1u * 1u * 2u * 2u);
  EXPECT_NE(sweep_json(seq, false).find("\"fault_rates\""), std::string::npos);
}

TEST(FaultSweep, FaultsDegradeFlowTimeVsControlCell) {
  SweepSpec spec = tiny_spec();
  spec.fault_rates = {0.0, 0.05};
  spec.seeds = 3;
  spec.jobs = 60;
  const SweepResult r = run_sweep(spec);
  ASSERT_EQ(r.cells.size(), 2u);
  // The control cell (rate 0) must not be slower than the faulty cell.
  EXPECT_LE(r.cells[0].mean_flow, r.cells[1].mean_flow);
}

TEST(FaultSweep, RetriesConsumeTransientFailures) {
  SweepSpec spec = tiny_spec();
  spec.retries = 2;
  spec.retry_backoff_ms = 0.1;
  std::atomic<int> injected{0};
  spec.inject_fault = [&injected](const SweepTask&, int attempt) {
    if (attempt <= 2) {
      injected.fetch_add(1);
      throw std::runtime_error("transient storage glitch");
    }
  };
  const SweepResult r = run_sweep(spec);
  EXPECT_GT(injected.load(), 0);
  for (const auto& task : r.tasks) {
    EXPECT_EQ(task.status, TaskStatus::kOk) << "task " << task.index;
    EXPECT_EQ(task.attempts, 3);
  }
}

TEST(FaultSweep, ExhaustedRetriesReportFailedTasks) {
  SweepSpec spec = tiny_spec();
  spec.retries = 1;
  spec.retry_backoff_ms = 0.1;
  spec.inject_fault = [](const SweepTask& t, int) {
    if (t.index == 0) throw std::runtime_error("persistent failure");
  };
  const SweepResult r = run_sweep(spec);
  EXPECT_EQ(r.tasks[0].status, TaskStatus::kFailed);
  EXPECT_NE(r.tasks[0].error.find("persistent failure"), std::string::npos);
  for (std::size_t i = 1; i < r.tasks.size(); ++i)
    EXPECT_EQ(r.tasks[i].status, TaskStatus::kOk);
}

TEST(FaultSweep, ResumeFromPartialJournalIsByteIdentical) {
  SweepSpec spec = tiny_spec();
  const std::string baseline_json = sweep_json(run_sweep(spec), false);

  // Full run with a journal, then truncate the journal to simulate a kill
  // after only two tasks had checkpointed.
  const std::string ckpt = temp_path("fault_sweep_resume.ckpt");
  std::filesystem::remove(ckpt);
  SweepSpec journaled = spec;
  journaled.checkpoint = ckpt;
  run_sweep(journaled);
  std::vector<std::string> lines;
  {
    std::ifstream in(ckpt);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u + 4u);  // header + fingerprint + 4 tasks
  {
    std::ofstream out(ckpt, std::ios::trunc);
    for (std::size_t i = 0; i < 4; ++i) out << lines[i] << '\n';
    out << "task 3 0.5 truncat";  // torn tail: must be ignored, not parsed
  }

  SweepSpec resumed = journaled;
  resumed.resume = true;
  const SweepResult r = run_sweep(resumed);
  EXPECT_EQ(r.resumed, 2u);
  EXPECT_EQ(sweep_json(r, false), baseline_json);
  std::filesystem::remove(ckpt);
}

TEST(FaultSweep, ResumeRejectsForeignJournal) {
  const std::string ckpt = temp_path("fault_sweep_foreign.ckpt");
  std::filesystem::remove(ckpt);
  SweepSpec spec = tiny_spec();
  spec.checkpoint = ckpt;
  run_sweep(spec);

  SweepSpec other = spec;
  other.base_seed += 1;  // different grid identity
  other.resume = true;
  EXPECT_THROW(run_sweep(other), std::invalid_argument);
  std::filesystem::remove(ckpt);
}

TEST(FaultSweep, ResumeWithMissingJournalStartsFresh) {
  SweepSpec spec = tiny_spec();
  spec.checkpoint = temp_path("fault_sweep_missing.ckpt");
  std::filesystem::remove(spec.checkpoint);
  spec.resume = true;
  const SweepResult r = run_sweep(spec);
  EXPECT_EQ(r.resumed, 0u);
  for (const auto& task : r.tasks)
    EXPECT_EQ(task.status, TaskStatus::kOk);
  std::filesystem::remove(spec.checkpoint);
}

TEST(FaultSweep, PreCancelledSequentialSweepRunsNothing) {
  SweepSpec spec = tiny_spec();
  std::atomic<bool> cancel{true};
  spec.cancel = &cancel;
  spec.threads = 1;  // sequential path: the flag is checked before any task
  const SweepResult r = run_sweep(spec);
  EXPECT_TRUE(r.interrupted);
  for (const auto& task : r.tasks)
    EXPECT_EQ(task.status, TaskStatus::kCancelled) << "task " << task.index;
}

TEST(FaultSweep, PreCancelledPoolSweepNeverHangsOrFails) {
  // On the pool path workers may legitimately finish a task before the
  // gather observes the flag, so the invariant is: every task ends kOk or
  // kCancelled (never failed/timeout), and interrupted iff any cancelled.
  SweepSpec spec = tiny_spec();
  std::atomic<bool> cancel{true};
  spec.cancel = &cancel;
  spec.threads = 4;
  const SweepResult r = run_sweep(spec);
  std::size_t cancelled = 0;
  for (const auto& task : r.tasks) {
    EXPECT_TRUE(task.status == TaskStatus::kOk ||
                task.status == TaskStatus::kCancelled)
        << "task " << task.index;
    if (task.status == TaskStatus::kCancelled) ++cancelled;
  }
  EXPECT_EQ(r.interrupted, cancelled > 0);
}

TEST(FaultSweep, CancelledRunsJournalThenResumeCompletes) {
  // Cancel immediately but journal: nothing (or only in-flight tasks)
  // completes; a resumed run must still converge to the baseline bytes.
  SweepSpec spec = tiny_spec();
  const std::string baseline_json = sweep_json(run_sweep(spec), false);

  const std::string ckpt = temp_path("fault_sweep_cancel.ckpt");
  std::filesystem::remove(ckpt);
  std::atomic<bool> cancel{false};
  SweepSpec interrupted = spec;
  interrupted.checkpoint = ckpt;
  interrupted.cancel = &cancel;
  interrupted.threads = 1;  // deterministic: cancel lands after task 1
  int started = 0;
  interrupted.inject_fault = [&cancel, &started](const SweepTask&, int) {
    if (++started == 2) cancel.store(true);
  };
  const SweepResult partial = run_sweep(interrupted);
  EXPECT_TRUE(partial.interrupted);
  EXPECT_EQ(partial.tasks[0].status, TaskStatus::kOk);
  EXPECT_EQ(partial.tasks.back().status, TaskStatus::kCancelled);

  SweepSpec resumed = spec;
  resumed.checkpoint = ckpt;
  resumed.resume = true;
  const SweepResult full = run_sweep(resumed);
  EXPECT_FALSE(full.interrupted);
  EXPECT_EQ(sweep_json(full, false), baseline_json);
  std::filesystem::remove(ckpt);
}

TEST(FaultSweep, FaultFreeJsonShapeIsUnchanged) {
  SweepSpec spec = tiny_spec();
  spec.policies = {"paper"};
  spec.fault_rates.clear();
  const std::string json = sweep_json(run_sweep(spec), false);
  EXPECT_EQ(json.find("\"fault_rates\""), std::string::npos);
  EXPECT_EQ(json.find("\"fault_rate\""), std::string::npos);
}

}  // namespace
}  // namespace treesched::exec
