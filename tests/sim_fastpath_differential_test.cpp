// Fast-path differential suite: every assignment policy on random
// instances, run once with the incremental dispatch indices (the default)
// and once with EngineConfig::slow_queries — the seed's rescan-everything
// oracle. The two runs must agree to the byte on the serialized run log
// (assignments, burst segments, completions, fault timeline) and exactly on
// the headline metrics: the indices are a pure representation change.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "treesched/algo/policies.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/fault/model.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/run_log.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched {
namespace {

struct FastSlowCase {
  const char* policy;
  int tree_id;
  EndpointModel endpoints;
  bool faults;
  double chunk = 0.0;
  std::uint64_t seed = 7;
};

std::string case_name(const testing::TestParamInfo<FastSlowCase>& info) {
  const FastSlowCase& c = info.param;
  std::string name = c.policy;
  for (char& ch : name)
    if (ch == '-') ch = '_';
  name += c.endpoints == EndpointModel::kIdentical ? "_ident" : "_unrel";
  name += "_tree";
  name += std::to_string(c.tree_id);
  if (c.faults) name += "_faults";
  if (c.chunk > 0.0) name += "_chunked";
  return name;
}

Tree case_tree(int id) {
  switch (id) {
    case 0: return builders::fat_tree(3, 2, 2);
    case 1: return builders::caterpillar(3, 2, 2);
    default: return builders::star_of_paths(4, 2);
  }
}

struct RunResult {
  std::string log;
  double flow = 0.0;
  double makespan = 0.0;
};

RunResult run_once(const Instance& inst, const SpeedProfile& speeds,
                   const FastSlowCase& c, bool slow) {
  sim::EngineConfig cfg;
  cfg.record_schedule = true;
  cfg.router_chunk_size = c.chunk;
  cfg.slow_queries = slow;
  sim::Engine engine(inst, speeds, cfg);

  // Fresh policy per run: rotation counters and RNG streams restart, so any
  // divergence comes from the engine's query paths alone.
  auto policy = algo::make_policy(c.policy, inst, 0.5, c.seed);

  fault::FaultPlan plan;
  algo::FaultAwareGreedy redispatch(0.5);
  if (c.faults) {
    fault::FaultModel model;
    model.node_failure_rate = 0.02;
    model.node_mttr = 8.0;
    model.edge_failure_rate = 0.01;
    model.slow_rate = 0.01;
    model.slow_factor = 0.5;
    model.horizon = 60.0;
    plan = fault::generate_plan(inst.tree(), model, c.seed + 17);
    engine.set_fault_plan(&plan, &redispatch);
  }

  engine.run(*policy);

  std::ostringstream os;
  sim::write_run_log(os, sim::make_run_log(inst, engine));
  return {os.str(), engine.metrics().total_flow_time(),
          engine.metrics().makespan()};
}

class FastSlow : public testing::TestWithParam<FastSlowCase> {};

TEST_P(FastSlow, RunLogsAreByteIdentical) {
  const FastSlowCase& c = GetParam();
  util::Rng rng(c.seed);
  workload::WorkloadSpec spec;
  spec.jobs = 70;
  spec.load = 1.2;  // enough backlog that the aggregate queries matter
  spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
  spec.endpoints = c.endpoints;
  const Instance inst = workload::generate(rng, case_tree(c.tree_id), spec);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.5);

  const RunResult fast = run_once(inst, speeds, c, /*slow=*/false);
  const RunResult slow = run_once(inst, speeds, c, /*slow=*/true);

  EXPECT_EQ(fast.log, slow.log);
  EXPECT_EQ(fast.flow, slow.flow);
  EXPECT_EQ(fast.makespan, slow.makespan);
}

std::vector<FastSlowCase> all_cases() {
  std::vector<FastSlowCase> cases;
  const char* policies[] = {"paper",        "closest",     "random",
                            "round-robin",  "least-volume", "least-count",
                            "two-choice",   "fault-greedy",
                            "broomstick-mirror"};
  for (const char* p : policies) {
    for (int tree_id = 0; tree_id < 2; ++tree_id) {
      for (const EndpointModel m :
           {EndpointModel::kIdentical, EndpointModel::kUnrelated}) {
        cases.push_back({p, tree_id, m, /*faults=*/false});
      }
    }
    // Fault runs (whole-job forwarding required): crash, link, and slowdown
    // events plus greedy re-dispatch, both endpoint models.
    cases.push_back({p, 0, EndpointModel::kIdentical, /*faults=*/true});
    cases.push_back({p, 1, EndpointModel::kUnrelated, /*faults=*/true});
  }
  // Pipelined routing exercises the chunked index updates.
  cases.push_back({"paper", 0, EndpointModel::kIdentical, false, 0.75});
  cases.push_back({"least-volume", 1, EndpointModel::kUnrelated, false, 0.75});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, FastSlow, testing::ValuesIn(all_cases()),
                         case_name);

}  // namespace
}  // namespace treesched
