// Fast-path differential suite: every assignment policy on random
// instances, run once with the incremental dispatch indices (the default)
// and once with EngineConfig::slow_queries — the seed's rescan-everything
// oracle. The two runs must agree to the byte on the serialized run log
// (assignments, burst segments, completions, fault timeline) and exactly on
// the headline metrics: the indices are a pure representation change.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "treesched/algo/policies.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/fault/model.hpp"
#include "treesched/overload/controller.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/run_log.hpp"
#include "treesched/util/rng.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched {
namespace {

struct FastSlowCase {
  const char* policy;
  int tree_id;
  EndpointModel endpoints;
  bool faults;
  double chunk = 0.0;
  std::uint64_t seed = 7;
};

std::string case_name(const testing::TestParamInfo<FastSlowCase>& info) {
  const FastSlowCase& c = info.param;
  std::string name = c.policy;
  for (char& ch : name)
    if (ch == '-') ch = '_';
  name += c.endpoints == EndpointModel::kIdentical ? "_ident" : "_unrel";
  name += "_tree";
  name += std::to_string(c.tree_id);
  if (c.faults) name += "_faults";
  if (c.chunk > 0.0) name += "_chunked";
  return name;
}

Tree case_tree(int id) {
  switch (id) {
    case 0: return builders::fat_tree(3, 2, 2);
    case 1: return builders::caterpillar(3, 2, 2);
    default: return builders::star_of_paths(4, 2);
  }
}

struct RunResult {
  std::string log;
  double flow = 0.0;
  double makespan = 0.0;
};

RunResult run_once(const Instance& inst, const SpeedProfile& speeds,
                   const FastSlowCase& c, bool slow) {
  sim::EngineConfig cfg;
  cfg.record_schedule = true;
  cfg.router_chunk_size = c.chunk;
  cfg.slow_queries = slow;
  sim::Engine engine(inst, speeds, cfg);

  // Fresh policy per run: rotation counters and RNG streams restart, so any
  // divergence comes from the engine's query paths alone.
  auto policy = algo::make_policy(c.policy, inst, 0.5, c.seed);

  fault::FaultPlan plan;
  algo::FaultAwareGreedy redispatch(0.5);
  if (c.faults) {
    fault::FaultModel model;
    model.node_failure_rate = 0.02;
    model.node_mttr = 8.0;
    model.edge_failure_rate = 0.01;
    model.slow_rate = 0.01;
    model.slow_factor = 0.5;
    model.horizon = 60.0;
    plan = fault::generate_plan(inst.tree(), model, c.seed + 17);
    engine.set_fault_plan(&plan, &redispatch);
  }

  engine.run(*policy);

  std::ostringstream os;
  sim::write_run_log(os, sim::make_run_log(inst, engine));
  return {os.str(), engine.metrics().total_flow_time(),
          engine.metrics().makespan()};
}

class FastSlow : public testing::TestWithParam<FastSlowCase> {};

TEST_P(FastSlow, RunLogsAreByteIdentical) {
  const FastSlowCase& c = GetParam();
  util::Rng rng(c.seed);
  workload::WorkloadSpec spec;
  spec.jobs = 70;
  spec.load = 1.2;  // enough backlog that the aggregate queries matter
  spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
  spec.endpoints = c.endpoints;
  const Instance inst = workload::generate(rng, case_tree(c.tree_id), spec);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.5);

  const RunResult fast = run_once(inst, speeds, c, /*slow=*/false);
  const RunResult slow = run_once(inst, speeds, c, /*slow=*/true);

  EXPECT_EQ(fast.log, slow.log);
  EXPECT_EQ(fast.flow, slow.flow);
  EXPECT_EQ(fast.makespan, slow.makespan);
}

std::vector<FastSlowCase> all_cases() {
  std::vector<FastSlowCase> cases;
  const char* policies[] = {"paper",        "closest",     "random",
                            "round-robin",  "least-volume", "least-count",
                            "two-choice",   "fault-greedy",
                            "broomstick-mirror"};
  for (const char* p : policies) {
    for (int tree_id = 0; tree_id < 2; ++tree_id) {
      for (const EndpointModel m :
           {EndpointModel::kIdentical, EndpointModel::kUnrelated}) {
        cases.push_back({p, tree_id, m, /*faults=*/false});
      }
    }
    // Fault runs (whole-job forwarding required): crash, link, and slowdown
    // events plus greedy re-dispatch, both endpoint models.
    cases.push_back({p, 0, EndpointModel::kIdentical, /*faults=*/true});
    cases.push_back({p, 1, EndpointModel::kUnrelated, /*faults=*/true});
  }
  // Pipelined routing exercises the chunked index updates.
  cases.push_back({"paper", 0, EndpointModel::kIdentical, false, 0.75});
  cases.push_back({"least-volume", 1, EndpointModel::kUnrelated, false, 0.75});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, FastSlow, testing::ValuesIn(all_cases()),
                         case_name);

// ---------------------------------------------------------------------------
// Calendar-queue stress battery (PR9): workloads crafted to push the event
// queue through its structural regimes — dense same-instant bursts (one
// bucket, seq-order ties, batched release epochs), far-future fault events
// (overflow heap, ring re-bases) — plus snapshot round-trips, all checked
// fast vs slow to the byte.
// ---------------------------------------------------------------------------

/// Jobs in bursts: `per_burst` jobs share each release instant exactly.
Instance burst_instance(std::shared_ptr<const Tree> tree, int bursts,
                        int per_burst, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Job> jobs;
  JobId id = 0;
  for (int b = 0; b < bursts; ++b) {
    const Time release = static_cast<Time>(b) * 3.0;
    for (int k = 0; k < per_burst; ++k)
      jobs.emplace_back(id++, release, rng.bounded_pareto(0.5, 40.0, 1.3));
  }
  return Instance(std::move(tree), std::move(jobs),
                  EndpointModel::kIdentical);
}

TEST(FastSlowStress, SameInstantReleaseStorms) {
  // 8 bursts x 30 jobs at the same instant: every burst is one release
  // epoch whose completions pile onto shared instants downstream, so the
  // queue drains long same-(t) runs that must pop in seq order.
  const auto tree = std::make_shared<const Tree>(builders::fat_tree(4, 2, 2));
  const Instance inst = burst_instance(tree, 8, 30, 0x5707);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.5);
  const FastSlowCase c{"paper", 0, EndpointModel::kIdentical, false};

  const RunResult fast = run_once(inst, speeds, c, /*slow=*/false);
  const RunResult slow = run_once(inst, speeds, c, /*slow=*/true);
  EXPECT_EQ(fast.log, slow.log);
  EXPECT_EQ(fast.flow, slow.flow);
  EXPECT_EQ(fast.makespan, slow.makespan);
}

TEST(FastSlowStress, FarFutureFaultEventsCrossBucketBoundaries) {
  // A long, sparse fault horizon: recovery events land thousands of time
  // units past the job events, so they sit in the calendar's overflow heap
  // and surface through ring re-bases after the completion traffic drains.
  const auto tree = std::make_shared<const Tree>(builders::fat_tree(3, 2, 2));
  util::Rng rng(0xfafa);
  workload::WorkloadSpec spec;
  spec.jobs = 60;
  spec.load = 1.1;
  spec.sizes.dist = workload::SizeDistribution::kBoundedPareto;
  const Instance inst = workload::generate(rng, *tree, spec);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.5);

  auto run_with_far_faults = [&](bool slow) {
    sim::EngineConfig cfg;
    cfg.record_schedule = true;
    cfg.slow_queries = slow;
    sim::Engine engine(inst, speeds, cfg);
    algo::PaperGreedyPolicy policy(0.5);
    algo::FaultAwareGreedy redispatch(0.5);
    fault::FaultModel model;
    model.node_failure_rate = 0.002;
    model.node_mttr = 4000.0;  // recoveries far beyond the last completion
    model.slow_rate = 0.002;
    model.slow_factor = 0.5;
    model.horizon = 9000.0;
    const fault::FaultPlan plan =
        fault::generate_plan(inst.tree(), model, 0x90);
    engine.set_fault_plan(&plan, &redispatch);
    engine.run(policy);
    std::ostringstream os;
    sim::write_run_log(os, sim::make_run_log(inst, engine));
    return RunResult{os.str(), engine.metrics().total_flow_time(),
                     engine.metrics().makespan()};
  };

  const RunResult fast = run_with_far_faults(false);
  const RunResult slow = run_with_far_faults(true);
  EXPECT_EQ(fast.log, slow.log);
  EXPECT_EQ(fast.flow, slow.flow);
  EXPECT_EQ(fast.makespan, slow.makespan);
}

// ---------------------------------------------------------------------------
// Snapshot save -> load -> replay byte-identity across query modes,
// shedding, and chunked routing.
// ---------------------------------------------------------------------------

struct ReplayCase {
  bool slow;       ///< query mode of BOTH the saver and the resumer
  bool shed;       ///< bounded-queue admission armed on both engines
  double chunk;    ///< router chunk size (0 = whole-job forwarding)
};

std::string replay_name(const testing::TestParamInfo<ReplayCase>& info) {
  std::string name = info.param.slow ? "slow" : "fast";
  if (info.param.shed) name += "_shedding";
  if (info.param.chunk > 0.0) name += "_chunked";
  return name;
}

class SnapshotReplay : public testing::TestWithParam<ReplayCase> {};

TEST_P(SnapshotReplay, SaveLoadReplayIsByteIdentical) {
  const ReplayCase& rc = GetParam();
  const auto tree = std::make_shared<const Tree>(builders::fat_tree(3, 2, 2));
  const Instance inst = burst_instance(tree, 10, 12, 0xbeef);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.5);

  sim::EngineConfig cfg;
  cfg.slow_queries = rc.slow;
  cfg.router_chunk_size = rc.chunk;
  overload::ShedConfig shed;
  if (rc.shed) {
    shed.policy = overload::ShedPolicy::kBoundedQueue;
    shed.queue_cap = 120.0;
    cfg.shed = shed;
  }

  // Mirrors Engine::run's batch loop so the reference and the resumed run
  // drive admissions identically on either side of the snapshot point.
  const auto drive = [&](sim::Engine& engine, sim::AssignmentPolicy& policy,
                         overload::AdmissionController* adm, std::size_t from,
                         std::size_t to) {
    const std::vector<Job>& all = inst.jobs();
    for (std::size_t i = from; i < to;) {
      const Time release = all[i].release;
      engine.advance_to(release);
      do {
        const Job& job = all[i];
        if (adm != nullptr && !adm->admit(engine, job)) {
          // reject() recorded by the controller
        } else {
          engine.admit(job.id, policy.assign(engine, job));
        }
        ++i;
      } while (i < to && all[i].release == release);
    }
  };

  const std::size_t cut = 64;  // mid-burst: splits a same-instant batch

  // Reference: drives straight through.
  algo::PaperGreedyPolicy p_ref(0.5);
  overload::AdmissionController adm_ref(cfg.shed);
  sim::Engine ref(inst, speeds, cfg);
  if (rc.shed) ref.set_admission(&adm_ref);
  drive(ref, p_ref, rc.shed ? &adm_ref : nullptr, 0, cut);
  std::ostringstream snap;
  ref.save_state(snap);
  drive(ref, p_ref, rc.shed ? &adm_ref : nullptr, cut, inst.jobs().size());
  ref.run_to_completion();

  // Resumed: loads the mid-run snapshot, must converge to the same bytes.
  algo::PaperGreedyPolicy p_res(0.5);
  overload::AdmissionController adm_res(cfg.shed);
  sim::Engine res(inst, speeds, cfg);
  if (rc.shed) res.set_admission(&adm_res);
  std::istringstream in(snap.str());
  res.load_state(in);
  drive(res, p_res, rc.shed ? &adm_res : nullptr, cut, inst.jobs().size());
  res.run_to_completion();

  // Byte-level: the final serialized engine states and metrics agree.
  std::ostringstream final_ref, final_res, m_ref, m_res;
  ref.save_state(final_ref);
  res.save_state(final_res);
  ref.metrics().save(m_ref);
  res.metrics().save(m_res);
  EXPECT_EQ(final_res.str(), final_ref.str());
  EXPECT_EQ(m_res.str(), m_ref.str());
  EXPECT_EQ(res.metrics().total_flow_time(), ref.metrics().total_flow_time());
  EXPECT_EQ(res.metrics().makespan(), ref.metrics().makespan());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SnapshotReplay,
    testing::ValuesIn(std::vector<ReplayCase>{
        {/*slow=*/false, /*shed=*/false, /*chunk=*/0.0},
        {/*slow=*/true, /*shed=*/false, /*chunk=*/0.0},
        {/*slow=*/false, /*shed=*/true, /*chunk=*/0.0},
        {/*slow=*/true, /*shed=*/true, /*chunk=*/0.0},
        {/*slow=*/false, /*shed=*/false, /*chunk=*/0.75},
        {/*slow=*/true, /*shed=*/false, /*chunk=*/0.75},
    }),
    replay_name);

// The two query modes must also produce the SAME snapshot bytes (the
// treesched-snapshot-v2 format is mode-independent): save at the same cut
// from a fast and a slow engine and byte-compare.
TEST(FastSlowStress, SnapshotBytesAgreeAcrossQueryModes) {
  const auto tree = std::make_shared<const Tree>(builders::fat_tree(3, 2, 2));
  const Instance inst = burst_instance(tree, 10, 12, 0xbeef);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.5);

  const auto snap_at_cut = [&](bool slow) {
    sim::EngineConfig cfg;
    cfg.slow_queries = slow;
    sim::Engine engine(inst, speeds, cfg);
    algo::PaperGreedyPolicy policy(0.5);
    const std::vector<Job>& all = inst.jobs();
    for (std::size_t i = 0; i < 64; ++i) {
      engine.advance_to(all[i].release);
      engine.admit(all[i].id, policy.assign(engine, all[i]));
    }
    std::ostringstream os;
    engine.save_state(os);
    return os.str();
  };

  EXPECT_EQ(snap_at_cut(false), snap_at_cut(true));
}

}  // namespace
}  // namespace treesched
