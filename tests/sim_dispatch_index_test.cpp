// DispatchIndex differential test: random insert/update/erase traffic
// checked after every operation against a naive flat-vector model. Sums are
// compared with a relative tolerance (the treap reassociates additions);
// counts and membership are exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "treesched/sim/dispatch_index.hpp"
#include "treesched/util/rng.hpp"

namespace treesched::sim {
namespace {

struct Entry {
  SjfKey key;
  double rem = 0.0;
};

class NaiveIndex {
 public:
  void insert(const SjfKey& key, double rem) { entries_.push_back({key, rem}); }
  void update(const SjfKey& key, double rem) { find(key)->rem = rem; }
  void erase(const SjfKey& key) { entries_.erase(find(key)); }
  std::size_t size() const { return entries_.size(); }

  double remaining_before(const SjfKey& key) const {
    double sum = 0.0;
    for (const Entry& e : entries_)
      if (e.key < key) sum += e.rem;
    return sum;
  }
  int count_size_greater(double size) const {
    int n = 0;
    for (const Entry& e : entries_)
      if (e.key.size > size) ++n;
    return n;
  }
  double fraction_size_greater(double size) const {
    double sum = 0.0;
    for (const Entry& e : entries_)
      if (e.key.size > size) sum += e.rem / e.key.size;
    return sum;
  }
  double total_remaining() const {
    double sum = 0.0;
    for (const Entry& e : entries_) sum += e.rem;
    return sum;
  }
  double total_fraction() const {
    double sum = 0.0;
    for (const Entry& e : entries_) sum += e.rem / e.key.size;
    return sum;
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry>::iterator find(const SjfKey& key) {
    return std::find_if(entries_.begin(), entries_.end(),
                        [&](const Entry& e) { return e.key == key; });
  }

  std::vector<Entry> entries_;
};

void expect_near_rel(double fast, double naive) {
  const double tol = 1e-9 * std::max(1.0, std::fabs(naive));
  EXPECT_NEAR(fast, naive, tol);
}

void check_queries(const DispatchIndex& fast, const NaiveIndex& naive,
                   util::Rng& rng) {
  ASSERT_EQ(fast.size(), naive.size());
  expect_near_rel(fast.total_remaining(), naive.total_remaining());
  expect_near_rel(fast.total_fraction(), naive.total_fraction());
  for (int q = 0; q < 4; ++q) {
    // Thresholds drawn from the same small grids the keys use, so queries
    // land exactly on stored sizes (the strict-inequality edge) as well as
    // between them.
    const double size = static_cast<double>(rng.uniform_int(0, 12)) / 2.0;
    EXPECT_EQ(fast.count_size_greater(size), naive.count_size_greater(size));
    expect_near_rel(fast.fraction_size_greater(size),
                    naive.fraction_size_greater(size));
    const SjfKey probe{size, static_cast<Time>(rng.uniform_int(0, 4)),
                       static_cast<JobId>(rng.uniform_int(0, 400))};
    expect_near_rel(fast.remaining_before(probe),
                    naive.remaining_before(probe));
  }
}

TEST(DispatchIndex, MatchesNaiveModelUnderRandomTraffic) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    DispatchIndex fast;
    NaiveIndex naive;
    JobId next_job = 0;
    for (int op = 0; op < 800; ++op) {
      const std::int64_t kind = rng.uniform_int(0, 9);
      if (kind < 5 || naive.size() == 0) {
        // Sizes from a small grid force heavy duplication in the size
        // dimension; the (release, job) components keep keys unique.
        const SjfKey key{static_cast<double>(rng.uniform_int(1, 6)),
                         static_cast<Time>(rng.uniform_int(0, 3)),
                         next_job++};
        const double rem = key.size * rng.uniform01();
        fast.insert(key, rem);
        naive.insert(key, rem);
      } else {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(naive.size()) - 1));
        const SjfKey key = naive.entries()[pick].key;
        if (kind < 8) {
          const double rem = key.size * rng.uniform01();
          fast.update(key, rem);
          naive.update(key, rem);
        } else {
          fast.erase(key);
          naive.erase(key);
        }
      }
      check_queries(fast, naive, rng);
    }
    // Drain completely: erase-path coverage down to the empty tree.
    while (naive.size() > 0) {
      const SjfKey key = naive.entries().back().key;
      fast.erase(key);
      naive.erase(key);
      check_queries(fast, naive, rng);
    }
    EXPECT_TRUE(fast.empty());
  }
}

TEST(DispatchIndex, DeterministicAcrossInsertionOrders) {
  // The treap shape depends only on the key set, so the same entries
  // inserted in different orders answer every query bit-identically.
  std::vector<Entry> entries;
  util::Rng rng(99);
  for (JobId j = 0; j < 64; ++j)
    entries.push_back({{static_cast<double>(rng.uniform_int(1, 5)),
                        static_cast<Time>(rng.uniform_int(0, 2)), j},
                       rng.uniform01() * 7.0});

  DispatchIndex forward;
  for (const Entry& e : entries) forward.insert(e.key, e.rem);
  DispatchIndex backward;
  for (auto it = entries.rbegin(); it != entries.rend(); ++it)
    backward.insert(it->key, it->rem);

  for (double size = 0.0; size <= 6.0; size += 0.5) {
    EXPECT_EQ(forward.count_size_greater(size),
              backward.count_size_greater(size));
    EXPECT_EQ(forward.fraction_size_greater(size),
              backward.fraction_size_greater(size));
    EXPECT_EQ(forward.remaining_before({size, 1.0, 32}),
              backward.remaining_before({size, 1.0, 32}));
  }
  EXPECT_EQ(forward.total_remaining(), backward.total_remaining());
  EXPECT_EQ(forward.total_fraction(), backward.total_fraction());
}

}  // namespace
}  // namespace treesched::sim
