// Sweep orchestration: determinism across thread counts, timeout reporting,
// per-task recording for the offline auditor.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "treesched/exec/sweep.hpp"
#include "treesched/sim/run_log.hpp"
#include "treesched/util/rng.hpp"

namespace treesched::exec {
namespace {

SweepSpec small_spec() {
  SweepSpec spec;
  spec.policies = {"paper", "closest"};
  spec.trees = {"figure1", "star-2x3"};
  spec.eps_grid = {1.0, 0.5};
  spec.seeds = 2;
  spec.base_seed = 17;
  spec.jobs = 40;
  return spec;
}

TEST(Sweep, JsonIsByteIdenticalAcrossThreadCounts) {
  SweepSpec spec = small_spec();
  spec.threads = 1;
  const SweepResult seq = run_sweep(spec);
  spec.threads = 8;
  const SweepResult par = run_sweep(spec);
  EXPECT_EQ(sweep_json(seq, false), sweep_json(par, false));
  EXPECT_EQ(seq.tasks.size(), 2u * 2u * 2u * 2u);
}

TEST(Sweep, TaskSeedsAreSplitSeedOfIndex) {
  SweepSpec spec = small_spec();
  spec.threads = 1;
  const SweepResult result = run_sweep(spec);
  for (const auto& task : result.tasks)
    EXPECT_EQ(task.seed, util::split_seed(spec.base_seed, task.index));
}

TEST(Sweep, CellsAggregateOnlyCompletedReps) {
  SweepSpec spec = small_spec();
  spec.threads = 2;
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.cells.size(), 2u * 2u * 2u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.count, 2u);
    EXPECT_EQ(cell.skipped, 0u);
    EXPECT_GT(cell.ratio_mean, 0.0);
    EXPECT_LE(cell.ratio_ci_lo, cell.ratio_mean);
    EXPECT_GE(cell.ratio_ci_hi, cell.ratio_mean);
    EXPECT_LE(cell.ratio_min, cell.ratio_max);
  }
}

TEST(Sweep, GenerousTimeoutSkipsNothing) {
  SweepSpec spec = small_spec();
  spec.threads = 2;
  spec.timeout_ms = 60000.0;
  const SweepResult result = run_sweep(spec);
  for (const auto& task : result.tasks)
    EXPECT_EQ(task.status, TaskStatus::kOk) << "task " << task.index;
}

TEST(Sweep, RejectsUnknownNames) {
  SweepSpec bad_policy = small_spec();
  bad_policy.policies = {"no-such-policy"};
  EXPECT_THROW(run_sweep(bad_policy), std::invalid_argument);

  SweepSpec bad_tree = small_spec();
  bad_tree.trees = {"no-such-tree"};
  EXPECT_THROW(run_sweep(bad_tree), std::invalid_argument);

  SweepSpec no_reps = small_spec();
  no_reps.seeds = 0;
  EXPECT_THROW(run_sweep(no_reps), std::invalid_argument);
}

TEST(Sweep, RecordDirWritesIndexSuffixedLogsPerTask) {
  const std::string dir = testing::TempDir() + "/sweep_record";
  std::filesystem::remove_all(dir);

  SweepSpec spec;
  spec.policies = {"paper"};
  spec.trees = {"star-2x3"};
  spec.eps_grid = {0.5};
  spec.seeds = 3;
  spec.jobs = 30;
  spec.threads = 2;
  spec.record_dir = dir;
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.tasks.size(), 3u);

  for (const auto& task : result.tasks) {
    const std::string trace = sim::task_log_path(dir + "/trace.txt", task.index);
    const std::string log = sim::task_log_path(dir + "/run.log", task.index);
    EXPECT_TRUE(std::filesystem::exists(trace)) << trace;
    EXPECT_TRUE(std::filesystem::exists(log)) << log;
    EXPECT_GT(std::filesystem::file_size(log), 0u) << log;
  }
  // The suffix keeps concurrent tasks from clobbering a shared file name.
  EXPECT_TRUE(std::filesystem::exists(dir + "/run.task000002.log"));
}

TEST(Sweep, TimingBlockIsOptIn) {
  SweepSpec spec = small_spec();
  spec.threads = 1;
  const SweepResult result = run_sweep(spec);
  EXPECT_EQ(sweep_json(result, false).find("\"timing\""), std::string::npos);
  EXPECT_NE(sweep_json(result, true).find("\"timing\""), std::string::npos);
}

}  // namespace
}  // namespace treesched::exec
