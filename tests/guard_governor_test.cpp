// Governor unit tests: the staged degradation ladder as a pure function of
// the pressure-sample sequence — exactly one stage per sustained breach,
// cooldown samples between rungs, any armed ceiling can fire, and the
// ladder never walks past abort.
#include <gtest/gtest.h>

#include "treesched/guard/config.hpp"
#include "treesched/guard/governor.hpp"

namespace treesched {
namespace {

using guard::Governor;
using guard::Pressure;
using guard::Stage;

Pressure pressure(std::uint64_t rss, std::size_t queue, std::size_t arena) {
  Pressure p;
  p.rss_bytes = rss;
  p.event_queue = queue;
  p.arena = arena;
  return p;
}

TEST(GuardGovernor, DisabledNeverEscalates) {
  Governor gov(guard::GovernorConfig{});  // all ceilings 0 = unchecked
  EXPECT_FALSE(gov.config().enabled());
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(gov.observe(pressure(1u << 30, 1u << 20, 1u << 20)));
  EXPECT_EQ(gov.stage(), Stage::kNormal);
}

TEST(GuardGovernor, BreachedChecksEachArmedCeiling) {
  guard::GovernorConfig cfg;
  cfg.rss_ceiling_bytes = 1000;
  cfg.queue_ceiling = 50;
  Governor gov(cfg);
  EXPECT_FALSE(gov.breached(pressure(999, 49, 1u << 20)));  // arena unchecked
  EXPECT_TRUE(gov.breached(pressure(1000, 0, 0)));  // at the ceiling counts
  EXPECT_TRUE(gov.breached(pressure(0, 50, 0)));
}

TEST(GuardGovernor, OneStagePerBreachWithCooldown) {
  guard::GovernorConfig cfg;
  cfg.arena_ceiling = 100;
  cfg.cooldown_samples = 3;
  Governor gov(cfg);

  const Pressure hot = pressure(0, 0, 100);
  // The very first breaching sample fires (cooldown is primed empty).
  ASSERT_TRUE(gov.observe(hot));
  EXPECT_EQ(gov.stage(), Stage::kStreamingMetrics);
  // The next cooldown_samples samples are swallowed even under pressure.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(gov.observe(hot));
  ASSERT_TRUE(gov.observe(hot));
  EXPECT_EQ(gov.stage(), Stage::kShrunkWindow);
}

TEST(GuardGovernor, PressureRelievedStopsTheLadder) {
  guard::GovernorConfig cfg;
  cfg.arena_ceiling = 100;
  cfg.cooldown_samples = 2;
  Governor gov(cfg);
  ASSERT_TRUE(gov.observe(pressure(0, 0, 150)));
  EXPECT_FALSE(gov.observe(pressure(0, 0, 150)));  // cooldown
  EXPECT_FALSE(gov.observe(pressure(0, 0, 150)));  // cooldown
  // The mitigation bit: pressure is back under the ceiling, no more rungs.
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(gov.observe(pressure(0, 0, 99)));
  EXPECT_EQ(gov.stage(), Stage::kStreamingMetrics);
  // Pressure returns -> the ladder resumes where it stood.
  ASSERT_TRUE(gov.observe(pressure(0, 0, 100)));
  EXPECT_EQ(gov.stage(), Stage::kShrunkWindow);
}

TEST(GuardGovernor, WalksTheFullLadderInOrderAndStopsAtAbort) {
  guard::GovernorConfig cfg;
  cfg.rss_ceiling_bytes = 1;
  cfg.cooldown_samples = 0;
  Governor gov(cfg);
  const Pressure hot = pressure(2, 0, 0);
  EXPECT_EQ(gov.observe(hot), Stage::kStreamingMetrics);
  EXPECT_EQ(gov.observe(hot), Stage::kShrunkWindow);
  EXPECT_EQ(gov.observe(hot), Stage::kTightenedShed);
  EXPECT_EQ(gov.observe(hot), Stage::kAbort);
  // Past abort there is nothing left to do; observe() goes quiet.
  EXPECT_FALSE(gov.observe(hot));
  EXPECT_EQ(gov.stage(), Stage::kAbort);
}

TEST(GuardGovernor, StageNamesRoundTrip) {
  for (const Stage s :
       {Stage::kNormal, Stage::kStreamingMetrics, Stage::kShrunkWindow,
        Stage::kTightenedShed, Stage::kAbort})
    EXPECT_EQ(guard::parse_stage(guard::stage_name(s)), s);
  EXPECT_THROW(guard::parse_stage("molten"), std::invalid_argument);
}

}  // namespace
}  // namespace treesched
