// Edge cases for the from-scratch C++ lexer behind treesched_lint. The
// linter's no-false-positive story rests on these: banned names inside
// string literals, comments, raw strings, or `#if 0` regions must come out
// of the lexer as non-code tokens (or not at all).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "treesched/util/lexer.hpp"

using treesched::util::LexedFile;
using treesched::util::TokKind;
using treesched::util::Token;
using treesched::util::lex;

namespace {

std::vector<std::string> texts_of(const LexedFile& f, TokKind kind) {
  std::vector<std::string> out;
  for (const Token& t : f.tokens)
    if (t.kind == kind) out.push_back(t.text);
  return out;
}

bool has_code_ident(const LexedFile& f, const std::string& name) {
  for (const Token& t : f.tokens)
    if (t.kind == TokKind::kIdentifier && t.text == name) return true;
  return false;
}

TEST(Lexer, BannedNameInsideStringLiteralIsNotCode) {
  const auto f =
      lex(R"x(const char* s = "call rand() and time(0)";)x", "x.cpp");
  EXPECT_FALSE(has_code_ident(f, "rand"));
  EXPECT_FALSE(has_code_ident(f, "time"));
  const auto strs = texts_of(f, TokKind::kString);
  ASSERT_EQ(strs.size(), 1u);
  EXPECT_EQ(strs[0], "call rand() and time(0)");
}

TEST(Lexer, BannedNameInsideCommentIsNotCode) {
  const auto f = lex("// rand() is banned\nint x; /* time(0) too */", "x.cpp");
  EXPECT_FALSE(has_code_ident(f, "rand"));
  EXPECT_FALSE(has_code_ident(f, "time"));
  EXPECT_TRUE(has_code_ident(f, "x"));
  EXPECT_EQ(texts_of(f, TokKind::kComment).size(), 2u);
}

TEST(Lexer, RawStringBodyIsOneStringToken) {
  const auto f =
      lex("auto s = R\"(rand() \" unbalanced)\";\nint after;", "x.cpp");
  EXPECT_FALSE(has_code_ident(f, "rand"));
  EXPECT_TRUE(has_code_ident(f, "after"));
  const auto strs = texts_of(f, TokKind::kString);
  ASSERT_EQ(strs.size(), 1u);
  EXPECT_EQ(strs[0], "rand() \" unbalanced");
}

TEST(Lexer, RawStringWithCustomDelimiter) {
  const auto f =
      lex("auto s = R\"ab(text with )\" inside)ab\";\nint after;", "x.cpp");
  const auto strs = texts_of(f, TokKind::kString);
  ASSERT_EQ(strs.size(), 1u);
  EXPECT_EQ(strs[0], "text with )\" inside");
  EXPECT_TRUE(has_code_ident(f, "after"));
}

TEST(Lexer, EncodingPrefixedStringsAndRawCombos) {
  const auto f = lex(
      "auto a = u8\"rand()\"; auto b = L\"x\"; auto c = LR\"(time(0))\";",
      "x.cpp");
  EXPECT_FALSE(has_code_ident(f, "rand"));
  EXPECT_FALSE(has_code_ident(f, "time"));
  EXPECT_EQ(texts_of(f, TokKind::kString).size(), 3u);
  // The prefix letters must not leak out as identifiers either.
  EXPECT_FALSE(has_code_ident(f, "u8"));
  EXPECT_FALSE(has_code_ident(f, "L"));
  EXPECT_FALSE(has_code_ident(f, "LR"));
}

TEST(Lexer, MultiLineBlockCommentTracksLines) {
  const auto f = lex("/* line1\nline2\nline3 */\nint x;", "x.cpp");
  const auto comments = texts_of(f, TokKind::kComment);
  ASSERT_EQ(comments.size(), 1u);
  EXPECT_NE(comments[0].find("line2"), std::string::npos);
  for (const Token& t : f.tokens) {
    if (t.kind == TokKind::kIdentifier && t.text == "x") {
      EXPECT_EQ(t.line, 4);
    }
  }
}

TEST(Lexer, IfZeroRegionDropsCode) {
  const auto f = lex(
      "int keep1;\n#if 0\nint dropped = rand();\n#endif\nint keep2;\n",
      "x.cpp");
  EXPECT_TRUE(has_code_ident(f, "keep1"));
  EXPECT_TRUE(has_code_ident(f, "keep2"));
  EXPECT_FALSE(has_code_ident(f, "dropped"));
  EXPECT_FALSE(has_code_ident(f, "rand"));
}

TEST(Lexer, IfZeroHandlesNestingAndElse) {
  const auto f = lex(
      "#if 0\n#ifdef FOO\nint inner;\n#endif\nint dead;\n#else\nint live;\n"
      "#endif\n",
      "x.cpp");
  EXPECT_FALSE(has_code_ident(f, "inner"));
  EXPECT_FALSE(has_code_ident(f, "dead"));
  EXPECT_TRUE(has_code_ident(f, "live"));
}

TEST(Lexer, IfOneIsNotDisabled) {
  const auto f = lex("#if 1\nint live;\n#endif\n", "x.cpp");
  EXPECT_TRUE(has_code_ident(f, "live"));
}

TEST(Lexer, DirectiveWithLineContinuation) {
  const auto f = lex("#define M(a) \\\n  ((a) + 1)\nint x;\n", "x.cpp");
  const auto dirs = texts_of(f, TokKind::kDirective);
  ASSERT_EQ(dirs.size(), 1u);
  EXPECT_EQ(dirs[0].substr(0, 6), "define");
  for (const Token& t : f.tokens) {
    if (t.kind == TokKind::kIdentifier && t.text == "x") {
      EXPECT_EQ(t.line, 3);
    }
  }
}

TEST(Lexer, HashMidLineIsNotADirective) {
  const auto f = lex("int a = 1\n#if 0\n#endif\nx # y;\n", "x.cpp");
  // '#' after code on the same line stays a punctuator.
  bool saw_hash_punct = false;
  for (const Token& t : f.tokens)
    if (t.kind == TokKind::kPunct && t.text == "#") saw_hash_punct = true;
  EXPECT_TRUE(saw_hash_punct);
}

TEST(Lexer, MaximalMunchPunctuators) {
  const auto f = lex("a += b; c <<= d; e->f; g >> h; i++;", "x.cpp");
  const auto puncts = texts_of(f, TokKind::kPunct);
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "+="), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "<<="), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "->"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), ">>"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "++"), puncts.end());
}

TEST(Lexer, PpNumbersWithExponentsAndSeparators) {
  const auto f = lex("double x = 1.5e-3 + 0x1Fp+2 + 1'000'000;", "x.cpp");
  const auto nums = texts_of(f, TokKind::kNumber);
  ASSERT_EQ(nums.size(), 3u);
  EXPECT_EQ(nums[0], "1.5e-3");
  EXPECT_EQ(nums[1], "0x1Fp+2");
  EXPECT_EQ(nums[2], "1'000'000");
}

TEST(Lexer, CharLiteralWithEscapes) {
  const auto f = lex(R"(char c = '\''; char d = '\\';)", "x.cpp");
  const auto chars = texts_of(f, TokKind::kChar);
  ASSERT_EQ(chars.size(), 2u);
  EXPECT_EQ(chars[0], "\\'");
  EXPECT_EQ(chars[1], "\\\\");
}

TEST(Lexer, UnterminatedStringClosesAtNewline) {
  const auto f = lex("auto s = \"no close\nint next;\n", "x.cpp");
  EXPECT_TRUE(has_code_ident(f, "next"));
  const auto strs = texts_of(f, TokKind::kString);
  ASSERT_EQ(strs.size(), 1u);
  EXPECT_EQ(strs[0], "no close");
}

TEST(Lexer, LineAndColumnPositions) {
  const auto f = lex("int a;\n  double b;\n", "x.cpp");
  for (const Token& t : f.tokens) {
    if (t.kind != TokKind::kIdentifier) continue;
    if (t.text == "a") {
      EXPECT_EQ(t.line, 1);
      EXPECT_EQ(t.col, 5);
    }
    if (t.text == "b") {
      EXPECT_EQ(t.line, 2);
      EXPECT_EQ(t.col, 10);
    }
  }
}

TEST(Lexer, TrailingCommentAfterDirectiveIsLexed) {
  const auto f =
      lex("#pragma once  // treesched-lint: marker here\nint x;\n", "x.hpp");
  ASSERT_EQ(texts_of(f, TokKind::kComment).size(), 1u);
  const auto dirs = texts_of(f, TokKind::kDirective);
  ASSERT_EQ(dirs.size(), 1u);
  EXPECT_EQ(dirs[0], "pragma once");
}

}  // namespace
