// End-to-end integration: workload -> policy -> engine -> validation ->
// lower bounds, across the public API exactly as a downstream user would
// drive it.
#include <gtest/gtest.h>

#include "treesched/treesched.hpp"

namespace treesched {
namespace {

TEST(Integration, EveryPolicyCompletesAndValidates) {
  const Tree tree = builders::figure1_tree();
  util::Rng rng(101);
  workload::WorkloadSpec spec;
  spec.jobs = 100;
  spec.load = 0.8;
  const Instance inst = workload::generate(rng, tree, spec);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.5);

  for (const char* name : {"paper", "closest", "random", "round-robin",
                           "least-volume", "least-count",
                           "broomstick-mirror"}) {
    auto policy = algo::make_policy(name, inst, 0.5, 7);
    sim::EngineConfig cfg;
    cfg.record_schedule = true;
    sim::Engine engine(inst, speeds, cfg);
    engine.run(*policy);
    EXPECT_TRUE(engine.metrics().all_completed()) << name;
    const auto res = sim::validate_schedule(inst, speeds, cfg,
                                            engine.recorder(),
                                            engine.metrics());
    EXPECT_TRUE(res.ok) << name << ": " << res.summary();
    // Sanity: the bound certifies the speed-1 adversary, and uniformly
    // speeding every node by s shrinks any schedule's flow by at most s, so
    // the valid invariant at speed 1.5 is ALG * 1.5 >= LB (the unscaled
    // comparison can legitimately fail — augmented ALG may beat speed-1 OPT).
    EXPECT_GE(engine.metrics().total_flow_time() * 1.5 + 1e-9,
              lp::combined_lower_bound(inst));
  }
}

TEST(Integration, PaperPolicyStaysWithinModestFactorOfLowerBound) {
  const Tree tree = builders::fat_tree(2, 2, 2);
  util::Rng rng(55);
  workload::WorkloadSpec spec;
  spec.jobs = 300;
  spec.load = 0.7;
  spec.sizes.class_eps = 0.5;
  const Instance inst = workload::generate(rng, tree, spec);
  const auto r = experiments::measure_ratio(
      inst, SpeedProfile::paper_identical(inst.tree(), 0.5), "paper", 0.5);
  // With speed augmentation the algorithm may legitimately beat the
  // speed-1 lower bound, so ratios below 1 are fine — just not absurd ones.
  EXPECT_GT(r.ratio, 0.0);
  EXPECT_LT(r.ratio, 50.0) << "suspiciously bad competitive ratio";
}

TEST(Integration, MaxFlowAndNormMetricsAreConsistent) {
  const Tree tree = builders::star_of_paths(2, 2);
  util::Rng rng(42);
  workload::WorkloadSpec spec;
  spec.jobs = 120;
  const Instance inst = workload::generate(rng, tree, spec);
  algo::PaperGreedyPolicy policy(0.5);
  sim::Engine engine(inst, SpeedProfile::uniform(inst.tree(), 1.3));
  engine.run(policy);
  const auto& m = engine.metrics();
  EXPECT_GE(m.max_flow_time(), m.mean_flow_time());
  // l_1 norm equals the total, l_inf-ish (large k) approaches the max.
  EXPECT_NEAR(m.lk_norm_flow_time(1.0), m.total_flow_time(), 1e-6);
  EXPECT_LE(m.lk_norm_flow_time(8.0), m.total_flow_time() + 1e-6);
  EXPECT_GE(m.lk_norm_flow_time(8.0), m.max_flow_time() - 1e-6);
  EXPECT_GE(m.makespan(), m.max_flow_time());
}

TEST(Integration, TraceRoundTripReproducesRun) {
  const Tree tree = builders::caterpillar(2, 2, 2);
  util::Rng rng(9);
  workload::WorkloadSpec spec;
  spec.jobs = 60;
  const Instance inst = workload::generate(rng, tree, spec);

  const std::string path = testing::TempDir() + "/treesched_trace.txt";
  workload::write_trace_file(path, inst);
  const Instance back = workload::read_trace_file(path);

  const SpeedProfile s1 = SpeedProfile::uniform(inst.tree(), 1.2);
  const SpeedProfile s2 = SpeedProfile::uniform(back.tree(), 1.2);
  const auto a = algo::run_named_policy(inst, s1, "paper", 0.5);
  const auto b = algo::run_named_policy(back, s2, "paper", 0.5);
  EXPECT_DOUBLE_EQ(a.total_flow, b.total_flow);
  EXPECT_DOUBLE_EQ(a.fractional_flow, b.fractional_flow);
}

TEST(Integration, QuickstartSnippetFromUmbrellaHeader) {
  // Mirrors the documented quickstart to keep the docs honest.
  Tree tree = builders::star_of_paths(2, 3);
  util::Rng rng(42);
  workload::WorkloadSpec spec;
  Instance inst = workload::generate(rng, tree, spec);
  algo::PaperGreedyPolicy policy(0.5);
  sim::Engine engine(inst, SpeedProfile::uniform(inst.tree(), 1.5));
  engine.run(policy);
  EXPECT_GT(engine.metrics().total_flow_time(), 0.0);
}

TEST(Integration, StandardTreesAllRunnable) {
  for (const auto& [name, tree] : experiments::standard_trees()) {
    util::Rng rng(5);
    workload::WorkloadSpec spec;
    spec.jobs = 40;
    const Instance inst = workload::generate(rng, tree, spec);
    const auto r = algo::run_named_policy(
        inst, SpeedProfile::uniform(inst.tree(), 1.5), "paper", 0.5);
    EXPECT_GT(r.total_flow, 0.0) << name;
    EXPECT_TRUE(r.metrics.all_completed()) << name;
  }
}

}  // namespace
}  // namespace treesched
