// Workload generation: arrivals, sizes, unrelated models, traces, gadgets.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "treesched/core/tree_builders.hpp"
#include "treesched/util/class_rounding.hpp"
#include "treesched/workload/adversarial.hpp"
#include "treesched/workload/arrivals.hpp"
#include "treesched/workload/generator.hpp"
#include "treesched/workload/sizes.hpp"
#include "treesched/workload/trace_io.hpp"
#include "treesched/workload/unrelated.hpp"

namespace treesched::workload {
namespace {

TEST(Arrivals, PoissonIsSortedAndRateIsClose) {
  util::Rng rng(1);
  const auto t = poisson_arrivals(rng, 20000, 4.0);
  ASSERT_EQ(t.size(), 20000u);
  for (std::size_t i = 1; i < t.size(); ++i) ASSERT_GE(t[i], t[i - 1]);
  EXPECT_NEAR(t.size() / t.back(), 4.0, 0.2);
}

TEST(Arrivals, DeterministicSpacing) {
  const auto t = deterministic_arrivals(5, 2.0);
  ASSERT_EQ(t.size(), 5u);
  EXPECT_DOUBLE_EQ(t[0], 2.0);
  EXPECT_DOUBLE_EQ(t[4], 10.0);
}

TEST(Arrivals, MmppProducesSortedArrivals) {
  util::Rng rng(2);
  const auto t = mmpp_arrivals(rng, 5000, 1.0, 10.0, 0.1);
  ASSERT_EQ(t.size(), 5000u);
  for (std::size_t i = 1; i < t.size(); ++i) ASSERT_GE(t[i], t[i - 1]);
}

TEST(Arrivals, BatchedClusters) {
  util::Rng rng(3);
  const auto t = batched_arrivals(rng, 100, 10, 50.0, 1e-3);
  ASSERT_EQ(t.size(), 100u);
  // Jobs within a batch are 1e-3 apart: count tight gaps.
  int tight = 0;
  for (std::size_t i = 1; i < t.size(); ++i)
    if (t[i] - t[i - 1] < 0.01) ++tight;
  EXPECT_GE(tight, 80);  // 9 tight gaps per 10-job batch
}

TEST(Arrivals, DiurnalModulatesIntensity) {
  util::Rng rng(14);
  const double period = 1000.0;
  const auto t = diurnal_arrivals(rng, 20000, 1.0, 0.8, period);
  ASSERT_EQ(t.size(), 20000u);
  for (std::size_t i = 1; i < t.size(); ++i) ASSERT_GE(t[i], t[i - 1]);
  // Count arrivals in the rising half vs falling half of each period:
  // sin > 0 on [0, p/2), < 0 on [p/2, p). High amplitude => strong skew.
  std::size_t up = 0, down = 0;
  for (const Time x : t) {
    const double phase = std::fmod(x, period) / period;
    (phase < 0.5 ? up : down) += 1;
  }
  EXPECT_GT(static_cast<double>(up) / down, 1.8);
}

TEST(Arrivals, DiurnalValidation) {
  util::Rng rng(15);
  EXPECT_THROW(diurnal_arrivals(rng, 10, 1.0, 1.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(diurnal_arrivals(rng, 10, 0.0, 0.5, 10.0),
               std::invalid_argument);
}

TEST(Arrivals, RateForLoad) {
  // rho = lambda * E[p] / |R|  =>  lambda = rho |R| / E[p].
  EXPECT_DOUBLE_EQ(arrival_rate_for_load(4, 2.0, 0.5), 1.0);
}

TEST(Sizes, FixedAndBounds) {
  util::Rng rng(4);
  SizeSpec spec;
  spec.dist = SizeDistribution::kFixed;
  spec.scale = 3.0;
  for (double p : draw_sizes(rng, 50, spec)) EXPECT_DOUBLE_EQ(p, 3.0);

  spec.dist = SizeDistribution::kUniform;
  spec.scale = 2.0;
  spec.spread = 8.0;
  for (double p : draw_sizes(rng, 500, spec)) {
    EXPECT_GE(p, 2.0);
    EXPECT_LE(p, 16.0);
  }
}

TEST(Sizes, BimodalTakesTwoValues) {
  util::Rng rng(5);
  SizeSpec spec;
  spec.dist = SizeDistribution::kBimodal;
  spec.scale = 1.0;
  spec.spread = 16.0;
  spec.mix = 0.25;
  int big = 0;
  const auto sizes = draw_sizes(rng, 2000, spec);
  for (double p : sizes) {
    ASSERT_TRUE(p == 1.0 || p == 16.0);
    big += (p == 16.0);
  }
  EXPECT_NEAR(big / 2000.0, 0.25, 0.05);
}

TEST(Sizes, ClassRoundingProducesClassSizes) {
  util::Rng rng(6);
  SizeSpec spec;
  spec.dist = SizeDistribution::kBoundedPareto;
  spec.class_eps = 0.5;
  for (double p : draw_sizes(rng, 300, spec)) {
    const auto k = util::size_class(p, 0.5);
    EXPECT_NEAR(p, util::class_size(k, 0.5), 1e-9 * p);
  }
}

TEST(Sizes, MeanEstimatesAreReasonable) {
  util::Rng rng(7);
  for (auto dist : {SizeDistribution::kFixed, SizeDistribution::kUniform,
                    SizeDistribution::kExponential,
                    SizeDistribution::kBoundedPareto,
                    SizeDistribution::kBimodal}) {
    SizeSpec spec;
    spec.dist = dist;
    spec.scale = 2.0;
    double sum = 0.0;
    const int n = 40000;
    for (double p : draw_sizes(rng, n, spec)) sum += p;
    const double empirical = sum / n;
    EXPECT_NEAR(empirical / spec.mean(), 1.0, 0.1)
        << "distribution " << spec.name();
  }
}

TEST(Unrelated, RelatedModelIsConsistentPerLeaf) {
  const Tree tree = builders::fat_tree(2, 1, 2);
  util::Rng rng(8);
  UnrelatedSpec spec;
  spec.model = UnrelatedModel::kRelated;
  UnrelatedGenerator gen(tree, spec, rng);
  const auto a = gen.leaf_sizes(rng, 4.0);
  const auto b = gen.leaf_sizes(rng, 8.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(b[i] / a[i], 2.0, 1e-9);  // fixed speed per leaf
}

TEST(Unrelated, AffinityHasOneFastSubtree) {
  const Tree tree = builders::star_of_paths(3, 2);
  util::Rng rng(9);
  UnrelatedSpec spec;
  spec.model = UnrelatedModel::kAffinity;
  spec.spread = 8.0;
  UnrelatedGenerator gen(tree, spec, rng);
  const auto sizes = gen.leaf_sizes(rng, 2.0);
  int fast = 0, slow = 0;
  for (double p : sizes) {
    if (p == 2.0) ++fast;
    else if (p == 16.0) ++slow;
  }
  EXPECT_EQ(fast, 1);  // one leaf per branch here
  EXPECT_EQ(slow, 2);
}

TEST(Unrelated, RestrictedAlwaysHasAFeasibleLeaf) {
  const Tree tree = builders::fat_tree(2, 1, 4);
  util::Rng rng(10);
  UnrelatedSpec spec;
  spec.model = UnrelatedModel::kRestricted;
  spec.feasible_fraction = 0.05;  // likely all-infeasible draws
  UnrelatedGenerator gen(tree, spec, rng);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sizes = gen.leaf_sizes(rng, 1.0);
    EXPECT_NE(std::count(sizes.begin(), sizes.end(), 1.0), 0);
  }
}

TEST(Generator, ProducesValidInstancesForAllArrivalKinds) {
  const Tree tree = builders::fat_tree(2, 1, 2);
  for (auto kind : {ArrivalProcess::kPoisson, ArrivalProcess::kDeterministic,
                    ArrivalProcess::kMmpp, ArrivalProcess::kBatched,
                    ArrivalProcess::kDiurnal}) {
    util::Rng rng(11);
    WorkloadSpec spec;
    spec.jobs = 50;
    spec.arrivals = kind;
    const Instance inst = generate(rng, tree, spec);
    EXPECT_EQ(inst.job_count(), 50);
  }
}

TEST(TraceIo, RoundTripsIdenticalInstance) {
  util::Rng rng(12);
  WorkloadSpec spec;
  spec.jobs = 25;
  const Instance inst = generate(rng, builders::figure1_tree(), spec);
  std::stringstream ss;
  write_trace(ss, inst);
  const Instance back = read_trace(ss);
  ASSERT_EQ(back.job_count(), inst.job_count());
  EXPECT_EQ(back.tree().node_count(), inst.tree().node_count());
  for (JobId j = 0; j < inst.job_count(); ++j) {
    EXPECT_DOUBLE_EQ(back.job(j).release, inst.job(j).release);
    EXPECT_DOUBLE_EQ(back.job(j).size, inst.job(j).size);
  }
}

TEST(TraceIo, RoundTripsUnrelatedInstance) {
  util::Rng rng(13);
  WorkloadSpec spec;
  spec.jobs = 10;
  spec.endpoints = EndpointModel::kUnrelated;
  const Instance inst = generate(rng, builders::star_of_paths(2, 1), spec);
  std::stringstream ss;
  write_trace(ss, inst);
  const Instance back = read_trace(ss);
  for (JobId j = 0; j < inst.job_count(); ++j)
    EXPECT_EQ(back.job(j).leaf_sizes, inst.job(j).leaf_sizes);
}

TEST(TraceIo, RejectsMalformedInput) {
  {
    std::stringstream ss("model identical\n");
    EXPECT_THROW(read_trace(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("tree 2\nnode 0 -1 root\nnode 1 0 router\nbogus\n");
    EXPECT_THROW(read_trace(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("tree 1\nnode 0 -1 alien\nmodel identical\n");
    EXPECT_THROW(read_trace(ss), std::invalid_argument);
  }
}

TEST(Adversarial, GadgetsProduceValidInstances) {
  EXPECT_GT(congestion_trap(10).job_count(), 0);
  EXPECT_GT(size_mixer(5).job_count(), 0);
  EXPECT_GT(class_cascade(4, 3, 0.5).job_count(), 0);
  EXPECT_GT(unrelated_trap(8).job_count(), 0);
  EXPECT_EQ(unrelated_trap(8).model(), EndpointModel::kUnrelated);
}

}  // namespace
}  // namespace treesched::workload
