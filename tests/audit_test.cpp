// treesched_audit core: run-log round-trip, clean runs pass, and every
// seeded corruption is detected with a diagnostic naming the culprit.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "treesched/core/tree_builders.hpp"
#include "treesched/sim/audit.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/run_log.hpp"

namespace treesched {
namespace {

using sim::AuditOptions;
using sim::AuditReport;
using sim::EngineConfig;
using sim::RunLog;
using sim::Segment;

struct Baseline {
  Instance inst;
  SpeedProfile speeds;
  EngineConfig cfg;
  RunLog log;
};

Baseline make_baseline(double chunk_size = 0.0) {
  Instance inst(builders::star_of_paths(2, 2),
                {Job(0, 0.0, 2.0), Job(1, 1.0, 1.0), Job(2, 1.5, 3.0)},
                EndpointModel::kIdentical);
  SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  EngineConfig cfg;
  cfg.record_schedule = true;
  cfg.router_chunk_size = chunk_size;
  sim::Engine eng(inst, speeds, cfg);
  const auto& leaves = inst.tree().leaves();
  eng.run_with_assignment({leaves[0], leaves[0], leaves[1]});
  RunLog log =
      sim::make_run_log(inst, speeds, cfg, eng.recorder(), eng.metrics());
  return Baseline{std::move(inst), std::move(speeds), cfg, std::move(log)};
}

bool any_violation_contains(const AuditReport& rep, const std::string& needle) {
  for (const auto& v : rep.violations)
    if (v.find(needle) != std::string::npos) return true;
  return false;
}

TEST(RunLog, RoundTripIsExact) {
  Baseline b = make_baseline();
  std::stringstream ss;
  sim::write_run_log(ss, b.log);
  const RunLog back = sim::read_run_log(ss);
  EXPECT_EQ(back.node_policy, b.log.node_policy);
  EXPECT_EQ(back.router_chunk_size, b.log.router_chunk_size);
  EXPECT_EQ(back.speeds, b.log.speeds);
  EXPECT_EQ(back.paths, b.log.paths);
  EXPECT_EQ(back.completion, b.log.completion);
  ASSERT_EQ(back.segments.size(), b.log.segments.size());
  for (std::size_t i = 0; i < back.segments.size(); ++i) {
    EXPECT_EQ(back.segments[i].node, b.log.segments[i].node);
    EXPECT_EQ(back.segments[i].job, b.log.segments[i].job);
    EXPECT_EQ(back.segments[i].chunk, b.log.segments[i].chunk);
    // Bit-exact doubles: the writer uses full precision.
    EXPECT_EQ(back.segments[i].t0, b.log.segments[i].t0);
    EXPECT_EQ(back.segments[i].t1, b.log.segments[i].t1);
    EXPECT_EQ(back.segments[i].rate, b.log.segments[i].rate);
  }
}

TEST(RunLog, RejectsMalformedInput) {
  {
    std::istringstream ss("job 0 1.0 1 2\n");  // body before header
    EXPECT_THROW(sim::read_run_log(ss), std::invalid_argument);
  }
  {
    std::istringstream ss("runlog 2\n");  // unknown version
    EXPECT_THROW(sim::read_run_log(ss), std::invalid_argument);
  }
  {
    std::istringstream ss("runlog 1\nfrobnicate 3\n");  // unknown tag
    EXPECT_THROW(sim::read_run_log(ss), std::invalid_argument);
  }
  {
    std::istringstream ss("runlog 1\nseg 0 0 0 1.0\n");  // truncated seg
    EXPECT_THROW(sim::read_run_log(ss), std::invalid_argument);
  }
  {
    std::istringstream ss("");  // empty
    EXPECT_THROW(sim::read_run_log(ss), std::invalid_argument);
  }
}

TEST(Audit, AcceptsGenuineRun) {
  Baseline b = make_baseline();
  const AuditReport rep = sim::audit_run(b.inst, b.log);
  EXPECT_TRUE(rep.ok) << rep.summary();
  EXPECT_EQ(rep.jobs_checked, 3u);
  EXPECT_GT(rep.segments_checked, 0u);
}

TEST(Audit, AcceptsChunkedRun) {
  Baseline b = make_baseline(/*chunk_size=*/0.75);
  const AuditReport rep = sim::audit_run(b.inst, b.log);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST(Audit, DetectsPrecedenceViolation) {
  Baseline b = make_baseline();
  const NodeId leaf = b.inst.tree().leaves()[0];
  for (Segment& s : b.log.segments)
    if (s.node == leaf && s.job == 0) {
      const double len = s.t1 - s.t0;
      s.t0 = 0.0;
      s.t1 = len;
    }
  const AuditReport rep = sim::audit_run(b.inst, b.log);
  ASSERT_FALSE(rep.ok);
  EXPECT_TRUE(any_violation_contains(rep, "precedence violated"))
      << rep.summary();
  EXPECT_TRUE(any_violation_contains(rep, "job 0")) << rep.summary();
  EXPECT_TRUE(any_violation_contains(rep, "node " + std::to_string(leaf)))
      << rep.summary();
}

TEST(Audit, DetectsUnitCapacityViolation) {
  Baseline b = make_baseline();
  b.log.segments.push_back(b.log.segments.front());
  const AuditReport rep = sim::audit_run(b.inst, b.log);
  ASSERT_FALSE(rep.ok);
  EXPECT_TRUE(any_violation_contains(rep, "unit capacity violated on node"))
      << rep.summary();
}

TEST(Audit, DetectsOffPathWork) {
  Baseline b = make_baseline();
  // Retarget one of job 0's router bursts to the other branch's router.
  const NodeId r0 = b.inst.tree().root_children()[0];
  const NodeId r1 = b.inst.tree().root_children()[1];
  for (Segment& s : b.log.segments)
    if (s.job == 0 && s.node == r0) {
      s.node = r1;
      break;
    }
  const AuditReport rep = sim::audit_run(b.inst, b.log);
  ASSERT_FALSE(rep.ok);
  EXPECT_TRUE(any_violation_contains(rep, "not on its assigned path"))
      << rep.summary();
}

TEST(Audit, DetectsWrongClaimedCompletion) {
  Baseline b = make_baseline();
  b.log.completion[0] += 1.0;
  const AuditReport rep = sim::audit_run(b.inst, b.log);
  ASSERT_FALSE(rep.ok);
  EXPECT_TRUE(any_violation_contains(rep, "claimed completion"))
      << rep.summary();
}

TEST(Audit, DetectsWrongRate) {
  Baseline b = make_baseline();
  b.log.segments.front().rate *= 2.0;
  const AuditReport rep = sim::audit_run(b.inst, b.log);
  ASSERT_FALSE(rep.ok);
  EXPECT_TRUE(any_violation_contains(rep, "rate")) << rep.summary();
}

TEST(Audit, DetectsJobCountMismatch) {
  Baseline b = make_baseline();
  b.log.paths.pop_back();
  b.log.completion.pop_back();
  const AuditReport rep = sim::audit_run(b.inst, b.log);
  ASSERT_FALSE(rep.ok);
  EXPECT_TRUE(any_violation_contains(rep, "covers")) << rep.summary();
}

TEST(Audit, DetectsSjfPriorityInversion) {
  // Hand-crafted feasible schedule that runs the LONG job first under SJF:
  // every feasibility check passes, only the discipline is wrong.
  Instance inst(builders::star_of_paths(1, 1),
                {Job(0, 0.0, 2.0), Job(1, 0.0, 1.0)},
                EndpointModel::kIdentical);
  const NodeId r = inst.tree().root_children()[0];
  const NodeId l = inst.tree().leaves()[0];
  RunLog log;
  log.node_policy = sim::NodePolicy::kSjf;
  log.speeds.assign(uidx(inst.tree().node_count()), 1.0);
  log.paths = {{r, l}, {r, l}};
  log.completion = {4.0, 5.0};
  log.segments = {
      {r, 0, 0, 0.0, 2.0, 1.0},
      {r, 1, 0, 2.0, 3.0, 1.0},
      {l, 0, sim::kLeafChunk, 2.0, 4.0, 1.0},
      {l, 1, sim::kLeafChunk, 4.0, 5.0, 1.0},
  };
  const AuditReport rep = sim::audit_run(inst, log);
  ASSERT_FALSE(rep.ok);
  EXPECT_TRUE(any_violation_contains(rep, "SJF priority violated"))
      << rep.summary();
  EXPECT_TRUE(any_violation_contains(rep, "job 1")) << rep.summary();

  // The same schedule is a perfectly legal FIFO run (job 0 queued first).
  log.node_policy = sim::NodePolicy::kFifo;
  const AuditReport fifo_rep = sim::audit_run(inst, log);
  EXPECT_TRUE(fifo_rep.ok) << fifo_rep.summary();
}

TEST(Audit, SrptSkipsPriorityCheckWithNote) {
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  EngineConfig cfg;
  cfg.record_schedule = true;
  cfg.node_policy = sim::NodePolicy::kSrpt;
  sim::Engine eng(inst, speeds, cfg);
  eng.run_with_assignment({inst.tree().leaves()[0]});
  const RunLog log =
      sim::make_run_log(inst, speeds, cfg, eng.recorder(), eng.metrics());
  const AuditReport rep = sim::audit_run(inst, log);
  EXPECT_TRUE(rep.ok) << rep.summary();
  ASSERT_EQ(rep.notes.size(), 1u);
  EXPECT_NE(rep.notes[0].find("SRPT"), std::string::npos);
}

TEST(Audit, LemmaMarginsComputed) {
  Baseline b = make_baseline();
  AuditOptions opts;
  opts.eps = 0.5;
  const AuditReport rep = sim::audit_run(b.inst, b.log, opts);
  EXPECT_TRUE(rep.ok) << rep.summary();
  ASSERT_EQ(rep.lemma_rows.size(), 3u);
  // star_of_paths(2, 2): the second router on each branch and the leaf are
  // non-root-adjacent, so every job has an eligible lemma 2 node.
  for (const auto& row : rep.lemma_rows) {
    EXPECT_GE(row.lemma2_ratio, 0.0);
    EXPECT_NE(row.lemma2_node, kInvalidNode);
    EXPECT_GE(row.wait_ratio, 0.0);
  }
  EXPECT_GT(rep.lemma2_max_ratio, 0.0);
  EXPECT_FALSE(rep.lemma_table().empty());
}

TEST(Audit, StrictLemmasFlagsBlownBounds) {
  // With an absurdly large eps the bounds shrink below any real schedule's
  // margins, so --strict-lemmas must flag them.
  Baseline b = make_baseline();
  AuditOptions opts;
  opts.eps = 1000.0;
  opts.strict_lemmas = true;
  const AuditReport rep = sim::audit_run(b.inst, b.log, opts);
  ASSERT_FALSE(rep.ok);
  EXPECT_TRUE(any_violation_contains(rep, "lemma 2") ||
              any_violation_contains(rep, "interior-wait"))
      << rep.summary();
}

TEST(Audit, LemmaTableEmptyWithoutEps) {
  Baseline b = make_baseline();
  const AuditReport rep = sim::audit_run(b.inst, b.log);
  EXPECT_TRUE(rep.lemma_rows.empty());
  EXPECT_TRUE(rep.lemma_table().empty());
}

}  // namespace
}  // namespace treesched
