// The validator must reject corrupted schedules — these tests corrupt a
// genuine recorded run in targeted ways and assert the right error fires.
#include <gtest/gtest.h>

#include "treesched/core/tree_builders.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/validator.hpp"

namespace treesched {
namespace {

using sim::EngineConfig;
using sim::ScheduleRecorder;
using sim::Segment;

struct Baseline {
  Instance inst;
  SpeedProfile speeds;
  EngineConfig cfg;
  ScheduleRecorder recorder;
  sim::Metrics metrics;
};

Baseline make_baseline() {
  Instance inst(builders::star_of_paths(1, 1),
                {Job(0, 0.0, 2.0), Job(1, 1.0, 1.0)},
                EndpointModel::kIdentical);
  SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  EngineConfig cfg;
  cfg.record_schedule = true;
  sim::Engine eng(inst, speeds, cfg);
  const NodeId leaf = inst.tree().leaves()[0];
  eng.run_with_assignment({leaf, leaf});
  Baseline b{std::move(inst), std::move(speeds), cfg, eng.recorder(),
             eng.metrics()};
  return b;
}

TEST(Validator, AcceptsGenuineSchedule) {
  Baseline b = make_baseline();
  const auto res =
      sim::validate_schedule(b.inst, b.speeds, b.cfg, b.recorder, b.metrics);
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST(Validator, DetectsOverlap) {
  Baseline b = make_baseline();
  ScheduleRecorder bad;
  for (Segment s : b.recorder.segments()) bad.add(s);
  // Duplicate the first segment: the node now works on two items at once.
  bad.add(b.recorder.segments().front());
  const auto res =
      sim::validate_schedule(b.inst, b.speeds, b.cfg, bad, b.metrics);
  EXPECT_FALSE(res.ok);
}

TEST(Validator, DetectsMissingWork) {
  Baseline b = make_baseline();
  ScheduleRecorder bad;
  const auto& segs = b.recorder.segments();
  for (std::size_t i = 0; i + 1 < segs.size(); ++i) bad.add(segs[i]);
  const auto res =
      sim::validate_schedule(b.inst, b.speeds, b.cfg, bad, b.metrics);
  EXPECT_FALSE(res.ok);
}

TEST(Validator, DetectsWrongRate) {
  Baseline b = make_baseline();
  ScheduleRecorder bad;
  for (Segment s : b.recorder.segments()) {
    s.rate *= 2.0;
    bad.add(s);
  }
  const auto res =
      sim::validate_schedule(b.inst, b.speeds, b.cfg, bad, b.metrics);
  EXPECT_FALSE(res.ok);
}

TEST(Validator, DetectsPrecedenceViolation) {
  Baseline b = make_baseline();
  ScheduleRecorder bad;
  const NodeId leaf = b.inst.tree().leaves()[0];
  for (Segment s : b.recorder.segments()) {
    // Shift all leaf work of job 0 to start at time 0 — before the router
    // delivered its data.
    if (s.node == leaf && s.job == 0) {
      const double len = s.t1 - s.t0;
      s.t0 = 0.0;
      s.t1 = len;
    }
    bad.add(s);
  }
  const auto res =
      sim::validate_schedule(b.inst, b.speeds, b.cfg, bad, b.metrics);
  EXPECT_FALSE(res.ok);
}

TEST(Validator, DetectsWrongClaimedCompletion) {
  Baseline b = make_baseline();
  sim::Metrics bad = b.metrics;
  bad.job(0).completion += 1.0;
  const auto res =
      sim::validate_schedule(b.inst, b.speeds, b.cfg, b.recorder, bad);
  EXPECT_FALSE(res.ok);
}

TEST(Validator, DetectsRunBeforeRelease) {
  Baseline b = make_baseline();
  ScheduleRecorder bad;
  const NodeId router = b.inst.tree().root_children()[0];
  for (Segment s : b.recorder.segments()) {
    // Move job 1's router burst to before its release at t=1.
    if (s.node == router && s.job == 1) {
      const double len = s.t1 - s.t0;
      s.t0 = 0.25;
      s.t1 = 0.25 + len;
    }
    bad.add(s);
  }
  const auto res =
      sim::validate_schedule(b.inst, b.speeds, b.cfg, bad, b.metrics);
  EXPECT_FALSE(res.ok);
}

TEST(Validator, DetectsUnfinishedJob) {
  Baseline b = make_baseline();
  sim::Metrics bad = b.metrics;
  bad.job(1).completion = -1.0;
  const auto res =
      sim::validate_schedule(b.inst, b.speeds, b.cfg, b.recorder, bad);
  EXPECT_FALSE(res.ok);
}

bool any_error_contains(const sim::ValidationResult& res,
                        const std::string& needle) {
  for (const auto& e : res.errors)
    if (e.find(needle) != std::string::npos) return true;
  return false;
}

TEST(Validator, PrecedenceErrorNamesJobAndNode) {
  Baseline b = make_baseline();
  ScheduleRecorder bad;
  const NodeId leaf = b.inst.tree().leaves()[0];
  for (Segment s : b.recorder.segments()) {
    if (s.node == leaf && s.job == 0) {
      const double len = s.t1 - s.t0;
      s.t0 = 0.0;
      s.t1 = len;
    }
    bad.add(s);
  }
  const auto res =
      sim::validate_schedule(b.inst, b.speeds, b.cfg, bad, b.metrics);
  ASSERT_FALSE(res.ok);
  EXPECT_TRUE(any_error_contains(res, "job 0")) << res.summary();
  EXPECT_TRUE(any_error_contains(res, "node " + std::to_string(leaf)))
      << res.summary();
  EXPECT_TRUE(any_error_contains(res, "before data arrival")) << res.summary();
}

TEST(Validator, UnitCapacityErrorNamesJobsAndNode) {
  Baseline b = make_baseline();
  ScheduleRecorder bad;
  for (Segment s : b.recorder.segments()) bad.add(s);
  // Run job 1 on the router while job 0's burst is still in progress there.
  const NodeId router = b.inst.tree().root_children()[0];
  Segment clash;
  bool found = false;
  for (const Segment& s : b.recorder.segments())
    if (s.node == router && s.job == 0) {
      clash = s;
      found = true;
      break;
    }
  ASSERT_TRUE(found);
  clash.job = 1;
  bad.add(clash);
  const auto res =
      sim::validate_schedule(b.inst, b.speeds, b.cfg, bad, b.metrics);
  ASSERT_FALSE(res.ok);
  EXPECT_TRUE(
      any_error_contains(res, "node " + std::to_string(router) + " overlaps"))
      << res.summary();
  EXPECT_TRUE(any_error_contains(res, "job 0")) << res.summary();
  EXPECT_TRUE(any_error_contains(res, "job 1")) << res.summary();
}

TEST(Validator, ChunkedScheduleValidates) {
  Instance inst(builders::star_of_paths(1, 3), {Job(0, 0.0, 3.0)},
                EndpointModel::kIdentical);
  SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  EngineConfig cfg;
  cfg.record_schedule = true;
  cfg.router_chunk_size = 1.0;
  sim::Engine eng(inst, speeds, cfg);
  eng.run_with_assignment({inst.tree().leaves()[0]});
  const auto res = sim::validate_schedule(inst, speeds, cfg, eng.recorder(),
                                          eng.metrics());
  EXPECT_TRUE(res.ok) << res.summary();
}

}  // namespace
}  // namespace treesched
