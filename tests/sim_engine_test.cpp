// Engine semantics against hand-computed schedules.
#include <gtest/gtest.h>

#include <memory>

#include "treesched/core/tree_builders.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/validator.hpp"

namespace treesched {
namespace {

using sim::Engine;
using sim::EngineConfig;
using sim::NodePolicy;

/// root -> router -> machine.
Instance two_level(std::vector<Job> jobs,
                   EndpointModel model = EndpointModel::kIdentical) {
  return Instance(builders::star_of_paths(1, 1), std::move(jobs), model);
}

TEST(Engine, SingleJobStoreAndForward) {
  // root -> r1 -> r2 -> leaf, size 2: completes 2 + 2 + 2 = 6.
  Instance inst(builders::star_of_paths(1, 2), {Job(0, 0.0, 2.0)},
                EndpointModel::kIdentical);
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.run_with_assignment({inst.tree().leaves()[0]});
  const auto& rec = eng.metrics().job(0);
  EXPECT_DOUBLE_EQ(rec.completion, 6.0);
  EXPECT_DOUBLE_EQ(rec.flow(), 6.0);
  ASSERT_EQ(rec.node_completion.size(), 3u);
  EXPECT_DOUBLE_EQ(rec.node_completion[0], 2.0);
  EXPECT_DOUBLE_EQ(rec.node_completion[1], 4.0);
  EXPECT_DOUBLE_EQ(rec.node_completion[2], 6.0);
  // Fractional: fraction 1 during [0,4), then linear drain over [4,6].
  EXPECT_NEAR(rec.fractional_area, 4.0 + 2.0 * 0.5, 1e-9);
}

TEST(Engine, SpeedScalesCompletionTimes) {
  Instance inst(builders::star_of_paths(1, 2), {Job(0, 0.0, 2.0)},
                EndpointModel::kIdentical);
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 2.0));
  eng.run_with_assignment({inst.tree().leaves()[0]});
  EXPECT_DOUBLE_EQ(eng.metrics().job(0).completion, 3.0);
}

TEST(Engine, SjfPreemptionTwoJobs) {
  Instance inst = two_level({Job(0, 0.0, 4.0), Job(1, 1.0, 1.0)});
  const NodeId leaf = inst.tree().leaves()[0];
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.run_with_assignment({leaf, leaf});
  // Router: j0 [0,1) preempted, j1 [1,2), j0 resumes [2,5).
  // Leaf: j1 [2,3), j0 [5,9).
  EXPECT_DOUBLE_EQ(eng.metrics().job(1).completion, 3.0);
  EXPECT_DOUBLE_EQ(eng.metrics().job(0).completion, 9.0);
  EXPECT_DOUBLE_EQ(eng.metrics().total_flow_time(), 9.0 + 2.0);
  // Fractional totals: j0 = 5 + 4*0.5 = 7, j1 = 1 + 0.5 = 1.5.
  EXPECT_NEAR(eng.metrics().total_fractional_flow_time(), 8.5, 1e-9);
}

TEST(Engine, SjfTieBreaksByRelease) {
  Instance inst = two_level({Job(0, 0.0, 2.0), Job(1, 0.5, 2.0)});
  const NodeId leaf = inst.tree().leaves()[0];
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.run_with_assignment({leaf, leaf});
  // Equal sizes: the earlier job never gets preempted.
  EXPECT_DOUBLE_EQ(eng.metrics().job(0).node_completion[0], 2.0);
  EXPECT_DOUBLE_EQ(eng.metrics().job(1).node_completion[0], 4.0);
}

TEST(Engine, FifoDoesNotPreempt) {
  Instance inst = two_level({Job(0, 0.0, 4.0), Job(1, 1.0, 1.0)});
  const NodeId leaf = inst.tree().leaves()[0];
  EngineConfig cfg;
  cfg.node_policy = NodePolicy::kFifo;
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  eng.run_with_assignment({leaf, leaf});
  EXPECT_DOUBLE_EQ(eng.metrics().job(0).completion, 8.0);
  EXPECT_DOUBLE_EQ(eng.metrics().job(1).completion, 9.0);
}

TEST(Engine, SrptDiffersFromSjfNearCompletion) {
  // At t=3 j0 has 1 unit left; SJF preempts for the size-2 arrival, SRPT
  // does not.
  std::vector<Job> jobs{Job(0, 0.0, 4.0), Job(1, 3.0, 2.0)};
  const auto run = [&](NodePolicy p) {
    Instance inst = two_level(jobs);
    const NodeId leaf = inst.tree().leaves()[0];
    EngineConfig cfg;
    cfg.node_policy = p;
    Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
    eng.run_with_assignment({leaf, leaf});
    return std::pair<double, double>{eng.metrics().job(0).completion,
                                     eng.metrics().job(1).completion};
  };
  const auto [sjf0, sjf1] = run(NodePolicy::kSjf);
  EXPECT_DOUBLE_EQ(sjf1, 7.0);
  EXPECT_DOUBLE_EQ(sjf0, 11.0);
  const auto [srpt0, srpt1] = run(NodePolicy::kSrpt);
  EXPECT_DOUBLE_EQ(srpt0, 8.0);
  EXPECT_DOUBLE_EQ(srpt1, 10.0);
}

TEST(Engine, UnrelatedLeafSizes) {
  Tree tree = builders::star_of_paths(2, 1);
  // Leaf 0 is slow for the job, leaf 1 fast.
  std::vector<Job> jobs{Job(0, 0.0, 1.0, {5.0, 2.0})};
  Instance inst(std::move(tree), std::move(jobs), EndpointModel::kUnrelated);
  const NodeId fast = inst.tree().leaves()[1];
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.run_with_assignment({fast});
  EXPECT_DOUBLE_EQ(eng.metrics().job(0).completion, 1.0 + 2.0);
}

TEST(Engine, PipelinedRoutingOverlapsHops) {
  // Size 2 in unit chunks over r1 -> r2 -> leaf: r1 [0,1),[1,2);
  // r2 [1,2),[2,3); leaf starts at 3 once all data arrived, ends at 5.
  Instance inst(builders::star_of_paths(1, 2), {Job(0, 0.0, 2.0)},
                EndpointModel::kIdentical);
  EngineConfig cfg;
  cfg.router_chunk_size = 1.0;
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  eng.run_with_assignment({inst.tree().leaves()[0]});
  const auto& rec = eng.metrics().job(0);
  EXPECT_DOUBLE_EQ(rec.node_completion[0], 2.0);
  EXPECT_DOUBLE_EQ(rec.node_completion[1], 3.0);
  EXPECT_DOUBLE_EQ(rec.completion, 5.0);
}

TEST(Engine, PipelinedNeverSlowerForSingleJob) {
  for (double size : {1.0, 2.5, 7.0}) {
    Instance inst(builders::star_of_paths(1, 4), {Job(0, 0.0, size)},
                  EndpointModel::kIdentical);
    const NodeId leaf = inst.tree().leaves()[0];
    Engine plain(inst, SpeedProfile::uniform(inst.tree(), 1.0));
    plain.run_with_assignment({leaf});
    EngineConfig cfg;
    cfg.router_chunk_size = 0.5;
    Engine piped(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
    piped.run_with_assignment({leaf});
    EXPECT_LE(piped.metrics().job(0).completion,
              plain.metrics().job(0).completion + 1e-9);
  }
}

TEST(Engine, IncrementalDrivingMatchesOfflineRun) {
  Instance inst = two_level({Job(0, 0.0, 4.0), Job(1, 1.0, 1.0)});
  const NodeId leaf = inst.tree().leaves()[0];

  Engine offline(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  offline.run_with_assignment({leaf, leaf});

  Engine online(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  online.admit(0, leaf);
  online.advance_to(0.7);
  EXPECT_NEAR(online.remaining_on(0, inst.tree().path_to(leaf)[0]),
              4.0 - 0.7, 1e-9);
  online.admit(1, leaf);
  online.run_to_completion();
  EXPECT_DOUBLE_EQ(online.metrics().total_flow_time(),
                   offline.metrics().total_flow_time());
}

TEST(Engine, MidRunQueueQueries) {
  Instance inst = two_level({Job(0, 0.0, 4.0), Job(1, 1.0, 1.0)});
  const NodeId leaf = inst.tree().leaves()[0];
  const NodeId router = inst.tree().path_to(leaf)[0];
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.admit(0, leaf);
  eng.advance_to(1.0);
  eng.admit(1, leaf);
  eng.advance_to(1.5);
  // At t=1.5 j1 is running on the router (0.5 left), j0 waits with 3 left.
  EXPECT_EQ(eng.queue_size(router), 2u);
  EXPECT_NEAR(eng.remaining_on(1, router), 0.5, 1e-9);
  EXPECT_NEAR(eng.remaining_on(0, router), 3.0, 1e-9);
  EXPECT_NEAR(eng.remaining_on(0, leaf), 4.0, 1e-9);
  EXPECT_TRUE(eng.available_on(0, router));
  EXPECT_FALSE(eng.available_on(0, leaf));
  EXPECT_EQ(eng.current_path_index(0), 0);
  // Priority helpers: volume ahead of a hypothetical size-2 arrival.
  EXPECT_NEAR(eng.higher_priority_remaining(router, 2.0, 1.5, 99), 0.5, 1e-9);
  EXPECT_EQ(eng.count_larger(router, 2.0), 1);
  EXPECT_NEAR(eng.larger_residual_fraction(router, 2.0), 3.0 / 4.0, 1e-9);
  // Alphas: both jobs still have full leaf fractions.
  EXPECT_NEAR(eng.alpha_root_child(router), 2.0, 1e-9);
  EXPECT_NEAR(eng.alpha_leaf(leaf), 2.0, 1e-9);
  // Conservation of remaining work.
  EXPECT_NEAR(eng.total_remaining_work(), (3.0 + 4.0) + (0.5 + 1.0), 1e-9);
  eng.run_to_completion();
}

TEST(Engine, AdmitValidation) {
  Instance inst = two_level({Job(0, 1.0, 2.0), Job(1, 2.0, 2.0)});
  const NodeId leaf = inst.tree().leaves()[0];
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  EXPECT_THROW(eng.admit(0, inst.tree().root()), std::invalid_argument);
  EXPECT_THROW(eng.admit(5, leaf), std::invalid_argument);
  eng.admit(0, leaf);
  EXPECT_THROW(eng.admit(0, leaf), std::invalid_argument);
  eng.advance_to(5.0);
  EXPECT_THROW(eng.admit(1, leaf), std::invalid_argument);  // in the past
}

TEST(Engine, AdvanceBackwardsRejected) {
  Instance inst = two_level({Job(0, 0.0, 1.0)});
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.advance_to(3.0);
  EXPECT_THROW(eng.advance_to(1.0), std::invalid_argument);
}

TEST(Engine, RunToCompletionRequiresAllAdmitted) {
  Instance inst = two_level({Job(0, 0.0, 1.0)});
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  EXPECT_THROW(eng.run_to_completion(), std::invalid_argument);
}

TEST(Engine, RecordedScheduleValidates) {
  Instance inst = two_level({Job(0, 0.0, 4.0), Job(1, 1.0, 1.0)});
  const NodeId leaf = inst.tree().leaves()[0];
  EngineConfig cfg;
  cfg.record_schedule = true;
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.5);
  Engine eng(inst, speeds, cfg);
  eng.run_with_assignment({leaf, leaf});
  const auto res = sim::validate_schedule(inst, speeds, cfg, eng.recorder(),
                                          eng.metrics());
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST(Engine, LayeredSpeedProfile) {
  Tree tree = builders::star_of_paths(1, 2);
  const SpeedProfile sp = SpeedProfile::paper_identical(tree, 1.0);
  for (const NodeId rc : tree.root_children()) EXPECT_DOUBLE_EQ(sp.speed(rc), 2.0);
  for (const NodeId leaf : tree.leaves()) EXPECT_DOUBLE_EQ(sp.speed(leaf), 4.0);
  const SpeedProfile scaled = sp.scaled(0.5);
  EXPECT_DOUBLE_EQ(scaled.speed(tree.leaves()[0]), 2.0);
}

TEST(Engine, FractionalCountsWaitingBeforeLeafAsOne) {
  // Two jobs on separate branches; no queueing: fractional area for each is
  // router time (fraction 1) + half the leaf time.
  Tree tree = builders::star_of_paths(2, 1);
  Instance inst(std::move(tree), {Job(0, 0.0, 2.0), Job(1, 0.0, 2.0)},
                EndpointModel::kIdentical);
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.run_with_assignment({inst.tree().leaves()[0], inst.tree().leaves()[1]});
  EXPECT_NEAR(eng.metrics().total_fractional_flow_time(), 2.0 * (2.0 + 1.0),
              1e-9);
}

}  // namespace
}  // namespace treesched
