// Overload protection: admission-control policies, Engine::shed invariants,
// shed-record run-log round-trips, audit acceptance/tamper detection, the
// saturation estimator, goodput metrics, and fast/slow-query determinism of
// degraded runs.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "treesched/treesched.hpp"

namespace treesched {
namespace {

sim::EngineConfig shed_cfg(overload::ShedPolicy policy, double cap,
                           double slack = 8.0) {
  sim::EngineConfig cfg;
  cfg.record_schedule = true;
  cfg.shed.policy = policy;
  cfg.shed.queue_cap = cap;
  cfg.shed.deadline_slack = slack;
  return cfg;
}

TEST(ShedConfig, ValidationCatchesBadKnobs) {
  overload::ShedConfig ok;  // none needs nothing
  EXPECT_NO_THROW(overload::validate_shed_config(ok));
  overload::ShedConfig bq;
  bq.policy = overload::ShedPolicy::kBoundedQueue;
  EXPECT_THROW(overload::validate_shed_config(bq), std::invalid_argument);
  bq.queue_cap = 4.0;
  EXPECT_NO_THROW(overload::validate_shed_config(bq));
  overload::ShedConfig lf;
  lf.policy = overload::ShedPolicy::kLargestFirst;
  lf.queue_cap = -1.0;
  EXPECT_THROW(overload::validate_shed_config(lf), std::invalid_argument);
  overload::ShedConfig dl;
  dl.policy = overload::ShedPolicy::kDeadline;
  dl.deadline_slack = 0.0;
  EXPECT_THROW(overload::validate_shed_config(dl), std::invalid_argument);
  EXPECT_THROW(overload::parse_shed_policy("drop-random"),
               std::invalid_argument);
  EXPECT_EQ(overload::parse_shed_policy("largest-first"),
            overload::ShedPolicy::kLargestFirst);
}

TEST(BoundedQueue, RejectsArrivalOverCap) {
  Instance inst(builders::star_of_paths(1, 1),
                {Job(0, 0.0, 4.0), Job(1, 0.0, 4.0)},
                EndpointModel::kIdentical);
  const auto cfg = shed_cfg(overload::ShedPolicy::kBoundedQueue, 5.0);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  overload::AdmissionController ctl(cfg.shed);
  eng.set_admission(&ctl);
  algo::PaperGreedyPolicy policy(0.5);
  eng.run(policy);

  EXPECT_FALSE(eng.job_rejected(0));
  EXPECT_TRUE(eng.job_rejected(1));
  EXPECT_FALSE(eng.job_shed(1));
  // j0 alone: router [0,4], leaf [4,8].
  EXPECT_DOUBLE_EQ(eng.metrics().job(0).completion, 8.0);
  EXPECT_EQ(eng.metrics().rejected_count(), 1u);
  EXPECT_EQ(eng.metrics().shed_count(), 0u);
  EXPECT_DOUBLE_EQ(eng.metrics().shed_volume(), 4.0);
  EXPECT_DOUBLE_EQ(eng.metrics().goodput(), 1.0 / 8.0);

  ASSERT_EQ(eng.shed_log().size(), 1u);
  const sim::ShedRecord& rec = eng.shed_log()[0];
  EXPECT_EQ(rec.kind, sim::ShedRecord::Kind::kReject);
  EXPECT_EQ(rec.job, 1);
  EXPECT_DOUBLE_EQ(rec.t, 0.0);
}

TEST(LargestFirst, EvictsLargestInflightJob) {
  // j0 (size 6) is admitted; when j1 (size 2) arrives at t=1 the backlog is
  // 5 + 2 > cap 6, and j0 is the largest candidate -> j0 is shed, j1 runs
  // on a clean path: router [1,3], leaf [3,5].
  Instance inst(builders::star_of_paths(1, 1),
                {Job(0, 0.0, 6.0), Job(1, 1.0, 2.0)},
                EndpointModel::kIdentical);
  const auto cfg = shed_cfg(overload::ShedPolicy::kLargestFirst, 6.0);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  overload::AdmissionController ctl(cfg.shed);
  eng.set_admission(&ctl);
  algo::PaperGreedyPolicy policy(0.5);
  eng.run(policy);

  EXPECT_TRUE(eng.job_shed(0));
  EXPECT_FALSE(eng.job_rejected(0));
  EXPECT_FALSE(eng.job_shed(1));
  EXPECT_DOUBLE_EQ(eng.metrics().job(1).completion, 5.0);
  EXPECT_LT(eng.metrics().job(0).completion, 0.0);  // never completes
  EXPECT_EQ(eng.metrics().shed_count(), 1u);
  EXPECT_DOUBLE_EQ(eng.metrics().shed_volume(), 6.0);
  EXPECT_DOUBLE_EQ(eng.metrics().goodput(), 1.0 / 5.0);

  ASSERT_EQ(eng.shed_log().size(), 1u);
  EXPECT_EQ(eng.shed_log()[0].kind, sim::ShedRecord::Kind::kShed);
  EXPECT_EQ(eng.shed_log()[0].job, 0);
  EXPECT_DOUBLE_EQ(eng.shed_log()[0].t, 1.0);
}

TEST(LargestFirst, RejectsArrivalWhenItIsLargest) {
  Instance inst(builders::star_of_paths(1, 1),
                {Job(0, 0.0, 2.0), Job(1, 1.0, 10.0)},
                EndpointModel::kIdentical);
  const auto cfg = shed_cfg(overload::ShedPolicy::kLargestFirst, 6.0);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  overload::AdmissionController ctl(cfg.shed);
  eng.set_admission(&ctl);
  algo::PaperGreedyPolicy policy(0.5);
  eng.run(policy);

  EXPECT_TRUE(eng.job_rejected(1));
  EXPECT_FALSE(eng.job_shed(0));
  // j0 is undisturbed: router [0,2], leaf [2,4].
  EXPECT_DOUBLE_EQ(eng.metrics().job(0).completion, 4.0);
}

TEST(Deadline, AdmitsIffLemma4BoundWithinSlack) {
  // Two unit jobs at t=0, slack 1.5: the first sees an empty system
  // (F = p_j <= 1.5), the second queues behind it (F > 1.5) and is rejected.
  Instance inst(builders::star_of_paths(1, 1),
                {Job(0, 0.0, 1.0), Job(1, 0.0, 1.0)},
                EndpointModel::kIdentical);
  const auto cfg = shed_cfg(overload::ShedPolicy::kDeadline, 0.0, 1.5);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  overload::AdmissionController ctl(cfg.shed, 0.5);
  eng.set_admission(&ctl);
  algo::PaperGreedyPolicy policy(0.5);
  eng.run(policy);

  EXPECT_FALSE(eng.job_rejected(0));
  EXPECT_TRUE(eng.job_rejected(1));
  // Every deadline decision carries its evaluated F and the slack*p_j bound.
  ASSERT_EQ(eng.shed_log().size(), 2u);
  const sim::ShedRecord& admit = eng.shed_log()[0];
  const sim::ShedRecord& reject = eng.shed_log()[1];
  EXPECT_EQ(admit.kind, sim::ShedRecord::Kind::kAdmit);
  EXPECT_EQ(admit.job, 0);
  EXPECT_DOUBLE_EQ(admit.bound, 1.5);
  EXPECT_LE(admit.f, admit.bound);
  EXPECT_EQ(reject.kind, sim::ShedRecord::Kind::kReject);
  EXPECT_EQ(reject.job, 1);
  EXPECT_DOUBLE_EQ(reject.bound, 1.5);
  EXPECT_GT(reject.f, reject.bound);
}

TEST(Deadline, GenerousSlackAdmitsEverything) {
  Instance inst(builders::star_of_paths(2, 2),
                {Job(0, 0.0, 1.0), Job(1, 0.0, 2.0), Job(2, 0.5, 1.0)},
                EndpointModel::kIdentical);
  const auto cfg = shed_cfg(overload::ShedPolicy::kDeadline, 0.0, 100.0);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  overload::AdmissionController ctl(cfg.shed, 0.5);
  eng.set_admission(&ctl);
  algo::PaperGreedyPolicy policy(0.5);
  eng.run(policy);
  EXPECT_TRUE(eng.metrics().all_completed());
  EXPECT_EQ(eng.metrics().rejected_count(), 0u);
}

TEST(RunLog, ShedRecordsRoundTripAndAuditPasses) {
  Instance inst(builders::star_of_paths(1, 1),
                {Job(0, 0.0, 6.0), Job(1, 1.0, 2.0)},
                EndpointModel::kIdentical);
  const auto cfg = shed_cfg(overload::ShedPolicy::kLargestFirst, 6.0);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  overload::AdmissionController ctl(cfg.shed);
  eng.set_admission(&ctl);
  algo::PaperGreedyPolicy policy(0.5);
  eng.run(policy);

  const sim::RunLog log = sim::make_run_log(inst, eng);
  std::stringstream ss;
  sim::write_run_log(ss, log);
  const sim::RunLog back = sim::read_run_log(ss);

  EXPECT_EQ(back.shed.policy, overload::ShedPolicy::kLargestFirst);
  EXPECT_DOUBLE_EQ(back.shed.queue_cap, 6.0);
  ASSERT_EQ(back.sheds.size(), log.sheds.size());
  for (std::size_t i = 0; i < back.sheds.size(); ++i) {
    EXPECT_EQ(back.sheds[i].kind, log.sheds[i].kind);
    EXPECT_EQ(back.sheds[i].job, log.sheds[i].job);
    EXPECT_DOUBLE_EQ(back.sheds[i].t, log.sheds[i].t);
    EXPECT_DOUBLE_EQ(back.sheds[i].f, log.sheds[i].f);
    EXPECT_DOUBLE_EQ(back.sheds[i].bound, log.sheds[i].bound);
  }

  const sim::AuditReport rep = sim::audit_run(inst, back);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST(Audit, FlagsShedJobProcessedAfterEviction) {
  Instance inst(builders::star_of_paths(1, 1),
                {Job(0, 0.0, 6.0), Job(1, 1.0, 2.0)},
                EndpointModel::kIdentical);
  const auto cfg = shed_cfg(overload::ShedPolicy::kLargestFirst, 6.0);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  overload::AdmissionController ctl(cfg.shed);
  eng.set_admission(&ctl);
  algo::PaperGreedyPolicy policy(0.5);
  eng.run(policy);
  ASSERT_TRUE(eng.job_shed(0));

  sim::RunLog log = sim::make_run_log(inst, eng);
  ASSERT_TRUE(sim::audit_run(inst, log).ok);

  // Tamper: a burst for the shed job AFTER its shed time must be caught.
  sim::Segment forged;
  forged.node = inst.tree().root_children()[0];
  forged.job = 0;
  forged.t0 = 2.0;
  forged.t1 = 3.0;
  forged.rate = 1.0;
  log.segments.push_back(forged);
  const sim::AuditReport rep = sim::audit_run(inst, log);
  EXPECT_FALSE(rep.ok);
}

TEST(Audit, FlagsRejectedJobWithRecordedPath) {
  Instance inst(builders::star_of_paths(1, 1),
                {Job(0, 0.0, 6.0), Job(1, 1.0, 2.0)},
                EndpointModel::kIdentical);
  const auto cfg = shed_cfg(overload::ShedPolicy::kLargestFirst, 6.0);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  overload::AdmissionController ctl(cfg.shed);
  eng.set_admission(&ctl);
  algo::PaperGreedyPolicy policy(0.5);
  eng.run(policy);

  sim::RunLog log = sim::make_run_log(inst, eng);
  // Tamper: claim the completed job j1 was rejected — it has a recorded
  // path and segments, so the overload rules must refuse the log.
  sim::ShedRecord forged;
  forged.kind = sim::ShedRecord::Kind::kReject;
  forged.t = 1.0;
  forged.job = 1;
  log.sheds.push_back(forged);
  EXPECT_FALSE(sim::audit_run(inst, log).ok);
}

TEST(RunLog, NoShedLinesWithoutShedding) {
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  sim::EngineConfig cfg;
  cfg.record_schedule = true;
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  eng.run_with_assignment({inst.tree().leaves()[0]});
  std::stringstream ss;
  sim::write_run_log(ss, sim::make_run_log(inst, eng));
  const std::string text = ss.str();
  EXPECT_EQ(text.find("shedcfg"), std::string::npos);
  EXPECT_EQ(text.find("shed "), std::string::npos);
}

TEST(Determinism, ShedDecisionsIdenticalAcrossQueryModes) {
  // The shed decision stream must be a pure function of the differential-
  // tested aggregates: fast dispatch indices vs the slow rescanning oracle
  // must produce byte-identical degraded run logs.
  util::Rng rng(7);
  workload::WorkloadSpec spec;
  spec.jobs = 80;
  spec.load = 2.5;  // sustained overload
  const Instance inst =
      workload::generate(rng, builders::star_of_paths(3, 2), spec);

  auto run_mode = [&](bool slow) {
    auto cfg = shed_cfg(overload::ShedPolicy::kLargestFirst, 12.0);
    cfg.slow_queries = slow;
    sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
    overload::AdmissionController ctl(cfg.shed);
    eng.set_admission(&ctl);
    algo::PaperGreedyPolicy policy(0.5);
    eng.run(policy);
    std::stringstream ss;
    sim::write_run_log(ss, sim::make_run_log(inst, eng));
    EXPECT_GT(eng.metrics().shed_count() + eng.metrics().rejected_count(), 0u);
    return ss.str();
  };
  EXPECT_EQ(run_mode(false), run_mode(true));
}

TEST(Estimator, WindowedRhoMatchesOfferedWork) {
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.0, 4.0)},
                EndpointModel::kIdentical);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  overload::SaturationEstimator est(/*window=*/100.0);
  eng.set_observer(&est);
  eng.run_with_assignment({inst.tree().leaves()[0]});
  const NodeId router = inst.tree().root_children()[0];
  // 4 units of work over now()=8 of simulated time at speed 1.
  EXPECT_NEAR(est.rho_hat(eng, router), 0.5, 1e-12);
  EXPECT_NEAR(est.max_root_child_rho(eng), 0.5, 1e-12);
  // Everything drained: no instantaneous backlog left.
  EXPECT_DOUBLE_EQ(overload::SaturationEstimator::root_backlog(eng), 0.0);
}

TEST(Workload, OfferedLoadMatchesRootCutArithmetic) {
  // 3 jobs, 12 volume, releases spanning [0, 4], root cut capacity 2.
  Instance inst(builders::star_of_paths(2, 1),
                {Job(0, 0.0, 4.0), Job(1, 2.0, 4.0), Job(2, 4.0, 4.0)},
                EndpointModel::kIdentical);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  EXPECT_DOUBLE_EQ(workload::offered_load(inst, speeds), 12.0 / (4.0 * 2.0));
  // Degenerate horizon (all releases at 0) => infinite instantaneous load.
  Instance burst(builders::star_of_paths(2, 1),
                 {Job(0, 0.0, 4.0), Job(1, 0.0, 4.0)},
                 EndpointModel::kIdentical);
  EXPECT_TRUE(std::isinf(workload::offered_load(
      burst, SpeedProfile::uniform(burst.tree(), 1.0))));
  Instance empty(builders::star_of_paths(2, 1), {},
                 EndpointModel::kIdentical);
  EXPECT_DOUBLE_EQ(workload::offered_load(
                       empty, SpeedProfile::uniform(empty.tree(), 1.0)),
                   0.0);
}

TEST(Metrics, GoodputAndPercentilesUnderShedding) {
  Instance inst(builders::star_of_paths(1, 1),
                {Job(0, 0.0, 4.0), Job(1, 0.0, 4.0)},
                EndpointModel::kIdentical);
  const auto cfg = shed_cfg(overload::ShedPolicy::kBoundedQueue, 5.0);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  overload::AdmissionController ctl(cfg.shed);
  eng.set_admission(&ctl);
  algo::PaperGreedyPolicy policy(0.5);
  eng.run(policy);

  const sim::Metrics& m = eng.metrics();
  EXPECT_EQ(m.admitted_count(), 1u);
  EXPECT_DOUBLE_EQ(m.mean_flow_time_admitted(), 8.0);
  EXPECT_DOUBLE_EQ(m.flow_percentile(0.99), 8.0);
  EXPECT_DOUBLE_EQ(m.flow_percentile(0.0), 8.0);
  EXPECT_THROW(m.flow_percentile(1.5), std::invalid_argument);
}

TEST(Sweep, ShedDimensionReportsGoodputPerPolicy) {
  exec::SweepSpec spec;
  spec.policies = {"paper"};
  spec.trees = {"star-4x2"};
  spec.eps_grid = {1.0};
  spec.seeds = 2;
  spec.jobs = 60;
  spec.load = 2.0;
  spec.shed_policies = {"none", "largest-first"};
  spec.queue_cap = 10.0;
  spec.threads = 2;
  const exec::SweepResult r = exec::run_sweep(spec);
  ASSERT_EQ(r.cells.size(), 2u);
  ASSERT_EQ(r.tasks.size(), 4u);
  std::size_t none_shed = 0, lf_shed = 0;
  for (const auto& t : r.tasks) {
    if (r.spec.shed_policies[t.shed_i] == "none")
      none_shed += t.shed_jobs;
    else
      lf_shed += t.shed_jobs;
  }
  EXPECT_EQ(none_shed, 0u);
  EXPECT_GT(lf_shed, 0u);  // rho=2 must trigger shedding
  const std::string json = exec::sweep_json(r, /*include_timing=*/false);
  EXPECT_NE(json.find("\"shed_policies\""), std::string::npos);
  EXPECT_NE(json.find("\"goodput\""), std::string::npos);
}

TEST(Sweep, NoShedDimensionKeepsJsonFreeOfOverloadKeys) {
  exec::SweepSpec spec;
  spec.policies = {"paper"};
  spec.trees = {"star-4x2"};
  spec.eps_grid = {1.0};
  spec.seeds = 1;
  spec.jobs = 30;
  const exec::SweepResult r = exec::run_sweep(spec);
  const std::string json = exec::sweep_json(r, /*include_timing=*/false);
  EXPECT_EQ(json.find("shed"), std::string::npos);
  EXPECT_EQ(json.find("goodput"), std::string::npos);
}

}  // namespace
}  // namespace treesched
