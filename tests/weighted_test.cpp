// Weighted flow time extension: HDF node discipline and weighted metrics.
#include <gtest/gtest.h>

#include "treesched/core/tree_builders.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched {
namespace {

TEST(Weighted, MetricsWeightCorrectly) {
  Tree tree = builders::star_of_paths(2, 1);
  std::vector<Job> jobs{Job(0, 0.0, 2.0), Job(1, 0.0, 2.0)};
  jobs[0].weight = 3.0;
  Instance inst(std::move(tree), std::move(jobs), EndpointModel::kIdentical);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.run_with_assignment({inst.tree().leaves()[0], inst.tree().leaves()[1]});
  // Separate branches: both complete at 4, flows 4 and 4.
  EXPECT_DOUBLE_EQ(eng.metrics().total_flow_time(), 8.0);
  EXPECT_DOUBLE_EQ(eng.metrics().total_weighted_flow_time(),
                   3.0 * 4.0 + 1.0 * 4.0);
  EXPECT_DOUBLE_EQ(eng.metrics().total_weighted_fractional_flow_time(),
                   3.0 * 3.0 + 1.0 * 3.0);  // area 2 + 2*(1/2)... = 3 each
}

TEST(Weighted, HdfPrefersDenseJobs) {
  // j0: size 4, weight 4 (density 1); j1: size 2, weight 1 (density 2).
  // SJF runs j1 first (smaller size); HDF runs j0 first (denser).
  Tree tree = builders::star_of_paths(1, 1);
  std::vector<Job> jobs{Job(0, 0.0, 4.0), Job(1, 0.0, 2.0)};
  jobs[0].weight = 4.0;
  Instance inst(std::move(tree), std::move(jobs), EndpointModel::kIdentical);
  const NodeId leaf = inst.tree().leaves()[0];

  sim::EngineConfig sjf_cfg;  // default SJF
  sim::Engine sjf(inst, SpeedProfile::uniform(inst.tree(), 1.0), sjf_cfg);
  sjf.run_with_assignment({leaf, leaf});
  EXPECT_LT(sjf.metrics().job(1).completion, sjf.metrics().job(0).completion);

  sim::EngineConfig hdf_cfg;
  hdf_cfg.node_policy = sim::NodePolicy::kHdf;
  sim::Engine hdf(inst, SpeedProfile::uniform(inst.tree(), 1.0), hdf_cfg);
  hdf.run_with_assignment({leaf, leaf});
  EXPECT_LT(hdf.metrics().job(0).completion, hdf.metrics().job(1).completion);

  // And HDF wins on the weighted objective here.
  EXPECT_LT(hdf.metrics().total_weighted_flow_time(),
            sjf.metrics().total_weighted_flow_time());
}

TEST(Weighted, UnitWeightsKeepHdfEqualToSjf) {
  const Tree tree = builders::fat_tree(2, 1, 2);
  util::Rng rng(5);
  workload::WorkloadSpec spec;
  spec.jobs = 60;
  spec.load = 0.9;
  const Instance inst = workload::generate(rng, tree, spec);
  std::vector<NodeId> assign(uidx(inst.job_count()));
  for (JobId j = 0; j < inst.job_count(); ++j)
    assign[uidx(j)] = inst.tree().leaves()[uidx(j) % inst.tree().leaves().size()];

  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.2);
  sim::EngineConfig sjf_cfg;
  sim::Engine sjf(inst, speeds, sjf_cfg);
  sjf.run_with_assignment(assign);
  sim::EngineConfig hdf_cfg;
  hdf_cfg.node_policy = sim::NodePolicy::kHdf;
  sim::Engine hdf(inst, speeds, hdf_cfg);
  hdf.run_with_assignment(assign);
  // With unit weights HDF's key equals SJF's key.
  EXPECT_DOUBLE_EQ(sjf.metrics().total_flow_time(),
                   hdf.metrics().total_flow_time());
}

TEST(Weighted, InstanceRejectsNonPositiveWeight) {
  auto tree = std::make_shared<const Tree>(builders::star_of_paths(1, 1));
  Job j(0, 0.0, 1.0);
  j.weight = 0.0;
  EXPECT_THROW(Instance(tree, {j}, EndpointModel::kIdentical),
               std::invalid_argument);
}

}  // namespace
}  // namespace treesched
