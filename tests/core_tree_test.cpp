// Tree topology: construction, validation, derived structure.
#include <gtest/gtest.h>

#include "treesched/core/tree.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/util/rng.hpp"

namespace treesched {
namespace {

TEST(TreeBuild, StarOfPathsShape) {
  const Tree t = builders::star_of_paths(3, 2);
  // root + 3 * (2 routers + 1 machine)
  EXPECT_EQ(t.node_count(), 10);
  EXPECT_EQ(t.leaves().size(), 3u);
  EXPECT_EQ(t.root_children().size(), 3u);
  for (const NodeId leaf : t.leaves()) {
    EXPECT_EQ(t.depth(leaf), 3);
    EXPECT_EQ(t.d(leaf), 3);
    EXPECT_EQ(t.path_to(leaf).size(), 3u);
    EXPECT_EQ(t.path_to(leaf).front(), t.root_child_of(leaf));
    EXPECT_EQ(t.path_to(leaf).back(), leaf);
  }
}

TEST(TreeBuild, RootChildOfIsIdempotentOnRootChildren) {
  const Tree t = builders::star_of_paths(2, 3);
  for (const NodeId rc : t.root_children()) EXPECT_EQ(t.root_child_of(rc), rc);
}

TEST(TreeBuild, LeafIndexIsDenseBijection) {
  const Tree t = builders::fat_tree(2, 2, 2);
  std::vector<bool> seen(t.leaves().size(), false);
  for (const NodeId leaf : t.leaves()) {
    const int idx = t.leaf_index(leaf);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, static_cast<int>(t.leaves().size()));
    EXPECT_FALSE(seen[uidx(idx)]);
    seen[uidx(idx)] = true;
  }
}

TEST(TreeBuild, LeavesUnderRootChildPartitionAllLeaves) {
  const Tree t = builders::figure1_tree();
  std::size_t total = 0;
  for (const NodeId rc : t.root_children()) {
    const auto leaves = t.leaves_under(rc);
    total += leaves.size();
    for (const NodeId leaf : leaves) EXPECT_EQ(t.root_child_of(leaf), rc);
  }
  EXPECT_EQ(total, t.leaves().size());
}

TEST(TreeBuild, AncestorQueries) {
  const Tree t = builders::star_of_paths(2, 3);
  const NodeId leaf = t.leaves()[0];
  EXPECT_TRUE(t.is_ancestor_or_self(t.root(), leaf));
  EXPECT_TRUE(t.is_ancestor_or_self(leaf, leaf));
  EXPECT_TRUE(t.is_ancestor_or_self(t.root_child_of(leaf), leaf));
  const NodeId other = t.leaves()[1];
  EXPECT_FALSE(t.is_ancestor_or_self(leaf, other));
  EXPECT_FALSE(t.is_ancestor_or_self(t.root_child_of(leaf),
                                     other));
}

TEST(TreeBuild, HeightBelow) {
  const Tree t = builders::star_of_paths(1, 4);
  EXPECT_EQ(t.height_below(t.root()), 5);  // 4 routers + machine
  EXPECT_EQ(t.height_below(t.leaves()[0]), 0);
  EXPECT_EQ(t.max_leaf_depth(), 5);
}

TEST(TreeValidation, RejectsMachineAdjacentToRoot) {
  // root(0) -> machine(1): forbidden by the model.
  EXPECT_THROW(Tree::build({kInvalidNode, 0},
                           {NodeKind::kRoot, NodeKind::kMachine}),
               std::invalid_argument);
}

TEST(TreeValidation, RejectsChildlessRouter) {
  // root -> router (no child).
  EXPECT_THROW(
      Tree::build({kInvalidNode, 0}, {NodeKind::kRoot, NodeKind::kRouter}),
      std::invalid_argument);
}

TEST(TreeValidation, RejectsCycle) {
  // 1 and 2 parent each other; no path to root.
  EXPECT_THROW(Tree::build({kInvalidNode, 2, 1, 0},
                           {NodeKind::kRoot, NodeKind::kRouter,
                            NodeKind::kRouter, NodeKind::kRouter}),
               std::invalid_argument);
}

TEST(TreeValidation, RejectsMultipleRoots) {
  EXPECT_THROW(Tree::build({kInvalidNode, kInvalidNode},
                           {NodeKind::kRoot, NodeKind::kRoot}),
               std::invalid_argument);
}

TEST(TreeValidation, RejectsMachineWithChildren) {
  EXPECT_THROW(Tree::build({kInvalidNode, 0, 1, 2},
                           {NodeKind::kRoot, NodeKind::kRouter,
                            NodeKind::kMachine, NodeKind::kMachine}),
               std::invalid_argument);
}

TEST(TreeBuilders, RandomTreeIsAlwaysValid) {
  util::Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const int routers = static_cast<int>(rng.uniform_int(1, 12));
    const int leaves = static_cast<int>(rng.uniform_int(1, 20));
    const Tree t = builders::random_tree(rng, routers, leaves);
    EXPECT_GE(t.leaves().size(), static_cast<std::size_t>(leaves));
    for (const NodeId leaf : t.leaves()) EXPECT_GE(t.depth(leaf), 2);
  }
}

TEST(TreeBuilders, CaterpillarCounts) {
  const Tree t = builders::caterpillar(2, 3, 2);
  // per branch: 3 spine routers, 6 machines.
  EXPECT_EQ(t.leaves().size(), 12u);
  EXPECT_EQ(t.root_children().size(), 2u);
}

TEST(TreeBuilders, FigureOneTreeMatchesPaperSketch) {
  const Tree t = builders::figure1_tree();
  EXPECT_EQ(t.root_children().size(), 3u);
  EXPECT_EQ(t.leaves().size(), 8u);
  EXPECT_FALSE(t.to_ascii().empty());
}

TEST(TreeBuilders, BroomstickBuilder) {
  const Tree t = builders::broomstick({3, 2}, {{1, 3}, {2}});
  EXPECT_EQ(t.root_children().size(), 2u);
  EXPECT_EQ(t.leaves().size(), 3u);
}

TEST(TreeBuilders, BroomstickBuilderRejectsBadPositions) {
  EXPECT_THROW(builders::broomstick({2}, {{3}}), std::invalid_argument);
}

}  // namespace
}  // namespace treesched
