// The arbitrary-source extension: path computation, engine admission via
// custom paths, and the anycast strategies.
#include <gtest/gtest.h>

#include "treesched/algo/anycast.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/sim/validator.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched {
namespace {

TEST(PathBetween, RootSourceEqualsPathTo) {
  const Tree t = builders::figure1_tree();
  for (const NodeId leaf : t.leaves())
    EXPECT_EQ(t.path_between(t.root(), leaf), t.path_to(leaf));
}

TEST(PathBetween, SourceEqualsTargetLeaf) {
  const Tree t = builders::star_of_paths(2, 2);
  const NodeId leaf = t.leaves()[0];
  const auto path = t.path_between(leaf, leaf);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], leaf);
}

TEST(PathBetween, UpAndDownAcrossTheRoot) {
  // star_of_paths(2, 2): root -> r1 -> r2 -> m3, root -> r4 -> r5 -> m6.
  const Tree t = builders::star_of_paths(2, 2);
  const NodeId src = t.leaves()[0];
  const NodeId dst = t.leaves()[1];
  const auto path = t.path_between(src, dst);
  // Entered nodes: r2, r1, root, r4, r5, m6.
  ASSERT_EQ(path.size(), 6u);
  EXPECT_EQ(path[2], t.root());
  EXPECT_EQ(path.back(), dst);
  EXPECT_EQ(path.front(), t.parent(src));
}

TEST(PathBetween, WithinSubtreeAvoidsTheRoot) {
  const Tree t = builders::figure1_tree();
  // Two leaves under the same root child.
  const NodeId rc = t.root_children()[0];
  const auto leaves = t.leaves_under(rc);
  ASSERT_GE(leaves.size(), 2u);
  const auto path = t.path_between(leaves[0], leaves[1]);
  for (const NodeId v : path) EXPECT_NE(v, t.root());
  EXPECT_EQ(path.back(), leaves[1]);
}

TEST(PathBetween, LcaBasics) {
  const Tree t = builders::star_of_paths(2, 2);
  EXPECT_EQ(t.lca(t.leaves()[0], t.leaves()[1]), t.root());
  EXPECT_EQ(t.lca(t.leaves()[0], t.leaves()[0]), t.leaves()[0]);
  const NodeId rc = t.root_child_of(t.leaves()[0]);
  EXPECT_EQ(t.lca(rc, t.leaves()[0]), rc);
}

TEST(AnycastEngine, LeafBornJobRunsOnlyItsMachine) {
  Instance inst(builders::star_of_paths(2, 2), {Job(0, 0.0, 3.0)},
                EndpointModel::kIdentical);
  const NodeId leaf = inst.tree().leaves()[0];
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.admit_via_path(0, {leaf});
  eng.run_to_completion();
  EXPECT_DOUBLE_EQ(eng.metrics().job(0).completion, 3.0);
}

TEST(AnycastEngine, CrossTreeTransferPaysEveryHop) {
  // Leaf 0 -> leaf 1 across the root: hops r2->r1->root->r4->r5->m6, each
  // processing size 1 at speed 1 => completion 6... wait, entered nodes are
  // r1(parent of src's parent chain)... path has 6 nodes, so completion 6.
  Instance inst(builders::star_of_paths(2, 2), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  const Tree& t = inst.tree();
  sim::Engine eng(inst, SpeedProfile::uniform(t, 1.0));
  eng.admit_via_path(0, t.path_between(t.leaves()[0], t.leaves()[1]));
  eng.run_to_completion();
  EXPECT_DOUBLE_EQ(eng.metrics().job(0).completion, 6.0);
}

TEST(AnycastEngine, RejectsBadPaths) {
  Instance inst(builders::star_of_paths(2, 2),
                {Job(0, 0.0, 1.0), Job(1, 1.0, 1.0), Job(2, 2.0, 1.0)},
                EndpointModel::kIdentical);
  const Tree& t = inst.tree();
  const NodeId rc = t.root_children()[0];
  sim::Engine eng(inst, SpeedProfile::layered(t, 1.0, 1.0));
  // Does not end at a machine.
  EXPECT_THROW(eng.admit_via_path(0, {rc}), std::invalid_argument);
  // Non-adjacent hop.
  EXPECT_THROW(eng.admit_via_path(0, {rc, t.leaves()[1]}),
               std::invalid_argument);
  // Transit root with zero speed (layered profile gives the root 0).
  EXPECT_THROW(
      eng.admit_via_path(0, t.path_between(t.leaves()[0], t.leaves()[1])),
      std::invalid_argument);
}

TEST(AnycastStrategies, ClosestPrefersLocalMachine) {
  const Tree tree = builders::star_of_paths(2, 2);
  std::vector<Job> jobs{Job(0, 0.0, 1.0)};
  jobs[0].source = tree.leaves()[0];  // data already on a machine
  Instance inst(tree, std::move(jobs), EndpointModel::kIdentical);
  const auto m = algo::run_anycast(
      inst, SpeedProfile::uniform(inst.tree(), 1.0),
      algo::AnycastStrategy::kClosest);
  // Stays local: single machine-processing hop.
  EXPECT_DOUBLE_EQ(m.job(0).completion, 1.0);
}

TEST(AnycastStrategies, LeastVolumeEscapesCongestedSourceMachine) {
  // The source *machine* is backlogged (cheap to route, expensive to run —
  // unrelated model), so crossing the tree beats waiting locally. Note the
  // congestion must sit on the leaf, not the routers: an escape path climbs
  // the same routers the local backlog came through.
  const Tree tree = builders::star_of_paths(2, 1);
  std::vector<Job> jobs;
  for (int i = 0; i < 3; ++i)
    jobs.emplace_back(i, 0.01 * i, 0.2, std::vector<double>{20.0, 20.0});
  Job probe(3, 1.0, 0.2, std::vector<double>{1.0, 1.0});
  probe.source = tree.leaves()[0];
  jobs.push_back(probe);
  Instance inst(tree, std::move(jobs), EndpointModel::kUnrelated);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);

  sim::Engine eng(inst, speeds);
  for (int i = 0; i < 3; ++i) {
    eng.advance_to(inst.job(i).release);
    eng.admit(i, inst.tree().leaves()[0]);
  }
  eng.advance_to(1.0);
  const auto path = algo::choose_anycast_path(
      eng, inst.job(3), algo::AnycastStrategy::kLeastVolume);
  EXPECT_EQ(path.back(), inst.tree().leaves()[1]);
  eng.admit_via_path(3, path);
  eng.run_to_completion();
  // Waiting locally would cost ~60 (three 20-unit leaf hogs); crossing
  // costs four cheap hops plus one unit of processing.
  EXPECT_LT(eng.metrics().job(3).flow(), 10.0);
}

TEST(AnycastStrategies, RecordedAnycastScheduleValidates) {
  const Tree tree = builders::fat_tree(2, 1, 2);
  util::Rng rng(31);
  workload::WorkloadSpec spec;
  spec.jobs = 60;
  spec.load = 0.7;
  spec.leaf_source_fraction = 0.6;
  const Instance inst = workload::generate(rng, tree, spec);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.5);
  sim::EngineConfig cfg;
  cfg.record_schedule = true;
  std::vector<std::vector<NodeId>> paths;
  sim::ScheduleRecorder recorder;
  const auto metrics =
      algo::run_anycast(inst, speeds, algo::AnycastStrategy::kGreedy, cfg,
                        &paths, &recorder);
  EXPECT_TRUE(metrics.all_completed());
  const auto res =
      sim::validate_schedule(inst, speeds, cfg, recorder, metrics, paths);
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST(AnycastStrategies, AllStrategiesCompleteRandomWorkloads) {
  const Tree tree = builders::fat_tree(2, 2, 2);
  util::Rng rng(3);
  workload::WorkloadSpec spec;
  spec.jobs = 80;
  spec.load = 0.6;
  Instance base = workload::generate(rng, tree, spec);
  // Scatter sources over machines and routers.
  std::vector<Job> jobs = base.jobs();
  for (Job& j : jobs) {
    const auto& leaves = base.tree().leaves();
    if (j.id % 3 == 0)
      j.source = leaves[uidx(j.id) % leaves.size()];
    else if (j.id % 3 == 1)
      j.source = base.tree().root_children()[0];
  }
  Instance inst(base.tree_ptr(), std::move(jobs), base.model());
  for (const auto strategy :
       {algo::AnycastStrategy::kClosest, algo::AnycastStrategy::kLeastVolume,
        algo::AnycastStrategy::kGreedy}) {
    const auto m = algo::run_anycast(
        inst, SpeedProfile::uniform(inst.tree(), 1.5), strategy);
    EXPECT_TRUE(m.all_completed())
        << algo::anycast_strategy_name(strategy);
  }
}

}  // namespace
}  // namespace treesched
