// The adversarial search harness.
#include <gtest/gtest.h>

#include "treesched/core/tree_builders.hpp"
#include "treesched/lp/adversary_search.hpp"
#include "treesched/lp/lower_bounds.hpp"

namespace treesched {
namespace {

TEST(AdversarySearch, ProducesValidBestInstance) {
  const Tree tree = builders::star_of_paths(2, 1);
  lp::AdversaryOptions opt;
  opt.jobs = 5;
  opt.iterations = 30;
  opt.use_opt_search = false;  // keep the test fast
  const auto found = lp::search_adversarial_instance(
      tree, SpeedProfile::paper_identical(tree, 0.5), 0.5, opt);
  EXPECT_GT(found.best_ratio, 0.0);
  EXPECT_EQ(found.best_jobs.size(), 5u);
  // The instance must reconstruct (ids dense, sizes valid).
  Instance check(tree, found.best_jobs, EndpointModel::kUnrelated);
  EXPECT_EQ(check.job_count(), 5);
}

TEST(AdversarySearch, RatioNeverDecreasesAcrossIterationBudget) {
  const Tree tree = builders::star_of_paths(2, 1);
  lp::AdversaryOptions small, large;
  small.jobs = large.jobs = 5;
  small.iterations = 5;
  large.iterations = 60;
  small.use_opt_search = large.use_opt_search = false;
  small.seed = large.seed = 3;
  const auto a = lp::search_adversarial_instance(
      tree, SpeedProfile::paper_identical(tree, 0.5), 0.5, small);
  const auto b = lp::search_adversarial_instance(
      tree, SpeedProfile::paper_identical(tree, 0.5), 0.5, large);
  EXPECT_GE(b.best_ratio, a.best_ratio - 1e-12);
}

TEST(AdversarySearch, IdenticalModeGeneratesIdenticalInstances) {
  const Tree tree = builders::star_of_paths(2, 1);
  lp::AdversaryOptions opt;
  opt.jobs = 4;
  opt.iterations = 10;
  opt.unrelated = false;
  opt.use_opt_search = false;
  const auto found = lp::search_adversarial_instance(
      tree, SpeedProfile::paper_identical(tree, 0.5), 0.5, opt);
  for (const Job& j : found.best_jobs) EXPECT_TRUE(j.leaf_sizes.empty());
}

TEST(AdversarySearch, OptSearchDenominatorIsConservative) {
  // With the offline-search denominator the reported ratio is at most the
  // LB-based ratio (UB >= LB).
  const Tree tree = builders::star_of_paths(2, 1);
  lp::AdversaryOptions opt;
  opt.jobs = 4;
  opt.iterations = 1;
  opt.seed = 5;
  opt.use_opt_search = true;
  const auto found = lp::search_adversarial_instance(
      tree, SpeedProfile::paper_identical(tree, 0.5), 0.5, opt);
  Instance inst(tree, found.best_jobs, EndpointModel::kUnrelated);
  EXPECT_GE(found.opt_estimate, lp::combined_lower_bound(inst) - 1e-9);
}

TEST(AdversarySearch, ValidatesOptions) {
  const Tree tree = builders::star_of_paths(2, 1);
  lp::AdversaryOptions opt;
  opt.iterations = 0;
  EXPECT_THROW(lp::search_adversarial_instance(
                   tree, SpeedProfile::uniform(tree, 1.0), 0.5, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace treesched
