// The Section 3.3 reduction and the Section 3.7 general-tree algorithm.
#include <gtest/gtest.h>

#include "treesched/algo/broomstick.hpp"
#include "treesched/algo/general_tree.hpp"
#include "treesched/algo/lemma_monitors.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched {
namespace {

TEST(Broomstick, RecognizerAcceptsBuilderOutput) {
  EXPECT_TRUE(algo::is_broomstick(builders::broomstick({2, 4}, {{2}, {2, 4}})));
  EXPECT_TRUE(algo::is_broomstick(builders::star_of_paths(2, 3)));
  // Machines directly below a root child violate Lemma 6's single-child
  // requirement, even though the topology is simulatable.
  EXPECT_FALSE(algo::is_broomstick(builders::broomstick({1, 4}, {{1}, {4}})));
}

TEST(Broomstick, RecognizerRejectsBranchingRouters) {
  EXPECT_FALSE(algo::is_broomstick(builders::fat_tree(2, 2, 1)));
  EXPECT_FALSE(algo::is_broomstick(builders::figure1_tree()));
}

TEST(Broomstick, ReductionDepthsGrowByExactlyTwo) {
  const Tree original = builders::figure1_tree();
  const auto red = algo::BroomstickReduction::reduce(original);
  EXPECT_TRUE(algo::is_broomstick(red.broomstick()));
  EXPECT_EQ(red.broomstick().leaves().size(), original.leaves().size());
  for (const NodeId leaf : original.leaves()) {
    const NodeId image = red.from_original(leaf);
    EXPECT_EQ(red.broomstick().depth(image), original.depth(leaf) + 2);
    EXPECT_EQ(red.to_original(image), leaf);
  }
}

TEST(Broomstick, ReductionPreservesRootChildCount) {
  const Tree original = builders::fat_tree(3, 2, 2);
  const auto red = algo::BroomstickReduction::reduce(original);
  EXPECT_EQ(red.broomstick().root_children().size(),
            original.root_children().size());
}

TEST(Broomstick, ReductionKeepsSubtreeMembership) {
  const Tree original = builders::figure1_tree();
  const auto red = algo::BroomstickReduction::reduce(original);
  // Leaves in the k-th original subtree map into the k-th broom.
  const auto& orig_rcs = original.root_children();
  const auto& broom_rcs = red.broomstick().root_children();
  ASSERT_EQ(orig_rcs.size(), broom_rcs.size());
  for (std::size_t k = 0; k < orig_rcs.size(); ++k) {
    for (const NodeId leaf : original.leaves_under(orig_rcs[k])) {
      const NodeId image = red.from_original(leaf);
      EXPECT_EQ(red.broomstick().root_child_of(image), broom_rcs[k]);
    }
  }
}

TEST(Broomstick, TransformRemapsUnrelatedLeafSizes) {
  const Tree original = builders::figure1_tree();
  const std::size_t L = original.leaves().size();
  std::vector<double> sizes(L);
  for (std::size_t i = 0; i < L; ++i) sizes[i] = 1.0 + static_cast<double>(i);
  Instance inst(original, {Job(0, 0.0, 1.0, sizes)},
                EndpointModel::kUnrelated);
  const auto red = algo::BroomstickReduction::reduce(original);
  const Instance image = red.transform(inst);
  for (const NodeId bleaf : red.broomstick().leaves()) {
    const NodeId oleaf = red.to_original(bleaf);
    EXPECT_DOUBLE_EQ(image.processing_time(0, bleaf),
                     inst.processing_time(0, oleaf));
  }
}

TEST(Broomstick, TransformKeepsIdenticalJobsUntouched) {
  const Tree original = builders::fat_tree(2, 2, 2);
  Instance inst(original, {Job(0, 0.5, 3.0), Job(1, 1.0, 2.0)},
                EndpointModel::kIdentical);
  const auto red = algo::BroomstickReduction::reduce(original);
  const Instance image = red.transform(inst);
  ASSERT_EQ(image.job_count(), inst.job_count());
  for (JobId j = 0; j < inst.job_count(); ++j) {
    EXPECT_DOUBLE_EQ(image.job(j).release, inst.job(j).release);
    EXPECT_DOUBLE_EQ(image.job(j).size, inst.job(j).size);
  }
}

class MirrorDomination
    : public testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MirrorDomination, FlowOnTreeNeverExceedsBroomstick) {
  // Lemma 8: with matching speeds, every job finishes on T no later than on
  // the simulated broomstick T'.
  const auto [tree_id, seed] = GetParam();
  Tree tree = tree_id == 0   ? builders::figure1_tree()
              : tree_id == 1 ? builders::fat_tree(2, 2, 2)
                             : builders::caterpillar(2, 3, 1);
  util::Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.jobs = 80;
  spec.load = 0.8;
  spec.sizes.class_eps = 0.5;
  const Instance inst = workload::generate(rng, tree, spec);

  const double eps = 0.5;
  algo::BroomstickMirrorPolicy mirror(inst, eps);
  sim::Engine engine(inst, SpeedProfile::paper_identical(inst.tree(), eps));
  engine.run(mirror);
  mirror.finish_simulation();

  const auto rep = algo::domination_report(
      engine.metrics(), mirror.broomstick_engine().metrics());
  EXPECT_GT(rep.jobs, 0);
  EXPECT_EQ(rep.violations, 0) << "max excess " << rep.max_excess;
  EXPECT_GE(rep.mean_speedup, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MirrorDomination,
                         testing::Combine(testing::Values(0, 1, 2),
                                          testing::Values(11u, 12u, 13u)));

TEST(Mirror, AssignmentsFollowTheBroomstickChoice) {
  const Tree tree = builders::figure1_tree();
  util::Rng rng(5);
  workload::WorkloadSpec spec;
  spec.jobs = 30;
  const Instance inst = workload::generate(rng, tree, spec);
  algo::BroomstickMirrorPolicy mirror(inst, 0.5);
  sim::Engine engine(inst, SpeedProfile::paper_identical(inst.tree(), 0.5));
  engine.run(mirror);
  mirror.finish_simulation();
  const auto& red = mirror.reduction();
  for (const Job& job : inst.jobs()) {
    const NodeId on_tree = engine.assigned_leaf(job.id);
    const NodeId on_broom =
        mirror.broomstick_engine().assigned_leaf(job.id);
    EXPECT_EQ(on_tree, red.to_original(on_broom));
  }
}

}  // namespace
}  // namespace treesched
