// Deterministic RNG and its distributions.
#include <gtest/gtest.h>

#include <cmath>

#include "treesched/core/types.hpp"
#include "treesched/util/rng.hpp"

namespace treesched::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(7);
  Rng child = a.split();
  // The child stream should not replay the parent stream.
  Rng a2(7);
  a2.split();
  EXPECT_NE(child.next_u64(), a.next_u64());
}

TEST(SplitSeed, IsPureFunctionOfBaseAndIndex) {
  EXPECT_EQ(split_seed(42, 0), split_seed(42, 0));
  EXPECT_EQ(split_seed(42, 1000), split_seed(42, 1000));
  EXPECT_NE(split_seed(42, 0), split_seed(42, 1));
  EXPECT_NE(split_seed(42, 0), split_seed(43, 0));
}

TEST(SplitSeed, MatchesSplitMixStreamSkip) {
  // split_seed(base, i) is defined as the (i+1)-th output of
  // SplitMix64(base); the implementation jumps there in O(1).
  SplitMix64 sm(99);
  for (std::uint64_t i = 0; i < 32; ++i)
    EXPECT_EQ(split_seed(99, i), sm.next()) << "index " << i;
}

TEST(SplitSeed, DerivedStreamsLookIndependent) {
  // Seed sibling generators from consecutive indices and check their
  // outputs don't collide — the cheap sanity bar for stream separation.
  Rng a(split_seed(7, 0)), b(split_seed(7, 1));
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntRespectsBoundsAndCoversRange) {
  Rng r(3);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = r.uniform_int(10, 15);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 15);
    ++seen[uidx(v - 10)];
  }
  for (int c : seen) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng r(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng r(5);
  double sum = 0.0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BoundedParetoStaysInRange) {
  Rng r(6);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.bounded_pareto(1.0, 64.0, 1.5);
    ASSERT_GE(x, 1.0 - 1e-12);
    ASSERT_LE(x, 64.0 + 1e-9);
  }
}

TEST(Rng, BoundedParetoIsHeavyTailed) {
  Rng r(7);
  int small = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.bounded_pareto(1.0, 1000.0, 1.1) < 4.0) ++small;
  // Most mass near the lower bound, but a real tail exists.
  EXPECT_GT(small, n / 2);
  EXPECT_LT(small, n);
}

TEST(Rng, NormalMoments) {
  Rng r(8);
  double sum = 0.0, sq = 0.0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng r(10);
  std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[r.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng r(11);
  std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(r.weighted_index(w), std::invalid_argument);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng r(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto s = v;
  r.shuffle(s);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, v);
}

TEST(Rng, ParameterValidation) {
  Rng r(13);
  EXPECT_THROW(r.uniform_int(5, 4), std::invalid_argument);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(r.bounded_pareto(2.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(r.bernoulli(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace treesched::util
