// Engine failure semantics against hand-computed schedules: crash revert,
// failure-aware re-dispatch, slowdown compositing, link outages — plus
// reproducibility and offline auditability of fault runs.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>

#include "treesched/algo/policies.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/fault/model.hpp"
#include "treesched/fault/plan.hpp"
#include "treesched/sim/audit.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/run_log.hpp"
#include "treesched/util/rng.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched {
namespace {

using fault::FaultKind;
using fault::FaultPlan;
using sim::Engine;
using sim::EngineConfig;

TEST(FaultEngine, RouterCrashRevertsToParentCopy) {
  // root(0) -> r1(1) -> r2(2) -> leaf(3), size 2, unit speeds.
  // Fault-free: r1 [0,2], r2 [2,4], leaf [4,6].
  // r2 crashes at t=3 having done 1 of 2: that partial progress is lost
  // (revert to r1's fully forwarded copy), r2 redoes all 2 units after
  // recovering at t=5 -> r2 [5,7], leaf [7,9].
  Instance inst(builders::star_of_paths(1, 2), {Job(0, 0.0, 2.0)},
                EndpointModel::kIdentical);
  FaultPlan plan;
  plan.events.push_back({3.0, FaultKind::kNodeDown, 2, 1.0});
  plan.events.push_back({5.0, FaultKind::kNodeUp, 2, 1.0});
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.set_fault_plan(&plan);
  eng.run_with_assignment({inst.tree().leaves()[0]});
  EXPECT_DOUBLE_EQ(eng.metrics().job(0).completion, 9.0);
  ASSERT_EQ(eng.fault_log().size(), 2u);
  EXPECT_EQ(eng.fault_log()[0].kind, sim::FaultRecord::Kind::kNodeDown);
}

TEST(FaultEngine, LeafCrashRedispatchesToLiveLeaf) {
  // Two branches: root(0) -> r(1) -> leaf(2) and root -> r(3) -> leaf(4).
  // Job on leaf 4: r3 [0,2], leaf4 starts at 2, crashes at t=3 with 1 unit
  // done. Re-dispatch to leaf 2 shares no path prefix, so the router work
  // restarts: r1 [3,5], leaf2 [5,7].
  Instance inst(builders::star_of_paths(2, 1), {Job(0, 0.0, 2.0)},
                EndpointModel::kIdentical);
  FaultPlan plan;
  plan.events.push_back({3.0, FaultKind::kNodeDown, 4, 1.0});
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.set_fault_plan(&plan);
  eng.run_with_assignment({4});
  EXPECT_DOUBLE_EQ(eng.metrics().job(0).completion, 7.0);
  EXPECT_EQ(eng.assigned_leaf(0), 2);
  // The applied timeline carries the re-dispatch record.
  bool redispatched = false;
  for (const auto& fr : eng.fault_log())
    if (fr.kind == sim::FaultRecord::Kind::kRedispatch) {
      redispatched = true;
      EXPECT_EQ(fr.job, 0);
      EXPECT_EQ(fr.node, 4);
      EXPECT_EQ(fr.to, 2);
    }
  EXPECT_TRUE(redispatched);
}

TEST(FaultEngine, SlowdownScalesAndRecovers) {
  // root(0) -> r(1) -> leaf(2), size 2. Leaf at factor 0.5 from t=0,
  // restored at t=4: router [0,2]; leaf does 1 unit over [2,4] at rate 0.5,
  // the last unit over [4,5] at full speed.
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.0, 2.0)},
                EndpointModel::kIdentical);
  FaultPlan plan;
  plan.events.push_back({0.0, FaultKind::kSlow, 2, 0.5});
  plan.events.push_back({4.0, FaultKind::kSlow, 2, 1.0});
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.set_fault_plan(&plan);
  eng.run_with_assignment({2});
  EXPECT_DOUBLE_EQ(eng.metrics().job(0).completion, 5.0);
}

TEST(FaultEngine, EdgeOutageDefersDelivery) {
  // root(0) -> r(1) -> leaf(2), size 2. Edge into the leaf down over [1,3]:
  // the router finishes at 2 but cannot deliver until 3; leaf [3,5].
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.0, 2.0)},
                EndpointModel::kIdentical);
  FaultPlan plan;
  plan.events.push_back({1.0, FaultKind::kEdgeDown, 2, 1.0});
  plan.events.push_back({3.0, FaultKind::kEdgeUp, 2, 1.0});
  Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.set_fault_plan(&plan);
  eng.run_with_assignment({2});
  EXPECT_DOUBLE_EQ(eng.metrics().job(0).completion, 5.0);
}

TEST(FaultEngine, RejectsLatePlansAndChunkedRouting) {
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.0, 2.0)},
                EndpointModel::kIdentical);
  FaultPlan plan;
  plan.events.push_back({1.0, FaultKind::kSlow, 1, 0.5});

  EngineConfig chunked;
  chunked.router_chunk_size = 1.0;
  Engine eng_chunked(inst, SpeedProfile::uniform(inst.tree(), 1.0), chunked);
  EXPECT_THROW(eng_chunked.set_fault_plan(&plan), std::invalid_argument);

  Engine eng_started(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng_started.admit(0, 2);
  EXPECT_THROW(eng_started.set_fault_plan(&plan), std::invalid_argument);
}

/// A realistic faulty run on a generated workload, driven by the policy +
/// re-dispatch pair treesched_sweep uses.
struct FaultyRun {
  Instance inst;
  FaultPlan plan;
  std::string run_log_text;
  double total_flow = 0.0;
};

FaultyRun faulty_run(std::uint64_t seed) {
  util::Rng rng(seed);
  workload::WorkloadSpec wspec;
  wspec.jobs = 120;
  wspec.load = 0.9;
  auto tree = std::make_shared<const Tree>(builders::caterpillar(2, 2, 2));
  FaultyRun out{workload::generate(rng, tree, wspec), {}, "", 0.0};

  fault::FaultModel model;
  model.node_failure_rate = 0.01;
  model.edge_failure_rate = 0.005;
  model.slow_rate = 0.01;
  model.horizon = 200.0;
  out.plan = fault::generate_plan(*tree, model, util::split_seed(~seed, 1));

  EngineConfig cfg;
  cfg.record_schedule = true;
  algo::FaultAwareGreedy policy(0.5);
  Engine eng(out.inst, SpeedProfile::paper_identical(*tree, 0.5), cfg);
  eng.set_fault_plan(&out.plan, &policy);
  eng.run(policy);
  out.total_flow = eng.metrics().total_flow_time();

  std::ostringstream os;
  sim::write_run_log(os, sim::make_run_log(out.inst, eng));
  out.run_log_text = os.str();
  return out;
}

TEST(FaultEngine, FaultyRunsAreReproducible) {
  const FaultyRun a = faulty_run(11);
  const FaultyRun b = faulty_run(11);
  EXPECT_EQ(a.run_log_text, b.run_log_text);  // byte-identical serialization
  EXPECT_DOUBLE_EQ(a.total_flow, b.total_flow);
  const FaultyRun c = faulty_run(12);
  EXPECT_NE(a.run_log_text, c.run_log_text);
}

TEST(FaultEngine, FaultyRunsPassTheOfflineAudit) {
  const FaultyRun run = faulty_run(21);
  std::istringstream is(run.run_log_text);
  const sim::RunLog log = sim::read_run_log(is);
  EXPECT_FALSE(log.faults.empty());
  const sim::AuditReport report = sim::audit_run(run.inst, log);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(FaultEngine, AuditCatchesTamperedFaultRun) {
  const FaultyRun run = faulty_run(31);
  std::istringstream is(run.run_log_text);
  sim::RunLog log = sim::read_run_log(is);
  ASSERT_FALSE(log.segments.empty());
  log.segments.front().rate *= 2.0;  // claim work faster than the speed
  const sim::AuditReport report = sim::audit_run(run.inst, log);
  EXPECT_FALSE(report.ok);
}

}  // namespace
}  // namespace treesched
