// Edge-case coverage for surfaces the mainline tests exercise only
// implicitly: speed profiles, metrics corners, engine query preconditions,
// gantt windows, opt-search options, trace file errors, harness helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "treesched/treesched.hpp"

namespace treesched {
namespace {

TEST(SpeedProfile, ValidatesShapeAndPositivity) {
  const Tree tree = builders::star_of_paths(1, 1);
  EXPECT_THROW(SpeedProfile(tree, {1.0}), std::invalid_argument);  // size
  EXPECT_THROW(SpeedProfile(tree, {1.0, 0.0, 1.0}),
               std::invalid_argument);  // zero on a router
  // Zero on the root is fine (unused in the base model).
  const SpeedProfile ok(tree, {0.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(ok.speed(2), 2.0);
  EXPECT_THROW(SpeedProfile::uniform(tree, -1.0), std::invalid_argument);
  EXPECT_THROW(ok.scaled(0.0), std::invalid_argument);
}

TEST(Metrics, EmptyAndPartialStates) {
  sim::Metrics m;
  m.reset(2);
  EXPECT_FALSE(m.all_completed());
  EXPECT_EQ(m.completed_count(), 0u);
  EXPECT_DOUBLE_EQ(m.total_flow_time(), 0.0);
  // Completed-job averages of an empty set are NaN by contract (a "0" here
  // would read as "jobs finished instantly" in overload experiments).
  EXPECT_TRUE(std::isnan(m.mean_flow_time()));
  EXPECT_TRUE(std::isnan(m.goodput()));
  EXPECT_DOUBLE_EQ(m.max_flow_time(), 0.0);
  EXPECT_DOUBLE_EQ(m.makespan(), 0.0);
  EXPECT_THROW(m.lk_norm_flow_time(0.5), std::invalid_argument);
  m.job(0).completion = 5.0;
  m.job(0).release = 1.0;
  EXPECT_EQ(m.completed_count(), 1u);
  EXPECT_DOUBLE_EQ(m.total_flow_time(), 4.0);
}

TEST(EngineQueries, RejectUnadmittedJobs) {
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  const NodeId router = inst.tree().root_children()[0];
  EXPECT_THROW(eng.remaining_on(0, router), std::invalid_argument);
  EXPECT_THROW(eng.available_on(0, router), std::invalid_argument);
  EXPECT_THROW(eng.current_path_index(0), std::invalid_argument);
}

TEST(EngineQueries, RejectOffPathNodes) {
  Instance inst(builders::star_of_paths(2, 1), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.admit(0, inst.tree().leaves()[0]);
  const NodeId other_leaf = inst.tree().leaves()[1];
  EXPECT_THROW(eng.remaining_on(0, other_leaf), std::invalid_argument);
}

TEST(Gantt, WindowingClampsToRange) {
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.0, 4.0)},
                EndpointModel::kIdentical);
  sim::EngineConfig cfg;
  cfg.record_schedule = true;
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  eng.run_with_assignment({inst.tree().leaves()[0]});
  sim::GanttOptions opt;
  opt.t_begin = 2.0;
  opt.t_end = 6.0;
  opt.width = 40;
  const std::string g = sim::render_gantt(inst, eng.recorder(), opt);
  EXPECT_NE(g.find("2 .. 6"), std::string::npos);
  sim::GanttOptions bad;
  bad.width = 2;
  EXPECT_THROW(sim::render_gantt(inst, eng.recorder(), bad),
               std::invalid_argument);
}

TEST(OptSearch, ValidatesOptions) {
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  lp::OptSearchOptions opt;
  opt.restarts = 0;
  EXPECT_THROW(lp::search_opt_upper_bound(
                   inst, SpeedProfile::uniform(inst.tree(), 1.0), opt),
               std::invalid_argument);
}

TEST(TraceIo, FileErrorsSurface) {
  EXPECT_THROW(workload::read_trace_file("/nonexistent/trace.txt"),
               std::runtime_error);
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  EXPECT_THROW(workload::write_trace_file("/nonexistent/dir/x.txt", inst),
               std::runtime_error);
}

TEST(TraceIo, PreservesWeightAndSource) {
  Tree tree = builders::star_of_paths(2, 1);
  Job j(0, 0.0, 2.0);
  j.weight = 3.5;
  j.source = tree.leaves()[1];
  Instance inst(std::move(tree), {j}, EndpointModel::kIdentical);
  std::stringstream ss;
  workload::write_trace(ss, inst);
  const Instance back = workload::read_trace(ss);
  EXPECT_DOUBLE_EQ(back.job(0).weight, 3.5);
  EXPECT_EQ(back.job(0).source, inst.tree().leaves()[1]);
}

TEST(Harness, MeasureRatioAndRepeat) {
  util::Rng rng(2);
  workload::WorkloadSpec spec;
  spec.jobs = 30;
  const Instance inst =
      workload::generate(rng, builders::star_of_paths(2, 1), spec);
  const auto r = experiments::measure_ratio(
      inst, SpeedProfile::uniform(inst.tree(), 1.5), "paper", 0.5);
  EXPECT_GT(r.alg_flow, 0.0);
  EXPECT_GT(r.lower_bound, 0.0);
  EXPECT_GT(r.ratio, 0.0);
  const auto reps = experiments::repeat(
      7, 5, [](std::uint64_t s) { return static_cast<double>(s % 10); });
  EXPECT_EQ(reps.size(), 5u);
  EXPECT_FALSE(experiments::epsilon_sweep().empty());
  EXPECT_FALSE(experiments::standard_trees().empty());
}

TEST(Engine, ObserverCallbacksFire) {
  struct Counter : sim::EngineObserver {
    int events = 0, admits = 0, completes = 0;
    void on_event(const sim::Engine&, Time) override { ++events; }
    void on_job_admitted(const sim::Engine&, JobId) override { ++admits; }
    void on_job_completed(const sim::Engine&, JobId) override { ++completes; }
  };
  Instance inst(builders::star_of_paths(1, 1),
                {Job(0, 0.0, 1.0), Job(1, 0.5, 1.0)},
                EndpointModel::kIdentical);
  Counter counter;
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.set_observer(&counter);
  const NodeId leaf = inst.tree().leaves()[0];
  eng.run_with_assignment({leaf, leaf});
  EXPECT_EQ(counter.admits, 2);
  EXPECT_EQ(counter.completes, 2);
  // Each job completes on 2 nodes => at least 4 events.
  EXPECT_GE(counter.events, 4);
}

TEST(Policies, UnrelatedGreedyOnEveryUnrelatedModel) {
  // The paper rule must behave across all leaf-size generators.
  for (const auto model :
       {workload::UnrelatedModel::kUniformFactor,
        workload::UnrelatedModel::kRelated, workload::UnrelatedModel::kAffinity,
        workload::UnrelatedModel::kRestricted}) {
    util::Rng rng(11);
    workload::WorkloadSpec spec;
    spec.jobs = 40;
    spec.endpoints = EndpointModel::kUnrelated;
    spec.unrelated.model = model;
    const Instance inst =
        workload::generate(rng, builders::star_of_paths(2, 2), spec);
    const auto r = algo::run_named_policy(
        inst, SpeedProfile::paper_unrelated(inst.tree(), 0.5), "paper", 0.5);
    EXPECT_TRUE(r.metrics.all_completed());
  }
}

TEST(Broomstick, MirrorWorksOnUnrelatedInstances) {
  util::Rng rng(21);
  workload::WorkloadSpec spec;
  spec.jobs = 50;
  spec.endpoints = EndpointModel::kUnrelated;
  const Instance inst =
      workload::generate(rng, builders::figure1_tree(), spec);
  algo::BroomstickMirrorPolicy mirror(inst, 0.5);
  sim::Engine engine(inst, SpeedProfile::paper_unrelated(inst.tree(), 0.5));
  engine.run(mirror);
  mirror.finish_simulation();
  const auto rep = algo::domination_report(
      engine.metrics(), mirror.broomstick_engine().metrics());
  EXPECT_EQ(rep.violations, 0) << "max excess " << rep.max_excess;
}

}  // namespace
}  // namespace treesched
