// Streaming endurance runner (exec/stream_runner.hpp): window invariance,
// agreement with a monolithic engine over the same arrivals, segmented
// run-log audit (accept / tamper-reject / resume), and the kill-and-resume
// differential in-process.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "treesched/algo/policies.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/exec/stream_runner.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/run_log.hpp"
#include "treesched/sim/runlog_segments.hpp"
#include "treesched/workload/stream.hpp"

using namespace treesched;
namespace fs = std::filesystem;

namespace {

std::shared_ptr<const Tree> test_tree() {
  return std::make_shared<const Tree>(builders::fat_tree(2, 2, 2));
}

exec::StreamRunnerConfig base_config(std::uint64_t jobs, std::size_t window) {
  exec::StreamRunnerConfig cfg;
  cfg.stream.seed = 0x5eed;
  cfg.stream.lambda = 0.35;
  cfg.total_jobs = jobs;
  cfg.window = window;
  cfg.segment_cap = 256;
  return cfg;
}

std::string acc_bytes(const sim::StreamAccumulator& acc) {
  std::ostringstream os;
  acc.save(os);
  return os.str();
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

TEST(StreamRunnerTest, ResultsAreWindowInvariant) {
  auto tree = test_tree();
  const SpeedProfile speeds = SpeedProfile::paper_identical(*tree, 0.5);
  const auto r64 = exec::run_stream(tree, speeds, base_config(800, 64));
  const auto r1k = exec::run_stream(tree, speeds, base_config(800, 1024));
  EXPECT_EQ(r64.arrivals, 800u);
  EXPECT_EQ(acc_bytes(r64.acc), acc_bytes(r1k.acc));
}

TEST(StreamRunnerTest, MatchesMonolithicEngineExactly) {
  auto tree = test_tree();
  const SpeedProfile speeds = SpeedProfile::paper_identical(*tree, 0.5);
  const auto cfg = base_config(600, 128);
  const auto streamed = exec::run_stream(tree, speeds, cfg);

  // The same arrivals as one big instance through the ordinary engine.
  workload::JobStream stream(cfg.stream);
  workload::StreamCursor cur;
  std::vector<Job> jobs;
  for (std::uint64_t i = 0; i < cfg.total_jobs; ++i) {
    const workload::StreamJob a = stream.next(cur);
    jobs.emplace_back(static_cast<JobId>(i), a.release, a.size);
  }
  const Instance inst(tree, std::move(jobs), EndpointModel::kIdentical);
  algo::PaperGreedyPolicy policy(cfg.eps);
  sim::Engine engine(inst, speeds, sim::EngineConfig{});
  engine.run(policy);

  EXPECT_EQ(streamed.acc.completed, cfg.total_jobs);
  // Bit-equal objectives: windowing must be invisible in the metrics.
  EXPECT_EQ(streamed.acc.flow.value(), engine.metrics().total_flow_time());
  EXPECT_EQ(streamed.acc.makespan, engine.metrics().makespan());
  EXPECT_EQ(streamed.acc.max_flow, engine.metrics().max_flow_time());
}

TEST(StreamRunnerTest, SegmentedLogPassesAudit) {
  auto tree = test_tree();
  const SpeedProfile speeds = SpeedProfile::paper_identical(*tree, 0.5);
  const std::string dir = fresh_dir("stream_seg_ok");
  auto cfg = base_config(500, 128);
  cfg.record_path = dir + "/manifest.log";
  const auto res = exec::run_stream(tree, speeds, cfg);
  EXPECT_GT(res.segments_written, 1u);

  const sim::SegmentAuditResult audit = sim::audit_segments(cfg.record_path);
  EXPECT_TRUE(audit.ok) << (audit.violations.empty()
                                ? "no violations?"
                                : audit.violations.front().message);
  EXPECT_EQ(audit.arrivals, 500u);
  EXPECT_EQ(audit.completed, 500u);
  EXPECT_EQ(audit.segments, res.segments_written);
}

TEST(StreamRunnerTest, AuditRejectsTamperedSegment) {
  auto tree = test_tree();
  const SpeedProfile speeds = SpeedProfile::paper_identical(*tree, 0.5);
  const std::string dir = fresh_dir("stream_seg_tamper");
  auto cfg = base_config(400, 128);
  cfg.record_path = dir + "/manifest.log";
  exec::run_stream(tree, speeds, cfg);

  const std::string seg = sim::segment_log_path(cfg.record_path, 0);
  std::string bytes = slurp(seg);
  ASSERT_FALSE(bytes.empty());
  const std::size_t at = bytes.find("seg ");
  ASSERT_NE(at, std::string::npos);
  bytes[at + 4] = bytes[at + 4] == '1' ? '2' : '1';
  std::ofstream(seg, std::ios::binary) << bytes;

  const sim::SegmentAuditResult audit = sim::audit_segments(cfg.record_path);
  EXPECT_FALSE(audit.ok);
  bool saw_fp = false;
  for (const auto& v : audit.violations)
    if (v.message.find("fingerprint") != std::string::npos) saw_fp = true;
  EXPECT_TRUE(saw_fp);
}

TEST(StreamRunnerTest, AuditRejectsDroppedSegment) {
  auto tree = test_tree();
  const SpeedProfile speeds = SpeedProfile::paper_identical(*tree, 0.5);
  const std::string dir = fresh_dir("stream_seg_drop");
  auto cfg = base_config(500, 128);
  cfg.record_path = dir + "/manifest.log";
  const auto res = exec::run_stream(tree, speeds, cfg);
  ASSERT_GT(res.segments_written, 2u);

  // Splice segment 1 out of the manifest: the chain over segment 2 no
  // longer extends segment 0's, so the audit must notice the gap.
  std::istringstream in(slurp(cfg.record_path));
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line))
    if (line.find("segment 1 ") != 0) out << line << '\n';
  std::ofstream(cfg.record_path, std::ios::binary) << out.str();

  EXPECT_FALSE(sim::audit_segments(cfg.record_path).ok);
}

TEST(StreamRunnerTest, KillAndResumeIsByteIdentical) {
  auto tree = test_tree();
  const SpeedProfile speeds = SpeedProfile::paper_identical(*tree, 0.5);

  // Reference: uninterrupted, but with the same snapshot cadence (each
  // snapshot force-commits a segment, so cadence shapes segment bounds).
  const std::string ref_dir = fresh_dir("stream_resume_ref");
  auto ref_cfg = base_config(900, 128);
  ref_cfg.record_path = ref_dir + "/manifest.log";
  ref_cfg.snapshot_every = 300;
  ref_cfg.snapshot_path = ref_dir + "/snap.bin";
  const auto ref = exec::run_stream(tree, speeds, ref_cfg);
  EXPECT_FALSE(ref.interrupted);
  EXPECT_EQ(ref.snapshots_written, 2u);  // at 300 and 600; not at the end

  // Killed run: dies right after the first snapshot...
  const std::string kill_dir = fresh_dir("stream_resume_kill");
  auto kill_cfg = ref_cfg;
  kill_cfg.record_path = kill_dir + "/manifest.log";
  kill_cfg.snapshot_path = kill_dir + "/snap.bin";
  kill_cfg.die_after_snapshot = 1;
  const auto killed = exec::run_stream(tree, speeds, kill_cfg);
  EXPECT_TRUE(killed.interrupted);
  EXPECT_EQ(killed.arrivals, 300u);

  // ...and the resumed process finishes the stream.
  auto resume_cfg = kill_cfg;
  resume_cfg.die_after_snapshot = 0;
  resume_cfg.resume_snapshot = kill_cfg.snapshot_path;
  const auto resumed = exec::run_stream(tree, speeds, resume_cfg);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.arrivals, 900u);

  // Metrics bits and every run-log byte match the uninterrupted run.
  EXPECT_EQ(acc_bytes(resumed.acc), acc_bytes(ref.acc));
  EXPECT_EQ(slurp(kill_cfg.record_path), slurp(ref_cfg.record_path));
  const sim::SegmentAuditResult audit =
      sim::audit_segments(kill_cfg.record_path);
  EXPECT_TRUE(audit.ok) << (audit.violations.empty()
                                ? "no violations?"
                                : audit.violations.front().message);
  for (std::size_t i = 0; i < audit.segments; ++i)
    EXPECT_EQ(slurp(sim::segment_log_path(kill_cfg.record_path, i)),
              slurp(sim::segment_log_path(ref_cfg.record_path, i)))
        << "segment " << i;
}

TEST(StreamRunnerTest, ResumeRejectsMismatchedSpec) {
  auto tree = test_tree();
  const SpeedProfile speeds = SpeedProfile::paper_identical(*tree, 0.5);
  const std::string dir = fresh_dir("stream_resume_bad");
  auto cfg = base_config(400, 128);
  cfg.snapshot_every = 200;
  cfg.snapshot_path = dir + "/snap.bin";
  cfg.die_after_snapshot = 1;
  exec::run_stream(tree, speeds, cfg);

  auto bad = cfg;
  bad.die_after_snapshot = 0;
  bad.resume_snapshot = cfg.snapshot_path;
  bad.stream.lambda = 0.9;  // different arrival process: different run
  EXPECT_THROW(exec::run_stream(tree, speeds, bad), std::invalid_argument);
}

TEST(StreamRunnerTest, SheddingStreamAuditsClean) {
  auto tree = test_tree();
  const SpeedProfile speeds = SpeedProfile::paper_identical(*tree, 0.5);
  const std::string dir = fresh_dir("stream_shed");
  auto cfg = base_config(600, 128);
  cfg.stream.lambda = 1.2;  // overload: force shed/reject traffic
  cfg.shed.policy = overload::ShedPolicy::kLargestFirst;
  cfg.shed.queue_cap = 48.0;
  cfg.record_path = dir + "/manifest.log";
  const auto res = exec::run_stream(tree, speeds, cfg);
  EXPECT_EQ(res.acc.completed + res.acc.shed + res.acc.rejected, 600u);
  EXPECT_GT(res.acc.shed + res.acc.rejected, 0u);

  const sim::SegmentAuditResult audit = sim::audit_segments(cfg.record_path);
  EXPECT_TRUE(audit.ok) << (audit.violations.empty()
                                ? "no violations?"
                                : audit.violations.front().message);
}
