// Supervision-core unit tests, all jitterless on a FakeClock: the restart
// policy's capped exponential backoff schedule, the crash-loop breaker's
// sliding window and trip point, the stable-run reset; the guard sidecar
// log writer/audit round trip with every invariant-violation class; the
// health/child-status JSON round trips; and the durable single-write append
// primitive's torn-tail healing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "treesched/guard/clock.hpp"
#include "treesched/guard/config.hpp"
#include "treesched/guard/guard_log.hpp"
#include "treesched/guard/health.hpp"
#include "treesched/guard/supervisor.hpp"
#include "treesched/util/failpoint.hpp"
#include "treesched/util/fs.hpp"

namespace treesched {
namespace {

using guard::RestartPolicy;
using guard::RestartPolicyConfig;
using guard::Stage;

std::string tmp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << bytes;
  ASSERT_TRUE(static_cast<bool>(os)) << path;
}

// --- RestartPolicy ---------------------------------------------------------

RestartPolicyConfig policy_cfg() {
  RestartPolicyConfig cfg;
  cfg.breaker_max = 100;  // out of the way unless a test lowers it
  cfg.breaker_window_s = 60.0;
  cfg.backoff_base_s = 0.5;
  cfg.backoff_cap_s = 30.0;
  cfg.stable_s = 10.0;
  return cfg;
}

TEST(GuardRestartPolicy, BackoffDoublesFromBaseAndCaps) {
  guard::FakeClock clock;
  RestartPolicy pol(policy_cfg(), &clock);
  // Immediate re-crash after every start: consecutive grows 1, 2, 3, ... and
  // the backoff must replay exactly min(cap, base * 2^(consecutive-1)).
  const double want[] = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0, 30.0};
  for (std::size_t i = 0; i < std::size(want); ++i) {
    pol.on_start();
    clock.advance(0.01);  // died instantly: never stable
    const auto d = pol.on_crash();
    ASSERT_FALSE(d.give_up) << "crash " << i;
    EXPECT_DOUBLE_EQ(d.backoff_s, want[i]) << "crash " << i;
    EXPECT_EQ(pol.consecutive(), i + 1);
    clock.advance(d.backoff_s);
  }
  EXPECT_EQ(pol.restarts(), std::size(want));
}

TEST(GuardRestartPolicy, StableRunResetsConsecutiveNotRestarts) {
  guard::FakeClock clock;
  RestartPolicy pol(policy_cfg(), &clock);
  for (int i = 0; i < 3; ++i) {
    pol.on_start();
    clock.advance(0.01);
    ASSERT_FALSE(pol.on_crash().give_up);
  }
  EXPECT_EQ(pol.consecutive(), 3u);

  pol.on_start();
  clock.advance(10.0);  // lived >= stable_s: the crash loop was broken
  const auto d = pol.on_crash();
  ASSERT_FALSE(d.give_up);
  EXPECT_EQ(pol.consecutive(), 1u);
  EXPECT_DOUBLE_EQ(d.backoff_s, 0.5);  // backoff restarts from base
  EXPECT_EQ(pol.restarts(), 4u);       // total restarts keep counting
}

TEST(GuardRestartPolicy, BreakerTripsAtMaxCrashesInWindow) {
  auto cfg = policy_cfg();
  cfg.breaker_max = 5;
  cfg.breaker_window_s = 60.0;
  guard::FakeClock clock;
  RestartPolicy pol(cfg, &clock);
  for (int i = 0; i < 4; ++i) {
    pol.on_start();
    clock.advance(1.0);
    ASSERT_FALSE(pol.on_crash().give_up) << "crash " << i;
  }
  EXPECT_EQ(pol.crashes_in_window(), 4u);
  pol.on_start();
  clock.advance(1.0);
  const auto d = pol.on_crash();  // 5th crash within 5 seconds: trip
  EXPECT_TRUE(d.give_up);
  EXPECT_EQ(pol.crashes_in_window(), 5u);
  EXPECT_EQ(pol.restarts(), 4u);  // the give-up is not a restart
}

TEST(GuardRestartPolicy, BreakerWindowSlides) {
  auto cfg = policy_cfg();
  cfg.breaker_max = 3;
  cfg.breaker_window_s = 10.0;
  cfg.stable_s = 1e9;  // isolate the window logic from the stable reset
  guard::FakeClock clock;
  RestartPolicy pol(cfg, &clock);
  // Crashes 11 seconds apart: each one ages out before the next lands, so
  // the window never holds more than 2 and the breaker must never trip.
  for (int i = 0; i < 6; ++i) {
    pol.on_start();
    clock.advance(11.0);
    ASSERT_FALSE(pol.on_crash().give_up) << "crash " << i;
    EXPECT_LE(pol.crashes_in_window(), 2u);
  }
  // Two rapid crashes join the latest one inside a single window: trip.
  pol.on_start();
  clock.advance(0.1);
  ASSERT_FALSE(pol.on_crash().give_up);
  pol.on_start();
  clock.advance(0.1);
  EXPECT_TRUE(pol.on_crash().give_up);
}

// --- Guard log: writer/audit round trip ------------------------------------

guard::GovernorConfig arena_ceiling(std::size_t n) {
  guard::GovernorConfig cfg;
  cfg.arena_ceiling = n;
  return cfg;
}

guard::Pressure arena_pressure(std::size_t arena) {
  guard::Pressure p;
  p.arena = arena;
  return p;
}

TEST(GuardLogAudit, WriterRoundTripsClean) {
  const std::string path = tmp_path("guardlog_roundtrip.log");
  std::remove(path.c_str());
  {
    guard::GuardLogWriter w(path);
    w.supervisor(0.0, "start pid 1234");
    w.ceiling(arena_ceiling(100), 2.0);
    w.governor_escalate(0.5, Stage::kNormal, Stage::kStreamingMetrics,
                        arena_pressure(120));
    w.governor_escalate(0.9, Stage::kStreamingMetrics, Stage::kShrunkWindow,
                        arena_pressure(130));
    w.watchdog(3.0, "log", 2.0, 40);
    w.watchdog(5.0, "snapshot", 4.0, 40);
    w.supervisor(6.0, "exit code 1");
    // Restarted child: its own ceiling line resets ladder + clock base.
    w.ceiling(arena_ceiling(100), 2.0);
    w.governor_escalate(0.2, Stage::kNormal, Stage::kStreamingMetrics,
                        arena_pressure(150));
    w.supervisor(9.0, "done");
  }
  const auto res = guard::audit_guard_log(path);
  for (const auto& v : res.violations)
    ADD_FAILURE() << "line " << v.line << ": " << v.message;
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.incarnations, 2u);
  EXPECT_EQ(res.governor_escalations, 3u);
  EXPECT_EQ(res.watchdog_events, 2u);
  EXPECT_EQ(res.supervisor_events, 3u);
  EXPECT_EQ(res.max_stage, Stage::kShrunkWindow);
}

TEST(GuardLogAudit, WriterAppendsAcrossReopens) {
  // Supervisor and child hold separate writers on one path; the second
  // writer must append, not rewrite the header.
  const std::string path = tmp_path("guardlog_reopen.log");
  std::remove(path.c_str());
  {
    guard::GuardLogWriter w(path);
    w.supervisor(0.0, "start pid 1");
  }
  {
    guard::GuardLogWriter w(path);
    w.ceiling(arena_ceiling(10), 0.0);
  }
  const std::string bytes = slurp(path);
  EXPECT_EQ(bytes, "treesched-guardlog-v1\n"
                   "guard 0.000000 supervisor start pid 1\n"
                   "ceiling rss 0 queue 0 arena 10 deadline 0.000000\n"
        ) << bytes;
  EXPECT_TRUE(guard::audit_guard_log(path).ok);
}

std::string clean_log_prefix() {
  return "treesched-guardlog-v1\n"
         "ceiling rss 0 queue 0 arena 100 deadline 2.000000\n";
}

TEST(GuardLogAudit, RejectsSkippedLadderStage) {
  const std::string path = tmp_path("guardlog_skip.log");
  spill(path, clean_log_prefix() +
                  "guard 1.0 governor escalate normal shrunk-window "
                  "rss 0 queue 0 arena 200\n");
  const auto res = guard::audit_guard_log(path);
  EXPECT_FALSE(res.ok);
  ASSERT_FALSE(res.violations.empty());
  EXPECT_NE(res.violations[0].message.find("one stage at a time"),
            std::string::npos)
      << res.violations[0].message;
}

TEST(GuardLogAudit, RejectsEscalationWithoutPressure) {
  const std::string path = tmp_path("guardlog_nopressure.log");
  spill(path, clean_log_prefix() +
                  "guard 1.0 governor escalate normal streaming-metrics "
                  "rss 0 queue 0 arena 99\n");  // under the arena ceiling
  const auto res = guard::audit_guard_log(path);
  EXPECT_FALSE(res.ok);
  ASSERT_FALSE(res.violations.empty());
  EXPECT_NE(res.violations[0].message.find("without recorded pressure"),
            std::string::npos)
      << res.violations[0].message;
}

TEST(GuardLogAudit, RejectsWatchdogOutOfOrder) {
  const std::string path = tmp_path("guardlog_wdorder.log");
  spill(path, clean_log_prefix() +
                  "guard 4.5 watchdog snapshot stalled 4.2 arrivals 10\n");
  const auto res = guard::audit_guard_log(path);
  EXPECT_FALSE(res.ok);
  ASSERT_FALSE(res.violations.empty());
  EXPECT_NE(res.violations[0].message.find("preceding escalation"),
            std::string::npos)
      << res.violations[0].message;
}

TEST(GuardLogAudit, RejectsWatchdogStallUnderDeadline) {
  const std::string path = tmp_path("guardlog_wdstall.log");
  spill(path, clean_log_prefix() +
                  "guard 1.5 watchdog log stalled 1.2 arrivals 10\n");
  const auto res = guard::audit_guard_log(path);  // armed deadline is 2s
  EXPECT_FALSE(res.ok);
  ASSERT_FALSE(res.violations.empty());
  EXPECT_NE(res.violations[0].message.find("under 1x the armed deadline"),
            std::string::npos)
      << res.violations[0].message;
}

TEST(GuardLogAudit, FreshLogStartsANewWatchdogEpisode) {
  // log -> snapshot, progress resumed, then a new stall: log again is fine.
  const std::string path = tmp_path("guardlog_episodes.log");
  spill(path, clean_log_prefix() +
                  "guard 2.0 watchdog log stalled 2.0 arrivals 5\n"
                  "guard 4.0 watchdog snapshot stalled 4.0 arrivals 5\n"
                  "guard 9.0 watchdog log stalled 2.5 arrivals 9\n"
                  "guard 11.0 watchdog snapshot stalled 4.5 arrivals 9\n");
  EXPECT_TRUE(guard::audit_guard_log(path).ok);
}

TEST(GuardLogAudit, RejectsBackwardsChildTimestamp) {
  const std::string path = tmp_path("guardlog_backtime.log");
  spill(path, clean_log_prefix() +
                  "guard 5.0 watchdog log stalled 2.5 arrivals 5\n"
                  "guard 4.0 watchdog snapshot stalled 4.5 arrivals 5\n");
  const auto res = guard::audit_guard_log(path);
  EXPECT_FALSE(res.ok);
  ASSERT_FALSE(res.violations.empty());
  EXPECT_NE(res.violations[0].message.find("went backwards"),
            std::string::npos)
      << res.violations[0].message;
}

TEST(GuardLogAudit, CeilingLineResetsTheChildClock) {
  // A restarted child's timestamps restart at its own epoch: NOT a
  // violation, because the ceiling line re-bases the audit clock.
  const std::string path = tmp_path("guardlog_rebase.log");
  spill(path, clean_log_prefix() +
                  "guard 5.0 watchdog log stalled 2.5 arrivals 5\n" +
                  clean_log_prefix().substr(22) +  // second ceiling line
                  "guard 0.5 watchdog log stalled 2.5 arrivals 2\n");
  const auto res = guard::audit_guard_log(path);
  for (const auto& v : res.violations)
    ADD_FAILURE() << "line " << v.line << ": " << v.message;
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.incarnations, 2u);
}

TEST(GuardLogAudit, RejectsChildEventBeforeAnyCeiling) {
  const std::string path = tmp_path("guardlog_noceiling.log");
  spill(path, "treesched-guardlog-v1\n"
              "guard 1.0 watchdog log stalled 2.5 arrivals 5\n");
  const auto res = guard::audit_guard_log(path);
  EXPECT_FALSE(res.ok);
  ASSERT_FALSE(res.violations.empty());
  EXPECT_NE(res.violations[0].message.find("before any ceiling"),
            std::string::npos)
      << res.violations[0].message;
}

TEST(GuardLogAudit, RejectsBadMagicAndMissingFile) {
  const std::string path = tmp_path("guardlog_magic.log");
  spill(path, "not-a-guard-log\n");
  EXPECT_FALSE(guard::audit_guard_log(path).ok);
  EXPECT_FALSE(guard::audit_guard_log(tmp_path("no_such_guardlog")).ok);
}

TEST(GuardLogAudit, ToleratesTornFinalLineOnly) {
  const std::string torn_tail = tmp_path("guardlog_torntail.log");
  spill(torn_tail, clean_log_prefix() +
                       "guard 2.0 watchdog log stal");  // no newline: torn
  const auto tail_res = guard::audit_guard_log(torn_tail);
  for (const auto& v : tail_res.violations)
    ADD_FAILURE() << "line " << v.line << ": " << v.message;
  EXPECT_TRUE(tail_res.ok);
  EXPECT_EQ(tail_res.watchdog_events, 0u);  // the torn record is dropped

  // The same damage mid-file (newline-terminated) is tampering, not a tear.
  const std::string torn_mid = tmp_path("guardlog_tornmid.log");
  spill(torn_mid, clean_log_prefix() +
                      "guard 2.0 watchdog log stal\n"
                      "guard 4.0 watchdog snapshot stalled 4.0 arrivals 5\n");
  EXPECT_FALSE(guard::audit_guard_log(torn_mid).ok);
}

// --- Health / child status JSON round trips --------------------------------

TEST(GuardHealth, ChildStatusRoundTrip) {
  guard::ChildStatus s;
  s.arrivals = 123456;
  s.window = 7;
  s.rho_hat = 3.25;
  s.stage = Stage::kShrunkWindow;
  s.t_s = 1.5;
  const std::string path = tmp_path("child_status.json");
  guard::write_child_status(path, s);
  const auto r = guard::read_child_status(path);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->arrivals, 123456u);
  EXPECT_EQ(r->window, 7u);
  EXPECT_DOUBLE_EQ(r->rho_hat, 3.25);
  EXPECT_EQ(r->stage, Stage::kShrunkWindow);
  EXPECT_DOUBLE_EQ(r->t_s, 1.5);
}

TEST(GuardHealth, HealthRoundTripWithAndWithoutChild) {
  guard::HealthStatus h;
  h.pid = 4242;
  h.state = "backoff";
  h.restarts = 3;
  h.consecutive_crashes = 2;
  h.last_exit_code = 71;
  h.last_signal = 9;
  h.have_child = true;
  h.child.arrivals = 999;
  h.child.stage = Stage::kTightenedShed;
  const std::string path = tmp_path("health.json");
  guard::write_health(path, h);
  auto r = guard::read_health(path);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->pid, 4242);
  EXPECT_EQ(r->state, "backoff");
  EXPECT_EQ(r->restarts, 3u);
  EXPECT_EQ(r->consecutive_crashes, 2u);
  EXPECT_EQ(r->last_exit_code, 71);
  EXPECT_EQ(r->last_signal, 9);
  EXPECT_TRUE(r->have_child);
  EXPECT_EQ(r->child.arrivals, 999u);
  EXPECT_EQ(r->child.stage, Stage::kTightenedShed);

  h.have_child = false;
  guard::write_health(path, h);
  r = guard::read_health(path);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->have_child);
}

TEST(GuardHealth, ReadersReturnNulloptOnMissingOrGarbage) {
  EXPECT_FALSE(guard::read_child_status(tmp_path("no_such_status")));
  EXPECT_FALSE(guard::read_health(tmp_path("no_such_health")));
  const std::string path = tmp_path("garbage.json");
  spill(path, "]][[ not json at all");
  EXPECT_FALSE(guard::read_child_status(path).has_value());
  EXPECT_FALSE(guard::read_health(path).has_value());
}

TEST(GuardHealth, FlatJsonFieldExtraction) {
  const std::string doc =
      "{\"schema\":\"treesched-health-v1\",\"pid\":42,\"rho\":1.25}";
  EXPECT_EQ(guard::json_string_field(doc, "schema"), "treesched-health-v1");
  const auto pid = guard::json_number_field(doc, "pid");
  ASSERT_TRUE(pid.has_value());
  EXPECT_DOUBLE_EQ(*pid, 42.0);
  EXPECT_FALSE(guard::json_number_field(doc, "absent").has_value());
  EXPECT_FALSE(guard::json_string_field(doc, "pid").has_value());
}

// --- append_line_durable ----------------------------------------------------

class GuardAppendTest : public ::testing::Test {
 protected:
  void TearDown() override { util::disarm_failpoints(); }
};

TEST_F(GuardAppendTest, AppendsAndHealsTornTail) {
  const std::string path = tmp_path("durable_append.log");
  std::remove(path.c_str());
  util::append_line_durable(path, "first");
  EXPECT_EQ(slurp(path), "first\n");

  // Simulated crash mid-append: a newline-less tail lands on disk.
  spill(path, "first\nsecond-torn-rec");
  util::append_line_durable(path, "third");
  // The torn record became its own truncated line; "third" starts clean.
  EXPECT_EQ(slurp(path), "first\nsecond-torn-rec\nthird\n");

  EXPECT_THROW(util::append_line_durable(path, "two\nlines"),
               std::runtime_error);
}

TEST_F(GuardAppendTest, TornWriteFailpointSucceedsSilentlyThenHeals) {
  const std::string path = tmp_path("durable_torn.log");
  std::remove(path.c_str());
  util::arm_failpoints("x.append:torn-write:1");
  util::append_line_durable(path, "hello", "x.append");  // must NOT throw
  EXPECT_EQ(slurp(path), "hel");  // newline-less prefix: storage lied
  util::append_line_durable(path, "world", "x.append");  // failpoint spent
  EXPECT_EQ(slurp(path), "hel\nworld\n");
}

TEST_F(GuardAppendTest, EnospcFailpointThrowsLoudly) {
  const std::string path = tmp_path("durable_enospc.log");
  std::remove(path.c_str());
  util::arm_failpoints("x.append:enospc:1");
  EXPECT_THROW(util::append_line_durable(path, "rec", "x.append"),
               std::runtime_error);
  util::append_line_durable(path, "rec", "x.append");  // spent: succeeds
  EXPECT_EQ(slurp(path), "rec\n");
}

}  // namespace
}  // namespace treesched
