// Fault plans: JSON round-trips, invariant validation, and MTBF/MTTR model
// expansion (determinism, spared leaf, closed windows).
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <stdexcept>
#include <utility>

#include "treesched/core/tree_builders.hpp"
#include "treesched/fault/model.hpp"
#include "treesched/fault/plan.hpp"

namespace treesched::fault {
namespace {

FaultPlan sample_plan() {
  FaultPlan plan;
  plan.events.push_back({5.0, FaultKind::kEdgeDown, 2, 1.0});
  plan.events.push_back({9.0, FaultKind::kEdgeUp, 2, 1.0});
  plan.events.push_back({10.0, FaultKind::kNodeDown, 3, 1.0});
  plan.events.push_back({15.0, FaultKind::kNodeUp, 3, 1.0});
  plan.events.push_back({20.0, FaultKind::kSlow, 4, 0.5});
  plan.events.push_back({25.0, FaultKind::kSlow, 4, 1.0});
  plan.normalize();
  return plan;
}

TEST(FaultPlan, JsonRoundTripsExactly) {
  const FaultPlan plan = sample_plan();
  const FaultPlan back = parse_plan_json(plan.to_json());
  ASSERT_EQ(back.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i)
    EXPECT_EQ(back.events[i], plan.events[i]) << "event " << i;
}

TEST(FaultPlan, FileRoundTripsExactly) {
  const std::string path = testing::TempDir() + "/plan_roundtrip.json";
  const FaultPlan plan = sample_plan();
  write_plan_file(path, plan);
  const FaultPlan back = read_plan_file(path);
  EXPECT_EQ(back.events, plan.events);
  std::filesystem::remove(path);
}

TEST(FaultPlan, NormalizeSortsByTimeThenNode) {
  FaultPlan plan;
  plan.events.push_back({7.0, FaultKind::kNodeUp, 3, 1.0});
  plan.events.push_back({2.0, FaultKind::kNodeDown, 3, 1.0});
  plan.normalize();
  EXPECT_EQ(plan.events.front().t, 2.0);
  EXPECT_EQ(plan.events.back().t, 7.0);
}

TEST(FaultPlan, ParseRejectsMalformedJson) {
  EXPECT_THROW(parse_plan_json("not json"), std::invalid_argument);
  EXPECT_THROW(parse_plan_json("{\"schema\": \"wrong\", \"events\": []}"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_plan_json("{\"schema\": \"treesched-fault-plan-v1\", \"events\": "
                      "[{\"kind\": \"martian\", \"t\": 1, \"node\": 2}]}"),
      std::invalid_argument);
}

TEST(FaultPlan, ValidateRejectsBrokenInvariants) {
  const Tree tree = builders::star_of_paths(2, 1);  // root,2 routers,2 leaves

  FaultPlan targets_root;
  targets_root.events.push_back({1.0, FaultKind::kNodeDown, tree.root(), 1.0});
  EXPECT_THROW(targets_root.validate(tree), std::invalid_argument);

  FaultPlan double_down;
  double_down.events.push_back({1.0, FaultKind::kNodeDown, 1, 1.0});
  double_down.events.push_back({2.0, FaultKind::kNodeDown, 1, 1.0});
  EXPECT_THROW(double_down.validate(tree), std::invalid_argument);

  FaultPlan up_without_down;
  up_without_down.events.push_back({1.0, FaultKind::kNodeUp, 1, 1.0});
  EXPECT_THROW(up_without_down.validate(tree), std::invalid_argument);

  FaultPlan bad_factor;
  bad_factor.events.push_back({1.0, FaultKind::kSlow, 1, 0.0});
  EXPECT_THROW(bad_factor.validate(tree), std::invalid_argument);

  FaultPlan unknown_node;
  unknown_node.events.push_back({1.0, FaultKind::kNodeDown, 99, 1.0});
  EXPECT_THROW(unknown_node.validate(tree), std::invalid_argument);

  EXPECT_NO_THROW(sample_plan().validate(builders::star_of_paths(2, 2)));
}

TEST(FaultModel, GenerationIsDeterministicInSeed) {
  const Tree tree = builders::caterpillar(2, 2, 2);
  FaultModel model;
  model.node_failure_rate = 0.05;
  model.edge_failure_rate = 0.02;
  model.slow_rate = 0.03;
  model.horizon = 50.0;
  const FaultPlan a = generate_plan(tree, model, 42);
  const FaultPlan b = generate_plan(tree, model, 42);
  const FaultPlan c = generate_plan(tree, model, 43);
  EXPECT_EQ(a.events, b.events);
  EXPECT_NE(a.events, c.events);
  EXPECT_FALSE(a.empty());
  EXPECT_NO_THROW(a.validate(tree));
}

TEST(FaultModel, SparesTheFirstLeafAndClosesEveryWindow) {
  const Tree tree = builders::star_of_paths(3, 1);
  FaultModel model;
  model.node_failure_rate = 0.5;  // aggressive: plenty of windows
  model.node_mttr = 2.0;
  model.horizon = 100.0;
  const FaultPlan plan = generate_plan(tree, model, 7);
  const NodeId spared = tree.leaves().front();
  std::map<NodeId, int> open;
  for (const FaultEvent& e : plan.events) {
    EXPECT_NE(e.node, spared) << "spared leaf crashed at t=" << e.t;
    if (e.kind == FaultKind::kNodeDown) {
      EXPECT_EQ(open[e.node]++, 0);
    } else if (e.kind == FaultKind::kNodeUp) {
      EXPECT_EQ(--open[e.node], 0);
    }
  }
  for (const auto& [node, n] : open)
    EXPECT_EQ(n, 0) << "node " << node << " never recovers";
}

TEST(FaultModel, ZeroRatesYieldEmptyPlanAndBadRatesThrow) {
  const Tree tree = builders::star_of_paths(2, 1);
  FaultModel model;  // all rates 0
  EXPECT_TRUE(generate_plan(tree, model, 1).empty());

  FaultModel bad;
  bad.node_failure_rate = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  FaultModel bad_mttr;
  bad_mttr.node_failure_rate = 0.1;
  bad_mttr.node_mttr = 0.0;
  EXPECT_THROW(bad_mttr.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace treesched::fault
