// The paper's time-indexed LP relaxation: hand-checked optima and the
// lower-bound relationships it must satisfy.
#include <gtest/gtest.h>

#include <cmath>

#include "treesched/algo/policies.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/lp/flowtime_lp.hpp"
#include "treesched/lp/lower_bounds.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched {
namespace {

TEST(FlowtimeLp, SingleJobOptimumIsPathVolumeTerm) {
  // One unit job on root->router->leaf. The LP can run router and leaf in
  // the same slot (fraction by fraction), so only the eta term remains:
  // objective = eta_{j,leaf} = 2.
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  const auto res = lp::solve_flowtime_lp(
      inst, SpeedProfile::uniform(inst.tree(), 1.0), 4);
  ASSERT_EQ(res.status, lp::LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 2.0, 1e-6);
}

TEST(FlowtimeLp, CapacityForcesWaiting) {
  // Two unit jobs released together, one branch: someone waits a slot.
  Instance inst(builders::star_of_paths(1, 1),
                {Job(0, 0.0, 1.0), Job(1, 0.0, 1.0)},
                EndpointModel::kIdentical);
  const auto res = lp::solve_flowtime_lp(
      inst, SpeedProfile::uniform(inst.tree(), 1.0), 6);
  ASSERT_EQ(res.status, lp::LpStatus::kOptimal);
  // Each job contributes its eta = 2; the contention adds waiting cost.
  EXPECT_GT(res.objective, 4.0 + 0.5);
}

TEST(FlowtimeLp, HigherSpeedLowersTheOptimum) {
  Instance inst(builders::star_of_paths(2, 2),
                {Job(0, 0.0, 2.0), Job(1, 0.0, 2.0), Job(2, 1.0, 1.0)},
                EndpointModel::kIdentical);
  const auto slow = lp::solve_flowtime_lp(
      inst, SpeedProfile::uniform(inst.tree(), 1.0), 16);
  const auto fast = lp::solve_flowtime_lp(
      inst, SpeedProfile::uniform(inst.tree(), 2.0), 16);
  ASSERT_EQ(slow.status, lp::LpStatus::kOptimal);
  ASSERT_EQ(fast.status, lp::LpStatus::kOptimal);
  EXPECT_LE(fast.objective, slow.objective + 1e-9);
}

TEST(FlowtimeLp, LpLowerBoundsAnySimulatedSchedule) {
  // The LP optimum is at most the LP objective of any feasible schedule,
  // and each job's objective contribution is at most twice its flow time.
  util::Rng rng(3);
  workload::WorkloadSpec spec;
  spec.jobs = 5;
  spec.load = 0.8;
  spec.sizes.dist = workload::SizeDistribution::kFixed;
  spec.sizes.scale = 2.0;
  Tree tree = builders::star_of_paths(2, 1);
  Instance raw = workload::generate(rng, tree, spec);
  // Integer releases for the time-indexed LP.
  std::vector<Job> jobs = raw.jobs();
  for (Job& j : jobs) j.release = std::floor(j.release);
  Instance inst(raw.tree_ptr(), std::move(jobs), raw.model());

  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  const auto res = lp::solve_flowtime_lp(inst, speeds);
  ASSERT_EQ(res.status, lp::LpStatus::kOptimal);

  algo::PaperGreedyPolicy policy(0.5);
  sim::Engine engine(inst, speeds);
  engine.run(policy);
  EXPECT_LE(res.objective,
            2.0 * engine.metrics().total_flow_time() + 1e-6);
  // And the certified bound never exceeds the simulated cost.
  EXPECT_LE(lp::lp_lower_bound_on_opt(res.objective),
            engine.metrics().total_flow_time() + 1e-6);
}

TEST(FlowtimeLp, CombinedLowerBoundIsBelowLpObjective) {
  // Both are lower bounds; the combinatorial one must not exceed ALG either.
  Instance inst(builders::star_of_paths(2, 1),
                {Job(0, 0.0, 2.0), Job(1, 0.0, 2.0), Job(2, 1.0, 1.0)},
                EndpointModel::kIdentical);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  algo::PaperGreedyPolicy policy(0.5);
  sim::Engine engine(inst, speeds);
  engine.run(policy);
  const double alg = engine.metrics().total_flow_time();
  EXPECT_LE(lp::combined_lower_bound(inst), alg + 1e-9);
}

TEST(FlowtimeLp, RejectsFractionalReleases) {
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.5, 1.0)},
                EndpointModel::kIdentical);
  EXPECT_THROW(lp::build_flowtime_lp(
                   inst, SpeedProfile::uniform(inst.tree(), 1.0), 4),
               std::invalid_argument);
}

TEST(FlowtimeLp, HorizonDoublingRecoversFromTightHint) {
  Instance inst(builders::star_of_paths(1, 1),
                {Job(0, 0.0, 2.0), Job(1, 0.0, 2.0)},
                EndpointModel::kIdentical);
  // Hint 2 is too small for 8 units of total work; the solver must double.
  const auto res = lp::solve_flowtime_lp(
      inst, SpeedProfile::uniform(inst.tree(), 1.0), 2);
  EXPECT_EQ(res.status, lp::LpStatus::kOptimal);
  EXPECT_GT(res.horizon, 2);
}

TEST(LowerBounds, PathVolumeMatchesHandComputation) {
  Tree tree = builders::broomstick({2, 4}, {{2}, {4}});
  Instance inst(std::move(tree), {Job(0, 0.0, 3.0)},
                EndpointModel::kIdentical);
  // Shallow leaf: d = 3 => P = 9; deep leaf: d = 5 => 15.
  EXPECT_DOUBLE_EQ(lp::lb_path_volume(inst), 9.0);
}

TEST(LowerBounds, SrptSingleMachineKnownValue) {
  // Jobs (r=0,p=4), (r=1,p=1) at speed 1: SRPT completes the short one at 2
  // and the long one at 5: flows 1 + 5 = 6.
  EXPECT_DOUBLE_EQ(
      lp::srpt_single_machine_flow({{0.0, 4.0}, {1.0, 1.0}}, 1.0), 6.0);
  // At speed 2: j0 has 2 units left at t=1 when j1 (1 unit) arrives and
  // preempts; j1 finishes at 1.5 (flow 0.5), j0 at 2.5 (flow 2.5).
  EXPECT_DOUBLE_EQ(
      lp::srpt_single_machine_flow({{0.0, 4.0}, {1.0, 1.0}}, 2.0), 3.0);
}

TEST(LowerBounds, RootCutUsesRootChildCount) {
  // One branch vs two branches: same jobs, the two-branch cut is weaker.
  Instance narrow(builders::star_of_paths(1, 1),
                  {Job(0, 0.0, 2.0), Job(1, 0.0, 2.0)},
                  EndpointModel::kIdentical);
  Instance wide(builders::star_of_paths(2, 1),
                {Job(0, 0.0, 2.0), Job(1, 0.0, 2.0)},
                EndpointModel::kIdentical);
  EXPECT_GT(lp::lb_root_cut(narrow), lp::lb_root_cut(wide));
}

TEST(LowerBounds, LeafCutUsesBestLeafSizeInUnrelatedModel) {
  Instance inst(builders::star_of_paths(2, 1),
                {Job(0, 0.0, 4.0, {6.0, 2.0})},
                EndpointModel::kUnrelated);
  // Single job: leaf cut = min leaf size / |L| machines aggregated speed 2.
  EXPECT_DOUBLE_EQ(lp::lb_leaf_cut(inst), 1.0);
}

}  // namespace
}  // namespace treesched
