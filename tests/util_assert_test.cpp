// TS_REQUIRE / TS_CHECK: thrown types, message formatting, pass-through.
#include "treesched/util/assert.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace {

TEST(UtilAssert, RequirePassesWhenTrue) {
  EXPECT_NO_THROW(TS_REQUIRE(1 + 1 == 2, "arithmetic works"));
}

TEST(UtilAssert, CheckPassesWhenTrue) {
  EXPECT_NO_THROW(TS_CHECK(true, "trivially true"));
}

TEST(UtilAssert, RequireThrowsInvalidArgument) {
  EXPECT_THROW(TS_REQUIRE(false, "boom"), std::invalid_argument);
}

TEST(UtilAssert, CheckThrowsLogicError) {
  EXPECT_THROW(TS_CHECK(false, "boom"), std::logic_error);
}

TEST(UtilAssert, RequireIsNotCaughtAsLogicErrorSubtypeConfusion) {
  // std::invalid_argument derives from std::logic_error; the distinction that
  // matters is that TS_CHECK does NOT throw invalid_argument.
  EXPECT_THROW(TS_CHECK(false, ""), std::logic_error);
  bool caught_invalid = false;
  try {
    TS_CHECK(false, "");
  } catch (const std::invalid_argument&) {
    caught_invalid = true;
  } catch (const std::logic_error&) {
  }
  EXPECT_FALSE(caught_invalid);
}

TEST(UtilAssert, RequireMessageNamesExpressionFileAndDetail) {
  try {
    TS_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "TS_REQUIRE did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition failed"), std::string::npos) << what;
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("util_assert_test"), std::string::npos) << what;
    EXPECT_NE(what.find("two is not less than one"), std::string::npos) << what;
  }
}

TEST(UtilAssert, CheckMessageNamesExpressionFileAndDetail) {
  try {
    TS_CHECK(false, "queue drained unexpectedly");
    FAIL() << "TS_CHECK did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant violated"), std::string::npos) << what;
    EXPECT_NE(what.find("util_assert_test"), std::string::npos) << what;
    EXPECT_NE(what.find("queue drained unexpectedly"), std::string::npos)
        << what;
  }
}

TEST(UtilAssert, EmptyDetailOmitsSeparator) {
  try {
    TS_REQUIRE(false, "");
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find(" — "), std::string::npos) << what;
  }
}

TEST(UtilAssert, DetailMayBeStdString) {
  const std::string detail = "built at runtime";
  try {
    TS_REQUIRE(false, detail + " indeed");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("built at runtime indeed"),
              std::string::npos);
  }
}

TEST(UtilAssert, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto pred = [&calls]() {
    ++calls;
    return true;
  };
  TS_REQUIRE(pred(), "side effects counted");
  EXPECT_EQ(calls, 1);
  TS_CHECK(pred(), "side effects counted");
  EXPECT_EQ(calls, 2);
}

}  // namespace
