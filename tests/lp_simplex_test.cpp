// The from-scratch simplex solver against known optima.
#include <gtest/gtest.h>

#include "treesched/core/types.hpp"
#include "treesched/lp/simplex.hpp"
#include "treesched/util/rng.hpp"

namespace treesched::lp {
namespace {

TEST(Simplex, BasicMaximizationAsMinimization) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6  =>  opt at (1.6, 1.2) = 2.8.
  LpModel m;
  const int x = m.add_var(-1.0);
  const int y = m.add_var(-1.0);
  m.add_row({{{x, 1.0}, {y, 2.0}}, RowSense::kLe, 4.0});
  m.add_row({{{x, 3.0}, {y, 1.0}}, RowSense::kLe, 6.0});
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -2.8, 1e-9);
  EXPECT_NEAR(s.x[uidx(x)], 1.6, 1e-9);
  EXPECT_NEAR(s.x[uidx(y)], 1.2, 1e-9);
}

TEST(Simplex, GreaterEqualAndEquality) {
  // min 2x + 3y s.t. x + y = 10, x >= 4  =>  x=10? No: y >= 0, so
  // minimize 2x+3y with x+y=10: prefer x big => x=10, y=0, obj 20.
  LpModel m;
  const int x = m.add_var(2.0);
  const int y = m.add_var(3.0);
  m.add_row({{{x, 1.0}, {y, 1.0}}, RowSense::kEq, 10.0});
  m.add_row({{{x, 1.0}}, RowSense::kGe, 4.0});
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 20.0, 1e-9);
  EXPECT_NEAR(s.x[uidx(x)], 10.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  LpModel m;
  const int x = m.add_var(1.0);
  m.add_row({{{x, 1.0}}, RowSense::kGe, 2.0});
  m.add_row({{{x, 1.0}}, RowSense::kLe, 1.0});
  EXPECT_EQ(solve(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LpModel m;
  const int x = m.add_var(-1.0);
  m.add_row({{{x, -1.0}}, RowSense::kLe, 5.0});  // -x <= 5, x free upward
  EXPECT_EQ(solve(m).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -2 with min x: x = 0, y >= 2 feasible => obj 0.
  LpModel m;
  const int x = m.add_var(1.0);
  const int y = m.add_var(0.0);
  m.add_row({{{x, 1.0}, {y, -1.0}}, RowSense::kLe, -2.0});
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
  EXPECT_GE(s.x[uidx(y)], 2.0 - 1e-9);
}

TEST(Simplex, DegenerateVertexStillTerminates) {
  // Multiple constraints meeting at the same vertex.
  LpModel m;
  const int x = m.add_var(-1.0);
  const int y = m.add_var(-1.0);
  m.add_row({{{x, 1.0}}, RowSense::kLe, 1.0});
  m.add_row({{{y, 1.0}}, RowSense::kLe, 1.0});
  m.add_row({{{x, 1.0}, {y, 1.0}}, RowSense::kLe, 2.0});
  m.add_row({{{x, 2.0}, {y, 2.0}}, RowSense::kLe, 4.0});
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(Simplex, TransportationProblem) {
  // 2 suppliers (10, 20) x 2 consumers (15, 15), costs {{1,4},{2,1}}.
  // Optimal: s0->c0 10, s1->c0 5, s1->c1 15 => 10 + 10 + 15 = 35.
  LpModel m;
  int v[2][2];
  const double cost[2][2] = {{1, 4}, {2, 1}};
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) v[i][j] = m.add_var(cost[i][j]);
  m.add_row({{{v[0][0], 1.0}, {v[0][1], 1.0}}, RowSense::kLe, 10.0});
  m.add_row({{{v[1][0], 1.0}, {v[1][1], 1.0}}, RowSense::kLe, 20.0});
  m.add_row({{{v[0][0], 1.0}, {v[1][0], 1.0}}, RowSense::kGe, 15.0});
  m.add_row({{{v[0][1], 1.0}, {v[1][1], 1.0}}, RowSense::kGe, 15.0});
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 35.0, 1e-9);
}

TEST(Simplex, PrimalDualObjectivesMatch) {
  // Strong duality spot check on a fixed LP.
  // Primal: min c'x, Ax >= b, x >= 0 with A = [[2,1],[1,3]], b = [4, 6],
  // c = [3, 4]. Dual: max b'y, A'y <= c, y >= 0.
  LpModel primal;
  const int x0 = primal.add_var(3.0);
  const int x1 = primal.add_var(4.0);
  primal.add_row({{{x0, 2.0}, {x1, 1.0}}, RowSense::kGe, 4.0});
  primal.add_row({{{x0, 1.0}, {x1, 3.0}}, RowSense::kGe, 6.0});
  const LpSolution ps = solve(primal);
  ASSERT_TRUE(ps.optimal());

  LpModel dual;
  const int y0 = dual.add_var(-4.0);
  const int y1 = dual.add_var(-6.0);
  dual.add_row({{{y0, 2.0}, {y1, 1.0}}, RowSense::kLe, 3.0});
  dual.add_row({{{y0, 1.0}, {y1, 3.0}}, RowSense::kLe, 4.0});
  const LpSolution ds = solve(dual);
  ASSERT_TRUE(ds.optimal());
  EXPECT_NEAR(ps.objective, -ds.objective, 1e-9);
}

TEST(Simplex, RandomLpsSatisfyFeasibilityAndOptimalityBasics) {
  util::Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    LpModel m;
    const int n = 4 + static_cast<int>(rng.uniform_int(0, 3));
    for (int j = 0; j < n; ++j) m.add_var(rng.uniform_real(0.1, 2.0));
    const int rows = 3 + static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < rows; ++i) {
      LpRow row;
      for (int j = 0; j < n; ++j)
        if (rng.bernoulli(0.6))
          row.coeffs.emplace_back(j, rng.uniform_real(0.1, 1.5));
      if (row.coeffs.empty()) row.coeffs.emplace_back(0, 1.0);
      row.sense = rng.bernoulli(0.5) ? RowSense::kGe : RowSense::kLe;
      row.rhs = rng.uniform_real(0.5, 4.0);
      m.add_row(std::move(row));
    }
    const LpSolution s = solve(m);
    if (!s.optimal()) continue;  // infeasible combinations are fine
    // Verify primal feasibility of the reported solution.
    for (const auto& row : m.rows) {
      double lhs = 0.0;
      for (const auto& [var, coeff] : row.coeffs) lhs += coeff * s.x[uidx(var)];
      if (row.sense == RowSense::kLe) {
        EXPECT_LE(lhs, row.rhs + 1e-6);
      }
      if (row.sense == RowSense::kGe) {
        EXPECT_GE(lhs, row.rhs - 1e-6);
      }
    }
    for (double xv : s.x) EXPECT_GE(xv, -1e-9);
  }
}

}  // namespace
}  // namespace treesched::lp
