// Durability chaos battery: the snapshot envelope/store contracts, and
// kill-points × injected I/O faults swept over a streaming shed run. The
// invariant under test everywhere: a resumed run is BYTE-IDENTICAL to the
// uninterrupted one, or the process fails loudly with a typed error —
// never silent divergence.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "treesched/core/tree_builders.hpp"
#include "treesched/exec/snapshot_store.hpp"
#include "treesched/exec/stream_runner.hpp"
#include "treesched/overload/controller.hpp"
#include "treesched/sim/metrics.hpp"
#include "treesched/sim/run_log.hpp"
#include "treesched/sim/runlog_segments.hpp"
#include "treesched/util/failpoint.hpp"
#include "treesched/util/hash.hpp"

using namespace treesched;
namespace fs = std::filesystem;

namespace {

std::shared_ptr<const Tree> test_tree() {
  return std::make_shared<const Tree>(builders::fat_tree(2, 2, 2));
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream(path, std::ios::binary) << bytes;
}

std::string acc_bytes(const sim::StreamAccumulator& acc) {
  std::ostringstream os;
  acc.save(os);
  return os.str();
}

/// An overloaded (rho >> 1) shedding stream with snapshots every 300
/// arrivals — the chaos battery's workload. 900 jobs → snapshots at 300
/// and 600, none at the end.
exec::StreamRunnerConfig chaos_config(const std::string& dir) {
  exec::StreamRunnerConfig cfg;
  cfg.stream.seed = 0xc4a05;
  cfg.stream.lambda = 1.4;  // ~4x the stable-rate baseline: sustained shed
  cfg.total_jobs = 900;
  cfg.window = 128;
  cfg.segment_cap = 256;
  cfg.shed.policy = overload::ShedPolicy::kLargestFirst;
  cfg.shed.queue_cap = 32.0;
  cfg.record_path = dir + "/manifest.log";
  cfg.snapshot_every = 300;
  cfg.snapshot_path = dir + "/snap";
  return cfg;
}

struct RefRun {
  std::string dir;
  exec::StreamRunnerConfig cfg;
  exec::StreamRunnerResult res;
};

RefRun reference_run(const std::string& name) {
  RefRun ref;
  ref.dir = fresh_dir(name);
  ref.cfg = chaos_config(ref.dir);
  ref.res = exec::run_stream(test_tree(),
                             SpeedProfile::paper_identical(*test_tree(), 0.5),
                             ref.cfg);
  EXPECT_FALSE(ref.res.interrupted);
  EXPECT_GT(ref.res.acc.shed + ref.res.acc.rejected, 0u);
  EXPECT_FALSE(ref.res.overload_state.empty());
  return ref;
}

/// Asserts the resumed run converged to the same bytes as the reference:
/// metrics accumulator, durable overload state, rho-hat, and every run-log
/// artifact on disk.
void expect_byte_identical(const RefRun& ref,
                           const exec::StreamRunnerConfig& cfg,
                           const exec::StreamRunnerResult& res) {
  EXPECT_FALSE(res.interrupted);
  EXPECT_EQ(res.arrivals, ref.res.arrivals);
  EXPECT_EQ(acc_bytes(res.acc), acc_bytes(ref.res.acc));
  EXPECT_EQ(res.overload_state, ref.res.overload_state);
  EXPECT_EQ(res.rho_hat_root, ref.res.rho_hat_root);  // bit-exact
  EXPECT_EQ(slurp(cfg.record_path), slurp(ref.cfg.record_path));
  const sim::SegmentAuditResult audit = sim::audit_segments(cfg.record_path);
  EXPECT_TRUE(audit.ok) << (audit.violations.empty()
                                ? "no violations?"
                                : audit.violations.front().message);
  for (std::size_t i = 0; i < audit.segments; ++i)
    EXPECT_EQ(slurp(sim::segment_log_path(cfg.record_path, i)),
              slurp(sim::segment_log_path(ref.cfg.record_path, i)))
        << "segment " << i;
}

class DurabilityChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { util::disarm_failpoints(); }
};

// ---------------------------------------------------------------- envelope

TEST_F(DurabilityChaosTest, EnvelopeRoundTripsAdversarialPayloads) {
  // Payloads that contain header-look-alike lines and raw NULs: the
  // length-driven parser must not be fooled.
  const std::vector<exec::SnapshotSection> in = {
      {"stream", "streamsnap 2\nspec 42\n"},
      {"empty", ""},
      {"tricky", std::string("section x 3 5\nwhole 9\n\0bin", 26)},
  };
  const std::string bytes = exec::encode_snapshot_envelope(in);
  const auto out = exec::decode_snapshot_envelope(bytes);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].name, in[i].name);
    EXPECT_EQ(out[i].payload, in[i].payload);
  }
  EXPECT_EQ(exec::find_snapshot_section(out, "tricky"), in[2].payload);
  EXPECT_THROW(exec::find_snapshot_section(out, "absent"),
               std::invalid_argument);
}

TEST_F(DurabilityChaosTest, EnvelopeRejectsEveryTruncation) {
  const std::string bytes = exec::encode_snapshot_envelope(
      {{"a", "hello world\n"}, {"b", "0123456789"}});
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_THROW(exec::decode_snapshot_envelope(bytes.substr(0, len)),
                 std::invalid_argument)
        << "prefix of length " << len << " decoded";
  // Trailing garbage is damage too (exact byte accounting).
  EXPECT_THROW(exec::decode_snapshot_envelope(bytes + "x"),
               std::invalid_argument);
  EXPECT_NO_THROW(exec::decode_snapshot_envelope(bytes));
}

TEST_F(DurabilityChaosTest, EnvelopeRejectsEveryBitFlip) {
  const std::string bytes = exec::encode_snapshot_envelope(
      {{"a", "hello world\n"}, {"b", "0123456789"}});
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mut = bytes;
    mut[i] = static_cast<char>(mut[i] ^ 0x01);
    EXPECT_THROW(exec::decode_snapshot_envelope(mut), std::invalid_argument)
        << "flip at byte " << i << " decoded";
  }
}

// ------------------------------------------------------------------- store

TEST_F(DurabilityChaosTest, StoreRotatesGenerationsUnderKeepBudget) {
  const std::string dir = fresh_dir("chaos_store_rotate");
  exec::SnapshotStore store(dir + "/snap", 3);
  std::vector<std::string> envs;
  for (int i = 0; i < 5; ++i) {
    envs.push_back(exec::encode_snapshot_envelope(
        {{"n", "payload " + std::to_string(i) + "\n"}}));
    store.write(static_cast<std::uint64_t>((i + 1) * 100), envs.back());
  }
  const auto gens = store.generations();
  ASSERT_EQ(gens.size(), 3u);  // keep budget
  EXPECT_EQ(gens[0].progress, 500u);  // newest first
  EXPECT_EQ(gens[2].progress, 300u);
  for (const auto& g : gens) {
    const auto bytes = store.read(g);
    ASSERT_TRUE(bytes.has_value()) << g.path;
    EXPECT_EQ(util::fnv1a_64(*bytes), g.fingerprint);
  }
  EXPECT_EQ(*store.read(gens[0]), envs[4]);
  // The rotated-out generations are really gone (they were healthy).
  EXPECT_FALSE(fs::exists(dir + "/snap.gen000"));
  EXPECT_FALSE(fs::exists(dir + "/snap.gen001"));
  EXPECT_TRUE(fs::exists(dir + "/snap.gen004"));
}

TEST_F(DurabilityChaosTest, StoreQuarantineRenamesAndLogs) {
  const std::string dir = fresh_dir("chaos_store_quar");
  exec::SnapshotStore store(dir + "/snap", 3);
  store.write(100, exec::encode_snapshot_envelope({{"n", "x\n"}}));
  const auto gens = store.generations();
  ASSERT_EQ(gens.size(), 1u);
  store.quarantine(gens[0], "unit-test damage");
  EXPECT_FALSE(fs::exists(gens[0].path));
  EXPECT_TRUE(fs::exists(gens[0].path + ".quarantined"));
  const std::string log = slurp(store.quarantine_log_path());
  EXPECT_NE(log.find("gen 0"), std::string::npos);
  EXPECT_NE(log.find("unit-test damage"), std::string::npos);
}

// --------------------------------------------- kill-points x resume ladder

TEST_F(DurabilityChaosTest, KillPointSweepResumesByteIdentical) {
  const RefRun ref = reference_run("chaos_ref_sweep");
  ASSERT_EQ(ref.res.snapshots_written, 2u);
  for (std::uint64_t die_after : {std::uint64_t{1}, std::uint64_t{2}}) {
    const std::string dir =
        fresh_dir("chaos_kill_" + std::to_string(die_after));
    auto cfg = chaos_config(dir);
    cfg.die_after_snapshot = die_after;
    const auto killed = exec::run_stream(
        test_tree(), SpeedProfile::paper_identical(*test_tree(), 0.5), cfg);
    EXPECT_TRUE(killed.interrupted);
    EXPECT_EQ(killed.arrivals, die_after * cfg.snapshot_every);

    auto resume_cfg = cfg;
    resume_cfg.die_after_snapshot = 0;
    resume_cfg.resume_snapshot = cfg.snapshot_path;
    const auto resumed = exec::run_stream(
        test_tree(), SpeedProfile::paper_identical(*test_tree(), 0.5),
        resume_cfg);
    expect_byte_identical(ref, resume_cfg, resumed);
  }
}

TEST_F(DurabilityChaosTest, LadderFallsBackAcrossCorruptNewestGeneration) {
  const RefRun ref = reference_run("chaos_ref_fallback");
  const std::string dir = fresh_dir("chaos_fallback");
  auto cfg = chaos_config(dir);
  cfg.die_after_snapshot = 2;
  exec::run_stream(test_tree(),
                   SpeedProfile::paper_identical(*test_tree(), 0.5), cfg);

  // Flip one byte in the newest generation on disk.
  exec::SnapshotStore store(cfg.snapshot_path, cfg.snapshot_keep);
  const auto gens = store.generations();
  ASSERT_EQ(gens.size(), 2u);
  std::string bytes = slurp(gens[0].path);
  bytes[bytes.size() / 3] = static_cast<char>(bytes[bytes.size() / 3] ^ 0x01);
  spit(gens[0].path, bytes);

  auto resume_cfg = cfg;
  resume_cfg.die_after_snapshot = 0;
  resume_cfg.resume_snapshot = cfg.snapshot_path;
  const auto resumed = exec::run_stream(
      test_tree(), SpeedProfile::paper_identical(*test_tree(), 0.5),
      resume_cfg);
  expect_byte_identical(ref, resume_cfg, resumed);
  // The damaged rung was quarantined, never deleted.
  EXPECT_FALSE(fs::exists(gens[0].path));
  EXPECT_TRUE(fs::exists(gens[0].path + ".quarantined"));
  EXPECT_TRUE(fs::exists(store.quarantine_log_path()));
}

TEST_F(DurabilityChaosTest, TornSnapshotWriteIsCaughtAndFallsBack) {
  const RefRun ref = reference_run("chaos_ref_torn");
  const std::string dir = fresh_dir("chaos_torn_write");
  auto cfg = chaos_config(dir);
  cfg.die_after_snapshot = 2;
  {
    // The SECOND snapshot write tears silently: the writer believes it
    // succeeded, the manifest records the intended fingerprint.
    util::ScopedFailpoints guard("snapshot.write:torn-write:2");
    const auto killed = exec::run_stream(
        test_tree(), SpeedProfile::paper_identical(*test_tree(), 0.5), cfg);
    EXPECT_TRUE(killed.interrupted);
    ASSERT_EQ(util::failpoints_fired().size(), 1u);
  }
  auto resume_cfg = cfg;
  resume_cfg.die_after_snapshot = 0;
  resume_cfg.resume_snapshot = cfg.snapshot_path;
  const auto resumed = exec::run_stream(
      test_tree(), SpeedProfile::paper_identical(*test_tree(), 0.5),
      resume_cfg);
  expect_byte_identical(ref, resume_cfg, resumed);
  exec::SnapshotStore store(cfg.snapshot_path, cfg.snapshot_keep);
  EXPECT_TRUE(fs::exists(store.quarantine_log_path()));
}

TEST_F(DurabilityChaosTest, BitFlippedSnapshotWriteIsCaughtAndFallsBack) {
  const RefRun ref = reference_run("chaos_ref_flip");
  const std::string dir = fresh_dir("chaos_flip_write");
  auto cfg = chaos_config(dir);
  cfg.die_after_snapshot = 2;
  {
    util::ScopedFailpoints guard("snapshot.write:bit-flip:2");
    exec::run_stream(test_tree(),
                     SpeedProfile::paper_identical(*test_tree(), 0.5), cfg);
  }
  auto resume_cfg = cfg;
  resume_cfg.die_after_snapshot = 0;
  resume_cfg.resume_snapshot = cfg.snapshot_path;
  const auto resumed = exec::run_stream(
      test_tree(), SpeedProfile::paper_identical(*test_tree(), 0.5),
      resume_cfg);
  expect_byte_identical(ref, resume_cfg, resumed);
}

TEST_F(DurabilityChaosTest, ShortReadDuringResumeFallsBack) {
  const RefRun ref = reference_run("chaos_ref_shortread");
  const std::string dir = fresh_dir("chaos_short_read");
  auto cfg = chaos_config(dir);
  cfg.die_after_snapshot = 2;
  exec::run_stream(test_tree(),
                   SpeedProfile::paper_identical(*test_tree(), 0.5), cfg);

  auto resume_cfg = cfg;
  resume_cfg.die_after_snapshot = 0;
  resume_cfg.resume_snapshot = cfg.snapshot_path;
  // The FIRST generation read (the newest rung) comes back short; the
  // ladder cannot tell lying storage from a torn file and falls back.
  util::ScopedFailpoints guard("snapshot.read:short-read:1");
  const auto resumed = exec::run_stream(
      test_tree(), SpeedProfile::paper_identical(*test_tree(), 0.5),
      resume_cfg);
  expect_byte_identical(ref, resume_cfg, resumed);
}

TEST_F(DurabilityChaosTest, AllGenerationsCorruptIsLoudlyUnrecoverable) {
  const std::string dir = fresh_dir("chaos_unrecoverable");
  auto cfg = chaos_config(dir);
  cfg.die_after_snapshot = 2;
  exec::run_stream(test_tree(),
                   SpeedProfile::paper_identical(*test_tree(), 0.5), cfg);

  exec::SnapshotStore store(cfg.snapshot_path, cfg.snapshot_keep);
  const auto gens = store.generations();
  ASSERT_EQ(gens.size(), 2u);
  for (const auto& g : gens) {
    std::string bytes = slurp(g.path);
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
    spit(g.path, bytes);
  }

  auto resume_cfg = cfg;
  resume_cfg.die_after_snapshot = 0;
  resume_cfg.resume_snapshot = cfg.snapshot_path;
  try {
    exec::run_stream(test_tree(),
                     SpeedProfile::paper_identical(*test_tree(), 0.5),
                     resume_cfg);
    FAIL() << "resume from two corrupt generations succeeded";
  } catch (const exec::SnapshotUnrecoverableError& e) {
    // The one-line report names the quarantine log.
    EXPECT_NE(std::string(e.what()).find(store.quarantine_log_path()),
              std::string::npos)
        << e.what();
  }
  for (const auto& g : gens) {
    EXPECT_FALSE(fs::exists(g.path));
    EXPECT_TRUE(fs::exists(g.path + ".quarantined"));
  }
  EXPECT_FALSE(slurp(store.quarantine_log_path()).empty());
}

TEST_F(DurabilityChaosTest, MissingManifestIsTyped) {
  const std::string dir = fresh_dir("chaos_missing");
  auto cfg = chaos_config(dir);
  cfg.resume_snapshot = dir + "/never-written";
  EXPECT_THROW(
      exec::run_stream(test_tree(),
                       SpeedProfile::paper_identical(*test_tree(), 0.5), cfg),
      exec::SnapshotMissingError);
}

TEST_F(DurabilityChaosTest, SpecMismatchIsTypedAndImmediate) {
  const std::string dir = fresh_dir("chaos_spec");
  auto cfg = chaos_config(dir);
  cfg.die_after_snapshot = 1;
  exec::run_stream(test_tree(),
                   SpeedProfile::paper_identical(*test_tree(), 0.5), cfg);
  auto bad = cfg;
  bad.die_after_snapshot = 0;
  bad.resume_snapshot = cfg.snapshot_path;
  bad.stream.lambda = 0.9;  // a different run entirely
  EXPECT_THROW(
      exec::run_stream(test_tree(),
                       SpeedProfile::paper_identical(*test_tree(), 0.5), bad),
      exec::SnapshotSpecMismatchError);
  // A clean snapshot from the wrong run is NOT damage: nothing quarantined.
  exec::SnapshotStore store(cfg.snapshot_path, cfg.snapshot_keep);
  EXPECT_FALSE(fs::exists(store.quarantine_log_path()));
}

TEST_F(DurabilityChaosTest, EnospcDuringSnapshotWriteFailsLoud) {
  const std::string dir = fresh_dir("chaos_enospc");
  auto cfg = chaos_config(dir);
  util::ScopedFailpoints guard("snapshot.write:enospc:1");
  EXPECT_THROW(
      exec::run_stream(test_tree(),
                       SpeedProfile::paper_identical(*test_tree(), 0.5), cfg),
      std::runtime_error);
}

TEST_F(DurabilityChaosTest, TornManifestAppendNeverDivergesSilently) {
  const RefRun ref = reference_run("chaos_ref_manifest");
  const std::string dir = fresh_dir("chaos_manifest_torn");
  auto cfg = chaos_config(dir);
  cfg.die_after_snapshot = 1;
  {
    util::ScopedFailpoints guard("manifest.append:torn-write:1");
    exec::run_stream(test_tree(),
                     SpeedProfile::paper_identical(*test_tree(), 0.5), cfg);
  }
  auto resume_cfg = cfg;
  resume_cfg.die_after_snapshot = 0;
  resume_cfg.resume_snapshot = cfg.snapshot_path;
  // The run-log manifest lost part of a segment entry. Whatever the ladder
  // decides, it must be all-or-nothing: a byte-identical finish or a loud
  // typed failure — never a silently divergent run log.
  try {
    const auto resumed = exec::run_stream(
        test_tree(), SpeedProfile::paper_identical(*test_tree(), 0.5),
        resume_cfg);
    expect_byte_identical(ref, resume_cfg, resumed);
  } catch (const std::exception& e) {
    EXPECT_FALSE(std::string(e.what()).empty());
  }
}

// ------------------------------------------- durable overload state bytes

TEST_F(DurabilityChaosTest, AdmissionControllerRoundTripsByteIdentically) {
  const RefRun ref = reference_run("chaos_ref_overload");
  overload::ShedConfig shed;
  shed.policy = overload::ShedPolicy::kLargestFirst;
  shed.queue_cap = 32.0;
  overload::AdmissionController ctl(shed);
  std::istringstream is(ref.res.overload_state);
  ctl.load_state(is);
  std::ostringstream os;
  ctl.save_state(os);
  EXPECT_EQ(os.str(), ref.res.overload_state);
}

TEST_F(DurabilityChaosTest, OverloadStateRejectsTruncationAndFlips) {
  const RefRun ref = reference_run("chaos_ref_overload_mut");
  const std::string& bytes = ref.res.overload_state;
  ASSERT_FALSE(bytes.empty());
  overload::ShedConfig shed;
  shed.policy = overload::ShedPolicy::kLargestFirst;
  shed.queue_cap = 32.0;
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 256);
  const auto check_mutation = [&](const std::string& mut) {
    overload::AdmissionController ctl(shed);
    std::istringstream is(mut);
    try {
      ctl.load_state(is);
    } catch (const std::invalid_argument&) {
      return;  // rejected: good
    }
    // Accepted: then it must have been an equivalent encoding (e.g. a
    // newline flipped to another whitespace byte) — never a wrong load.
    std::ostringstream os;
    ctl.save_state(os);
    EXPECT_EQ(os.str(), bytes);
  };
  for (std::size_t len = 0; len < bytes.size(); len += stride)
    check_mutation(bytes.substr(0, len));
  for (std::size_t i = 0; i < bytes.size(); i += stride) {
    std::string mut = bytes;
    mut[i] = static_cast<char>(mut[i] ^ 0x01);
    check_mutation(mut);
  }
}

TEST_F(DurabilityChaosTest, StreamAccumulatorRejectsTruncationAndFlips) {
  const RefRun ref = reference_run("chaos_ref_acc_mut");
  const std::string bytes = acc_bytes(ref.res.acc);
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 256);
  const auto check_mutation = [&](const std::string& mut) {
    sim::StreamAccumulator acc;
    std::istringstream is(mut);
    try {
      acc.load(is);
    } catch (const std::invalid_argument&) {
      return;
    }
    EXPECT_EQ(acc_bytes(acc), bytes);
  };
  for (std::size_t len = 0; len < bytes.size(); len += stride)
    check_mutation(bytes.substr(0, len));
  for (std::size_t i = 0; i < bytes.size(); i += stride) {
    std::string mut = bytes;
    mut[i] = static_cast<char>(mut[i] ^ 0x01);
    check_mutation(mut);
  }
}

}  // namespace
