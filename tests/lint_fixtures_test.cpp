// Fixture-file tests for treesched_lint. Every rule in the catalogue has an
// accept fixture (must produce zero findings of that rule) and a reject
// fixture (must produce at least one unsuppressed finding of it) under
// tests/lint_fixtures/, named `<rule-id>.accept.cpp` / `<rule-id>.reject.cpp`.
// Each fixture's first line declares the path it is scanned *as* (rules
// scope by path):  // scan-as: src/treesched/sim/fixture.cpp
//
// The suite also self-scans the shipped tree: the repository must stay clean
// under its own analyzer, which is what lets CI gate on exit code 2.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "treesched/lint/lint.hpp"

namespace fs = std::filesystem;

using treesched::lint::Finding;
using treesched::lint::lint_source;
using treesched::lint::lint_tree;
using treesched::lint::rule_catalogue;

namespace {

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << p;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// First line must be `// scan-as: <path>`.
std::string scan_as(const std::string& source, const fs::path& p) {
  const std::string marker = "// scan-as: ";
  EXPECT_EQ(source.compare(0, marker.size(), marker), 0)
      << p << " is missing its scan-as header";
  const std::size_t eol = source.find('\n');
  return source.substr(marker.size(), eol - marker.size());
}

std::vector<Finding> lint_fixture(const std::string& rule,
                                  const char* verdict) {
  const fs::path p =
      fs::path(LINT_FIXTURE_DIR) / (rule + "." + verdict + ".cpp");
  EXPECT_TRUE(fs::exists(p)) << "missing fixture " << p;
  const std::string source = read_file(p);
  return lint_source(source, scan_as(source, p));
}

int count_unsuppressed(const std::vector<Finding>& fs_, const std::string& r) {
  int n = 0;
  for (const Finding& f : fs_)
    if (f.rule == r && !f.suppressed) ++n;
  return n;
}

TEST(LintFixtures, EveryRuleHasAnAcceptAndARejectFixture) {
  for (const auto& rule : rule_catalogue()) {
    EXPECT_TRUE(fs::exists(fs::path(LINT_FIXTURE_DIR) /
                           (std::string(rule.id) + ".accept.cpp")))
        << rule.id;
    EXPECT_TRUE(fs::exists(fs::path(LINT_FIXTURE_DIR) /
                           (std::string(rule.id) + ".reject.cpp")))
        << rule.id;
  }
}

TEST(LintFixtures, RejectFixturesFireTheirRule) {
  for (const auto& rule : rule_catalogue()) {
    const auto findings = lint_fixture(rule.id, "reject");
    EXPECT_GE(count_unsuppressed(findings, rule.id), 1)
        << rule.id << ".reject.cpp produced no unsuppressed " << rule.id
        << " finding";
  }
}

TEST(LintFixtures, AcceptFixturesStayQuietOnTheirRule) {
  for (const auto& rule : rule_catalogue()) {
    const auto findings = lint_fixture(rule.id, "accept");
    EXPECT_EQ(count_unsuppressed(findings, rule.id), 0)
        << rule.id << ".accept.cpp unexpectedly fired " << rule.id;
  }
}

TEST(LintFixtures, NoStrayFilesInFixtureDir) {
  // Guards the naming convention the other tests key off.
  for (const auto& entry : fs::directory_iterator(LINT_FIXTURE_DIR)) {
    const std::string name = entry.path().filename().string();
    const bool ok = name.find(".accept.cpp") != std::string::npos ||
                    name.find(".reject.cpp") != std::string::npos;
    EXPECT_TRUE(ok) << "unexpected fixture file " << name;
  }
}

TEST(LintSelfScan, ShippedTreeIsClean) {
  const auto report =
      lint_tree(LINT_PROJECT_ROOT, {"src", "tools", "bench"});
  EXPECT_GT(report.files_scanned, 100u);  // sanity: the scan found the tree
  std::string offenders;
  for (const Finding& f : report.findings)
    if (!f.suppressed)
      offenders += "\n  " + f.file + ":" + std::to_string(f.line) + " [" +
                   f.rule + "] " + f.message;
  EXPECT_EQ(report.unsuppressed_count(), 0u) << offenders;
}

TEST(LintSelfScan, EverySuppressionInTheTreeCarriesAJustification) {
  const auto report =
      lint_tree(LINT_PROJECT_ROOT, {"src", "tools", "bench"});
  for (const Finding& f : report.findings) {
    if (f.suppressed) {
      EXPECT_FALSE(f.justification.empty()) << f.file;
    }
  }
}

TEST(LintSelfScan, ReportJsonIsDeterministic) {
  const auto a = lint_tree(LINT_PROJECT_ROOT, {"src", "tools", "bench"});
  const auto b = lint_tree(LINT_PROJECT_ROOT, {"src", "tools", "bench"});
  EXPECT_EQ(treesched::lint::report_json(a), treesched::lint::report_json(b));
}

}  // namespace
