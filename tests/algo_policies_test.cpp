// Assignment policies: the paper's greedy rule and the baselines.
#include <gtest/gtest.h>

#include "treesched/algo/policies.hpp"
#include "treesched/algo/potential.hpp"
#include "treesched/algo/runner.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/workload/adversarial.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched {
namespace {

TEST(PaperGreedy, EmptySystemPicksShallowestLeaf) {
  // Branch 0 has depth 2 leaves, branch 1 depth 5: with no queued work the
  // rule minimizes the 6/eps^2 * d_v * p_j term.
  Tree tree = builders::broomstick({1, 4}, {{1}, {4}});
  Instance inst(std::move(tree), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  algo::PaperGreedyPolicy policy(0.5);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.advance_to(0.0);
  const NodeId chosen = policy.assign(eng, inst.job(0));
  EXPECT_EQ(inst.tree().d(chosen), 2);
  eng.admit(0, chosen);
  eng.run_to_completion();
}

TEST(PaperGreedy, FFormulaMatchesHandComputation) {
  // Queue j0 (size 4) on branch 0's router, then evaluate F for an arriving
  // size-2 job: F = hp_volume(0) + self(2) + 2 * |{larger}| = 2 + 2*1 = 4
  // on branch 0; F = 2 on the empty branch 1.
  Tree tree = builders::star_of_paths(2, 1);
  Instance inst(std::move(tree),
                {Job(0, 0.0, 4.0), Job(1, 1.0, 2.0)},
                EndpointModel::kIdentical);
  const NodeId leaf0 = inst.tree().leaves()[0];
  const NodeId leaf1 = inst.tree().leaves()[1];
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.admit(0, leaf0);
  eng.advance_to(1.0);
  const Job& j1 = inst.job(1);
  // j0 has 3 units left on its router at t=1 (but hp volume counts only
  // higher-priority jobs, and 4 > 2 so it contributes to count_larger).
  EXPECT_NEAR(algo::PaperGreedyPolicy::F(eng, j1, leaf0), 2.0 + 2.0 * 1, 1e-9);
  EXPECT_NEAR(algo::PaperGreedyPolicy::F(eng, j1, leaf1), 2.0, 1e-9);
  // F' is zero in the identical model.
  EXPECT_DOUBLE_EQ(algo::PaperGreedyPolicy::F_prime(eng, j1, leaf0), 0.0);
  // Assignment cost adds the depth penalty 6/eps^2 * d * p.
  algo::PaperGreedyPolicy policy(1.0);
  EXPECT_NEAR(policy.assignment_cost(eng, j1, leaf1), 2.0 + 6.0 * 2 * 2, 1e-9);
  EXPECT_NEAR(algo::lemma4_bound(eng, j1, leaf1, 1.0),
              policy.assignment_cost(eng, j1, leaf1), 1e-12);
}

TEST(PaperGreedy, UnrelatedRuleWeighsLeafCongestion) {
  // Two branches; leaf 0 fast but congested, leaf 1 slower but idle.
  Tree tree = builders::star_of_paths(2, 1);
  std::vector<Job> jobs;
  // Five big jobs head to leaf 0 first.
  for (int i = 0; i < 5; ++i)
    jobs.emplace_back(i, 0.01 * i, 4.0, std::vector<double>{4.0, 40.0});
  // The probe job: fast on both leaves, slightly faster on leaf 0.
  jobs.emplace_back(5, 1.0, 1.0, std::vector<double>{1.0, 1.5});
  Instance inst(std::move(tree), std::move(jobs), EndpointModel::kUnrelated);
  const NodeId leaf0 = inst.tree().leaves()[0];
  const NodeId leaf1 = inst.tree().leaves()[1];
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  for (int i = 0; i < 5; ++i) {
    eng.advance_to(inst.job(i).release);
    eng.admit(i, leaf0);
  }
  eng.advance_to(1.0);
  algo::PaperGreedyPolicy policy(0.5);
  // The congestion on branch 0 (router queue + leaf backlog) should push
  // the probe to leaf 1 despite its slightly larger processing time.
  EXPECT_EQ(policy.assign(eng, inst.job(5)), leaf1);
  eng.admit(5, leaf1);
  eng.run_to_completion();
}

TEST(Baselines, ClosestLeafMinimizesPathVolume) {
  Tree tree = builders::broomstick({1, 3}, {{1}, {3}});
  Instance inst(std::move(tree), {Job(0, 0.0, 2.0)},
                EndpointModel::kIdentical);
  algo::ClosestLeafPolicy policy;
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  const NodeId chosen = policy.assign(eng, inst.job(0));
  EXPECT_EQ(inst.tree().d(chosen), 2);
}

TEST(Baselines, ClosestLeafUsesUnrelatedLeafTimes) {
  Tree tree = builders::star_of_paths(2, 1);
  // Deepest-equal branches; leaf 1 is much faster for this job.
  Instance inst(std::move(tree), {Job(0, 0.0, 1.0, {10.0, 1.0})},
                EndpointModel::kUnrelated);
  algo::ClosestLeafPolicy policy;
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  EXPECT_EQ(policy.assign(eng, inst.job(0)), inst.tree().leaves()[1]);
}

TEST(Baselines, RoundRobinCycles) {
  Tree tree = builders::star_of_paths(3, 1);
  std::vector<Job> jobs;
  for (int i = 0; i < 6; ++i) jobs.emplace_back(i, 0.1 * i + 0.1, 1.0);
  Instance inst(std::move(tree), std::move(jobs), EndpointModel::kIdentical);
  algo::RoundRobinPolicy policy;
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  std::vector<NodeId> picks;
  for (int i = 0; i < 6; ++i) {
    eng.advance_to(inst.job(i).release);
    const NodeId v = policy.assign(eng, inst.job(i));
    picks.push_back(v);
    eng.admit(i, v);
  }
  EXPECT_EQ(picks[0], picks[3]);
  EXPECT_EQ(picks[1], picks[4]);
  EXPECT_EQ(picks[2], picks[5]);
  EXPECT_NE(picks[0], picks[1]);
  eng.run_to_completion();
}

TEST(Baselines, RandomIsDeterministicPerSeed) {
  Tree tree = builders::star_of_paths(4, 1);
  std::vector<Job> jobs;
  for (int i = 0; i < 10; ++i) jobs.emplace_back(i, 0.1 * (i + 1), 1.0);
  Instance inst(std::move(tree), std::move(jobs), EndpointModel::kIdentical);
  const auto picks_for = [&inst](std::uint64_t seed) {
    algo::RandomLeafPolicy policy(seed);
    sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
    std::vector<NodeId> picks;
    for (const Job& j : inst.jobs()) {
      eng.advance_to(j.release);
      picks.push_back(policy.assign(eng, j));
      eng.admit(j.id, picks.back());
    }
    return picks;
  };
  EXPECT_EQ(picks_for(7), picks_for(7));
  EXPECT_NE(picks_for(7), picks_for(8));
}

TEST(Baselines, LeastCountAvoidsBusyBranch) {
  Tree tree = builders::star_of_paths(2, 1);
  Instance inst(std::move(tree),
                {Job(0, 0.0, 5.0), Job(1, 1.0, 1.0)},
                EndpointModel::kIdentical);
  const NodeId leaf0 = inst.tree().leaves()[0];
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.admit(0, leaf0);
  eng.advance_to(1.0);
  algo::LeastCountPolicy policy;
  EXPECT_EQ(policy.assign(eng, inst.job(1)), inst.tree().leaves()[1]);
}

TEST(Baselines, LeastVolumeAvoidsBusyBranch) {
  Tree tree = builders::star_of_paths(2, 1);
  Instance inst(std::move(tree),
                {Job(0, 0.0, 5.0), Job(1, 1.0, 1.0)},
                EndpointModel::kIdentical);
  const NodeId leaf0 = inst.tree().leaves()[0];
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.admit(0, leaf0);
  eng.advance_to(1.0);
  algo::LeastVolumePolicy policy;
  EXPECT_EQ(policy.assign(eng, inst.job(1)), inst.tree().leaves()[1]);
}

TEST(Baselines, TwoChoicePrefersTheLighterSample) {
  // With exactly two leaves every draw samples both (or a duplicate), so
  // two-choice must route around a loaded branch.
  Tree tree = builders::star_of_paths(2, 1);
  Instance inst(std::move(tree),
                {Job(0, 0.0, 8.0), Job(1, 1.0, 1.0)},
                EndpointModel::kIdentical);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  eng.admit(0, inst.tree().leaves()[0]);
  eng.advance_to(1.0);
  algo::TwoChoicePolicy policy(3);
  int to_light = 0;
  for (int trial = 0; trial < 20; ++trial)
    to_light += (policy.assign(eng, inst.job(1)) == inst.tree().leaves()[1]);
  EXPECT_GT(to_light, 14);  // only duplicate draws of leaf 0 miss
}

TEST(PolicyFactory, KnownAndUnknownNames) {
  Tree tree = builders::star_of_paths(2, 1);
  Instance inst(std::move(tree), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  for (const char* name :
       {"paper", "closest", "random", "round-robin", "least-volume",
        "least-count", "two-choice", "broomstick-mirror"}) {
    auto p = algo::make_policy(name, inst, 0.5, 1);
    ASSERT_NE(p, nullptr);
  }
  EXPECT_THROW(algo::make_policy("quantum", inst, 0.5, 1),
               std::invalid_argument);
}

TEST(Adversarial, GreedyBeatsClosestLeafOnCongestionTrap) {
  const Instance inst = workload::congestion_trap(40);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  // eps = 2 keeps the depth penalty small enough that the rule spills load
  // into the deep idle branch once the shallow one backs up.
  const auto greedy = algo::run_named_policy(inst, speeds, "paper", 2.0);
  const auto closest = algo::run_named_policy(inst, speeds, "closest", 2.0);
  EXPECT_LT(greedy.total_flow, closest.total_flow);
}

TEST(Adversarial, GreedyBeatsRoundRobinOnSizeMixer) {
  const Instance inst = workload::size_mixer(20);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  const auto greedy = algo::run_named_policy(inst, speeds, "paper", 0.5);
  const auto rr = algo::run_named_policy(inst, speeds, "round-robin", 0.5);
  EXPECT_LT(greedy.total_flow, rr.total_flow);
}

TEST(Adversarial, UnrelatedTrapPunishesLeafBlindness) {
  const Instance inst = workload::unrelated_trap(30);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  const auto greedy = algo::run_named_policy(inst, speeds, "paper", 0.5);
  const auto count = algo::run_named_policy(inst, speeds, "least-count", 0.5);
  // The greedy rule sees both router congestion and leaf speeds.
  EXPECT_LE(greedy.total_flow, count.total_flow * 1.05);
}

}  // namespace
}  // namespace treesched
