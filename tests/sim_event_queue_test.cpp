// Unit tests for the calendar event queue (sim/event_queue.hpp): the pop
// sequence must be the exact total order (t, seq) — bit-identical to the
// std::priority_queue the PR9 rewrite replaced — under every structural
// regime the calendar can enter: same-instant storms inside one bucket,
// far-future events crossing the ring horizon into the overflow heap,
// ring re-bases after the ring drains dry, and adaptive rebuilds as the
// population grows and shrinks.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "treesched/sim/event_queue.hpp"
#include "treesched/util/rng.hpp"

using treesched::NodeId;
using treesched::Time;
using treesched::sim::EventQueue;
using treesched::sim::SimEvent;

namespace {

SimEvent ev(Time t, std::uint64_t seq) {
  SimEvent e;
  e.t = t;
  e.seq = seq;
  e.node = static_cast<NodeId>(seq % 7);
  e.version = seq;
  return e;
}

bool strictly_before(const SimEvent& a, const SimEvent& b) {
  if (a.t != b.t) return a.t < b.t;
  return a.seq < b.seq;
}

/// Drains the queue and checks the pop order against the (t, seq)-sorted
/// reference, element-wise with all payload fields intact.
void expect_drains_sorted(EventQueue& q, std::vector<SimEvent> reference) {
  std::sort(reference.begin(), reference.end(), strictly_before);
  ASSERT_EQ(q.size(), reference.size());
  for (const SimEvent& want : reference) {
    ASSERT_FALSE(q.empty());
    const SimEvent* top = q.peek();
    ASSERT_NE(top, nullptr);
    EXPECT_EQ(top->t, want.t);
    EXPECT_EQ(top->seq, want.seq);
    const SimEvent got = q.pop();
    EXPECT_EQ(got.t, want.t);
    EXPECT_EQ(got.seq, want.seq);
    EXPECT_EQ(got.node, want.node);
    EXPECT_EQ(got.version, want.version);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.peek(), nullptr);
}

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.peek(), nullptr);
  EXPECT_TRUE(q.sorted_events().empty());
}

TEST(EventQueue, SameInstantStormPopsInSeqOrder) {
  // A dense burst at one instant: every event shares t, so the full burst
  // sits in one bucket and the heap must fall back to seq order. Push in a
  // scrambled (deterministic) order to rule out insertion-order luck.
  EventQueue q;
  std::vector<SimEvent> reference;
  treesched::util::Rng rng(7);
  std::vector<std::uint64_t> seqs;
  for (std::uint64_t s = 0; s < 5000; ++s) seqs.push_back(s);
  for (std::size_t i = seqs.size(); i > 1; --i)
    std::swap(seqs[i - 1],
              seqs[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  for (const std::uint64_t s : seqs) {
    q.push(ev(10.0, s));
    reference.push_back(ev(10.0, s));
  }
  expect_drains_sorted(q, std::move(reference));
}

TEST(EventQueue, FarFutureEventsCrossBucketBoundaries) {
  // Exponentially spread timestamps: most pushes land far past the ring
  // horizon (overflow heap), and draining forces migration and ring
  // re-bases across empty stretches.
  EventQueue q;
  std::vector<SimEvent> reference;
  double t = 0.0;
  for (std::uint64_t s = 0; s < 400; ++s) {
    t = t * 1.2 + 1.0;  // 1, 2.2, 3.64, ... ~1e31 at s=399
    q.push(ev(t, s));
    reference.push_back(ev(t, s));
  }
  expect_drains_sorted(q, std::move(reference));
}

TEST(EventQueue, RandomizedInterleavedPushPopMatchesReference) {
  // The engine's contract: every push carries t >= the last popped t.
  // Interleave monotone pushes with pops and check each pop against an
  // (inefficient but obviously correct) sorted-vector reference.
  treesched::util::Rng rng(42);
  EventQueue q;
  std::vector<SimEvent> pending;  // kept sorted descending, pop from back
  double frontier = 0.0;
  std::uint64_t seq = 0;
  for (int step = 0; step < 20000; ++step) {
    const bool push = pending.empty() || rng.uniform01() < 0.55;
    if (push) {
      // Mix of same-instant (exact frontier), near and far-future times.
      const double r = rng.uniform01();
      double t = frontier;
      if (r > 0.7)
        t += rng.uniform_real(0.0, 5.0);
      else if (r > 0.6)
        t += rng.uniform_real(0.0, 5000.0);  // beyond most ring horizons
      const SimEvent e = ev(t, seq++);
      q.push(e);
      pending.push_back(e);
      std::sort(pending.begin(), pending.end(),
                [](const SimEvent& a, const SimEvent& b) {
                  return strictly_before(b, a);
                });
    } else {
      const SimEvent want = pending.back();
      pending.pop_back();
      ASSERT_FALSE(q.empty());
      const SimEvent got = q.pop();
      ASSERT_EQ(got.t, want.t) << "step " << step;
      ASSERT_EQ(got.seq, want.seq) << "step " << step;
      frontier = got.t;
    }
  }
  expect_drains_sorted(q, std::move(pending));
}

TEST(EventQueue, GrowAndShrinkKeepsOrder) {
  // Push enough to force calendar rebuilds (growth), drain most of it
  // (shrink rebuilds), then refill — order must hold across every resize.
  treesched::util::Rng rng(3);
  EventQueue q;
  std::vector<SimEvent> pending;
  std::uint64_t seq = 0;
  double frontier = 0.0;
  for (std::uint64_t s = 0; s < 30000; ++s) {
    const SimEvent e = ev(rng.uniform_real(0.0, 100.0), seq++);
    q.push(e);
    pending.push_back(e);
  }
  std::sort(pending.begin(), pending.end(), strictly_before);
  for (int i = 0; i < 29000; ++i) {
    const SimEvent got = q.pop();
    ASSERT_EQ(got.seq, pending[static_cast<std::size_t>(i)].seq);
    frontier = got.t;
  }
  pending.erase(pending.begin(), pending.begin() + 29000);
  for (std::uint64_t s = 0; s < 500; ++s) {
    const SimEvent e = ev(frontier + rng.uniform_real(0.0, 10.0), seq++);
    q.push(e);
    pending.push_back(e);
  }
  expect_drains_sorted(q, std::move(pending));
}

TEST(EventQueue, SortedEventsIsTheExactPopOrder) {
  // sorted_events() feeds snapshot serialization, which byte-compares
  // against the old copy-and-drain order — it must equal the pop order
  // exactly, without disturbing the queue.
  treesched::util::Rng rng(11);
  EventQueue q;
  std::uint64_t seq = 0;
  for (int i = 0; i < 3000; ++i) {
    const double r = rng.uniform01();
    const double t =
        r > 0.8 ? rng.uniform_real(0.0, 1e6) : rng.uniform_real(0.0, 50.0);
    q.push(ev(t, seq++));
  }
  // Drain a prefix so the frontier is mid-ring (partially drained bucket).
  double frontier = 0.0;
  for (int i = 0; i < 700; ++i) frontier = q.pop().t;
  q.push(ev(frontier + 1.0, seq++));
  const std::vector<SimEvent> snap = q.sorted_events();
  ASSERT_EQ(snap.size(), q.size());
  for (const SimEvent& want : snap) {
    const SimEvent got = q.pop();
    ASSERT_EQ(got.t, want.t);
    ASSERT_EQ(got.seq, want.seq);
    ASSERT_EQ(got.node, want.node);
    ASSERT_EQ(got.version, want.version);
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
