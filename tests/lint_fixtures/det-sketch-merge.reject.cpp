// scan-as: src/treesched/exec/fixture.cpp
#include <vector>

#include "treesched/stats/quantile_sketch.hpp"

treesched::stats::QuantileDigest combine(
    const std::vector<treesched::stats::QuantileDigest>& parts) {
  treesched::stats::QuantileDigest out;
  for (const auto& p : parts) out.absorb_unordered(p);
  return out;
}
