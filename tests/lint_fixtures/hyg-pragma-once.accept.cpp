// scan-as: src/treesched/core/fixture.hpp
#pragma once

struct Guarded {
  int x = 0;
};
