// scan-as: src/treesched/sim/metrics.hpp
#pragma once

class Metrics {
 public:
  /// A serialized aggregate with no audit reference.
  double shiny_metric() const;
};
