// scan-as: src/treesched/exec/fixture.cpp
// Point lookups into a hash map are order-free; iteration goes over the
// id-keyed vector. Same emitting TU, nothing to flag.
#include <ostream>
#include <unordered_map>
#include <vector>

void emit_json(std::ostream& os, const std::unordered_map<int, double>& idx,
               const std::vector<int>& order) {
  for (const int id : order) os << id << idx.at(id);
}
