// scan-as: src/treesched/stats/fixture.cpp
#include <vector>

double total_of(const std::vector<double>& xs) {
  double total = 0.0;
  for (const double x : xs) total += x;
  return total;
}
