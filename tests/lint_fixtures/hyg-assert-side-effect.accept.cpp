// scan-as: src/treesched/sim/fixture.cpp
#include <cassert>

void f(int x, long guard, std::string msg) {
  assert(x + 1 > 0);
  ++guard;
  TS_CHECK(guard < 100, "stuck");
  TS_REQUIRE(x == 3, msg += " (detail)");  // message arg may build state
}
