// scan-as: src/treesched/sim/fixture.cpp
// treesched-lint: allow(det-wallclock): nothing below actually reads a clock
int x = 3;
