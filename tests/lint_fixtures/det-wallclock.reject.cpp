// scan-as: src/treesched/sim/fixture.cpp
// Wall-clock reads in a scheduling path: every call below must fire.
#include <chrono>
#include <ctime>

double jitter() {
  const auto t0 = std::chrono::steady_clock::now();
  long seed = time(nullptr);
  return static_cast<double>(seed) + t0.time_since_epoch().count();
}
