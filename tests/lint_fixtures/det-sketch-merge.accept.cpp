// scan-as: src/treesched/exec/fixture.cpp
// Partial sketches merged through the deterministic-order helper; the
// phrase absorb_unordered may appear in prose without firing.
#include <vector>

#include "treesched/stats/quantile_sketch.hpp"

treesched::stats::QuantileDigest combine(
    const std::vector<treesched::stats::QuantileDigest>& parts) {
  return treesched::stats::merge_deterministic(parts);
}
