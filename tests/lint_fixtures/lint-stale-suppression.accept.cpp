// scan-as: src/treesched/sim/fixture.cpp
#include <ctime>

// treesched-lint: allow(det-wallclock): used annotation, so not stale
long a = time(nullptr);
