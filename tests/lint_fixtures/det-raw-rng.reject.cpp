// scan-as: src/treesched/workload/fixture.cpp
#include <random>

int draw() {
  std::mt19937 gen(42);
  std::uniform_int_distribution<int> d(0, 9);
  return d(gen);
}
