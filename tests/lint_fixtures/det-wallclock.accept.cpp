// scan-as: src/treesched/sim/fixture.cpp
// Simulation time via member calls, banned names in strings/comments only,
// and a justified suppression: none of these may fire.
double f(const Engine& engine, const Rec& r) {
  // rand() and time(0) in prose are fine.
  const char* s = "clock() inside a string literal";
  return engine.now() + r.time(3) + (s != nullptr ? 1.0 : 0.0);
}

// treesched-lint: allow(det-wallclock): harness-side wait deadline; the
// value never reaches any run output.
long deadline() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
