// scan-as: src/treesched/sim/fixture.cpp
// TODO(#42): referenced marker, allowed.
// TODO(issue-queue-cap): slug-referenced marker, allowed.
// Prose mentioning TODO markers mid-sentence is not a marker.
int f() { return 0; }
