// scan-as: src/treesched/core/fixture.hpp
// A header with neither #pragma once nor an include guard.
struct Unguarded {
  int x = 0;
};
