// scan-as: src/treesched/workload/fixture.cpp
// util::Rng with split_seed streams; std engine names only in prose.
#include "treesched/util/rng.hpp"

// std::mt19937 would be wrong here (see docs/LINTING.md).
double draw(std::uint64_t seed) {
  util::Rng rng(util::split_seed(seed, 7));
  return rng.uniform();
}
