// scan-as: src/treesched/sim/fixture.cpp
#include <ctime>

// treesched-lint: allow(det-wallclock): fixture exercising a well-formed,
// justified, and used annotation.
long a = time(nullptr);
