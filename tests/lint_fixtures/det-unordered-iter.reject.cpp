// scan-as: src/treesched/exec/fixture.cpp
// Hash-order iteration in a TU that emits JSON.
#include <ostream>
#include <unordered_map>

void emit_json(std::ostream& os) {
  std::unordered_map<int, double> by_node;
  for (const auto& [k, v] : by_node) os << k << v;
}
