// scan-as: src/treesched/sim/fixture.cpp
// TODO tighten this bound
int f() {
  /*
   * TODO also this one, inside a block comment
   */
  return 0;
}
