// scan-as: src/treesched/sim/engine.hpp
// The pooled flat structures the rule steers toward pass clean, and the
// one deliberate node-per-element container (the inflight set, whose
// ordered iteration is the public contract) carries a suppression. Outside
// sim/engine the rule is silent entirely.
#pragma once
#include <set>
#include <vector>

struct PriorityKey {
  double size;
  int job;
};

struct AvailEntry {
  PriorityKey key;
  int idx;
};

struct NodeState {
  // Flat binary heap — allocation-free pop/insert once warmed.
  std::vector<AvailEntry> avail;
  // treesched-lint: allow(perf-engine-hot-container): ordered iteration of
  // inflight_at() is the public contract (largest-first eviction scans it);
  // it is not on the dispatch hot path.
  std::set<int> inflight;
};
