// scan-as: src/treesched/sim/fixture.cpp
#include <cassert>

void f(int x, long guard) {
  assert(x++ > 0);
  TS_CHECK(++guard < 100, "stuck");
}
