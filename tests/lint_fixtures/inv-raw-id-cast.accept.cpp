// scan-as: src/treesched/sim/fixture.cpp
// uidx() for ids; raw casts of non-id members and float targets are fine.
#include <cmath>
#include <cstddef>

std::size_t slot(int node_id, const Job& job, double chunk) {
  const auto chunks = static_cast<std::int32_t>(std::ceil(job.size / chunk));
  const double frac = static_cast<double>(node_id) / 7.0;
  return uidx(node_id) + uidx(job.id) + static_cast<std::size_t>(chunks) +
         static_cast<std::size_t>(frac);
}
