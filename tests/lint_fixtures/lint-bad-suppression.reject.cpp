// scan-as: src/treesched/sim/fixture.cpp
#include <ctime>

// treesched-lint: allow(det-wallclock)
long a = time(nullptr);

// treesched-lint: allow(not-a-rule): names an unknown rule
int b = 0;

// treesched-lint: deny(det-wallclock): unknown verb
int c = 0;
