// scan-as: src/treesched/stats/fixture.cpp
#include <vector>

#include "treesched/util/csum.hpp"

double total_of(const std::vector<double>& xs) {
  util::CompensatedSum total;
  for (const double x : xs) total.add(x);
  return total.value();
}
