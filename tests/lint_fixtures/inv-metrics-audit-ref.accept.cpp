// scan-as: src/treesched/sim/metrics.hpp
#pragma once

class Metrics {
 public:
  /// A serialized aggregate.
  /// audit: work-conservation (recomputed from the burst log).
  double shiny_metric() const;
  /// A derived ratio. audit: none(quotient of audited quantities).
  double derived_metric() const;
};
