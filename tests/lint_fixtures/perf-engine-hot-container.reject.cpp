// scan-as: src/treesched/sim/engine.hpp
// Both banned containers, unsuppressed: the std::set availability set and
// the std::priority_queue event queue the PR9 rewrite removed.
#pragma once
#include <queue>
#include <set>
#include <vector>

struct PriorityKey {
  double size;
  int job;
};

struct Event {
  double t;
  unsigned long long seq;
};

struct NodeState {
  std::set<PriorityKey> avail;
};

struct Engine {
  std::priority_queue<Event, std::vector<Event>> events;
};
