// scan-as: src/treesched/sim/fixture.cpp
#include <cstddef>

std::size_t slot(int node_id, const Job& job) {
  return static_cast<std::size_t>(node_id) + static_cast<std::size_t>(job.id);
}
