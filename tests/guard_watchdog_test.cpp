// Watchdog unit tests: the staged wall-clock escalation (log at 1x the
// deadline, snapshot at 2x, abort at 3x) replayed jitterlessly on a
// FakeClock — one step per poll, each step once per stall episode, and a
// progress report rewinds the whole ladder.
#include <gtest/gtest.h>

#include "treesched/guard/clock.hpp"
#include "treesched/guard/config.hpp"
#include "treesched/guard/watchdog.hpp"

namespace treesched {
namespace {

using guard::Watchdog;

guard::WatchdogConfig deadline(double s) {
  guard::WatchdogConfig cfg;
  cfg.window_deadline_s = s;
  return cfg;
}

TEST(GuardWatchdog, DisabledNeverFires) {
  guard::FakeClock clock;
  Watchdog wd(deadline(0.0), &clock);
  clock.advance(1e6);
  EXPECT_EQ(wd.poll(), Watchdog::Action::kNone);
}

TEST(GuardWatchdog, EscalatesAtExactDeadlineMultiples) {
  guard::FakeClock clock;
  Watchdog wd(deadline(2.0), &clock);
  wd.progress(10);

  clock.set(1.999);
  EXPECT_EQ(wd.poll(), Watchdog::Action::kNone);
  clock.set(2.0);  // 1x: log
  EXPECT_EQ(wd.poll(), Watchdog::Action::kLog);
  EXPECT_EQ(wd.poll(), Watchdog::Action::kNone);  // once per episode
  clock.set(3.999);
  EXPECT_EQ(wd.poll(), Watchdog::Action::kNone);
  clock.set(4.0);  // 2x: snapshot
  EXPECT_EQ(wd.poll(), Watchdog::Action::kSnapshot);
  EXPECT_EQ(wd.poll(), Watchdog::Action::kNone);
  clock.set(6.0);  // 3x: abort
  EXPECT_EQ(wd.poll(), Watchdog::Action::kAbort);
  EXPECT_EQ(wd.poll(), Watchdog::Action::kNone);  // no rank past abort
  EXPECT_DOUBLE_EQ(wd.stalled_s(), 6.0);
  EXPECT_EQ(wd.arrivals(), 10u);
}

TEST(GuardWatchdog, OneStepPerPollEvenAfterLongStall) {
  // A poll after a huge stall still walks the ladder one rung at a time, so
  // the guard log always shows the full log -> snapshot -> abort sequence.
  guard::FakeClock clock;
  Watchdog wd(deadline(1.0), &clock);
  wd.progress(1);
  clock.set(100.0);
  EXPECT_EQ(wd.poll(), Watchdog::Action::kLog);
  EXPECT_EQ(wd.poll(), Watchdog::Action::kSnapshot);
  EXPECT_EQ(wd.poll(), Watchdog::Action::kAbort);
  EXPECT_EQ(wd.poll(), Watchdog::Action::kNone);
}

TEST(GuardWatchdog, ProgressResetsTheEpisode) {
  guard::FakeClock clock;
  Watchdog wd(deadline(1.0), &clock);
  wd.progress(5);
  clock.set(2.5);
  EXPECT_EQ(wd.poll(), Watchdog::Action::kLog);
  EXPECT_EQ(wd.poll(), Watchdog::Action::kSnapshot);

  wd.progress(6);  // the stall cleared: fresh deadline, fresh ladder
  EXPECT_DOUBLE_EQ(wd.stalled_s(), 0.0);
  EXPECT_EQ(wd.poll(), Watchdog::Action::kNone);
  clock.set(3.5);
  EXPECT_EQ(wd.poll(), Watchdog::Action::kLog);
  EXPECT_EQ(wd.arrivals(), 6u);
}

TEST(GuardWatchdog, ActionNames) {
  EXPECT_STREQ(Watchdog::action_name(Watchdog::Action::kNone), "none");
  EXPECT_STREQ(Watchdog::action_name(Watchdog::Action::kLog), "log");
  EXPECT_STREQ(Watchdog::action_name(Watchdog::Action::kSnapshot),
               "snapshot");
  EXPECT_STREQ(Watchdog::action_name(Watchdog::Action::kAbort), "abort");
}

}  // namespace
}  // namespace treesched
