// Tests for the auxiliary substrates added around the core reproduction:
// Gantt rendering, offline OPT search, the PSW comparison model, and the
// greedy rule's tie-breaking ablation knob.
#include <gtest/gtest.h>

#include <set>

#include "treesched/algo/policies.hpp"
#include "treesched/algo/psw_model.hpp"
#include "treesched/algo/runner.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/lp/lower_bounds.hpp"
#include "treesched/lp/opt_search.hpp"
#include "treesched/sim/gantt.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched {
namespace {

TEST(Gantt, RendersEveryBusyNode) {
  Instance inst(builders::star_of_paths(1, 2),
                {Job(0, 0.0, 2.0), Job(1, 1.0, 1.0)},
                EndpointModel::kIdentical);
  sim::EngineConfig cfg;
  cfg.record_schedule = true;
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0), cfg);
  const NodeId leaf = inst.tree().leaves()[0];
  eng.run_with_assignment({leaf, leaf});
  const std::string g = sim::render_gantt(inst, eng.recorder());
  // Both jobs appear (letters 'a' and 'b'), three processing rows.
  EXPECT_NE(g.find('a'), std::string::npos);
  EXPECT_NE(g.find('b'), std::string::npos);
  EXPECT_NE(g.find("router"), std::string::npos);
  EXPECT_NE(g.find("machine"), std::string::npos);
}

TEST(Gantt, RejectsDegenerateWindows) {
  Instance inst(builders::star_of_paths(1, 1), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  EXPECT_THROW(sim::render_gantt(inst, eng.recorder()),
               std::invalid_argument);  // nothing recorded -> empty window
}

TEST(OptSearch, NeverBeatsTheCertifiedLowerBound) {
  util::Rng rng(41);
  workload::WorkloadSpec spec;
  spec.jobs = 25;
  spec.load = 0.8;
  const Instance inst =
      workload::generate(rng, builders::star_of_paths(2, 2), spec);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  const auto found = lp::search_opt_upper_bound(inst, speeds);
  EXPECT_GE(found.best_flow, lp::combined_lower_bound(inst) - 1e-6);
  EXPECT_GT(found.evaluations, 0);
  EXPECT_EQ(found.best_assignment.size(),
            static_cast<std::size_t>(inst.job_count()));
}

TEST(OptSearch, ImprovesOnTheOnlineAlgorithm) {
  // Offline search with full knowledge should not lose to the online rule
  // at equal speeds (it can always reproduce the online assignment).
  util::Rng rng(43);
  workload::WorkloadSpec spec;
  spec.jobs = 30;
  spec.load = 0.9;
  const Instance inst =
      workload::generate(rng, builders::star_of_paths(2, 2), spec);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  const auto online = algo::run_named_policy(inst, speeds, "paper", 0.5);
  const auto found = lp::search_opt_upper_bound(inst, speeds);
  EXPECT_LE(found.best_flow, online.total_flow * 1.1);
}

TEST(Psw, TransitTimeMatchesHandComputation) {
  Instance inst(builders::star_of_paths(1, 3), {Job(0, 0.0, 2.0)},
                EndpointModel::kIdentical);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 2.0);
  // Three routers above the leaf, each 2.0/2.0 = 1.0.
  EXPECT_DOUBLE_EQ(algo::psw_transit_time(inst, speeds, 0,
                                          inst.tree().leaves()[0]),
                   3.0);
}

TEST(Psw, SingleJobFlowIsTransitPlusProcessing) {
  Instance inst(builders::star_of_paths(1, 2), {Job(0, 0.0, 2.0)},
                EndpointModel::kIdentical);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  const auto res = algo::run_psw_model(inst, speeds);
  EXPECT_DOUBLE_EQ(res.total_flow, 2.0 + 2.0 + 2.0);  // same as the engine
}

TEST(Psw, NeverSlowerThanTheTreeModel) {
  // PSW removes contention, so a PSW run should not exceed the tree-model
  // run of the same policy family on congested instances.
  util::Rng rng(47);
  workload::WorkloadSpec spec;
  spec.jobs = 200;
  spec.load = 0.95;
  const Instance inst =
      workload::generate(rng, builders::star_of_paths(2, 4), spec);
  const SpeedProfile speeds = SpeedProfile::uniform(inst.tree(), 1.0);
  const auto psw = algo::run_psw_model(inst, speeds);
  const auto tree_run = algo::run_named_policy(inst, speeds, "paper", 0.5);
  EXPECT_LT(psw.total_flow, tree_run.total_flow);
}

TEST(Psw, AllJobsComplete) {
  util::Rng rng(48);
  workload::WorkloadSpec spec;
  spec.jobs = 150;
  spec.endpoints = EndpointModel::kUnrelated;
  const Instance inst =
      workload::generate(rng, builders::fat_tree(2, 2, 2), spec);
  const auto res =
      algo::run_psw_model(inst, SpeedProfile::uniform(inst.tree(), 1.0));
  for (const Time c : res.completion) EXPECT_GE(c, 0.0);
}

TEST(TieBreak, RotateSpreadsEqualCostLeaves) {
  // Four equal-depth leaves under one root child: kFirst funnels to one
  // machine, kRotate cycles through all four.
  Tree tree = builders::caterpillar(1, 1, 4);
  std::vector<Job> jobs;
  for (int i = 0; i < 8; ++i) jobs.emplace_back(i, 0.1 * (i + 1), 1.0);
  Instance inst(std::move(tree), std::move(jobs), EndpointModel::kIdentical);

  const auto distinct_leaves = [&inst](algo::PaperGreedyPolicy& policy) {
    sim::Engine eng(inst, SpeedProfile::uniform(inst.tree(), 1.0));
    eng.run(policy);
    std::set<NodeId> used;
    for (JobId j = 0; j < inst.job_count(); ++j)
      used.insert(eng.assigned_leaf(j));
    return used.size();
  };

  algo::PaperGreedyPolicy first(0.5);
  algo::PaperGreedyPolicy rotate(0.5, 6.0 / 0.25,
                                 algo::PaperGreedyPolicy::TieBreak::kRotate);
  EXPECT_EQ(distinct_leaves(first), 1u);
  EXPECT_EQ(distinct_leaves(rotate), 4u);
}

}  // namespace
}  // namespace treesched
