// Thread pool + deterministic parallel map layer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "treesched/exec/parallel.hpp"
#include "treesched/exec/thread_pool.hpp"
#include "treesched/util/rng.hpp"

namespace treesched::exec {
namespace {

TEST(ThreadPool, RunsManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  futures.reserve(2000);
  for (int i = 0; i < 2000; ++i)
    futures.push_back(pool.submit([&counter, i] {
      counter.fetch_add(1);
      return i * 2;
    }));
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(counter.load(), 2000);
  EXPECT_EQ(sum, 2LL * (1999 * 2000 / 2));
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task exploded"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(
      {
        try {
          bad.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task exploded");
          throw;
        }
      },
      std::runtime_error);
  // A throwing task must not take its worker down with it.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasksWhileBusy) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1);
      });
    // Destroy while most tasks are still queued: shutdown must drain.
  }
  EXPECT_EQ(completed.load(), 50);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 0; }), std::runtime_error);
}

TEST(ThreadPool, CancelPendingBreaksPromises) {
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  auto blocker = pool.submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
    return 0;
  });
  {
    // Make sure the lone worker has actually dequeued `blocker` before we
    // enqueue the victims, so exactly those five are pending.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started; });
  }
  std::vector<std::future<int>> queued;
  for (int i = 0; i < 5; ++i)
    queued.push_back(pool.submit([i] { return i; }));
  EXPECT_EQ(pool.cancel_pending(), 5u);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_one();
  EXPECT_EQ(blocker.get(), 0);
  for (auto& f : queued) EXPECT_THROW(f.get(), std::future_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 30; ++i)
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      done.fetch_add(1);
    });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 30);
}

TEST(ThreadPool, ThrowAfterPartialOutputLeavesPoolAndDataConsistent) {
  // A task that mutates shared state and then throws must not wedge the
  // worker or corrupt the pool: its partial output stays visible, the
  // exception arrives through the future, later tasks still run.
  ThreadPool pool(2);
  std::atomic<int> partial{0};
  auto bad = pool.submit([&partial]() -> int {
    partial.fetch_add(1);  // partial output before the failure
    throw std::runtime_error("died mid-write");
  });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(partial.load(), 1);
  EXPECT_EQ(pool.submit([] { return 41; }).get(), 41);
}

TEST(ThreadPool, CancelPendingRacesConcurrentSubmitters) {
  // Submitters and a canceller race; every submitted task must end exactly
  // one way: executed (counted) or broken promise. Nothing may be lost or
  // run twice.
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  std::atomic<std::size_t> dropped{0};
  std::vector<std::future<int>> futures;
  std::mutex futures_mu;
  std::vector<std::thread> submitters;
  submitters.reserve(3);
  for (int s = 0; s < 3; ++s)
    submitters.emplace_back([&pool, &executed, &futures, &futures_mu] {
      for (int i = 0; i < 40; ++i) {
        auto f = pool.submit([&executed] {
          executed.fetch_add(1);
          return 0;
        });
        const std::lock_guard<std::mutex> lock(futures_mu);
        futures.push_back(std::move(f));
      }
    });
  for (int k = 0; k < 20; ++k) {
    dropped.fetch_add(pool.cancel_pending());
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  std::size_t broken = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const std::future_error&) {
      ++broken;
    }
  }
  EXPECT_EQ(broken, dropped.load());
  EXPECT_EQ(executed.load() + static_cast<int>(broken), 3 * 40);
}

TEST(ThreadPool, AbandonWithWedgedTaskReturnsPromptly) {
  // One worker is wedged forever; abandon() + destruction must not block.
  // The wedge state is shared_ptr-owned so the detached worker can outlive
  // both the pool and this test's stack frame safely.
  struct Wedge {
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
  };
  auto wedge = std::make_shared<Wedge>();
  const auto t0 = std::chrono::steady_clock::now();
  {
    ThreadPool pool(1);
    pool.submit([wedge] {
      std::unique_lock<std::mutex> lock(wedge->mu);
      wedge->cv.wait(lock, [&wedge] { return wedge->release; });
    });
    pool.submit([] {});  // queued behind the wedge, dropped below
    pool.cancel_pending();
    pool.abandon();
  }  // destructor: must not join the wedged worker
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
  {
    // Unwedge so the detached thread exits instead of leaking blocked.
    const std::lock_guard<std::mutex> lock(wedge->mu);
    wedge->release = true;
  }
  wedge->cv.notify_all();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

TEST(GatherCancellable, CollectsReadyResultsAndMarksRestCancelled) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<std::future<int>> futures;
  futures.push_back(pool.submit([] { return 5; }));
  futures.push_back(pool.submit([&]() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    return 6;
  }));
  futures[0].wait();
  std::atomic<bool> cancel{true};
  const auto report =
      gather_cancellable(futures, std::chrono::milliseconds(0), &cancel);
  EXPECT_EQ(report.values[0], 5);
  EXPECT_FALSE(report.values[1].has_value());
  ASSERT_EQ(report.cancelled.size(), 1u);
  EXPECT_EQ(report.cancelled[0], 1u);
  EXPECT_TRUE(report.timed_out.empty());
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_one();
}

TEST(GatherWithDeadline, ReportsTimeoutsInsteadOfHanging) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<std::future<int>> futures;
  futures.push_back(pool.submit([] { return 10; }));
  futures.push_back(pool.submit([&]() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    return 11;
  }));
  futures.push_back(pool.submit([] { return 12; }));
  const auto report =
      gather_with_deadline(futures, std::chrono::milliseconds(50));
  ASSERT_EQ(report.values.size(), 3u);
  EXPECT_EQ(report.values[0], 10);
  EXPECT_FALSE(report.values[1].has_value());
  EXPECT_EQ(report.values[2], 12);
  ASSERT_EQ(report.timed_out.size(), 1u);
  EXPECT_EQ(report.timed_out[0], 1u);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_one();
}

TEST(GatherWithDeadline, CollectsFailuresWithMessages) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  futures.push_back(pool.submit([] { return 1; }));
  futures.push_back(
      pool.submit([]() -> int { throw std::invalid_argument("nope"); }));
  const auto report =
      gather_with_deadline(futures, std::chrono::milliseconds(0));
  EXPECT_TRUE(report.timed_out.empty());
  ASSERT_EQ(report.failed.size(), 1u);
  EXPECT_EQ(report.failed[0].first, 1u);
  EXPECT_EQ(report.failed[0].second, "nope");
}

TEST(ParallelMap, MatchesSequentialForEveryThreadCount) {
  const auto body = [](std::size_t i) {
    // Deterministic per-index stream, as all sweep tasks are seeded.
    util::Rng rng(util::split_seed(99, i));
    double acc = 0.0;
    for (int k = 0; k < 100; ++k) acc += rng.uniform01();
    return acc;
  };
  const auto expected = parallel_map(1, 64, body);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const auto got = parallel_map(threads, 64, body);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(got[i], expected[i]) << "index " << i << " at " << threads
                                     << " threads";
  }
}

TEST(ParallelMap, RethrowsTaskException) {
  EXPECT_THROW(parallel_map(4, 16,
                            [](std::size_t i) -> int {
                              if (i == 9) throw std::runtime_error("boom");
                              return static_cast<int>(i);
                            }),
               std::runtime_error);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(128);
  parallel_for(6, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DefaultThreadCount, HonorsEnvOverride) {
  ASSERT_EQ(setenv("TREESCHED_THREADS", "3", 1), 0);
  EXPECT_EQ(default_thread_count(), 3u);
  ASSERT_EQ(setenv("TREESCHED_THREADS", "1", 1), 0);
  EXPECT_EQ(default_thread_count(), 1u);
  ASSERT_EQ(setenv("TREESCHED_THREADS", "garbage", 1), 0);
  EXPECT_EQ(default_thread_count(), hardware_threads());
  ASSERT_EQ(unsetenv("TREESCHED_THREADS"), 0);
  EXPECT_EQ(default_thread_count(), hardware_threads());
}

}  // namespace
}  // namespace treesched::exec
