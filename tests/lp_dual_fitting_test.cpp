// The dual-fitting construction of Sections 3.5/3.6, verified numerically:
// the constructed duals must be feasible after the paper's scaling, the
// alpha variables must integrate to the algorithm's fractional cost, and
// weak duality must hold against the exact LP optimum on tiny instances.
#include <gtest/gtest.h>

#include <cmath>

#include "treesched/core/tree_builders.hpp"
#include "treesched/lp/dual_fitting.hpp"
#include "treesched/lp/flowtime_lp.hpp"
#include "treesched/util/class_rounding.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched {
namespace {

Instance random_broomstick_instance(std::uint64_t seed, int jobs, double eps,
                                    bool unrelated) {
  Tree tree = builders::broomstick({3, 4}, {{2, 3}, {2, 4}});
  util::Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.jobs = jobs;
  spec.load = 0.8;
  spec.sizes.class_eps = eps;
  spec.sizes.scale = 2.0;
  if (unrelated) {
    spec.endpoints = EndpointModel::kUnrelated;
    spec.unrelated.class_eps = eps;
  }
  return workload::generate(rng, std::move(tree), spec);
}

class DualFitIdentical
    : public testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(DualFitIdentical, ConstraintsFeasibleAndAlphaMatchesCost) {
  const auto [seed, eps] = GetParam();
  const Instance inst = random_broomstick_instance(seed, 60, eps, false);
  const auto rep = lp::dual_fit_identical(inst, eps);

  EXPECT_TRUE(rep.feasible()) << rep.summary();
  EXPECT_GT(rep.checks, 0);
  // Section 3.5: sum_{v,t} alpha equals the algorithm's fractional cost.
  EXPECT_NEAR(rep.alpha_integral, rep.alg_fractional,
              1e-6 * std::max(1.0, rep.alg_fractional));
  // The dual objective must be positive (it certifies competitiveness).
  EXPECT_GT(rep.dual_objective, 0.0);
  EXPECT_GT(rep.certificate_ratio, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DualFitIdentical,
    testing::Combine(testing::Values(1u, 2u, 3u, 4u),
                     testing::Values(0.25, 0.5, 1.0)));

class DualFitUnrelated
    : public testing::TestWithParam<std::uint64_t> {};

TEST_P(DualFitUnrelated, ConstraintsFeasibleAndAlphaIsTwiceCost) {
  const double eps = 0.5;
  const Instance inst = random_broomstick_instance(GetParam(), 50, eps, true);
  const auto rep = lp::dual_fit_unrelated(inst, eps);
  EXPECT_TRUE(rep.feasible()) << rep.summary();
  // Section 3.6: the alphas double-count (root children + leaves).
  EXPECT_NEAR(rep.alpha_integral, 2.0 * rep.alg_fractional,
              1e-6 * std::max(1.0, rep.alg_fractional));
  EXPECT_GT(rep.dual_objective, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DualFitUnrelated,
                         testing::Values(11u, 12u, 13u, 14u));

TEST(DualFit, WeakDualityAgainstExactLp) {
  // On a tiny instance with integer releases, the scaled dual objective
  // must lower-bound the exact LP optimum (computed at the paper's
  // augmented speeds, the LP the duals are fit against).
  Tree tree = builders::broomstick({3}, {{2, 3}});
  const double eps = 0.5;
  std::vector<Job> jobs;
  jobs.emplace_back(0, 0.0, util::round_up_to_class(1.8, eps));
  jobs.emplace_back(1, 1.0, util::round_up_to_class(0.9, eps));
  jobs.emplace_back(2, 2.0, util::round_up_to_class(2.7, eps));
  Instance inst(std::move(tree), std::move(jobs), EndpointModel::kIdentical);

  const auto rep = lp::dual_fit_identical(inst, eps);
  ASSERT_TRUE(rep.feasible()) << rep.summary();

  const auto lp_res = lp::solve_flowtime_lp(
      inst, SpeedProfile::paper_identical(inst.tree(), eps));
  ASSERT_EQ(lp_res.status, lp::LpStatus::kOptimal);
  EXPECT_LE(rep.dual_objective, lp_res.objective + 1e-6)
      << "weak duality violated";
}

TEST(DualFit, RejectsNonBroomsticks) {
  Instance inst(builders::figure1_tree(), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  EXPECT_THROW(lp::dual_fit_identical(inst, 0.5), std::invalid_argument);
}

TEST(DualFit, RejectsModelMismatch) {
  Tree tree = builders::broomstick({2}, {{2}});
  Instance inst(std::move(tree), {Job(0, 0.0, 1.0)},
                EndpointModel::kIdentical);
  EXPECT_THROW(lp::dual_fit_unrelated(inst, 0.5), std::invalid_argument);
}

TEST(DualFit, CertificateScalesWithEpsilonAsTheorem5Predicts) {
  // Theorem 5: the competitive ratio certificate should grow as eps
  // shrinks (O(1/eps^3)); check monotonicity over a 2x eps range.
  const Instance inst = random_broomstick_instance(7, 60, 0.25, false);
  const auto tight = lp::dual_fit_identical(inst, 0.25);
  const auto loose = lp::dual_fit_identical(inst, 1.0);
  ASSERT_TRUE(tight.feasible()) << tight.summary();
  ASSERT_TRUE(loose.feasible()) << loose.summary();
  EXPECT_GT(tight.certificate_ratio, loose.certificate_ratio);
}

}  // namespace
}  // namespace treesched
