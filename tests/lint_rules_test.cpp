// Unit tests for the treesched_lint rule matchers: one accept and one
// reject snippet per rule, suppression round-trips, and the stability of
// the JSON report. Fixture-file versions of the same accept/reject pairs
// live in tests/lint_fixtures/ (exercised by lint_fixtures_test).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "treesched/lint/lint.hpp"

using treesched::lint::Finding;
using treesched::lint::lint_source;

namespace {

int count_rule(const std::vector<Finding>& fs, const std::string& rule,
               bool include_suppressed = false) {
  int n = 0;
  for (const Finding& f : fs)
    if (f.rule == rule && (include_suppressed || !f.suppressed)) ++n;
  return n;
}

// --- det-wallclock ---------------------------------------------------------

TEST(LintRules, WallclockRejectsChronoNow) {
  const auto fs = lint_source(
      "void f() { auto t = std::chrono::steady_clock::now(); }",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-wallclock"), 1);
}

TEST(LintRules, WallclockRejectsLibcTime) {
  const auto fs =
      lint_source("long f() { return time(nullptr) + clock(); }",
                  "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-wallclock"), 2);
}

TEST(LintRules, WallclockRejectsRandomDevice) {
  const auto fs = lint_source("std::random_device rd;",
                              "src/treesched/workload/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-wallclock"), 1);
}

TEST(LintRules, WallclockAcceptsSimulationTimeMemberCall) {
  const auto fs = lint_source(
      "double f(const Engine& engine) { return engine.now(); }",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-wallclock"), 0);
}

TEST(LintRules, WallclockAcceptsMemberNamedTime) {
  const auto fs = lint_source("double f(Rec r) { return r.time(3); }",
                              "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-wallclock"), 0);
}

TEST(LintRules, WallclockExemptsUtilShims) {
  const auto fs = lint_source(
      "void f() { auto t = std::chrono::steady_clock::now(); }",
      "src/treesched/util/stopwatch.hpp");
  EXPECT_EQ(count_rule(fs, "det-wallclock"), 0);
}

TEST(LintRules, WallclockIgnoresStringsAndComments) {
  const auto fs = lint_source(
      "// rand() here\nconst char* s = \"time(0)\";  /* clock() */",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-wallclock"), 0);
}

// --- det-raw-rng -----------------------------------------------------------

TEST(LintRules, RawRngRejectsMt19937AndDistributions) {
  const auto fs = lint_source(
      "std::mt19937 gen(42);\nstd::uniform_int_distribution<int> d(0, 9);",
      "src/treesched/workload/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-raw-rng"), 2);
}

TEST(LintRules, RawRngAcceptsUtilRng) {
  const auto fs = lint_source(
      "util::Rng rng(util::split_seed(seed, 3));\ndouble x = rng.uniform();",
      "src/treesched/workload/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-raw-rng"), 0);
}

// --- det-unordered-iter ----------------------------------------------------

TEST(LintRules, UnorderedIterRejectsIterationInEmittingTu) {
  const auto fs = lint_source(
      "void dump(std::ostream& os) {\n"
      "  std::unordered_map<int, double> m;\n"
      "  for (const auto& [k, v] : m) os << \"json\" << k;\n"
      "}",
      "src/treesched/exec/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-unordered-iter"), 1);
}

TEST(LintRules, UnorderedIterRejectsPointerKeyedMap) {
  const auto fs = lint_source(
      "std::map<Node*, int> m;\nvoid emit_json(std::ostream& os);",
      "src/treesched/exec/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-unordered-iter"), 1);
}

TEST(LintRules, UnorderedIterAcceptsLookupOnlyUse) {
  const auto fs = lint_source(
      "int get(const std::unordered_map<int, int>& m, int k) {\n"
      "  return m.at(k);  // point lookups are order-free\n"
      "}\nvoid emit_json(std::ostream& os);",
      "src/treesched/exec/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-unordered-iter"), 0);
}

TEST(LintRules, UnorderedIterAcceptsNonEmittingTu) {
  const auto fs = lint_source(
      "std::unordered_map<int, int> m;\n"
      "void f() { for (const auto& kv : m) use(kv); }",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-unordered-iter"), 0);
}

// --- inv-raw-id-cast -------------------------------------------------------

TEST(LintRules, RawIdCastRejectsSizeTCastOfId) {
  const auto fs =
      lint_source("std::size_t i = static_cast<std::size_t>(node_id);",
                  "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "inv-raw-id-cast"), 1);
}

TEST(LintRules, RawIdCastRejectsIntCastOfMemberId) {
  const auto fs = lint_source("int i = static_cast<int>(job.id);",
                              "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "inv-raw-id-cast"), 1);
}

TEST(LintRules, RawIdCastAcceptsUidx) {
  const auto fs = lint_source("std::size_t i = uidx(node_id);",
                              "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "inv-raw-id-cast"), 0);
}

TEST(LintRules, RawIdCastAcceptsNonIdMember) {
  // `job.size` casts the size member, not the job id: the member chain's
  // last name decides.
  const auto fs = lint_source(
      "auto c = static_cast<std::int32_t>(std::ceil(job.size / chunk));",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "inv-raw-id-cast"), 0);
}

TEST(LintRules, RawIdCastAcceptsFloatTarget) {
  const auto fs = lint_source("double d = static_cast<double>(node_id);",
                              "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "inv-raw-id-cast"), 0);
}

// --- inv-fp-accum ----------------------------------------------------------

TEST(LintRules, FpAccumRejectsNaiveLoopSum) {
  const auto fs = lint_source(
      "double f(const std::vector<double>& xs) {\n"
      "  double total = 0.0;\n"
      "  for (double x : xs) total += x;\n"
      "  return total;\n"
      "}",
      "src/treesched/stats/x.cpp");
  EXPECT_EQ(count_rule(fs, "inv-fp-accum"), 1);
}

TEST(LintRules, FpAccumAcceptsCompensatedSum) {
  const auto fs = lint_source(
      "double f(const std::vector<double>& xs) {\n"
      "  util::CompensatedSum total;\n"
      "  for (double x : xs) total.add(x);\n"
      "  return total.value();\n"
      "}",
      "src/treesched/stats/x.cpp");
  EXPECT_EQ(count_rule(fs, "inv-fp-accum"), 0);
}

TEST(LintRules, FpAccumIgnoresOutOfScopeDirs) {
  const auto fs = lint_source(
      "double f(const std::vector<double>& xs) {\n"
      "  double total = 0.0;\n"
      "  for (double x : xs) total += x;\n"
      "  return total;\n"
      "}",
      "src/treesched/algo/x.cpp");
  EXPECT_EQ(count_rule(fs, "inv-fp-accum"), 0);
}

TEST(LintRules, FpAccumIgnoresMemberFieldsSharingALocalName) {
  const auto fs = lint_source(
      "void f(std::vector<Agg>& as) {\n"
      "  double work = 1.0;\n"
      "  for (Agg& a : as) a.work += work;\n"
      "}",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "inv-fp-accum"), 0);
}

// --- inv-metrics-audit-ref -------------------------------------------------

TEST(LintRules, MetricsAuditRefRejectsUntaggedAccessor) {
  const auto fs = lint_source(
      "class Metrics {\n"
      " public:\n"
      "  /// Some metric.\n"
      "  double shiny_metric() const;\n"
      "};",
      "src/treesched/sim/metrics.hpp");
  EXPECT_EQ(count_rule(fs, "inv-metrics-audit-ref"), 1);
}

TEST(LintRules, MetricsAuditRefAcceptsTaggedAccessor) {
  const auto fs = lint_source(
      "class Metrics {\n"
      " public:\n"
      "  /// Some metric. audit: none(derived from audited quantities).\n"
      "  double shiny_metric() const;\n"
      "};",
      "src/treesched/sim/metrics.hpp");
  EXPECT_EQ(count_rule(fs, "inv-metrics-audit-ref"), 0);
}

TEST(LintRules, MetricsAuditRefOnlyAppliesToMetricsHeader) {
  const auto fs = lint_source(
      "class Metrics {\n public:\n  double shiny_metric() const;\n};",
      "src/treesched/sim/other.hpp");
  EXPECT_EQ(count_rule(fs, "inv-metrics-audit-ref"), 0);
}

// --- hyg-pragma-once -------------------------------------------------------

TEST(LintRules, PragmaOnceRejectsUnguardedHeader) {
  const auto fs = lint_source("int x;\n", "src/treesched/core/x.hpp");
  EXPECT_EQ(count_rule(fs, "hyg-pragma-once"), 1);
}

TEST(LintRules, PragmaOnceAcceptsPragmaOnce) {
  const auto fs =
      lint_source("#pragma once\nint x;\n", "src/treesched/core/x.hpp");
  EXPECT_EQ(count_rule(fs, "hyg-pragma-once"), 0);
}

TEST(LintRules, PragmaOnceAcceptsClassicGuard) {
  const auto fs = lint_source(
      "#ifndef TREESCHED_X_HPP\n#define TREESCHED_X_HPP\nint x;\n#endif\n",
      "src/treesched/core/x.hpp");
  EXPECT_EQ(count_rule(fs, "hyg-pragma-once"), 0);
}

TEST(LintRules, PragmaOnceIgnoresCppFiles) {
  const auto fs = lint_source("int x;\n", "src/treesched/core/x.cpp");
  EXPECT_EQ(count_rule(fs, "hyg-pragma-once"), 0);
}

// --- hyg-todo-ref ----------------------------------------------------------

TEST(LintRules, TodoRejectsBareTodo) {
  const auto fs = lint_source("// TODO fix this later\nint x;",
                              "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "hyg-todo-ref"), 1);
}

TEST(LintRules, TodoAcceptsIssueReference) {
  const auto fs = lint_source(
      "// TODO(#42): narrow this bound\n// TODO(issue-7): and this\nint x;",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "hyg-todo-ref"), 0);
}

TEST(LintRules, TodoAcceptsProseMentions) {
  const auto fs = lint_source(
      "// Strips TODO markers from generated code.\nint x;",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "hyg-todo-ref"), 0);
}

TEST(LintRules, TodoFindsMarkerInsideBlockCommentLines) {
  const auto fs = lint_source("/*\n * TODO handle overflow\n */\nint x;",
                              "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "hyg-todo-ref"), 1);
}

// --- hyg-assert-side-effect ------------------------------------------------

TEST(LintRules, AssertSideEffectRejectsIncrement) {
  const auto fs = lint_source("void f(int x) { assert(x++ > 0); }",
                              "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "hyg-assert-side-effect"), 1);
}

TEST(LintRules, AssertSideEffectRejectsTsCheckIncrement) {
  const auto fs =
      lint_source("void f(long g) { TS_CHECK(++g < 10, \"stuck\"); }",
                  "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "hyg-assert-side-effect"), 1);
}

TEST(LintRules, AssertSideEffectAcceptsPureCondition) {
  const auto fs = lint_source(
      "void f(int x) { assert(x + 1 > 0); TS_REQUIRE(x == 3, \"msg\"); }",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "hyg-assert-side-effect"), 0);
}

TEST(LintRules, AssertSideEffectIgnoresTsMessageArgument) {
  // Only the condition must be pure; the message argument may build state.
  const auto fs = lint_source(
      "void f(int x, std::string m) { TS_CHECK(x > 0, m += \"!\"); }",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "hyg-assert-side-effect"), 0);
}

// --- suppressions ----------------------------------------------------------

TEST(LintSuppression, TrailingAllowSuppressesOwnLine) {
  const auto fs = lint_source(
      "long t = time(nullptr);  "
      "// treesched-lint: allow(det-wallclock): test harness wall time\n",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-wallclock"), 0);
  EXPECT_EQ(count_rule(fs, "det-wallclock", true), 1);
  for (const auto& f : fs)
    if (f.rule == "det-wallclock") {
      EXPECT_TRUE(f.suppressed);
      EXPECT_EQ(f.justification, "test harness wall time");
    }
}

TEST(LintSuppression, StandaloneAllowCoversWholeNextStatement) {
  const auto fs = lint_source(
      "// treesched-lint: allow(det-wallclock): deadline only, not output\n"
      "const auto deadline =\n"
      "    bounded ? Clock::now() + timeout : Clock::time_point::max();\n",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-wallclock"), 0);
  EXPECT_EQ(count_rule(fs, "det-wallclock", true), 1);
}

TEST(LintSuppression, AllowDoesNotLeakPastItsStatement) {
  const auto fs = lint_source(
      "// treesched-lint: allow(det-wallclock): first call only\n"
      "long a = time(nullptr);\n"
      "long b = time(nullptr);\n",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-wallclock"), 1);
}

TEST(LintSuppression, AllowOfDifferentRuleDoesNotSuppress) {
  const auto fs = lint_source(
      "// treesched-lint: allow(det-raw-rng): wrong rule\n"
      "long a = time(nullptr);\n",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "det-wallclock"), 1);
  EXPECT_EQ(count_rule(fs, "lint-stale-suppression"), 1);
}

TEST(LintSuppression, MissingJustificationIsBadSuppression) {
  const auto fs = lint_source(
      "// treesched-lint: allow(det-wallclock)\nlong a = time(nullptr);\n",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "lint-bad-suppression"), 1);
  EXPECT_EQ(count_rule(fs, "det-wallclock"), 1);  // not suppressed
}

TEST(LintSuppression, UnknownRuleIsBadSuppression) {
  const auto fs = lint_source(
      "// treesched-lint: allow(not-a-rule): because\nint x;\n",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "lint-bad-suppression"), 1);
}

TEST(LintSuppression, StaleAllowIsReported) {
  const auto fs = lint_source(
      "// treesched-lint: allow(det-wallclock): nothing here needs it\n"
      "int x = 3;\n",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "lint-stale-suppression"), 1);
}

TEST(LintSuppression, ProseQuotingTheSyntaxIsNotAnAnnotation) {
  const auto fs = lint_source(
      "/// Suppress with `// treesched-lint: allow(det-wallclock): why`.\n"
      "int x = 3;\n",
      "src/treesched/sim/x.cpp");
  EXPECT_EQ(count_rule(fs, "lint-bad-suppression"), 0);
  EXPECT_EQ(count_rule(fs, "lint-stale-suppression"), 0);
}

// --- report ----------------------------------------------------------------

TEST(LintReport, JsonCarriesSchemaAndFindings) {
  treesched::lint::Report report;
  report.files_scanned = 1;
  report.findings = lint_source("long a = time(nullptr);\n",
                                "src/treesched/sim/x.cpp");
  const std::string json = treesched::lint::report_json(report);
  EXPECT_NE(json.find("\"schema\": \"treesched-lint-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"det-wallclock\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": false"), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed\": 1"), std::string::npos);
}

TEST(LintReport, CatalogueHasStableRuleSet) {
  const auto& rules = treesched::lint::rule_catalogue();
  EXPECT_EQ(rules.size(), 13u);
  // Spot-check ids the docs and suppressions depend on.
  bool has_wallclock = false, has_stale = false, has_sketch = false;
  bool has_hot_container = false;
  for (const auto& r : rules) {
    if (std::string(r.id) == "det-wallclock") has_wallclock = true;
    if (std::string(r.id) == "lint-stale-suppression") has_stale = true;
    if (std::string(r.id) == "det-sketch-merge") has_sketch = true;
    if (std::string(r.id) == "perf-engine-hot-container")
      has_hot_container = true;
  }
  EXPECT_TRUE(has_wallclock);
  EXPECT_TRUE(has_stale);
  EXPECT_TRUE(has_sketch);
  EXPECT_TRUE(has_hot_container);
}

}  // namespace
