// Shared helpers for the experiment (bench) binaries: standard topologies,
// ratio measurement against the certified lower bounds, repetition loops.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "treesched/algo/runner.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/workload/generator.hpp"

namespace treesched::experiments {

/// Named topology set used across experiments (E11 sweeps all of them).
struct NamedTree {
  std::string name;
  Tree tree;
};
std::vector<NamedTree> standard_trees();

/// One policy-vs-lower-bound measurement.
struct RatioResult {
  double alg_flow = 0.0;       ///< total flow time of the algorithm
  double alg_fractional = 0.0;
  double lower_bound = 0.0;    ///< certified LB on OPT total flow time
  double ratio = 0.0;          ///< alg_flow / lower_bound

  /// Per-job average flow (for readability in tables).
  double mean_flow = 0.0;
};

/// Runs `policy_name` on the instance with the given speeds and divides by
/// the combined lower bound (computed at adversary speed 1). The returned
/// ratio *upper-bounds* the true competitive ratio on this instance.
RatioResult measure_ratio(const Instance& instance, const SpeedProfile& speeds,
                          const std::string& policy_name, double eps,
                          std::uint64_t seed = 1,
                          sim::EngineConfig cfg = {});

/// Repeats `body(rep_seed)` `reps` times and returns the collected values
/// in rep order (for mean/CI reporting). Rep r gets util::split_seed(seed, r)
/// and the reps run on the exec thread pool (TREESCHED_THREADS workers,
/// default hardware concurrency; 1 = sequential in the caller's thread), so
/// `body` must not touch shared mutable state. Results are bit-identical at
/// any thread count.
std::vector<double> repeat(std::uint64_t seed, int reps,
                           const std::function<double(std::uint64_t)>& body);

/// Geometric epsilon sweep used by the theorem experiments.
std::vector<double> epsilon_sweep();

}  // namespace treesched::experiments
