#include "treesched/experiments/harness.hpp"

#include "treesched/exec/parallel.hpp"
#include "treesched/lp/lower_bounds.hpp"
#include "treesched/util/rng.hpp"

namespace treesched::experiments {

std::vector<NamedTree> standard_trees() {
  std::vector<NamedTree> out;
  out.push_back({"star-2x3", builders::star_of_paths(2, 3)});
  out.push_back({"star-4x2", builders::star_of_paths(4, 2)});
  out.push_back({"fat-2x2x2", builders::fat_tree(2, 2, 2)});
  out.push_back({"caterpillar-2x3x2", builders::caterpillar(2, 3, 2)});
  out.push_back({"deep-spine-1x8", builders::star_of_paths(1, 8)});
  out.push_back({"figure1", builders::figure1_tree()});
  util::Rng rng(0xF00D);
  out.push_back({"random-8r-10l", builders::random_tree(rng, 8, 10)});
  return out;
}

RatioResult measure_ratio(const Instance& instance, const SpeedProfile& speeds,
                          const std::string& policy_name, double eps,
                          std::uint64_t seed, sim::EngineConfig cfg) {
  const algo::RunResult run =
      algo::run_named_policy(instance, speeds, policy_name, eps, seed, cfg);
  RatioResult r;
  r.alg_flow = run.total_flow;
  r.alg_fractional = run.fractional_flow;
  r.mean_flow = run.mean_flow;
  r.lower_bound = lp::combined_lower_bound(instance);
  r.ratio = r.lower_bound > 0.0 ? r.alg_flow / r.lower_bound : 0.0;
  return r;
}

std::vector<double> repeat(std::uint64_t seed, int reps,
                           const std::function<double(std::uint64_t)>& body) {
  // Rep r's seed depends only on (seed, r), and results come back in rep
  // order, so the vector is identical at any TREESCHED_THREADS setting.
  return exec::parallel_map(
      exec::default_thread_count(), uidx(reps),
      [&](std::size_t r) { return body(util::split_seed(seed, r)); });
}

std::vector<double> epsilon_sweep() { return {2.0, 1.0, 0.5, 0.25, 0.125}; }

}  // namespace treesched::experiments
