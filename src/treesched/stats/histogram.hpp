// Logarithmic-bucket histogram for flow-time distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace treesched::stats {

/// Histogram with geometrically growing buckets: [0, lo), [lo, lo*g), ...
/// Designed for flow times whose range spans several orders of magnitude.
class LogHistogram {
 public:
  /// lo > 0 is the first finite bucket edge, growth > 1 the bucket ratio.
  LogHistogram(double lo, double growth, std::size_t max_buckets = 64);

  void add(double x);
  std::size_t total() const { return total_; }

  /// Bucket count (including the underflow bucket [0, lo)).
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_[bucket]; }
  /// Inclusive lower edge of the bucket.
  double lower_edge(std::size_t bucket) const;

  /// Simple ASCII bar rendering (for examples).
  std::string to_ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double growth_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace treesched::stats
