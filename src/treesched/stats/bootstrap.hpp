// Bootstrap confidence intervals for experiment repetitions.
#pragma once

#include <utility>
#include <vector>

#include "treesched/util/rng.hpp"

namespace treesched::stats {

/// Percentile-bootstrap confidence interval for the mean of `samples`.
/// `confidence` in (0, 1); `resamples` bootstrap iterations.
std::pair<double, double> bootstrap_mean_ci(util::Rng& rng,
                                            const std::vector<double>& samples,
                                            double confidence = 0.95,
                                            int resamples = 1000);

}  // namespace treesched::stats
