#include "treesched/stats/bootstrap.hpp"

#include <algorithm>

#include "treesched/core/types.hpp"
#include "treesched/stats/summary.hpp"
#include "treesched/util/assert.hpp"
#include "treesched/util/csum.hpp"

namespace treesched::stats {

std::pair<double, double> bootstrap_mean_ci(util::Rng& rng,
                                            const std::vector<double>& samples,
                                            double confidence, int resamples) {
  TS_REQUIRE(!samples.empty(), "bootstrap of empty sample");
  TS_REQUIRE(confidence > 0.0 && confidence < 1.0, "confidence in (0,1)");
  TS_REQUIRE(resamples >= 10, "need at least 10 resamples");
  const std::int64_t n = static_cast<std::int64_t>(samples.size());
  std::vector<double> means;
  means.reserve(uidx(resamples));
  for (int r = 0; r < resamples; ++r) {
    util::CompensatedSum sum;
    for (std::int64_t i = 0; i < n; ++i)
      sum.add(samples[static_cast<std::size_t>(rng.uniform_int(0, n - 1))]);
    means.push_back(sum.value() / static_cast<double>(n));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  return {percentile(means, alpha), percentile(means, 1.0 - alpha)};
}

}  // namespace treesched::stats
