// Bounded-memory online quantile estimation for streaming endurance runs.
//
// Two from-scratch sketches back `sim::Metrics`' streaming mode, where the
// per-job flow-time vector no longer exists:
//
//  * P2Quantile — the P² algorithm (Jain & Chlamtac, CACM 1985): five
//    markers track one fixed quantile with O(1) state. Exact below five
//    observations; afterwards the markers move by parabolic (falling back
//    to linear) interpolation. Cheap, but single-quantile and with no
//    distribution-free error bound — kept as an independent cross-check
//    against the mergeable digest.
//
//  * QuantileDigest — a mergeable t-digest-style centroid sketch with a
//    UNIFORM weight cap (the k0 scale function): at most ~2*max_centroids
//    (mean, weight) centroids, compressed by a deterministic sorted sweep
//    that never lets one centroid exceed ceil(count / max_centroids).
//    Quantile queries answer with the mean of the centroid covering the
//    target rank, so the documented contract is a RANK error bound, the
//    right notion for heavy-tailed flow times where value error is
//    unbounded:
//
//        |true_rank(quantile(q)) - q*n| <= n/max_centroids + buffered
//
//    i.e. at the default max_centroids = 256 the estimate's rank is within
//    ~0.4% of the requested one (tested in stats_sketch_test at the
//    conservative 2/max_centroids). Rank contiguity of merged centroids is
//    exact for sorted inserts and empirically tight for the interleaved
//    ones; the CI bound carries the factor-2 slack for that reason.
//
// Determinism contract: both sketches are pure functions of their insertion
// sequence (no randomness, no wall clock, stable sorts only), so streaming
// runs stay byte-reproducible across thread counts, query modes, and
// kill/resume. Queries are const and never mutate sketch state — snapshots
// taken before and after a query are byte-identical.
//
// Merging: QuantileDigest::absorb_unordered(other) is the order-SENSITIVE
// primitive — absorbing A then B and B then A give different (both valid)
// centroid sets. Every call site outside src/treesched/stats/ must instead
// go through merge_deterministic(), which fixes the fold order to the
// caller's vector index order; treesched_lint's `det-sketch-merge` rule
// enforces this.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace treesched::stats {

/// P² fixed-marker estimator for one quantile q in (0, 1).
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate; exact (order statistic at rank ceil(q*n)) below five
  /// observations, the P² middle-marker height afterwards. NaN when empty.
  double estimate() const;

  std::uint64_t count() const { return count_; }
  double q() const { return q_; }

  /// Text round-trip (full %.17g precision) for engine snapshots. save()
  /// appends an FNV-1a-64 self-checksum line; load() re-serializes the
  /// parsed state and rejects (std::invalid_argument) any bytes that do not
  /// reproduce the checksum — truncated or bit-flipped state never loads.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::string payload() const;  ///< canonical serialized state (checksummed)

  double q_;
  std::uint64_t count_ = 0;
  double height_[5] = {0, 0, 0, 0, 0};   ///< marker heights q0..q4
  double pos_[5] = {1, 2, 3, 4, 5};      ///< actual marker positions n_i
  double desired_[5] = {0, 0, 0, 0, 0};  ///< desired positions n'_i
  double incr_[5] = {0, 0, 0, 0, 0};     ///< dn'_i per observation
};

/// Mergeable centroid digest with a uniform weight cap (see file comment).
class QuantileDigest {
 public:
  explicit QuantileDigest(std::size_t max_centroids = 256);

  void add(double x);

  /// Rank-bounded quantile estimate (NaN when empty; exact min/max at the
  /// endpoints). Const: builds a temporary merged view, mutates nothing.
  double quantile(double q) const;

  std::uint64_t count() const { return count_; }
  std::size_t max_centroids() const { return max_centroids_; }
  /// Compressed centroid count (excludes the unmerged buffer).
  std::size_t centroid_count() const { return centroids_.size(); }
  double min() const;
  double max() const;

  /// Folds `other` into this sketch. ORDER-SENSITIVE: the resulting
  /// centroid set depends on the absorb order, so calling this directly
  /// outside src/treesched/stats/ is rejected by treesched_lint's
  /// `det-sketch-merge` rule — route through merge_deterministic().
  void absorb_unordered(const QuantileDigest& other);

  /// Text round-trip (full %.17g precision) for engine snapshots. Same
  /// self-checksum contract as P2Quantile: corrupt state is rejected with
  /// std::invalid_argument, never silently mis-loaded.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  struct Centroid {
    double mean = 0.0;
    double weight = 0.0;
  };

  void compress();
  std::string payload() const;  ///< canonical serialized state (checksummed)

  std::size_t max_centroids_;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<Centroid> centroids_;  ///< compressed, sorted by (mean, weight)
  std::vector<double> buffer_;       ///< raw values awaiting compression
};

/// The deterministic-order merge helper: folds `parts` left to right by
/// vector index, so any caller that orders its shards canonically (task
/// index, chapter index, ...) gets a byte-reproducible merged sketch
/// regardless of which shard finished first. All parts must share
/// max_centroids. Returns an empty digest for an empty vector.
QuantileDigest merge_deterministic(const std::vector<QuantileDigest>& parts);

}  // namespace treesched::stats
