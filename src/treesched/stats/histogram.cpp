#include "treesched/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "treesched/util/assert.hpp"

namespace treesched::stats {

LogHistogram::LogHistogram(double lo, double growth, std::size_t max_buckets)
    : lo_(lo), growth_(growth), counts_(max_buckets, 0) {
  TS_REQUIRE(lo > 0.0, "first bucket edge must be positive");
  TS_REQUIRE(growth > 1.0, "bucket growth must exceed 1");
  TS_REQUIRE(max_buckets >= 2, "need at least two buckets");
}

void LogHistogram::add(double x) {
  TS_REQUIRE(x >= 0.0, "histogram values must be non-negative");
  std::size_t b = 0;
  if (x >= lo_) {
    b = 1 + static_cast<std::size_t>(std::floor(std::log(x / lo_) /
                                                std::log(growth_)));
    b = std::min(b, counts_.size() - 1);
  }
  ++counts_[b];
  ++total_;
}

double LogHistogram::lower_edge(std::size_t bucket) const {
  TS_REQUIRE(bucket < counts_.size(), "bucket out of range");
  if (bucket == 0) return 0.0;
  return lo_ * std::pow(growth_, static_cast<double>(bucket - 1));
}

std::string LogHistogram::to_ascii(std::size_t width) const {
  std::size_t max_count = 1;
  std::size_t last_used = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    max_count = std::max(max_count, counts_[b]);
    if (counts_[b] > 0) last_used = b;
  }
  std::ostringstream os;
  for (std::size_t b = 0; b <= last_used; ++b) {
    const std::size_t bar = counts_[b] * width / max_count;
    os.width(12);
    os << lower_edge(b) << " | " << std::string(bar, '#') << ' '
       << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace treesched::stats
