// Descriptive statistics for experiment reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace treesched::stats {

/// Streaming summary (Welford) — numerically stable mean/variance plus
/// min/max, usable across millions of samples.
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile with linear interpolation; q in [0, 1]. Sorts a copy.
double percentile(std::vector<double> values, double q);

/// Median convenience.
double median(std::vector<double> values);

}  // namespace treesched::stats
