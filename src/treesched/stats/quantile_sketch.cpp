#include "treesched/stats/quantile_sketch.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "treesched/core/types.hpp"
#include "treesched/util/assert.hpp"
#include "treesched/util/csum.hpp"
#include "treesched/util/hash.hpp"

namespace treesched::stats {

namespace {

double quiet_nan() { return std::numeric_limits<double>::quiet_NaN(); }

/// Reads and verifies the "<tag> <fnv>" self-checksum line against the
/// re-serialized canonical payload. A mutation that parses to the same
/// doubles re-serializes identically and passes — the value is unchanged,
/// so that is not a mis-load; anything else is rejected here.
void expect_checksum(std::istream& is, const char* tag,
                     const std::string& payload, const char* what) {
  std::string got;
  is >> got;
  TS_REQUIRE(is && got == tag,
             std::string(what) + ": missing '" + tag +
                 "' checksum line (truncated or corrupt state)");
  std::uint64_t csum = 0;
  is >> csum;
  TS_REQUIRE(static_cast<bool>(is),
             std::string(what) + ": truncated checksum");
  TS_REQUIRE(csum == util::fnv1a_64(payload),
             std::string(what) + ": checksum mismatch (corrupt state)");
}

void expect_tag(std::istream& is, const char* tag) {
  std::string got;
  is >> got;
  TS_REQUIRE(is && got == tag, std::string("sketch load: expected '") + tag +
                                   "', got '" + got + "'");
}

}  // namespace

// ---------------------------------------------------------------------------
// P2Quantile
// ---------------------------------------------------------------------------

P2Quantile::P2Quantile(double q) : q_(q) {
  TS_REQUIRE(q > 0.0 && q < 1.0, "P2Quantile requires q in (0, 1)");
  incr_[0] = 0.0;
  incr_[1] = q / 2.0;
  incr_[2] = q;
  incr_[3] = (1.0 + q) / 2.0;
  incr_[4] = 1.0;
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q;
  desired_[2] = 1.0 + 4.0 * q;
  desired_[3] = 3.0 + 2.0 * q;
  desired_[4] = 5.0;
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    // Bootstrap phase: heights double as a sorted sample buffer.
    height_[count_] = x;
    ++count_;
    if (count_ == 5) std::sort(height_, height_ + 5);
    return;
  }

  // Find the marker cell x falls into and update the extremes.
  int k;
  if (x < height_[0]) {
    height_[0] = x;
    k = 0;
  } else if (x < height_[1]) {
    k = 0;
  } else if (x < height_[2]) {
    k = 1;
  } else if (x < height_[3]) {
    k = 2;
  } else if (x <= height_[4]) {
    k = 3;
  } else {
    height_[4] = x;
    k = 3;
  }

  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += incr_[i];

  // Adjust the interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    const double below = pos_[i] - pos_[i - 1];
    const double above = pos_[i + 1] - pos_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction of the new height.
      const double hp =
          height_[i] +
          s / (pos_[i + 1] - pos_[i - 1]) *
              ((below + s) * (height_[i + 1] - height_[i]) / above +
               (above - s) * (height_[i] - height_[i - 1]) / below);
      if (height_[i - 1] < hp && hp < height_[i + 1]) {
        height_[i] = hp;
      } else {
        // Parabolic left the bracket: fall back to linear interpolation.
        const int j = d >= 1.0 ? i + 1 : i - 1;
        height_[i] = height_[i] + s * (height_[uidx(j)] - height_[i]) /
                                      (pos_[uidx(j)] - pos_[i]);
      }
      pos_[i] += s;
    }
  }
  ++count_;
}

double P2Quantile::estimate() const {
  if (count_ == 0) return quiet_nan();
  if (count_ < 5) {
    double sorted[5];
    std::copy(height_, height_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const double rank = std::ceil(q_ * static_cast<double>(count_));
    const std::size_t i =
        rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    return sorted[std::min(i, static_cast<std::size_t>(count_ - 1))];
  }
  return height_[2];
}

std::string P2Quantile::payload() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "p2 " << q_ << ' ' << count_;
  for (int i = 0; i < 5; ++i)
    os << ' ' << height_[i] << ' ' << pos_[i] << ' ' << desired_[i];
  os << '\n';
  return os.str();
}

void P2Quantile::save(std::ostream& os) const {
  const std::string p = payload();
  os << p << "p2csum " << util::fnv1a_64(p) << '\n';
}

void P2Quantile::load(std::istream& is) {
  expect_tag(is, "p2");
  P2Quantile tmp(q_);
  double q;
  is >> q >> tmp.count_;
  TS_REQUIRE(is && q == q_, "p2 load: quantile mismatch");
  for (int i = 0; i < 5; ++i)
    is >> tmp.height_[i] >> tmp.pos_[i] >> tmp.desired_[i];
  TS_REQUIRE(static_cast<bool>(is), "p2 load: truncated state");
  expect_checksum(is, "p2csum", tmp.payload(), "p2 load");
  *this = tmp;
}

// ---------------------------------------------------------------------------
// QuantileDigest
// ---------------------------------------------------------------------------

QuantileDigest::QuantileDigest(std::size_t max_centroids)
    : max_centroids_(max_centroids) {
  TS_REQUIRE(max_centroids_ >= 8, "QuantileDigest needs >= 8 centroids");
}

double QuantileDigest::min() const {
  return count_ == 0 ? quiet_nan() : min_;
}

double QuantileDigest::max() const {
  return count_ == 0 ? quiet_nan() : max_;
}

void QuantileDigest::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  buffer_.push_back(x);
  if (buffer_.size() >= 2 * max_centroids_) compress();
}

void QuantileDigest::absorb_unordered(const QuantileDigest& other) {
  TS_REQUIRE(other.max_centroids_ == max_centroids_,
             "absorb: digests must share max_centroids");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  centroids_.insert(centroids_.end(), other.centroids_.begin(),
                    other.centroids_.end());
  buffer_.insert(buffer_.end(), other.buffer_.begin(), other.buffer_.end());
  compress();
}

void QuantileDigest::compress() {
  std::vector<Centroid> all;
  all.reserve(centroids_.size() + buffer_.size());
  all.insert(all.end(), centroids_.begin(), centroids_.end());
  for (const double x : buffer_) all.push_back({x, 1.0});
  buffer_.clear();
  if (all.empty()) {
    centroids_.clear();
    return;
  }
  // stable_sort: exact-tie grouping must not depend on the library's
  // (unspecified) unstable-sort behavior, or byte-identity dies.
  std::stable_sort(all.begin(), all.end(),
                   [](const Centroid& a, const Centroid& b) {
                     if (a.mean != b.mean) return a.mean < b.mean;
                     return a.weight < b.weight;
                   });
  const double cap = std::max(
      1.0, std::ceil(static_cast<double>(count_) /
                     static_cast<double>(max_centroids_)));
  std::vector<Centroid> out;
  out.reserve(max_centroids_ + 2);
  Centroid cur = all[0];
  for (std::size_t i = 1; i < all.size(); ++i) {
    const Centroid& c = all[i];
    if (cur.weight + c.weight <= cap) {
      const double w = cur.weight + c.weight;
      cur.mean = (cur.mean * cur.weight + c.mean * c.weight) / w;
      cur.weight = w;
    } else {
      out.push_back(cur);
      cur = c;
    }
  }
  out.push_back(cur);
  centroids_ = std::move(out);
}

double QuantileDigest::quantile(double q) const {
  TS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile requires q in [0, 1]");
  if (count_ == 0) return quiet_nan();
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Merged view of compressed centroids + raw buffer, built locally so the
  // query never mutates sketch state (snapshot byte-identity).
  std::vector<Centroid> view;
  view.reserve(centroids_.size() + buffer_.size());
  view.insert(view.end(), centroids_.begin(), centroids_.end());
  for (const double x : buffer_) view.push_back({x, 1.0});
  std::stable_sort(view.begin(), view.end(),
                   [](const Centroid& a, const Centroid& b) {
                     if (a.mean != b.mean) return a.mean < b.mean;
                     return a.weight < b.weight;
                   });
  const double target = q * static_cast<double>(count_);
  util::CompensatedSum cum;
  for (const Centroid& c : view) {
    cum.add(c.weight);
    if (cum.value() >= target)
      return std::min(std::max(c.mean, min_), max_);
  }
  return max_;
}

std::string QuantileDigest::payload() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "digest " << max_centroids_ << ' ' << count_ << ' ' << min_ << ' '
     << max_ << ' ' << centroids_.size() << ' ' << buffer_.size() << '\n';
  for (const Centroid& c : centroids_)
    os << "c " << c.mean << ' ' << c.weight << '\n';
  for (const double x : buffer_) os << "b " << x << '\n';
  return os.str();
}

void QuantileDigest::save(std::ostream& os) const {
  const std::string p = payload();
  os << p << "digestcsum " << util::fnv1a_64(p) << '\n';
}

void QuantileDigest::load(std::istream& is) {
  expect_tag(is, "digest");
  QuantileDigest tmp(max_centroids_);
  std::size_t mc = 0, nc = 0, nb = 0;
  is >> mc >> tmp.count_ >> tmp.min_ >> tmp.max_ >> nc >> nb;
  TS_REQUIRE(is && mc == max_centroids_, "digest load: max_centroids mismatch");
  // Structural bounds BEFORE any allocation: a corrupt count must not drive
  // a giant .assign() — the writer never exceeds these (compress() caps the
  // centroid list and flushes the buffer at 2 * max_centroids).
  TS_REQUIRE(nc <= 2 * max_centroids_ + 2 && nb < 2 * max_centroids_,
             "digest load: implausible centroid/buffer count (corrupt state)");
  tmp.centroids_.assign(nc, Centroid{});
  for (std::size_t i = 0; i < nc; ++i) {
    expect_tag(is, "c");
    is >> tmp.centroids_[i].mean >> tmp.centroids_[i].weight;
  }
  tmp.buffer_.assign(nb, 0.0);
  for (std::size_t i = 0; i < nb; ++i) {
    expect_tag(is, "b");
    is >> tmp.buffer_[i];
  }
  TS_REQUIRE(static_cast<bool>(is), "digest load: truncated state");
  expect_checksum(is, "digestcsum", tmp.payload(), "digest load");
  *this = tmp;
}

QuantileDigest merge_deterministic(const std::vector<QuantileDigest>& parts) {
  if (parts.empty()) return QuantileDigest{};
  QuantileDigest out(parts[0].max_centroids());
  // Index-order fold: the caller's canonical shard order IS the merge
  // order, so the result is independent of shard completion timing.
  for (const QuantileDigest& p : parts) out.absorb_unordered(p);
  return out;
}

}  // namespace treesched::stats
