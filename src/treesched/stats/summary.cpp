#include "treesched/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "treesched/util/assert.hpp"

namespace treesched::stats {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Summary::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const { return n_ == 0 ? 0.0 : min_; }

double Summary::max() const { return n_ == 0 ? 0.0 : max_; }

double percentile(std::vector<double> values, double q) {
  TS_REQUIRE(!values.empty(), "percentile of empty sample");
  TS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 0.5);
}

}  // namespace treesched::stats
