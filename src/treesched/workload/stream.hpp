// Unbounded Poisson arrival streams for endurance runs.
//
// A JobStream generates an infinite arrival sequence (release, size) lazily,
// one job at a time, with O(1) state: each arrival index gets its own RNG
// stream via util::split_seed(seed, index), so the i-th arrival's gap and
// size never depend on how many draws earlier arrivals made. A Cursor
// (index, clock) therefore resumes the stream exactly — serializing those
// two numbers into an engine snapshot is enough to regenerate the identical
// suffix after kill/restore, and regenerating a window [base, base+n) from a
// saved cursor is bit-identical to having never stopped.
#pragma once

#include <cstdint>

#include "treesched/workload/sizes.hpp"

namespace treesched::workload {

/// Parameters of the arrival process. Streaming endurance mode deliberately
/// supports the paper's base regime only: Poisson arrivals at the root with
/// unit weights (use `arrival_rate_for_load` to pick lambda for a target
/// rho).
struct StreamSpec {
  std::uint64_t seed = 0x5eedULL;
  double lambda = 1.0;  ///< arrival rate (jobs per unit time); > 0
  SizeSpec sizes;
};

/// Position in the stream: `index` arrivals consumed, last release at
/// `clock`. Default-constructed = the beginning.
struct StreamCursor {
  std::uint64_t index = 0;
  double clock = 0.0;
};

/// One generated arrival.
struct StreamJob {
  double release = 0.0;
  double size = 0.0;
};

/// Lazy arrival generator over a StreamSpec (stateless itself; all position
/// lives in the caller's cursor).
class JobStream {
 public:
  explicit JobStream(StreamSpec spec);

  const StreamSpec& spec() const { return spec_; }

  /// Generates the arrival at cursor.index and advances the cursor.
  StreamJob next(StreamCursor& cursor) const;

  /// The arrival the cursor points at, without consuming it.
  StreamJob peek(const StreamCursor& cursor) const;

 private:
  StreamSpec spec_;
};

}  // namespace treesched::workload
