#include "treesched/workload/stream.hpp"

#include "treesched/util/assert.hpp"
#include "treesched/util/rng.hpp"

namespace treesched::workload {

JobStream::JobStream(StreamSpec spec) : spec_(std::move(spec)) {
  TS_REQUIRE(spec_.lambda > 0.0, "stream arrival rate must be positive");
  TS_REQUIRE(spec_.sizes.scale > 0.0, "stream size scale must be positive");
}

StreamJob JobStream::next(StreamCursor& cursor) const {
  // Per-index stream: gap then size from the same child RNG, so one
  // split_seed call covers both draws and the cursor stays two numbers.
  util::Rng rng(util::split_seed(spec_.seed, cursor.index));
  const double gap = rng.exponential(spec_.lambda);
  cursor.clock += gap;
  ++cursor.index;
  return {cursor.clock, draw_one_size(rng, spec_.sizes)};
}

StreamJob JobStream::peek(const StreamCursor& cursor) const {
  StreamCursor copy = cursor;
  return next(copy);
}

}  // namespace treesched::workload
