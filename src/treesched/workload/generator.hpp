// End-to-end synthetic instance generation.
#pragma once

#include <memory>

#include "treesched/core/instance.hpp"
#include "treesched/core/speed_profile.hpp"
#include "treesched/workload/arrivals.hpp"
#include "treesched/workload/sizes.hpp"
#include "treesched/workload/unrelated.hpp"

namespace treesched::workload {

enum class ArrivalProcess {
  kPoisson,
  kDeterministic,
  kMmpp,
  kBatched,
  kDiurnal,  ///< sinusoidally modulated Poisson (cluster-trace-like)
};

/// Job-weight models (weighted flow time extension; the paper uses kUnit).
enum class WeightModel {
  kUnit,         ///< every weight 1 (the paper's objective)
  kUniformInt,   ///< uniform integer in [1, weight_max]
  kInverseSize,  ///< weight ~ 1/size: small jobs are urgent (SLA-like)
};

struct WorkloadSpec {
  int jobs = 1000;
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  /// Target utilization of the root-child layer at adversary speed 1
  /// (lambda is derived from it and the size distribution's mean).
  double load = 0.7;
  /// MMPP: burst rate multiple and state switch rate (relative to lambda).
  double burst_multiplier = 5.0;
  double switch_rate_fraction = 0.02;
  /// Batched: jobs per batch.
  int batch = 10;
  /// Diurnal: modulation depth and period (in expected inter-arrival units).
  double diurnal_amplitude = 0.6;
  double diurnal_period_arrivals = 200.0;
  SizeSpec sizes;
  EndpointModel endpoints = EndpointModel::kIdentical;
  UnrelatedSpec unrelated;  ///< used only when endpoints == kUnrelated
  WeightModel weights = WeightModel::kUnit;
  int weight_max = 8;       ///< kUniformInt upper bound
  /// Fraction of jobs born at a random machine instead of the root
  /// (arbitrary-source extension; 0 = the paper's base model).
  double leaf_source_fraction = 0.0;
};

/// Generates an Instance on the given tree. Deterministic in (spec, rng):
/// exactly one value is drawn from `rng`, and every generation phase
/// (arrivals, sizes, endpoint speeds, weights/sources) runs on its own
/// util::split_seed-derived stream so phases never shift each other.
Instance generate(util::Rng& rng, std::shared_ptr<const Tree> tree,
                  const WorkloadSpec& spec);

/// Convenience overload copying the tree.
Instance generate(util::Rng& rng, const Tree& tree, const WorkloadSpec& spec);

/// Achieved offered load rho of a generated instance at the root cut:
/// total router volume sum p_j over (arrival horizon * total root-child
/// speed). Unlike the WorkloadSpec::load target this is computed from the
/// ACTUAL sizes — including the class-rounding inflation that historically
/// made "load 0.85" silently overload the speed-1 adversary — so rho >= 1
/// here means the run genuinely saturates without shedding. Returns
/// infinity for degenerate horizons (all jobs released at t = 0) or a
/// zero-speed root cut; 0.0 for empty instances.
double offered_load(const Instance& instance, const SpeedProfile& speeds);

}  // namespace treesched::workload
