#include "treesched/workload/arrivals.hpp"

#include <algorithm>
#include <cmath>

#include "treesched/util/assert.hpp"

namespace treesched::workload {

std::vector<Time> poisson_arrivals(util::Rng& rng, int n, double rate) {
  TS_REQUIRE(n >= 0, "job count must be non-negative");
  TS_REQUIRE(rate > 0.0, "arrival rate must be positive");
  std::vector<Time> out;
  out.reserve(uidx(n));
  Time t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += rng.exponential(rate);
    out.push_back(t);
  }
  return out;
}

std::vector<Time> deterministic_arrivals(int n, double gap) {
  TS_REQUIRE(n >= 0 && gap > 0.0, "bad deterministic arrival parameters");
  std::vector<Time> out;
  out.reserve(uidx(n));
  for (int i = 1; i <= n; ++i) out.push_back(gap * i);
  return out;
}

std::vector<Time> mmpp_arrivals(util::Rng& rng, int n, double calm_rate,
                                double burst_rate, double switch_rate) {
  TS_REQUIRE(calm_rate > 0.0 && burst_rate > 0.0 && switch_rate > 0.0,
             "MMPP rates must be positive");
  std::vector<Time> out;
  out.reserve(uidx(n));
  Time t = 0.0;
  bool bursting = false;
  Time next_switch = rng.exponential(switch_rate);
  while (static_cast<int>(out.size()) < n) {
    const double rate = bursting ? burst_rate : calm_rate;
    const Time step = rng.exponential(rate);
    if (t + step >= next_switch) {
      t = next_switch;
      bursting = !bursting;
      next_switch = t + rng.exponential(switch_rate);
      continue;  // no arrival during the truncated interval (thinning)
    }
    t += step;
    out.push_back(t);
  }
  return out;
}

std::vector<Time> batched_arrivals(util::Rng& rng, int n, int batch,
                                   double gap, double jitter) {
  TS_REQUIRE(batch >= 1 && gap > 0.0 && jitter >= 0.0,
             "bad batched arrival parameters");
  std::vector<Time> out;
  out.reserve(uidx(n));
  Time t = 0.0;
  while (static_cast<int>(out.size()) < n) {
    t += rng.exponential(1.0 / gap);
    for (int b = 0; b < batch && static_cast<int>(out.size()) < n; ++b)
      out.push_back(t + b * jitter);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Time> diurnal_arrivals(util::Rng& rng, int n, double base_rate,
                                   double amplitude, double period) {
  TS_REQUIRE(base_rate > 0.0, "base rate must be positive");
  TS_REQUIRE(amplitude >= 0.0 && amplitude < 1.0, "amplitude in [0,1)");
  TS_REQUIRE(period > 0.0, "period must be positive");
  std::vector<Time> out;
  out.reserve(uidx(n));
  const double peak = base_rate * (1.0 + amplitude);
  Time t = 0.0;
  while (static_cast<int>(out.size()) < n) {
    t += rng.exponential(peak);
    const double rate =
        base_rate *
        (1.0 + amplitude * std::sin(2.0 * 3.14159265358979323846 * t / period));
    if (rng.uniform01() * peak <= rate) out.push_back(t);  // thinning
  }
  return out;
}

double arrival_rate_for_load(int root_children, double mean_size, double rho) {
  TS_REQUIRE(root_children >= 1 && mean_size > 0.0 && rho > 0.0,
             "bad load parameters");
  return rho * root_children / mean_size;
}

}  // namespace treesched::workload
