#include "treesched/workload/unrelated.hpp"

#include "treesched/util/assert.hpp"
#include "treesched/util/class_rounding.hpp"

namespace treesched::workload {

const char* UnrelatedSpec::name() const {
  switch (model) {
    case UnrelatedModel::kUniformFactor: return "uniform-factor";
    case UnrelatedModel::kRelated: return "related";
    case UnrelatedModel::kAffinity: return "affinity";
    case UnrelatedModel::kRestricted: return "restricted";
  }
  return "?";
}

UnrelatedGenerator::UnrelatedGenerator(const Tree& tree, UnrelatedSpec spec,
                                       util::Rng& rng)
    : tree_(&tree), spec_(spec) {
  TS_REQUIRE(spec_.spread >= 1.0, "spread must be >= 1");
  TS_REQUIRE(spec_.penalty >= 1.0, "penalty must be >= 1");
  TS_REQUIRE(spec_.feasible_fraction > 0.0 && spec_.feasible_fraction <= 1.0,
             "feasible fraction in (0,1]");
  if (spec_.model == UnrelatedModel::kRelated) {
    leaf_speed_.reserve(tree.leaves().size());
    for (std::size_t i = 0; i < tree.leaves().size(); ++i)
      leaf_speed_.push_back(rng.uniform_real(1.0, spec_.spread));
  }
}

std::vector<double> UnrelatedGenerator::leaf_sizes(util::Rng& rng,
                                                   double p) const {
  TS_REQUIRE(p > 0.0, "job size must be positive");
  const std::size_t L = tree_->leaves().size();
  std::vector<double> out(L, p);
  switch (spec_.model) {
    case UnrelatedModel::kUniformFactor:
      for (double& x : out) x = p * rng.uniform_real(1.0 / spec_.spread,
                                                     spec_.spread);
      break;
    case UnrelatedModel::kRelated:
      for (std::size_t i = 0; i < L; ++i) out[i] = p / leaf_speed_[i];
      break;
    case UnrelatedModel::kAffinity: {
      // One random root subtree hosts the job's data replica: its leaves run
      // the job at native speed, everyone else pays the spread factor.
      const auto& rcs = tree_->root_children();
      const NodeId home = rcs[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(rcs.size()) - 1))];
      for (std::size_t i = 0; i < L; ++i) {
        const NodeId leaf = tree_->leaves()[i];
        const bool at_home = tree_->is_ancestor_or_self(home, leaf);
        out[i] = at_home ? p : p * spec_.spread;
      }
      break;
    }
    case UnrelatedModel::kRestricted: {
      bool any_feasible = false;
      for (std::size_t i = 0; i < L; ++i) {
        const bool feasible = rng.bernoulli(spec_.feasible_fraction);
        any_feasible = any_feasible || feasible;
        out[i] = feasible ? p : p * spec_.penalty;
      }
      if (!any_feasible) out[0] = p;  // keep at least one sane target
      break;
    }
  }
  if (spec_.class_eps > 0.0)
    for (double& x : out) x = util::round_up_to_class(x, spec_.class_eps);
  return out;
}

}  // namespace treesched::workload
