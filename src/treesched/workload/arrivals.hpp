// Arrival-time processes for synthetic workloads.
#pragma once

#include <vector>

#include "treesched/core/types.hpp"
#include "treesched/util/rng.hpp"

namespace treesched::workload {

/// n i.i.d. exponential inter-arrival times with the given rate (Poisson
/// process). First arrival at the first inter-arrival, not at 0.
std::vector<Time> poisson_arrivals(util::Rng& rng, int n, double rate);

/// Evenly spaced arrivals: gap, 2*gap, ...
std::vector<Time> deterministic_arrivals(int n, double gap);

/// Two-state Markov-modulated Poisson process: alternates between a calm
/// rate and a burst rate; the state flips after exp(switch_rate) time.
/// Models the bursty data-analytics arrivals motivating the paper.
std::vector<Time> mmpp_arrivals(util::Rng& rng, int n, double calm_rate,
                                double burst_rate, double switch_rate);

/// Batches of `batch` near-simultaneous jobs (jittered by `jitter`),
/// batches separated by exp(1/gap).
std::vector<Time> batched_arrivals(util::Rng& rng, int n, int batch,
                                   double gap, double jitter = 1e-3);

/// Non-homogeneous Poisson with sinusoidal intensity
/// rate(t) = base * (1 + amplitude * sin(2*pi*t/period)) — the diurnal
/// pattern of real cluster traces. amplitude in [0, 1); implemented by
/// thinning against the peak rate.
std::vector<Time> diurnal_arrivals(util::Rng& rng, int n, double base_rate,
                                   double amplitude, double period);

/// Arrival rate lambda such that the expected utilization of the root-child
/// layer is `rho`: rho = lambda * mean_size / root_children (each job must
/// be fully processed by exactly one root child at baseline speed 1).
double arrival_rate_for_load(int root_children, double mean_size, double rho);

}  // namespace treesched::workload
