#include "treesched/workload/trace_io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "treesched/util/assert.hpp"
#include "treesched/util/string_util.hpp"

namespace treesched::workload {

namespace {
const char* kind_name(NodeKind k) {
  switch (k) {
    case NodeKind::kRoot: return "root";
    case NodeKind::kRouter: return "router";
    case NodeKind::kMachine: return "machine";
  }
  return "?";
}

NodeKind parse_kind(const std::string& s) {
  if (s == "root") return NodeKind::kRoot;
  if (s == "router") return NodeKind::kRouter;
  if (s == "machine") return NodeKind::kMachine;
  throw std::invalid_argument("trace: unknown node kind '" + s + "'");
}

[[noreturn]] void bad(const std::string& msg) {
  throw std::invalid_argument("trace: " + msg);
}
}  // namespace

void write_trace(std::ostream& os, const Instance& instance) {
  const Tree& tree = instance.tree();
  os << std::setprecision(17);
  os << "tree " << tree.node_count() << '\n';
  for (NodeId v = 0; v < tree.node_count(); ++v)
    os << "node " << v << ' ' << tree.parent(v) << ' '
       << kind_name(tree.kind(v)) << '\n';
  os << "model "
     << (instance.model() == EndpointModel::kIdentical ? "identical"
                                                       : "unrelated")
     << '\n';
  for (const Job& j : instance.jobs()) {
    os << "job " << j.id << ' ' << j.release << ' ' << j.size << ' '
       << j.weight << ' ' << j.source;
    for (double p : j.leaf_sizes) os << ' ' << p;
    os << '\n';
  }
}

void write_trace_file(const std::string& path, const Instance& instance) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  write_trace(f, instance);
  if (!f) throw std::runtime_error("failed writing trace file: " + path);
}

Instance read_trace(std::istream& is) {
  std::string line;
  int node_count = -1;
  std::vector<NodeId> parent;
  std::vector<NodeKind> kind;
  bool model_seen = false;
  EndpointModel model = EndpointModel::kIdentical;
  std::vector<Job> jobs;

  while (std::getline(is, line)) {
    line = util::trim(line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "tree") {
      if (!(ls >> node_count) || node_count <= 0) bad("bad tree header");
      parent.assign(uidx(node_count), kInvalidNode);
      kind.assign(uidx(node_count), NodeKind::kRouter);
    } else if (tag == "node") {
      if (node_count < 0) bad("node before tree header");
      int id, par;
      std::string kname;
      if (!(ls >> id >> par >> kname)) bad("bad node line: " + line);
      if (id < 0 || id >= node_count) bad("node id out of range");
      parent[uidx(id)] = static_cast<NodeId>(par);
      kind[uidx(id)] = parse_kind(kname);
    } else if (tag == "model") {
      std::string m;
      if (!(ls >> m)) bad("bad model line");
      if (m == "identical") model = EndpointModel::kIdentical;
      else if (m == "unrelated") model = EndpointModel::kUnrelated;
      else bad("unknown model '" + m + "'");
      model_seen = true;
    } else if (tag == "job") {
      Job j;
      if (!(ls >> j.id >> j.release >> j.size >> j.weight >> j.source))
        bad("bad job line: " + line);
      double p;
      while (ls >> p) j.leaf_sizes.push_back(p);
      jobs.push_back(std::move(j));
    } else {
      bad("unknown tag '" + tag + "'");
    }
  }
  if (node_count < 0) bad("missing tree header");
  if (!model_seen) bad("missing model line");
  Tree tree = Tree::build(std::move(parent), std::move(kind));
  return Instance(std::move(tree), std::move(jobs), model);
}

Instance read_trace_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(f);
}

}  // namespace treesched::workload
