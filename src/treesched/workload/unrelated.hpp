// Unrelated-leaf processing-time models (Section 2, unrelated endpoints).
//
// Given a job's router size p_j, these models derive the per-leaf p_{j,v}.
#pragma once

#include <vector>

#include "treesched/core/tree.hpp"
#include "treesched/util/rng.hpp"

namespace treesched::workload {

enum class UnrelatedModel {
  kUniformFactor,  ///< p_{j,v} = p_j * U[1/spread, spread] per (job, leaf)
  kRelated,        ///< p_{j,v} = p_j / s_v for a fixed per-leaf speed s_v
  kAffinity,       ///< one random "home" subtree is fast, the rest slow
  kRestricted,     ///< a random subset of leaves is feasible; others `penalty`x
};

struct UnrelatedSpec {
  UnrelatedModel model = UnrelatedModel::kUniformFactor;
  double spread = 4.0;    ///< speed/size ratio between extremes
  double penalty = 64.0;  ///< slowdown on infeasible leaves (kRestricted)
  double feasible_fraction = 0.5;  ///< kRestricted: P(leaf is feasible)
  /// > 0: round leaf sizes up to powers of (1+class_eps).
  double class_eps = 0.0;

  const char* name() const;
};

/// Per-instance state for the kRelated model (fixed leaf speeds drawn once).
class UnrelatedGenerator {
 public:
  UnrelatedGenerator(const Tree& tree, UnrelatedSpec spec, util::Rng& rng);

  /// Draws the leaf size vector for one job with router size p.
  std::vector<double> leaf_sizes(util::Rng& rng, double p) const;

  const UnrelatedSpec& spec() const { return spec_; }

 private:
  const Tree* tree_;
  UnrelatedSpec spec_;
  std::vector<double> leaf_speed_;  ///< kRelated: fixed speeds per leaf index
};

}  // namespace treesched::workload
