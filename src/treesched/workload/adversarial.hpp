// Hand-crafted adversarial instances.
//
// The paper's lower-bound citations (e.g. [30]) and its assignment-rule
// discussion motivate these gadgets: each one defeats a specific naive
// policy, so the baseline-comparison experiment (E9) can demonstrate *why*
// the paper's congestion-aware rule is needed.
#pragma once

#include "treesched/core/instance.hpp"

namespace treesched::workload {

/// Defeats closest-leaf assignment: one branch is shallow, the other deep;
/// a stream of jobs overwhelms the shallow branch while the deep branch
/// idles. `waves` controls the instance length.
Instance congestion_trap(int waves);

/// Defeats load-oblivious round-robin: alternating large/small jobs where
/// rotating assignments pile large jobs onto the same branch as smalls.
Instance size_mixer(int waves);

/// Stress for Lemma 2's class argument: geometric size classes released so
/// each class barely fits in front of the next (class-rounded sizes).
/// `classes` size classes of `per_class` jobs each, eps the class base.
Instance class_cascade(int classes, int per_class, double eps);

/// Unrelated-endpoint trap: jobs whose fast leaf sits behind the congested
/// branch — a policy ignoring network queues pays the router delay, one
/// ignoring leaf speeds pays the slow leaf.
Instance unrelated_trap(int waves);

}  // namespace treesched::workload
