// Job-size distributions.
#pragma once

#include <vector>

#include "treesched/util/rng.hpp"

namespace treesched::workload {

/// Which distribution generates the router sizes p_j.
enum class SizeDistribution {
  kFixed,          ///< every job has size `scale`
  kUniform,        ///< uniform on [scale, scale * spread]
  kExponential,    ///< exponential with mean `scale`, shifted off zero
  kBoundedPareto,  ///< bounded Pareto on [scale, scale*spread], shape `shape`
  kBimodal,        ///< small `scale` w.p. (1-mix), large `scale*spread` w.p. mix
};

struct SizeSpec {
  SizeDistribution dist = SizeDistribution::kExponential;
  double scale = 8.0;   ///< base size
  double spread = 64.0; ///< upper multiple for bounded distributions
  double shape = 1.5;   ///< Pareto shape
  double mix = 0.1;     ///< bimodal large-job probability
  /// > 0: round every size up to a power of (1+class_eps), the paper's
  /// Section 2 assumption (required by the Lemma 1/2 guarantees).
  double class_eps = 0.0;

  const char* name() const;
  /// Expected size including the class-rounding inflation (approximated as
  /// eps/ln(1+eps), exact for log-uniform class positions) — the quantity
  /// load calibration must use, or "load 0.85" silently overloads the
  /// speed-1 adversary.
  double mean() const;
  /// Expected size of the raw (unrounded) distribution.
  double base_mean() const;
};

/// Draws one size (exactly the per-draw logic of draw_sizes, factored out so
/// streaming arrival generators can draw sizes one at a time from per-index
/// RNG streams without materializing a vector).
double draw_one_size(util::Rng& rng, const SizeSpec& spec);

/// Draws n sizes.
std::vector<double> draw_sizes(util::Rng& rng, int n, const SizeSpec& spec);

}  // namespace treesched::workload
