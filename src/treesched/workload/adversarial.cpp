#include "treesched/workload/adversarial.hpp"

#include "treesched/core/tree_builders.hpp"
#include "treesched/util/class_rounding.hpp"

namespace treesched::workload {

Instance congestion_trap(int waves) {
  // Branch A: 1 router deep. Branch B: 4 routers deep. Closest-leaf sends
  // everything to A; the better schedule spills overflow into B.
  Tree tree = builders::broomstick({1, 4}, {{1}, {4}});
  std::vector<Job> jobs;
  JobId id = 0;
  Time t = 0.0;
  for (int w = 0; w < waves; ++w) {
    // Two unit jobs arrive per unit of time: one branch alone (capacity 1
    // at the root cut per branch) cannot absorb them.
    jobs.emplace_back(id++, t, 1.0);
    jobs.emplace_back(id++, t + 0.5, 1.0);
    t += 1.0;
  }
  return Instance(std::move(tree), std::move(jobs), EndpointModel::kIdentical);
}

Instance size_mixer(int waves) {
  Tree tree = builders::star_of_paths(2, 2);
  std::vector<Job> jobs;
  JobId id = 0;
  Time t = 0.0;
  for (int w = 0; w < waves; ++w) {
    // A big job followed by a burst of smalls: round-robin alternates and
    // strands smalls behind the big one on one branch.
    jobs.emplace_back(id++, t, 16.0);
    for (int s = 0; s < 4; ++s)
      jobs.emplace_back(id++, t + 0.1 * (s + 1), 1.0);
    t += 24.0;
  }
  return Instance(std::move(tree), std::move(jobs), EndpointModel::kIdentical);
}

Instance class_cascade(int classes, int per_class, double eps) {
  Tree tree = builders::star_of_paths(1, 6);
  std::vector<Job> jobs;
  JobId id = 0;
  Time t = 0.0;
  // Release classes from large to small so every small class preempts its
  // predecessors on all six routers, exercising the Lemma 2 volume bound.
  for (int c = classes - 1; c >= 0; --c) {
    const double p = util::class_size(c, eps);
    for (int i = 0; i < per_class; ++i) {
      jobs.emplace_back(id++, t, p);
      t += 1e-3;
    }
  }
  return Instance(std::move(tree), std::move(jobs), EndpointModel::kIdentical);
}

Instance unrelated_trap(int waves) {
  // Two branches, each with one leaf. Even jobs are fast on leaf 0, odd on
  // leaf 1 — but arrivals hammer branch 0's router.
  Tree tree = builders::star_of_paths(2, 2);
  const std::size_t n_leaves = tree.leaves().size();
  std::vector<Job> jobs;
  JobId id = 0;
  Time t = 0.0;
  for (int w = 0; w < waves; ++w) {
    std::vector<double> fast_on_0(n_leaves, 8.0);
    fast_on_0[0] = 1.0;
    std::vector<double> fast_on_1(n_leaves, 8.0);
    fast_on_1[1] = 1.0;
    jobs.emplace_back(id++, t, 1.0, fast_on_0);
    jobs.emplace_back(id++, t + 0.4, 1.0, fast_on_0);
    jobs.emplace_back(id++, t + 0.8, 1.0, fast_on_1);
    t += 1.2;
  }
  return Instance(std::move(tree), std::move(jobs), EndpointModel::kUnrelated);
}

}  // namespace treesched::workload
