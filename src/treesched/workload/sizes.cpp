#include "treesched/workload/sizes.hpp"

#include <cmath>

#include "treesched/core/types.hpp"
#include "treesched/util/assert.hpp"
#include "treesched/util/class_rounding.hpp"

namespace treesched::workload {

namespace {
/// Expected inflation from rounding up to powers of (1+eps), assuming the
/// size's log-position within its class is uniform: E[(1+eps)^U, U~[0,1)]
/// relative to the value itself = eps / ln(1+eps). Exact for log-uniform
/// sizes, a good approximation for the smooth distributions here; keeping
/// the load calibration honest matters more than the third decimal.
double rounding_inflation(double eps) {
  return eps > 0.0 ? eps / std::log1p(eps) : 1.0;
}
}  // namespace

const char* SizeSpec::name() const {
  switch (dist) {
    case SizeDistribution::kFixed: return "fixed";
    case SizeDistribution::kUniform: return "uniform";
    case SizeDistribution::kExponential: return "exponential";
    case SizeDistribution::kBoundedPareto: return "pareto";
    case SizeDistribution::kBimodal: return "bimodal";
  }
  return "?";
}

double SizeSpec::mean() const {
  return base_mean() * rounding_inflation(class_eps);
}

double SizeSpec::base_mean() const {
  switch (dist) {
    case SizeDistribution::kFixed:
      return scale;
    case SizeDistribution::kUniform:
      return scale * (1.0 + spread) / 2.0;
    case SizeDistribution::kExponential:
      return scale;
    case SizeDistribution::kBoundedPareto: {
      // Mean of bounded Pareto on [L, H] with shape a != 1.
      const double L = scale, H = scale * spread, a = shape;
      const double la = std::pow(L, a);
      if (std::fabs(a - 1.0) < 1e-9)
        return L * H / (H - L) * std::log(H / L);
      return la / (1.0 - std::pow(L / H, a)) * a / (a - 1.0) *
             (1.0 / std::pow(L, a - 1.0) - 1.0 / std::pow(H, a - 1.0));
    }
    case SizeDistribution::kBimodal:
      return scale * (1.0 - mix) + scale * spread * mix;
  }
  return scale;
}

double draw_one_size(util::Rng& rng, const SizeSpec& spec) {
  TS_REQUIRE(spec.scale > 0.0, "size scale must be positive");
  double p = spec.scale;
  switch (spec.dist) {
    case SizeDistribution::kFixed:
      break;
    case SizeDistribution::kUniform:
      TS_REQUIRE(spec.spread > 1.0, "uniform spread must exceed 1");
      p = rng.uniform_real(spec.scale, spec.scale * spec.spread);
      break;
    case SizeDistribution::kExponential:
      // Shifted off zero so sizes stay strictly positive.
      p = std::max(1e-3 * spec.scale, rng.exponential(1.0 / spec.scale));
      break;
    case SizeDistribution::kBoundedPareto:
      TS_REQUIRE(spec.spread > 1.0, "pareto spread must exceed 1");
      p = rng.bounded_pareto(spec.scale, spec.scale * spec.spread,
                             spec.shape);
      break;
    case SizeDistribution::kBimodal:
      TS_REQUIRE(spec.mix >= 0.0 && spec.mix <= 1.0, "mix in [0,1]");
      p = rng.bernoulli(spec.mix) ? spec.scale * spec.spread : spec.scale;
      break;
  }
  if (spec.class_eps > 0.0) p = util::round_up_to_class(p, spec.class_eps);
  return p;
}

std::vector<double> draw_sizes(util::Rng& rng, int n, const SizeSpec& spec) {
  TS_REQUIRE(n >= 0, "size count must be non-negative");
  std::vector<double> out;
  out.reserve(uidx(n));
  for (int i = 0; i < n; ++i) out.push_back(draw_one_size(rng, spec));
  return out;
}

}  // namespace treesched::workload
