// Plain-text instance (trace) serialization.
//
// Format (line-oriented, '#' comments allowed):
//   tree <node_count>
//   node <id> <parent|-1> <root|router|machine>     (one per node)
//   model <identical|unrelated>
//   job <id> <release> <size> <weight> <source|-1> [<leaf_size>...]
//
// The format is self-contained so instances can be archived, diffed, and
// replayed as golden tests.
#pragma once

#include <iosfwd>
#include <string>

#include "treesched/core/instance.hpp"

namespace treesched::workload {

/// Serializes an instance.
void write_trace(std::ostream& os, const Instance& instance);
void write_trace_file(const std::string& path, const Instance& instance);

/// Parses an instance; throws std::invalid_argument on malformed input.
Instance read_trace(std::istream& is);
Instance read_trace_file(const std::string& path);

}  // namespace treesched::workload
