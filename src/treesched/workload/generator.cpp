#include "treesched/workload/generator.hpp"

#include "treesched/util/assert.hpp"

namespace treesched::workload {

Instance generate(util::Rng& rng, std::shared_ptr<const Tree> tree,
                  const WorkloadSpec& spec) {
  TS_REQUIRE(tree != nullptr, "generate needs a tree");
  TS_REQUIRE(spec.jobs >= 0, "job count must be non-negative");
  TS_REQUIRE(spec.load > 0.0, "load must be positive");

  const double lambda = arrival_rate_for_load(
      static_cast<int>(tree->root_children().size()), spec.sizes.mean(),
      spec.load);

  std::vector<Time> releases;
  switch (spec.arrivals) {
    case ArrivalProcess::kPoisson:
      releases = poisson_arrivals(rng, spec.jobs, lambda);
      break;
    case ArrivalProcess::kDeterministic:
      releases = deterministic_arrivals(spec.jobs, 1.0 / lambda);
      break;
    case ArrivalProcess::kMmpp: {
      // Keep roughly the same average rate: the chain spends half its time
      // in each state, so calm + burst should average to 2*lambda; when the
      // burst alone exceeds that, fall back to a symmetric ratio.
      const double burst = lambda * spec.burst_multiplier;
      const double calm = (2.0 * lambda - burst > 1e-6)
                              ? 2.0 * lambda - burst
                              : lambda / spec.burst_multiplier;
      releases = mmpp_arrivals(rng, spec.jobs, calm, burst,
                               lambda * spec.switch_rate_fraction);
      break;
    }
    case ArrivalProcess::kBatched:
      releases = batched_arrivals(rng, spec.jobs, spec.batch,
                                  spec.batch / lambda);
      break;
    case ArrivalProcess::kDiurnal:
      releases = diurnal_arrivals(rng, spec.jobs, lambda,
                                  spec.diurnal_amplitude,
                                  spec.diurnal_period_arrivals / lambda);
      break;
  }

  const std::vector<double> sizes = draw_sizes(rng, spec.jobs, spec.sizes);

  std::vector<Job> jobs;
  jobs.reserve(uidx(spec.jobs));
  if (spec.endpoints == EndpointModel::kIdentical) {
    for (int j = 0; j < spec.jobs; ++j)
      jobs.emplace_back(static_cast<JobId>(j), releases[uidx(j)], sizes[uidx(j)]);
  } else {
    UnrelatedGenerator gen(*tree, spec.unrelated, rng);
    for (int j = 0; j < spec.jobs; ++j)
      jobs.emplace_back(static_cast<JobId>(j), releases[uidx(j)], sizes[uidx(j)],
                        gen.leaf_sizes(rng, sizes[uidx(j)]));
  }
  for (Job& j : jobs) {
    switch (spec.weights) {
      case WeightModel::kUnit:
        break;
      case WeightModel::kUniformInt:
        TS_REQUIRE(spec.weight_max >= 1, "weight_max must be >= 1");
        j.weight = static_cast<double>(rng.uniform_int(1, spec.weight_max));
        break;
      case WeightModel::kInverseSize:
        j.weight = 1.0 / j.size;
        break;
    }
    if (spec.leaf_source_fraction > 0.0 &&
        rng.bernoulli(spec.leaf_source_fraction)) {
      const auto& leaves = tree->leaves();
      j.source = leaves[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(leaves.size()) - 1))];
    }
  }
  return Instance(std::move(tree), std::move(jobs), spec.endpoints);
}

Instance generate(util::Rng& rng, const Tree& tree, const WorkloadSpec& spec) {
  return generate(rng, std::make_shared<const Tree>(tree), spec);
}

}  // namespace treesched::workload
