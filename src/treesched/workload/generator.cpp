#include "treesched/workload/generator.hpp"

#include <algorithm>
#include <limits>

#include "treesched/util/assert.hpp"

namespace treesched::workload {

Instance generate(util::Rng& rng, std::shared_ptr<const Tree> tree,
                  const WorkloadSpec& spec) {
  TS_REQUIRE(tree != nullptr, "generate needs a tree");
  TS_REQUIRE(spec.jobs >= 0, "job count must be non-negative");
  TS_REQUIRE(spec.load > 0.0, "load must be positive");

  // Each generation phase gets its own split_seed-derived stream, so how
  // many draws one phase makes (e.g. MMPP state switches) never shifts the
  // randomness another phase sees. The caller's rng is consumed exactly
  // once regardless of spec.
  const std::uint64_t base = rng.next_u64();
  util::Rng arrivals_rng(util::split_seed(base, 0));
  util::Rng sizes_rng(util::split_seed(base, 1));
  util::Rng endpoint_rng(util::split_seed(base, 2));
  util::Rng attr_rng(util::split_seed(base, 3));

  const double lambda = arrival_rate_for_load(
      static_cast<int>(tree->root_children().size()), spec.sizes.mean(),
      spec.load);

  std::vector<Time> releases;
  switch (spec.arrivals) {
    case ArrivalProcess::kPoisson:
      releases = poisson_arrivals(arrivals_rng, spec.jobs, lambda);
      break;
    case ArrivalProcess::kDeterministic:
      releases = deterministic_arrivals(spec.jobs, 1.0 / lambda);
      break;
    case ArrivalProcess::kMmpp: {
      // Keep roughly the same average rate: the chain spends half its time
      // in each state, so calm + burst should average to 2*lambda; when the
      // burst alone exceeds that, fall back to a symmetric ratio.
      const double burst = lambda * spec.burst_multiplier;
      const double calm = (2.0 * lambda - burst > 1e-6)
                              ? 2.0 * lambda - burst
                              : lambda / spec.burst_multiplier;
      releases = mmpp_arrivals(arrivals_rng, spec.jobs, calm, burst,
                               lambda * spec.switch_rate_fraction);
      break;
    }
    case ArrivalProcess::kBatched:
      releases = batched_arrivals(arrivals_rng, spec.jobs, spec.batch,
                                  spec.batch / lambda);
      break;
    case ArrivalProcess::kDiurnal:
      releases = diurnal_arrivals(arrivals_rng, spec.jobs, lambda,
                                  spec.diurnal_amplitude,
                                  spec.diurnal_period_arrivals / lambda);
      break;
  }

  const std::vector<double> sizes =
      draw_sizes(sizes_rng, spec.jobs, spec.sizes);

  std::vector<Job> jobs;
  jobs.reserve(uidx(spec.jobs));
  if (spec.endpoints == EndpointModel::kIdentical) {
    for (int j = 0; j < spec.jobs; ++j)
      jobs.emplace_back(static_cast<JobId>(j), releases[uidx(j)], sizes[uidx(j)]);
  } else {
    UnrelatedGenerator gen(*tree, spec.unrelated, endpoint_rng);
    for (int j = 0; j < spec.jobs; ++j)
      jobs.emplace_back(static_cast<JobId>(j), releases[uidx(j)], sizes[uidx(j)],
                        gen.leaf_sizes(endpoint_rng, sizes[uidx(j)]));
  }
  for (Job& j : jobs) {
    switch (spec.weights) {
      case WeightModel::kUnit:
        break;
      case WeightModel::kUniformInt:
        TS_REQUIRE(spec.weight_max >= 1, "weight_max must be >= 1");
        j.weight = static_cast<double>(attr_rng.uniform_int(1, spec.weight_max));
        break;
      case WeightModel::kInverseSize:
        j.weight = 1.0 / j.size;
        break;
    }
    if (spec.leaf_source_fraction > 0.0 &&
        attr_rng.bernoulli(spec.leaf_source_fraction)) {
      const auto& leaves = tree->leaves();
      j.source = leaves[static_cast<std::size_t>(attr_rng.uniform_int(
          0, static_cast<std::int64_t>(leaves.size()) - 1))];
    }
  }
  return Instance(std::move(tree), std::move(jobs), spec.endpoints);
}

Instance generate(util::Rng& rng, const Tree& tree, const WorkloadSpec& spec) {
  return generate(rng, std::make_shared<const Tree>(tree), spec);
}

double offered_load(const Instance& instance, const SpeedProfile& speeds) {
  if (instance.job_count() == 0) return 0.0;
  double volume = 0.0;
  Time horizon = 0.0;
  for (const Job& j : instance.jobs()) {
    volume += j.size;
    horizon = std::max(horizon, j.release);
  }
  if (volume <= 0.0) return 0.0;
  double capacity = 0.0;
  for (const NodeId rc : instance.tree().root_children())
    capacity += speeds.speed(rc);
  if (horizon <= 0.0 || capacity <= 0.0)
    return std::numeric_limits<double>::infinity();
  return volume / (horizon * capacity);
}

}  // namespace treesched::workload
