// Stochastic fault models: MTBF/MTTR-style rates expanded into a concrete
// FaultPlan.
//
// Generation is seed-derived and per-node: node v's crash, edge, and
// slowdown timelines come from three independent streams seeded with
// util::split_seed, so the emitted plan depends only on (tree, model, seed)
// — never on iteration order or thread count. Failure windows alternate
// exponential up-times (mean = 1/rate) with exponential repair times
// (mean = mttr); every opened window is closed even if the repair lands
// past the horizon, so no generated fault is permanent.
//
// One designated machine — the first leaf in node-id order — is never
// crashed by the generator, guaranteeing that failure-aware re-dispatch
// always has a surviving target. (Hand-written plans may of course still
// kill every leaf; the engine reports that as an actionable error.)
#pragma once

#include <cstdint>

#include "treesched/core/tree.hpp"
#include "treesched/fault/plan.hpp"

namespace treesched::fault {

/// Rates are per unit of simulation time; a rate of 0 disables that fault
/// class. mttr is the mean time to repair of the matching class.
struct FaultModel {
  double node_failure_rate = 0.0;  ///< crashes per node per time unit
  double node_mttr = 10.0;
  double edge_failure_rate = 0.0;  ///< link outages per edge per time unit
  double edge_mttr = 5.0;
  double slow_rate = 0.0;          ///< slowdown onsets per node per time unit
  double slow_mttr = 10.0;
  double slow_factor = 0.5;        ///< speed multiplier while slowed
  bool fail_leaves = true;         ///< machines may crash (spares one leaf)
  bool fail_routers = true;        ///< interior routers may crash
  Time horizon = 100.0;            ///< stop opening new windows past this

  /// Throws std::invalid_argument on nonsensical parameters.
  void validate() const;
};

/// Expands the model into a normalized, validated plan.
FaultPlan generate_plan(const Tree& tree, const FaultModel& model,
                        std::uint64_t seed);

}  // namespace treesched::fault
