#include "treesched/fault/model.hpp"

#include <stdexcept>

#include "treesched/util/rng.hpp"

namespace treesched::fault {

namespace {

/// Opens alternating windows along [0, horizon): an opening event at t with
/// `open_factor` and a closing event at t + repair with `close_factor`.
/// Every opened window is closed, even past the horizon.
void emit_windows(FaultPlan& plan, NodeId node, FaultKind open_kind,
                  FaultKind close_kind, double open_factor,
                  double close_factor, double rate, double mttr, Time horizon,
                  util::Rng& rng) {
  if (rate <= 0.0) return;
  Time t = 0.0;
  for (;;) {
    t += rng.exponential(rate);
    if (t >= horizon) return;
    const Time repair = rng.exponential(1.0 / mttr);
    plan.events.push_back({t, open_kind, node, open_factor});
    plan.events.push_back({t + repair, close_kind, node, close_factor});
    t += repair;
  }
}

}  // namespace

void FaultModel::validate() const {
  auto require = [](bool ok, const char* msg) {
    if (!ok) throw std::invalid_argument(std::string("fault model: ") + msg);
  };
  require(node_failure_rate >= 0.0, "node_failure_rate must be >= 0");
  require(edge_failure_rate >= 0.0, "edge_failure_rate must be >= 0");
  require(slow_rate >= 0.0, "slow_rate must be >= 0");
  require(node_failure_rate == 0.0 || node_mttr > 0.0,
          "node_mttr must be > 0 when nodes can fail");
  require(edge_failure_rate == 0.0 || edge_mttr > 0.0,
          "edge_mttr must be > 0 when edges can fail");
  require(slow_rate == 0.0 || slow_mttr > 0.0,
          "slow_mttr must be > 0 when slowdowns occur");
  require(slow_factor > 0.0, "slow_factor must be > 0");
  require(horizon > 0.0, "horizon must be > 0");
}

FaultPlan generate_plan(const Tree& tree, const FaultModel& model,
                        std::uint64_t seed) {
  model.validate();
  FaultPlan plan;
  const NodeId spared_leaf =
      tree.leaves().empty() ? kInvalidNode : tree.leaves().front();
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    if (tree.is_root(v)) continue;
    const std::uint64_t base = uidx(v) * 3;
    // Crashes. Sparing one leaf keeps re-dispatch solvable by construction.
    const bool may_crash = tree.is_leaf(v)
                               ? (model.fail_leaves && v != spared_leaf)
                               : model.fail_routers;
    if (may_crash) {
      util::Rng rng(util::split_seed(seed, base));
      emit_windows(plan, v, FaultKind::kNodeDown, FaultKind::kNodeUp, 1.0,
                   1.0, model.node_failure_rate, model.node_mttr,
                   model.horizon, rng);
    }
    // Link outages on the edge parent(v) -> v.
    {
      util::Rng rng(util::split_seed(seed, base + 1));
      emit_windows(plan, v, FaultKind::kEdgeDown, FaultKind::kEdgeUp, 1.0,
                   1.0, model.edge_failure_rate, model.edge_mttr,
                   model.horizon, rng);
    }
    // Slowdown windows: speed drops to slow_factor, then restores to 1.
    {
      util::Rng rng(util::split_seed(seed, base + 2));
      emit_windows(plan, v, FaultKind::kSlow, FaultKind::kSlow,
                   model.slow_factor, 1.0, model.slow_rate, model.slow_mttr,
                   model.horizon, rng);
    }
  }
  plan.normalize();
  plan.validate(tree);
  return plan;
}

}  // namespace treesched::fault
