#include "treesched/fault/plan.hpp"

#include "treesched/util/fs.hpp"
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace treesched::fault {

namespace {

[[noreturn]] void bad(const std::string& msg) {
  throw std::invalid_argument("fault plan: " + msg);
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Minimal strict JSON scanner — just enough for the fault-plan schema
/// (objects, arrays, strings, numbers). No escapes beyond \" and \\.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : s_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c)
      bad(std::string("expected '") + c + "' at offset " +
          std::to_string(pos_));
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) c = s_[pos_++];
      out += c;
    }
    if (pos_ >= s_.size()) bad("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double number_value() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) bad("expected a number at offset " + std::to_string(start));
    try {
      std::size_t used = 0;
      const double v = std::stod(s_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) bad("malformed number");
      return v;
    } catch (const std::invalid_argument&) {
      bad("malformed number '" + s_.substr(start, pos_ - start) + "'");
    } catch (const std::out_of_range&) {
      bad("number out of range '" + s_.substr(start, pos_ - start) + "'");
    }
  }

  void done() {
    skip_ws();
    if (pos_ != s_.size())
      bad("trailing characters at offset " + std::to_string(pos_));
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

FaultKind parse_kind(const std::string& s) {
  if (s == "node-down") return FaultKind::kNodeDown;
  if (s == "node-up") return FaultKind::kNodeUp;
  if (s == "edge-down") return FaultKind::kEdgeDown;
  if (s == "edge-up") return FaultKind::kEdgeUp;
  if (s == "slow") return FaultKind::kSlow;
  bad("unknown event kind '" + s +
      "' (expected node-down|node-up|edge-down|edge-up|slow)");
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNodeDown: return "node-down";
    case FaultKind::kNodeUp: return "node-up";
    case FaultKind::kEdgeDown: return "edge-down";
    case FaultKind::kEdgeUp: return "edge-up";
    case FaultKind::kSlow: return "slow";
  }
  return "?";
}

void FaultPlan::normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.t != b.t) return a.t < b.t;
                     if (a.node != b.node) return a.node < b.node;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
}

void FaultPlan::validate(const Tree& tree) const {
  const std::size_t n = uidx(tree.node_count());
  std::vector<char> node_down(n, 0), edge_down(n, 0);
  Time prev = -1.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    const std::string where = "event " + std::to_string(i);
    if (e.t < 0.0) bad(where + ": negative time " + fmt(e.t));
    if (e.t < prev)
      bad(where + ": events not sorted by time (call normalize())");
    prev = e.t;
    if (e.node < 0 || uidx(e.node) >= n)
      bad(where + ": node " + std::to_string(e.node) + " out of range");
    if (tree.is_root(e.node))
      bad(where + ": the root (node " + std::to_string(e.node) +
          ") is the distribution center and cannot fail");
    switch (e.kind) {
      case FaultKind::kNodeDown:
        if (node_down[uidx(e.node)])
          bad(where + ": node " + std::to_string(e.node) + " is already down");
        node_down[uidx(e.node)] = 1;
        break;
      case FaultKind::kNodeUp:
        if (!node_down[uidx(e.node)])
          bad(where + ": node-up for node " + std::to_string(e.node) +
              " without a preceding node-down");
        node_down[uidx(e.node)] = 0;
        break;
      case FaultKind::kEdgeDown:
        if (edge_down[uidx(e.node)])
          bad(where + ": edge into node " + std::to_string(e.node) +
              " is already down");
        edge_down[uidx(e.node)] = 1;
        break;
      case FaultKind::kEdgeUp:
        if (!edge_down[uidx(e.node)])
          bad(where + ": edge-up for node " + std::to_string(e.node) +
              " without a preceding edge-down");
        edge_down[uidx(e.node)] = 0;
        break;
      case FaultKind::kSlow:
        if (!(e.factor > 0.0))
          bad(where + ": slow factor must be > 0 (got " + fmt(e.factor) + ")");
        break;
    }
  }
}

std::string FaultPlan::to_json() const {
  std::ostringstream os;
  os << "{\n  \"schema\": \"treesched-fault-plan-v1\",\n  \"events\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    os << "    {\"kind\": \"" << fault_kind_name(e.kind) << "\", \"t\": "
       << fmt(e.t) << ", \"node\": " << e.node;
    if (e.kind == FaultKind::kSlow) os << ", \"factor\": " << fmt(e.factor);
    os << "}" << (i + 1 < events.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

FaultPlan parse_plan_json(const std::string& text) {
  JsonScanner in(text);
  FaultPlan plan;
  bool schema_seen = false;
  in.expect('{');
  if (!in.consume('}')) {
    do {
      const std::string key = in.string_value();
      in.expect(':');
      if (key == "schema") {
        const std::string schema = in.string_value();
        if (schema != "treesched-fault-plan-v1")
          bad("unsupported schema '" + schema + "'");
        schema_seen = true;
      } else if (key == "events") {
        in.expect('[');
        if (!in.consume(']')) {
          do {
            in.expect('{');
            FaultEvent e;
            bool has_kind = false, has_t = false, has_node = false;
            if (!in.consume('}')) {
              do {
                const std::string field = in.string_value();
                in.expect(':');
                if (field == "kind") {
                  e.kind = parse_kind(in.string_value());
                  has_kind = true;
                } else if (field == "t") {
                  e.t = in.number_value();
                  has_t = true;
                } else if (field == "node") {
                  const double v = in.number_value();
                  e.node = static_cast<NodeId>(v);
                  if (static_cast<double>(e.node) != v)
                    bad("event node must be an integer (got " + fmt(v) + ")");
                  has_node = true;
                } else if (field == "factor") {
                  e.factor = in.number_value();
                } else {
                  bad("unknown event field '" + field + "'");
                }
              } while (in.consume(','));
              in.expect('}');
            }
            if (!has_kind || !has_t || !has_node)
              bad("event " + std::to_string(plan.events.size()) +
                  " needs \"kind\", \"t\" and \"node\"");
            plan.events.push_back(e);
          } while (in.consume(','));
          in.expect(']');
        }
      } else {
        bad("unknown top-level key '" + key + "'");
      }
    } while (in.consume(','));
    in.expect('}');
  }
  in.done();
  if (!schema_seen) bad("missing \"schema\" key");
  plan.normalize();
  return plan;
}

FaultPlan read_plan_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::invalid_argument("cannot open fault plan: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_plan_json(buf.str());
}

void write_plan_file(const std::string& path, const FaultPlan& plan) {
  util::write_file_atomic(path, plan.to_json());
}

}  // namespace treesched::fault
