// Declarative fault plans: a reproducible, time-sorted schedule of node
// crash/recover windows, node slowdown windows, and edge (link) outage
// windows injected into a simulation run.
//
// The paper's model assumes every router and machine stays up forever; the
// fault layer relaxes that so the reproduction can be measured under the
// kind of stress a production tree network actually sees. A plan is pure
// data — it never references engine state — so the same (plan, instance,
// seed) triple replays bit-identically at any thread count.
//
// Plans are either written by hand (JSON, see below) or generated from a
// FaultModel (MTBF/MTTR-style rates, model.hpp). JSON schema:
//
//   {
//     "schema": "treesched-fault-plan-v1",
//     "events": [
//       {"kind": "node-down", "t": 10.0, "node": 3},
//       {"kind": "node-up",   "t": 15.0, "node": 3},
//       {"kind": "slow",      "t": 20.0, "node": 4, "factor": 0.5},
//       {"kind": "edge-down", "t": 5.0,  "node": 2},
//       {"kind": "edge-up",   "t": 9.0,  "node": 2}
//     ]
//   }
//
// An edge event names the child endpoint: "edge-down node 2" severs the
// link parent(2) -> 2, so data finished at the parent cannot be delivered
// to node 2 until the matching edge-up.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "treesched/core/tree.hpp"
#include "treesched/core/types.hpp"

namespace treesched::fault {

enum class FaultKind : std::uint8_t {
  kNodeDown,  ///< node crashes: in-flight work reverts, nothing runs on it
  kNodeUp,    ///< node recovers: queued work resumes from the reverted state
  kEdgeDown,  ///< link parent(node) -> node severed: deliveries defer
  kEdgeUp,    ///< link restored: deferred deliveries arrive now
  kSlow,      ///< node speed multiplied by `factor` from this instant on
};

const char* fault_kind_name(FaultKind k);

struct FaultEvent {
  Time t = 0.0;
  FaultKind kind = FaultKind::kNodeDown;
  NodeId node = kInvalidNode;
  double factor = 1.0;  ///< kSlow only; must be > 0

  friend bool operator==(const FaultEvent& a, const FaultEvent& b) {
    return a.t == b.t && a.kind == b.kind && a.node == b.node &&
           a.factor == b.factor;
  }
};

/// A time-sorted schedule of fault events. Invariants (checked by
/// validate()): events sorted by time; no event targets the root (the
/// distribution center neither processes nor fails); down/up events
/// alternate per node and per edge; slow factors are positive.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Canonical order: (t, node, kind, factor). normalize() sorts in place so
  /// hand-built plans need not worry about emission order.
  void normalize();

  /// Throws std::invalid_argument with a one-line actionable message on the
  /// first violated invariant.
  void validate(const Tree& tree) const;

  std::string to_json() const;
};

/// Parses the JSON schema above; throws std::invalid_argument with a
/// one-line message on malformed input. The returned plan is normalized but
/// NOT validated against a tree (call validate() once the tree is known).
FaultPlan parse_plan_json(const std::string& text);
FaultPlan read_plan_file(const std::string& path);
void write_plan_file(const std::string& path, const FaultPlan& plan);

}  // namespace treesched::fault
