#include "treesched/overload/estimator.hpp"

#include <algorithm>
#include <limits>

#include "treesched/util/assert.hpp"

namespace treesched::overload {

SaturationEstimator::SaturationEstimator(double window) : window_(window) {
  TS_REQUIRE(window > 0.0, "estimator window must be positive");
}

void SaturationEstimator::on_job_admitted(const sim::Engine& engine, JobId j) {
  if (arrivals_.empty()) {
    arrivals_.resize(uidx(engine.tree().node_count()));
    sums_.assign(uidx(engine.tree().node_count()), 0.0);
  }
  const Time now = engine.now();
  const NodeId leaf = engine.assigned_leaf(j);
  for (const NodeId v : engine.tree().path_to(leaf)) {
    const double work = engine.size_on(j, v);
    prune(v, now);
    arrivals_[uidx(v)].push_back({now, work});
    sums_[uidx(v)] += work;
  }
}

void SaturationEstimator::prune(NodeId v, Time now) {
  auto& dq = arrivals_[uidx(v)];
  while (!dq.empty() && dq.front().t < now - window_) {
    sums_[uidx(v)] -= dq.front().work;
    dq.pop_front();
  }
}

double SaturationEstimator::rho_hat(const sim::Engine& engine, NodeId v) {
  if (arrivals_.empty()) return 0.0;
  const Time now = engine.now();
  prune(v, now);
  const double work = std::max(sums_[uidx(v)], 0.0);
  if (work == 0.0) return 0.0;
  const double horizon = std::min(window_, now);
  const double speed = engine.speeds().speed(v);
  if (horizon <= 0.0 || speed <= 0.0)
    return std::numeric_limits<double>::infinity();
  return work / (horizon * speed);
}

double SaturationEstimator::max_root_child_rho(const sim::Engine& engine) {
  double mx = 0.0;
  for (const NodeId rc : engine.tree().root_children())
    mx = std::max(mx, rho_hat(engine, rc));
  return mx;
}

double SaturationEstimator::root_backlog(const sim::Engine& engine) {
  double sum = 0.0;
  for (const NodeId rc : engine.tree().root_children())
    sum += engine.pending_remaining(rc);
  return sum;
}

}  // namespace treesched::overload
