#include "treesched/overload/estimator.hpp"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "treesched/util/assert.hpp"
#include "treesched/util/hash.hpp"

namespace treesched::overload {

SaturationEstimator::SaturationEstimator(double window) : window_(window) {
  TS_REQUIRE(window > 0.0, "estimator window must be positive");
}

void SaturationEstimator::on_job_admitted(const sim::Engine& engine, JobId j) {
  if (arrivals_.empty()) {
    arrivals_.resize(uidx(engine.tree().node_count()));
    sums_.assign(uidx(engine.tree().node_count()), 0.0);
  }
  const Time now = engine.now();
  const NodeId leaf = engine.assigned_leaf(j);
  for (const NodeId v : engine.tree().path_to(leaf)) {
    const double work = engine.size_on(j, v);
    prune(v, now);
    arrivals_[uidx(v)].push_back({now, work});
    sums_[uidx(v)] += work;
  }
}

void SaturationEstimator::prune(NodeId v, Time now) {
  auto& dq = arrivals_[uidx(v)];
  while (!dq.empty() && dq.front().t < now - window_) {
    sums_[uidx(v)] -= dq.front().work;
    dq.pop_front();
  }
}

double SaturationEstimator::rho_hat(const sim::Engine& engine, NodeId v) {
  if (arrivals_.empty()) return 0.0;
  const Time now = engine.now();
  prune(v, now);
  const double work = std::max(sums_[uidx(v)], 0.0);
  if (work == 0.0) return 0.0;
  const double horizon = std::min(window_, now);
  const double speed = engine.speeds().speed(v);
  if (horizon <= 0.0 || speed <= 0.0)
    return std::numeric_limits<double>::infinity();
  return work / (horizon * speed);
}

double SaturationEstimator::max_root_child_rho(const sim::Engine& engine) {
  double mx = 0.0;
  for (const NodeId rc : engine.tree().root_children())
    mx = std::max(mx, rho_hat(engine, rc));
  return mx;
}

double SaturationEstimator::root_backlog(const sim::Engine& engine) {
  double sum = 0.0;
  for (const NodeId rc : engine.tree().root_children())
    sum += engine.pending_remaining(rc);
  return sum;
}

std::string SaturationEstimator::payload() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "satest 1 " << window_ << ' ' << arrivals_.size() << '\n';
  for (std::size_t v = 0; v < arrivals_.size(); ++v) {
    os << "sat " << v << ' ' << arrivals_[v].size() << ' ' << sums_[v];
    for (const Arrival& a : arrivals_[v]) os << ' ' << a.t << ' ' << a.work;
    os << '\n';
  }
  return os.str();
}

void SaturationEstimator::save_state(std::ostream& os) const {
  const std::string p = payload();
  os << p << "satcsum " << util::fnv1a_64(p) << '\n';
}

void SaturationEstimator::load_state(std::istream& is) {
  std::string tag;
  int version = 0;
  is >> tag >> version;
  TS_REQUIRE(is && tag == "satest" && version == 1,
             "estimator load: bad magic/version (corrupt or unsupported)");
  SaturationEstimator tmp(window_);
  double window = 0.0;
  std::size_t nodes = 0;
  is >> window >> nodes;
  TS_REQUIRE(is && window == window_,
             "estimator load: window mismatch (state from a different run?)");
  tmp.arrivals_.resize(nodes);
  tmp.sums_.assign(nodes, 0.0);
  for (std::size_t v = 0; v < nodes; ++v) {
    std::size_t id = 0, n = 0;
    is >> tag >> id >> n >> tmp.sums_[v];
    TS_REQUIRE(is && tag == "sat" && id == v,
               "estimator load: node record out of order (corrupt state)");
    for (std::size_t i = 0; i < n; ++i) {
      Arrival a;
      is >> a.t >> a.work;
      tmp.arrivals_[v].push_back(a);
    }
  }
  TS_REQUIRE(static_cast<bool>(is), "estimator load: truncated state");
  std::uint64_t csum = 0;
  is >> tag >> csum;
  TS_REQUIRE(is && tag == "satcsum",
             "estimator load: missing checksum line (truncated state)");
  TS_REQUIRE(csum == util::fnv1a_64(tmp.payload()),
             "estimator load: checksum mismatch (corrupt state)");
  arrivals_ = std::move(tmp.arrivals_);
  sums_ = std::move(tmp.sums_);
}

}  // namespace treesched::overload
