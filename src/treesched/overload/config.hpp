// Overload-protection configuration: the shedding policy knob shared by the
// engine, the admission controller, run logs, and both CLIs.
//
// The config lives apart from the controller so that `sim` (EngineConfig,
// run_log) can embed it without linking against the policy layer — the
// controller itself (treesched_overload) depends on algo for the Lemma-4
// bound and is wired in by the caller via Engine::set_admission.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace treesched::overload {

/// Admission-control discipline applied at the root when a job arrives.
enum class ShedPolicy : std::uint8_t {
  /// Admit everything — the pre-overload engine behavior, and the default.
  kNone,
  /// Reject the arriving job whenever the root backlog (total remaining
  /// volume pending at the root children) would exceed `queue_cap`.
  kBoundedQueue,
  /// Keep the backlog under `queue_cap` by shedding the LARGEST pending job
  /// first (the SJF-dual choice): by Lemma 2 a job j only delays
  /// higher-priority volume by at most (2/eps)·p_j, so evicting the largest
  /// p_j removes the most backlog while freeing the least SJF priority mass.
  kLargestFirst,
  /// Admit only jobs whose Lemma-4 completion-time upper bound satisfies
  /// F(j, leaf) <= deadline_slack * p_j for the best leaf; reject the rest.
  kDeadline,
};

struct ShedConfig {
  ShedPolicy policy = ShedPolicy::kNone;
  /// Volume cap on the root backlog (bounded-queue / largest-first). Must be
  /// > 0 when one of those policies is selected.
  double queue_cap = 0.0;
  /// Deadline policy: admit iff min-leaf F(j, leaf) <= slack * p_j.
  double deadline_slack = 8.0;

  bool enabled() const { return policy != ShedPolicy::kNone; }
};

inline const char* shed_policy_name(ShedPolicy p) {
  switch (p) {
    case ShedPolicy::kNone: return "none";
    case ShedPolicy::kBoundedQueue: return "bounded-queue";
    case ShedPolicy::kLargestFirst: return "largest-first";
    case ShedPolicy::kDeadline: return "deadline";
  }
  return "?";
}

inline ShedPolicy parse_shed_policy(const std::string& s) {
  if (s == "none") return ShedPolicy::kNone;
  if (s == "bounded-queue") return ShedPolicy::kBoundedQueue;
  if (s == "largest-first") return ShedPolicy::kLargestFirst;
  if (s == "deadline") return ShedPolicy::kDeadline;
  throw std::invalid_argument("unknown shed policy '" + s +
                              "' (none|bounded-queue|largest-first|deadline)");
}

inline bool is_known_shed_policy(const std::string& s) {
  return s == "none" || s == "bounded-queue" || s == "largest-first" ||
         s == "deadline";
}

}  // namespace treesched::overload
