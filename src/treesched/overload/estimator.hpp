// Saturation estimation: windowed offered-load rho-hat per node, plus
// instantaneous backlog readings.
//
// The estimator is a passive EngineObserver: on every admission it credits
// the job's per-node work to a sliding arrival window, so rho-hat(v) =
// (work routed through v over the last W of simulated time) / (W * s_v) —
// an online estimate of the offered load the generator aimed at. Backlog
// readings delegate to Engine::pending_remaining, which the fast path
// answers from the dispatch-index aggregates in O(log n) (O(1) amortized)
// and the slow-query oracle answers by rescanning Q_v; both modes are
// differential-tested identical, so anything derived from them (including
// shed decisions) is mode-independent.
#pragma once

#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "treesched/sim/engine.hpp"

namespace treesched::overload {

class SaturationEstimator : public sim::EngineObserver {
 public:
  /// `window` is the sliding-window width W in simulated time units.
  explicit SaturationEstimator(double window = 50.0);

  void on_job_admitted(const sim::Engine& engine, JobId j) override;

  /// Windowed offered load of v: admitted work routed through v during the
  /// last W, over W * s_v (the effective window shrinks to now() early in
  /// the run so t < W does not dilute the estimate). Infinity when work
  /// arrived but the window or speed is degenerate (zero-width, s_v = 0).
  double rho_hat(const sim::Engine& engine, NodeId v);

  /// Max rho_hat over the root children — the saturation headline number
  /// (the root cut is the paper's bottleneck).
  double max_root_child_rho(const sim::Engine& engine);

  /// Instantaneous backlog at v (Engine::pending_remaining pass-through).
  static double backlog(const sim::Engine& engine, NodeId v) {
    return engine.pending_remaining(v);
  }
  /// Root-cut backlog: sum of pending_remaining over the root children.
  static double root_backlog(const sim::Engine& engine);

  /// Text round-trip (full %.17g precision) of the windowed state — the
  /// per-node arrival deques and their running sums — with an FNV-1a-64
  /// self-checksum, so a shed streaming run's rho-hat readings continue
  /// byte-identically across kill/resume. load_state rejects truncated or
  /// bit-flipped bytes and a mismatched window with std::invalid_argument.
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  struct Arrival {
    Time t = 0.0;
    double work = 0.0;
  };

  void prune(NodeId v, Time now);
  std::string payload() const;  ///< canonical serialized state (checksummed)

  double window_;
  std::vector<std::deque<Arrival>> arrivals_;  ///< per node, time-ordered
  std::vector<double> sums_;                   ///< per node window sum
};

}  // namespace treesched::overload
