#include "treesched/overload/controller.hpp"

#include <limits>
#include <stdexcept>

#include "treesched/util/assert.hpp"

namespace treesched::overload {

void validate_shed_config(const ShedConfig& cfg) {
  switch (cfg.policy) {
    case ShedPolicy::kNone:
      return;
    case ShedPolicy::kBoundedQueue:
    case ShedPolicy::kLargestFirst:
      if (cfg.queue_cap <= 0.0)
        throw std::invalid_argument(
            std::string(shed_policy_name(cfg.policy)) +
            " requires a positive volume cap (--queue-cap)");
      return;
    case ShedPolicy::kDeadline:
      if (cfg.deadline_slack <= 0.0)
        throw std::invalid_argument(
            "deadline requires a positive slack (--deadline-slack)");
      return;
  }
}

AdmissionController::AdmissionController(const ShedConfig& cfg, double eps)
    : cfg_(cfg), greedy_(eps) {
  validate_shed_config(cfg_);
}

void AdmissionController::tighten(double factor) {
  if (!(factor > 0.0 && factor <= 1.0))
    throw std::invalid_argument("tighten factor must be in (0, 1]");
  cfg_.queue_cap *= factor;
  cfg_.deadline_slack *= factor;
}

double AdmissionController::root_backlog(const sim::Engine& engine) {
  double sum = 0.0;
  for (const NodeId rc : engine.tree().root_children())
    sum += engine.pending_remaining(rc);
  return sum;
}

bool AdmissionController::admit(sim::Engine& engine, const Job& job) {
  switch (cfg_.policy) {
    case ShedPolicy::kNone:
      return true;
    case ShedPolicy::kBoundedQueue:
      return admit_bounded_queue(engine, job);
    case ShedPolicy::kLargestFirst:
      return admit_largest_first(engine, job);
    case ShedPolicy::kDeadline:
      return admit_deadline(engine, job);
  }
  return true;
}

bool AdmissionController::admit_bounded_queue(sim::Engine& engine,
                                              const Job& job) {
  if (root_backlog(engine) + job.size <= cfg_.queue_cap) return true;
  engine.reject(job.id);
  return false;
}

bool AdmissionController::admit_largest_first(sim::Engine& engine,
                                              const Job& job) {
  if (root_backlog(engine) + job.size <= cfg_.queue_cap) return true;
  // Over the cap: evict the largest candidate until the arrival fits (or the
  // arrival itself is the largest, in which case it is rejected). Candidates
  // are the jobs still pending at their root-child hop — jobs already
  // forwarded past the root cut contribute nothing to the backlog, and
  // re-dispatched jobs are never shed (the fault-recovery invariant).
  // Ordering is largest p_j first, ties to the latest release then the
  // highest id: a deterministic function of static attributes only.
  for (;;) {
    double best_size = job.size;
    Time best_release = job.release;
    JobId best = job.id;
    bool best_is_arrival = true;
    for (const NodeId rc : engine.tree().root_children()) {
      for (const JobId cand : engine.inflight_at(rc)) {
        if (engine.job_redispatched(cand)) continue;
        const Job& cj = engine.instance().job(cand);
        const bool larger =
            cj.size > best_size ||
            (cj.size == best_size &&
             (cj.release > best_release ||
              (cj.release == best_release && cand > best)));
        if (larger) {
          best_size = cj.size;
          best_release = cj.release;
          best = cand;
          best_is_arrival = false;
        }
      }
    }
    if (best_is_arrival) {
      engine.reject(job.id);
      return false;
    }
    engine.shed(best);
    if (root_backlog(engine) + job.size <= cfg_.queue_cap) return true;
  }
}

void AdmissionController::save_state(std::ostream& os) const {
  estimator_.save_state(os);
}

void AdmissionController::load_state(std::istream& is) {
  estimator_.load_state(is);
}

bool AdmissionController::admit_deadline(sim::Engine& engine, const Job& job) {
  double fmin = std::numeric_limits<double>::infinity();
  if (!engine.config().slow_queries) {
    // F(j, leaf) depends on the leaf only through its root child, so the
    // min over leaves() equals the min over one representative per root
    // child — bitwise, since min over equal doubles is order-independent.
    if (rep_engine_ != &engine) {
      rep_engine_ = &engine;
      rep_leaves_.clear();
      std::vector<char> seen(uidx(engine.tree().node_count()), 0);
      for (const NodeId leaf : engine.tree().leaves()) {
        const NodeId rc = engine.tree().root_child_of(leaf);
        if (seen[uidx(rc)]) continue;
        seen[uidx(rc)] = 1;
        rep_leaves_.push_back(leaf);
      }
    }
    for (const NodeId leaf : rep_leaves_)
      fmin = std::min(fmin, greedy_.F_cached(engine, job, leaf));
  } else {
    for (const NodeId leaf : engine.tree().leaves())
      fmin = std::min(fmin, greedy_.F_cached(engine, job, leaf));
  }
  const double bound = cfg_.deadline_slack * job.size;
  if (fmin <= bound) {
    engine.log_admission(job.id, fmin, bound);
    return true;
  }
  engine.reject(job.id, fmin, bound);
  return false;
}

}  // namespace treesched::overload
