// Admission control at the root (the overload-protection tentpole).
//
// The controller implements sim::AdmissionPolicy: the engine consults it
// once per arriving job, at the release instant, before leaf assignment.
// Three shedding disciplines are provided beyond `none`:
//
//  * bounded-queue — reject the arrival when the root-cut backlog (total
//    remaining volume pending at the root children, via the O(log n)
//    pending_remaining aggregates) would exceed the volume cap.
//  * largest-first — keep the backlog under the cap by evicting the LARGEST
//    job first, the SJF-dual choice: by Lemma 2 a job j delays only
//    (2/eps)*p_j of higher-priority volume, so shedding the largest p_j
//    frees the most backlog while disturbing the least SJF priority mass.
//    If the arrival itself is the largest candidate it is rejected instead.
//  * deadline — admit only jobs whose best-leaf Lemma-4 congestion bound
//    satisfies F(j, leaf) <= slack * p_j (at unit root-cut speed F bounds
//    the volume draining ahead of j, hence its flow), reusing
//    PaperGreedyPolicy's per-root-child epoch cache for the leaves() sweep.
//
// Determinism contract: every decision is a pure function of engine queries
// that are differential-tested identical across the fast/slow query modes
// (pending_remaining, the F aggregates) plus static job attributes (p_j,
// r_j, id), and decisions happen in the single-threaded admission loop — so
// degraded runs are byte-reproducible across thread counts and query modes.
#pragma once

#include <iosfwd>
#include <vector>

#include "treesched/algo/policies.hpp"
#include "treesched/overload/config.hpp"
#include "treesched/overload/estimator.hpp"
#include "treesched/sim/engine.hpp"

namespace treesched::overload {

/// Validates a shed config eagerly: the volume policies (bounded-queue,
/// largest-first) require queue_cap > 0, deadline requires deadline_slack
/// > 0. Throws std::invalid_argument with an actionable message.
void validate_shed_config(const ShedConfig& cfg);

class AdmissionController : public sim::AdmissionPolicy {
 public:
  /// `eps` parameterizes the deadline policy's Lemma-4 F evaluation (use the
  /// same eps the assignment policy runs with); ignored by the others.
  explicit AdmissionController(const ShedConfig& cfg, double eps = 0.5);

  bool admit(sim::Engine& engine, const Job& job) override;
  const char* name() const override { return shed_policy_name(cfg_.policy); }
  /// Effective config — reflects any tighten() calls.
  const ShedConfig& config() const { return cfg_; }

  /// Degradation-ladder hook (guard governor, stage tightened-shed): scales
  /// the effective shedding knob by `factor` in (0, 1] so the policy drains
  /// backlog harder — volume policies shed above queue_cap * factor,
  /// deadline admits under slack * factor. Cumulative across calls; the
  /// decision rule itself is untouched, so a tightened run is exactly the
  /// run that would have used the smaller knob from the start of the next
  /// arrival. Not serialized: a resumed incarnation starts back at the
  /// configured knobs with its ladder at stage normal.
  void tighten(double factor);

  /// Root-cut backlog: sum of pending_remaining over the root children.
  static double root_backlog(const sim::Engine& engine);

  /// The controller-owned saturation estimator: callers feed it admissions
  /// (it is a passive observer) and read rho-hat from it. Owning it here
  /// puts the windowed readings under the controller's durable state, so a
  /// degraded run's saturation telemetry survives kill/resume.
  SaturationEstimator& estimator() { return estimator_; }
  const SaturationEstimator& estimator() const { return estimator_; }

  /// Durable state round-trip: delegates to the estimator (the policies
  /// themselves are stateless; PaperGreedyPolicy's epoch cache is keyed by
  /// engine identity + mutation count and recomputes deterministically, so
  /// it is deliberately not serialized). Same checksum-reject contract as
  /// SaturationEstimator::load_state.
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  bool admit_bounded_queue(sim::Engine& engine, const Job& job);
  bool admit_largest_first(sim::Engine& engine, const Job& job);
  bool admit_deadline(sim::Engine& engine, const Job& job);

  ShedConfig cfg_;
  algo::PaperGreedyPolicy greedy_;  ///< deadline F evaluation (epoch-cached)
  SaturationEstimator estimator_;  ///< windowed rho-hat (durable state)

  // Fast-path sweep set for admit_deadline: one representative leaf per root
  // child, in first-occurrence order of leaves(). F depends on the leaf only
  // through R(v), and min over doubles is order-independent, so sweeping the
  // representatives yields the bit-identical fmin of the full leaves() sweep.
  // Rebuilt lazily when the engine changes; the slow-query oracle keeps the
  // full per-leaf loop.
  const sim::Engine* rep_engine_ = nullptr;
  std::vector<NodeId> rep_leaves_;
};

}  // namespace treesched::overload
