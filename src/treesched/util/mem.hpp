// Process memory introspection for endurance benchmarks and heartbeats.
#pragma once

#include <cstdint>

namespace treesched::util {

/// Peak resident set size (VmHWM) of the current process in bytes, read from
/// /proc/self/status. Returns 0 on platforms without procfs — callers must
/// treat 0 as "unknown", not "tiny". Monotone non-decreasing over a process
/// lifetime, so per-phase deltas within one process are meaningless; compare
/// across separate processes instead.
std::uint64_t peak_rss_bytes();

/// Current resident set size (VmRSS) in bytes; 0 when unavailable.
std::uint64_t current_rss_bytes();

}  // namespace treesched::util
