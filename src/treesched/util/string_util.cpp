#include "treesched/util/string_util.hpp"

#include <cctype>

namespace treesched::util {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace treesched::util
