#include "treesched/util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>

namespace treesched::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes emission so lines from concurrent pool workers never interleave
// mid-line. The message is formatted outside the lock and written in one
// stream insertion.
std::mutex g_emit_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::ostringstream line;
  line << "[" << level_name(level) << "] " << msg << '\n';
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << line.str();
}

}  // namespace treesched::util
