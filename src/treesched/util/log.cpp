#include "treesched/util/log.hpp"

#include <atomic>
#include <iostream>

namespace treesched::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::cerr << "[" << level_name(level) << "] " << msg << '\n';
}

}  // namespace treesched::util
