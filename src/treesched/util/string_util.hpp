// Small string helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace treesched::util {

/// Splits s on the given delimiter; consecutive delimiters yield empty fields.
std::vector<std::string> split(const std::string& s, char delim);

/// Strips leading/trailing ASCII whitespace.
std::string trim(const std::string& s);

/// Joins parts with the given separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// True if s starts with the given prefix.
bool starts_with(const std::string& s, const std::string& prefix);

}  // namespace treesched::util
