// Centralized floating-point comparison for simulation time arithmetic.
//
// All event-time and work-volume comparisons in the simulator go through
// these helpers with a single library-wide tolerance, so tie handling is
// consistent everywhere.
#pragma once

namespace treesched::util {

/// Library-wide absolute tolerance for time/volume comparisons.
/// Simulation horizons are O(1e6) and sizes O(1e4), so 1e-7 absolute plus a
/// relative term keeps comparisons stable without masking real differences.
inline constexpr double kEps = 1e-7;

/// Returns true if a and b are equal within tolerance.
bool approx_eq(double a, double b, double tol = kEps);

/// Returns true if a < b beyond tolerance.
bool approx_lt(double a, double b, double tol = kEps);

/// Returns true if a <= b within tolerance.
bool approx_le(double a, double b, double tol = kEps);

/// Returns true if a > b beyond tolerance.
bool approx_gt(double a, double b, double tol = kEps);

/// Returns true if a >= b within tolerance.
bool approx_ge(double a, double b, double tol = kEps);

/// Clamps tiny negative residuals (from float cancellation) to exactly zero;
/// anything more negative than -tol is left alone so bugs still surface.
double clamp_nonneg(double x, double tol = kEps);

}  // namespace treesched::util
