// Minimal CSV writer for experiment output.
//
// Benchmarks print human-readable tables to stdout and, when asked, also
// emit machine-readable CSV so results can be post-processed.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace treesched::util {

/// Accumulates rows and writes RFC-4180-ish CSV (fields containing commas,
/// quotes or newlines are quoted; embedded quotes doubled).
class CsvWriter {
 public:
  /// Sets the header row. Must be called before any add_row.
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row; the cell count must match the header.
  void add_row(const std::vector<std::string>& cells);

  /// Convenience: formats arbitrary streamable values into a row.
  template <typename... Ts>
  void add(const Ts&... vals) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(vals));
    (cells.push_back(to_cell(vals)), ...);
    add_row(cells);
  }

  /// Serializes header + rows.
  std::string str() const;

  /// Writes to a file; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  static std::string escape(const std::string& s);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace treesched::util
