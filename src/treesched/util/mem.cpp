#include "treesched/util/mem.hpp"

#include <fstream>
#include <sstream>
#include <string>

namespace treesched::util {

namespace {

// Parses "<field>:   <kB> kB" out of /proc/self/status. Returns 0 when the
// file or the field is absent (non-Linux platforms).
std::uint64_t proc_status_kb(const char* field) {
  std::ifstream in("/proc/self/status");
  if (!in) return 0;
  std::string line;
  const std::string want = std::string(field) + ":";
  while (std::getline(in, line)) {
    if (line.compare(0, want.size(), want) != 0) continue;
    std::istringstream ls(line.substr(want.size()));
    std::uint64_t kb = 0;
    ls >> kb;
    return kb;
  }
  return 0;
}

}  // namespace

std::uint64_t peak_rss_bytes() { return proc_status_kb("VmHWM") * 1024; }

std::uint64_t current_rss_bytes() { return proc_status_kb("VmRSS") * 1024; }

}  // namespace treesched::util
