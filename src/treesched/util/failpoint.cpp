#include "treesched/util/failpoint.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "treesched/util/string_util.hpp"

namespace treesched::util {

namespace {

struct Entry {
  std::string site;
  FailKind kind = FailKind::kEnospc;
  std::uint64_t nth = 1;    ///< fire on this evaluation of the site (1-based)
  bool fired = false;
};

struct State {
  std::vector<Entry> entries;
  /// Per-site evaluation counters, keyed by site name. A flat vector keeps
  /// iteration deterministic (no unordered containers).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::string> fired_log;
};

// The armed flag is the disarmed fast path; the mutex guards everything
// else (write_file_atomic is reachable from sweep worker threads).
std::atomic<bool> g_armed{false};
std::mutex g_mu;
State g_state;

std::uint64_t& counter_for(State& st, const std::string& site) {
  for (auto& [name, count] : st.counters)
    if (name == site) return count;
  st.counters.emplace_back(site, 0);
  return st.counters.back().second;
}

}  // namespace

const char* fail_kind_name(FailKind k) {
  switch (k) {
    case FailKind::kEnospc: return "enospc";
    case FailKind::kFsyncFail: return "fsync-fail";
    case FailKind::kTornWrite: return "torn-write";
    case FailKind::kShortRead: return "short-read";
    case FailKind::kBitFlip: return "bit-flip";
  }
  return "?";
}

FailKind parse_fail_kind(const std::string& token) {
  if (token == "enospc") return FailKind::kEnospc;
  if (token == "fsync-fail") return FailKind::kFsyncFail;
  if (token == "torn-write") return FailKind::kTornWrite;
  if (token == "short-read") return FailKind::kShortRead;
  if (token == "bit-flip") return FailKind::kBitFlip;
  throw std::invalid_argument(
      "unknown failpoint kind '" + token +
      "' (want enospc|fsync-fail|torn-write|short-read|bit-flip)");
}

void arm_failpoints(const std::string& spec) {
  State fresh;
  for (const std::string& part : split(trim(spec), ',')) {
    const std::string item = trim(part);
    if (item.empty()) continue;
    const auto fields = split(item, ':');
    if (fields.size() != 3)
      throw std::invalid_argument("failpoint '" + item +
                                  "' is not site:kind:nth");
    Entry e;
    e.site = trim(fields[0]);
    e.kind = parse_fail_kind(trim(fields[1]));
    try {
      const long long n = std::stoll(trim(fields[2]));
      if (n < 1) throw std::invalid_argument("non-positive");
      e.nth = static_cast<std::uint64_t>(n);
    } catch (const std::exception&) {
      throw std::invalid_argument("failpoint '" + item +
                                  "': nth must be a positive integer");
    }
    if (e.site.empty())
      throw std::invalid_argument("failpoint '" + item + "': empty site");
    fresh.entries.push_back(std::move(e));
  }
  std::lock_guard<std::mutex> lock(g_mu);
  g_state = std::move(fresh);
  g_armed.store(!g_state.entries.empty(), std::memory_order_relaxed);
}

void arm_failpoints_from_env() {
  const char* env = std::getenv("TREESCHED_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') arm_failpoints(env);
}

void disarm_failpoints() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_state = State();
  g_armed.store(false, std::memory_order_relaxed);
}

bool failpoints_armed() {
  return g_armed.load(std::memory_order_relaxed);
}

std::optional<FailpointHit> failpoint_hit(const char* site) {
  if (!g_armed.load(std::memory_order_relaxed)) return std::nullopt;
  std::lock_guard<std::mutex> lock(g_mu);
  const std::uint64_t count = ++counter_for(g_state, site);
  for (Entry& e : g_state.entries) {
    if (e.fired || e.site != site || e.nth != count) continue;
    e.fired = true;
    g_state.fired_log.push_back(e.site + ":" + fail_kind_name(e.kind));
    return FailpointHit{e.kind};
  }
  return std::nullopt;
}

std::vector<std::string> failpoints_fired() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_state.fired_log;
}

std::string apply_torn(const std::string& bytes) {
  return bytes.substr(0, bytes.size() / 2);
}

std::string apply_bit_flip(const std::string& bytes) {
  std::string out = bytes;
  if (!out.empty())
    out[out.size() / 2] = static_cast<char>(out[out.size() / 2] ^ 0x01);
  return out;
}

}  // namespace treesched::util
