// Precondition / invariant checking for the treesched library.
//
// TS_REQUIRE  — checks a caller-facing precondition; throws std::invalid_argument.
// TS_CHECK    — checks an internal invariant; throws std::logic_error.
// Both are always on: the library is a research tool where silent corruption
// of a schedule is far worse than the cost of a branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace treesched::util {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace treesched::util

#define TS_REQUIRE(expr, msg)                                              \
  do {                                                                     \
    if (!(expr))                                                           \
      ::treesched::util::throw_precondition(#expr, __FILE__, __LINE__,     \
                                            (msg));                        \
  } while (false)

#define TS_CHECK(expr, msg)                                                \
  do {                                                                     \
    if (!(expr))                                                           \
      ::treesched::util::throw_invariant(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
