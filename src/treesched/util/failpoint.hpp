// Deterministic I/O fault injection for the durability chaos harness.
//
// A failpoint is a named site in an I/O seam (write_file_atomic, the
// snapshot reader, the segment reader, the manifest appender) that can be
// armed to fail on a specific evaluation. The schedule is fully explicit —
// no randomness, no wall clock — so every chaos run is reproducible from
// its spec string:
//
//     TREESCHED_FAILPOINTS=fs.atomic:enospc:1,snapshot.read:bit-flip:2
//
// means: the 1st write_file_atomic call fails with ENOSPC, and the 2nd
// snapshot-generation read returns bytes with one bit inverted. Each armed
// entry fires exactly once (on the nth evaluation of its site, 1-based)
// and is recorded in a fired log the tests assert against.
//
// Fault kinds (what the site does with a hit is seam-specific; see the
// seam's documentation):
//   enospc      write fails with ENOSPC before any byte lands
//   fsync-fail  the data fsync fails with EIO
//   torn-write  only a prefix of the payload reaches the file — and the
//               writer does NOT notice (storage lied about durability)
//   short-read  a read returns only a prefix of the file
//   bit-flip    one bit of the payload/returned bytes is inverted silently
//
// Zero-cost when disarmed: failpoint_hit() is a single relaxed atomic bool
// load on the fast path, so shipping the sites compiled-in costs nothing
// measurable on bench_endurance. Arming/disarming is process-global and
// intended for single-run tools and tests, not concurrent arming.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace treesched::util {

enum class FailKind {
  kEnospc,
  kFsyncFail,
  kTornWrite,
  kShortRead,
  kBitFlip,
};

const char* fail_kind_name(FailKind k);

/// Parses one kind token ("enospc", "fsync-fail", "torn-write",
/// "short-read", "bit-flip"). Throws std::invalid_argument on anything else.
FailKind parse_fail_kind(const std::string& token);

struct FailpointHit {
  FailKind kind = FailKind::kEnospc;
};

/// Arms the schedule described by `spec` ("site:kind:nth,..."; nth is the
/// 1-based evaluation count at that site), replacing any previous schedule
/// and clearing the fired log. An empty spec disarms. Throws
/// std::invalid_argument on a malformed spec.
void arm_failpoints(const std::string& spec);

/// Arms from $TREESCHED_FAILPOINTS when set and non-empty (no-op otherwise).
void arm_failpoints_from_env();

/// Clears the schedule and the fired log.
void disarm_failpoints();

/// True when any entry is armed (fired or not).
bool failpoints_armed();

/// Evaluates the site: returns the fault to inject when an armed entry for
/// `site` reaches its nth evaluation, nullopt otherwise. This is the only
/// call seams make; it is a single relaxed atomic load when disarmed.
std::optional<FailpointHit> failpoint_hit(const char* site);

/// "site:kind" strings in firing order, for tests and chaos reports.
std::vector<std::string> failpoints_fired();

/// Scope guard for tests: arms on construction, disarms on destruction.
class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(const std::string& spec) { arm_failpoints(spec); }
  ~ScopedFailpoints() { disarm_failpoints(); }
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;
};

// Helpers seams share so every site mutates payloads the same way (half the
// bytes for torn/short, one inverted bit in the middle byte for flips).
// Exposed for tests that need to predict the corrupted bytes exactly.
std::string apply_torn(const std::string& bytes);
std::string apply_bit_flip(const std::string& bytes);

}  // namespace treesched::util
