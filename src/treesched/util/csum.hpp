// Compensated (Neumaier) floating-point summation.
//
// This is the designated accumulation helper enforced by treesched_lint's
// `inv-fp-accum` rule: naive `total += x` loops over containers in stats/sim
// lose low-order bits in an order-dependent way, so two algebraically equal
// aggregations can diverge in the last ulps and poison byte-identity
// comparisons downstream. CompensatedSum keeps a running error term
// (Neumaier's variant of Kahan summation, correct even when the addend
// exceeds the running sum), making the result far less sensitive to
// accumulation order and magnitude spread.
//
// The summation itself is still deterministic for a fixed call sequence —
// determinism comes from fixed iteration order, precision from compensation.
#pragma once

#include <cmath>

namespace treesched::util {

class CompensatedSum {
 public:
  CompensatedSum() = default;
  explicit CompensatedSum(double initial) : sum_(initial) {}

  void add(double x) {
    const double t = sum_ + x;
    // Neumaier: the compensation recovers the bits the smaller-magnitude
    // operand lost when it was rounded into t.
    if (std::abs(sum_) >= std::abs(x))
      comp_ += (sum_ - t) + x;
    else
      comp_ += (x - t) + sum_;
    sum_ = t;
  }

  /// The compensated total.
  double value() const { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

}  // namespace treesched::util
