// Compensated (Neumaier) floating-point summation.
//
// This is the designated accumulation helper enforced by treesched_lint's
// `inv-fp-accum` rule: naive `total += x` loops over containers in stats/sim
// lose low-order bits in an order-dependent way, so two algebraically equal
// aggregations can diverge in the last ulps and poison byte-identity
// comparisons downstream. CompensatedSum keeps a running error term
// (Neumaier's variant of Kahan summation, correct even when the addend
// exceeds the running sum), making the result far less sensitive to
// accumulation order and magnitude spread.
//
// The summation itself is still deterministic for a fixed call sequence —
// determinism comes from fixed iteration order, precision from compensation.
#pragma once

#include <cmath>

namespace treesched::util {

class CompensatedSum {
 public:
  CompensatedSum() = default;
  explicit CompensatedSum(double initial) : sum_(initial) {}

  void add(double x) {
    const double t = sum_ + x;
    // Neumaier: the compensation recovers the bits the smaller-magnitude
    // operand lost when it was rounded into t.
    if (std::abs(sum_) >= std::abs(x))
      comp_ += (sum_ - t) + x;
    else
      comp_ += (x - t) + sum_;
    sum_ = t;
  }

  /// The compensated total.
  double value() const { return sum_ + comp_; }

  /// Folds another partial sum into this one: adds the other's running sum
  /// and compensation as two separate addends so neither error term is
  /// discarded. Deterministic for a fixed merge order (callers that merge
  /// shards must fix that order, e.g. by task index).
  void merge(const CompensatedSum& other) {
    add(other.sum_);
    add(other.comp_);
  }

  /// Raw state accessors for exact serialization (engine snapshots must
  /// round-trip the pair, not the folded value(), to stay byte-identical).
  double sum() const { return sum_; }
  double compensation() const { return comp_; }

  /// Restores state captured via sum()/compensation().
  void set_state(double sum, double comp) {
    sum_ = sum;
    comp_ = comp;
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

}  // namespace treesched::util
