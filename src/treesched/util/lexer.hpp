// Minimal C++ tokenizer backing the treesched_lint static analyzer.
//
// This is deliberately not a parser: rules in src/treesched/lint pattern-match
// over the token stream, so the lexer only has to get the *boundaries* right —
// comments (line and block, multi-line), string literals (including raw
// strings), character literals, preprocessor directives, and `#if 0` disabled
// regions must never leak their contents as identifier tokens, or a banned
// name quoted in a doc comment would fire a determinism rule. Comments are
// kept as tokens (rules read suppression annotations and TODO markers from
// them); disabled-region tokens are dropped entirely.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace treesched::util {

enum class TokKind : std::uint8_t {
  kIdentifier,  ///< identifiers and keywords (rules do their own keyword sets)
  kNumber,      ///< numeric literal, including hex/bin and digit separators
  kString,      ///< string literal, raw or not; text excludes quotes/prefix
  kChar,        ///< character literal
  kPunct,       ///< one operator/punctuator per token (maximal munch)
  kDirective,   ///< a whole directive; text is `name [trimmed argument text]`
  kComment,     ///< line or block comment; text includes the full body
};

struct Token {
  TokKind kind;
  std::string text;  ///< see per-kind notes on TokKind
  int line;          ///< 1-based line of the token's first character
  int col;           ///< 1-based column of the token's first character
};

struct LexedFile {
  std::string path;           ///< as passed to lex(); relative or absolute
  std::vector<Token> tokens;  ///< in source order, disabled regions excluded
};

/// Tokenizes `source`. Never throws on malformed input: an unterminated
/// string/comment is closed at end of file, so the analyzer degrades to
/// missing findings rather than crashing on a file it cannot read.
LexedFile lex(std::string_view source, std::string path);

/// True if `tok` is an identifier with exactly this text.
inline bool is_ident(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::kIdentifier && tok.text == text;
}

/// True if `tok` is a punctuator with exactly this text.
inline bool is_punct(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

}  // namespace treesched::util
