// ASCII table printer — the benchmarks print paper-style tables with it.
#pragma once

#include <string>
#include <vector>

namespace treesched::util {

/// Collects rows of cells and renders a column-aligned ASCII table with a
/// header rule, suitable for terminal output of experiment results.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arbitrary streamable values into a row.
  template <typename... Ts>
  void add(const Ts&... vals) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(vals));
    (cells.push_back(format_cell(vals)), ...);
    add_row(std::move(cells));
  }

  /// Renders the table. Numeric-looking cells are right-aligned.
  std::string str() const;

  std::size_t row_count() const { return rows_.size(); }

  /// Formats a double with the given precision (used by benches for ratios).
  static std::string num(double v, int precision = 3);

 private:
  template <typename T>
  static std::string format_cell(const T& v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

template <typename T>
std::string Table::format_cell(const T& v) {
  if constexpr (std::is_same_v<T, std::string>) {
    return v;
  } else if constexpr (std::is_convertible_v<T, const char*>) {
    return std::string(v);
  } else if constexpr (std::is_floating_point_v<T>) {
    return num(static_cast<double>(v));
  } else {
    return std::to_string(v);
  }
}

}  // namespace treesched::util
