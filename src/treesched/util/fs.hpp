// Crash-safe file writes for results that must never be half-written.
//
// Sweep JSON, run logs, and fault plans are consumed by other tools (and by
// --resume); a process killed mid-write must leave either the complete old
// file or the complete new file, never a torn one. write_file_atomic writes
// to a sibling temporary, fsyncs it, renames it over the target — rename(2)
// on the same filesystem is atomic — and then fsyncs the parent directory
// so the new entry itself survives power loss.
//
// This is also a failpoint seam (site "fs.atomic", util/failpoint.hpp): the
// durability chaos tests inject ENOSPC, fsync failure, torn writes, and
// single-bit corruption here deterministically.
#pragma once

#include <string>

namespace treesched::util {

/// Atomically replaces `path` with `content` (tmp + fsync + rename + parent
/// directory fsync). Throws std::runtime_error with a one-line actionable
/// message on any I/O failure; the temporary is unlinked on every error
/// path.
void write_file_atomic(const std::string& path, const std::string& content);

/// Crash-safe append of one record to a line-oriented log (quarantine
/// reports, guard logs). `line` must not contain '\n'. The record plus its
/// terminating newline goes to the kernel in a SINGLE O_APPEND write(2), so
/// concurrent appenders (supervisor + child) never interleave mid-record and
/// a crash can tear at most the final line. Before appending, a torn tail
/// from a previous crash (file not ending in '\n') is healed by writing a
/// lone newline first — the torn record becomes its own truncated line and
/// the new record always starts clean. The write is fsynced.
///
/// `failpoint_site` (nullable) names a failpoint seam evaluated per call:
/// enospc / fsync-fail throw std::runtime_error loudly; torn-write appends
/// only a newline-less prefix and SUCCEEDS silently (storage lied — exactly
/// the tail the next append must heal); bit-flip corrupts one bit silently.
void append_line_durable(const std::string& path, const std::string& line,
                         const char* failpoint_site = nullptr);

}  // namespace treesched::util
