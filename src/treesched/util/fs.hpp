// Crash-safe file writes for results that must never be half-written.
//
// Sweep JSON, run logs, and fault plans are consumed by other tools (and by
// --resume); a process killed mid-write must leave either the complete old
// file or the complete new file, never a torn one. write_file_atomic writes
// to a sibling temporary, fsyncs it, renames it over the target — rename(2)
// on the same filesystem is atomic — and then fsyncs the parent directory
// so the new entry itself survives power loss.
//
// This is also a failpoint seam (site "fs.atomic", util/failpoint.hpp): the
// durability chaos tests inject ENOSPC, fsync failure, torn writes, and
// single-bit corruption here deterministically.
#pragma once

#include <string>

namespace treesched::util {

/// Atomically replaces `path` with `content` (tmp + fsync + rename + parent
/// directory fsync). Throws std::runtime_error with a one-line actionable
/// message on any I/O failure; the temporary is unlinked on every error
/// path.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace treesched::util
