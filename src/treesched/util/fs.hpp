// Crash-safe file writes for results that must never be half-written.
//
// Sweep JSON, run logs, and fault plans are consumed by other tools (and by
// --resume); a process killed mid-write must leave either the complete old
// file or the complete new file, never a torn one. write_file_atomic writes
// to a sibling temporary, fsyncs it, and renames it over the target —
// rename(2) on the same filesystem is atomic.
#pragma once

#include <string>

namespace treesched::util {

/// Atomically replaces `path` with `content` (tmp + fsync + rename). Throws
/// std::runtime_error with a one-line actionable message on any I/O failure;
/// the temporary is cleaned up best-effort.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace treesched::util
