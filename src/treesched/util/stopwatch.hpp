// Wall-clock stopwatch for coarse experiment timing.
#pragma once

#include <chrono>

namespace treesched::util {

/// Starts on construction; elapsed_seconds() reads without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace treesched::util
