#include "treesched/util/lexer.hpp"

#include <cctype>

namespace treesched::util {

namespace {

/// Cursor over the source with line/column tracking. All consumption goes
/// through advance() so positions can never drift from the text.
class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  int line() const { return line_; }
  int col() const { return col_; }
  std::size_t pos() const { return pos_; }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  std::string_view slice(std::size_t from) const {
    return src_.substr(from, pos_ - from);
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Longest-first table of multi-character punctuators we must not split:
/// a rule distinguishing `==` from `=` (assert side effects) or `+=` from
/// `+` (FP accumulation) depends on maximal munch here.
constexpr const char* kPunct3[] = {"<<=", ">>=", "...", "->*"};
constexpr const char* kPunct2[] = {"::", "->", "++", "--", "<<", ">>", "<=",
                                   ">=", "==", "!=", "&&", "||", "+=", "-=",
                                   "*=", "/=", "%=", "&=", "|=", "^=", "##"};

struct Lexer {
  Cursor cur;
  LexedFile out;
  // Depth of `#if 0`-style disabled regions. While > 0, non-directive tokens
  // are dropped; nested #if/#ifdef/#ifndef inside the dead region push
  // further so the matching #endif is found correctly. `#else`/`#elif` at
  // depth 1 re-enable (the live branch follows).
  int disabled_depth = 0;
  // True after a newline until the first non-whitespace token: a `#` only
  // starts a directive at the (possibly indented) beginning of a line.
  bool line_start = true;

  Lexer(std::string_view src, std::string path) : cur(src) {
    out.path = std::move(path);
  }

  void emit(TokKind kind, std::string text, int line, int col) {
    if (disabled_depth > 0 && kind != TokKind::kDirective) return;
    out.tokens.push_back(Token{kind, std::move(text), line, col});
  }

  void run() {
    while (!cur.done()) {
      const char c = cur.peek();
      if (c == '\n') {
        cur.advance();
        line_start = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        cur.advance();
        continue;
      }
      if (c == '/' && cur.peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && cur.peek(1) == '*') {
        block_comment();  // does not clear line_start: `/**/ #if` still rare
        continue;
      }
      if (c == '#' && line_start) {
        directive();
        continue;
      }
      line_start = false;
      if (c == 'R' && cur.peek(1) == '"') {
        raw_string();
      } else if (is_string_prefix()) {
        prefixed_string();
      } else if (c == '"') {
        quoted(TokKind::kString, '"');
      } else if (c == '\'') {
        quoted(TokKind::kChar, '\'');
      } else if (ident_start(c)) {
        identifier();
      } else if (digit(c) || (c == '.' && digit(cur.peek(1)))) {
        number();
      } else {
        punct();
      }
    }
  }

  void line_comment() {
    const int line = cur.line(), col = cur.col();
    const std::size_t from = cur.pos();
    while (!cur.done() && cur.peek() != '\n') cur.advance();
    emit(TokKind::kComment, std::string(cur.slice(from)), line, col);
  }

  void block_comment() {
    const int line = cur.line(), col = cur.col();
    const std::size_t from = cur.pos();
    cur.advance();  // '/'
    cur.advance();  // '*'
    while (!cur.done()) {
      if (cur.peek() == '*' && cur.peek(1) == '/') {
        cur.advance();
        cur.advance();
        break;
      }
      cur.advance();
    }
    emit(TokKind::kComment, std::string(cur.slice(from)), line, col);
  }

  /// Consumes a whole directive (with backslash continuations); emits one
  /// kDirective token whose text is the directive name ("pragma", "if",
  /// "include", ...), then maintains the disabled-region state for `#if 0`.
  void directive() {
    const int line = cur.line(), col = cur.col();
    cur.advance();  // '#'
    while (!cur.done() && (cur.peek() == ' ' || cur.peek() == '\t'))
      cur.advance();
    const std::size_t name_from = cur.pos();
    while (!cur.done() && ident_char(cur.peek())) cur.advance();
    const std::string name(cur.slice(name_from));
    // Rest of the logical line (continuations included), for the `#if 0`
    // test. A trailing // comment ends the directive so it is still lexed
    // as a comment token (suppressions can sit on directive lines).
    const std::size_t rest_from = cur.pos();
    while (!cur.done()) {
      if (cur.peek() == '\\' &&
          (cur.peek(1) == '\n' ||
           (cur.peek(1) == '\r' && cur.peek(2) == '\n'))) {
        cur.advance();
        cur.advance();
        continue;
      }
      if (cur.peek() == '\n') break;
      if (cur.peek() == '/' && (cur.peek(1) == '/' || cur.peek(1) == '*'))
        break;
      cur.advance();
    }
    const std::string rest(cur.slice(rest_from));
    std::string text = name;
    {
      std::size_t b = 0, e = rest.size();
      while (b < e && std::isspace(static_cast<unsigned char>(rest[b]))) ++b;
      while (e > b && std::isspace(static_cast<unsigned char>(rest[e - 1])))
        --e;
      if (e > b) {
        text.push_back(' ');
        text.append(rest, b, e - b);
      }
    }
    emit(TokKind::kDirective, text, line, col);

    const auto rest_is_zero = [&rest]() {
      std::size_t i = 0;
      while (i < rest.size() && (rest[i] == ' ' || rest[i] == '\t')) ++i;
      return i < rest.size() && rest[i] == '0' &&
             (i + 1 == rest.size() || !ident_char(rest[i + 1]));
    };
    if (disabled_depth > 0) {
      if (name == "if" || name == "ifdef" || name == "ifndef") {
        ++disabled_depth;
      } else if (name == "endif") {
        --disabled_depth;
      } else if (disabled_depth == 1 && (name == "else" || name == "elif")) {
        disabled_depth = 0;
      }
    } else if (name == "if" && rest_is_zero()) {
      disabled_depth = 1;
    }
  }

  void raw_string() {
    const int line = cur.line(), col = cur.col();
    cur.advance();  // 'R'
    cur.advance();  // '"'
    std::string delim;
    while (!cur.done() && cur.peek() != '(') delim.push_back(cur.advance());
    if (!cur.done()) cur.advance();  // '('
    const std::string closer = ")" + delim + "\"";
    const std::size_t from = cur.pos();
    while (!cur.done()) {
      if (cur.peek() == ')') {
        bool match = true;
        for (std::size_t i = 0; i < closer.size(); ++i)
          if (cur.peek(i) != closer[i]) {
            match = false;
            break;
          }
        if (match) {
          const std::size_t body_len = cur.pos() - from;
          for (std::size_t i = 0; i < closer.size(); ++i) cur.advance();
          emit(TokKind::kString,
               std::string(cur.slice(from).substr(0, body_len)), line, col);
          return;
        }
      }
      cur.advance();
    }
    emit(TokKind::kString, std::string(cur.slice(from)), line, col);
  }

  /// u8"...", u"...", U"...", L"..." (same prefixes on char literals);
  /// R-combinations (u8R, LR, ...) re-dispatch to raw_string after the
  /// encoding prefix.
  bool is_string_prefix() const {
    const char c = cur.peek();
    if (c != 'u' && c != 'U' && c != 'L') return false;
    const std::size_t ahead = (c == 'u' && cur.peek(1) == '8') ? 2 : 1;
    return cur.peek(ahead) == '"' || cur.peek(ahead) == '\'' ||
           (cur.peek(ahead) == 'R' && cur.peek(ahead + 1) == '"');
  }

  void prefixed_string() {
    cur.advance();                         // u / U / L
    if (cur.peek() == '8') cur.advance();  // u8
    if (cur.peek() == 'R') {
      raw_string();
      return;
    }
    quoted(cur.peek() == '"' ? TokKind::kString : TokKind::kChar, cur.peek());
  }

  void quoted(TokKind kind, char quote) {
    const int line = cur.line(), col = cur.col();
    cur.advance();  // opening quote
    const std::size_t from = cur.pos();
    while (!cur.done()) {
      const char c = cur.peek();
      if (c == '\\') {
        cur.advance();
        if (!cur.done()) cur.advance();
        continue;
      }
      if (c == quote || c == '\n') {  // newline: unterminated, close here
        const std::size_t body_len = cur.pos() - from;
        if (c == quote) cur.advance();
        emit(kind, std::string(cur.slice(from).substr(0, body_len)), line,
             col);
        return;
      }
      cur.advance();
    }
    emit(kind, std::string(cur.slice(from)), line, col);
  }

  void identifier() {
    const int line = cur.line(), col = cur.col();
    const std::size_t from = cur.pos();
    while (!cur.done() && ident_char(cur.peek())) cur.advance();
    emit(TokKind::kIdentifier, std::string(cur.slice(from)), line, col);
  }

  void number() {
    const int line = cur.line(), col = cur.col();
    const std::size_t from = cur.pos();
    // pp-number: digits, letters (hex digits and suffixes), digit
    // separators, dots, and signed exponents. Over-accepts; fine for
    // matching purposes.
    while (!cur.done()) {
      const char c = cur.peek();
      if (ident_char(c) || c == '.' || c == '\'') {
        cur.advance();
      } else if (c == '+' || c == '-') {
        const std::string_view so_far = cur.slice(from);
        const char last = so_far.empty() ? '\0' : so_far.back();
        if (last == 'e' || last == 'E' || last == 'p' || last == 'P')
          cur.advance();
        else
          break;
      } else {
        break;
      }
    }
    emit(TokKind::kNumber, std::string(cur.slice(from)), line, col);
  }

  void punct() {
    const int line = cur.line(), col = cur.col();
    for (const char* p : kPunct3)
      if (cur.peek() == p[0] && cur.peek(1) == p[1] && cur.peek(2) == p[2]) {
        cur.advance();
        cur.advance();
        cur.advance();
        emit(TokKind::kPunct, p, line, col);
        return;
      }
    for (const char* p : kPunct2)
      if (cur.peek() == p[0] && cur.peek(1) == p[1]) {
        cur.advance();
        cur.advance();
        emit(TokKind::kPunct, p, line, col);
        return;
      }
    emit(TokKind::kPunct, std::string(1, cur.advance()), line, col);
  }
};

}  // namespace

LexedFile lex(std::string_view source, std::string path) {
  Lexer lexer(source, std::move(path));
  lexer.run();
  return std::move(lexer.out);
}

}  // namespace treesched::util
