// Leveled logging to stderr. Quiet by default so bench/table output on
// stdout stays clean; tests and examples can raise the level.
#pragma once

#include <sstream>
#include <string>

namespace treesched::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line at the given level (no-op below the threshold).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Ts>
std::string concat(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}
}  // namespace detail

template <typename... Ts>
void log_debug(const Ts&... parts) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(parts...));
}
template <typename... Ts>
void log_info(const Ts&... parts) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(parts...));
}
template <typename... Ts>
void log_warn(const Ts&... parts) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(parts...));
}
template <typename... Ts>
void log_error(const Ts&... parts) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(parts...));
}

}  // namespace treesched::util
