// Tiny declarative command-line parser used by examples and bench binaries.
//
// Supports --name=value and --name value forms, boolean flags (--name),
// typed defaults, and an auto-generated --help.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace treesched::util {

/// Declarative option registry + parser.
///
///   Cli cli("bench_foo", "Reproduces experiment E1.");
///   auto& n    = cli.add_int("jobs", 2000, "number of jobs");
///   auto& eps  = cli.add_double("eps", 0.5, "speed augmentation epsilon");
///   auto& csv  = cli.add_string("csv", "", "optional CSV output path");
///   auto& fast = cli.add_flag("fast", "reduced repetition count");
///   cli.parse(argc, argv);   // exits(0) on --help, throws on bad input
class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Registers options. The returned reference stays valid for the Cli's
  /// lifetime and holds the parsed value after parse().
  std::int64_t& add_int(const std::string& name, std::int64_t def,
                        const std::string& help);
  double& add_double(const std::string& name, double def,
                     const std::string& help);
  std::string& add_string(const std::string& name, std::string def,
                          const std::string& help);
  bool& add_flag(const std::string& name, const std::string& help);

  /// Parses argv. On --help prints usage and calls std::exit(0).
  /// Throws std::invalid_argument on unknown options or bad values.
  void parse(int argc, const char* const* argv);

  /// Usage text (also printed by --help).
  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Option {
    Kind kind;
    std::string help;
    std::string default_repr;
    // Owned storage, stable addresses.
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool flag_value = false;
  };

  Option& add(const std::string& name, Kind kind, const std::string& help);

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace treesched::util
