// Deterministic pseudo-random number generation for reproducible experiments.
//
// We deliberately do not use std::mt19937 / std::<distribution> because their
// output is not guaranteed identical across standard library implementations;
// every stream here is fully specified by this header, so a (seed, call
// sequence) pair reproduces bit-identical workloads anywhere.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace treesched::util {

/// SplitMix64 — used to expand a single user seed into xoshiro state.
/// Reference: Sebastiano Vigna, public domain.
struct SplitMix64 {
  std::uint64_t state;

  explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Derives the seed of logical stream `index` from `base` in O(1).
/// split_seed(base, i) equals the (i+1)-th output of SplitMix64(base), so a
/// task's seed depends only on (base, index) — never on call order or on how
/// many random draws other tasks make. This is the seeding rule for every
/// parallel code path (exec::parallel_map tasks, sweep cells, experiment
/// repetitions): identical results at any thread count.
std::uint64_t split_seed(std::uint64_t base, std::uint64_t index);

/// xoshiro256++ — the library's workhorse generator. Fast, high quality,
/// and deterministic across platforms.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(std::uint64_t seed = 0x5eedULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi). Requires lo < hi.
  double uniform_real(double lo, double hi);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Bounded Pareto on [lo, hi] with shape alpha. Requires 0 < lo < hi,
  /// alpha > 0. Classic heavy-tailed job-size model.
  double bounded_pareto(double lo, double hi, double alpha);

  /// Standard normal via Box–Muller (one value per call; no caching so the
  /// stream stays position-independent).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; useful to give each experiment
  /// repetition its own stream without coupling call orders.
  Rng split();

  /// Raw xoshiro256++ state, for engine snapshots: restoring via set_state
  /// resumes the stream at exactly the captured position.
  std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }

  /// Restores state captured via state().
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace treesched::util
