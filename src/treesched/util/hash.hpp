// FNV-1a 64-bit hashing — the repo's one fingerprint function.
//
// Run-log segment fingerprints, snapshot envelope checksums, sketch
// self-checksums, and run-spec identities all use the same primitive so a
// fingerprint printed by one tool can be recomputed by any other. FNV-1a is
// not cryptographic; it detects accidental corruption (torn writes, bit
// rot, truncation), which is the durability layer's threat model — an
// adversary with write access to the files can forge anything anyway.
#pragma once

#include <cstdint>
#include <string>

namespace treesched::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a 64 over `bytes`, seeded with `h` so hashes can be chained.
inline std::uint64_t fnv1a_64(const std::string& bytes,
                              std::uint64_t h = kFnvOffsetBasis) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace treesched::util
