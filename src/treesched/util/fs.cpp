#include "treesched/util/fs.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include <fcntl.h>
#include <unistd.h>

namespace treesched::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " '" + path +
                           "': " + std::strerror(errno));
}

}  // namespace

void write_file_atomic(const std::string& path, const std::string& content) {
  // Same-directory temporary: rename() is only atomic within a filesystem,
  // and a pid suffix keeps concurrent writers off each other's temp file.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot create temporary file", tmp);

  std::size_t off = 0;
  while (off < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write failed for", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("fsync failed for", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("close failed for", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("cannot rename temporary over", path);
  }
}

}  // namespace treesched::util
