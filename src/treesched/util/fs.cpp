#include "treesched/util/fs.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "treesched/util/failpoint.hpp"

namespace treesched::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " '" + path +
                           "': " + std::strerror(errno));
}

/// fsync the directory containing `path`, so the rename that just landed a
/// new directory entry survives power loss. rename(2) alone only orders the
/// entry in page cache; the metadata reaches disk when the DIRECTORY is
/// synced (fsync(2) NOTES).
void fsync_parent_dir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? std::string(".") : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) fail("cannot open parent directory of", path);
  if (::fsync(dfd) != 0) {
    const int saved = errno;
    ::close(dfd);
    errno = saved;
    fail("fsync failed for parent directory of", path);
  }
  ::close(dfd);
}

}  // namespace

void write_file_atomic(const std::string& path, const std::string& content) {
  // Failpoint seam (site "fs.atomic", one evaluation per call): enospc and
  // fsync-fail abort loudly at the matching stage; torn-write and bit-flip
  // corrupt the payload and SUCCEED silently — modeling storage that lied
  // about durability, which is exactly what checksummed readers must catch.
  bool inject_enospc = false;
  bool inject_fsync_fail = false;
  const std::string* payload = &content;
  std::string corrupted;
  if (const auto hit = failpoint_hit("fs.atomic")) {
    switch (hit->kind) {
      case FailKind::kEnospc:
        inject_enospc = true;
        break;
      case FailKind::kFsyncFail:
        inject_fsync_fail = true;
        break;
      case FailKind::kTornWrite:
        corrupted = apply_torn(content);
        payload = &corrupted;
        break;
      case FailKind::kBitFlip:
        corrupted = apply_bit_flip(content);
        payload = &corrupted;
        break;
      case FailKind::kShortRead:
        break;  // a read fault has no meaning at a write seam
    }
  }

  // Same-directory temporary: rename() is only atomic within a filesystem,
  // and a pid suffix keeps concurrent writers off each other's temp file.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot create temporary file", tmp);

  if (inject_enospc) {
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = ENOSPC;
    fail("write failed for", tmp);
  }
  std::size_t off = 0;
  while (off < payload->size()) {
    const ::ssize_t n =
        ::write(fd, payload->data() + off, payload->size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      errno = saved;
      fail("write failed for", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (inject_fsync_fail) {
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = EIO;
    fail("fsync failed for", tmp);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = saved;
    fail("fsync failed for", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("close failed for", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    fail("cannot rename temporary over", path);
  }
  // The rename landed; now make the new directory entry durable. On failure
  // the target file is already the new content (visible, just not yet
  // guaranteed on disk), so there is no temporary left to clean up.
  fsync_parent_dir(path);
}

void append_line_durable(const std::string& path, const std::string& line,
                         const char* failpoint_site) {
  if (line.find('\n') != std::string::npos)
    throw std::runtime_error("append_line_durable: record for '" + path +
                             "' contains a newline");
  bool inject_fsync_fail = false;
  std::string record = line + '\n';
  if (failpoint_site != nullptr) {
    if (const auto hit = failpoint_hit(failpoint_site)) {
      switch (hit->kind) {
        case FailKind::kEnospc:
          errno = ENOSPC;
          fail("append failed for", path);
        case FailKind::kFsyncFail:
          inject_fsync_fail = true;
          break;
        case FailKind::kTornWrite:
          // Storage lied: a newline-less prefix reaches the file and the
          // call SUCCEEDS — the torn tail the next append must heal.
          record = apply_torn(record);
          if (!record.empty() && record.back() == '\n') record.pop_back();
          break;
        case FailKind::kBitFlip:
          record = apply_bit_flip(record);
          break;
        case FailKind::kShortRead:
          break;  // a read fault has no meaning at a write seam
      }
    }
  }

  // O_RDWR, not O_WRONLY: the tail-heal below preads the last byte, which a
  // write-only descriptor refuses.
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) fail("cannot open for append", path);

  // Heal a torn tail from a previous crash: if the file does not end in a
  // newline, a lone '\n' first turns the torn record into its own truncated
  // line so the new record never concatenates onto it.
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("fstat failed for", path);
  }
  if (st.st_size > 0) {
    char tail = '\n';
    if (::pread(fd, &tail, 1, st.st_size - 1) == 1 && tail != '\n') {
      if (::write(fd, "\n", 1) != 1) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        fail("append (tail heal) failed for", path);
      }
    }
  }

  // One write(2) for the whole record: concurrent O_APPEND appenders never
  // interleave mid-record, and a crash tears at most this final line.
  std::size_t off = 0;
  while (off < record.size()) {
    const ::ssize_t n = ::write(fd, record.data() + off, record.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fail("append failed for", path);
    }
    off += static_cast<std::size_t>(n);
  }
  if (inject_fsync_fail) {
    ::close(fd);
    errno = EIO;
    fail("fsync failed for", path);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("fsync failed for", path);
  }
  if (::close(fd) != 0) fail("close failed for", path);
}

}  // namespace treesched::util
