#include "treesched/util/rng.hpp"

#include <cmath>

#include "treesched/util/assert.hpp"

namespace treesched::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t split_seed(std::uint64_t base, std::uint64_t index) {
  // SplitMix64 advances its state by the golden-gamma per next(); starting
  // at base + index*gamma therefore reproduces output index of the base
  // stream without the O(index) walk.
  SplitMix64 sm(base + index * 0x9e3779b97f4a7c15ULL);
  return sm.next();
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TS_REQUIRE(lo <= hi, "uniform_int bounds");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = next_u64();
  std::uint64_t threshold = (-span) % span;
  while (x < threshold) x = next_u64();
  return lo + static_cast<std::int64_t>(x % span);
}

double Rng::uniform01() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  TS_REQUIRE(lo < hi, "uniform_real bounds");
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double rate) {
  TS_REQUIRE(rate > 0.0, "exponential rate");
  double u = uniform01();
  // Guard against log(0).
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return -std::log1p(-u) / rate;
}

double Rng::bounded_pareto(double lo, double hi, double alpha) {
  TS_REQUIRE(lo > 0.0 && lo < hi && alpha > 0.0, "bounded_pareto parameters");
  const double u = uniform01();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse CDF of the bounded Pareto distribution.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = std::nextafter(0.0, 1.0);
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

bool Rng::bernoulli(double p) {
  TS_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli probability");
  return uniform01() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    TS_REQUIRE(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  TS_REQUIRE(total > 0.0, "weighted_index needs a positive weight");
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;  // numeric fallback
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace treesched::util
