#include "treesched/util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "treesched/util/assert.hpp"

namespace treesched::util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Cli::Option& Cli::add(const std::string& name, Kind kind,
                      const std::string& help) {
  TS_REQUIRE(!name.empty() && name[0] != '-', "option name must be bare");
  TS_REQUIRE(options_.find(name) == options_.end(), "duplicate option: " + name);
  Option opt;
  opt.kind = kind;
  opt.help = help;
  auto [it, inserted] = options_.emplace(name, std::move(opt));
  order_.push_back(name);
  return it->second;
}

std::int64_t& Cli::add_int(const std::string& name, std::int64_t def,
                           const std::string& help) {
  Option& o = add(name, Kind::kInt, help);
  o.int_value = def;
  o.default_repr = std::to_string(def);
  return o.int_value;
}

double& Cli::add_double(const std::string& name, double def,
                        const std::string& help) {
  Option& o = add(name, Kind::kDouble, help);
  o.double_value = def;
  std::ostringstream os;
  os << def;
  o.default_repr = os.str();
  return o.double_value;
}

std::string& Cli::add_string(const std::string& name, std::string def,
                             const std::string& help) {
  Option& o = add(name, Kind::kString, help);
  o.default_repr = def.empty() ? "\"\"" : def;
  o.string_value = std::move(def);
  return o.string_value;
}

bool& Cli::add_flag(const std::string& name, const std::string& help) {
  Option& o = add(name, Kind::kFlag, help);
  o.default_repr = "false";
  return o.flag_value;
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& o = options_.at(name);
    os << "  --" << name;
    switch (o.kind) {
      case Kind::kInt: os << " <int>"; break;
      case Kind::kDouble: os << " <real>"; break;
      case Kind::kString: os << " <string>"; break;
      case Kind::kFlag: break;
    }
    os << "  " << o.help << " (default: " << o.default_repr << ")\n";
  }
  os << "  --help  print this message\n";
  return os.str();
}

void Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("unexpected positional argument: " + arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto pos = arg.find('='); pos != std::string::npos) {
      value = arg.substr(pos + 1);
      arg = arg.substr(0, pos);
      has_value = true;
    }
    auto it = options_.find(arg);
    if (it == options_.end())
      throw std::invalid_argument("unknown option: --" + arg);
    Option& o = it->second;
    if (o.kind == Kind::kFlag) {
      if (has_value)
        throw std::invalid_argument("flag --" + arg + " takes no value");
      o.flag_value = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc)
        throw std::invalid_argument("option --" + arg + " needs a value");
      value = argv[++i];
    }
    try {
      switch (o.kind) {
        case Kind::kInt: o.int_value = std::stoll(value); break;
        case Kind::kDouble: o.double_value = std::stod(value); break;
        case Kind::kString: o.string_value = value; break;
        case Kind::kFlag: break;
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("bad value for --" + arg + ": " + value);
    }
  }
}

}  // namespace treesched::util
