#include "treesched/util/csv.hpp"

#include <stdexcept>

#include "treesched/util/assert.hpp"

namespace treesched::util {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  TS_REQUIRE(!header_.empty(), "CSV header must be non-empty");
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  TS_REQUIRE(cells.size() == header_.size(),
             "CSV row width must match header");
  rows_.push_back(cells);
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open CSV output file: " + path);
  f << str();
  if (!f) throw std::runtime_error("failed writing CSV output file: " + path);
}

}  // namespace treesched::util
