// Size-class rounding to powers of (1 + eps).
//
// The paper (Section 2) assumes every job's processing time is a power of
// (1 + eps); this costs only a (1 + eps) factor of speed. SJF on a node then
// works with *classes*: jobs of equal class are ordered by release time.
// These helpers implement the rounding and the class index arithmetic used
// by the scheduler, the workload generators, and Lemma 2/3 monitors.
#pragma once

#include <cstdint>

namespace treesched::util {

/// Returns the class index k such that (1+eps)^k is the smallest power of
/// (1+eps) that is >= p. Requires p > 0 and eps > 0.
std::int64_t size_class(double p, double eps);

/// Rounds p up to the nearest power of (1+eps). Requires p > 0 and eps > 0.
double round_up_to_class(double p, double eps);

/// The representative size (1+eps)^k of class k.
double class_size(std::int64_t k, double eps);

}  // namespace treesched::util
