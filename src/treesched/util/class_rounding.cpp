#include "treesched/util/class_rounding.hpp"

#include <cmath>

#include "treesched/util/assert.hpp"
#include "treesched/util/float_compare.hpp"

namespace treesched::util {

std::int64_t size_class(double p, double eps) {
  TS_REQUIRE(p > 0.0, "size_class: p must be positive");
  TS_REQUIRE(eps > 0.0, "size_class: eps must be positive");
  const double raw = std::log(p) / std::log1p(eps);
  std::int64_t k = static_cast<std::int64_t>(std::ceil(raw - 1e-9));
  // Guard against rounding placing p just above (1+eps)^k.
  while (class_size(k, eps) < p * (1.0 - 1e-12)) ++k;
  while (k > 0 && class_size(k - 1, eps) >= p * (1.0 - 1e-12)) --k;
  return k;
}

double round_up_to_class(double p, double eps) {
  return class_size(size_class(p, eps), eps);
}

double class_size(std::int64_t k, double eps) {
  return std::pow(1.0 + eps, static_cast<double>(k));
}

}  // namespace treesched::util
