#include "treesched/util/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "treesched/util/assert.hpp"

namespace treesched::util {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  TS_REQUIRE(!header_.empty(), "table header must be non-empty");
}

void Table::add_row(std::vector<std::string> cells) {
  TS_REQUIRE(cells.size() == header_.size(), "table row width must match header");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      const bool right = looks_numeric(row[c]);
      const int w = static_cast<int>(width[c]);
      os << (right ? std::setiosflags(std::ios::right)
                   : std::setiosflags(std::ios::left))
         << std::setw(w) << row[c]
         << std::resetiosflags(std::ios::adjustfield);
    }
    os << '\n';
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "  " : "") << std::string(width[c], '-');
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace treesched::util
