#include "treesched/util/float_compare.hpp"

#include <algorithm>
#include <cmath>

namespace treesched::util {

namespace {
double scale(double a, double b) {
  return std::max({1.0, std::fabs(a), std::fabs(b)});
}
}  // namespace

bool approx_eq(double a, double b, double tol) {
  return std::fabs(a - b) <= tol * scale(a, b);
}

bool approx_lt(double a, double b, double tol) {
  return (b - a) > tol * scale(a, b);
}

bool approx_le(double a, double b, double tol) { return !approx_lt(b, a, tol); }

bool approx_gt(double a, double b, double tol) { return approx_lt(b, a, tol); }

bool approx_ge(double a, double b, double tol) { return !approx_lt(a, b, tol); }

double clamp_nonneg(double x, double tol) {
  if (x < 0.0 && x >= -tol) return 0.0;
  return x;
}

}  // namespace treesched::util
