// The paper's time-indexed LP relaxation (Section 2, LP-Primal).
//
// Variables x_{v,j,t}: work done on job j at node v during unit slot t
// (t = 0 .. horizon-1, only slots with t >= floor(r_j) exist). Constraints:
//   (1) sum_j x_{v,j,t} <= s_v                      (per node and slot)
//   (2) sum_{v in L} sum_t x_{v,j,t}/p_{j,v} >= 1   (jobs finish on leaves)
//   (3) cumulative fraction on a router >= cumulative fraction on children
//       (dimension-corrected: each side divided by its own p; identical for
//        identical nodes, and the leaf side uses p_{j,v'})
// Objective: the paper's two lower-bound terms summed — fractional waiting
// on leaves and root children, plus the path-volume term on leaves.
//
// The optimum is a certified lower bound on (twice) the optimal fractional
// flow time; it is exactly the LP the paper's dual fitting argues against.
#pragma once

#include "treesched/core/instance.hpp"
#include "treesched/core/speed_profile.hpp"
#include "treesched/lp/simplex.hpp"

namespace treesched::lp {

/// Builds the LP. `horizon` must be large enough for all jobs to finish;
/// solve_flowtime_lp grows it automatically. Throws on non-integral release
/// times (the time-indexed LP assumes integer slots).
LpModel build_flowtime_lp(const Instance& instance, const SpeedProfile& speeds,
                          int horizon);

struct FlowtimeLpResult {
  LpStatus status = LpStatus::kIterLimit;
  double objective = 0.0;
  int horizon = 0;
};

/// Solves the LP, doubling the horizon until feasible (the LP is feasible
/// iff every job can fully fit by the horizon). Starts from a volume-based
/// estimate unless `horizon_hint` > 0.
FlowtimeLpResult solve_flowtime_lp(const Instance& instance,
                                   const SpeedProfile& speeds,
                                   int horizon_hint = 0);

/// The LP objective is a sum of two job-wise lower bounds on flow time, so
/// OPT_LP <= 2 * OPT_fractional. This helper converts the LP optimum into a
/// certified lower bound on the optimal fractional flow time.
inline double lp_lower_bound_on_opt(double lp_objective) {
  return lp_objective / 2.0;
}

}  // namespace treesched::lp
