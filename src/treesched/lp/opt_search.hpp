// Offline search for good schedules — an *upper* bound on OPT.
//
// The competitive-ratio experiments divide by certified lower bounds; this
// module quantifies how loose those denominators are by searching (random
// restarts + first-improvement local search over leaf assignments, with
// SRPT node scheduling as the evaluation engine) for the cheapest schedule
// it can find. The gap best_found / lower_bound bounds the certificates'
// slack: the true OPT lies inside [lower_bound, best_found].
#pragma once

#include <vector>

#include "treesched/core/instance.hpp"
#include "treesched/core/speed_profile.hpp"

namespace treesched::lp {

struct OptSearchResult {
  double best_flow = 0.0;               ///< cheapest total flow time found
  std::vector<NodeId> best_assignment;  ///< leaf per job id
  int evaluations = 0;                  ///< engine runs spent
};

struct OptSearchOptions {
  int restarts = 4;          ///< random restarts
  int max_passes = 6;        ///< local-search sweeps per restart
  std::uint64_t seed = 1;
};

/// Searches offline (adversary knowledge: the whole instance) at the given
/// speeds — pass speed-1 profiles to estimate the adversary's optimum.
OptSearchResult search_opt_upper_bound(const Instance& instance,
                                       const SpeedProfile& speeds,
                                       const OptSearchOptions& options = {});

}  // namespace treesched::lp
