#include "treesched/lp/flowtime_lp.hpp"

#include <cmath>
#include <map>

#include "treesched/algo/policies.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/util/assert.hpp"

namespace treesched::lp {

namespace {

/// Discretization of continuous model times onto the LP's unit grid: the
/// slot containing time t, and the first slot boundary at or after t.
/// Every continuous-time -> slot conversion in this TU goes through these
/// two so the rounding direction is named at the call site.
int slot_of(double t) { return static_cast<int>(std::floor(t)); }
int slot_ceil(double t) { return static_cast<int>(std::ceil(t)); }

/// Dense (node, job, slot) -> LP variable map; -1 where the variable does
/// not exist (slots before the job's release, or the root node).
class VarIndex {
 public:
  VarIndex(const Instance& inst, int horizon, LpModel& model)
      : horizon_(horizon),
        jobs_(inst.job_count()),
        nodes_(inst.tree().node_count()),
        idx_(uidx(jobs_) * uidx(nodes_) * uidx(horizon), -1) {
    const Tree& tree = inst.tree();
    for (const Job& job : inst.jobs()) {
      const int r = slot_of(job.release);
      for (NodeId v = 0; v < tree.node_count(); ++v) {
        if (tree.is_root(v)) continue;
        for (int t = r; t < horizon; ++t)
          at(v, job.id, t) = model.add_var(0.0);
      }
    }
  }

  int var(NodeId v, JobId j, int t) const {
    if (t < 0 || t >= horizon_) return -1;
    return idx_[offset(v, j, t)];
  }

 private:
  int& at(NodeId v, JobId j, int t) { return idx_[offset(v, j, t)]; }
  std::size_t offset(NodeId v, JobId j, int t) const {
    return (uidx(v) * uidx(jobs_) + uidx(j)) * uidx(horizon_) + uidx(t);
  }

  int horizon_;
  int jobs_;
  int nodes_;
  std::vector<int> idx_;
};

}  // namespace

LpModel build_flowtime_lp(const Instance& instance, const SpeedProfile& speeds,
                          int horizon) {
  TS_REQUIRE(horizon >= 1, "horizon must be positive");
  const Tree& tree = instance.tree();
  for (const Job& job : instance.jobs())
    TS_REQUIRE(std::floor(job.release) == job.release,
               "time-indexed LP requires integer release times");

  LpModel model;
  VarIndex vars(instance, horizon, model);

  // Objective. Fractional-waiting term on leaves and root children, plus
  // the path-volume term on leaves (eta_{j,v}/p_{j,v} per unit processed).
  auto is_root_child = [&](NodeId v) { return tree.parent(v) == tree.root(); };
  for (const Job& job : instance.jobs()) {
    const int r = slot_of(job.release);
    for (NodeId v = 0; v < tree.node_count(); ++v) {
      if (tree.is_root(v)) continue;
      const bool leaf = tree.is_leaf(v);
      if (!leaf && !is_root_child(v)) continue;
      const double p = instance.processing_time(job.id, v);
      for (int t = r; t < horizon; ++t) {
        const int x = vars.var(v, job.id, t);
        double c = static_cast<double>(t - r) / p;
        if (leaf)
          c += instance.path_processing_time(job.id, v) / p;
        model.objective[uidx(x)] += c;
      }
    }
  }

  // (1) capacity: one node processes at most s_v units per slot.
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    if (tree.is_root(v)) continue;
    for (int t = 0; t < horizon; ++t) {
      LpRow row;
      row.sense = RowSense::kLe;
      row.rhs = speeds.speed(v);
      for (const Job& job : instance.jobs()) {
        const int x = vars.var(v, job.id, t);
        if (x >= 0) row.coeffs.emplace_back(x, 1.0);
      }
      if (!row.coeffs.empty()) model.add_row(std::move(row));
    }
  }

  // (2) completion: each job fully processed across the leaves.
  for (const Job& job : instance.jobs()) {
    LpRow row;
    row.sense = RowSense::kGe;
    row.rhs = 1.0;
    for (const NodeId v : tree.leaves()) {
      const double p = instance.processing_time(job.id, v);
      for (int t = slot_of(job.release); t < horizon; ++t)
        row.coeffs.emplace_back(vars.var(v, job.id, t), 1.0 / p);
    }
    model.add_row(std::move(row));
  }

  // (3) precedence: cumulative fraction on a router dominates the cumulative
  // fraction forwarded to its children (each side in its own units).
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    if (tree.is_root(v) || tree.is_leaf(v)) continue;
    for (const Job& job : instance.jobs()) {
      const double pv = instance.processing_time(job.id, v);
      const int r = slot_of(job.release);
      for (int t = r; t < horizon; ++t) {
        LpRow row;
        row.sense = RowSense::kGe;
        row.rhs = 0.0;
        for (int tp = r; tp <= t; ++tp)
          row.coeffs.emplace_back(vars.var(v, job.id, tp), 1.0 / pv);
        for (const NodeId c : tree.children(v)) {
          const double pc = instance.processing_time(job.id, c);
          for (int tp = r; tp <= t; ++tp)
            row.coeffs.emplace_back(vars.var(c, job.id, tp), -1.0 / pc);
        }
        model.add_row(std::move(row));
      }
    }
  }

  return model;
}

FlowtimeLpResult solve_flowtime_lp(const Instance& instance,
                                   const SpeedProfile& speeds,
                                   int horizon_hint) {
  int horizon = horizon_hint;
  if (horizon <= 0) {
    // A simulated schedule under the same speeds is LP-feasible, so its
    // makespan (plus slack) guarantees LP feasibility.
    algo::PaperGreedyPolicy greedy(0.5);
    sim::Engine engine(instance, speeds);
    engine.run(greedy);
    horizon = slot_ceil(engine.metrics().makespan()) + 1;
  }
  FlowtimeLpResult result;
  for (int attempt = 0; attempt < 4; ++attempt) {
    const LpModel model = build_flowtime_lp(instance, speeds, horizon);
    const LpSolution sol = solve(model);
    result.status = sol.status;
    result.objective = sol.objective;
    result.horizon = horizon;
    if (sol.status != LpStatus::kInfeasible) return result;
    horizon *= 2;
  }
  return result;
}

}  // namespace treesched::lp
