#include "treesched/lp/adversary_search.hpp"

#include <algorithm>
#include <memory>

#include "treesched/algo/policies.hpp"
#include "treesched/lp/lower_bounds.hpp"
#include "treesched/lp/opt_search.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/util/assert.hpp"
#include "treesched/util/rng.hpp"

namespace treesched::lp {

namespace {

std::vector<Job> random_jobs(util::Rng& rng, const Tree& tree,
                             const AdversaryOptions& opt) {
  std::vector<Job> jobs;
  jobs.reserve(uidx(opt.jobs));
  for (int j = 0; j < opt.jobs; ++j) {
    Job job(static_cast<JobId>(j),
            rng.uniform_real(0.0, opt.release_span),
            rng.uniform_real(opt.size_min, opt.size_max));
    if (opt.unrelated) {
      job.leaf_sizes.reserve(tree.leaves().size());
      for (std::size_t l = 0; l < tree.leaves().size(); ++l)
        job.leaf_sizes.push_back(
            job.size * rng.uniform_real(1.0, opt.leaf_factor_max));
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void mutate(util::Rng& rng, const Tree& tree, const AdversaryOptions& opt,
            std::vector<Job>& jobs) {
  Job& job = jobs[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(jobs.size()) - 1))];
  switch (rng.uniform_int(0, opt.unrelated ? 2 : 1)) {
    case 0:
      job.release = rng.uniform_real(0.0, opt.release_span);
      break;
    case 1:
      job.size = rng.uniform_real(opt.size_min, opt.size_max);
      if (opt.unrelated) {
        // Keep leaf times consistent with the new base size.
        for (std::size_t l = 0; l < job.leaf_sizes.size(); ++l)
          job.leaf_sizes[l] = std::max(job.leaf_sizes[l], job.size);
      }
      break;
    default: {
      const std::size_t l = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(tree.leaves().size()) - 1));
      job.leaf_sizes[l] =
          job.size * rng.uniform_real(1.0, opt.leaf_factor_max);
      break;
    }
  }
}

double evaluate_ratio(const Tree& tree, const SpeedProfile& speeds,
                      double eps, const AdversaryOptions& opt,
                      const std::vector<Job>& jobs, double* alg_out,
                      double* opt_out, int* evals) {
  const EndpointModel model =
      opt.unrelated ? EndpointModel::kUnrelated : EndpointModel::kIdentical;
  Instance inst(tree, jobs, model);

  algo::PaperGreedyPolicy policy(eps);
  sim::Engine engine(inst, speeds);
  engine.run(policy);
  const double alg = engine.metrics().total_flow_time();
  ++*evals;

  // Denominator choice matters for the evidentiary value of a "find":
  // dividing by the certified LOWER bound can overstate the ratio when the
  // bound is loose, manufacturing fake counterexamples. Dividing by the
  // offline-search UPPER bound understates it — the conservative direction
  // for hardness evidence — so that is the default. (The search schedule is
  // feasible at speed 1, hence best_flow >= OPT >= LB.)
  double denom = combined_lower_bound(inst);
  if (opt.use_opt_search) {
    OptSearchOptions search;
    search.restarts = 2;
    search.max_passes = 2;
    search.seed = 7;
    const auto found = search_opt_upper_bound(
        inst, SpeedProfile::uniform(tree, 1.0), search);
    *evals += found.evaluations;
    denom = std::max(denom, found.best_flow);
  }
  denom = std::max(denom, 1e-9);
  *alg_out = alg;
  *opt_out = denom;
  return alg / denom;
}

}  // namespace

AdversaryResult search_adversarial_instance(const Tree& tree,
                                            const SpeedProfile& speeds,
                                            double eps,
                                            const AdversaryOptions& options) {
  TS_REQUIRE(options.jobs >= 1 && options.iterations >= 1,
             "search needs jobs and iterations");
  util::Rng rng(options.seed);
  AdversaryResult result;

  std::vector<Job> current = random_jobs(rng, tree, options);
  double current_ratio =
      evaluate_ratio(tree, speeds, eps, options, current, &result.alg_flow,
                     &result.opt_estimate, &result.evaluations);
  result.best_ratio = current_ratio;
  result.best_jobs = current;

  for (int it = 0; it < options.iterations; ++it) {
    std::vector<Job> candidate = current;
    mutate(rng, tree, options, candidate);
    // Occasionally compound mutations to escape plateaus.
    if (rng.bernoulli(0.3)) mutate(rng, tree, options, candidate);
    double alg = 0.0, opt_est = 0.0;
    const double ratio = evaluate_ratio(tree, speeds, eps, options, candidate,
                                        &alg, &opt_est, &result.evaluations);
    if (ratio > current_ratio) {
      current = std::move(candidate);
      current_ratio = ratio;
      if (ratio > result.best_ratio) {
        result.best_ratio = ratio;
        result.best_jobs = current;
        result.alg_flow = alg;
        result.opt_estimate = opt_est;
      }
    }
  }
  return result;
}

}  // namespace treesched::lp
