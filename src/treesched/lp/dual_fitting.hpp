// Numeric verification of the paper's dual-fitting argument on broomsticks
// (Sections 3.5 and 3.6).
//
// Runs the paper's algorithm (SJF everywhere + greedy assignment) on a
// broomstick with the paper's speed profile, constructs the dual variables
// exactly as the proofs do —
//   beta_j      = the assignment cost of the chosen leaf (Lemma 4 bound),
//   gamma_{v,j,infinity} = F(j, v),
//   alpha_{v,t} = remaining leaf fractions under root children (and on
//                 leaves in the unrelated case), 0 elsewhere —
// scales them by eps^2/10 (identical) or eps^2/20 (unrelated), and checks
// the dual constraints (4), (5), (6) at every breakpoint of the piecewise-
// linear alpha trajectories (arrivals and completions), where the residuals
// attain their maxima. Also reports the dual objective as a competitiveness
// certificate: by weak duality, ALG_frac / dual_objective upper-bounds the
// algorithm's fractional competitive ratio on this instance.
#pragma once

#include <string>

#include "treesched/core/instance.hpp"

namespace treesched::lp {

struct DualFitReport {
  double alg_fractional = 0.0;   ///< the algorithm's fractional flow time
  double alpha_integral = 0.0;   ///< sum over v,t of alpha (trapezoid exact)
  double beta_sum = 0.0;         ///< sum of unscaled beta_j
  double dual_objective = 0.0;   ///< scaled: (sum beta - alpha integral) * eps^2/K
  double certificate_ratio = 0.0;///< ALG_frac / dual_objective (when > 0)
  double max_residual_c4 = -1e300;  ///< constraint (4); feasible iff <= 0
  double max_residual_c5 = -1e300;  ///< constraint (5)
  double max_residual_c6 = -1e300;  ///< constraint (6)
  long checks = 0;

  bool feasible(double tol = 1e-7) const {
    return max_residual_c4 <= tol && max_residual_c5 <= tol &&
           max_residual_c6 <= tol;
  }
  std::string summary() const;
};

/// Identical-endpoint dual fitting (Section 3.5; scaling 10/eps^2).
/// `instance` must live on a broomstick tree with identical endpoints.
DualFitReport dual_fit_identical(const Instance& instance, double eps);

/// Unrelated-endpoint dual fitting (Section 3.6; scaling 20/eps^2).
DualFitReport dual_fit_unrelated(const Instance& instance, double eps);

}  // namespace treesched::lp
