#include "treesched/lp/opt_search.hpp"

#include <limits>

#include "treesched/sim/engine.hpp"
#include "treesched/util/assert.hpp"
#include "treesched/util/rng.hpp"

namespace treesched::lp {

namespace {

double evaluate(const Instance& inst, const SpeedProfile& speeds,
                const std::vector<NodeId>& assignment) {
  // SRPT per node: the strongest single-node discipline we have for total
  // flow; the search only needs a consistent evaluator, not optimality.
  sim::EngineConfig cfg;
  cfg.node_policy = sim::NodePolicy::kSrpt;
  sim::Engine engine(inst, speeds, cfg);
  engine.run_with_assignment(assignment);
  return engine.metrics().total_flow_time();
}

}  // namespace

OptSearchResult search_opt_upper_bound(const Instance& instance,
                                       const SpeedProfile& speeds,
                                       const OptSearchOptions& options) {
  TS_REQUIRE(options.restarts >= 1 && options.max_passes >= 1,
             "search needs at least one restart and pass");
  const auto& leaves = instance.tree().leaves();
  const JobId n = instance.job_count();
  util::Rng rng(options.seed);

  OptSearchResult result;
  result.best_flow = std::numeric_limits<double>::infinity();

  for (int restart = 0; restart < options.restarts; ++restart) {
    std::vector<NodeId> assignment(uidx(n));
    if (restart == 0) {
      // Seed one restart with the cheapest-path assignment; the rest random.
      for (JobId j = 0; j < n; ++j) {
        double best = std::numeric_limits<double>::infinity();
        for (const NodeId v : leaves) {
          const double c = instance.path_processing_time(j, v);
          if (c < best) {
            best = c;
            assignment[uidx(j)] = v;
          }
        }
      }
    } else {
      for (JobId j = 0; j < n; ++j)
        assignment[uidx(j)] = leaves[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(leaves.size()) - 1))];
    }

    double current = evaluate(instance, speeds, assignment);
    ++result.evaluations;

    // First-improvement sweeps: move one job to another leaf.
    for (int pass = 0; pass < options.max_passes; ++pass) {
      bool improved = false;
      for (JobId j = 0; j < n; ++j) {
        const NodeId original = assignment[uidx(j)];
        for (const NodeId v : leaves) {
          if (v == original) continue;
          assignment[uidx(j)] = v;
          const double candidate = evaluate(instance, speeds, assignment);
          ++result.evaluations;
          if (candidate < current - 1e-9) {
            current = candidate;
            improved = true;
            break;  // keep the move
          }
          assignment[uidx(j)] = original;
        }
      }
      if (!improved) break;
    }

    if (current < result.best_flow) {
      result.best_flow = current;
      result.best_assignment = assignment;
    }
  }
  return result;
}

}  // namespace treesched::lp
