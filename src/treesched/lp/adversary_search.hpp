// Adversarial instance search — a tool for the paper's open question.
//
// The conclusion asks whether the unrelated-endpoint speed requirement
// (2+eps) can be lowered to (1+eps); the hurdle is "processing times of
// jobs changing once they arrive at the machine". This module hunts for
// bad instances by local search over job parameters: it mutates releases,
// sizes and unrelated leaf times of a small instance to maximize
//
//     ratio(I) = ALG(I, speed profile) / max(LB(I), OPT_search(I))
//
// where ALG is the paper's algorithm at the profile under test and the
// denominator is the tightest OPT estimate available (certified LB, and
// optionally offline assignment search). Finding ratios that grow as the
// search budget rises is evidence toward a lower bound; flat ratios are
// evidence the (1+eps) regime may be safe.
#pragma once

#include "treesched/core/instance.hpp"
#include "treesched/core/speed_profile.hpp"

namespace treesched::lp {

struct AdversaryOptions {
  int jobs = 8;              ///< instance size (kept small on purpose)
  int iterations = 400;      ///< mutation steps
  double release_span = 20;  ///< releases mutate within [0, span]
  double size_min = 1.0;
  double size_max = 8.0;
  double leaf_factor_max = 8.0;  ///< unrelated leaf times in size*[1, this]
  bool unrelated = true;
  bool use_opt_search = true;    ///< tighten the denominator (slower)
  std::uint64_t seed = 1;
};

struct AdversaryResult {
  double best_ratio = 0.0;
  std::vector<Job> best_jobs;     ///< the instance achieving it
  double alg_flow = 0.0;
  double opt_estimate = 0.0;
  int evaluations = 0;
};

/// Runs the hunt on the given tree with the algorithm at `speeds`.
/// The OPT estimate always runs at speed 1 (the adversary's machine).
AdversaryResult search_adversarial_instance(const Tree& tree,
                                            const SpeedProfile& speeds,
                                            double eps,
                                            const AdversaryOptions& options);

}  // namespace treesched::lp
