// Certified lower bounds on the optimal total flow time, used as the OPT
// proxy in competitive-ratio experiments on instances too large for the LP.
//
// Validity arguments (adversary at speed 1 everywhere):
//  * path volume  — job j's flow time is at least min_v P_{j,v}, the least
//    total processing any leaf assignment needs (Section 2).
//  * root cut     — every job is fully processed by exactly one root child.
//    The root-child layer is |R| unit-speed machines; a single machine of
//    speed |R| with processor sharing can emulate any such layer schedule,
//    and preemptive SRPT is flow-optimal on one machine. Hence total flow
//    >= SRPT flow on one speed-|R| machine with sizes p_j.
//  * leaf cut     — symmetric cut at the machines with sizes min_v p_{j,v}.
// The returned combined bound is the max of the three.
#pragma once

#include <vector>

#include "treesched/core/instance.hpp"

namespace treesched::lp {

/// sum_j min_{v in L} P_{j,v}.
double lb_path_volume(const Instance& instance);

/// SRPT total flow time on a single machine of speed `speed` for jobs with
/// the given (release, size) pairs. Exposed for reuse and direct testing.
double srpt_single_machine_flow(std::vector<std::pair<Time, double>> jobs,
                                double speed);

/// Root-cut bound: SRPT on one machine of speed |R| with sizes p_j.
double lb_root_cut(const Instance& instance);

/// Leaf-cut bound: SRPT on one machine of speed |L| with sizes
/// min_v p_{j,v}.
double lb_leaf_cut(const Instance& instance);

/// max of the three bounds above.
double combined_lower_bound(const Instance& instance);

}  // namespace treesched::lp
