// Dense two-phase primal simplex, written from scratch.
//
// Solves   min c'x   s.t.  rows of (a_i' x  {<=,>=,=}  b_i),  x >= 0.
//
// Scope: the exact LP relaxations of this repo (hundreds of rows/columns).
// Dense tableau with a largest-reduced-cost pivot rule and an automatic
// switch to Bland's rule for anti-cycling after an iteration threshold.
#pragma once

#include <utility>
#include <vector>

namespace treesched::lp {

enum class RowSense { kLe, kGe, kEq };

struct LpRow {
  std::vector<std::pair<int, double>> coeffs;  ///< (variable, coefficient)
  RowSense sense = RowSense::kLe;
  double rhs = 0.0;
};

/// LP in minimization form with non-negative variables.
struct LpModel {
  int num_vars = 0;
  std::vector<double> objective;  ///< size num_vars
  std::vector<LpRow> rows;

  /// Adds a row; returns its index.
  int add_row(LpRow row);
  /// Registers a new variable with the given objective coefficient.
  int add_var(double cost);
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

struct LpSolution {
  LpStatus status = LpStatus::kIterLimit;
  double objective = 0.0;
  std::vector<double> x;

  bool optimal() const { return status == LpStatus::kOptimal; }
};

/// Solves the model. `max_iters` bounds total pivots across both phases.
LpSolution solve(const LpModel& model, int max_iters = 200000);

}  // namespace treesched::lp
