#include "treesched/lp/lower_bounds.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "treesched/util/assert.hpp"

namespace treesched::lp {

double lb_path_volume(const Instance& instance) {
  double total = 0.0;
  for (const Job& job : instance.jobs()) {
    double best = std::numeric_limits<double>::infinity();
    for (const NodeId v : instance.tree().leaves())
      best = std::min(best, instance.path_processing_time(job.id, v));
    total += best;
  }
  return total;
}

double srpt_single_machine_flow(std::vector<std::pair<Time, double>> jobs,
                                double speed) {
  TS_REQUIRE(speed > 0.0, "machine speed must be positive");
  std::sort(jobs.begin(), jobs.end());
  // Min-heap of remaining sizes among released, unfinished jobs; each entry
  // carries its release time for the flow-time sum.
  using Entry = std::pair<double, Time>;  // (remaining, release)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> active;
  double total_flow = 0.0;
  Time now = 0.0;
  std::size_t next = 0;

  while (next < jobs.size() || !active.empty()) {
    if (active.empty()) {
      now = std::max(now, jobs[next].first);
      active.emplace(jobs[next].second, jobs[next].first);
      ++next;
      continue;
    }
    auto [rem, rel] = active.top();
    const Time finish = now + rem / speed;
    if (next < jobs.size() && jobs[next].first < finish) {
      // Work until the arrival, then reconsider (SRPT preempts).
      const Time arrive = jobs[next].first;
      active.pop();
      active.emplace(rem - (arrive - now) * speed, rel);
      active.emplace(jobs[next].second, jobs[next].first);
      ++next;
      now = arrive;
    } else {
      active.pop();
      now = finish;
      total_flow += now - rel;
    }
  }
  return total_flow;
}

double lb_root_cut(const Instance& instance) {
  std::vector<std::pair<Time, double>> jobs;
  jobs.reserve(uidx(instance.job_count()));
  for (const Job& job : instance.jobs())
    jobs.emplace_back(job.release, job.size);
  const double speed =
      static_cast<double>(instance.tree().root_children().size());
  return srpt_single_machine_flow(std::move(jobs), speed);
}

double lb_leaf_cut(const Instance& instance) {
  std::vector<std::pair<Time, double>> jobs;
  jobs.reserve(uidx(instance.job_count()));
  for (const Job& job : instance.jobs()) {
    double p = job.size;
    if (instance.model() == EndpointModel::kUnrelated) {
      p = std::numeric_limits<double>::infinity();
      for (const NodeId v : instance.tree().leaves())
        p = std::min(p, instance.processing_time(job.id, v));
    }
    jobs.emplace_back(job.release, p);
  }
  const double speed = static_cast<double>(instance.tree().leaves().size());
  return srpt_single_machine_flow(std::move(jobs), speed);
}

double combined_lower_bound(const Instance& instance) {
  return std::max({lb_path_volume(instance), lb_root_cut(instance),
                   lb_leaf_cut(instance)});
}

}  // namespace treesched::lp
