#include "treesched/lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "treesched/core/types.hpp"
#include "treesched/util/assert.hpp"

namespace treesched::lp {

namespace {
constexpr double kPivotTol = 1e-9;
constexpr double kFeasTol = 1e-7;
}  // namespace

int LpModel::add_row(LpRow row) {
  rows.push_back(std::move(row));
  return static_cast<int>(rows.size()) - 1;
}

int LpModel::add_var(double cost) {
  objective.push_back(cost);
  return num_vars++;
}

namespace {

/// Dense tableau: m constraint rows + 1 objective row; columns are all
/// variables (structural + slack/surplus + artificial) + rhs.
class Tableau {
 public:
  Tableau(int rows, int cols)
      : rows_(rows), cols_(cols), a_(uidx(rows) * uidx(cols), 0.0) {}

  double& at(int r, int c) { return a_[uidx(r) * uidx(cols_) + uidx(c)]; }
  double at(int r, int c) const {
    return a_[uidx(r) * uidx(cols_) + uidx(c)];
  }

  /// Gauss-Jordan pivot on (r, c), including the objective row.
  void pivot(int r, int c) {
    const double piv = at(r, c);
    TS_CHECK(std::fabs(piv) > kPivotTol, "pivot on a numerically zero entry");
    double* prow = &a_[uidx(r) * uidx(cols_)];
    const double inv = 1.0 / piv;
    for (int j = 0; j < cols_; ++j) prow[j] *= inv;
    for (int i = 0; i < rows_; ++i) {
      if (i == r) continue;
      double* row = &a_[uidx(i) * uidx(cols_)];
      const double factor = row[c];
      if (factor == 0.0) continue;
      for (int j = 0; j < cols_; ++j) row[j] -= factor * prow[j];
      row[c] = 0.0;  // kill residual round-off in the pivot column
    }
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

 private:
  int rows_, cols_;
  std::vector<double> a_;
};

struct Prepared {
  Tableau tab;
  std::vector<int> basis;      ///< basic variable per constraint row
  int n_total = 0;             ///< columns excluding rhs
  int first_artificial = 0;    ///< artificial columns are [first_artificial, n_total)
};

/// Runs simplex iterations on the prepared tableau, minimizing whatever the
/// objective row currently encodes. Columns >= `blocked_from` never enter.
LpStatus iterate(Prepared& p, int blocked_from, int& iters_left) {
  Tableau& t = p.tab;
  const int m = t.rows() - 1;  // constraint rows
  const int obj = m;           // objective row index
  const int rhs = p.n_total;   // rhs column
  bool bland = false;
  int since_progress = 0;

  while (true) {
    if (iters_left-- <= 0) return LpStatus::kIterLimit;
    // Entering column: reduced cost < 0.
    int enter = -1;
    if (!bland) {
      double best = -kPivotTol;
      for (int j = 0; j < blocked_from; ++j) {
        const double rc = t.at(obj, j);
        if (rc < best) {
          best = rc;
          enter = j;
        }
      }
    } else {
      for (int j = 0; j < blocked_from; ++j) {
        if (t.at(obj, j) < -kPivotTol) {
          enter = j;
          break;
        }
      }
    }
    if (enter < 0) return LpStatus::kOptimal;

    // Ratio test: leaving row (ties by smallest basis index — Bland-safe).
    int leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < m; ++i) {
      const double aij = t.at(i, enter);
      if (aij > kPivotTol) {
        const double ratio = t.at(i, rhs) / aij;
        if (ratio < best_ratio - 1e-12 ||
            (std::fabs(ratio - best_ratio) <= 1e-12 &&
             (leave < 0 || p.basis[uidx(i)] < p.basis[uidx(leave)]))) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave < 0) return LpStatus::kUnbounded;

    t.pivot(leave, enter);
    p.basis[uidx(leave)] = enter;

    // Degeneracy watchdog: long runs without objective progress switch the
    // pivot rule to Bland's, which terminates finitely.
    if (best_ratio <= 1e-12) {
      if (++since_progress > 2 * (m + p.n_total)) bland = true;
    } else {
      since_progress = 0;
    }
  }
}

}  // namespace

LpSolution solve(const LpModel& model, int max_iters) {
  TS_REQUIRE(model.objective.size() ==
                 static_cast<std::size_t>(model.num_vars),
             "objective size mismatch");
  const int n = model.num_vars;
  const int m = static_cast<int>(model.rows.size());

  // Normalize rows to rhs >= 0 and count extra columns.
  std::vector<double> rhs(uidx(m));
  std::vector<RowSense> sense(uidx(m));
  std::vector<double> sign(uidx(m), 1.0);
  int n_slack = 0, n_artificial = 0;
  for (int i = 0; i < m; ++i) {
    rhs[uidx(i)] = model.rows[uidx(i)].rhs;
    sense[uidx(i)] = model.rows[uidx(i)].sense;
    if (rhs[uidx(i)] < 0.0) {
      sign[uidx(i)] = -1.0;
      rhs[uidx(i)] = -rhs[uidx(i)];
      if (sense[uidx(i)] == RowSense::kLe) sense[uidx(i)] = RowSense::kGe;
      else if (sense[uidx(i)] == RowSense::kGe) sense[uidx(i)] = RowSense::kLe;
    }
    if (sense[uidx(i)] != RowSense::kEq) ++n_slack;
    if (sense[uidx(i)] != RowSense::kLe) ++n_artificial;
  }

  const int n_total = n + n_slack + n_artificial;
  Prepared p{Tableau(m + 1, n_total + 1), std::vector<int>(uidx(m), -1), n_total,
             n + n_slack};
  Tableau& t = p.tab;

  int slack_col = n;
  int art_col = n + n_slack;
  for (int i = 0; i < m; ++i) {
    for (const auto& [var, coeff] : model.rows[uidx(i)].coeffs) {
      TS_REQUIRE(var >= 0 && var < n, "row references unknown variable");
      t.at(i, var) += sign[uidx(i)] * coeff;
    }
    t.at(i, n_total) = rhs[uidx(i)];
    switch (sense[uidx(i)]) {
      case RowSense::kLe:
        t.at(i, slack_col) = 1.0;
        p.basis[uidx(i)] = slack_col++;
        break;
      case RowSense::kGe:
        t.at(i, slack_col) = -1.0;
        ++slack_col;
        t.at(i, art_col) = 1.0;
        p.basis[uidx(i)] = art_col++;
        break;
      case RowSense::kEq:
        t.at(i, art_col) = 1.0;
        p.basis[uidx(i)] = art_col++;
        break;
    }
  }

  int iters_left = max_iters;
  LpSolution sol;

  // --- Phase 1: minimize the sum of artificials ---
  if (n_artificial > 0) {
    // Objective row: reduced costs of "sum of artificials" given the
    // artificial basis: row_obj = -sum of rows whose basic var is artificial.
    for (int i = 0; i < m; ++i) {
      if (p.basis[uidx(i)] >= p.first_artificial) {
        for (int j = 0; j <= n_total; ++j) t.at(m, j) -= t.at(i, j);
        t.at(m, p.basis[uidx(i)]) = 0.0;
      }
    }
    const LpStatus s1 = iterate(p, n_total, iters_left);
    if (s1 == LpStatus::kIterLimit) {
      sol.status = LpStatus::kIterLimit;
      return sol;
    }
    TS_CHECK(s1 != LpStatus::kUnbounded, "phase 1 cannot be unbounded");
    const double phase1 = -t.at(m, n_total);
    if (phase1 > kFeasTol) {
      sol.status = LpStatus::kInfeasible;
      return sol;
    }
    // Drive any residual basic artificials out (or recognize their row as
    // redundant and leave them at value 0 while blocking re-entry).
    for (int i = 0; i < m; ++i) {
      if (p.basis[uidx(i)] < p.first_artificial) continue;
      int col = -1;
      for (int j = 0; j < p.first_artificial; ++j) {
        if (std::fabs(t.at(i, j)) > 1e-7) {
          col = j;
          break;
        }
      }
      if (col >= 0) {
        t.pivot(i, col);
        p.basis[uidx(i)] = col;
      }
    }
  }

  // --- Phase 2: real objective ---
  for (int j = 0; j <= n_total; ++j) t.at(m, j) = 0.0;
  for (int j = 0; j < n; ++j) t.at(m, j) = model.objective[uidx(j)];
  for (int i = 0; i < m; ++i) {
    const int b = p.basis[uidx(i)];
    if (b < n && model.objective[uidx(b)] != 0.0) {
      const double c = model.objective[uidx(b)];
      for (int j = 0; j <= n_total; ++j) t.at(m, j) -= c * t.at(i, j);
      t.at(m, b) = 0.0;
    }
  }
  const LpStatus s2 = iterate(p, p.first_artificial, iters_left);
  sol.status = s2;
  if (s2 != LpStatus::kOptimal) return sol;

  sol.x.assign(uidx(n), 0.0);
  for (int i = 0; i < m; ++i)
    if (p.basis[uidx(i)] < n) sol.x[uidx(p.basis[uidx(i)])] = t.at(i, n_total);
  sol.objective = 0.0;
  for (int j = 0; j < n; ++j) sol.objective += model.objective[uidx(j)] * sol.x[uidx(j)];
  return sol;
}

}  // namespace treesched::lp
