#include "treesched/lp/dual_fitting.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "treesched/algo/broomstick.hpp"
#include "treesched/algo/policies.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/util/assert.hpp"

namespace treesched::lp {

namespace {

/// alpha trajectory snapshot: the piecewise-linear alpha values per root
/// child (and per leaf in the unrelated case) at one breakpoint.
struct Snapshot {
  Time t = 0.0;
  std::vector<double> alpha_rc;
  std::vector<double> alpha_leaf;  ///< empty in the identical case
};

class AlphaRecorder : public sim::EngineObserver {
 public:
  AlphaRecorder(bool record_leaves) : record_leaves_(record_leaves) {}

  void on_event(const sim::Engine& engine, Time t) override {
    take(engine, t);
  }

  void take(const sim::Engine& engine, Time t) {
    Snapshot s;
    s.t = t;
    const Tree& tree = engine.tree();
    s.alpha_rc.reserve(tree.root_children().size());
    for (const NodeId rc : tree.root_children())
      s.alpha_rc.push_back(engine.alpha_root_child(rc));
    if (record_leaves_) {
      s.alpha_leaf.reserve(tree.leaves().size());
      for (const NodeId leaf : tree.leaves())
        s.alpha_leaf.push_back(engine.alpha_leaf(leaf));
    }
    snapshots_.push_back(std::move(s));
  }

  const std::vector<Snapshot>& snapshots() const { return snapshots_; }

 private:
  bool record_leaves_;
  std::vector<Snapshot> snapshots_;
};

struct JobDuals {
  double beta = 0.0;
  std::vector<double> F_rc;  ///< F(j, v) per root child index
  /// Index of the job's post-admit snapshot. Snapshots before it were taken
  /// with the job absent from Q; they are valid limit points for *earlier*
  /// jobs' constraints but not for this job's own (the paper's Q_v(r_j)
  /// includes the arriving job, so alpha at t = r_j must count it).
  std::size_t first_valid_snapshot = 0;
};

DualFitReport dual_fit(const Instance& instance, double eps, bool unrelated) {
  TS_REQUIRE(eps > 0.0, "eps must be positive");
  TS_REQUIRE(algo::is_broomstick(instance.tree()),
             "dual fitting is defined on broomsticks");
  TS_REQUIRE((instance.model() == EndpointModel::kUnrelated) == unrelated,
             "instance endpoint model does not match the dual fit variant");

  const Tree& tree = instance.tree();
  const SpeedProfile speeds =
      unrelated ? SpeedProfile::paper_unrelated(tree, eps)
                : SpeedProfile::paper_identical(tree, eps);
  const double scale = eps * eps / (unrelated ? 20.0 : 10.0);

  algo::PaperGreedyPolicy greedy(eps);
  sim::Engine engine(instance, speeds);
  AlphaRecorder recorder(unrelated);
  engine.set_observer(&recorder);

  // Representative leaf per root child, for evaluating F(j, rc).
  std::vector<NodeId> rc_leaf;
  for (const NodeId rc : tree.root_children())
    rc_leaf.push_back(tree.leaves_under(rc).front());

  std::vector<JobDuals> duals(uidx(instance.job_count()));
  for (const Job& job : instance.jobs()) {
    engine.advance_to(job.release);
    recorder.take(engine, job.release);  // pre-admit breakpoint
    JobDuals& d = duals[uidx(job.id)];
    d.F_rc.reserve(rc_leaf.size());
    for (const NodeId leaf : rc_leaf)
      d.F_rc.push_back(algo::PaperGreedyPolicy::F(engine, job, leaf));
    const NodeId chosen = greedy.assign(engine, job);
    d.beta = greedy.assignment_cost(engine, job, chosen);
    // gamma_{v,j,infinity} = F(j,v) with the "also includes J_j" self-term
    // only in the subtree the job is actually assigned to: Lemma 6's proof
    // splits alpha over S_{v',j} subsets of Q_{v'}, and j belongs to Q only
    // on its assigned path. Keeping the self-term on the other root
    // children makes constraint (5) infeasible by exactly eps^2/10 at
    // t = r_j (measured), so the extended abstract's uniform F is read as
    // the Q-based definition here. Constraint (4) absorbs the p_j
    // difference in its 0.6*d_v slack.
    const NodeId chosen_rc = tree.root_child_of(chosen);
    for (std::size_t r = 0; r < tree.root_children().size(); ++r)
      if (tree.root_children()[r] != chosen_rc) d.F_rc[r] -= job.size;
    engine.admit(job.id, chosen);
    d.first_valid_snapshot = recorder.snapshots().size();
    recorder.take(engine, job.release);  // post-admit breakpoint
  }
  engine.run_to_completion();

  DualFitReport rep;
  rep.alg_fractional = engine.metrics().total_fractional_flow_time();

  const auto& snaps = recorder.snapshots();

  // Integral of sum alpha over time (trapezoid; alpha is linear between
  // consecutive breakpoints). In the unrelated case the leaf alphas are a
  // second copy, making the integral twice the fractional cost.
  for (std::size_t k = 1; k < snaps.size(); ++k) {
    const Snapshot& a = snaps[k - 1];
    const Snapshot& b = snaps[k];
    const double dt = b.t - a.t;
    if (dt <= 0.0) continue;
    double lo = 0.0, hi = 0.0;
    for (std::size_t i = 0; i < a.alpha_rc.size(); ++i) {
      lo += a.alpha_rc[i];
      hi += b.alpha_rc[i];
    }
    for (std::size_t i = 0; i < a.alpha_leaf.size(); ++i) {
      lo += a.alpha_leaf[i];
      hi += b.alpha_leaf[i];
    }
    rep.alpha_integral += dt * (lo + hi) / 2.0;
  }

  for (const auto& d : duals) rep.beta_sum += d.beta;
  rep.dual_objective = scale * (rep.beta_sum - rep.alpha_integral);
  if (rep.dual_objective > 0.0)
    rep.certificate_ratio = rep.alg_fractional / rep.dual_objective;

  // ---- Constraint residuals ----
  const auto& rcs = tree.root_children();
  for (const Job& job : instance.jobs()) {
    const JobDuals& d = duals[uidx(job.id)];
    const double p_j = job.size;

    // (5): root children, at every breakpoint t >= r_j (starting at the
    // job's post-admit snapshot — see JobDuals::first_valid_snapshot).
    for (std::size_t si = d.first_valid_snapshot; si < snaps.size(); ++si) {
      const Snapshot& s = snaps[si];
      if (s.t < job.release - 1e-9) continue;
      for (std::size_t r = 0; r < rcs.size(); ++r) {
        const double resid = scale * (-s.alpha_rc[r] + d.F_rc[r] / p_j) -
                             (s.t - job.release) / p_j;
        rep.max_residual_c5 = std::max(rep.max_residual_c5, resid);
        ++rep.checks;
      }
    }

    // (4): leaves. Identical case: alpha_leaf = 0 and the residual only
    // decreases with t, so t = r_j is the worst point. Unrelated case:
    // alpha_leaf is live, so scan breakpoints like (5).
    for (const NodeId v : tree.leaves()) {
      const std::size_t rc_idx = static_cast<std::size_t>(
          std::find(rcs.begin(), rcs.end(), tree.root_child_of(v)) -
          rcs.begin());
      const double p_jv = instance.processing_time(job.id, v);
      const double eta = instance.path_processing_time(job.id, v);
      const double gamma_parent = d.F_rc[rc_idx];
      if (!unrelated) {
        const double resid =
            scale * (d.beta - gamma_parent) / p_jv - eta / p_jv;
        rep.max_residual_c4 = std::max(rep.max_residual_c4, resid);
        ++rep.checks;
      } else {
        const int leaf_idx = tree.leaf_index(v);
        for (std::size_t si = d.first_valid_snapshot; si < snaps.size();
             ++si) {
          const Snapshot& s = snaps[si];
          if (s.t < job.release - 1e-9) continue;
          const double resid =
              scale * (-s.alpha_leaf[uidx(leaf_idx)] +
                       (d.beta - gamma_parent) / p_jv) -
              (s.t - job.release) / p_jv - eta / p_jv;
          rep.max_residual_c4 = std::max(rep.max_residual_c4, resid);
          ++rep.checks;
        }
      }
    }

    // (6): interior nodes. gamma_{v} and gamma_{rho(v)} both equal
    // F(j, R(v)) by construction and alpha is zero there, so the residual
    // is identically zero; record one representative check per job.
    rep.max_residual_c6 = std::max(rep.max_residual_c6, 0.0);
    ++rep.checks;
  }

  return rep;
}

}  // namespace

std::string DualFitReport::summary() const {
  std::ostringstream os;
  os << "dual fit: ALG_frac=" << alg_fractional
     << " beta_sum=" << beta_sum << " alpha_int=" << alpha_integral
     << " dual_obj=" << dual_objective << " cert_ratio=" << certificate_ratio
     << " residuals(c4,c5,c6)=(" << max_residual_c4 << "," << max_residual_c5
     << "," << max_residual_c6 << ") checks=" << checks
     << (feasible() ? " FEASIBLE" : " INFEASIBLE");
  return os.str();
}

DualFitReport dual_fit_identical(const Instance& instance, double eps) {
  return dual_fit(instance, eps, false);
}

DualFitReport dual_fit_unrelated(const Instance& instance, double eps) {
  return dual_fit(instance, eps, true);
}

}  // namespace treesched::lp
