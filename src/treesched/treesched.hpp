// Umbrella header: the full public API of the treesched library.
//
// Quickstart:
//   #include "treesched/treesched.hpp"
//   using namespace treesched;
//   Tree tree = builders::star_of_paths(2, 3);
//   util::Rng rng(42);
//   workload::WorkloadSpec spec;             // Poisson arrivals, load 0.7
//   Instance inst = workload::generate(rng, tree, spec);
//   algo::PaperGreedyPolicy policy(/*eps=*/0.5);
//   sim::Engine engine(inst, SpeedProfile::uniform(tree, 1.5));
//   engine.run(policy);
//   std::cout << engine.metrics().total_flow_time() << '\n';
#pragma once

#include "treesched/core/instance.hpp"
#include "treesched/core/job.hpp"
#include "treesched/core/speed_profile.hpp"
#include "treesched/core/tree.hpp"
#include "treesched/core/tree_builders.hpp"
#include "treesched/core/types.hpp"

#include "treesched/fault/model.hpp"
#include "treesched/fault/plan.hpp"

#include "treesched/sim/audit.hpp"
#include "treesched/sim/engine.hpp"
#include "treesched/sim/gantt.hpp"
#include "treesched/sim/metrics.hpp"
#include "treesched/sim/priority.hpp"
#include "treesched/sim/recorder.hpp"
#include "treesched/sim/reference.hpp"
#include "treesched/sim/run_log.hpp"
#include "treesched/sim/sampler.hpp"
#include "treesched/sim/validator.hpp"

#include "treesched/algo/anycast.hpp"
#include "treesched/algo/broomstick.hpp"
#include "treesched/algo/general_tree.hpp"
#include "treesched/algo/lemma_monitors.hpp"
#include "treesched/algo/policies.hpp"
#include "treesched/algo/potential.hpp"
#include "treesched/algo/psw_model.hpp"
#include "treesched/algo/runner.hpp"

#include "treesched/overload/config.hpp"
#include "treesched/overload/controller.hpp"
#include "treesched/overload/estimator.hpp"

#include "treesched/lp/dual_fitting.hpp"
#include "treesched/lp/flowtime_lp.hpp"
#include "treesched/lp/lower_bounds.hpp"
#include "treesched/lp/opt_search.hpp"
#include "treesched/lp/simplex.hpp"

#include "treesched/workload/adversarial.hpp"
#include "treesched/workload/arrivals.hpp"
#include "treesched/workload/generator.hpp"
#include "treesched/workload/sizes.hpp"
#include "treesched/workload/trace_io.hpp"
#include "treesched/workload/unrelated.hpp"

#include "treesched/exec/parallel.hpp"
#include "treesched/exec/sweep.hpp"
#include "treesched/exec/thread_pool.hpp"

#include "treesched/experiments/harness.hpp"

#include "treesched/stats/bootstrap.hpp"
#include "treesched/stats/histogram.hpp"
#include "treesched/stats/summary.hpp"

#include "treesched/util/cli.hpp"
#include "treesched/util/class_rounding.hpp"
#include "treesched/util/csv.hpp"
#include "treesched/util/fs.hpp"
#include "treesched/util/log.hpp"
#include "treesched/util/rng.hpp"
#include "treesched/util/string_util.hpp"
#include "treesched/util/table.hpp"
