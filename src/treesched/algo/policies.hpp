// Leaf-assignment policies: the paper's greedy rule (Section 3.4) and the
// baseline heuristics it is compared against.
//
// All policies are immediate-dispatch and online: they see only the engine
// state at the arriving job's release time.
#pragma once

#include <memory>
#include <string>

#include "treesched/sim/engine.hpp"
#include "treesched/util/rng.hpp"

namespace treesched::algo {

/// The paper's greedy assignment (Section 3.4). For identical endpoints it
/// minimizes F(j,v) + (6/eps^2) d_v p_j; for unrelated endpoints it adds the
/// leaf term F'(j,v). The endpoint model is taken from the engine's
/// instance. `eps` is the epsilon of the speed-augmentation guarantee and
/// controls the depth penalty 6/eps^2.
class PaperGreedyPolicy : public sim::AssignmentPolicy {
 public:
  /// Tie handling among cost-equal leaves. The paper leaves it unspecified;
  /// in the identical model every equal-depth leaf under the same root
  /// child costs the same, so kFirst funnels all of them to one machine.
  /// kRotate spreads ties round-robin — same guarantees (any argmin is
  /// valid), better leaf-level parallelism in practice (E14 ablation).
  enum class TieBreak { kFirst, kRotate };

  explicit PaperGreedyPolicy(double eps);

  /// Ablation constructor: overrides the 6/eps^2 depth-penalty coefficient
  /// (the cost becomes F + F' + coeff * d_v * p_j). The paper's constant is
  /// what the proofs need; the ablation experiment measures what practice
  /// wants.
  PaperGreedyPolicy(double eps, double depth_penalty_coeff,
                    TieBreak tie_break = TieBreak::kFirst);
  NodeId assign(const sim::Engine& engine, const Job& job) override;
  const char* name() const override { return "paper-greedy"; }

  /// Cost the rule minimizes — exposed for the dual-fitting beta_j values.
  double assignment_cost(const sim::Engine& engine, const Job& job,
                         NodeId leaf) const;

  /// F(j,v): root-child congestion term (identical-router part). Depends on
  /// v only through R(v).
  static double F(const sim::Engine& engine, const Job& job, NodeId leaf);

  /// F'(j,v): leaf congestion term of the unrelated rule; 0 in the
  /// identical model.
  static double F_prime(const sim::Engine& engine, const Job& job,
                        NodeId leaf);

  double eps() const { return eps_; }
  double depth_penalty_coeff() const { return penalty_; }

  /// F(j,v) through the per-root-child epoch cache — the shared evaluation
  /// path for assignment_cost and the deadline admission controller, which
  /// probes the same F at the same decision instant (so the cache makes the
  /// controller's leaves() sweep one evaluation per root child, not per
  /// leaf).
  double F_cached(const sim::Engine& engine, const Job& job,
                  NodeId leaf) const {
    return cached_F(engine, job, leaf);
  }

  /// kRotate carries a tie cursor across decisions; snapshot it so resumed
  /// streaming runs break ties identically. (The epoch cache is pure
  /// derived state and needs no serialization.)
  std::string stream_state() const override;
  void restore_stream_state(const std::string& state) override;

 private:
  /// F evaluated through a per-root-child epoch cache: F depends on the leaf
  /// only through R(v), so one evaluation per root child suffices for the
  /// whole leaves() sweep. The global key (engine identity, now, job) starts
  /// a fresh generation; within a generation each slot additionally carries
  /// the root child's own mutation epoch (Engine::subtree_mutation_count),
  /// so a mutation under one root child — a shed cascade, a re-dispatch —
  /// invalidates only that slot instead of every cached congestion term.
  double cached_F(const sim::Engine& engine, const Job& job,
                  NodeId leaf) const;

  /// Identical-model fast path of assign(): in that model every leaf of a
  /// (root child, depth) group has the bit-identical assignment cost, so the
  /// sweep evaluates one representative per static group. Group order (by
  /// first position in leaves()) makes the strict-< scan return the same
  /// leaf as the per-leaf sweep, and the rotation tie-break indexes tied
  /// leaves in leaves() order — byte-identical decisions, ~|leaves|/|groups|
  /// times fewer cost evaluations.
  NodeId assign_grouped(const sim::Engine& engine, const Job& job);
  void build_groups(const sim::Engine& engine) const;

  double eps_;
  double penalty_;
  TieBreak tie_break_;
  std::size_t rotation_ = 0;

  // Epoch-cache state (mutable: assignment_cost is const and hot).
  mutable const sim::Engine* cache_engine_ = nullptr;
  mutable Time cache_now_ = 0.0;
  mutable JobId cache_job_ = kInvalidJob;
  mutable std::uint64_t cache_gen_ = 0;        ///< bumped on every epoch change
  mutable std::vector<double> cache_f_;        ///< per root-child F value
  mutable std::vector<std::uint64_t> cache_stamp_;  ///< gen that wrote the slot
  mutable std::vector<std::uint64_t> cache_rc_epoch_;  ///< subtree epoch seen

  // Static (root child, depth) leaf groups of the engine's tree, ordered by
  // first position in leaves(); rebuilt only when the engine changes.
  struct LeafGroup {
    NodeId first_leaf = kInvalidNode;  ///< first member in leaves() order
    std::int32_t count = 0;            ///< member leaves
  };
  mutable const sim::Engine* group_engine_ = nullptr;
  mutable std::vector<LeafGroup> groups_;
  mutable std::vector<std::int32_t> group_of_pos_;  ///< leaves() pos -> group
  mutable std::vector<std::uint64_t> group_tied_stamp_;  ///< tie-scan marks
  mutable std::uint64_t group_tie_gen_ = 0;
};

/// Failure-aware variant of the paper's greedy rule: the same Lemma-4 cost
/// F + F' + (6/eps^2) d_v p_j, minimized over the *live* leaves only. Also
/// implements the engine's re-dispatch hook, so when a machine crashes its
/// stranded jobs are re-assigned by re-running the greedy rule over the
/// surviving leaves at the crash instant.
class FaultAwareGreedy : public sim::AssignmentPolicy,
                         public sim::RedispatchPolicy {
 public:
  explicit FaultAwareGreedy(double eps) : greedy_(eps) {}

  NodeId assign(const sim::Engine& engine, const Job& job) override;
  NodeId reassign(const sim::Engine& engine, JobId job,
                  NodeId dead_leaf) override;
  const char* name() const override { return "fault-greedy"; }

 private:
  NodeId best_live_leaf(const sim::Engine& engine, const Job& job) const;

  PaperGreedyPolicy greedy_;
};

/// Assigns to the leaf minimizing the job's total path processing time
/// P_{j,v} — the "closest leaf" rule the paper argues is insufficient.
class ClosestLeafPolicy : public sim::AssignmentPolicy {
 public:
  NodeId assign(const sim::Engine& engine, const Job& job) override;
  const char* name() const override { return "closest-leaf"; }
};

/// Uniformly random leaf.
class RandomLeafPolicy : public sim::AssignmentPolicy {
 public:
  explicit RandomLeafPolicy(std::uint64_t seed);
  NodeId assign(const sim::Engine& engine, const Job& job) override;
  const char* name() const override { return "random"; }

  /// Snapshots the RNG stream position for streaming kill/resume.
  std::string stream_state() const override;
  void restore_stream_state(const std::string& state) override;

 private:
  util::Rng rng_;
};

/// Cycles through the leaves in order, ignoring all state.
class RoundRobinPolicy : public sim::AssignmentPolicy {
 public:
  NodeId assign(const sim::Engine& engine, const Job& job) override;
  const char* name() const override { return "round-robin"; }

  /// Snapshots the rotation cursor for streaming kill/resume.
  std::string stream_state() const override;
  void restore_stream_state(const std::string& state) override;

 private:
  std::size_t next_ = 0;
};

/// Assigns to the leaf minimizing pending volume along the bottleneck:
/// remaining work queued at R(v) plus at the leaf plus the job's own path
/// processing time. A strong load-aware heuristic, but congestion-blind to
/// job size classes.
class LeastVolumePolicy : public sim::AssignmentPolicy {
 public:
  NodeId assign(const sim::Engine& engine, const Job& job) override;
  const char* name() const override { return "least-volume"; }
};

/// Assigns to the leaf minimizing the number of queued jobs at R(v) plus at
/// the leaf (ties by shallower leaf).
class LeastCountPolicy : public sim::AssignmentPolicy {
 public:
  NodeId assign(const sim::Engine& engine, const Job& job) override;
  const char* name() const override { return "least-count"; }
};

/// The power-of-two-choices baseline from randomized load balancing:
/// samples two machines uniformly and takes the one with less pending
/// volume along its path (plus the job's own path cost). Near-optimal for
/// flat machine pools; the tree experiments show how far that intuition
/// carries under shared links.
class TwoChoicePolicy : public sim::AssignmentPolicy {
 public:
  explicit TwoChoicePolicy(std::uint64_t seed);
  NodeId assign(const sim::Engine& engine, const Job& job) override;
  const char* name() const override { return "two-choice"; }

  /// Snapshots the RNG stream position for streaming kill/resume.
  std::string stream_state() const override;
  void restore_stream_state(const std::string& state) override;

 private:
  double volume_cost(const sim::Engine& engine, const Job& job,
                     NodeId leaf) const;
  util::Rng rng_;
};

/// Creates a policy by name: "paper", "closest", "random", "round-robin",
/// "least-volume", "least-count", "two-choice", "fault-greedy",
/// "broomstick-mirror" (the Section 3.7 general-tree algorithm). Throws
/// std::invalid_argument on unknown names.
/// `instance` is needed by "broomstick-mirror" (it simulates the broomstick
/// image of the instance); `eps` parameterizes the paper rules; `seed` the
/// random one.
std::unique_ptr<sim::AssignmentPolicy> make_policy(
    const std::string& name, const Instance& instance, double eps,
    std::uint64_t seed);

/// True iff `name` is one make_policy accepts — for validating user input
/// eagerly (e.g. before a sweep enumerates thousands of tasks).
bool is_known_policy(const std::string& name);

}  // namespace treesched::algo
