// Jobs created at arbitrary nodes — the generalization the paper names as
// future work ("What can be shown if jobs arrive at arbitrary nodes in the
// network?").
//
// A job carries a `source` node (kInvalidNode = the root, the base model);
// its data must be forwarded along the unique tree path from the source to
// the chosen machine, processing on every node it enters (the root acts as
// a transit router when the path crosses it, so it needs positive speed).
// This module provides online target-selection strategies and a runner
// that drives the Engine through Engine::admit_via_path.
#pragma once

#include "treesched/sim/engine.hpp"

namespace treesched::algo {

/// How an arriving source-born job picks its machine.
enum class AnycastStrategy {
  kClosest,      ///< minimize the job's own path processing volume
  kLeastVolume,  ///< minimize path volume + queued work along the path
  kGreedy,       ///< least-volume plus the displaced smaller-jobs term,
                 ///< mirroring the structure of the paper's rule
};

const char* anycast_strategy_name(AnycastStrategy s);

/// Picks a machine for `job` given the current engine state; returns the
/// processing path (engine.tree().path_between(source, leaf)).
std::vector<NodeId> choose_anycast_path(const sim::Engine& engine,
                                        const Job& job,
                                        AnycastStrategy strategy);

/// Runs a whole instance whose jobs may carry arbitrary sources. The speed
/// profile must give the root positive speed if any source lies in a
/// different subtree than every machine it may reach. When `paths_out` is
/// given, the per-job processing paths are returned (the path-aware
/// validate_schedule overload consumes them). When `recorder_out` is given
/// and cfg.record_schedule is set, the burst log is copied out.
sim::Metrics run_anycast(const Instance& instance, const SpeedProfile& speeds,
                         AnycastStrategy strategy,
                         sim::EngineConfig cfg = {},
                         std::vector<std::vector<NodeId>>* paths_out = nullptr,
                         sim::ScheduleRecorder* recorder_out = nullptr);

}  // namespace treesched::algo
