#include "treesched/algo/potential.hpp"

#include <algorithm>

#include "treesched/algo/policies.hpp"
#include "treesched/util/assert.hpp"

namespace treesched::algo {

double phi(const sim::Engine& engine, JobId j, double eps, double s) {
  TS_REQUIRE(eps > 0.0 && s > 0.0, "phi parameters must be positive");
  TS_REQUIRE(engine.admitted(j), "phi of an unadmitted job");
  const Instance& inst = engine.instance();
  const Tree& tree = engine.tree();
  const NodeId leaf = engine.assigned_leaf(j);
  const auto& path = tree.path_to(leaf);
  const int len = static_cast<int>(path.size());
  const int cur = engine.current_path_index(j);
  if (cur >= len) return 0.0;  // job done

  // P_j(t): remaining identical nodes — in the unrelated model the leaf is
  // excluded; in the identical model it participates like a router.
  const bool leaf_identical = inst.model() == EndpointModel::kIdentical;
  const int last_idx = leaf_identical ? len - 1 : len - 2;
  if (cur > last_idx) return 0.0;  // only the unrelated leaf remains

  const double p_j = inst.job(j).size;
  const Time r_j = inst.job(j).release;
  // d_j(t): nodes j still needs processing on (within the identical prefix
  // the lemma reasons about, the offsets cancel — use the full count).
  double best = 0.0;
  for (int idx = cur; idx <= last_idx; ++idx) {
    const NodeId v = path[uidx(idx)];
    // sum over S_{v,j} (including j itself) of remaining work on v.
    const double vol =
        engine.higher_priority_remaining(v, engine.size_on(j, v), r_j, j) +
        engine.remaining_on(j, v);
    // (d_j - d_{v,j}) counts the nodes strictly below v that j still needs
    // (the unrelated leaf included, per the paper's d_j definition).
    const double below = static_cast<double>(len - 1 - idx);
    const double term = vol + 2.0 / eps * below * p_j;
    best = std::max(best, term);
  }
  return best / s;
}

double lemma4_bound(const sim::Engine& engine, const Job& job, NodeId leaf,
                    double eps) {
  TS_REQUIRE(eps > 0.0, "eps must be positive");
  return PaperGreedyPolicy::F(engine, job, leaf) +
         PaperGreedyPolicy::F_prime(engine, job, leaf) +
         6.0 / (eps * eps) * engine.tree().d(leaf) * job.size;
}

}  // namespace treesched::algo
