#include "treesched/algo/runner.hpp"

#include "treesched/algo/policies.hpp"

namespace treesched::algo {

RunResult run_policy(const Instance& instance, const SpeedProfile& speeds,
                     sim::AssignmentPolicy& policy, sim::EngineConfig cfg,
                     sim::EngineObserver* observer) {
  sim::Engine engine(instance, speeds, cfg);
  if (observer) engine.set_observer(observer);
  engine.run(policy);
  RunResult r;
  r.metrics = engine.metrics();
  r.total_flow = r.metrics.total_flow_time();
  r.fractional_flow = r.metrics.total_fractional_flow_time();
  r.max_flow = r.metrics.max_flow_time();
  r.mean_flow = r.metrics.mean_flow_time();
  r.makespan = r.metrics.makespan();
  return r;
}

RunResult run_named_policy(const Instance& instance,
                           const SpeedProfile& speeds,
                           const std::string& policy_name, double eps,
                           std::uint64_t seed, sim::EngineConfig cfg) {
  auto policy = make_policy(policy_name, instance, eps, seed);
  return run_policy(instance, speeds, *policy, cfg);
}

}  // namespace treesched::algo
