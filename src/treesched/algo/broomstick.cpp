#include "treesched/algo/broomstick.hpp"

#include <algorithm>

#include "treesched/core/tree_builders.hpp"
#include "treesched/util/assert.hpp"

namespace treesched::algo {

bool is_broomstick(const Tree& tree) {
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    if (tree.is_root(v) || tree.is_leaf(v)) continue;
    int router_children = 0;
    int machine_children = 0;
    for (const NodeId c : tree.children(v)) {
      if (tree.is_leaf(c)) ++machine_children;
      else ++router_children;
    }
    if (router_children > 1) return false;
    const bool root_child = tree.parent(v) == tree.root();
    if (root_child && (router_children != 1 || machine_children != 0))
      return false;
  }
  return true;
}

BroomstickReduction BroomstickReduction::reduce(const Tree& original) {
  BroomstickReduction red;
  red.original_ = std::make_shared<const Tree>(original);

  TreeAssembler a;
  const NodeId root = a.add_root();
  std::vector<std::pair<NodeId, NodeId>> leaf_pairs;  // (original, broom)

  for (const NodeId v0 : original.root_children()) {
    // Deepest leaf distance below v0 (v0 itself may be a machine only if the
    // tree is degenerate; the model forbids machines adjacent to the root,
    // so v0 is always a router here).
    const std::vector<NodeId> leaves = original.leaves_under(v0);
    TS_CHECK(!leaves.empty(), "root child with no machines below");
    int max_dist = 0;
    for (const NodeId leaf : leaves)
      max_dist = std::max(max_dist, original.depth(leaf) - 1);
    // Spine s_0 .. s_{L+1}; s_0 plays the role of v0.
    std::vector<NodeId> spine;
    NodeId cur = a.add_router(root);
    spine.push_back(cur);
    for (int i = 1; i <= max_dist + 1; ++i) {
      cur = a.add_router(cur);
      spine.push_back(cur);
    }
    // A leaf at edge-distance l' below v0 hangs below s_{l'+1}.
    for (const NodeId leaf : leaves) {
      const int dist = original.depth(leaf) - 1;
      const NodeId broom_leaf = a.add_machine(spine[uidx(dist + 1)]);
      leaf_pairs.emplace_back(leaf, broom_leaf);
    }
  }

  red.broomstick_ = std::make_shared<const Tree>(std::move(a).finish());

  const Tree& bs = *red.broomstick_;
  red.to_original_.assign(bs.leaves().size(), kInvalidNode);
  red.from_original_.assign(original.leaves().size(), kInvalidNode);
  for (const auto& [orig, broom] : leaf_pairs) {
    red.to_original_[uidx(bs.leaf_index(broom))] = orig;
    red.from_original_[uidx(original.leaf_index(orig))] = broom;
  }
  for (const NodeId v : red.to_original_)
    TS_CHECK(v != kInvalidNode, "broomstick leaf with no preimage");
  for (const NodeId v : red.from_original_)
    TS_CHECK(v != kInvalidNode, "original leaf with no image");
  return red;
}

NodeId BroomstickReduction::to_original(NodeId broomstick_leaf) const {
  return to_original_[uidx(broomstick_->leaf_index(broomstick_leaf))];
}

NodeId BroomstickReduction::from_original(NodeId original_leaf) const {
  return from_original_[uidx(original_->leaf_index(original_leaf))];
}

Instance BroomstickReduction::transform(const Instance& instance) const {
  TS_REQUIRE(instance.tree().node_count() == original_->node_count(),
             "instance does not live on the reduced tree");
  std::vector<Job> jobs = instance.jobs();
  if (instance.model() == EndpointModel::kUnrelated) {
    const std::size_t n_leaves = broomstick_->leaves().size();
    for (Job& j : jobs) {
      std::vector<double> remapped(n_leaves, 0.0);
      for (std::size_t bi = 0; bi < n_leaves; ++bi) {
        const NodeId orig_leaf = to_original_[bi];
        remapped[bi] = j.leaf_sizes[uidx(original_->leaf_index(orig_leaf))];
      }
      j.leaf_sizes = std::move(remapped);
    }
  }
  return Instance(broomstick_, std::move(jobs), instance.model());
}

SpeedProfile BroomstickReduction::theorem4_speeds(double eps) const {
  return SpeedProfile::paper_identical(*broomstick_, eps);
}

}  // namespace treesched::algo
