#include "treesched/algo/general_tree.hpp"

#include "treesched/algo/policies.hpp"
#include "treesched/util/assert.hpp"

namespace treesched::algo {

BroomstickMirrorPolicy::BroomstickMirrorPolicy(const Instance& instance,
                                               double eps)
    : reduction_(BroomstickReduction::reduce(instance.tree())) {
  bs_instance_ = std::make_unique<Instance>(reduction_.transform(instance));
  const SpeedProfile speeds =
      instance.model() == EndpointModel::kIdentical
          ? SpeedProfile::paper_identical(reduction_.broomstick(), eps)
          : SpeedProfile::paper_unrelated(reduction_.broomstick(), eps);
  bs_engine_ = std::make_unique<sim::Engine>(*bs_instance_, speeds);
  greedy_ = std::make_unique<PaperGreedyPolicy>(eps);
}

BroomstickMirrorPolicy::~BroomstickMirrorPolicy() = default;

NodeId BroomstickMirrorPolicy::assign(const sim::Engine& engine,
                                      const Job& job) {
  TS_REQUIRE(&engine.instance() != bs_instance_.get(),
             "mirror policy must drive the original tree, not the broomstick");
  bs_engine_->advance_to(job.release);
  // Use the broomstick image of the job (leaf sizes re-indexed).
  const Job& bs_job = bs_instance_->job(job.id);
  const NodeId bs_leaf = greedy_->assign(*bs_engine_, bs_job);
  bs_engine_->admit(job.id, bs_leaf);
  return reduction_.to_original(bs_leaf);
}

void BroomstickMirrorPolicy::finish_simulation() { bs_engine_->run_to_completion(); }

}  // namespace treesched::algo
