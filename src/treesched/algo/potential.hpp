// The potential function of Lemma 3 and the waiting-time bounds of
// Lemmas 1/2/4, evaluated on live engine state.
#pragma once

#include "treesched/sim/engine.hpp"

namespace treesched::algo {

/// Phi_j(t) of Lemma 3: an upper bound on the remaining time until job j
/// clears its remaining *identical* nodes, assuming no further arrivals.
///
///   Phi_j(t) = (1/s) max_{v in P_j(t)} [ sum_{i in S_{v,j}} p^A_{i,v}(t)
///                                        + (2/eps)(d_j - d_{v,j}) p_j ]
///
/// `s` is the speed of the non-root-adjacent nodes (the lemma's premise).
/// P_j(t) excludes the leaf in the unrelated model. Requires j admitted and
/// not completed past its identical nodes.
double phi(const sim::Engine& engine, JobId j, double eps, double s);

/// The Lemma 4 waiting-time upper bound for job j if assigned to `leaf`,
/// evaluated at the current time (the assignment-rule quantity *before*
/// dividing by speeds; see the paper's Section 3.4 expressions). Used by
/// tests that re-derive the greedy rule's predictions.
double lemma4_bound(const sim::Engine& engine, const Job& job, NodeId leaf,
                    double eps);

}  // namespace treesched::algo
