// The general-tree algorithm of Section 3.7.
//
// The policy maintains, alongside the real run on T, a private simulation of
// the paper's broomstick algorithm A_{T'} (SJF everywhere + the greedy
// assignment rule, with the paper's speed profile on T'). When a job
// arrives, the broomstick simulation is advanced to the arrival time, the
// greedy rule picks a broomstick leaf, and the job is assigned to the
// corresponding leaf of T. Lemma 8 shows the real run can only be faster.
#pragma once

#include <memory>

#include "treesched/algo/broomstick.hpp"
#include "treesched/sim/engine.hpp"

namespace treesched::algo {

class PaperGreedyPolicy;

class BroomstickMirrorPolicy : public sim::AssignmentPolicy {
 public:
  /// `instance` is the instance on T the outer engine will run; `eps` is
  /// the augmentation epsilon (drives both the inner greedy's depth penalty
  /// and the broomstick's paper speed profile).
  BroomstickMirrorPolicy(const Instance& instance, double eps);
  ~BroomstickMirrorPolicy() override;

  NodeId assign(const sim::Engine& engine, const Job& job) override;
  const char* name() const override { return "broomstick-mirror"; }

  /// Drains the internal broomstick simulation (call after the outer run
  /// finished to compare per-job flow times, Lemma 8).
  void finish_simulation();

  const BroomstickReduction& reduction() const { return reduction_; }
  const sim::Engine& broomstick_engine() const { return *bs_engine_; }

 private:
  BroomstickReduction reduction_;
  std::unique_ptr<Instance> bs_instance_;
  std::unique_ptr<sim::Engine> bs_engine_;
  std::unique_ptr<PaperGreedyPolicy> greedy_;
};

}  // namespace treesched::algo
