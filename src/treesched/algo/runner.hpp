// One-call experiment helpers: run an instance under a policy and collect
// the objectives.
#pragma once

#include <memory>
#include <string>

#include "treesched/sim/engine.hpp"

namespace treesched::algo {

struct RunResult {
  double total_flow = 0.0;
  double fractional_flow = 0.0;
  double max_flow = 0.0;
  double mean_flow = 0.0;
  double makespan = 0.0;
  sim::Metrics metrics;
};

/// Runs `instance` under `policy` with the given speeds; returns the
/// objectives. `cfg` selects node discipline / recording / pipelining.
RunResult run_policy(const Instance& instance, const SpeedProfile& speeds,
                     sim::AssignmentPolicy& policy,
                     sim::EngineConfig cfg = {},
                     sim::EngineObserver* observer = nullptr);

/// Convenience: builds the named policy (see make_policy) and runs it.
RunResult run_named_policy(const Instance& instance,
                           const SpeedProfile& speeds,
                           const std::string& policy_name, double eps,
                           std::uint64_t seed = 1,
                           sim::EngineConfig cfg = {});

}  // namespace treesched::algo
