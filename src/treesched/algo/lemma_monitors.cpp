#include "treesched/algo/lemma_monitors.hpp"

#include <algorithm>

#include "treesched/util/assert.hpp"

namespace treesched::algo {

Lemma2Monitor::Lemma2Monitor(double eps, int check_every)
    : eps_(eps), check_every_(check_every) {
  TS_REQUIRE(eps > 0.0, "eps must be positive");
  TS_REQUIRE(check_every >= 1, "check_every must be >= 1");
}

void Lemma2Monitor::on_event(const sim::Engine& engine, Time t) {
  (void)t;
  if (++event_count_ % check_every_ != 0) return;
  const Tree& tree = engine.tree();
  const Instance& inst = engine.instance();
  const bool leaf_identical = inst.model() == EndpointModel::kIdentical;

  for (NodeId v = 0; v < tree.node_count(); ++v) {
    if (tree.is_root(v)) continue;
    if (tree.parent(v) == tree.root()) continue;  // lemma excludes R
    if (tree.is_leaf(v) && !leaf_identical) continue;  // unrelated leaves
    const std::set<JobId>& queue = engine.inflight_at(v);
    if (queue.empty()) continue;
    for (const JobId j : queue) {
      // "j still needs to use v": unfinished work of j on v — all of Q_v.
      const double p_j = engine.size_on(j, v);
      const Time r_j = inst.job(j).release;
      double vol = 0.0;
      for (const JobId i : queue) {
        if (!engine.available_on(i, v)) continue;
        const double p_i = engine.size_on(i, v);
        const Time r_i = inst.job(i).release;
        const bool in_s = (i == j) || p_i < p_j ||
                          (p_i == p_j &&
                           (r_i < r_j || (r_i == r_j && i < j)));
        if (in_s) vol += engine.remaining_on(i, v);
      }
      const double bound = 2.0 / eps_ * p_j;
      const double ratio = vol / bound;
      max_ratio_ = std::max(max_ratio_, ratio);
      ++checks_;
      if (ratio > 1.0 + 1e-9) ++violations_;
    }
  }
}

InteriorWaitReport interior_wait_report(const sim::Engine& engine,
                                        double eps) {
  TS_REQUIRE(eps > 0.0, "eps must be positive");
  InteriorWaitReport rep;
  const Instance& inst = engine.instance();
  const Tree& tree = engine.tree();
  const bool leaf_identical = inst.model() == EndpointModel::kIdentical;
  double ratio_sum = 0.0;

  for (const auto& rec : engine.metrics().jobs()) {
    if (!rec.completed()) continue;
    const auto& path = tree.path_to(rec.leaf);
    const int len = static_cast<int>(path.size());
    const int last_idx = leaf_identical ? len - 1 : len - 2;
    if (last_idx < 1) continue;  // no identical nodes beyond R(v)
    const Time left_root_child = rec.node_completion[0];
    const Time cleared_identical = rec.node_completion[uidx(last_idx)];
    TS_CHECK(left_root_child >= 0.0 && cleared_identical >= 0.0,
             "missing node completion stamps");
    const double wait = cleared_identical - left_root_child;
    const NodeId v_e = path[uidx(last_idx)];
    const double bound =
        6.0 / (eps * eps) * inst.job(rec.id).size * tree.d(v_e);
    const double ratio = wait / bound;
    rep.max_ratio = std::max(rep.max_ratio, ratio);
    ratio_sum += ratio;
    ++rep.jobs_measured;
    if (ratio > 1.0 + 1e-9) ++rep.violations;
  }
  if (rep.jobs_measured > 0)
    rep.mean_ratio = ratio_sum / static_cast<double>(rep.jobs_measured);
  return rep;
}

DominationReport domination_report(const sim::Metrics& on_tree,
                                   const sim::Metrics& on_broomstick) {
  TS_REQUIRE(on_tree.jobs().size() == on_broomstick.jobs().size(),
             "metrics cover different job sets");
  DominationReport rep;
  double speedup_sum = 0.0;
  for (std::size_t j = 0; j < on_tree.jobs().size(); ++j) {
    const auto& a = on_tree.jobs()[j];
    const auto& b = on_broomstick.jobs()[j];
    if (!a.completed() || !b.completed()) continue;
    ++rep.jobs;
    const double excess = a.flow() - b.flow();
    rep.max_excess = std::max(rep.max_excess, excess);
    if (excess > 1e-6) ++rep.violations;
    if (a.flow() > 0.0) speedup_sum += b.flow() / a.flow();
  }
  if (rep.jobs > 0) rep.mean_speedup = speedup_sum / static_cast<double>(rep.jobs);
  return rep;
}

}  // namespace treesched::algo
