// The Phillips–Stein–Wein network-scheduling model (the paper's related
// work [32]), implemented as a comparison substrate.
//
// In PSW's model the network only *delays* jobs — data moves without
// contention, so assigning job j to machine v makes it available there at
// r_j + transit(j, v), where transit is the path's processing volume over
// the router speeds. Machines then schedule independently. The paper's
// whole point is that real links are a contended resource; comparing the
// two models on the same instances measures the price of congestion.
//
// Any feasible tree-model schedule is PSW-feasible with the same
// completions (congestion can only delay beyond transit), so the PSW cost
// under a good policy approximates how much of the tree-model flow time is
// congestion rather than distance.
#pragma once

#include <vector>

#include "treesched/core/instance.hpp"
#include "treesched/core/speed_profile.hpp"

namespace treesched::algo {

struct PswResult {
  std::vector<Time> completion;  ///< per job id
  double total_flow = 0.0;
  double max_flow = 0.0;
  double mean_flow() const {
    return completion.empty() ? 0.0
                              : total_flow / static_cast<double>(
                                                completion.size());
  }
};

/// Runs the PSW model: immediate dispatch at release (the assignment
/// minimizes transit + queued-work-ahead + own size), SRPT per machine.
/// Speeds: routers shape the transit delays, leaves the processing rates.
PswResult run_psw_model(const Instance& instance, const SpeedProfile& speeds);

/// transit(j, v): the path volume above the leaf divided by router speeds.
double psw_transit_time(const Instance& instance, const SpeedProfile& speeds,
                        JobId j, NodeId leaf);

}  // namespace treesched::algo
