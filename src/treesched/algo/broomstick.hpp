// The broomstick reduction of Section 3.3.
//
// For each root child v0 of T the broomstick T' has a spine of identical
// routers s_0 .. s_{L+1} (L = deepest leaf distance below v0); a leaf of T
// at edge-distance l' below v0 hangs below spine node s_{l'+1}, so every
// leaf's root-child distance grows by exactly 2. Jobs keep their processing
// times (leaf times follow the leaf mapping in the unrelated model).
#pragma once

#include <memory>
#include <vector>

#include "treesched/core/instance.hpp"
#include "treesched/core/speed_profile.hpp"

namespace treesched::algo {

/// True iff the tree is a broomstick: every root child is a router with
/// exactly one (router) child, every router has at most one router child,
/// and no machine hangs directly below a root child (Section 3.3's image —
/// the dual fitting's Lemma 6 relies on root children having one child).
bool is_broomstick(const Tree& tree);

/// The reduction result: the broomstick topology plus the leaf bijection.
class BroomstickReduction {
 public:
  /// Builds T' from T (Section 3.3 construction).
  static BroomstickReduction reduce(const Tree& original);

  const Tree& broomstick() const { return *broomstick_; }
  std::shared_ptr<const Tree> broomstick_ptr() const { return broomstick_; }

  /// Original leaf corresponding to a broomstick leaf.
  NodeId to_original(NodeId broomstick_leaf) const;

  /// Broomstick leaf corresponding to an original leaf.
  NodeId from_original(NodeId original_leaf) const;

  /// Transforms an instance on T into the same job sequence on T'
  /// (unrelated leaf sizes re-indexed along the bijection).
  Instance transform(const Instance& instance) const;

  /// The paper's Theorem 4 speed profile on T': (1+eps) on root children,
  /// (1+eps)^2 elsewhere — identical to SpeedProfile::paper_identical but
  /// spelled here for discoverability next to the reduction.
  SpeedProfile theorem4_speeds(double eps) const;

 private:
  BroomstickReduction() = default;

  std::shared_ptr<const Tree> original_;
  std::shared_ptr<const Tree> broomstick_;
  std::vector<NodeId> to_original_;    ///< by broomstick leaf_index
  std::vector<NodeId> from_original_;  ///< by original leaf_index
};

}  // namespace treesched::algo
