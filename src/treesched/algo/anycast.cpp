#include "treesched/algo/anycast.hpp"

#include <limits>

#include "treesched/util/assert.hpp"

namespace treesched::algo {

const char* anycast_strategy_name(AnycastStrategy s) {
  switch (s) {
    case AnycastStrategy::kClosest: return "anycast-closest";
    case AnycastStrategy::kLeastVolume: return "anycast-least-volume";
    case AnycastStrategy::kGreedy: return "anycast-greedy";
  }
  return "?";
}

std::vector<NodeId> choose_anycast_path(const sim::Engine& engine,
                                        const Job& job,
                                        AnycastStrategy strategy) {
  const Tree& tree = engine.tree();
  const Instance& inst = engine.instance();
  const NodeId source = job.source == kInvalidNode ? tree.root() : job.source;

  double best = std::numeric_limits<double>::infinity();
  std::vector<NodeId> best_path;
  for (const NodeId leaf : tree.leaves()) {
    std::vector<NodeId> path = tree.path_between(source, leaf);
    double cost = 0.0;
    for (const NodeId v : path) cost += inst.processing_time(job.id, v);
    if (strategy != AnycastStrategy::kClosest) {
      for (const NodeId v : path) {
        for (const JobId i : engine.inflight_at(v)) {
          const double rem = engine.remaining_on(i, v);
          if (strategy == AnycastStrategy::kLeastVolume) {
            cost += rem;
          } else {
            // kGreedy: volume ahead of us plus our size per job we displace
            // (the structure of the paper's F, applied per path node).
            const double pi = engine.size_on(i, v);
            const double pj = inst.processing_time(job.id, v);
            if (pi <= pj) cost += rem;
            else cost += pj;
          }
        }
      }
    }
    if (cost < best) {
      best = cost;
      best_path = std::move(path);
    }
  }
  TS_CHECK(!best_path.empty(), "no machine reachable");
  return best_path;
}

sim::Metrics run_anycast(const Instance& instance, const SpeedProfile& speeds,
                         AnycastStrategy strategy, sim::EngineConfig cfg,
                         std::vector<std::vector<NodeId>>* paths_out,
                         sim::ScheduleRecorder* recorder_out) {
  sim::Engine engine(instance, speeds, cfg);
  if (paths_out) paths_out->assign(uidx(instance.job_count()), {});
  for (const Job& job : instance.jobs()) {
    engine.advance_to(job.release);
    std::vector<NodeId> path = choose_anycast_path(engine, job, strategy);
    if (paths_out) (*paths_out)[uidx(job.id)] = path;
    engine.admit_via_path(job.id, std::move(path));
  }
  engine.run_to_completion();
  if (recorder_out) *recorder_out = engine.recorder();
  return engine.metrics();
}

}  // namespace treesched::algo
