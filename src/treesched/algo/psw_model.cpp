#include "treesched/algo/psw_model.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "treesched/util/assert.hpp"

namespace treesched::algo {

double psw_transit_time(const Instance& instance, const SpeedProfile& speeds,
                        JobId j, NodeId leaf) {
  const auto& path = instance.tree().path_to(leaf);
  double transit = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    transit += instance.processing_time(j, path[i]) / speeds.speed(path[i]);
  return transit;
}

namespace {

/// One machine's SRPT queue, advanced lazily between global events.
struct Machine {
  // (remaining, release, id) — SRPT order with deterministic ties.
  std::set<std::tuple<double, Time, JobId>> active;
  Time last = 0.0;

  void advance(Time t, double speed, std::vector<Time>& completion) {
    double budget = (t - last) * speed;
    last = t;
    while (!active.empty()) {
      auto it = active.begin();
      auto [rem, rel, id] = *it;
      // Treat float residues as done: a job within tolerance of its budget
      // completes now, otherwise a stranded ~1e-13 remainder would pin
      // next_completion() at the current instant forever.
      if (rem > budget + 1e-9) {
        if (budget > 0.0) {
          active.erase(it);
          active.emplace(rem - budget, rel, id);
        }
        break;
      }
      active.erase(it);
      budget = std::max(0.0, budget - rem);
      completion[uidx(id)] = t - budget / speed;
    }
  }

  /// Time the machine finishes its current top job if nothing changes.
  Time next_completion(Time now, double speed) const {
    if (active.empty()) return std::numeric_limits<double>::infinity();
    return now + std::get<0>(*active.begin()) / speed;
  }
};

}  // namespace

PswResult run_psw_model(const Instance& instance,
                        const SpeedProfile& speeds) {
  const Tree& tree = instance.tree();
  const JobId n = instance.job_count();
  PswResult result;
  result.completion.assign(uidx(n), -1.0);

  std::vector<Machine> machines(tree.leaves().size());
  // In-flight jobs: (arrival-at-machine, job, leaf index).
  using Flight = std::tuple<Time, JobId, int>;
  std::priority_queue<Flight, std::vector<Flight>, std::greater<>> flights;

  Time now = 0.0;
  std::size_t next_job = 0;
  const auto& jobs = instance.jobs();

  auto advance_all = [&](Time t) {
    for (std::size_t m = 0; m < machines.size(); ++m)
      machines[m].advance(t, speeds.speed(tree.leaves()[m]),
                          result.completion);
    now = t;
  };

  while (true) {
    // Next event: release, flight arrival, or machine completion.
    Time next = std::numeric_limits<double>::infinity();
    if (next_job < jobs.size()) next = jobs[next_job].release;
    if (!flights.empty()) next = std::min(next, std::get<0>(flights.top()));
    for (std::size_t m = 0; m < machines.size(); ++m)
      next = std::min(next, machines[m].next_completion(
                                now, speeds.speed(tree.leaves()[m])));
    if (next == std::numeric_limits<double>::infinity()) break;
    advance_all(next);

    // Flight arrivals enter their machine's SRPT queue.
    while (!flights.empty() && std::get<0>(flights.top()) <= now + 1e-12) {
      auto [t, j, m] = flights.top();
      flights.pop();
      machines[uidx(m)].active.emplace(
          instance.processing_time(j, tree.leaves()[uidx(m)]),
          instance.job(j).release, j);
    }

    // Dispatch releases: pick the machine minimizing estimated completion
    // (transit + work ahead at equal-or-higher priority + own size).
    while (next_job < jobs.size() && jobs[next_job].release <= now + 1e-12) {
      const Job& job = jobs[next_job++];
      double best = std::numeric_limits<double>::infinity();
      int best_m = 0;
      for (std::size_t m = 0; m < machines.size(); ++m) {
        const NodeId leaf = tree.leaves()[m];
        const double p = instance.processing_time(job.id, leaf);
        const double speed = speeds.speed(leaf);
        double ahead = 0.0;
        for (const auto& [rem, rel, id] : machines[m].active)
          if (rem <= p) ahead += rem;
        const double est = psw_transit_time(instance, speeds, job.id, leaf) +
                           (ahead + p) / speed;
        if (est < best) {
          best = est;
          best_m = static_cast<int>(m);
        }
      }
      const Time arrive =
          now + psw_transit_time(instance, speeds, job.id,
                                 tree.leaves()[uidx(best_m)]);
      flights.emplace(arrive, job.id, best_m);
    }
  }

  for (JobId j = 0; j < n; ++j) {
    TS_CHECK(result.completion[uidx(j)] >= 0.0, "PSW job never completed");
    const double flow = result.completion[uidx(j)] - instance.job(j).release;
    result.total_flow += flow;
    result.max_flow = std::max(result.max_flow, flow);
  }
  return result;
}

}  // namespace treesched::algo
