// Runtime monitors that measure the quantities bounded by the paper's
// structural lemmas, so experiments can report observed-vs-proved ratios.
#pragma once

#include <vector>

#include "treesched/sim/engine.hpp"

namespace treesched::algo {

/// Lemma 2 monitor: at (sampled) engine events, for every identical node v
/// not adjacent to the root and every job j still needing v, measures
///
///   sum_{i in S_{v,j} available on v} p^A_{i,v}(t)   vs   (2/eps) p_j
///
/// and keeps the worst observed ratio. The lemma's premises require
/// class-rounded sizes and speed >= 1+eps on non-root-adjacent nodes; runs
/// violating them may legitimately exceed 1.
class Lemma2Monitor : public sim::EngineObserver {
 public:
  /// check_every: evaluate at every k-th event (1 = all; the check is
  /// O(nodes * queue^2) per event).
  explicit Lemma2Monitor(double eps, int check_every = 1);

  void on_event(const sim::Engine& engine, Time t) override;

  double max_ratio() const { return max_ratio_; }
  long checks() const { return checks_; }
  long violations() const { return violations_; }

 private:
  double eps_;
  int check_every_;
  long event_count_ = 0;
  long checks_ = 0;
  long violations_ = 0;
  double max_ratio_ = 0.0;
};

/// Lemma 1 report, computed after a finished run: for every job, the time
/// between leaving R(v) (completion on the first path node) and completing
/// the last identical node, against the proved (6/eps^2) p_j d_{v_e} bound.
struct InteriorWaitReport {
  double max_ratio = 0.0;   ///< worst observed wait / bound
  double mean_ratio = 0.0;
  long jobs_measured = 0;
  long violations = 0;      ///< jobs with ratio > 1
};

InteriorWaitReport interior_wait_report(const sim::Engine& engine,
                                        double eps);

/// Lemma 8 comparison after a BroomstickMirrorPolicy run: per-job flow time
/// on T versus on the simulated broomstick T'.
struct DominationReport {
  long jobs = 0;
  long violations = 0;      ///< jobs slower on T than on T'
  double max_excess = 0.0;  ///< worst flow_T - flow_T' (positive = violation)
  double mean_speedup = 0.0;///< average flow_T' / flow_T
};

DominationReport domination_report(const sim::Metrics& on_tree,
                                   const sim::Metrics& on_broomstick);

}  // namespace treesched::algo
