#include "treesched/algo/policies.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "treesched/algo/general_tree.hpp"
#include "treesched/util/assert.hpp"

namespace treesched::algo {

// ---------------------------------------------------------------------------
// PaperGreedyPolicy
// ---------------------------------------------------------------------------

PaperGreedyPolicy::PaperGreedyPolicy(double eps)
    : PaperGreedyPolicy(eps, 6.0 / (eps * eps)) {}

PaperGreedyPolicy::PaperGreedyPolicy(double eps, double depth_penalty_coeff,
                                     TieBreak tie_break)
    : eps_(eps), penalty_(depth_penalty_coeff), tie_break_(tie_break) {
  TS_REQUIRE(eps > 0.0, "eps must be positive");
  TS_REQUIRE(depth_penalty_coeff >= 0.0, "penalty must be non-negative");
}

double PaperGreedyPolicy::F(const sim::Engine& engine, const Job& job,
                            NodeId leaf) {
  const Tree& tree = engine.tree();
  const NodeId rc = tree.root_child_of(leaf);
  // S_{R(v),j} includes the arriving job itself (full size), the queued
  // higher-priority volume, and one p_j per queued strictly-larger job.
  return engine.higher_priority_remaining(rc, job.size, job.release, job.id) +
         job.size +
         job.size * engine.count_larger(rc, job.size);
}

double PaperGreedyPolicy::F_prime(const sim::Engine& engine, const Job& job,
                                  NodeId leaf) {
  if (engine.instance().model() == EndpointModel::kIdentical) return 0.0;
  const double p_jv = engine.size_on(job.id, leaf);
  return engine.higher_priority_remaining(leaf, p_jv, job.release, job.id) +
         p_jv +
         p_jv * engine.larger_residual_fraction(leaf, p_jv);
}

double PaperGreedyPolicy::cached_F(const sim::Engine& engine, const Job& job,
                                   NodeId leaf) const {
  // Oracle mode reproduces the seed's computational path end to end: naive
  // engine queries AND one F evaluation per leaf, no hoisting. The value is
  // bit-identical either way (F is a deterministic function of engine state,
  // which cannot change during one assign sweep), so the differential suite
  // exercises the cache as well as the index queries.
  if (engine.config().slow_queries) return F(engine, job, leaf);
  const Tree& tree = engine.tree();
  const NodeId rc = tree.root_child_of(leaf);
  if (cache_engine_ != &engine || cache_now_ != engine.now() ||
      cache_job_ != job.id) {
    cache_engine_ = &engine;
    cache_now_ = engine.now();
    cache_job_ = job.id;
    ++cache_gen_;
    const std::size_t n = uidx(tree.node_count());
    if (cache_f_.size() < n) {
      cache_f_.resize(n);
      cache_stamp_.resize(n, 0);
      cache_rc_epoch_.resize(n, 0);
    }
  }
  // Slot validity is per root child: the generation covers (engine, now,
  // job), and the subtree epoch covers mutations under this root child — F
  // reads nothing outside it, so mutations under OTHER root children (a
  // shed cascade, a re-dispatch chain) leave this slot valid.
  const std::size_t r = uidx(rc);
  const std::uint64_t epoch = engine.subtree_mutation_count(rc);
  if (cache_stamp_[r] != cache_gen_ || cache_rc_epoch_[r] != epoch) {
    cache_f_[r] = F(engine, job, leaf);
    cache_stamp_[r] = cache_gen_;
    cache_rc_epoch_[r] = epoch;
  }
  return cache_f_[r];
}

double PaperGreedyPolicy::assignment_cost(const sim::Engine& engine,
                                          const Job& job, NodeId leaf) const {
  const Tree& tree = engine.tree();
  const double depth_penalty = penalty_ * tree.d(leaf) * job.size;
  // F' is identically zero for identical endpoints; skip the per-leaf
  // queries entirely there.
  const double f_prime = engine.instance().model() == EndpointModel::kIdentical
                             ? 0.0
                             : F_prime(engine, job, leaf);
  return cached_F(engine, job, leaf) + f_prime + depth_penalty;
}

void PaperGreedyPolicy::build_groups(const sim::Engine& engine) const {
  if (group_engine_ == &engine) return;
  group_engine_ = &engine;
  const Tree& tree = engine.tree();
  const auto& leaves = tree.leaves();
  groups_.clear();
  group_of_pos_.assign(leaves.size(), -1);
  std::map<std::pair<NodeId, int>, std::int32_t> gid;
  for (std::size_t pos = 0; pos < leaves.size(); ++pos) {
    const NodeId v = leaves[pos];
    const auto key = std::make_pair(tree.root_child_of(v), tree.d(v));
    auto it = gid.find(key);
    if (it == gid.end()) {
      it = gid.emplace(key, static_cast<std::int32_t>(groups_.size())).first;
      groups_.push_back({v, 0});
    }
    ++groups_[uidx(it->second)].count;
    group_of_pos_[pos] = it->second;
  }
  group_tied_stamp_.assign(groups_.size(), 0);
  group_tie_gen_ = 0;
}

NodeId PaperGreedyPolicy::assign_grouped(const sim::Engine& engine,
                                         const Job& job) {
  build_groups(engine);
  // Pass 1 over group representatives. Groups are ordered by their first
  // position in leaves(), so a strict-< scan selects the same leaf the
  // per-leaf sweep would: the first leaf (in leaves() order) attaining the
  // minimum is necessarily the first member of the first minimal group.
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_g = groups_.size();
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const double cost = assignment_cost(engine, job, groups_[g].first_leaf);
    if (cost < best) {
      best = cost;
      best_g = g;
    }
  }
  TS_CHECK(best_g < groups_.size(), "no leaf to assign to");
  if (tie_break_ != TieBreak::kRotate) return groups_[best_g].first_leaf;
  // Pass 2: a group is tied iff its (shared, bit-identical) cost is within
  // tolerance, making every member tied. The k-th tied leaf in leaves()
  // order is found by walking positions and checking the group mark.
  const double tol = 1e-9 * std::max(1.0, std::fabs(best));
  ++group_tie_gen_;
  std::size_t count = 0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (assignment_cost(engine, job, groups_[g].first_leaf) <= best + tol) {
      group_tied_stamp_[g] = group_tie_gen_;
      count += uidx(groups_[g].count);
    }
  }
  if (count <= 1) return groups_[best_g].first_leaf;
  std::size_t k = rotation_++ % count;
  const auto& leaves = engine.tree().leaves();
  for (std::size_t pos = 0;; ++pos) {
    if (group_tied_stamp_[uidx(group_of_pos_[pos])] == group_tie_gen_) {
      if (k == 0) return leaves[pos];
      --k;
    }
  }
}

NodeId PaperGreedyPolicy::assign(const sim::Engine& engine, const Job& job) {
  // Identical-endpoint fast path: the cost is constant across each (root
  // child, depth) leaf group, so one representative per group suffices. The
  // oracle mode keeps the seed's per-leaf sweep so the differential suite
  // pins the grouped scan against it.
  if (!engine.config().slow_queries &&
      engine.instance().model() == EndpointModel::kIdentical)
    return assign_grouped(engine, job);
  // Pass 1: the true minimum. The old single-pass version derived the tie
  // tolerance from the *running* best (zero while best_leaf was still
  // kInvalidNode), so a chain of sub-tolerance improvements could leave
  // `best` strictly above the minimum and the first exactly-tied candidate
  // out of the rotation set.
  const auto& leaves = engine.tree().leaves();
  double best = std::numeric_limits<double>::infinity();
  NodeId best_leaf = kInvalidNode;
  for (const NodeId v : leaves) {
    const double cost = assignment_cost(engine, job, v);
    if (cost < best) {
      best = cost;
      best_leaf = v;
    }
  }
  TS_CHECK(best_leaf != kInvalidNode, "no leaf to assign to");
  if (tie_break_ != TieBreak::kRotate) return best_leaf;
  // Pass 2: collect every leaf within tolerance of the settled minimum
  // (cheap — F is epoch-cached, so this re-sweep repeats no rc queries).
  const double tol = 1e-9 * std::max(1.0, std::fabs(best));
  std::vector<NodeId> tied;
  for (const NodeId v : leaves)
    if (assignment_cost(engine, job, v) <= best + tol) tied.push_back(v);
  if (tied.size() > 1) return tied[rotation_++ % tied.size()];
  return best_leaf;
}

// ---------------------------------------------------------------------------
// FaultAwareGreedy
// ---------------------------------------------------------------------------

NodeId FaultAwareGreedy::best_live_leaf(const sim::Engine& engine,
                                        const Job& job) const {
  double best = std::numeric_limits<double>::infinity();
  NodeId best_leaf = kInvalidNode;
  for (const NodeId v : engine.tree().leaves()) {
    if (engine.node_down(v)) continue;
    const double cost = greedy_.assignment_cost(engine, job, v);
    if (cost < best) {
      best = cost;
      best_leaf = v;
    }
  }
  TS_REQUIRE(best_leaf != kInvalidNode,
             "fault-greedy: every machine is down at assignment time");
  return best_leaf;
}

NodeId FaultAwareGreedy::assign(const sim::Engine& engine, const Job& job) {
  return best_live_leaf(engine, job);
}

NodeId FaultAwareGreedy::reassign(const sim::Engine& engine, JobId job,
                                  NodeId /*dead_leaf*/) {
  return best_live_leaf(engine, engine.instance().job(job));
}

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

NodeId ClosestLeafPolicy::assign(const sim::Engine& engine, const Job& job) {
  double best = std::numeric_limits<double>::infinity();
  NodeId best_leaf = kInvalidNode;
  for (const NodeId v : engine.tree().leaves()) {
    const double cost = engine.instance().path_processing_time(job.id, v);
    if (cost < best) {
      best = cost;
      best_leaf = v;
    }
  }
  return best_leaf;
}

RandomLeafPolicy::RandomLeafPolicy(std::uint64_t seed) : rng_(seed) {}

NodeId RandomLeafPolicy::assign(const sim::Engine& engine, const Job&) {
  const auto& leaves = engine.tree().leaves();
  return leaves[static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(leaves.size()) - 1))];
}

NodeId RoundRobinPolicy::assign(const sim::Engine& engine, const Job&) {
  const auto& leaves = engine.tree().leaves();
  const NodeId v = leaves[next_ % leaves.size()];
  ++next_;
  return v;
}

NodeId LeastVolumePolicy::assign(const sim::Engine& engine, const Job& job) {
  double best = std::numeric_limits<double>::infinity();
  NodeId best_leaf = kInvalidNode;
  for (const NodeId v : engine.tree().leaves()) {
    const NodeId rc = engine.tree().root_child_of(v);
    const double vol = engine.instance().path_processing_time(job.id, v) +
                       engine.pending_remaining(rc) +
                       engine.pending_remaining(v);
    if (vol < best) {
      best = vol;
      best_leaf = v;
    }
  }
  return best_leaf;
}

NodeId LeastCountPolicy::assign(const sim::Engine& engine, const Job&) {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  int best_depth = std::numeric_limits<int>::max();
  NodeId best_leaf = kInvalidNode;
  for (const NodeId v : engine.tree().leaves()) {
    const NodeId rc = engine.tree().root_child_of(v);
    const std::size_t count = engine.queue_size(rc) + engine.queue_size(v);
    const int depth = engine.tree().d(v);
    if (count < best || (count == best && depth < best_depth)) {
      best = count;
      best_depth = depth;
      best_leaf = v;
    }
  }
  return best_leaf;
}

TwoChoicePolicy::TwoChoicePolicy(std::uint64_t seed) : rng_(seed) {}

double TwoChoicePolicy::volume_cost(const sim::Engine& engine, const Job& job,
                                    NodeId leaf) const {
  const NodeId rc = engine.tree().root_child_of(leaf);
  return engine.instance().path_processing_time(job.id, leaf) +
         engine.pending_remaining(rc) + engine.pending_remaining(leaf);
}

NodeId TwoChoicePolicy::assign(const sim::Engine& engine, const Job& job) {
  const auto& leaves = engine.tree().leaves();
  const auto pick = [&]() {
    return leaves[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(leaves.size()) - 1))];
  };
  const NodeId a = pick();
  const NodeId b = pick();
  if (a == b) return a;
  return volume_cost(engine, job, a) <= volume_cost(engine, job, b) ? a : b;
}

// ---------------------------------------------------------------------------
// Stream-state round-trips (single whitespace-free tokens; see
// sim::AssignmentPolicy::stream_state)
// ---------------------------------------------------------------------------

namespace {

std::string rng_token(const util::Rng& rng) {
  const auto s = rng.state();
  std::ostringstream os;
  os << "rng:" << s[0] << ':' << s[1] << ':' << s[2] << ':' << s[3];
  return os.str();
}

util::Rng rng_from_token(const std::string& token) {
  std::array<std::uint64_t, 4> s{};
  char c1 = 0, c2 = 0, c3 = 0;
  std::istringstream is(token);
  std::string tag(4, '\0');
  is.read(tag.data(), 4);
  is >> s[0] >> c1 >> s[1] >> c2 >> s[2] >> c3 >> s[3];
  TS_REQUIRE(is && tag == "rng:" && c1 == ':' && c2 == ':' && c3 == ':',
             "malformed rng stream-state token: " + token);
  util::Rng rng;
  rng.set_state(s);
  return rng;
}

std::size_t counter_from_token(const std::string& token, const char* tag) {
  const std::string prefix = std::string(tag) + ":";
  TS_REQUIRE(token.compare(0, prefix.size(), prefix) == 0,
             "malformed stream-state token: " + token);
  std::istringstream is(token.substr(prefix.size()));
  std::size_t n = 0;
  is >> n;
  TS_REQUIRE(static_cast<bool>(is), "malformed stream-state token: " + token);
  return n;
}

}  // namespace

std::string PaperGreedyPolicy::stream_state() const {
  std::ostringstream os;
  os << "rot:" << rotation_;
  return os.str();
}

void PaperGreedyPolicy::restore_stream_state(const std::string& state) {
  rotation_ = counter_from_token(state, "rot");
}

std::string RandomLeafPolicy::stream_state() const { return rng_token(rng_); }

void RandomLeafPolicy::restore_stream_state(const std::string& state) {
  rng_ = rng_from_token(state);
}

std::string RoundRobinPolicy::stream_state() const {
  std::ostringstream os;
  os << "rr:" << next_;
  return os.str();
}

void RoundRobinPolicy::restore_stream_state(const std::string& state) {
  next_ = counter_from_token(state, "rr");
}

std::string TwoChoicePolicy::stream_state() const { return rng_token(rng_); }

void TwoChoicePolicy::restore_stream_state(const std::string& state) {
  rng_ = rng_from_token(state);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<sim::AssignmentPolicy> make_policy(const std::string& name,
                                                   const Instance& instance,
                                                   double eps,
                                                   std::uint64_t seed) {
  if (name == "paper") return std::make_unique<PaperGreedyPolicy>(eps);
  if (name == "closest") return std::make_unique<ClosestLeafPolicy>();
  if (name == "random") return std::make_unique<RandomLeafPolicy>(seed);
  if (name == "round-robin") return std::make_unique<RoundRobinPolicy>();
  if (name == "least-volume") return std::make_unique<LeastVolumePolicy>();
  if (name == "least-count") return std::make_unique<LeastCountPolicy>();
  if (name == "two-choice") return std::make_unique<TwoChoicePolicy>(seed);
  if (name == "fault-greedy") return std::make_unique<FaultAwareGreedy>(eps);
  if (name == "broomstick-mirror")
    return std::make_unique<BroomstickMirrorPolicy>(instance, eps);
  throw std::invalid_argument("unknown policy: " + name);
}

bool is_known_policy(const std::string& name) {
  static const char* const kNames[] = {
      "paper",       "closest",    "random",     "round-robin", "least-volume",
      "least-count", "two-choice", "fault-greedy", "broomstick-mirror"};
  for (const char* const n : kNames)
    if (name == n) return true;
  return false;
}

}  // namespace treesched::algo
