#include "treesched/algo/policies.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "treesched/algo/general_tree.hpp"
#include "treesched/util/assert.hpp"

namespace treesched::algo {

// ---------------------------------------------------------------------------
// PaperGreedyPolicy
// ---------------------------------------------------------------------------

PaperGreedyPolicy::PaperGreedyPolicy(double eps)
    : PaperGreedyPolicy(eps, 6.0 / (eps * eps)) {}

PaperGreedyPolicy::PaperGreedyPolicy(double eps, double depth_penalty_coeff,
                                     TieBreak tie_break)
    : eps_(eps), penalty_(depth_penalty_coeff), tie_break_(tie_break) {
  TS_REQUIRE(eps > 0.0, "eps must be positive");
  TS_REQUIRE(depth_penalty_coeff >= 0.0, "penalty must be non-negative");
}

double PaperGreedyPolicy::F(const sim::Engine& engine, const Job& job,
                            NodeId leaf) {
  const Tree& tree = engine.tree();
  const NodeId rc = tree.root_child_of(leaf);
  // S_{R(v),j} includes the arriving job itself (full size), the queued
  // higher-priority volume, and one p_j per queued strictly-larger job.
  return engine.higher_priority_remaining(rc, job.size, job.release, job.id) +
         job.size +
         job.size * engine.count_larger(rc, job.size);
}

double PaperGreedyPolicy::F_prime(const sim::Engine& engine, const Job& job,
                                  NodeId leaf) {
  if (engine.instance().model() == EndpointModel::kIdentical) return 0.0;
  const double p_jv = engine.size_on(job.id, leaf);
  return engine.higher_priority_remaining(leaf, p_jv, job.release, job.id) +
         p_jv +
         p_jv * engine.larger_residual_fraction(leaf, p_jv);
}

double PaperGreedyPolicy::assignment_cost(const sim::Engine& engine,
                                          const Job& job, NodeId leaf) const {
  const Tree& tree = engine.tree();
  const double depth_penalty = penalty_ * tree.d(leaf) * job.size;
  return F(engine, job, leaf) + F_prime(engine, job, leaf) + depth_penalty;
}

NodeId PaperGreedyPolicy::assign(const sim::Engine& engine, const Job& job) {
  double best = std::numeric_limits<double>::infinity();
  NodeId best_leaf = kInvalidNode;
  std::vector<NodeId> tied;
  for (const NodeId v : engine.tree().leaves()) {
    const double cost = assignment_cost(engine, job, v);
    const double tol =
        best_leaf == kInvalidNode ? 0.0 : 1e-9 * std::max(1.0, std::fabs(best));
    if (best_leaf == kInvalidNode || cost < best - tol) {
      best = cost;
      best_leaf = v;
      tied.clear();
      tied.push_back(v);
    } else if (tie_break_ == TieBreak::kRotate && cost <= best + tol) {
      tied.push_back(v);
    }
  }
  TS_CHECK(best_leaf != kInvalidNode, "no leaf to assign to");
  if (tie_break_ == TieBreak::kRotate && tied.size() > 1)
    return tied[rotation_++ % tied.size()];
  return best_leaf;
}

// ---------------------------------------------------------------------------
// FaultAwareGreedy
// ---------------------------------------------------------------------------

NodeId FaultAwareGreedy::best_live_leaf(const sim::Engine& engine,
                                        const Job& job) const {
  double best = std::numeric_limits<double>::infinity();
  NodeId best_leaf = kInvalidNode;
  for (const NodeId v : engine.tree().leaves()) {
    if (engine.node_down(v)) continue;
    const double cost = greedy_.assignment_cost(engine, job, v);
    if (cost < best) {
      best = cost;
      best_leaf = v;
    }
  }
  TS_REQUIRE(best_leaf != kInvalidNode,
             "fault-greedy: every machine is down at assignment time");
  return best_leaf;
}

NodeId FaultAwareGreedy::assign(const sim::Engine& engine, const Job& job) {
  return best_live_leaf(engine, job);
}

NodeId FaultAwareGreedy::reassign(const sim::Engine& engine, JobId job,
                                  NodeId /*dead_leaf*/) {
  return best_live_leaf(engine, engine.instance().job(job));
}

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

NodeId ClosestLeafPolicy::assign(const sim::Engine& engine, const Job& job) {
  double best = std::numeric_limits<double>::infinity();
  NodeId best_leaf = kInvalidNode;
  for (const NodeId v : engine.tree().leaves()) {
    const double cost = engine.instance().path_processing_time(job.id, v);
    if (cost < best) {
      best = cost;
      best_leaf = v;
    }
  }
  return best_leaf;
}

RandomLeafPolicy::RandomLeafPolicy(std::uint64_t seed) : rng_(seed) {}

NodeId RandomLeafPolicy::assign(const sim::Engine& engine, const Job&) {
  const auto& leaves = engine.tree().leaves();
  return leaves[static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(leaves.size()) - 1))];
}

NodeId RoundRobinPolicy::assign(const sim::Engine& engine, const Job&) {
  const auto& leaves = engine.tree().leaves();
  const NodeId v = leaves[next_ % leaves.size()];
  ++next_;
  return v;
}

NodeId LeastVolumePolicy::assign(const sim::Engine& engine, const Job& job) {
  double best = std::numeric_limits<double>::infinity();
  NodeId best_leaf = kInvalidNode;
  for (const NodeId v : engine.tree().leaves()) {
    const NodeId rc = engine.tree().root_child_of(v);
    double vol = engine.instance().path_processing_time(job.id, v);
    for (const JobId i : engine.queue_at(rc)) vol += engine.remaining_on(i, rc);
    for (const JobId i : engine.queue_at(v)) vol += engine.remaining_on(i, v);
    if (vol < best) {
      best = vol;
      best_leaf = v;
    }
  }
  return best_leaf;
}

NodeId LeastCountPolicy::assign(const sim::Engine& engine, const Job&) {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  int best_depth = std::numeric_limits<int>::max();
  NodeId best_leaf = kInvalidNode;
  for (const NodeId v : engine.tree().leaves()) {
    const NodeId rc = engine.tree().root_child_of(v);
    const std::size_t count = engine.queue_size(rc) + engine.queue_size(v);
    const int depth = engine.tree().d(v);
    if (count < best || (count == best && depth < best_depth)) {
      best = count;
      best_depth = depth;
      best_leaf = v;
    }
  }
  return best_leaf;
}

TwoChoicePolicy::TwoChoicePolicy(std::uint64_t seed) : rng_(seed) {}

double TwoChoicePolicy::volume_cost(const sim::Engine& engine, const Job& job,
                                    NodeId leaf) const {
  double vol = engine.instance().path_processing_time(job.id, leaf);
  const NodeId rc = engine.tree().root_child_of(leaf);
  for (const JobId i : engine.queue_at(rc)) vol += engine.remaining_on(i, rc);
  for (const JobId i : engine.queue_at(leaf))
    vol += engine.remaining_on(i, leaf);
  return vol;
}

NodeId TwoChoicePolicy::assign(const sim::Engine& engine, const Job& job) {
  const auto& leaves = engine.tree().leaves();
  const auto pick = [&]() {
    return leaves[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(leaves.size()) - 1))];
  };
  const NodeId a = pick();
  const NodeId b = pick();
  if (a == b) return a;
  return volume_cost(engine, job, a) <= volume_cost(engine, job, b) ? a : b;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<sim::AssignmentPolicy> make_policy(const std::string& name,
                                                   const Instance& instance,
                                                   double eps,
                                                   std::uint64_t seed) {
  if (name == "paper") return std::make_unique<PaperGreedyPolicy>(eps);
  if (name == "closest") return std::make_unique<ClosestLeafPolicy>();
  if (name == "random") return std::make_unique<RandomLeafPolicy>(seed);
  if (name == "round-robin") return std::make_unique<RoundRobinPolicy>();
  if (name == "least-volume") return std::make_unique<LeastVolumePolicy>();
  if (name == "least-count") return std::make_unique<LeastCountPolicy>();
  if (name == "two-choice") return std::make_unique<TwoChoicePolicy>(seed);
  if (name == "fault-greedy") return std::make_unique<FaultAwareGreedy>(eps);
  if (name == "broomstick-mirror")
    return std::make_unique<BroomstickMirrorPolicy>(instance, eps);
  throw std::invalid_argument("unknown policy: " + name);
}

bool is_known_policy(const std::string& name) {
  static const char* const kNames[] = {
      "paper",       "closest",    "random",     "round-robin", "least-volume",
      "least-count", "two-choice", "fault-greedy", "broomstick-mirror"};
  for (const char* const n : kNames)
    if (name == n) return true;
  return false;
}

}  // namespace treesched::algo
