// treesched_lint — project-specific determinism & model-invariant analyzer.
//
// Rules pattern-match over util::lex token streams; there is no libclang or
// type information. Each rule therefore states a *syntactic discipline* the
// codebase commits to (route id casts through uidx(), route FP accumulation
// through util::CompensatedSum, never read wall clocks outside util/, ...)
// chosen so that honoring the discipline implies the semantic guarantee and
// violating the guarantee is impossible without tripping the syntax.
//
// Suppression: a finding is suppressed by a comment trailing its own line,
// or standing alone directly above the statement it excuses (the annotation
// then covers that whole statement, through its ';' or opening '{'):
//
//   // treesched-lint: allow(<rule-id>): <justification>
//
// The justification is mandatory; an allow() without one is itself reported
// (rule `lint-bad-suppression`) so suppressions cannot silently accumulate.
// Suppressed findings stay in the JSON report with their justification — the
// CI gate fails only on unsuppressed ones.
//
// See docs/LINTING.md for the rule catalogue and the rationale linking each
// rule to the determinism / model guarantee it protects.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "treesched/util/lexer.hpp"

namespace treesched::lint {

enum class Severity : std::uint8_t { kWarning, kError };

const char* severity_name(Severity s);

struct Finding {
  std::string rule;       ///< rule id, e.g. "det-wallclock"
  Severity severity = Severity::kError;
  std::string file;       ///< path as scanned ('/'-separated, root-relative)
  int line = 0;
  int col = 0;
  std::string message;
  bool suppressed = false;
  std::string justification;  ///< non-empty iff suppressed
};

struct RuleInfo {
  const char* id;
  Severity severity;
  const char* summary;  ///< one line; the full rationale lives in LINTING.md
};

/// The rule catalogue, in stable report order.
const std::vector<RuleInfo>& rule_catalogue();

/// Lints one in-memory file. `path` should be the root-relative path with
/// '/' separators — rules use it for scoping (util/ timing-shim exemption,
/// stats//sim FP-accumulation scope, metrics.hpp audit-reference scope).
std::vector<Finding> lint_source(std::string_view source,
                                 const std::string& path);

struct Report {
  std::vector<Finding> findings;  ///< sorted by (file, line, col, rule)
  std::size_t files_scanned = 0;

  std::size_t unsuppressed_count() const;
  std::size_t suppressed_count() const {
    return findings.size() - unsuppressed_count();
  }
  std::map<std::string, std::size_t> by_rule() const;
};

/// Lints every .hpp/.cpp under `root`/<dirs...>, recursively, in
/// byte-lexicographic path order (the report is stable across platforms and
/// directory-enumeration orders). Throws std::runtime_error if a directory
/// cannot be read.
Report lint_tree(const std::string& root, const std::vector<std::string>& dirs);

/// Human-readable findings table (suppressed entries shown only on request).
std::string report_table(const Report& report, bool show_suppressed);

/// The stable machine-readable report, schema "treesched-lint-v1".
std::string report_json(const Report& report);

}  // namespace treesched::lint
