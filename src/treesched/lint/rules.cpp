// Rule matchers for treesched_lint. Every rule works on the util::lex token
// stream of a single file; cross-file state is deliberately avoided so a
// finding is always explainable by the file it points at.
#include <algorithm>
#include <cctype>

#include "treesched/lint/lint.hpp"
#include "treesched/util/string_util.hpp"

namespace treesched::lint {

namespace {

using util::LexedFile;
using util::TokKind;
using util::Token;

// ---------------------------------------------------------------------------
// Shared matching helpers
// ---------------------------------------------------------------------------

/// Code view: identifiers / numbers / strings / chars / puncts only.
/// Comments and directives are routed to the rules that want them.
struct FileCtx {
  const std::string& path;
  std::vector<Token> code;
  std::vector<Token> comments;
  std::vector<Token> directives;
  std::vector<Finding>* out;

  void report(const char* rule, Severity sev, int line, int col,
              std::string message) const {
    out->push_back(Finding{rule, sev, path, line, col, std::move(message),
                           false, std::string()});
  }

  bool in_dir(const char* prefix) const {
    return util::starts_with(path, prefix);
  }
};

bool ident_at(const std::vector<Token>& t, std::size_t i,
              std::string_view text) {
  return i < t.size() && util::is_ident(t[i], text);
}

bool punct_at(const std::vector<Token>& t, std::size_t i,
              std::string_view text) {
  return i < t.size() && util::is_punct(t[i], text);
}

/// Index just past the parenthesized group opening at `open` (which must
/// point at a "(" / "<" / "{" token); tolerates truncated files by stopping
/// at end. For "<" the match is textual, so shift operators inside template
/// args would confuse it — acceptable for the declarations these rules scan.
std::size_t match_close(const std::vector<Token>& t, std::size_t open,
                        const char* open_text, const char* close_text) {
  const bool angle = close_text[0] == '>';
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (punct_at(t, i, open_text)) {
      ++depth;
    } else if (angle && punct_at(t, i, ">>")) {
      // Maximal munch folds two template closers into one shift token.
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (punct_at(t, i, close_text) && --depth == 0) {
      return i + 1;
    }
  }
  return t.size();
}

/// Splits snake_case / camelCase identifiers into lower-case words.
std::vector<std::string> ident_words(const std::string& s) {
  std::vector<std::string> words;
  std::string cur;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '_') {
      if (!cur.empty()) words.push_back(cur);
      cur.clear();
      continue;
    }
    if (std::isupper(static_cast<unsigned char>(c)) && !cur.empty() &&
        !std::isupper(static_cast<unsigned char>(cur.back()))) {
      words.push_back(cur);
      cur.clear();
    }
    cur.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  if (!cur.empty()) words.push_back(cur);
  return words;
}

// ---------------------------------------------------------------------------
// det-wallclock — wall-clock and libc entropy reads outside util/ shims
// ---------------------------------------------------------------------------
//
// Guarantee protected: schedules, logs, and JSON documents depend only on
// (trace, seed, config) — never on when or how fast the run executed. Any
// wall-clock read in a scheduling path is a nondeterminism foothold even if
// "only used for logging" today. Timing lives behind util::Stopwatch, and
// wall-clock-driven control flow (pool gather deadlines) must carry an
// explicit suppression explaining why the clock cannot reach the output.

void rule_det_wallclock(const FileCtx& ctx) {
  if (ctx.in_dir("src/treesched/util/")) return;  // the shims themselves
  static const char* kCalls[] = {"time",          "clock",  "rand",
                                 "srand",         "random", "gettimeofday",
                                 "clock_gettime", "localtime", "gmtime"};
  const auto& t = ctx.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    if (t[i].text == "random_device") {
      ctx.report("det-wallclock", Severity::kError, t[i].line, t[i].col,
                 "std::random_device is environmental entropy; seed "
                 "util::Rng via util::split_seed instead");
      continue;
    }
    const bool called = punct_at(t, i + 1, "(");
    if (!called) continue;
    // Only namespace-qualified ::now() is a wall-clock read; `engine.now()`
    // and friends are *simulation* time (member calls on project types).
    if (t[i].text == "now" && i > 0 && punct_at(t, i - 1, "::")) {
      ctx.report("det-wallclock", Severity::kError, t[i].line, t[i].col,
                 "clock ::now() read outside util/ timing shims; use "
                 "util::Stopwatch or keep wall time out of this path");
      continue;
    }
    for (const char* name : kCalls) {
      if (t[i].text != name) continue;
      // `x.time(...)` / `obj->clock(...)` are member calls on project types,
      // not the libc functions.
      if (i > 0 && (punct_at(t, i - 1, ".") || punct_at(t, i - 1, "->")))
        break;
      ctx.report("det-wallclock", Severity::kError, t[i].line, t[i].col,
                 std::string(name) +
                     "() reads ambient time/entropy; derive everything "
                     "from the trace and the seed");
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// det-raw-rng — std <random> engines/distributions instead of util::Rng
// ---------------------------------------------------------------------------
//
// Guarantee protected: bit-identical workloads across standard libraries.
// std::mt19937 output is portable but std::*_distribution is not, and any
// direct engine seeding bypasses the util::split_seed stream discipline that
// makes results independent of thread count and call order.

void rule_det_raw_rng(const FileCtx& ctx) {
  static const char* kBanned[] = {
      "mt19937",        "mt19937_64",      "minstd_rand",
      "minstd_rand0",   "ranlux24",        "ranlux48",
      "knuth_b",        "default_random_engine",
      "uniform_int_distribution",  "uniform_real_distribution",
      "normal_distribution",       "bernoulli_distribution",
      "exponential_distribution",  "poisson_distribution",
      "discrete_distribution",     "piecewise_constant_distribution"};
  for (const Token& tok : ctx.code) {
    if (tok.kind != TokKind::kIdentifier) continue;
    for (const char* name : kBanned)
      if (tok.text == name) {
        ctx.report("det-raw-rng", Severity::kError, tok.line, tok.col,
                   "std::" + tok.text +
                       " bypasses util::Rng / util::split_seed; its "
                       "streams are not reproducible across platforms "
                       "or thread counts");
        break;
      }
  }
}

// ---------------------------------------------------------------------------
// det-unordered-iter — address-ordered iteration in emitting TUs
// ---------------------------------------------------------------------------
//
// Guarantee protected: byte-identical run logs / JSON / metrics. Iterating
// a std::unordered_* container (hash order) or a pointer-keyed ordered
// container (address order) in a translation unit that emits output lets an
// allocator decision reorder emitted lines. The TU gate keeps purely
// internal hash-map use (none today) out of scope.

bool emits_output(const FileCtx& ctx) {
  static const char* kMarkers[] = {"RunLog",   "run_log", "Recorder",
                                   "recorder", "Metrics", "metrics"};
  for (const Token& tok : ctx.code) {
    if (tok.kind == TokKind::kIdentifier) {
      for (const char* m : kMarkers)
        if (tok.text == m) return true;
      if (tok.text.find("json") != std::string::npos ||
          tok.text.find("Json") != std::string::npos)
        return true;
    }
    if (tok.kind == TokKind::kString &&
        (tok.text.find("schema") != std::string::npos ||
         tok.text.find("json") != std::string::npos))
      return true;
  }
  return false;
}

void rule_det_unordered_iter(const FileCtx& ctx) {
  if (!emits_output(ctx)) return;
  const auto& t = ctx.code;

  // Names declared with an unordered type in this file.
  std::vector<std::string> unordered_vars;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier ||
        !util::starts_with(t[i].text, "unordered_"))
      continue;
    if (!punct_at(t, i + 1, "<")) continue;
    const std::size_t past = match_close(t, i + 1, "<", ">");
    if (past < t.size() && t[past].kind == TokKind::kIdentifier)
      unordered_vars.push_back(t[past].text);

    // Pointer-keyed check applies to the unordered containers too, but hash
    // order is already flagged wholesale below, so no extra finding here.
  }

  for (std::size_t i = 0; i < t.size(); ++i) {
    // Pointer-keyed ordered containers: std::map<T*, ...> / std::set<T*>.
    if (t[i].kind == TokKind::kIdentifier &&
        (t[i].text == "map" || t[i].text == "set" ||
         t[i].text == "multimap" || t[i].text == "multiset") &&
        i >= 2 && punct_at(t, i - 1, "::") && ident_at(t, i - 2, "std") &&
        punct_at(t, i + 1, "<")) {
      const bool is_map = t[i].text == "map" || t[i].text == "multimap";
      const std::size_t past = match_close(t, i + 1, "<", ">");
      int depth = 0;
      for (std::size_t k = i + 1; k < past; ++k) {
        if (punct_at(t, k, "<")) ++depth;
        if (punct_at(t, k, ">")) --depth;
        if (is_map && depth == 1 && punct_at(t, k, ",")) break;
        if (depth == 1 && punct_at(t, k, "*")) {
          ctx.report("det-unordered-iter", Severity::kError, t[i].line,
                     t[i].col,
                     "pointer-keyed std::" + t[i].text +
                         " iterates in address order in a TU that emits "
                         "output; key by NodeId/JobId instead");
          break;
        }
      }
    }

    // Iteration over a tracked unordered variable or an inline unordered
    // expression: any for-statement whose parenthesized head mentions one.
    if (!ident_at(t, i, "for") || !punct_at(t, i + 1, "(")) continue;
    const std::size_t past = match_close(t, i + 1, "(", ")");
    for (std::size_t k = i + 2; k + 1 < past; ++k) {
      const bool inline_unordered =
          t[k].kind == TokKind::kIdentifier &&
          util::starts_with(t[k].text, "unordered_");
      const bool tracked =
          t[k].kind == TokKind::kIdentifier &&
          std::find(unordered_vars.begin(), unordered_vars.end(), t[k].text) !=
              unordered_vars.end();
      if (inline_unordered || tracked) {
        ctx.report("det-unordered-iter", Severity::kError, t[i].line,
                   t[i].col,
                   "iteration over hash-ordered container '" + t[k].text +
                       "' in a TU that emits output; use a vector or an "
                       "id-keyed ordered container");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// inv-raw-id-cast — id/time narrowing that bypasses uidx()
// ---------------------------------------------------------------------------
//
// Guarantee protected: NodeId/JobId/Time conversions stay funneled through
// the one helper that documents (and under -Wsign-conversion, checks) the
// non-negativity contract. A stray static_cast<size_t>(id) compiles the day
// id is -1 (kInvalidNode) and silently indexes with 2^64-1.

bool is_int_family_type(const std::vector<Token>& t, std::size_t from,
                        std::size_t to) {
  std::vector<std::string> parts;
  for (std::size_t i = from; i < to; ++i)
    if (t[i].kind == TokKind::kIdentifier) parts.push_back(t[i].text);
  if (parts.empty()) return false;
  if (parts.back() == "size_t" || parts.back() == "ptrdiff_t") return true;
  static const char* kInts[] = {"int",      "unsigned", "long",
                                "short",    "int8_t",   "int16_t",
                                "int32_t",  "int64_t",  "uint8_t",
                                "uint16_t", "uint32_t", "uint64_t"};
  for (const std::string& p : parts) {
    bool known = p == "std" || p == "signed" || p == "const";
    for (const char* k : kInts) known = known || p == k;
    if (!known) return false;
  }
  return true;
}

bool is_id_evidence(const std::string& ident) {
  static const char* kWholeWords[] = {
      "id",     "node",   "job",      "leaf",     "parent",
      "child",  "src",    "dst",      "source",   "target",
      "assignee", "machine", "completion", "release", "deadline",
      "makespan"};
  if (ident.size() > 2) {
    if (ident.size() >= 3 && ident.compare(ident.size() - 3, 3, "_id") == 0)
      return true;
    if (ident.compare(ident.size() - 2, 2, "Id") == 0) return true;
  }
  const std::vector<std::string> words = ident_words(ident);
  // Counts over id spaces (node_count and friends) share the id types'
  // contract, so they route through uidx() as well.
  if (words.size() == 2 && words[1] == "count") {
    for (const char* w : {"node", "job", "leaf", "machine"})
      if (words[0] == w) return true;
  }
  if (words.size() != 1) return false;
  for (const char* w : kWholeWords)
    if (words[0] == w) return true;
  return false;
}

void rule_inv_raw_id_cast(const FileCtx& ctx) {
  const auto& t = ctx.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!ident_at(t, i, "static_cast") || !punct_at(t, i + 1, "<")) continue;
    const std::size_t type_end = match_close(t, i + 1, "<", ">");
    if (!is_int_family_type(t, i + 2, type_end - 1)) continue;
    if (!punct_at(t, type_end, "(")) continue;
    const std::size_t arg_end = match_close(t, type_end, "(", ")");
    for (std::size_t k = type_end + 1; k + 1 < arg_end; ++k) {
      if (t[k].kind != TokKind::kIdentifier || !is_id_evidence(t[k].text))
        continue;
      // In a member chain the *last* name is the value being cast:
      // `job.size` is a size (fine), `job.id` is an id (flagged). An
      // identifier followed by . or -> defers judgment to its member.
      if (k + 1 < arg_end &&
          (punct_at(t, k + 1, ".") || punct_at(t, k + 1, "->")))
        continue;
      ctx.report("inv-raw-id-cast", Severity::kError, t[i].line, t[i].col,
                 "raw integral cast of id/time value '" + t[k].text +
                     "'; route through uidx() (core/types.hpp) so the "
                     "non-negativity contract stays visible");
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// inv-fp-accum — naive FP accumulation loops in stats/ and sim/
// ---------------------------------------------------------------------------
//
// Guarantee protected: aggregate metrics keep their precision independent of
// summand order and magnitude spread. `double total; for (...) total += x;`
// loses low-order bits exactly where the lemma-margin comparisons are
// tightest; util::CompensatedSum (util/csum.hpp) is the designated helper.
// Hot-path aggregates whose byte-exact current behaviour is load-bearing
// (golden schedules) carry explicit suppressions instead.

void rule_inv_fp_accum(const FileCtx& ctx) {
  if (!ctx.in_dir("src/treesched/stats/") && !ctx.in_dir("src/treesched/sim/"))
    return;
  const auto& t = ctx.code;

  // Locals declared `double NAME ...` (not parameters: a parameter's `double`
  // is preceded by '(' or ',' — ignoring const, which rarely prefixes an
  // accumulator anyway).
  std::vector<std::string> fp_locals;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!ident_at(t, i, "double") && !ident_at(t, i, "float")) continue;
    if (i > 0 && (punct_at(t, i - 1, "(") || punct_at(t, i - 1, ",")))
      continue;
    if (t[i + 1].kind == TokKind::kIdentifier &&
        (punct_at(t, i + 2, "=") || punct_at(t, i + 2, "{") ||
         punct_at(t, i + 2, ";")))
      fp_locals.push_back(t[i + 1].text);
  }
  if (fp_locals.empty()) return;

  // `NAME += ...` anywhere lexically inside a for-statement body.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!ident_at(t, i, "for") || !punct_at(t, i + 1, "(")) continue;
    const std::size_t head_end = match_close(t, i + 1, "(", ")");
    std::size_t body_end;
    if (punct_at(t, head_end, "{")) {
      body_end = match_close(t, head_end, "{", "}");
    } else {  // single-statement body: up to the terminating ';'
      body_end = head_end;
      while (body_end < t.size() && !punct_at(t, body_end, ";")) ++body_end;
    }
    for (std::size_t k = head_end; k + 1 < body_end; ++k) {
      if (t[k].kind != TokKind::kIdentifier || !punct_at(t, k + 1, "+="))
        continue;
      if (std::find(fp_locals.begin(), fp_locals.end(), t[k].text) ==
          fp_locals.end())
        continue;
      // `agg.work +=` writes a member that merely shares a local's name;
      // the rule tracks declared locals only.
      if (k > 0 && (punct_at(t, k - 1, ".") || punct_at(t, k - 1, "->")))
        continue;
      ctx.report("inv-fp-accum", Severity::kWarning, t[k].line, t[k].col,
                 "naive `" + t[k].text +
                     " +=` accumulation in a loop; use "
                     "util::CompensatedSum (util/csum.hpp) or suppress "
                     "with the reason the exact current rounding is "
                     "load-bearing");
    }
  }
}

// ---------------------------------------------------------------------------
// inv-metrics-audit-ref — serialized Metrics accessors must name their audit
// ---------------------------------------------------------------------------
//
// Guarantee protected: every number Metrics exposes (and the CLIs serialize)
// is cross-checkable by treesched_audit, which recomputes from the run log
// without trusting engine state. The accessor's doc comment must carry an
// `audit:` tag naming the audit rule that covers it — or `audit: none(...)`
// with the reason no independent check exists. The tag is how the
// metrics <-> audit correspondence stays written down next to the code.

void rule_inv_metrics_audit_ref(const FileCtx& ctx) {
  if (ctx.path.find("sim/metrics.hpp") == std::string::npos) return;
  const auto& t = ctx.code;

  // Locate `class Metrics { ... };`
  std::size_t body_begin = t.size(), body_end = t.size();
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (ident_at(t, i, "class") && ident_at(t, i + 1, "Metrics") &&
        punct_at(t, i + 2, "{")) {
      body_begin = i + 2;
      body_end = match_close(t, i + 2, "{", "}");
      break;
    }
  }

  int depth = 0;
  for (std::size_t i = body_begin; i < body_end; ++i) {
    if (punct_at(t, i, "{")) ++depth;
    if (punct_at(t, i, "}")) --depth;
    if (depth != 1) continue;
    // Accessor declarations: `double name(` or `std::size_t name(`.
    std::size_t name_i = 0;
    if (ident_at(t, i, "double") && i + 1 < body_end &&
        t[i + 1].kind == TokKind::kIdentifier && punct_at(t, i + 2, "(")) {
      name_i = i + 1;
    } else if (ident_at(t, i, "size_t") && i + 1 < body_end &&
               t[i + 1].kind == TokKind::kIdentifier &&
               punct_at(t, i + 2, "(")) {
      name_i = i + 1;
    }
    if (name_i == 0) continue;

    const int decl_line = t[name_i].line;
    bool tagged = false;
    for (const Token& c : ctx.comments) {
      if (c.line >= decl_line - 6 && c.line < decl_line &&
          c.text.find("audit:") != std::string::npos) {
        tagged = true;
        break;
      }
    }
    if (!tagged)
      ctx.report("inv-metrics-audit-ref", Severity::kError, decl_line,
                 t[name_i].col,
                 "Metrics::" + t[name_i].text +
                     "() is serialized by the CLIs but its doc comment "
                     "names no `audit:` rule (use `audit: none(<why>)` if "
                     "no independent check exists)");
  }
}

// ---------------------------------------------------------------------------
// hyg-pragma-once — headers must be include-guarded
// ---------------------------------------------------------------------------

void rule_hyg_pragma_once(const FileCtx& ctx) {
  if (ctx.path.size() < 4 ||
      ctx.path.compare(ctx.path.size() - 4, 4, ".hpp") != 0)
    return;
  for (std::size_t i = 0; i < ctx.directives.size(); ++i) {
    const Token& d = ctx.directives[i];
    if (util::starts_with(d.text, "pragma once")) return;
    if (util::starts_with(d.text, "ifndef") &&
        i + 1 < ctx.directives.size() &&
        util::starts_with(ctx.directives[i + 1].text, "define"))
      return;
  }
  ctx.report("hyg-pragma-once", Severity::kError, 1, 1,
             "header has neither `#pragma once` nor an include guard");
}

// ---------------------------------------------------------------------------
// hyg-todo-ref — TODOs must reference an issue
// ---------------------------------------------------------------------------

void rule_hyg_todo_ref(const FileCtx& ctx) {
  // Only a TODO that *leads* a comment line is a marker; prose mentioning
  // the word ("... and TODO markers ...") is not actionable and stays quiet.
  for (const Token& c : ctx.comments) {
    int line = c.line;
    std::size_t start = 0;
    while (start <= c.text.size()) {
      std::size_t end = c.text.find('\n', start);
      if (end == std::string::npos) end = c.text.size();
      std::string_view sv(c.text.data() + start, end - start);
      // Strip comment decoration: slashes, stars, whitespace.
      std::size_t b = 0;
      while (b < sv.size() &&
             (sv[b] == '/' || sv[b] == '*' || sv[b] == ' ' || sv[b] == '\t'))
        ++b;
      sv.remove_prefix(b);
      if (sv.substr(0, 4) == "TODO" &&
          sv.substr(0, 6) != "TODO(#" && sv.substr(0, 10) != "TODO(issue") {
        ctx.report("hyg-todo-ref", Severity::kWarning, line, c.col,
                   "TODO without an issue reference; write TODO(#123) or "
                   "TODO(issue-slug) so it stays actionable");
      }
      if (end == c.text.size()) break;
      start = end + 1;
      ++line;
    }
  }
}

// ---------------------------------------------------------------------------
// hyg-assert-side-effect — mutations inside assertion conditions
// ---------------------------------------------------------------------------
//
// TS_REQUIRE/TS_CHECK are always-on, so a side effect merely reads badly;
// plain assert() compiles out under NDEBUG and a side effect changes release
// behaviour. Both are flagged: the condition of an assertion must be a pure
// expression.

void rule_hyg_assert_side_effect(const FileCtx& ctx) {
  const auto& t = ctx.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const bool is_assert = ident_at(t, i, "assert");
    const bool is_ts =
        ident_at(t, i, "TS_REQUIRE") || ident_at(t, i, "TS_CHECK");
    if ((!is_assert && !is_ts) || !punct_at(t, i + 1, "(")) continue;
    const std::size_t close = match_close(t, i + 1, "(", ")");
    // For TS_* only the first argument is the condition (the second is the
    // message, where `<<`-free string building may legitimately assign).
    std::size_t cond_end = close - 1;
    if (is_ts) {
      int depth = 0;
      for (std::size_t k = i + 1; k < close; ++k) {
        if (punct_at(t, k, "(")) ++depth;
        if (punct_at(t, k, ")")) --depth;
        if (depth == 1 && punct_at(t, k, ",")) {
          cond_end = k;
          break;
        }
      }
    }
    for (std::size_t k = i + 2; k < cond_end; ++k) {
      if (punct_at(t, k, "++") || punct_at(t, k, "--") ||
          punct_at(t, k, "=") || punct_at(t, k, "+=") ||
          punct_at(t, k, "-=") || punct_at(t, k, "*=") ||
          punct_at(t, k, "/=")) {
        ctx.report("hyg-assert-side-effect", Severity::kError, t[k].line,
                   t[k].col,
                   "side effect ('" + t[k].text + "') inside " + t[i].text +
                       " condition; assertions must be pure");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// det-sketch-merge — order-sensitive sketch merge outside stats/
// ---------------------------------------------------------------------------
//
// Guarantee protected: quantile sketches produce identical bytes regardless
// of how work was parallelized. QuantileDigest::absorb_unordered folds its
// argument in call order, so two threads merging partials in completion
// order yield different centroids run to run. Every call site outside the
// sketch implementation itself must route through
// stats::merge_deterministic(), which fixes the fold order to the caller's
// index order.

void rule_det_sketch_merge(const FileCtx& ctx) {
  if (ctx.in_dir("src/treesched/stats/")) return;  // the implementation
  const auto& t = ctx.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    if (t[i].text != "absorb_unordered") continue;
    if (!punct_at(t, i + 1, "(")) continue;
    ctx.report("det-sketch-merge", Severity::kError, t[i].line, t[i].col,
               "absorb_unordered() is order-sensitive; merge sketches via "
               "stats::merge_deterministic() so the fold order is fixed");
  }
}

// ---------------------------------------------------------------------------
// perf-engine-hot-container — node-per-element containers in the engine
// ---------------------------------------------------------------------------
//
// Guarantee protected: the engine hot path stays allocation-free in steady
// state. PR9 replaced the engine's std::priority_queue event queue with the
// calendar queue (event_queue.hpp) and the per-node std::set availability
// sets with pooled flat heaps; a std::set or std::priority_queue declaration
// creeping back into sim/engine re-introduces a node allocation per insert
// on the path the 8x fast/slow perf gate measures. Deliberate exceptions
// (e.g. the inflight sets whose ordered iteration IS the public contract)
// carry explicit suppressions with the reason the container choice is
// load-bearing.

void rule_perf_engine_hot_container(const FileCtx& ctx) {
  if (ctx.path.find("sim/engine") == std::string::npos) return;
  const auto& t = ctx.code;
  for (std::size_t i = 2; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier ||
        (t[i].text != "set" && t[i].text != "priority_queue"))
      continue;
    if (!punct_at(t, i - 1, "::") || !ident_at(t, i - 2, "std") ||
        !punct_at(t, i + 1, "<"))
      continue;
    ctx.report("perf-engine-hot-container", Severity::kError, t[i].line,
               t[i].col,
               "std::" + t[i].text +
                   " in the engine allocates per element on the hot path; "
                   "use EventQueue / the pooled avail heaps, or suppress "
                   "with the reason this container is load-bearing");
  }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct Suppression {
  std::string rule;
  std::string justification;
  int comment_line;
  // Inclusive line range the annotation covers: its own line (trailing
  // form) or the whole next statement (standalone form).
  int target_begin;
  int target_end;
  bool used = false;
};

bool known_rule(const std::string& id) {
  for (const RuleInfo& r : rule_catalogue())
    if (id == r.id) return true;
  return false;
}

/// Parses every suppression annotation. Only a plain `//` comment whose
/// first word is the marker counts — doc text QUOTING the syntax (`///`
/// comments, mid-sentence mentions, nested `//` in examples) is prose, not
/// an annotation. Malformed annotations become lint-bad-suppression
/// findings immediately.
std::vector<Suppression> collect_suppressions(const FileCtx& ctx) {
  std::vector<Suppression> sups;
  const std::string marker = "treesched-lint:";
  for (const Token& c : ctx.comments) {
    if (!util::starts_with(c.text, "//")) continue;
    std::size_t p = 2;
    while (p < c.text.size() && c.text[p] == ' ') ++p;
    if (c.text.compare(p, marker.size(), marker) != 0) continue;
    p += marker.size();
    while (p < c.text.size() && c.text[p] == ' ') ++p;
    if (c.text.compare(p, 6, "allow(") != 0) {
      ctx.report("lint-bad-suppression", Severity::kError, c.line, c.col,
                 "unrecognized treesched-lint annotation; expected "
                 "`treesched-lint: allow(<rule-id>): <justification>`");
      continue;
    }
    p += 6;
    const std::size_t close = c.text.find(')', p);
    if (close == std::string::npos) {
      ctx.report("lint-bad-suppression", Severity::kError, c.line, c.col,
                 "unterminated allow(...) in treesched-lint annotation");
      continue;
    }
    const std::string rule = util::trim(c.text.substr(p, close - p));
    std::string just;
    std::size_t after = close + 1;
    if (after < c.text.size() && c.text[after] == ':')
      just = util::trim(c.text.substr(after + 1));
    if (!known_rule(rule)) {
      ctx.report("lint-bad-suppression", Severity::kError, c.line, c.col,
                 "allow() names unknown rule '" + rule + "'");
      continue;
    }
    if (just.empty()) {
      ctx.report("lint-bad-suppression", Severity::kError, c.line, c.col,
                 "suppression of '" + rule +
                     "' has no justification; write `allow(" + rule +
                     "): <why this is safe>`");
      continue;
    }
    // A trailing comment suppresses its own line; a comment alone on a line
    // suppresses the statement that follows it — through the line of its
    // terminating ';' or the '{' opening its body, so multi-line statements
    // (and justification text continued on further comment lines) work.
    bool trailing = false;
    for (const Token& code : ctx.code)
      if (code.line == c.line && code.col < c.col) {
        trailing = true;
        break;
      }
    int begin = c.line, end = c.line;
    if (!trailing) {
      begin = 0;
      for (const Token& code : ctx.code) {
        if (code.line <= c.line) continue;
        if (begin == 0) begin = code.line;
        end = code.line;
        if (util::is_punct(code, ";") || util::is_punct(code, "{")) break;
      }
      if (begin == 0) begin = end = c.line + 1;  // nothing follows
    }
    sups.push_back(Suppression{rule, just, c.line, begin, end});
  }
  return sups;
}

}  // namespace

const char* severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> kRules = {
      {"det-wallclock", Severity::kError,
       "wall-clock / ambient entropy read outside util/ timing shims"},
      {"det-raw-rng", Severity::kError,
       "std <random> engine or distribution instead of util::Rng"},
      {"det-unordered-iter", Severity::kError,
       "hash- or address-ordered iteration in an output-emitting TU"},
      {"det-sketch-merge", Severity::kError,
       "order-sensitive sketch merge (absorb_unordered) outside stats/"},
      {"perf-engine-hot-container", Severity::kError,
       "std::set / std::priority_queue declaration in the sim/engine hot "
       "path"},
      {"inv-raw-id-cast", Severity::kError,
       "integral cast of NodeId/JobId/time value bypassing uidx()"},
      {"inv-fp-accum", Severity::kWarning,
       "naive floating-point accumulation loop in stats/ or sim/"},
      {"inv-metrics-audit-ref", Severity::kError,
       "serialized Metrics accessor without an audit: doc reference"},
      {"hyg-pragma-once", Severity::kError,
       "header missing #pragma once / include guard"},
      {"hyg-todo-ref", Severity::kWarning,
       "TODO comment without an issue reference"},
      {"hyg-assert-side-effect", Severity::kError,
       "side effect inside assert/TS_REQUIRE/TS_CHECK condition"},
      {"lint-bad-suppression", Severity::kError,
       "malformed, unknown, or justification-free allow() annotation"},
      {"lint-stale-suppression", Severity::kWarning,
       "allow() annotation that suppresses nothing"},
  };
  return kRules;
}

std::vector<Finding> lint_source(std::string_view source,
                                 const std::string& path) {
  const LexedFile lexed = util::lex(source, path);
  std::vector<Finding> findings;
  FileCtx ctx{path, {}, {}, {}, &findings};
  for (const Token& tok : lexed.tokens) {
    if (tok.kind == TokKind::kComment)
      ctx.comments.push_back(tok);
    else if (tok.kind == TokKind::kDirective)
      ctx.directives.push_back(tok);
    else
      ctx.code.push_back(tok);
  }

  rule_det_wallclock(ctx);
  rule_det_raw_rng(ctx);
  rule_det_unordered_iter(ctx);
  rule_det_sketch_merge(ctx);
  rule_perf_engine_hot_container(ctx);
  rule_inv_raw_id_cast(ctx);
  rule_inv_fp_accum(ctx);
  rule_inv_metrics_audit_ref(ctx);
  rule_hyg_pragma_once(ctx);
  rule_hyg_todo_ref(ctx);
  rule_hyg_assert_side_effect(ctx);

  std::vector<Suppression> sups = collect_suppressions(ctx);
  for (Finding& f : findings) {
    if (f.rule == "lint-bad-suppression") continue;
    for (Suppression& s : sups) {
      if (s.rule == f.rule && f.line >= s.target_begin &&
          f.line <= s.target_end) {
        f.suppressed = true;
        f.justification = s.justification;
        s.used = true;
      }
    }
  }
  for (const Suppression& s : sups)
    if (!s.used)
      ctx.report("lint-stale-suppression", Severity::kWarning, s.comment_line,
                 1,
                 "allow(" + s.rule +
                     ") suppresses nothing in its target statement; remove "
                     "it or move it next to the finding");

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule < b.rule;
            });
  // Nested constructs can hit the same site twice (a `+=` sits in the body
  // of both an inner and an outer for); one site is one finding.
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.rule == b.rule && a.line == b.line &&
                                      a.col == b.col;
                             }),
                 findings.end());
  return findings;
}

}  // namespace treesched::lint
