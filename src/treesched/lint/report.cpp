// Tree scanning and report rendering for treesched_lint.
//
// The JSON document ("treesched-lint-v1") is the CI artifact: findings are
// sorted by (file, line, col, rule) and files are visited in
// byte-lexicographic path order, so the bytes depend only on the tree's
// contents — the same discipline the analyzer enforces on the code it scans.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "treesched/lint/lint.hpp"
#include "treesched/util/table.hpp"

namespace treesched::lint {

namespace fs = std::filesystem;

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + p.string());
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

std::size_t Report::unsuppressed_count() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [](const Finding& f) { return !f.suppressed; }));
}

std::map<std::string, std::size_t> Report::by_rule() const {
  std::map<std::string, std::size_t> counts;
  for (const Finding& f : findings) ++counts[f.rule];
  return counts;
}

Report lint_tree(const std::string& root,
                 const std::vector<std::string>& dirs) {
  Report report;
  std::vector<std::string> rel_paths;
  for (const std::string& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;  // a tree without bench/ is fine
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      rel_paths.push_back(
          fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  for (const std::string& rel : rel_paths) {
    const std::string source = read_file(fs::path(root) / rel);
    std::vector<Finding> fs_file = lint_source(source, rel);
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(fs_file.begin()),
                           std::make_move_iterator(fs_file.end()));
    ++report.files_scanned;
  }
  return report;
}

std::string report_table(const Report& report, bool show_suppressed) {
  std::ostringstream os;
  util::Table table({"severity", "rule", "location", "message"});
  std::size_t hidden = 0;
  for (const Finding& f : report.findings) {
    if (f.suppressed && !show_suppressed) {
      ++hidden;
      continue;
    }
    std::string sev = severity_name(f.severity);
    if (f.suppressed) sev += " (suppressed)";
    table.add(sev, f.rule,
              f.file + ":" + std::to_string(f.line) + ":" +
                  std::to_string(f.col),
              f.message);
  }
  if (table.row_count() > 0) os << table.str() << '\n';
  os << "treesched_lint: " << report.files_scanned << " files, "
     << report.findings.size() << " findings ("
     << report.unsuppressed_count() << " unsuppressed, "
     << report.suppressed_count() << " suppressed";
  if (hidden > 0) os << "; rerun with --show-suppressed to list them";
  os << ")\n";
  return os.str();
}

std::string report_json(const Report& report) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"treesched-lint-v1\",\n"
     << "  \"tool\": \"treesched_lint\",\n"
     << "  \"files_scanned\": " << report.files_scanned << ",\n";

  os << "  \"summary\": {\"total\": " << report.findings.size()
     << ", \"unsuppressed\": " << report.unsuppressed_count()
     << ", \"suppressed\": " << report.suppressed_count()
     << ", \"by_rule\": {";
  bool first = true;
  for (const auto& [rule, count] : report.by_rule()) {
    os << (first ? "" : ", ") << '"' << rule << "\": " << count;
    first = false;
  }
  os << "}},\n";

  os << "  \"findings\": [\n";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    os << "    {\"rule\": \"" << f.rule << "\", \"severity\": \""
       << severity_name(f.severity) << "\", \"file\": \""
       << json_escape(f.file) << "\", \"line\": " << f.line
       << ", \"col\": " << f.col << ", \"message\": \""
       << json_escape(f.message) << "\", \"suppressed\": "
       << (f.suppressed ? "true" : "false") << ", \"justification\": ";
    if (f.suppressed)
      os << '"' << json_escape(f.justification) << '"';
    else
      os << "null";
    os << "}" << (i + 1 < report.findings.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace treesched::lint
