#include "treesched/sim/runlog_segments.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>

#include "treesched/sim/run_log.hpp"
#include "treesched/util/assert.hpp"
#include "treesched/util/csum.hpp"
#include "treesched/util/failpoint.hpp"
#include "treesched/util/fs.hpp"
#include "treesched/util/hash.hpp"
#include "treesched/util/string_util.hpp"

namespace treesched::sim {

namespace {

using util::fnv1a_64;
using util::kFnvOffsetBasis;

std::uint64_t chain_step(std::uint64_t chain, std::uint64_t fp) {
  return fnv1a_64(std::to_string(chain) + ":" + std::to_string(fp));
}

const char* policy_token(NodePolicy p) {
  switch (p) {
    case NodePolicy::kSjf: return "sjf";
    case NodePolicy::kFifo: return "fifo";
    case NodePolicy::kSrpt: return "srpt";
    case NodePolicy::kLcfs: return "lcfs";
    case NodePolicy::kHdf: return "hdf";
  }
  return "?";
}

char kind_token(NodeKind k) {
  switch (k) {
    case NodeKind::kRoot: return 'r';
    case NodeKind::kRouter: return 'i';
    case NodeKind::kMachine: return 'm';
  }
  return '?';
}

// Canonical kind ranks (see file comment of the header).
constexpr int kRankJobrec = 0;
constexpr int kRankSeg = 1;
constexpr int kRankDone = 2;
constexpr int kRankRetire = 3;

}  // namespace

// ---------------------------------------------------------------------------
// SegmentedRunLogWriter
// ---------------------------------------------------------------------------

SegmentedRunLogWriter::SegmentedRunLogWriter(
    Config cfg, const Tree& tree, const std::vector<double>& speeds,
    NodePolicy policy, double router_chunk_size,
    const overload::ShedConfig& shed)
    : cfg_(std::move(cfg)),
      speeds_(speeds),
      policy_(policy),
      chunk_(router_chunk_size),
      shed_(shed),
      chain_(kFnvOffsetBasis) {
  TS_REQUIRE(!cfg_.base_path.empty(), "segmented log needs a base path");
  TS_REQUIRE(cfg_.segment_cap > 0, "segment cap must be positive");
  TS_REQUIRE(speeds_.size() == uidx(tree.node_count()),
             "segmented log: speeds do not match the tree");
  parents_.reserve(uidx(tree.node_count()));
  kinds_.reserve(uidx(tree.node_count()));
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    parents_.push_back(tree.parent(v));
    kinds_.push_back(kind_token(tree.kind(v)));
  }
}

void SegmentedRunLogWriter::start_fresh() {
  TS_REQUIRE(!started_, "segmented log already started");
  started_ = true;
  const auto parent = std::filesystem::path(cfg_.base_path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  util::write_file_atomic(cfg_.base_path, header_text());
}

std::string SegmentedRunLogWriter::header_text() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "runlogseg 1\n";
  os << "policy " << policy_token(policy_) << '\n';
  os << "chunk " << chunk_ << '\n';
  os << "speeds " << speeds_.size();
  for (const double s : speeds_) os << ' ' << s;
  os << '\n';
  if (shed_.enabled())
    os << "shedcfg " << overload::shed_policy_name(shed_.policy) << ' '
       << shed_.queue_cap << ' ' << shed_.deadline_slack << '\n';
  for (std::size_t v = 0; v < parents_.size(); ++v)
    os << "node " << v << ' ' << parents_[v] << ' ' << kinds_[v] << '\n';
  return os.str();
}

void SegmentedRunLogWriter::resume(std::size_t next_index,
                                   std::uint64_t chain) {
  TS_REQUIRE(!started_ && pending_.empty() && next_index_ == 0 && !finalized_,
             "resume must precede start_fresh and all event feeding");
  started_ = true;
  std::ifstream in(cfg_.base_path);
  TS_REQUIRE(static_cast<bool>(in),
             "resume: cannot open manifest " + cfg_.base_path);
  std::ostringstream kept;
  std::size_t seg_lines = 0;
  std::string line;
  while (std::getline(in, line) && seg_lines < next_index) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "final") break;  // stale trailer from the killed run
    if (tag == "segment") {
      std::size_t idx = 0, n = 0;
      std::uint64_t fp = 0, ch = 0;
      if (!(ls >> idx >> n >> fp >> ch) || idx != seg_lines)
        break;  // torn or out-of-order tail: drop it and everything after
      ++seg_lines;
      if (seg_lines == next_index)
        TS_REQUIRE(ch == chain,
                   "resume: manifest chain does not match the snapshot");
    }
    kept << line << '\n';
  }
  TS_REQUIRE(seg_lines == next_index,
             "resume: manifest has fewer segments than the snapshot");
  if (next_index == 0)
    TS_REQUIRE(chain == kFnvOffsetBasis,
               "resume: chain of an empty log must be the FNV offset basis");
  util::write_file_atomic(cfg_.base_path, kept.str());
  next_index_ = next_index;
  chain_ = chain;
}

void SegmentedRunLogWriter::push(double key, int rank, std::string line) {
  TS_REQUIRE(started_ && !finalized_,
             "segmented log not started or already finalized");
  pending_.push_back({key, rank, std::move(line)});
}

void SegmentedRunLogWriter::on_admit(std::uint64_t job, double release,
                                     double weight, double size,
                                     NodeId leaf) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "jobrec " << job << ' ' << release << ' ' << weight << ' ' << size
     << ' ' << leaf;
  push(release, kRankJobrec, os.str());
}

void SegmentedRunLogWriter::on_burst(const Segment& s, std::uint64_t job) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "seg " << s.node << ' ' << job << ' ' << s.chunk << ' ' << s.t0
     << ' ' << s.t1 << ' ' << s.rate;
  // A burst becomes final at its recording instant t1 — the key that stays
  // monotone across drains (t0 does not: a long burst can start before
  // short ones that were recorded earlier).
  push(s.t1, kRankSeg, os.str());
}

void SegmentedRunLogWriter::on_done(std::uint64_t job, double t) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "done " << job << ' ' << t;
  push(t, kRankDone, os.str());
}

void SegmentedRunLogWriter::on_shed(double t, std::uint64_t job) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "shed " << t << ' ' << job;
  push(t, kRankRetire, os.str());
}

void SegmentedRunLogWriter::on_reject(double t, std::uint64_t job) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "reject " << t << ' ' << job;
  push(t, kRankRetire, os.str());
}

void SegmentedRunLogWriter::commit(bool force) {
  if (pending_.empty()) return;
  if (!force && pending_.size() < cfg_.segment_cap) return;
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const Pending& a, const Pending& b) {
                     if (a.key != b.key) return a.key < b.key;
                     return a.rank < b.rank;
                   });
  std::ostringstream os;
  os << "runlogseg-part 1 " << next_index_ << '\n';
  for (const Pending& p : pending_) os << p.line << '\n';
  os << "end " << next_index_ << ' ' << pending_.size() << '\n';
  const std::string content = os.str();
  const std::uint64_t fp = fnv1a_64(content);
  chain_ = chain_step(chain_, fp);
  util::write_file_atomic(segment_log_path(cfg_.base_path, next_index_),
                          content);
  // Manifest entry: append + flush, so at worst a crash tears this one line
  // (which readers drop as a torn tail).
  std::ostringstream entry;
  entry << "segment " << next_index_ << ' ' << pending_.size() << ' ' << fp
        << ' ' << chain_ << '\n';
  std::string entry_line = entry.str();
  // Failpoint seam "manifest.append": enospc / fsync-fail fail loudly;
  // torn-write appends only a prefix of the entry line SILENTLY — the torn
  // tail readers must tolerate, and the resume ladder must detect as a
  // too-short manifest.
  if (const auto hit = util::failpoint_hit("manifest.append")) {
    switch (hit->kind) {
      case util::FailKind::kEnospc:
        throw std::runtime_error("cannot append to manifest " +
                                 cfg_.base_path +
                                 ": injected ENOSPC (failpoint "
                                 "manifest.append)");
      case util::FailKind::kFsyncFail:
        throw std::runtime_error("manifest append failed: " + cfg_.base_path +
                                 ": injected fsync failure (failpoint "
                                 "manifest.append)");
      case util::FailKind::kTornWrite:
        entry_line = util::apply_torn(entry_line);
        break;
      case util::FailKind::kBitFlip:
        entry_line = util::apply_bit_flip(entry_line);
        break;
      case util::FailKind::kShortRead:
        break;  // a read-side kind; meaningless at the append seam
    }
  }
  std::ofstream manifest(cfg_.base_path, std::ios::app);
  TS_REQUIRE(static_cast<bool>(manifest),
             "cannot append to manifest " + cfg_.base_path);
  manifest << entry_line;
  manifest.flush();
  TS_REQUIRE(static_cast<bool>(manifest),
             "manifest append failed: " + cfg_.base_path);
  pending_.clear();
  ++next_index_;
}

void SegmentedRunLogWriter::write_final(std::uint64_t arrivals,
                                        std::uint64_t completed,
                                        std::uint64_t shed,
                                        std::uint64_t rejected,
                                        double total_flow, double makespan) {
  commit(true);
  TS_REQUIRE(!finalized_, "segmented log already finalized");
  finalized_ = true;
  std::ofstream manifest(cfg_.base_path, std::ios::app);
  TS_REQUIRE(static_cast<bool>(manifest),
             "cannot append to manifest " + cfg_.base_path);
  manifest << std::setprecision(17);
  manifest << "final " << arrivals << ' ' << completed << ' ' << shed << ' '
           << rejected << ' ' << total_flow << ' ' << makespan << '\n';
  manifest.flush();
  TS_REQUIRE(static_cast<bool>(manifest),
             "manifest finalize failed: " + cfg_.base_path);
}

// ---------------------------------------------------------------------------
// audit_segments
// ---------------------------------------------------------------------------

namespace {

struct ManifestEntry {
  std::size_t lines = 0;
  std::uint64_t fp = 0;
  std::uint64_t chain = 0;
};

struct ManifestData {
  double chunk = 0.0;
  std::vector<double> speeds;
  std::vector<NodeId> parents;
  std::vector<char> kinds;
  std::vector<ManifestEntry> entries;
  bool has_final = false;
  std::uint64_t arrivals = 0, completed = 0, shed = 0, rejected = 0;
  double total_flow = 0.0, makespan = 0.0;
};

struct LiveJob {
  double release = 0.0;
  double size = 0.0;
  std::vector<NodeId> path;  ///< first hop .. leaf (root excluded)
  std::size_t hop = 0;
  double acc = 0.0;          ///< work done on the current hop
  double data_ready_t = 0.0;  ///< when the current hop's data arrived
  double finish_t = -1.0;     ///< leaf requirement met at this instant
};

class SegmentAuditor {
 public:
  SegmentAuditor(const SegmentAuditOptions& opts, SegmentAuditResult& out)
      : opts_(opts), out_(out) {}

  void fail(std::size_t segment, const std::string& msg) {
    ++violation_count_;
    if (out_.violations.size() < opts_.max_violations)
      out_.violations.push_back({segment, msg});
  }

  /// Records the FIRST segment whose file integrity broke (missing file,
  /// fingerprint mismatch, chain mismatch) so treesched_audit can name the
  /// exact file and suggest quarantining it.
  void note_broken(std::size_t segment, const std::string& path) {
    if (out_.has_first_bad) return;
    out_.has_first_bad = true;
    out_.first_bad_segment = segment;
    out_.first_bad_path = path;
  }

  bool run(const std::string& manifest_path) {
    if (!parse_manifest(manifest_path)) return finish();
    for (std::size_t i = 0; i < m_.entries.size(); ++i)
      check_segment(manifest_path, i);
    check_final();
    return finish();
  }

 private:
  bool finish() {
    out_.ok = violation_count_ == 0;
    out_.segments = m_.entries.size();
    out_.payload_lines = payload_total_;
    out_.arrivals = admitted_ + rejected_;
    out_.completed = done_;
    return out_.ok;
  }

  bool parse_manifest(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      fail(0, "cannot open manifest: " + path);
      return false;
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(util::trim(line));
    bool header = false;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const bool last = i + 1 == lines.size();
      if (lines[i].empty() || lines[i][0] == '#') continue;
      std::istringstream ls(lines[i]);
      std::string tag;
      ls >> tag;
      bool ok = true;
      if (tag == "runlogseg") {
        int v = 0;
        ok = static_cast<bool>(ls >> v) && v == 1;
        header = ok;
      } else if (!header) {
        fail(0, "manifest missing 'runlogseg 1' header");
        return false;
      } else if (tag == "policy") {
        std::string p;
        ok = static_cast<bool>(ls >> p);
      } else if (tag == "chunk") {
        ok = static_cast<bool>(ls >> m_.chunk);
      } else if (tag == "speeds") {
        std::size_t n = 0;
        ok = static_cast<bool>(ls >> n);
        if (ok) {
          m_.speeds.resize(n);
          for (std::size_t k = 0; ok && k < n; ++k)
            ok = static_cast<bool>(ls >> m_.speeds[k]);
        }
      } else if (tag == "shedcfg") {
        std::string p;
        double cap = 0, slack = 0;
        ok = static_cast<bool>(ls >> p >> cap >> slack);
      } else if (tag == "node") {
        std::size_t id = 0;
        NodeId parent = kInvalidNode;
        char kind = 0;
        ok = static_cast<bool>(ls >> id >> parent >> kind) &&
             id == m_.parents.size();
        if (ok) {
          m_.parents.push_back(parent);
          m_.kinds.push_back(kind);
        }
      } else if (tag == "segment") {
        std::size_t idx = 0;
        ManifestEntry e;
        ok = static_cast<bool>(ls >> idx >> e.lines >> e.fp >> e.chain) &&
             idx == m_.entries.size() && !m_.has_final;
        if (ok) m_.entries.push_back(e);
      } else if (tag == "final") {
        ok = static_cast<bool>(ls >> m_.arrivals >> m_.completed >> m_.shed >>
                               m_.rejected >> m_.total_flow >> m_.makespan) &&
             !m_.has_final;
        if (ok) m_.has_final = true;
      } else {
        ok = false;
      }
      if (!ok) {
        // Torn-tail tolerance (PR 3 journal rule): a malformed FINAL line is
        // the expected residue of a kill mid-append; anything earlier is
        // corruption.
        if (!last) {
          fail(m_.entries.size(), "malformed manifest line: " + lines[i]);
          return false;
        }
      }
    }
    if (!header) {
      fail(0, "manifest missing 'runlogseg 1' header");
      return false;
    }
    if (m_.speeds.size() != m_.parents.size()) {
      fail(0, "manifest speeds/node count mismatch");
      return false;
    }
    if (!m_.has_final)
      fail(m_.entries.size(), "manifest has no final trailer (unfinished run?)");
    return true;
  }

  std::vector<NodeId> path_of(NodeId leaf, std::size_t segment, bool& ok) {
    ok = false;
    if (leaf < 0 || uidx(leaf) >= m_.parents.size() ||
        m_.kinds[uidx(leaf)] != 'm') {
      fail(segment, "jobrec leaf is not a machine");
      return {};
    }
    std::vector<NodeId> path;
    NodeId v = leaf;
    while (v >= 0 && uidx(v) < m_.parents.size() && m_.kinds[uidx(v)] != 'r') {
      path.push_back(v);
      v = m_.parents[uidx(v)];
    }
    if (v < 0 || uidx(v) >= m_.parents.size()) {
      fail(segment, "jobrec leaf does not hang under the root");
      return {};
    }
    std::reverse(path.begin(), path.end());
    ok = true;
    return path;
  }

  double tol_for(double scale) const {
    return opts_.tol * std::max(1.0, scale);
  }

  void check_segment(const std::string& manifest_path, std::size_t idx) {
    const ManifestEntry& entry = m_.entries[idx];
    const std::string seg_path = segment_log_path(manifest_path, idx);
    std::ifstream in(seg_path, std::ios::binary);
    if (!in) {
      fail(idx, "missing segment file: " + seg_path);
      note_broken(idx, seg_path);
      return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string content = buf.str();
    // Failpoint seam "segment.read": short-read / bit-flip corrupt the
    // slurped bytes — the fingerprint check below must catch both.
    if (const auto hit = util::failpoint_hit("segment.read")) {
      if (hit->kind == util::FailKind::kShortRead)
        content = util::apply_torn(content);
      else if (hit->kind == util::FailKind::kBitFlip)
        content = util::apply_bit_flip(content);
    }
    const std::uint64_t fp = fnv1a_64(content);
    if (fp != entry.fp) {
      fail(idx, "segment fingerprint mismatch (tampered or truncated)");
      note_broken(idx, seg_path);
      return;  // content is untrustworthy; replaying it would cascade noise
    }
    const std::uint64_t want_chain = chain_step(chain_, fp);
    if (want_chain != entry.chain) {
      fail(idx, "manifest chain mismatch (segments reordered or dropped?)");
      note_broken(idx, seg_path);
    }
    chain_ = want_chain;

    std::istringstream is(content);
    std::string line;
    std::size_t payload = 0;
    bool saw_end = false;
    bool first = true;
    while (std::getline(is, line)) {
      line = util::trim(line);
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (first) {
        int v = 0;
        std::size_t i = 0;
        if (tag != "runlogseg-part" || !(ls >> v >> i) || v != 1 || i != idx)
          fail(idx, "bad segment header: " + line);
        first = false;
        continue;
      }
      if (saw_end) {
        fail(idx, "payload after end marker: " + line);
        break;
      }
      if (tag == "end") {
        std::size_t i = 0, n = 0;
        if (!(ls >> i >> n) || i != idx || n != payload)
          fail(idx, "bad end marker: " + line);
        saw_end = true;
        continue;
      }
      ++payload;
      double key = 0.0;
      int rank = 0;
      if (tag == "jobrec") {
        std::uint64_t job = 0;
        double release = 0, weight = 0, size = 0;
        NodeId leaf = kInvalidNode;
        if (!(ls >> job >> release >> weight >> size >> leaf)) {
          fail(idx, "bad jobrec line: " + line);
          continue;
        }
        key = release;
        rank = kRankJobrec;
        if (live_.count(job) != 0) {
          fail(idx, "duplicate jobrec for job " + std::to_string(job));
          continue;
        }
        bool ok = false;
        LiveJob lj;
        lj.path = path_of(leaf, idx, ok);
        if (!ok) continue;
        lj.release = release;
        lj.size = size;
        lj.data_ready_t = release;
        live_.emplace(job, std::move(lj));
        ++admitted_;
      } else if (tag == "seg") {
        NodeId node = kInvalidNode;
        std::uint64_t job = 0;
        std::int32_t chunk = 0;
        double t0 = 0, t1 = 0, rate = 0;
        if (!(ls >> node >> job >> chunk >> t0 >> t1 >> rate)) {
          fail(idx, "bad seg line: " + line);
          continue;
        }
        key = t1;
        rank = kRankSeg;
        check_burst(idx, node, job, t0, t1, rate, line);
      } else if (tag == "done") {
        std::uint64_t job = 0;
        double t = 0;
        if (!(ls >> job >> t)) {
          fail(idx, "bad done line: " + line);
          continue;
        }
        key = t;
        rank = kRankDone;
        check_done(idx, job, t);
      } else if (tag == "shed" || tag == "reject") {
        double t = 0;
        std::uint64_t job = 0;
        if (!(ls >> t >> job)) {
          fail(idx, "bad " + tag + " line: " + line);
          continue;
        }
        key = t;
        rank = kRankRetire;
        if (tag == "shed") {
          const auto it = live_.find(job);
          if (it == live_.end())
            fail(idx, "shed of a job never admitted: " + std::to_string(job));
          else
            live_.erase(it);
          ++shed_;
        } else {
          if (live_.count(job) != 0)
            fail(idx, "reject of an admitted job: " + std::to_string(job));
          ++rejected_;
        }
      } else {
        fail(idx, "unknown payload tag: " + line);
        continue;
      }
      // Canonical order: (key, rank) within the segment, key alone across
      // segment boundaries (same-instant events may legitimately straddle a
      // commit point).
      if (have_any_ &&
          (key < prev_key_ ||
           (have_prev_in_segment_ && key == prev_key_ && rank < prev_rank_)))
        fail(idx, "canonical order violated at: " + line);
      prev_key_ = key;
      prev_rank_ = rank;
      have_prev_in_segment_ = true;
      have_any_ = true;
    }
    if (!saw_end) fail(idx, "segment missing end marker");
    if (payload != entry.lines)
      fail(idx, "payload line count disagrees with manifest");
    payload_total_ += payload;
    have_prev_in_segment_ = false;
  }

  void check_burst(std::size_t idx, NodeId node, std::uint64_t job, double t0,
                   double t1, double rate, const std::string& line) {
    if (node < 0 || uidx(node) >= m_.speeds.size()) {
      fail(idx, "seg on unknown node: " + line);
      return;
    }
    if (t1 <= t0 || t0 < 0.0) {
      fail(idx, "degenerate burst interval: " + line);
      return;
    }
    const double speed = m_.speeds[uidx(node)];
    if (std::abs(rate - speed) > tol_for(speed))
      fail(idx, "burst rate differs from node speed: " + line);
    // Unit capacity: one item at a time per node.
    double& last = node_last_t1_[node];
    if (t0 < last - tol_for(last))
      fail(idx, "overlapping bursts on node " + std::to_string(node));
    last = std::max(last, t1);

    const auto it = live_.find(job);
    if (it == live_.end()) {
      fail(idx, "burst for a job not live (unadmitted or retired): " + line);
      return;
    }
    LiveJob& lj = it->second;
    const NodeId want = lj.path[lj.hop];
    if (node != want) {
      if (lj.hop + 1 < lj.path.size() && node == lj.path[lj.hop + 1])
        fail(idx, "store-and-forward violated (work before data): " + line);
      else
        fail(idx, "burst off the job's current hop: " + line);
      return;
    }
    if (t0 < lj.data_ready_t - tol_for(lj.data_ready_t))
      fail(idx, "hop started before its data arrived: " + line);
    lj.acc += (t1 - t0) * rate;
    if (lj.acc > lj.size + tol_for(lj.size))
      fail(idx, "more work than the requirement: " + line);
    if (lj.acc >= lj.size - tol_for(lj.size)) {
      if (lj.hop + 1 < lj.path.size()) {
        ++lj.hop;
        lj.acc = 0.0;
        lj.data_ready_t = t1;
      } else {
        lj.finish_t = t1;
      }
    }
  }

  void check_done(std::size_t idx, std::uint64_t job, double t) {
    const auto it = live_.find(job);
    if (it == live_.end()) {
      fail(idx, "done for a job not live: " + std::to_string(job));
      return;
    }
    const LiveJob& lj = it->second;
    if (lj.hop + 1 != lj.path.size() || lj.finish_t < 0.0)
      fail(idx, "done before the requirement was met: " + std::to_string(job));
    else if (std::abs(t - lj.finish_t) > tol_for(t))
      fail(idx, "done time disagrees with the final burst: " +
                    std::to_string(job));
    // Flow recomputation in completion order, compensated — by the
    // determinism contract this reproduces the writer's accumulator bits.
    flow_.add(t - lj.release);
    makespan_ = std::max(makespan_, t);
    ++done_;
    live_.erase(it);
  }

  void check_final() {
    if (!m_.has_final) return;
    const std::size_t last = m_.entries.size();
    if (!live_.empty())
      fail(last, std::to_string(live_.size()) +
                     " jobs admitted but never retired (first: " +
                     std::to_string(live_.begin()->first) + ")");
    if (m_.arrivals != admitted_ + rejected_)
      fail(last, "trailer arrivals disagree with jobrec+reject count");
    if (m_.completed != done_)
      fail(last, "trailer completed count disagrees with done lines");
    if (m_.shed != shed_) fail(last, "trailer shed count disagrees");
    if (m_.rejected != rejected_) fail(last, "trailer rejected count disagrees");
    if (m_.total_flow != flow_.value())
      fail(last, "trailer total flow does not reproduce from done lines");
    if (m_.makespan != makespan_)
      fail(last, "trailer makespan does not reproduce from done lines");
  }

  const SegmentAuditOptions& opts_;
  SegmentAuditResult& out_;
  ManifestData m_;
  std::size_t violation_count_ = 0;
  std::uint64_t chain_ = kFnvOffsetBasis;
  std::map<std::uint64_t, LiveJob> live_;
  std::map<NodeId, double> node_last_t1_;
  double prev_key_ = 0.0;
  int prev_rank_ = 0;
  bool have_prev_in_segment_ = false;
  bool have_any_ = false;
  std::uint64_t payload_total_ = 0;
  std::uint64_t admitted_ = 0, done_ = 0, shed_ = 0, rejected_ = 0;
  util::CompensatedSum flow_;
  double makespan_ = 0.0;
};

}  // namespace

SegmentAuditResult audit_segments(const std::string& manifest_path,
                                  const SegmentAuditOptions& opts) {
  SegmentAuditResult out;
  SegmentAuditor auditor(opts, out);
  auditor.run(manifest_path);
  return out;
}

}  // namespace treesched::sim
