#include "treesched/sim/sampler.hpp"

#include <algorithm>

namespace treesched::sim {

std::string ascii_sparkline(const std::vector<double>& series,
                            std::size_t width) {
  if (series.empty() || width == 0) return "";
  static const char kLevels[] = " .:-=+*#%@";
  constexpr std::size_t kNumLevels = sizeof(kLevels) - 2;  // index 0..9

  const std::size_t columns = std::min(width, series.size());
  const double per_col =
      static_cast<double>(series.size()) / static_cast<double>(columns);
  double peak = 0.0;
  for (const double v : series) peak = std::max(peak, v);
  if (peak <= 0.0) peak = 1.0;

  std::string out(columns, ' ');
  for (std::size_t c = 0; c < columns; ++c) {
    const std::size_t lo = static_cast<std::size_t>(c * per_col);
    const std::size_t hi = std::min(
        series.size(),
        std::max(lo + 1, static_cast<std::size_t>((c + 1) * per_col)));
    double column_max = 0.0;
    for (std::size_t i = lo; i < hi; ++i)
      column_max = std::max(column_max, series[i]);
    const std::size_t level = static_cast<std::size_t>(
        column_max / peak * static_cast<double>(kNumLevels) + 0.5);
    out[c] = kLevels[std::min(level, kNumLevels)];
  }
  return out;
}

}  // namespace treesched::sim
