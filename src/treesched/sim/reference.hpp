// Independent reference simulator for differential testing.
//
// Implements the same continuous-time semantics as the event Engine with a
// deliberately different algorithm and no shared code paths: a naive
// global loop that, at every step, rescans all jobs to find each node's
// highest-priority available work, advances to the earliest completion or
// arrival, and applies the elapsed work. O(horizon * n * m) — slow, simple,
// and easy to audit; the differential tests assert the Engine matches it
// to floating-point tolerance on randomized instances.
//
// Scope: SJF or FIFO per node; whole-job store-and-forward or the chunked
// pipelined-routing extension.
#pragma once

#include <vector>

#include "treesched/core/instance.hpp"
#include "treesched/core/speed_profile.hpp"
#include "treesched/sim/priority.hpp"

namespace treesched::sim {

struct ReferenceResult {
  std::vector<Time> completion;                  ///< per job id
  std::vector<std::vector<Time>> node_completion;  ///< per job id, path index
  double total_flow = 0.0;
};

/// Simulates the instance with the given fixed leaf assignment (per job
/// id). `policy` must be kSjf or kFifo. `chunk_size` > 0 enables the
/// pipelined-routing extension with the same semantics as the engine.
ReferenceResult simulate_reference(const Instance& instance,
                                   const SpeedProfile& speeds,
                                   const std::vector<NodeId>& leaf_of_job,
                                   NodePolicy policy = NodePolicy::kSjf,
                                   double chunk_size = 0.0);

}  // namespace treesched::sim
