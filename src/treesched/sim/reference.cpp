#include "treesched/sim/reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "treesched/util/assert.hpp"

namespace treesched::sim {

namespace {

struct RefJob {
  const Job* job = nullptr;
  std::vector<NodeId> path;
  // Router chunk bookkeeping (mirrors the engine's model independently):
  // hops 0..len-2 are routers, hop len-1 is the machine.
  std::int32_t chunks = 1;
  double chunk_size = 0.0;
  std::vector<std::int32_t> done;   ///< completed chunks per router hop
  std::vector<double> head;        ///< remaining of the head chunk per hop
  double leaf_rem = 0.0;
  std::vector<Time> head_avail;    ///< FIFO stamp per hop; <0 = unset
  bool arrived = false;
  bool finished = false;

  std::size_t len() const { return path.size(); }

  bool hop_available(std::size_t i) const {
    if (finished || !arrived) return false;
    if (i + 1 == len())
      return leaf_rem > 0.0 && (len() == 1 || done[len() - 2] == chunks);
    if (done[i] == chunks) return false;
    return i == 0 || done[i] < done[i - 1];
  }
};

}  // namespace

ReferenceResult simulate_reference(const Instance& instance,
                                   const SpeedProfile& speeds,
                                   const std::vector<NodeId>& leaf_of_job,
                                   NodePolicy policy, double chunk_size) {
  TS_REQUIRE(policy == NodePolicy::kSjf || policy == NodePolicy::kFifo,
             "reference simulator supports SJF and FIFO only");
  TS_REQUIRE(leaf_of_job.size() ==
                 uidx(instance.job_count()),
             "assignment must cover every job");
  TS_REQUIRE(chunk_size >= 0.0, "chunk size must be >= 0");
  const Tree& tree = instance.tree();
  const JobId n = instance.job_count();

  std::vector<RefJob> jobs(uidx(n));
  ReferenceResult result;
  result.completion.assign(uidx(n), -1.0);
  result.node_completion.resize(uidx(n));
  for (JobId j = 0; j < n; ++j) {
    RefJob& rj = jobs[uidx(j)];
    rj.job = &instance.job(j);
    const auto& p = tree.path_to(leaf_of_job[uidx(j)]);
    rj.path.assign(p.begin(), p.end());
    rj.chunks = chunk_size > 0.0
                    ? static_cast<std::int32_t>(std::max(
                          1.0, std::ceil(rj.job->size / chunk_size)))
                    : 1;
    rj.chunk_size = rj.job->size / rj.chunks;
    rj.done.assign(rj.len() - 1, 0);
    rj.head.assign(rj.len() - 1, rj.chunk_size);
    rj.leaf_rem = instance.processing_time(j, rj.path.back());
    rj.head_avail.assign(rj.len(), -1.0);
    result.node_completion[uidx(j)].assign(rj.len(), -1.0);
  }

  // Hop index of job j on node v, or npos.
  const auto hop_of = [&](JobId j, NodeId v) -> std::size_t {
    const auto& p = jobs[uidx(j)].path;
    for (std::size_t i = 0; i < p.size(); ++i)
      if (p[i] == v) return i;
    return static_cast<std::size_t>(-1);
  };
  (void)hop_of;

  const auto beats = [&](JobId a, std::size_t ha, JobId b,
                         std::size_t hb) {
    const RefJob& ra = jobs[uidx(a)];
    const RefJob& rb = jobs[uidx(b)];
    if (policy == NodePolicy::kSjf) {
      const double pa = instance.processing_time(a, ra.path[ha]);
      const double pb = instance.processing_time(b, rb.path[hb]);
      if (pa != pb) return pa < pb;
      if (ra.job->release != rb.job->release)
        return ra.job->release < rb.job->release;
      return a < b;
    }
    if (ra.head_avail[ha] != rb.head_avail[hb])
      return ra.head_avail[ha] < rb.head_avail[hb];
    return a < b;
  };

  Time now = 0.0;
  const double inf = std::numeric_limits<double>::infinity();
  // Stamp availability times for FIFO keys (and assert reachability).
  const auto refresh_avail_stamps = [&](Time t) {
    for (JobId j = 0; j < n; ++j) {
      RefJob& rj = jobs[uidx(j)];
      for (std::size_t i = 0; i < rj.len(); ++i)
        if (rj.hop_available(i) && rj.head_avail[i] < 0.0)
          rj.head_avail[i] = t;
    }
  };

  long guard = 0;
  std::int32_t max_chunks = 1;
  for (const RefJob& rj : jobs) max_chunks = std::max(max_chunks, rj.chunks);
  const long guard_limit =
      256 + 8L * (n + 1) * (tree.node_count() + 1) * max_chunks;
  while (true) {
    ++guard;
    TS_CHECK(guard < guard_limit * 8,
             "reference simulator failed to make progress");
    refresh_avail_stamps(now);

    // Per node, the best available (job, hop).
    std::vector<JobId> running(uidx(tree.node_count()), kInvalidJob);
    std::vector<std::size_t> running_hop(uidx(tree.node_count()), 0);
    bool any_alive = false;
    for (JobId j = 0; j < n; ++j) {
      RefJob& rj = jobs[uidx(j)];
      if (rj.finished) continue;
      any_alive = true;
      if (!rj.arrived) continue;
      for (std::size_t i = 0; i < rj.len(); ++i) {
        if (!rj.hop_available(i)) continue;
        const NodeId v = rj.path[i];
        if (running[uidx(v)] == kInvalidJob ||
            beats(j, i, running[uidx(v)], running_hop[uidx(v)])) {
          running[uidx(v)] = j;
          running_hop[uidx(v)] = i;
        }
      }
    }
    if (!any_alive) break;

    // Next breakpoint: release or completion of a running head/leaf.
    Time next = inf;
    for (JobId j = 0; j < n; ++j)
      if (!jobs[uidx(j)].finished && !jobs[uidx(j)].arrived)
        next = std::min(next, jobs[uidx(j)].job->release);
    for (NodeId v = 0; v < tree.node_count(); ++v) {
      const JobId j = running[uidx(v)];
      if (j == kInvalidJob) continue;
      const std::size_t i = running_hop[uidx(v)];
      const double rem =
          (i + 1 == jobs[uidx(j)].len()) ? jobs[uidx(j)].leaf_rem : jobs[uidx(j)].head[i];
      next = std::min(next, now + rem / speeds.speed(v));
    }
    TS_CHECK(next < inf, "deadlock in reference simulator");

    const Time dt = next - now;
    for (NodeId v = 0; v < tree.node_count(); ++v) {
      const JobId j = running[uidx(v)];
      if (j == kInvalidJob) continue;
      const std::size_t i = running_hop[uidx(v)];
      const double w = dt * speeds.speed(v);
      if (i + 1 == jobs[uidx(j)].len()) jobs[uidx(j)].leaf_rem -= w;
      else jobs[uidx(j)].head[i] -= w;
    }
    now = next;

    for (JobId j = 0; j < n; ++j) {
      RefJob& rj = jobs[uidx(j)];
      if (!rj.finished && !rj.arrived && rj.job->release <= now + 1e-12)
        rj.arrived = true;
    }

    // Completion cascade.
    for (JobId j = 0; j < n; ++j) {
      RefJob& rj = jobs[uidx(j)];
      if (rj.finished || !rj.arrived) continue;
      for (std::size_t i = 0; i + 1 < rj.len(); ++i) {
        if (rj.done[i] < rj.chunks && rj.head[i] <= 1e-9 &&
            rj.hop_available(i)) {
          ++rj.done[i];
          rj.head[i] = rj.chunk_size;
          rj.head_avail[i] = -1.0;  // the next head re-stamps when ready
          if (rj.done[i] == rj.chunks)
            result.node_completion[uidx(j)][i] = now;
        }
      }
      if (rj.len() >= 1 && rj.leaf_rem <= 1e-9 &&
          (rj.len() == 1 || rj.done[rj.len() - 2] == rj.chunks)) {
        rj.finished = true;
        result.node_completion[uidx(j)][rj.len() - 1] = now;
        result.completion[uidx(j)] = now;
        result.total_flow += now - rj.job->release;
      }
    }
  }
  return result;
}

}  // namespace treesched::sim
