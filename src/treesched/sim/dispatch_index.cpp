#include "treesched/sim/dispatch_index.hpp"

#include "treesched/util/assert.hpp"

namespace treesched::sim {

namespace {
// Deterministic treap priority: a splitmix-style avalanche of the job id.
// The tree shape must depend only on the entry set so repeated runs (and
// the resume machinery above the engine) stay bit-reproducible.
std::uint32_t priority_of(JobId job) {
  // treesched-lint: allow(inv-raw-id-cast): hash input, not an index — the
  // uint32 truncation of the id is the avalanche's deliberate seed width.
  std::uint64_t z = static_cast<std::uint64_t>(static_cast<std::uint32_t>(job)) +
                    0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return static_cast<std::uint32_t>(z >> 32);
}
}  // namespace

void DispatchIndex::attach_pool(TreapPool* pool) {
  TS_REQUIRE(root_ == kNil, "attach_pool on a non-empty dispatch index");
  pool_ = pool;
  owned_.reset();
}

TreapPool& DispatchIndex::pool() {
  if (pool_ == nullptr) {
    owned_ = std::make_unique<TreapPool>();
    pool_ = owned_.get();
  }
  return *pool_;
}

DispatchIndex::Ref DispatchIndex::alloc(const SjfKey& key, double remaining) {
  const Ref t = pool().alloc();
  Node& n = pool_->node(t);
  n.key = key;
  n.rem = remaining;
  n.frac = remaining / key.size;
  n.sum_rem = n.rem;
  n.sum_frac = n.frac;
  n.cnt = 1;
  n.left = kNil;
  n.right = kNil;
  n.prio = priority_of(key.job);
  return t;
}

void DispatchIndex::pull(Ref t) {
  Node& n = pool_->node(t);
  n.cnt = 1;
  n.sum_rem = n.rem;
  n.sum_frac = n.frac;
  if (n.left != kNil) {
    const Node& l = pool_->node(n.left);
    n.cnt += l.cnt;
    n.sum_rem += l.sum_rem;
    n.sum_frac += l.sum_frac;
  }
  if (n.right != kNil) {
    const Node& r = pool_->node(n.right);
    n.cnt += r.cnt;
    n.sum_rem += r.sum_rem;
    n.sum_frac += r.sum_frac;
  }
}

void DispatchIndex::split(Ref t, const SjfKey& key, Ref& left, Ref& right) {
  if (t == kNil) {
    left = kNil;
    right = kNil;
    return;
  }
  Node& n = pool_->node(t);
  if (n.key < key) {
    left = t;
    split(n.right, key, pool_->node(t).right, right);
  } else {
    right = t;
    split(n.left, key, left, pool_->node(t).left);
  }
  pull(t);
}

DispatchIndex::Ref DispatchIndex::merge(Ref left, Ref right) {
  if (left == kNil) return right;
  if (right == kNil) return left;
  if (pool_->node(left).prio >= pool_->node(right).prio) {
    pool_->node(left).right = merge(pool_->node(left).right, right);
    pull(left);
    return left;
  }
  pool_->node(right).left = merge(left, pool_->node(right).left);
  pull(right);
  return right;
}

void DispatchIndex::insert(const SjfKey& key, double remaining) {
  // The alloc may be the pool's first touch (lazy private pool) and may
  // reallocate the node vector, so it happens before any refs are taken.
  const Ref fresh = alloc(key, remaining);
  Ref left = kNil;
  Ref right = kNil;
  split(root_, key, left, right);
  // The key must be new: the smallest entry of `right`, if any, differs.
  root_ = merge(merge(left, fresh), right);
}

DispatchIndex::Ref DispatchIndex::erase_rec(Ref t, const SjfKey& key,
                                            bool& erased) {
  if (t == kNil) return kNil;
  Node& n = pool_->node(t);
  if (key == n.key) {
    const Ref replacement = merge(n.left, n.right);
    pool_->free(t);
    erased = true;
    return replacement;
  }
  if (key < n.key)
    n.left = erase_rec(n.left, key, erased);
  else
    n.right = erase_rec(n.right, key, erased);
  pull(t);
  return t;
}

void DispatchIndex::erase(const SjfKey& key) {
  bool erased = false;
  root_ = erase_rec(root_, key, erased);
  TS_CHECK(erased, "dispatch index: erase of a missing key");
}

bool DispatchIndex::update_rec(Ref t, const SjfKey& key, double remaining) {
  if (t == kNil) return false;
  Node& n = pool_->node(t);
  bool found;
  if (key == n.key) {
    n.rem = remaining;
    n.frac = remaining / key.size;
    found = true;
  } else {
    found = update_rec(key < n.key ? n.left : n.right, key, remaining);
  }
  if (found) pull(t);
  return found;
}

void DispatchIndex::update(const SjfKey& key, double remaining) {
  const bool found = update_rec(root_, key, remaining);
  TS_CHECK(found, "dispatch index: update of a missing key");
}

double DispatchIndex::remaining_before(const SjfKey& key) const {
  double acc = 0.0;
  Ref t = root_;
  while (t != kNil) {
    const Node& n = pool_->node(t);
    if (n.key < key) {
      if (n.left != kNil) acc += pool_->node(n.left).sum_rem;
      acc += n.rem;
      t = n.right;
    } else {
      t = n.left;
    }
  }
  return acc;
}

int DispatchIndex::count_size_greater(double size) const {
  int acc = 0;
  Ref t = root_;
  while (t != kNil) {
    const Node& n = pool_->node(t);
    if (n.key.size > size) {
      // Everything right of n is lexicographically larger, hence has size
      // >= n.key.size > size.
      acc += 1;
      if (n.right != kNil) acc += pool_->node(n.right).cnt;
      t = n.left;
    } else {
      // Everything left of n has size <= n.key.size <= size.
      t = n.right;
    }
  }
  return acc;
}

double DispatchIndex::fraction_size_greater(double size) const {
  double acc = 0.0;
  Ref t = root_;
  while (t != kNil) {
    const Node& n = pool_->node(t);
    if (n.key.size > size) {
      acc += n.frac;
      if (n.right != kNil) acc += pool_->node(n.right).sum_frac;
      t = n.left;
    } else {
      t = n.right;
    }
  }
  return acc;
}

}  // namespace treesched::sim
