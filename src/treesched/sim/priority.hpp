// Per-node scheduling disciplines and their priority keys.
//
// The paper's algorithm runs SJF (by *original* processing time on the node,
// ties by release time) on every node. FIFO / SRPT / LCFS are provided as
// baselines and for counterexample hunting.
#pragma once

#include <cstdint>

#include "treesched/core/types.hpp"

namespace treesched::sim {

/// Discipline used on each node to order the jobs available there.
enum class NodePolicy : std::uint8_t {
  kSjf,   ///< shortest original processing time on this node (the paper's)
  kFifo,  ///< order of becoming available on this node
  kSrpt,  ///< shortest remaining processing time on this node
  kLcfs,  ///< newest arrival at the node first
  kHdf,   ///< highest density first: smallest size/weight (weighted ext.)
};

/// Lexicographic priority key; smaller = higher priority. `a` and `b` are
/// policy-dependent (see Engine::make_key); ties always break by job id and
/// then chunk index, so schedules are fully deterministic.
struct PriorityKey {
  double a = 0.0;
  double b = 0.0;
  JobId job = kInvalidJob;
  std::int32_t chunk = 0;

  friend bool operator<(const PriorityKey& x, const PriorityKey& y) {
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    if (x.job != y.job) return x.job < y.job;
    return x.chunk < y.chunk;
  }
  friend bool operator==(const PriorityKey& x, const PriorityKey& y) {
    return x.a == y.a && x.b == y.b && x.job == y.job && x.chunk == y.chunk;
  }
};

inline const char* node_policy_name(NodePolicy p) {
  switch (p) {
    case NodePolicy::kSjf: return "SJF";
    case NodePolicy::kFifo: return "FIFO";
    case NodePolicy::kSrpt: return "SRPT";
    case NodePolicy::kLcfs: return "LCFS";
    case NodePolicy::kHdf: return "HDF";
  }
  return "?";
}

}  // namespace treesched::sim
