// ASCII Gantt rendering of recorded schedules, for examples and debugging.
#pragma once

#include <string>

#include "treesched/core/instance.hpp"
#include "treesched/sim/recorder.hpp"

namespace treesched::sim {

struct GanttOptions {
  int width = 100;          ///< characters across the full time span
  Time t_begin = 0.0;       ///< left edge
  Time t_end = -1.0;        ///< right edge; <0 = last segment end
  bool show_chunks = false; ///< annotate chunk indices in pipelined runs
};

/// Renders one row per node: '.' idle, a job letter (a..z, A..Z cycling by
/// job id) while busy. Jobs appear on a node only while that node actually
/// processes them, so store-and-forward hops and preemptions are visible.
std::string render_gantt(const Instance& instance,
                         const ScheduleRecorder& recorder,
                         const GanttOptions& options = {});

}  // namespace treesched::sim
