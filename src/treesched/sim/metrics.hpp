// Per-job and aggregate result accounting for a simulation run.
#pragma once

#include <limits>
#include <vector>

#include "treesched/core/types.hpp"

namespace treesched::sim {

/// Everything recorded about one job over a run.
struct JobRecord {
  JobId id = kInvalidJob;
  Time release = 0.0;
  double weight = 1.0;
  double size = 0.0;                     ///< p_j (recorded for shed accounting)
  NodeId leaf = kInvalidNode;            ///< assigned machine
  Time completion = -1.0;                ///< leaf completion; -1 if unfinished
  double fractional_area = 0.0;          ///< the paper's fractional flow contribution
  bool shed = false;                     ///< evicted by the admission controller
  bool rejected = false;                 ///< refused at arrival (never admitted)
  std::vector<Time> node_completion;     ///< completion per path index (first hop..leaf)

  bool completed() const { return completion >= 0.0; }
  Time flow() const { return completed() ? completion - release : -1.0; }
  /// Admitted = the job entered the system (completed or shed, not rejected).
  bool admitted() const { return leaf != kInvalidNode; }
};

/// Aggregates over a run. Populated by the Engine; query helpers compute the
/// objectives studied in the paper (total / fractional flow) plus the
/// extension objectives (max flow, l_k norms).
class Metrics {
 public:
  void reset(std::size_t job_count);

  JobRecord& job(JobId j) { return jobs_[uidx(j)]; }
  const JobRecord& job(JobId j) const { return jobs_[uidx(j)]; }
  const std::vector<JobRecord>& jobs() const { return jobs_; }

  bool all_completed() const;
  std::size_t completed_count() const;

  // --- overload accounting -------------------------------------------------
  // Contract for every completed-job average below (mean_flow_time,
  // mean_flow_time_admitted, flow_percentile, goodput): when the relevant
  // denominator is zero the result is quiet NaN, never a division by zero or
  // a fake 0.0 — JSON emitters serialize it as null.

  /// Jobs evicted mid-run by the admission controller.
  std::size_t shed_count() const;
  /// Jobs refused at arrival (never admitted).
  std::size_t rejected_count() const;
  /// Jobs that entered the system (completed or later shed).
  std::size_t admitted_count() const;
  /// Total p_j over shed + rejected jobs: the volume deliberately dropped.
  double shed_volume() const;
  /// Completed jobs per unit time over the run (completed_count / makespan):
  /// the honest throughput of a degraded run. NaN if nothing completed.
  double goodput() const;

  /// Sum of (C_j - r_j) over completed jobs. The paper's primary objective.
  double total_flow_time() const;

  /// Mean flow time over completed jobs; NaN when no job completed.
  double mean_flow_time() const;

  /// Completed flow normalized by ADMITTED jobs (completed + shed): unlike
  /// mean_flow_time this cannot be gamed by shedding slow jobs, because the
  /// shed ones stay in the denominator. NaN when nothing was admitted.
  double mean_flow_time_admitted() const;

  /// q-quantile of completed flow times (q in [0,1]; 0.99 = p99), computed
  /// by rank ceil(q*n) over the sorted flows. NaN when no job completed.
  double flow_percentile(double q) const;

  /// The paper's fractional flow time variant (Section 2).
  double total_fractional_flow_time() const;

  /// Weighted extensions (beyond the paper, which has unit weights).
  double total_weighted_flow_time() const;
  double total_weighted_fractional_flow_time() const;

  /// Maximum flow time (the open-question objective in the conclusion).
  double max_flow_time() const;

  /// l_k norm of flow times: (sum flow^k)^(1/k); k >= 1.
  double lk_norm_flow_time(double k) const;

  /// Makespan: latest completion time.
  double makespan() const;

 private:
  std::vector<JobRecord> jobs_;
};

}  // namespace treesched::sim
