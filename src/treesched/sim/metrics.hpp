// Per-job and aggregate result accounting for a simulation run.
#pragma once

#include <limits>
#include <vector>

#include "treesched/core/types.hpp"

namespace treesched::sim {

/// Everything recorded about one job over a run.
struct JobRecord {
  JobId id = kInvalidJob;
  Time release = 0.0;
  double weight = 1.0;
  NodeId leaf = kInvalidNode;            ///< assigned machine
  Time completion = -1.0;                ///< leaf completion; -1 if unfinished
  double fractional_area = 0.0;          ///< the paper's fractional flow contribution
  std::vector<Time> node_completion;     ///< completion per path index (first hop..leaf)

  bool completed() const { return completion >= 0.0; }
  Time flow() const { return completed() ? completion - release : -1.0; }
};

/// Aggregates over a run. Populated by the Engine; query helpers compute the
/// objectives studied in the paper (total / fractional flow) plus the
/// extension objectives (max flow, l_k norms).
class Metrics {
 public:
  void reset(std::size_t job_count);

  JobRecord& job(JobId j) { return jobs_[uidx(j)]; }
  const JobRecord& job(JobId j) const { return jobs_[uidx(j)]; }
  const std::vector<JobRecord>& jobs() const { return jobs_; }

  bool all_completed() const;
  std::size_t completed_count() const;

  /// Sum of (C_j - r_j) over completed jobs. The paper's primary objective.
  double total_flow_time() const;

  /// Mean flow time over completed jobs.
  double mean_flow_time() const;

  /// The paper's fractional flow time variant (Section 2).
  double total_fractional_flow_time() const;

  /// Weighted extensions (beyond the paper, which has unit weights).
  double total_weighted_flow_time() const;
  double total_weighted_fractional_flow_time() const;

  /// Maximum flow time (the open-question objective in the conclusion).
  double max_flow_time() const;

  /// l_k norm of flow times: (sum flow^k)^(1/k); k >= 1.
  double lk_norm_flow_time(double k) const;

  /// Makespan: latest completion time.
  double makespan() const;

 private:
  std::vector<JobRecord> jobs_;
};

}  // namespace treesched::sim
