// Per-job and aggregate result accounting for a simulation run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <vector>

#include "treesched/core/types.hpp"
#include "treesched/stats/quantile_sketch.hpp"
#include "treesched/util/csum.hpp"

namespace treesched::sim {

/// Everything recorded about one job over a run.
struct JobRecord {
  JobId id = kInvalidJob;
  Time release = 0.0;
  double weight = 1.0;
  double size = 0.0;                     ///< p_j (recorded for shed accounting)
  NodeId leaf = kInvalidNode;            ///< assigned machine
  Time completion = -1.0;                ///< leaf completion; -1 if unfinished
  double fractional_area = 0.0;          ///< the paper's fractional flow contribution
  bool shed = false;                     ///< evicted by the admission controller
  bool rejected = false;                 ///< refused at arrival (never admitted)
  std::vector<Time> node_completion;     ///< completion per path index (first hop..leaf)
  bool finalized = false;                ///< streaming mode: folded into the accumulator

  bool completed() const { return completion >= 0.0; }
  Time flow() const { return completed() ? completion - release : -1.0; }
  /// Admitted = the job entered the system (completed or shed, not rejected).
  bool admitted() const { return leaf != kInvalidNode; }
};

/// How Metrics stores results. kFull keeps every JobRecord queryable forever
/// (the historical behavior); kStreaming folds each record into a
/// bounded-memory accumulator the moment the job retires (completes, is
/// shed, or is rejected), so an endurance run's memory never grows with the
/// number of retired jobs — only with the live window.
enum class MetricsMode { kFull, kStreaming };

/// Bounded-memory aggregate over all retired (finalized) jobs. Everything a
/// streaming run reports comes from here plus the still-live window records;
/// flow percentiles come from the quantile sketches (see
/// stats/quantile_sketch.hpp for the documented rank-error bound).
struct StreamAccumulator {
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t admitted = 0;  ///< finalized admitted (completed + shed)
  util::CompensatedSum flow;
  util::CompensatedSum weighted_flow;
  util::CompensatedSum frac;
  util::CompensatedSum weighted_frac;
  util::CompensatedSum shed_volume;
  double max_flow = 0.0;
  double makespan = 0.0;
  stats::QuantileDigest flow_digest;   ///< all completed flows (percentiles)
  stats::P2Quantile p99_marker{0.99};  ///< independent p99 cross-check

  /// Folds one retired job in. Call order defines the sketch insertion
  /// sequence, so callers must fold in a deterministic order (the engine
  /// folds in completion order, which is deterministic by construction).
  void fold(const JobRecord& r);

  /// Text round-trip (full %.17g precision) for engine snapshots. Carries
  /// an FNV-1a-64 self-checksum (as do the embedded sketches): load()
  /// rejects truncated or bit-flipped state with std::invalid_argument
  /// instead of silently mis-loading.
  void save(std::ostream& os) const;
  void load(std::istream& is);
};

/// Aggregates over a run. Populated by the Engine; query helpers compute the
/// objectives studied in the paper (total / fractional flow) plus the
/// extension objectives (max flow, l_k norms).
class Metrics {
 public:
  /// Clears all records. Preserves the mode but NOT the accumulator — a
  /// streaming caller that rotates windows must re-arm via enable_streaming
  /// with the carried accumulator after the owning engine resets.
  void reset(std::size_t job_count);

  JobRecord& job(JobId j) { return jobs_[uidx(j)]; }
  const JobRecord& job(JobId j) const { return jobs_[uidx(j)]; }
  /// In streaming mode this is only the current window, not history.
  const std::vector<JobRecord>& jobs() const { return jobs_; }

  // --- streaming mode ------------------------------------------------------

  MetricsMode mode() const { return mode_; }

  /// Switches to streaming mode, seeding the accumulator with `acc` (the
  /// carry-over from previous windows; default empty). Must be called before
  /// any job in the current window retires.
  void enable_streaming(StreamAccumulator acc = StreamAccumulator());

  /// Streaming mode: folds job j's record into the accumulator and marks it
  /// finalized (idempotent). No-op in full mode. The engine calls this at
  /// every retirement point (completion, shed, reject), so fold order equals
  /// retirement order — deterministic.
  void finalize_job(JobId j);

  const StreamAccumulator& stream_accumulator() const { return acc_; }

  /// Text round-trip of mode + accumulator + all window records, for engine
  /// snapshots. load() requires reset() with at least the serialized record
  /// count first (extra records stay fresh — window extension).
  void save(std::ostream& os) const;
  void load(std::istream& is);

  /// In streaming mode: scoped to the current window (history is retired).
  bool all_completed() const;
  /// audit: work-conservation (every completion re-derived from the burst
  /// log; a claimed completion with missing machine work is a violation).
  std::size_t completed_count() const;

  // --- overload accounting -------------------------------------------------
  // Contract for every completed-job average below (mean_flow_time,
  // mean_flow_time_admitted, flow_percentile, goodput): when the relevant
  // denominator is zero the result is quiet NaN, never a division by zero or
  // a fake 0.0 — JSON emitters serialize it as null.

  /// Jobs evicted mid-run by the admission controller.
  /// audit: admission-control (a shed job must never progress or complete
  /// after its recorded eviction).
  std::size_t shed_count() const;
  /// Jobs refused at arrival (never admitted).
  /// audit: admission-control (a rejected job must never run at all).
  std::size_t rejected_count() const;
  /// Jobs that entered the system (completed or later shed).
  /// audit: admission-control (admission epochs reconstructed per job).
  std::size_t admitted_count() const;
  /// Total p_j over shed + rejected jobs: the volume deliberately dropped.
  /// audit: admission-control (sums instance sizes over audited shed flags).
  double shed_volume() const;
  /// Completed jobs per unit time over the run (completed_count / makespan):
  /// the honest throughput of a degraded run. NaN if nothing completed.
  /// audit: none(derived ratio of completed_count and makespan, both audited).
  double goodput() const;

  /// Sum of (C_j - r_j) over completed jobs. The paper's primary objective.
  /// audit: work-conservation (completions re-derived from segment work;
  /// treesched_audit recomputes the sum from the log alone).
  double total_flow_time() const;

  /// Mean flow time over completed jobs; NaN when no job completed.
  /// audit: none(total_flow_time / completed_count, both audited).
  double mean_flow_time() const;

  /// Completed flow normalized by ADMITTED jobs (completed + shed): unlike
  /// mean_flow_time this cannot be gamed by shedding slow jobs, because the
  /// shed ones stay in the denominator. NaN when nothing was admitted.
  /// audit: none(total_flow_time / admitted_count, both audited).
  double mean_flow_time_admitted() const;

  /// q-quantile of completed flow times (q in [0,1]; 0.99 = p99). Full mode:
  /// exact rank ceil(q*n) over the sorted flows. Streaming mode: the digest
  /// estimate, whose rank is within n/max_centroids (+ buffered tail) of the
  /// request — see stats/quantile_sketch.hpp. NaN when no job completed.
  /// audit: none(order statistic / sketch of audited per-job flows).
  double flow_percentile(double q) const;

  /// The paper's fractional flow time variant (Section 2).
  /// audit: work-conservation (the area integrand is remaining work, whose
  /// trajectory the audit reconstructs per segment).
  double total_fractional_flow_time() const;

  /// Weighted extensions (beyond the paper, which has unit weights).
  /// audit: work-conservation (weights come from the instance; the flow
  /// factors are the audited per-job quantities).
  double total_weighted_flow_time() const;
  /// audit: work-conservation (same factorization as above).
  double total_weighted_fractional_flow_time() const;

  /// Maximum flow time (the open-question objective in the conclusion).
  /// audit: none(max over audited per-job flows).
  double max_flow_time() const;

  /// l_k norm of flow times: (sum flow^k)^(1/k); k >= 1. Full mode only —
  /// streaming keeps no per-job flows and the sketches don't support moments.
  /// audit: none(monotone transform of audited per-job flows).
  double lk_norm_flow_time(double k) const;

  /// Makespan: latest completion time.
  /// audit: capacity (no segment may end after the claimed makespan; the
  /// audit's reconstructed timeline bounds it from below).
  double makespan() const;

 private:
  std::vector<JobRecord> jobs_;
  MetricsMode mode_ = MetricsMode::kFull;
  StreamAccumulator acc_;  ///< meaningful only in streaming mode
};

}  // namespace treesched::sim
