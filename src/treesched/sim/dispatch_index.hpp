// Order-statistic index over a node's inflight jobs, keyed by the SJF
// priority triple (original size on the node, release time, job id).
//
// The engine maintains one DispatchIndex per node so the paper's aggregate
// queries (Engine::higher_priority_remaining, count_larger,
// larger_residual_fraction, alpha_leaf) answer in O(log n) instead of
// rescanning Q_v. Keys are immutable for a given (job, node) — only the
// remaining-work value changes — so the structure is an augmented treap
// with subtree aggregates:
//   cnt       |subtree|
//   sum_rem   sum of remaining over the subtree
//   sum_frac  sum of remaining / size over the subtree
//
// Because the key's primary component IS the size, both "all entries with
// strictly higher SJF priority than a candidate key" and "all entries with
// size strictly greater than a threshold" are contiguous key ranges, and
// every query is a single root-to-leaf descent.
//
// Treap priorities are a deterministic hash of the job id, so the tree
// shape — and therefore the floating-point association of the aggregate
// sums — depends only on the set of inserted jobs, never on wall-clock
// randomness. Identical runs produce identical query results.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "treesched/core/types.hpp"

namespace treesched::sim {

/// SJF ordering triple of the paper's aggregate queries; smaller = higher
/// priority. Matches the comparison in the naive Q_v scans exactly.
struct SjfKey {
  double size = 0.0;
  Time release = 0.0;
  JobId job = kInvalidJob;

  friend bool operator<(const SjfKey& x, const SjfKey& y) {
    if (x.size != y.size) return x.size < y.size;
    if (x.release != y.release) return x.release < y.release;
    return x.job < y.job;
  }
  friend bool operator==(const SjfKey& x, const SjfKey& y) {
    return x.size == y.size && x.release == y.release && x.job == y.job;
  }
};

/// Shared backing store for dispatch-index treap nodes. The engine owns ONE
/// pool and attaches it to every per-node index, so the whole engine's treap
/// nodes live in a single contiguous allocation (with one shared free list)
/// instead of one vector per node. Refs handed out to different indices
/// intermix freely — an index only ever follows refs reachable from its own
/// root. Treap shapes, and hence float associations, are untouched: the pool
/// changes where nodes live, never how trees are built.
class TreapPool {
 public:
  using Ref = std::int32_t;
  static constexpr Ref kNil = -1;

  struct Node {
    SjfKey key;
    double rem = 0.0;
    double frac = 0.0;      ///< rem / key.size, precomputed at update time
    double sum_rem = 0.0;   ///< subtree aggregate of rem
    double sum_frac = 0.0;  ///< subtree aggregate of frac
    std::int32_t cnt = 0;   ///< subtree size
    Ref left = kNil;
    Ref right = kNil;
    std::uint32_t prio = 0;
  };

  Node& node(Ref t) { return nodes_[uidx(t)]; }
  const Node& node(Ref t) const { return nodes_[uidx(t)]; }

  /// Hands out a node (recycled or fresh); the caller initializes it.
  Ref alloc() {
    if (!free_list_.empty()) {
      const Ref t = free_list_.back();
      free_list_.pop_back();
      return t;
    }
    const Ref t = static_cast<Ref>(nodes_.size());
    nodes_.emplace_back();
    return t;
  }
  void free(Ref t) { free_list_.push_back(t); }

 private:
  std::vector<Node> nodes_;
  std::vector<Ref> free_list_;
};

class DispatchIndex {
 public:
  /// Points this index at a shared node pool (the engine attaches its
  /// per-engine pool to every node's index at construction). Must be called
  /// while the index is empty. Without an attached pool the index lazily
  /// creates a private one on first insert, so standalone use (tests,
  /// tools) needs no setup.
  void attach_pool(TreapPool* pool);

  /// Inserts a new entry. The key must not be present. O(log n).
  void insert(const SjfKey& key, double remaining);

  /// Replaces the remaining value of an existing entry. O(log n).
  void update(const SjfKey& key, double remaining);

  /// Removes an existing entry. O(log n).
  void erase(const SjfKey& key);

  std::size_t size() const {
    return root_ == kNil ? 0 : uidx(pool_->node(root_).cnt);
  }
  bool empty() const { return root_ == kNil; }

  /// Sum of remaining over entries with key strictly less than `key`
  /// (strictly higher SJF priority). The key itself, if present, is
  /// excluded. O(log n).
  double remaining_before(const SjfKey& key) const;

  /// Number of entries with size strictly greater than `size`. O(log n).
  int count_size_greater(double size) const;

  /// Sum of remaining / size over entries with size strictly greater than
  /// `size`. O(log n).
  double fraction_size_greater(double size) const;

  /// Sum of remaining over all entries. O(1).
  double total_remaining() const {
    return root_ == kNil ? 0.0 : pool_->node(root_).sum_rem;
  }

  /// Sum of remaining / size over all entries. O(1).
  double total_fraction() const {
    return root_ == kNil ? 0.0 : pool_->node(root_).sum_frac;
  }

 private:
  using Ref = TreapPool::Ref;
  using Node = TreapPool::Node;
  static constexpr Ref kNil = TreapPool::kNil;

  TreapPool& pool();

  Ref alloc(const SjfKey& key, double remaining);
  void pull(Ref t);
  void split(Ref t, const SjfKey& key, Ref& left, Ref& right);
  Ref merge(Ref left, Ref right);
  Ref erase_rec(Ref t, const SjfKey& key, bool& erased);
  bool update_rec(Ref t, const SjfKey& key, double remaining);

  TreapPool* pool_ = nullptr;
  std::unique_ptr<TreapPool> owned_;  ///< lazy fallback for standalone use
  Ref root_ = kNil;
};

}  // namespace treesched::sim
