// Engine snapshot/restore (treesched-enginestate-v2; v2 added the
// self-checksummed metrics/sketch serialization, so v1 blobs are rejected).
//
// Serializes the complete live simulation state as text at full double
// precision so that load_state + replay of the remaining arrivals is
// byte-identical to an uninterrupted run. Two deliberate non-goals keep the
// format small and the determinism argument simple:
//
//  * Dispatch-index treaps are NOT serialized. Their shape and float
//    association depend only on the key set (deterministic hashed
//    priorities), so the loader re-inserts the restored inflight keys and
//    obtains bit-identical aggregates — this is the property
//    sim_dispatch_index_test locks down. It also lets a fast-path engine
//    load a slow-path snapshot and vice versa (the differential test).
//
//  * Node availability sets are NOT serialized either: every member is some
//    job's (in_avail, avail_key) pair, so they are rebuilt from the per-job
//    arrays. The pending event queue IS serialized verbatim (minus stale
//    entries), because completion event times are sums that cannot be
//    re-derived bit-exactly from the restored remaining work.
//
// Restrictions (TS_REQUIREd at save): no fault plan consumed, no
// custom-path jobs, all nodes in nominal fault state. Streaming endurance
// runs satisfy all three by construction.
#include <algorithm>
#include <iomanip>
#include <istream>
#include <ostream>
#include <string>

#include "treesched/sim/engine.hpp"
#include "treesched/util/assert.hpp"

namespace treesched::sim {

namespace {

constexpr char kMagic[] = "enginestate";
constexpr int kVersion = 2;

void expect_tag(std::istream& is, const char* tag) {
  std::string got;
  is >> got;
  TS_REQUIRE(is && got == tag, std::string("engine load: expected '") + tag +
                                   "', got '" + got + "'");
}

}  // namespace

void Engine::save_state(std::ostream& os) const {
  TS_REQUIRE(fault_plan_ == nullptr && fault_log_.empty(),
             "save_state does not support fault runs");
  for (const NodeState& ns : nodes_)
    TS_REQUIRE(!ns.down && !ns.edge_down && ns.factor == 1.0 &&
                   ns.deferred.empty(),
               "save_state requires nodes in nominal fault state");
  for (const JobState& js : jobs_)
    TS_REQUIRE(!has_custom_path(js),
               "save_state does not support custom-path jobs");

  const auto flags = os.flags();
  const auto prec = os.precision();
  os << std::setprecision(17);

  os << kMagic << ' ' << kVersion << '\n';
  os << "config " << node_policy_name(cfg_.node_policy) << ' '
     << (cfg_.record_schedule ? 1 : 0) << ' ' << cfg_.router_chunk_size
     << '\n';
  os << "clock " << now_ << ' ' << seq_ << ' ' << mutation_count_ << ' '
     << static_cast<long long>(admitted_count_) << ' '
     << static_cast<long long>(rejected_count_) << '\n';

  // Per-job status chart: '.' untouched, 'R' rejected, 'L' live (admitted,
  // unfinished, not shed), 'D' done, 'S' shed. Touched-but-not-rejected jobs
  // get a full state line below.
  std::string status(jobs_.size(), '.');
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const JobState& js = jobs_[j];
    if (js.rejected)
      status[j] = 'R';
    else if (js.shed)
      status[j] = 'S';
    else if (js.done)
      status[j] = 'D';
    else if (js.admitted)
      status[j] = 'L';
  }
  os << "status " << status.size() << ' ' << status << '\n';

  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const JobState& js = jobs_[j];
    if (status[j] == '.' || status[j] == 'R') continue;
    const std::size_t len = js.len;
    os << "job " << j << ' ' << status[j] << ' ' << js.leaf << ' '
       << js.chunks << ' ' << js.chunk_size << ' ' << js.leaf_rem << ' '
       << js.frac << ' ' << js.frac_touch << ' ' << len;
    for (std::size_t i = 0; i + 1 < len; ++i)
      os << ' ' << chunks_done(js, i) << ' ' << head_rem(js, i);
    for (std::size_t i = 0; i < len; ++i) {
      os << ' ' << (in_avail(js, i) ? 1 : 0);
      if (in_avail(js, i)) {
        const PriorityKey& k = avail_key(js, i);
        os << ' ' << k.a << ' ' << k.b << ' ' << k.chunk;
      }
    }
    os << '\n';
  }

  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    const NodeState& ns = nodes_[v];
    os << "node " << v << ' ' << ns.version << ' ' << ns.burst_start << ' '
       << (ns.has_running ? 1 : 0);
    if (ns.has_running)
      os << ' ' << ns.running.a << ' ' << ns.running.b << ' '
         << ns.running.job << ' ' << ns.running.chunk << ' '
         << ns.running_rem;
    os << '\n';
  }

  // Pending events in pop order, stale ones (version mismatch) dropped: the
  // loader re-pushes and the queue restores the identical (t, seq) order.
  std::vector<SimEvent> live;
  for (const SimEvent& ev : events_.sorted_events())
    if (ev.version == nodes_[uidx(ev.node)].version) live.push_back(ev);
  os << "events " << live.size() << '\n';
  for (const SimEvent& ev : live)
    os << "ev " << ev.t << ' ' << ev.seq << ' ' << ev.node << ' '
       << ev.version << '\n';

  os << "shedlog " << shed_log_.size() << '\n';
  for (const ShedRecord& sr : shed_log_)
    os << "sl " << static_cast<int>(sr.kind) << ' ' << sr.t << ' ' << sr.job
       << ' ' << sr.f << ' ' << sr.bound << '\n';

  metrics_.save(os);
  os << "end\n";
  os.flags(flags);
  os.precision(prec);
}

void Engine::load_state(std::istream& is) {
  TS_REQUIRE(now_ == 0.0 && seq_ == 0 && mutation_count_ == 0 &&
                 admitted_count_ == 0 && rejected_count_ == 0 &&
                 events_.empty() && fault_plan_ == nullptr,
             "load_state requires a pristine engine");

  expect_tag(is, kMagic);
  int version = 0;
  is >> version;
  TS_REQUIRE(is && version == kVersion, "engine load: unsupported version");

  expect_tag(is, "config");
  std::string policy;
  int record = 0;
  double chunk = 0.0;
  is >> policy >> record >> chunk;
  TS_REQUIRE(is && policy == node_policy_name(cfg_.node_policy),
             "engine load: node policy mismatch");
  TS_REQUIRE((record != 0) == cfg_.record_schedule,
             "engine load: record_schedule mismatch");
  TS_REQUIRE(chunk == cfg_.router_chunk_size,
             "engine load: router_chunk_size mismatch");

  expect_tag(is, "clock");
  long long adm = 0, rej = 0;
  is >> now_ >> seq_ >> mutation_count_ >> adm >> rej;
  admitted_count_ = static_cast<JobId>(adm);
  rejected_count_ = static_cast<JobId>(rej);

  expect_tag(is, "status");
  std::size_t n = 0;
  std::string status;
  is >> n >> status;
  TS_REQUIRE(is && status.size() == n, "engine load: malformed status chart");
  TS_REQUIRE(n <= jobs_.size(),
             "engine load: snapshot has more jobs than the instance");
  for (std::size_t j = 0; j < n; ++j)
    if (status[j] == 'R') jobs_[j].rejected = true;

  std::string tag;
  while (is >> tag && tag == "job") {
    std::size_t j = 0;
    char st = 0;
    std::size_t len = 0;
    is >> j;
    TS_REQUIRE(is && j < n, "engine load: job id out of range");
    JobState& js = jobs_[j];
    is >> st >> js.leaf >> js.chunks >> js.chunk_size >> js.leaf_rem >>
        js.frac >> js.frac_touch >> len;
    TS_REQUIRE(is && status[j] == st, "engine load: bad job line");
    TS_REQUIRE(tree().is_leaf(js.leaf), "engine load: job leaf is no machine");
    js.path = &tree().path_to(js.leaf);
    TS_REQUIRE(js.path->size() == len, "engine load: path length mismatch");
    js.admitted = true;
    js.done = st == 'D';
    js.shed = st == 'S';
    js.span = alloc_span(len);
    js.len = static_cast<std::uint32_t>(len);
    for (std::size_t i = 0; i + 1 < len; ++i)
      is >> chunks_done(js, i) >> head_rem(js, i);
    for (std::size_t i = 0; i < len; ++i) {
      int avail = 0;
      is >> avail;
      if (avail == 0) continue;
      TS_REQUIRE(st == 'L', "engine load: retired job has available work");
      PriorityKey k;
      k.job = static_cast<JobId>(j);
      is >> k.a >> k.b >> k.chunk;
      in_avail(js, i) = 1;
      avail_key(js, i) = k;
      // Availability heaps rebuild from the per-job arrays; their internal
      // layout is never observable (pops follow the full key order).
      avail_push((*js.path)[i], k, static_cast<int>(i));
    }
    TS_REQUIRE(static_cast<bool>(is), "engine load: truncated job line");
    if (st == 'L') {
      // Queue membership mirrors unfinished work per hop; the dispatch-index
      // treaps rebuild bit-identically from the restored key set.
      for (std::size_t i = 0; i + 1 < len; ++i) {
        if (chunks_done(js, i) >= js.chunks) continue;
        nodes_[uidx((*js.path)[i])].inflight.insert(static_cast<JobId>(j));
        index_insert((*js.path)[i], static_cast<JobId>(j),
                     static_cast<int>(i));
      }
      nodes_[uidx(js.leaf)].inflight.insert(static_cast<JobId>(j));
      index_insert(js.leaf, static_cast<JobId>(j),
                   static_cast<int>(len - 1));
    }
  }

  TS_REQUIRE(tag == "node", "engine load: expected node section");
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    if (v > 0) expect_tag(is, "node");
    std::size_t id = 0;
    int has_running = 0;
    NodeState& ns = nodes_[v];
    is >> id >> ns.version >> ns.burst_start >> has_running;
    TS_REQUIRE(is && id == v, "engine load: node section out of order");
    ns.has_running = has_running != 0;
    if (ns.has_running) {
      is >> ns.running.a >> ns.running.b >> ns.running.job >>
          ns.running.chunk >> ns.running_rem;
      // Derived, not serialized: the running item's path index.
      ns.running_idx =
          path_index(jobs_[uidx(ns.running.job)], static_cast<NodeId>(v));
    }
  }

  expect_tag(is, "events");
  std::size_t nev = 0;
  is >> nev;
  for (std::size_t i = 0; i < nev; ++i) {
    expect_tag(is, "ev");
    SimEvent ev;
    is >> ev.t >> ev.seq >> ev.node >> ev.version;
    TS_REQUIRE(is && ev.seq < seq_, "engine load: event from the future");
    events_.push(ev);
  }

  expect_tag(is, "shedlog");
  std::size_t nsl = 0;
  is >> nsl;
  shed_log_.assign(nsl, ShedRecord{});
  for (std::size_t i = 0; i < nsl; ++i) {
    expect_tag(is, "sl");
    int kind = 0;
    is >> kind >> shed_log_[i].t >> shed_log_[i].job >> shed_log_[i].f >>
        shed_log_[i].bound;
    shed_log_[i].kind = static_cast<ShedRecord::Kind>(kind);
  }

  metrics_.load(is);
  expect_tag(is, "end");
  TS_REQUIRE(static_cast<bool>(is), "engine load: truncated snapshot");
}

}  // namespace treesched::sim
