#include "treesched/sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "treesched/util/assert.hpp"

namespace treesched::sim {

namespace {
constexpr std::size_t kMinBuckets = 64;
constexpr std::size_t kMaxBuckets = 1u << 15;
// Bucket indices are uint64, but the binding limit is double precision: the
// horizon arithmetic width * (cur + nbuckets) must see the +nbuckets term,
// which requires cur + nbuckets to be exactly representable. 2^52 keeps
// integer doubles exact with headroom; beyond it, events degrade gracefully
// to the overflow heap, which is a plain min-heap served directly.
constexpr double kMaxBucketIndex = 4.5e15;

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = kMinBuckets;
  while (p < n && p < kMaxBuckets) p <<= 1;
  return p;
}
}  // namespace

EventQueue::EventQueue() {
  buckets_.resize(kMinBuckets);
  grow_at_ = 2 * kMinBuckets;
  shrink_at_ = 0;
}

std::uint64_t EventQueue::bucket_index(Time t) const {
  if (!(t > 0.0)) return 0;
  const double idx = t / width_;
  if (idx >= kMaxBucketIndex) return static_cast<std::uint64_t>(kMaxBucketIndex);
  return static_cast<std::uint64_t>(idx);
}

void EventQueue::push_into_ring(const SimEvent& ev) {
  std::uint64_t idx = bucket_index(ev.t);
  // Events at or before the drain frontier join the current bucket; its heap
  // orders them by the full (t, seq) key, so clamping never reorders pops.
  if (idx < cur_) idx = cur_;
  std::vector<SimEvent>& b = bucket(idx);
  b.push_back(ev);
  if (idx == cur_ && cur_heaped_)
    std::push_heap(b.begin(), b.end(), heap_cmp);
  ++ring_count_;
}

void EventQueue::push(const SimEvent& ev) {
  ++size_;
  if (std::isfinite(ev.t) && ev.t < horizon()) {
    push_into_ring(ev);
  } else {
    overflow_.push_back(ev);
    std::push_heap(overflow_.begin(), overflow_.end(), heap_cmp);
  }
  maybe_resize();
}

void EventQueue::migrate_overflow() {
  while (!overflow_.empty() && overflow_.front().t < horizon()) {
    std::pop_heap(overflow_.begin(), overflow_.end(), heap_cmp);
    const SimEvent ev = overflow_.back();
    overflow_.pop_back();
    push_into_ring(ev);
  }
}

void EventQueue::settle() {
  migrate_overflow();
  for (;;) {
    std::vector<SimEvent>& b = bucket(cur_);
    if (!b.empty()) {
      if (!cur_heaped_) {
        std::make_heap(b.begin(), b.end(), heap_cmp);
        cur_heaped_ = true;
      }
      return;
    }
    if (ring_count_ == 0) {
      // Only far-future events remain. Re-base the ring onto the pending
      // minimum — safe because every pending and every future push is at or
      // after it — unless its bucket index would overflow (then the heap
      // serves directly: settle() leaves the ring empty and peek() falls
      // through to the overflow front).
      TS_CHECK(!overflow_.empty(), "event queue accounting out of sync");
      const double idx = overflow_.front().t / width_;
      if (!(idx < kMaxBucketIndex)) return;
      cur_ = bucket_index(overflow_.front().t);
      cur_heaped_ = true;  // empty bucket is trivially a heap
      migrate_overflow();
      // If rounding in the horizon comparison kept even the minimum from
      // migrating, re-basing again would spin on the same bucket — serve
      // the overflow heap directly instead (still exact (t, seq) order).
      if (ring_count_ == 0) return;
      continue;
    }
    ++cur_;
    cur_heaped_ = false;  // next bucket holds plain appends until heapified
    migrate_overflow();
  }
}

const SimEvent* EventQueue::peek() {
  if (size_ == 0) return nullptr;
  settle();
  const std::vector<SimEvent>& b = bucket(cur_);
  if (!b.empty()) return &b.front();
  return &overflow_.front();
}

SimEvent EventQueue::pop() {
  const SimEvent* top = peek();
  TS_CHECK(top != nullptr, "pop from an empty event queue");
  const SimEvent ev = *top;
  std::vector<SimEvent>& b = bucket(cur_);
  if (!b.empty()) {
    std::pop_heap(b.begin(), b.end(), heap_cmp);
    b.pop_back();
    --ring_count_;
  } else {
    std::pop_heap(overflow_.begin(), overflow_.end(), heap_cmp);
    overflow_.pop_back();
  }
  --size_;
  maybe_resize();
  return ev;
}

void EventQueue::maybe_resize() {
  if (size_ > grow_at_ || (size_ < shrink_at_ && buckets_.size() > kMinBuckets))
    rebuild(pow2_at_least(size_), width_);
}

void EventQueue::rebuild(std::size_t nbuckets, double width) {
  std::vector<SimEvent> all;
  all.reserve(size_);
  for (std::vector<SimEvent>& b : buckets_) {
    all.insert(all.end(), b.begin(), b.end());
    b.clear();
  }
  all.insert(all.end(), overflow_.begin(), overflow_.end());
  overflow_.clear();

  double min_t = std::numeric_limits<double>::infinity();
  double max_t = -std::numeric_limits<double>::infinity();
  for (const SimEvent& ev : all) {
    if (std::isfinite(ev.t)) {
      min_t = std::min(min_t, ev.t);
      max_t = std::max(max_t, ev.t);
    }
  }
  // Aim for ~1 event per bucket over the observed span; keep the old width
  // when the estimate degenerates (empty queue, single instant, non-finite).
  if (!all.empty() && std::isfinite(min_t)) {
    const double est = (max_t - min_t) / static_cast<double>(all.size());
    if (est > 0.0 && std::isfinite(est)) width = est;
  }
  if (std::isfinite(min_t) && min_t / width >= kMaxBucketIndex)
    width = min_t / (kMaxBucketIndex / 2.0);

  buckets_.assign(nbuckets, {});
  width_ = width;
  ring_count_ = 0;
  cur_heaped_ = false;
  cur_ = std::isfinite(min_t) ? bucket_index(min_t) : 0;
  // Disarm the thresholds while re-pushing (push -> maybe_resize would
  // otherwise recurse); arm the real ones afterwards. At the bucket cap the
  // grow trigger stays disarmed — buckets just run fuller.
  grow_at_ = std::numeric_limits<std::size_t>::max();
  shrink_at_ = 0;

  size_ = 0;
  for (const SimEvent& ev : all) push(ev);

  if (nbuckets < kMaxBuckets) grow_at_ = 2 * nbuckets;
  shrink_at_ = nbuckets > kMinBuckets ? nbuckets / 8 : 0;
}

std::vector<SimEvent> EventQueue::sorted_events() const {
  std::vector<SimEvent> all;
  all.reserve(size_);
  for (const std::vector<SimEvent>& b : buckets_)
    all.insert(all.end(), b.begin(), b.end());
  all.insert(all.end(), overflow_.begin(), overflow_.end());
  std::sort(all.begin(), all.end(), event_less);
  return all;
}

}  // namespace treesched::sim
