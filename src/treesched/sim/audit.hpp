// Offline invariant analyzer for recorded runs.
//
// Re-derives every model invariant from (instance, run log) alone, trusting
// neither Engine state nor Metrics. Beyond the feasibility checks shared with
// validator.hpp, the audit reconstructs per-work-item availability windows
// from the burst log and checks the *scheduling discipline* itself:
//
//   - store-and-forward precedence (chunk c starts on a node no earlier than
//     it finished on the parent; leaf work waits for all data);
//   - unit capacity: each node runs at most one work item at any instant;
//   - priority consistency: a node never runs an item while a strictly
//     higher-priority item is available on it (SJF/FIFO/LCFS/HDF — SRPT keys
//     depend on instantaneous remaining work and are skipped);
//   - assignment stability (immediate dispatch): all of a job's work stays on
//     the single path fixed at admission, with machine work only at its end;
//   - optionally, the paper's lemma bounds with per-job worst-case margins:
//     Lemma 2's (2/eps)·p_j available-volume bound at arrival on each
//     interior node, and the Lemma 1/3 interior wait bound (6/eps²)·p_j·d_v.
//
// Run logs carrying fault records switch the audit into its fault mode: the
// structural checks become epoch-aware (a job's path changes at every
// re-dispatch) and the recovery invariants are verified instead — no work at
// a dead node, burst rates match speed x slowdown factor, re-dispatch chains
// move jobs from a dead machine to a live one, the final attempt performs
// exactly the required machine work, and all routing precedes it. Priority
// consistency and lemma margins are skipped with a note.
//
// Run logs carrying admission-control records (a shed policy) get the
// overload rules on top, in both modes: a rejected job never runs and is
// exempt from the never-dispatched check, a shed job never progresses after
// its eviction and never completes, and no job is both shed and
// re-dispatched. In clean mode the volume caps of bounded-queue /
// largest-first are re-verified at every admission epoch by reconstructing
// the root-cut backlog from the burst log, and deadline admissions must
// match their recorded Lemma-4 F estimate against bound = slack x p_j.
#pragma once

#include <string>
#include <vector>

#include "treesched/core/instance.hpp"
#include "treesched/sim/run_log.hpp"

namespace treesched::sim {

struct AuditOptions {
  /// Speed-augmentation epsilon. > 0 computes the lemma margin table.
  double eps = 0.0;
  /// Treat a lemma ratio > 1 as a violation (off by default: the lemmas
  /// presuppose class-rounded sizes and (1+eps)-speeds, which an arbitrary
  /// run log need not satisfy).
  bool strict_lemmas = false;
  double tol = 1e-6;
};

/// Worst-case lemma margins for one job. Ratios are measured/bound; <= 1
/// means the bound held. -1 marks "not applicable" (no eligible node).
struct LemmaRow {
  JobId job = kInvalidJob;
  double size = 0.0;
  double lemma2_ratio = -1.0;   ///< max over eligible nodes
  NodeId lemma2_node = kInvalidNode;
  double interior_wait = -1.0;
  double wait_bound = -1.0;
  double wait_ratio = -1.0;
};

struct AuditReport {
  bool ok = true;
  std::vector<std::string> violations;
  std::vector<std::string> notes;   ///< non-fatal observations (skipped checks)
  std::size_t jobs_checked = 0;
  std::size_t segments_checked = 0;
  std::vector<LemmaRow> lemma_rows;
  double lemma2_max_ratio = -1.0;
  double wait_max_ratio = -1.0;

  void fail(std::string msg) {
    ok = false;
    if (violations.size() < 100) violations.push_back(std::move(msg));
  }
  /// One-paragraph verdict plus every violation and note.
  std::string summary() const;
  /// Per-job lemma margin table (empty string when eps was not set).
  std::string lemma_table() const;
};

/// Audits a recorded run against the instance it claims to schedule.
AuditReport audit_run(const Instance& instance, const RunLog& log,
                      const AuditOptions& opts = {});

}  // namespace treesched::sim
