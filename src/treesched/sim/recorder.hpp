// Schedule recording: the engine can log every processing burst so the
// validator (and tests) can independently re-check feasibility.
#pragma once

#include <vector>

#include "treesched/core/types.hpp"

namespace treesched::sim {

/// One maximal interval during which `node` processed chunk `chunk` of job
/// `job` at rate `rate` (the node's speed).
struct Segment {
  NodeId node = kInvalidNode;
  JobId job = kInvalidJob;
  std::int32_t chunk = 0;  ///< router chunk index; kLeafChunk for leaf work
  Time t0 = 0.0;
  Time t1 = 0.0;
  double rate = 1.0;

  double work() const { return (t1 - t0) * rate; }
};

/// Sentinel chunk index marking processing of the whole job at its leaf.
inline constexpr std::int32_t kLeafChunk = -1;

/// Append-only burst log.
class ScheduleRecorder {
 public:
  void add(Segment s) { segments_.push_back(s); }
  const std::vector<Segment>& segments() const { return segments_; }
  void clear() { segments_.clear(); }

 private:
  std::vector<Segment> segments_;
};

}  // namespace treesched::sim
