#include "treesched/sim/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "treesched/util/assert.hpp"

namespace treesched::sim {

namespace {
char job_letter(JobId j) {
  const int k = j % 52;
  return k < 26 ? static_cast<char>('a' + k) : static_cast<char>('A' + k - 26);
}
}  // namespace

std::string render_gantt(const Instance& instance,
                         const ScheduleRecorder& recorder,
                         const GanttOptions& options) {
  TS_REQUIRE(options.width >= 10, "gantt width too small");
  const Tree& tree = instance.tree();
  Time t_end = options.t_end;
  if (t_end < 0.0) {
    t_end = options.t_begin;
    for (const Segment& s : recorder.segments())
      t_end = std::max(t_end, s.t1);
  }
  TS_REQUIRE(t_end > options.t_begin, "empty time window");
  const double scale =
      options.width / (t_end - options.t_begin);

  std::vector<std::string> rows(uidx(tree.node_count()),
                                std::string(uidx(options.width), '.'));
  for (const Segment& s : recorder.segments()) {
    const int c0 = std::max(
        0, static_cast<int>((s.t0 - options.t_begin) * scale));
    const int c1 = std::min(
        options.width,
        std::max(c0 + 1, static_cast<int>((s.t1 - options.t_begin) * scale)));
    for (int c = c0; c < c1; ++c) rows[uidx(s.node)][uidx(c)] = job_letter(s.job);
  }

  std::ostringstream os;
  os << "time " << options.t_begin << " .. " << t_end << " ('.' idle)\n";
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    if (tree.is_root(v) && rows[uidx(v)].find_first_not_of('.') == std::string::npos)
      continue;  // the root is usually silent
    os.width(4);
    os << v << ' '
       << (tree.is_root(v) ? "root   "
           : tree.is_leaf(v) ? "machine"
                             : "router ")
       << ' ' << rows[uidx(v)] << '\n';
  }
  return os.str();
}

}  // namespace treesched::sim
